package qoserve_test

import (
	"math"
	"testing"
	"time"

	"qoserve"
)

func smallWorkload(t *testing.T, qps float64, dur time.Duration) []qoserve.Request {
	t.Helper()
	reqs, err := qoserve.GenerateWorkload(qoserve.WorkloadSpec{
		Dataset:  qoserve.DatasetAzureCode,
		QPS:      qps,
		Duration: dur,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func TestServeQoServeLightLoad(t *testing.T) {
	reqs := smallWorkload(t, 2, 2*time.Minute)
	report, err := qoserve.Serve(qoserve.Options{Policy: qoserve.PolicyQoServe}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Outcomes) != len(reqs) {
		t.Fatalf("outcomes %d != requests %d", len(report.Outcomes), len(reqs))
	}
	if report.ViolationRate > 0.02 {
		t.Errorf("violation rate %.3f at light load", report.ViolationRate)
	}
	if report.GPUs != 1 || report.Replicas != 1 {
		t.Errorf("GPUs=%d replicas=%d", report.GPUs, report.Replicas)
	}
	if report.Goodput <= 0 {
		t.Error("no goodput")
	}
	if p := report.TTFTPercentile("Q1", 0.5); p <= 0 || p > 10*time.Second {
		t.Errorf("Q1 median TTFT = %v", p)
	}
}

func TestServeAllPolicies(t *testing.T) {
	reqs := smallWorkload(t, 1, time.Minute)
	for _, p := range []qoserve.Policy{
		qoserve.PolicyQoServe, qoserve.PolicySarathiFCFS, qoserve.PolicySarathiEDF,
		qoserve.PolicySarathiSJF, qoserve.PolicySarathiSRPF, qoserve.PolicyMedha,
	} {
		report, err := qoserve.Serve(qoserve.Options{Policy: p}, reqs)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		completed := 0
		for _, o := range report.Outcomes {
			if o.Completed {
				completed++
			}
		}
		if completed != len(reqs) {
			t.Errorf("%s: completed %d of %d", p, completed, len(reqs))
		}
	}
	if _, err := qoserve.Serve(qoserve.Options{Policy: "nope"}, reqs); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestServeSiloed(t *testing.T) {
	reqs := smallWorkload(t, 2, 2*time.Minute)
	report, err := qoserve.Serve(qoserve.Options{
		Silos: map[string]int{"Q1": 2, "Q2": 1, "Q3": 1},
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if report.Replicas != 4 {
		t.Errorf("replicas = %d, want 4", report.Replicas)
	}
}

func TestServeHardwarePresets(t *testing.T) {
	reqs := smallWorkload(t, 1, time.Minute)
	for hw, gpus := range map[qoserve.Hardware]int{
		qoserve.Llama3_8B_A100:    1,
		qoserve.Qwen_7B_2xA100:    2,
		qoserve.Llama3_70B_4xH100: 4,
	} {
		report, err := qoserve.Serve(qoserve.Options{Hardware: hw}, reqs)
		if err != nil {
			t.Fatalf("%v: %v", hw, err)
		}
		if report.GPUs != gpus {
			t.Errorf("%v: GPUs = %d, want %d", hw, report.GPUs, gpus)
		}
	}
	if qoserve.Llama3_8B_A100.String() != "Llama3-8B/A100-TP1" {
		t.Errorf("hardware string = %q", qoserve.Llama3_8B_A100.String())
	}
}

func TestServeValidation(t *testing.T) {
	if _, err := qoserve.Serve(qoserve.Options{}, nil); err == nil {
		t.Error("empty request list accepted")
	}
	bad := []qoserve.Request{{Class: "missing", Arrival: 0, PromptTokens: 10, DecodeTokens: 1}}
	if _, err := qoserve.Serve(qoserve.Options{}, bad); err == nil {
		t.Error("unknown class accepted")
	}
	dup := []qoserve.Request{
		{ID: 5, Class: "Q1", PromptTokens: 10, DecodeTokens: 1},
		{ID: 5, Class: "Q1", PromptTokens: 10, DecodeTokens: 1},
	}
	if _, err := qoserve.Serve(qoserve.Options{}, dup); err == nil {
		t.Error("duplicate IDs accepted")
	}
	badClass := qoserve.Options{Classes: []qoserve.Class{{Name: "X", Kind: qoserve.Interactive}}}
	good := []qoserve.Request{{Class: "X", PromptTokens: 10, DecodeTokens: 1}}
	if _, err := qoserve.Serve(badClass, good); err == nil {
		t.Error("interactive class without TTFT accepted")
	}
	dupClass := qoserve.Options{Classes: append(qoserve.DefaultClasses(), qoserve.DefaultClasses()...)}
	if _, err := qoserve.Serve(dupClass, smallWorkload(t, 1, time.Minute)); err == nil {
		t.Error("duplicate class names accepted")
	}
}

func TestServeAssignsIDs(t *testing.T) {
	reqs := []qoserve.Request{
		{Class: "Q1", PromptTokens: 100, DecodeTokens: 2},
		{Class: "Q2", Arrival: time.Second, PromptTokens: 100, DecodeTokens: 2},
		{ID: 1, Class: "Q3", Arrival: 2 * time.Second, PromptTokens: 100, DecodeTokens: 2},
	}
	report, err := qoserve.Serve(qoserve.Options{}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, o := range report.Outcomes {
		if seen[o.ID] {
			t.Fatalf("duplicate assigned ID %d", o.ID)
		}
		seen[o.ID] = true
	}
}

func TestGenerateWorkloadShapes(t *testing.T) {
	reqs, err := qoserve.GenerateWorkload(qoserve.WorkloadSpec{
		Dataset:             qoserve.DatasetAzureConv,
		QPS:                 5,
		Duration:            2 * time.Minute,
		LowPriorityFraction: 0.5,
		Seed:                3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 600 {
		t.Fatalf("generated %d requests, want 600", len(reqs))
	}
	low := 0
	for _, r := range reqs {
		if r.PromptTokens <= 0 || r.DecodeTokens <= 0 {
			t.Fatal("non-positive token counts")
		}
		if r.Priority == qoserve.Low {
			low++
		}
	}
	if frac := float64(low) / float64(len(reqs)); frac < 0.4 || frac > 0.6 {
		t.Errorf("low-priority fraction %.2f, want ~0.5", frac)
	}
}

func TestGenerateWorkloadBursty(t *testing.T) {
	reqs, err := qoserve.GenerateWorkload(qoserve.WorkloadSpec{
		Dataset:     qoserve.DatasetAzureCode,
		QPS:         1,
		BurstQPS:    4,
		BurstPeriod: time.Minute,
		Duration:    4 * time.Minute,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Count arrivals in the first low minute vs the following high minute.
	lowCount, highCount := 0, 0
	for _, r := range reqs {
		switch {
		case r.Arrival < time.Minute:
			lowCount++
		case r.Arrival < 2*time.Minute:
			highCount++
		}
	}
	if highCount <= lowCount {
		t.Errorf("burst minute (%d) not busier than low minute (%d)", highCount, lowCount)
	}
}

func TestGenerateWorkloadValidation(t *testing.T) {
	if _, err := qoserve.GenerateWorkload(qoserve.WorkloadSpec{Duration: time.Minute}); err == nil {
		t.Error("zero QPS accepted")
	}
	if _, err := qoserve.GenerateWorkload(qoserve.WorkloadSpec{QPS: 1}); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := qoserve.GenerateWorkload(qoserve.WorkloadSpec{
		QPS: 1, Duration: time.Minute, BurstQPS: 2,
	}); err == nil {
		t.Error("burst without period accepted")
	}
	if _, err := qoserve.GenerateWorkload(qoserve.WorkloadSpec{
		QPS: 1, Duration: time.Minute, Weights: []float64{1},
	}); err == nil {
		t.Error("weights/classes mismatch accepted")
	}
}

func TestQoServeBeatsFCFSUnderOverload(t *testing.T) {
	// The headline behaviour through the public API: under overload,
	// QoServe's violation rate is far below FCFS's.
	reqs, err := qoserve.GenerateWorkload(qoserve.WorkloadSpec{
		Dataset:  qoserve.DatasetAzureCode,
		QPS:      6,
		Duration: 5 * time.Minute,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	fcfs, err := qoserve.Serve(qoserve.Options{Policy: qoserve.PolicySarathiFCFS}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	qsv, err := qoserve.Serve(qoserve.Options{Policy: qoserve.PolicyQoServe}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if qsv.ViolationRate >= fcfs.ViolationRate/2 {
		t.Errorf("QoServe %.3f not well below FCFS %.3f", qsv.ViolationRate, fcfs.ViolationRate)
	}
}

func TestQoServeTuningAblation(t *testing.T) {
	reqs := smallWorkload(t, 4, 3*time.Minute)
	full, err := qoserve.Serve(qoserve.Options{}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	stripped, err := qoserve.Serve(qoserve.Options{
		QoServe: qoserve.QoServeTuning{
			DisableDynamicChunking: true,
			DisableEagerRelegation: true,
			DisableHybridPriority:  true,
		},
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if full.ViolationRate > stripped.ViolationRate {
		t.Errorf("full QoServe (%.3f) worse than stripped (%.3f)",
			full.ViolationRate, stripped.ViolationRate)
	}
}

func TestFindMaxGoodput(t *testing.T) {
	if testing.Short() {
		t.Skip("capacity search is slow")
	}
	spec := qoserve.WorkloadSpec{Dataset: qoserve.DatasetAzureCode, Seed: 3}
	opts := qoserve.CapacityOptions{ProbeDuration: 3 * time.Minute, Seed: 3}
	edf, err := qoserve.FindMaxGoodput(qoserve.Options{Policy: qoserve.PolicySarathiEDF}, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	qsv, err := qoserve.FindMaxGoodput(qoserve.Options{Policy: qoserve.PolicyQoServe}, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if edf <= 0 || qsv <= edf {
		t.Errorf("goodput: EDF %.2f, QoServe %.2f — QoServe should exceed EDF", edf, qsv)
	}
	// Siloed deployments are rejected.
	if _, err := qoserve.FindMaxGoodput(qoserve.Options{Silos: map[string]int{"Q1": 1}}, spec, opts); err == nil {
		t.Error("silo goodput search accepted")
	}
}

func TestFindMinReplicas(t *testing.T) {
	if testing.Short() {
		t.Skip("capacity search is slow")
	}
	spec := qoserve.WorkloadSpec{Dataset: qoserve.DatasetAzureCode, QPS: 12, Seed: 4}
	opts := qoserve.CapacityOptions{ProbeDuration: 3 * time.Minute, Seed: 4}
	n, err := qoserve.FindMinReplicas(qoserve.Options{Policy: qoserve.PolicyQoServe}, spec, 16, opts)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 || n > 16 {
		t.Fatalf("replicas = %d", n)
	}
	if _, err := qoserve.FindMinReplicas(qoserve.Options{}, qoserve.WorkloadSpec{}, 4, opts); err == nil {
		t.Error("zero-QPS spec accepted")
	}
}

func TestGenerateWorkloadBurstinessCV(t *testing.T) {
	smooth, err := qoserve.GenerateWorkload(qoserve.WorkloadSpec{
		Dataset: qoserve.DatasetAzureCode, QPS: 5, Duration: 4 * time.Minute,
		BurstinessCV: 0.3, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	bursty, err := qoserve.GenerateWorkload(qoserve.WorkloadSpec{
		Dataset: qoserve.DatasetAzureCode, QPS: 5, Duration: 4 * time.Minute,
		BurstinessCV: 3, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	cv := func(reqs []qoserve.Request) float64 {
		var sum, sumSq float64
		for i := 1; i < len(reqs); i++ {
			gap := (reqs[i].Arrival - reqs[i-1].Arrival).Seconds()
			sum += gap
			sumSq += gap * gap
		}
		n := float64(len(reqs) - 1)
		mean := sum / n
		return math.Sqrt(sumSq/n-mean*mean) / mean
	}
	if cv(bursty) <= cv(smooth) {
		t.Errorf("bursty CV %.2f not above smooth CV %.2f", cv(bursty), cv(smooth))
	}
}

func TestServeHorizonOverride(t *testing.T) {
	reqs := smallWorkload(t, 2, 2*time.Minute)
	report, err := qoserve.Serve(qoserve.Options{Horizon: 30 * time.Second}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if report.Duration != 30*time.Second {
		t.Fatalf("duration = %v, want 30s", report.Duration)
	}
	completed := 0
	for _, o := range report.Outcomes {
		if o.Completed {
			completed++
		}
	}
	if completed >= len(reqs) {
		t.Error("everything completed despite a tight horizon")
	}
}

func TestQoServeTuningKnobs(t *testing.T) {
	reqs := smallWorkload(t, 2, time.Minute)
	report, err := qoserve.Serve(qoserve.Options{
		QoServe: qoserve.QoServeTuning{
			Alpha:                4 * time.Millisecond,
			DisableAdaptiveAlpha: true,
			MaxChunk:             1024,
		},
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if report.ViolationRate > 0.05 {
		t.Errorf("tuned run violations %.3f", report.ViolationRate)
	}
}

func TestReportPercentilesAndOutcomes(t *testing.T) {
	reqs := smallWorkload(t, 2, 2*time.Minute)
	report, err := qoserve.Serve(qoserve.Options{}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if p50, p99 := report.TTLTPercentile("Q2", 0.5), report.TTLTPercentile("Q2", 0.99); p50 <= 0 || p99 < p50 {
		t.Errorf("Q2 TTLT p50=%v p99=%v", p50, p99)
	}
	if v := report.ViolationRateOf("Q3"); v < 0 || v > 1 {
		t.Errorf("Q3 violation rate = %v", v)
	}
	for _, o := range report.Outcomes {
		if o.Completed && (o.TTFT <= 0 || o.TTLT < o.TTFT) {
			t.Fatalf("inconsistent outcome %+v", o)
		}
		if o.Completed && o.MaxTBT < 0 {
			t.Fatalf("negative MaxTBT in %+v", o)
		}
	}
}

func TestServeSiloedStrictestClassGetsSmallChunk(t *testing.T) {
	// Two interactive tiers with different TBTs: the strictest gets the
	// 256 chunk silo; the run must complete cleanly either way.
	classes := []qoserve.Class{
		{Name: "strict", Kind: qoserve.Interactive, TTFT: 6 * time.Second, TBT: 50 * time.Millisecond},
		{Name: "loose", Kind: qoserve.Interactive, TTFT: 6 * time.Second, TBT: 200 * time.Millisecond},
	}
	reqs := []qoserve.Request{
		{Class: "strict", PromptTokens: 500, DecodeTokens: 5},
		{Class: "loose", Arrival: time.Second, PromptTokens: 500, DecodeTokens: 5},
	}
	report, err := qoserve.Serve(qoserve.Options{
		Classes: classes,
		Silos:   map[string]int{"strict": 1, "loose": 1},
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if report.ViolationRate != 0 {
		t.Errorf("violations %.3f on an idle silo pair", report.ViolationRate)
	}
}
