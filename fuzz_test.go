package qoserve

import (
	"testing"
	"time"
)

// FuzzGenerateWorkload throws arbitrary numeric specifications at the
// public workload generator: it must never panic, hang, or attempt an
// unbounded allocation — bad inputs return an error, and accepted inputs
// produce a well-formed trace.
func FuzzGenerateWorkload(f *testing.F) {
	// The documented happy paths: steady, bursty (square wave), and
	// gamma-burstiness traffic, plus degenerate near-misses.
	f.Add(3.0, 0.0, int64(0), int64(600_000), 0.0, 0.0, int64(1), uint8(2))
	f.Add(2.0, 5.0, int64(120_000), int64(1_200_000), 0.2, 0.0, int64(7), uint8(0))
	f.Add(4.0, 0.0, int64(0), int64(300_000), 0.0, 2.5, int64(3), uint8(1))
	f.Add(0.0, 0.0, int64(0), int64(0), 0.0, 0.0, int64(0), uint8(0))
	f.Add(1e308, 1e308, int64(1), int64(1<<60), 1.5, -1.0, int64(-1), uint8(255))

	f.Fuzz(func(t *testing.T, qps, burstQPS float64, burstPeriodMS, durationMS int64, lowPrio, cv float64, seed int64, dataset uint8) {
		spec := WorkloadSpec{
			Dataset:             Dataset(dataset % 3),
			QPS:                 qps,
			BurstQPS:            burstQPS,
			BurstPeriod:         time.Duration(burstPeriodMS) * time.Millisecond,
			Duration:            time.Duration(durationMS) * time.Millisecond,
			LowPriorityFraction: lowPrio,
			BurstinessCV:        cv,
			Seed:                seed,
		}
		reqs, err := GenerateWorkload(spec)
		if err != nil {
			return // rejected loudly: exactly what hostile input should get
		}
		if len(reqs) == 0 {
			t.Fatal("accepted spec produced an empty trace")
		}
		if len(reqs) > MaxTraceRequests {
			t.Fatalf("trace length %d exceeds the documented cap", len(reqs))
		}
		prev := time.Duration(-1)
		for _, r := range reqs {
			if r.PromptTokens < 1 || r.DecodeTokens < 1 {
				t.Fatalf("request %d has token counts %d/%d", r.ID, r.PromptTokens, r.DecodeTokens)
			}
			if r.Arrival < 0 || r.Arrival < prev {
				t.Fatalf("request %d arrival %v out of order (prev %v)", r.ID, r.Arrival, prev)
			}
			prev = r.Arrival
			if r.Class == "" {
				t.Fatalf("request %d has no class", r.ID)
			}
		}
	})
}
