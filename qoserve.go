package qoserve

import (
	"fmt"
	"time"

	"qoserve/internal/core"
	"qoserve/internal/model"
	"qoserve/internal/qos"
	"qoserve/internal/request"
	"qoserve/internal/sim"
)

// ClassKind distinguishes interactive classes (TTFT and TBT SLOs) from
// batch classes (a single TTLT SLO).
type ClassKind int

// Class kinds.
const (
	Interactive ClassKind = iota
	Batch
)

// Class is a QoS bucket applications subscribe requests to. Interactive
// classes must set TTFT and TBT; batch classes must set TTLT.
type Class struct {
	Name string
	Kind ClassKind
	TTFT time.Duration // time-to-first-token target (interactive)
	TBT  time.Duration // time-between-tokens target (interactive)
	TTLT time.Duration // time-to-last-token target (batch)
}

// DefaultClasses returns the paper's Table 3 tiers: Q1 interactive
// (TTFT 6 s, TBT 50 ms), Q2 batch (TTLT 600 s), Q3 batch (TTLT 1800 s).
func DefaultClasses() []Class {
	return []Class{
		{Name: "Q1", Kind: Interactive, TTFT: 6 * time.Second, TBT: 50 * time.Millisecond},
		{Name: "Q2", Kind: Batch, TTLT: 600 * time.Second},
		{Name: "Q3", Kind: Batch, TTLT: 1800 * time.Second},
	}
}

// toInternal converts a public class to the internal representation.
func (c Class) toInternal() (qos.Class, error) {
	kind := qos.Interactive
	if c.Kind == Batch {
		kind = qos.NonInteractive
	}
	ic := qos.Class{
		Name: c.Name,
		Kind: kind,
		SLO: qos.SLO{
			TTFT: sim.FromDuration(c.TTFT),
			TBT:  sim.FromDuration(c.TBT),
			TTLT: sim.FromDuration(c.TTLT),
		},
	}
	if err := ic.Validate(); err != nil {
		return qos.Class{}, err
	}
	return ic, nil
}

// Priority is the application-provided importance hint used by eager
// relegation: Low (free-tier) requests are relegated before High (paid).
type Priority int

// Priority tiers.
const (
	High Priority = iota
	Low
)

// Request is one inference request submitted to the serving system.
type Request struct {
	// ID must be unique and non-zero; zero IDs are assigned sequentially.
	ID uint64
	// App identifies the submitting application; per-app history drives
	// decode-length estimation.
	App string
	// Class names one of the Options.Classes entries.
	Class string
	// Priority is the relegation hint (default High).
	Priority Priority
	// Arrival is the submission time relative to the start of the run.
	Arrival time.Duration
	// PromptTokens is the prompt length (> 0).
	PromptTokens int
	// DecodeTokens is the output length (> 0). It is ground truth used by
	// the execution engine; schedulers only see per-app estimates.
	DecodeTokens int
}

// Hardware selects a model/GPU configuration for the execution cost model.
type Hardware int

// The paper's Table 1 configurations.
const (
	// Llama3_8B_A100 is Llama3-8B on one A100-80GB (TP1).
	Llama3_8B_A100 Hardware = iota
	// Qwen_7B_2xA100 is Qwen-7B (full MHA) on two A100-80GB (TP2).
	Qwen_7B_2xA100
	// Llama3_70B_4xH100 is Llama3-70B on four H100-80GB (TP4).
	Llama3_70B_4xH100
)

// String implements fmt.Stringer.
func (h Hardware) String() string {
	return h.config().Name()
}

func (h Hardware) config() model.Config {
	switch h {
	case Qwen_7B_2xA100:
		return model.Qwen_7B_A100_TP2()
	case Llama3_70B_4xH100:
		return model.Llama3_70B_H100_TP4()
	default:
		return model.Llama3_8B_A100_TP1()
	}
}

// Policy selects the scheduling algorithm.
type Policy string

// Available policies.
const (
	// PolicyQoServe is the paper's scheduler: dynamic chunking, hybrid
	// prioritization, and eager relegation.
	PolicyQoServe Policy = "qoserve"
	// PolicySarathiFCFS is chunked prefill served first-come-first-served.
	PolicySarathiFCFS Policy = "sarathi-fcfs"
	// PolicySarathiEDF is chunked prefill served earliest-deadline-first.
	PolicySarathiEDF Policy = "sarathi-edf"
	// PolicySarathiSJF is chunked prefill, shortest expected job first.
	PolicySarathiSJF Policy = "sarathi-sjf"
	// PolicySarathiSRPF is chunked prefill, shortest remaining prompt first.
	PolicySarathiSRPF Policy = "sarathi-srpf"
	// PolicyMedha is Medha's TBT-pinned adaptive chunking under FCFS.
	PolicyMedha Policy = "medha"
)

// QoServeTuning exposes the QoServe scheduler's knobs; the zero value means
// the paper's defaults.
type QoServeTuning struct {
	// Alpha is the hybrid-prioritization factor in time per remaining
	// token (paper default 8 ms at high load, 1 ms at low load with
	// adaptive switching).
	Alpha time.Duration
	// DisableAdaptiveAlpha pins Alpha rather than switching on load.
	DisableAdaptiveAlpha bool
	// MaxChunk caps the dynamic chunk size (default 2500).
	MaxChunk int
	// DisableDynamicChunking, DisableEagerRelegation and
	// DisableHybridPriority turn individual techniques off (ablations).
	DisableDynamicChunking bool
	DisableEagerRelegation bool
	DisableHybridPriority  bool
}

func (t QoServeTuning) options() core.Options {
	opts := core.DefaultOptions()
	if t.Alpha > 0 {
		opts.Alpha = sim.FromDuration(t.Alpha)
	}
	if t.DisableAdaptiveAlpha {
		opts.AdaptiveAlpha = false
	}
	if t.MaxChunk > 0 {
		opts.MaxChunk = t.MaxChunk
	}
	opts.DynamicChunking = !t.DisableDynamicChunking
	opts.EagerRelegation = !t.DisableEagerRelegation
	opts.HybridPriority = !t.DisableHybridPriority
	return opts
}

// FaultPlan injects replica failures into a shared-cluster run. Leave the
// zero value for a fault-free run. Faults are deterministic: the same plan
// over the same workload produces the same schedule and the same metrics.
// Requests on a crashed replica lose their KV progress and are re-enqueued
// to a healthy replica with bounded retries and exponential backoff; they
// keep their original arrival time and deadline. Fault injection requires
// a shared cluster (it is incompatible with Silos).
type FaultPlan struct {
	// Schedule is an explicit injection list,
	// e.g. "crash@30s:1,restart@1m30s:1,slow@10s:2x3.5" —
	// kind@time:replica, with slow taking an xFACTOR suffix. When set,
	// the random-schedule fields are ignored.
	Schedule string
	// MTBF enables a seeded random schedule: each replica alternates
	// exponentially distributed healthy intervals (mean MTBF) and
	// downtimes (mean MTTR). MTTR zero leaves crashed replicas down.
	MTBF time.Duration
	MTTR time.Duration
	// Seed makes the random schedule reproducible (default 1).
	Seed int64
	// MaxRetries bounds re-enqueues per request before it is permanently
	// failed (default 3).
	MaxRetries int
	// RetryBackoff is the delay before the first re-enqueue, doubling per
	// retry (default 50ms).
	RetryBackoff time.Duration
	// ParkTimeout bounds how long a request may wait for any healthy
	// replica before being failed (default 5 minutes).
	ParkTimeout time.Duration
}

// enabled reports whether the plan injects anything.
func (p FaultPlan) enabled() bool { return p.Schedule != "" || p.MTBF > 0 }

// FaultReport aggregates failure and recovery over a run.
type FaultReport struct {
	// Crashes and Restarts count replica lifecycle transitions.
	Crashes  uint64
	Restarts uint64
	// Retries counts request re-enqueues after crashes.
	Retries uint64
	// LostTokens is the total tokens of progress discarded by crashes.
	LostTokens uint64
	// FailedRequests counts requests permanently failed with a reason
	// (retry budget exhausted, or no healthy replica within the park
	// timeout). Failed requests count as SLO violations.
	FailedRequests int
}

// Options configures a serving run.
type Options struct {
	// Hardware selects the execution cost model (default Llama3_8B_A100).
	Hardware Hardware
	// Policy selects the scheduler (default PolicyQoServe).
	Policy Policy
	// Replicas is the shared-cluster size (default 1). Ignored when
	// Silos is set.
	Replicas int
	// Silos, when non-nil, deploys one dedicated cluster per class name
	// (the paper's baseline deployment model) instead of a shared
	// cluster; the map gives replicas per class. The silo serving the
	// strictest interactive class uses chunk 256; others use 2048.
	Silos map[string]int
	// Classes declares the QoS classes requests may reference
	// (default DefaultClasses()).
	Classes []Class
	// Chunk overrides the fixed token budget for Sarathi policies
	// (default 256) and the TBT target chunk cap for Medha.
	Chunk int
	// QoServe tunes the QoServe policy.
	QoServe QoServeTuning
	// Horizon truncates the run; zero runs until every request has
	// either finished or provably missed its deadline.
	Horizon time.Duration
	// Faults injects replica failures (shared cluster only); the zero
	// value disables injection.
	Faults FaultPlan
}

func (o Options) classes() ([]Class, map[string]qos.Class, error) {
	cls := o.Classes
	if len(cls) == 0 {
		cls = DefaultClasses()
	}
	m := make(map[string]qos.Class, len(cls))
	for _, c := range cls {
		ic, err := c.toInternal()
		if err != nil {
			return nil, nil, err
		}
		if _, dup := m[c.Name]; dup {
			return nil, nil, fmt.Errorf("qoserve: duplicate class %q", c.Name)
		}
		m[c.Name] = ic
	}
	return cls, m, nil
}

// toInternal converts a public request, resolving its class.
func (r Request) toInternal(id uint64, classes map[string]qos.Class) (*request.Request, error) {
	cls, ok := classes[r.Class]
	if !ok {
		return nil, fmt.Errorf("qoserve: request %d references unknown class %q", id, r.Class)
	}
	prio := qos.High
	if r.Priority == Low {
		prio = qos.Low
	}
	app := r.App
	if app == "" {
		app = r.Class
	}
	ir := &request.Request{
		ID:           id,
		App:          app,
		Class:        cls,
		Priority:     prio,
		Arrival:      sim.FromDuration(r.Arrival),
		PromptTokens: r.PromptTokens,
		DecodeTokens: r.DecodeTokens,
	}
	if err := ir.Validate(); err != nil {
		return nil, err
	}
	return ir, nil
}
