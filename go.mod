module qoserve

go 1.23
