package qoserve

import (
	"fmt"
	"time"

	"qoserve/internal/cluster"
	"qoserve/internal/qos"
	"qoserve/internal/request"
	"qoserve/internal/sim"
)

// CapacityOptions tunes the capacity-planning searches.
type CapacityOptions struct {
	// MaxViolations is the admissible violation fraction (default 1%,
	// the paper's goodput criterion).
	MaxViolations float64
	// ProbeDuration is each probe trace's length (default 10 minutes).
	ProbeDuration time.Duration
	// Seed makes probes deterministic.
	Seed int64
}

func (o CapacityOptions) search() cluster.SearchOptions {
	maxViol := o.MaxViolations
	if maxViol == 0 {
		maxViol = 0.01
	}
	return cluster.SearchOptions{
		MaxViolations: maxViol,
		Tolerance:     0.05,
		HorizonFor:    capacityHorizon,
	}
}

func (o CapacityOptions) duration() time.Duration {
	if o.ProbeDuration <= 0 {
		return 10 * time.Minute
	}
	return o.ProbeDuration
}

// capacityHorizon judges every probe request definitively: last arrival
// plus the largest applicable SLO.
func capacityHorizon(trace []*request.Request) sim.Time {
	var last, maxSLO sim.Time
	for _, r := range trace {
		if r.Arrival > last {
			last = r.Arrival
		}
		slo := r.Class.SLO.TTLT
		if r.Class.Kind == qos.Interactive {
			slo = r.Class.SLO.TTFT
		}
		if slo > maxSLO {
			maxSLO = slo
		}
	}
	return last + maxSLO + sim.Minute
}

// probeGen builds the capacity search's trace generator from a workload
// specification, overriding its rate per probe.
func probeGen(serve Options, spec WorkloadSpec, dur time.Duration, seed int64) (cluster.TraceGen, error) {
	if len(spec.Classes) == 0 {
		spec.Classes = serve.Classes
	}
	return func(qps float64) ([]*request.Request, error) {
		s := spec
		s.QPS = qps
		s.Duration = dur
		s.Seed = seed
		s.BurstQPS = 0 // capacity probes use steady load
		reqs, err := GenerateWorkload(s)
		if err != nil {
			return nil, err
		}
		_, classMap, err := serve.classes()
		if err != nil {
			return nil, err
		}
		trace := make([]*request.Request, len(reqs))
		for i, r := range reqs {
			ir, err := r.toInternal(r.ID, classMap)
			if err != nil {
				return nil, err
			}
			trace[i] = ir
		}
		return trace, nil
	}, nil
}

// FindMaxGoodput searches for the highest per-replica arrival rate (QPS)
// the configured deployment sustains within the violation target — the
// paper's goodput metric, exposed for capacity planning. The workload
// specification's QPS and Duration are ignored (probes set their own).
func FindMaxGoodput(serve Options, spec WorkloadSpec, opts CapacityOptions) (float64, error) {
	if len(serve.Silos) > 0 {
		return 0, fmt.Errorf("qoserve: goodput search applies to shared deployments")
	}
	mc := serve.Hardware.config()
	factory, err := factoryFor(serve, mc)
	if err != nil {
		return 0, err
	}
	gen, err := probeGen(serve, spec, opts.duration(), opts.Seed)
	if err != nil {
		return 0, err
	}
	qps, _, err := cluster.MaxGoodput(mc, factory, gen, opts.search())
	return qps, err
}

// FindMinReplicas searches for the smallest shared-cluster size that serves
// the workload specification's rate within the violation target — the
// paper's Table 4 provisioning question. maxReplicas bounds the search.
func FindMinReplicas(serve Options, spec WorkloadSpec, maxReplicas int, opts CapacityOptions) (int, error) {
	if spec.QPS <= 0 {
		return 0, fmt.Errorf("qoserve: workload QPS must be positive")
	}
	if maxReplicas <= 0 {
		maxReplicas = 32
	}
	mc := serve.Hardware.config()
	factory, err := factoryFor(serve, mc)
	if err != nil {
		return 0, err
	}
	gen, err := probeGen(serve, spec, opts.duration(), opts.Seed)
	if err != nil {
		return 0, err
	}
	n, _, err := cluster.MinReplicas(mc, factory, func() ([]*request.Request, error) {
		return gen(spec.QPS)
	}, maxReplicas, opts.search())
	return n, err
}
