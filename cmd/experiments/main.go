// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments [-scale 0.05] [-seed 42] fig7 table5 ...
//	experiments -scale 0.25 all
//
// Scale multiplies the paper's 4-hour trace durations; arrival rates and
// workload mixes are preserved, so shapes hold at small scales while
// absolute capacity numbers tighten toward the paper's as scale approaches
// 1 (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"qoserve/internal/experiments"
	"qoserve/internal/htmlreport"
)

func main() {
	scale := flag.Float64("scale", 0.05, "trace-duration multiplier relative to the paper's 4-hour runs")
	seed := flag.Int64("seed", 42, "base PRNG seed for workload synthesis")
	list := flag.Bool("list", false, "list available experiments and exit")
	plot := flag.Bool("plot", false, "render sweep tables as terminal line charts")
	csvDir := flag.String("csv", "", "also write sweep tables as CSV files into this directory")
	htmlPath := flag.String("html", "", "also render every sweep as SVG charts into this HTML file")
	workers := flag.Int("workers", 0, "sweep-point worker pool size (0 = GOMAXPROCS, 1 = serial)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *list {
		for _, exp := range experiments.All() {
			fmt.Printf("%-12s %s\n", exp.Name, exp.Title)
		}
		return
	}

	names := flag.Args()
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "no experiments named; use -list to see choices, or 'all'")
		os.Exit(2)
	}
	if len(names) == 1 && names[0] == "all" {
		names = names[:0]
		for _, exp := range experiments.All() {
			names = append(names, exp.Name)
		}
	}

	env := experiments.NewEnv(*scale, os.Stdout)
	env.Seed = *seed
	env.Plot = *plot
	env.Workers = *workers
	var report *htmlreport.Builder
	if *htmlPath != "" {
		report = &htmlreport.Builder{}
		env.HTML = report
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		env.CSVDir = *csvDir
	}
	for _, name := range names {
		start := time.Now()
		if err := experiments.RunByName(name, env); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}
	if report != nil {
		f, err := os.Create(*htmlPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		title := fmt.Sprintf("QoServe reproduction — scale %.2g, seed %d", *scale, *seed)
		if err := report.Write(f, title); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d charts to %s\n", report.Len(), *htmlPath)
	}
}
