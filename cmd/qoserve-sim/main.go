// Command qoserve-sim runs one serving simulation from the command line:
// synthesize (or load) a workload, serve it with a chosen policy and
// deployment, and print per-tier results.
//
// Examples:
//
//	qoserve-sim -dataset Azure-Code -qps 3 -duration 10m -policy qoserve
//	qoserve-sim -dataset ShareGPT -qps 2 -duration 5m -policy sarathi-edf -replicas 2
//	qoserve-sim -trace trace.jsonl -policy qoserve
//	qoserve-sim -qps 2 -burst-qps 5 -burst-period 2m -duration 20m -low-priority 0.2
//	qoserve-sim -replicas 4 -fail "crash@2m:1,restart@4m:1"
//	qoserve-sim -replicas 4 -fail-mtbf 5m -fail-mttr 1m -fail-seed 7
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"qoserve"
	"qoserve/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qoserve-sim: ")

	var (
		datasetName = flag.String("dataset", "Azure-Code", "workload dataset: ShareGPT, Azure-Conv, Azure-Code")
		qps         = flag.Float64("qps", 3, "mean arrival rate (requests/second)")
		burstQPS    = flag.Float64("burst-qps", 0, "peak rate for a square-wave bursty workload (0 = steady)")
		burstPeriod = flag.Duration("burst-period", 2*time.Minute, "half-period of the bursty square wave")
		duration    = flag.Duration("duration", 10*time.Minute, "trace duration")
		lowPrio     = flag.Float64("low-priority", 0, "fraction of requests tagged free-tier")
		seed        = flag.Int64("seed", 1, "workload seed")
		policyName  = flag.String("policy", "qoserve", "qoserve | sarathi-fcfs | sarathi-edf | sarathi-sjf | sarathi-srpf | medha")
		hardware    = flag.String("hardware", "llama3-8b", "llama3-8b | qwen-7b | llama3-70b")
		replicas    = flag.Int("replicas", 1, "shared-cluster replica count")
		chunk       = flag.Int("chunk", 0, "fixed chunk for Sarathi policies (default 256)")
		alpha       = flag.Duration("alpha", 0, "QoServe hybrid alpha per token (0 = paper default, adaptive)")
		tracePath   = flag.String("trace", "", "serve a JSON-lines trace file instead of synthesizing")
		outPath     = flag.String("out", "", "write per-request outcomes as CSV to this path")

		failSpec    = flag.String("fail", "", `explicit fault schedule, e.g. "crash@30s:1,restart@1m30s:1,slow@10s:2x3"`)
		failMTBF    = flag.Duration("fail-mtbf", 0, "mean time between replica failures for a seeded random schedule (0 = no random faults)")
		failMTTR    = flag.Duration("fail-mttr", 0, "mean time to recovery for random faults (0 = crashed replicas stay down)")
		failSeed    = flag.Int64("fail-seed", 1, "fault schedule seed")
		failRetries = flag.Int("fail-retries", 0, "max re-enqueues per crashed request (0 = default 3)")
		failBackoff = flag.Duration("fail-backoff", 0, "delay before first re-enqueue, doubling per retry (0 = default 50ms)")
	)
	flag.Parse()

	var hw qoserve.Hardware
	switch *hardware {
	case "llama3-8b":
		hw = qoserve.Llama3_8B_A100
	case "qwen-7b":
		hw = qoserve.Qwen_7B_2xA100
	case "llama3-70b":
		hw = qoserve.Llama3_70B_4xH100
	default:
		log.Fatalf("unknown hardware %q", *hardware)
	}

	var (
		reqs []qoserve.Request
		err  error
	)
	if *tracePath != "" {
		reqs, err = loadTrace(*tracePath)
	} else {
		var ds qoserve.Dataset
		switch *datasetName {
		case "ShareGPT":
			ds = qoserve.DatasetShareGPT
		case "Azure-Conv":
			ds = qoserve.DatasetAzureConv
		case "Azure-Code":
			ds = qoserve.DatasetAzureCode
		default:
			log.Fatalf("unknown dataset %q", *datasetName)
		}
		spec := qoserve.WorkloadSpec{
			Dataset:             ds,
			QPS:                 *qps,
			Duration:            *duration,
			LowPriorityFraction: *lowPrio,
			Seed:                *seed,
		}
		if *burstQPS > 0 {
			spec.BurstQPS = *burstQPS
			spec.BurstPeriod = *burstPeriod
		}
		reqs, err = qoserve.GenerateWorkload(spec)
	}
	if err != nil {
		log.Fatal(err)
	}

	opts := qoserve.Options{
		Hardware: hw,
		Policy:   qoserve.Policy(*policyName),
		Replicas: *replicas,
		Chunk:    *chunk,
		QoServe: qoserve.QoServeTuning{
			Alpha:                *alpha,
			DisableAdaptiveAlpha: *alpha > 0,
		},
		Faults: qoserve.FaultPlan{
			Schedule:     *failSpec,
			MTBF:         *failMTBF,
			MTTR:         *failMTTR,
			Seed:         *failSeed,
			MaxRetries:   *failRetries,
			RetryBackoff: *failBackoff,
		},
	}
	start := time.Now()
	report, err := qoserve.Serve(opts, reqs)
	if err != nil {
		log.Fatal(err)
	}

	if *outPath != "" {
		if err := writeOutcomesCSV(*outPath, report); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d outcomes to %s", len(report.Outcomes), *outPath)
	}
	fmt.Printf("policy=%s hardware=%s replicas=%d requests=%d simulated=%v wall=%v\n",
		*policyName, hw, report.Replicas, len(report.Outcomes),
		report.Duration.Round(time.Second), time.Since(start).Round(time.Millisecond))
	fmt.Printf("violations=%.2f%% relegated=%.2f%% goodput=%.3f req/s/replica\n",
		100*report.ViolationRate, 100*report.RelegationRate, report.Goodput)
	if f := report.Faults; f != nil {
		fmt.Printf("faults: crashes=%d restarts=%d retries=%d lost_tokens=%d failed=%d\n",
			f.Crashes, f.Restarts, f.Retries, f.LostTokens, f.FailedRequests)
	}
	for _, c := range qoserve.DefaultClasses() {
		if report.ViolationRateOf(c.Name) == 0 && report.TTFTPercentile(c.Name, 0.5) == 0 {
			continue
		}
		fmt.Printf("  %-3s violations=%.2f%% TTFT p50=%v p99=%v TTLT p99=%v\n",
			c.Name,
			100*report.ViolationRateOf(c.Name),
			report.TTFTPercentile(c.Name, 0.5).Round(time.Millisecond),
			report.TTFTPercentile(c.Name, 0.99).Round(time.Millisecond),
			report.TTLTPercentile(c.Name, 0.99).Round(time.Millisecond))
	}
}

// writeOutcomesCSV dumps per-request outcomes for external analysis.
func writeOutcomesCSV(path string, report *qoserve.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{
		"id", "class", "priority", "completed", "violated", "relegated",
		"ttft_ms", "ttlt_ms", "max_tbt_ms", "retries", "fail_reason",
	}); err != nil {
		return err
	}
	for _, o := range report.Outcomes {
		prio := "high"
		if o.Priority == qoserve.Low {
			prio = "low"
		}
		rec := []string{
			strconv.FormatUint(o.ID, 10),
			o.Class,
			prio,
			strconv.FormatBool(o.Completed),
			strconv.FormatBool(o.Violated),
			strconv.FormatBool(o.Relegated),
			strconv.FormatFloat(float64(o.TTFT)/1e6, 'f', 3, 64),
			strconv.FormatFloat(float64(o.TTLT)/1e6, 'f', 3, 64),
			strconv.FormatFloat(float64(o.MaxTBT)/1e6, 'f', 3, 64),
			strconv.Itoa(o.Retries),
			o.FailReason,
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// loadTrace reads a JSON-lines trace produced by cmd/tracegen.
func loadTrace(path string) ([]qoserve.Request, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	internal, err := workload.ReadTrace(f)
	if err != nil {
		return nil, err
	}
	out := make([]qoserve.Request, len(internal))
	for i, r := range internal {
		prio := qoserve.High
		if r.Priority != 0 {
			prio = qoserve.Low
		}
		out[i] = qoserve.Request{
			ID: r.ID, App: r.App, Class: r.Class.Name, Priority: prio,
			Arrival:      r.Arrival.Duration(),
			PromptTokens: r.PromptTokens,
			DecodeTokens: r.DecodeTokens,
		}
	}
	return out, nil
}
