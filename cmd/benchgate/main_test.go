package main

import (
	"strings"
	"testing"

	"qoserve/internal/benchfmt"
)

func load(t *testing.T, path string) benchfmt.Baseline {
	t.Helper()
	doc, err := benchfmt.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestGatePassesWithinTolerance: a fresh run that is modestly slower but
// within the generous timing tolerance, with allocs unchanged, passes.
func TestGatePassesWithinTolerance(t *testing.T) {
	base := load(t, "testdata/baseline.json")
	cur := load(t, "testdata/ok.json")
	rows, failures := compare(base, cur, 0.6, 0.3)
	if len(failures) != 0 {
		t.Fatalf("expected clean gate, got failures: %v", failures)
	}
	if len(rows) == 0 {
		t.Fatal("expected comparison rows for shared benchmarks")
	}
}

// TestGateFailsOnRegression is the committed negative test: the regressed
// snapshot doubles allocs/op on the pooled frame path (0 -> 9), drops
// req/s by more than half, and triples ns/op. All three must trip.
func TestGateFailsOnRegression(t *testing.T) {
	base := load(t, "testdata/baseline.json")
	cur := load(t, "testdata/regressed.json")
	_, failures := compare(base, cur, 0.6, 0.3)
	if len(failures) == 0 {
		t.Fatal("regressed snapshot passed the gate")
	}
	joined := strings.Join(failures, "\n")
	for _, want := range []string{"allocs/op", "req/s", "ns/op"} {
		if !strings.Contains(joined, want) {
			t.Errorf("expected a %s failure, got:\n%s", want, joined)
		}
	}
}

// TestGateZeroAllocBaselineIsStrict: a zero allocs/op baseline is a
// structural property — any growth fails regardless of tolerance.
func TestGateZeroAllocBaselineIsStrict(t *testing.T) {
	one := int64(1)
	zero := int64(0)
	base := benchfmt.Baseline{Benchmarks: []benchfmt.Result{
		{Name: "BenchmarkX", NsPerOp: 100, AllocsPerOp: &zero},
	}}
	cur := benchfmt.Baseline{Benchmarks: []benchfmt.Result{
		{Name: "BenchmarkX", NsPerOp: 100, AllocsPerOp: &one},
	}}
	if _, failures := compare(base, cur, 0.6, 0.3); len(failures) == 0 {
		t.Fatal("0 -> 1 allocs/op must fail the gate")
	}
}

// TestGateIgnoresUnsharedBenchmarks: entries present on only one side are
// skipped, so a short CI pass can measure a subset of the baseline.
func TestGateIgnoresUnsharedBenchmarks(t *testing.T) {
	base := benchfmt.Baseline{Benchmarks: []benchfmt.Result{
		{Name: "BenchmarkOnlyInBaseline", NsPerOp: 100},
		{Name: "BenchmarkShared", NsPerOp: 100},
	}}
	cur := benchfmt.Baseline{Benchmarks: []benchfmt.Result{
		{Name: "BenchmarkShared", NsPerOp: 110},
		{Name: "BenchmarkOnlyInCurrent", NsPerOp: 1e9},
	}}
	rows, failures := compare(base, cur, 0.6, 0.3)
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
	for _, row := range rows {
		if strings.Contains(row, "OnlyIn") {
			t.Fatalf("unshared benchmark compared: %s", row)
		}
	}
}

// TestGateCountersDoNotGate: raw-counter extras (no _ms suffix, not a
// throughput unit) are informational only.
func TestGateCountersDoNotGate(t *testing.T) {
	base := benchfmt.Baseline{Benchmarks: []benchfmt.Result{
		{Name: "BenchmarkY", NsPerOp: 100, Extra: map[string]float64{"prefix_transfer_tokens": 5000}},
	}}
	cur := benchfmt.Baseline{Benchmarks: []benchfmt.Result{
		{Name: "BenchmarkY", NsPerOp: 100, Extra: map[string]float64{"prefix_transfer_tokens": 1}},
	}}
	if _, failures := compare(base, cur, 0.6, 0.3); len(failures) != 0 {
		t.Fatalf("counter extra gated: %v", failures)
	}
}
