// Command benchgate diffs a freshly measured benchmark snapshot against a
// committed baseline (both in the cmd/benchjson JSON format) and exits
// non-zero when any shared metric regresses past its tolerance. It is the
// CI regression gate for the gateway token path: `make bench-gate` runs a
// short fresh pass of the PR 10 benchmarks and feeds both files here.
//
// Usage:
//
//	benchgate -baseline BENCH_PR10.json -current /tmp/fresh.json
//	benchgate -baseline ... -current ... -tol 0.6 -tol-allocs 0.3
//
// Comparison rules:
//
//   - Only benchmarks present in BOTH files are compared; extra entries on
//     either side are ignored (so a short CI pass may run a subset).
//   - Throughput metrics ("req/s", "tok/s") are higher-better: current
//     must be >= baseline * (1 - tol).
//   - Timing metrics (ns/op and any *_ms extra) are lower-better: current
//     must be <= baseline * (1 + tol).
//   - allocs/op is lower-better with its own, tighter -tol-allocs bound:
//     allocation counts are deterministic on the hot path, so they get far
//     less slack than wall-clock numbers on noisy CI machines.
//   - Other extra metrics (counters like prefix_transfer_tokens) are
//     informational and never gate.
//
// Timing tolerances default loose (-tol 0.6) because CI machines are
// shared and single-core; the gate exists to catch structural regressions
// (a 2x slowdown, the alloc-free path growing allocations), not 10% noise.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"qoserve/internal/benchfmt"
)

func main() {
	baselinePath := flag.String("baseline", "", "committed baseline JSON (required)")
	currentPath := flag.String("current", "", "freshly measured JSON (required)")
	tol := flag.Float64("tol", 0.6, "relative tolerance for timing/throughput metrics")
	tolAllocs := flag.Float64("tol-allocs", 0.3, "relative tolerance for allocs/op")
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline and -current are required")
		os.Exit(2)
	}

	base, err := benchfmt.Load(*baselinePath)
	if err != nil {
		fatal(err)
	}
	cur, err := benchfmt.Load(*currentPath)
	if err != nil {
		fatal(err)
	}

	rows, failures := compare(base, cur, *tol, *tolAllocs)
	for _, row := range rows {
		fmt.Println(row)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchgate: %d metric(s) regressed past tolerance:\n", len(failures))
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		os.Exit(1)
	}
	if len(rows) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmarks shared between baseline and current")
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmark(s) within tolerance (tol=%.2f, tol-allocs=%.2f)\n",
		len(rows), *tol, *tolAllocs)
}

// higherBetter lists extra-metric units where larger values are better.
var higherBetter = map[string]bool{"req/s": true, "tok/s": true}

// gatedExtra reports whether an extra metric participates in the gate.
// Throughput units and millisecond latencies gate; raw counters do not.
func gatedExtra(unit string) bool {
	return higherBetter[unit] || len(unit) > 3 && unit[len(unit)-3:] == "_ms"
}

// compare diffs every benchmark present in both documents. It returns one
// human-readable row per compared benchmark and one failure line per
// metric outside tolerance.
func compare(base, cur benchfmt.Baseline, tol, tolAllocs float64) (rows, failures []string) {
	curByName := make(map[string]benchfmt.Result, len(cur.Benchmarks))
	for _, r := range cur.Benchmarks {
		curByName[r.Name] = r
	}
	names := make([]string, 0, len(base.Benchmarks))
	byName := make(map[string]benchfmt.Result, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		if _, ok := curByName[r.Name]; ok {
			names = append(names, r.Name)
			byName[r.Name] = r
		}
	}
	sort.Strings(names)

	for _, name := range names {
		b, c := byName[name], curByName[name]
		rows = append(rows, fmt.Sprintf("%s: ns/op %.0f -> %.0f", name, b.NsPerOp, c.NsPerOp))
		if bad, msg := lowerBetter(name, "ns/op", b.NsPerOp, c.NsPerOp, tol); bad {
			failures = append(failures, msg)
		}
		if b.AllocsPerOp != nil && c.AllocsPerOp != nil {
			rows = append(rows, fmt.Sprintf("%s: allocs/op %d -> %d", name, *b.AllocsPerOp, *c.AllocsPerOp))
			if bad, msg := lowerBetter(name, "allocs/op",
				float64(*b.AllocsPerOp), float64(*c.AllocsPerOp), tolAllocs); bad {
				failures = append(failures, msg)
			}
		}
		units := make([]string, 0, len(b.Extra))
		for unit := range b.Extra {
			if _, ok := c.Extra[unit]; ok && gatedExtra(unit) {
				units = append(units, unit)
			}
		}
		sort.Strings(units)
		for _, unit := range units {
			bv, cv := b.Extra[unit], c.Extra[unit]
			rows = append(rows, fmt.Sprintf("%s: %s %.2f -> %.2f", name, unit, bv, cv))
			if higherBetter[unit] {
				if cv < bv*(1-tol) {
					failures = append(failures, fmt.Sprintf(
						"%s %s dropped %.2f -> %.2f (floor %.2f)", name, unit, bv, cv, bv*(1-tol)))
				}
			} else if bad, msg := lowerBetter(name, unit, bv, cv, tol); bad {
				failures = append(failures, msg)
			}
		}
	}
	return rows, failures
}

// lowerBetter checks a metric where smaller is better. A zero baseline
// (e.g. allocs/op 0 on the pooled path) allows zero slack: any growth at
// all is a regression, because zero-alloc is a structural property, not a
// measurement.
func lowerBetter(name, unit string, base, cur, tol float64) (bool, string) {
	limit := base * (1 + tol)
	if cur > limit {
		return true, fmt.Sprintf("%s %s grew %.2f -> %.2f (limit %.2f)", name, unit, base, cur, limit)
	}
	return false, ""
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate: "+err.Error())
	os.Exit(1)
}
