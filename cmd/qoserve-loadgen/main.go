// Command qoserve-loadgen benchmarks the live serving gateway with
// deterministic open- or closed-loop load. It embeds the gateway in-process
// (same construction as qoserved) so a run measures the serving path —
// admission, scheduling, batching, token fan-out — without network noise,
// and a fixed seed replays the identical request list.
//
//	# closed loop: 32 concurrent streams until 500 requests finish
//	qoserve-loadgen -policy sarathi-fcfs -replicas 4 -n 500 -workers 32
//
//	# open loop: Poisson arrivals at 200 req/s of wall time
//	qoserve-loadgen -mode open -rate 200 -n 1000 -timescale 500
//
// The exit status is non-zero if any request fails to complete or (unless
// -allow-drops) any token event was dropped on a full stream buffer, so CI
// can use a short run as a no-silent-drop smoke test. -json emits the
// report as machine-readable JSON on stdout.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"qoserve/internal/cluster"
	"qoserve/internal/core"
	"qoserve/internal/kvcache"
	"qoserve/internal/loadgen"
	"qoserve/internal/model"
	"qoserve/internal/predictor"
	"qoserve/internal/profile"
	"qoserve/internal/qos"
	"qoserve/internal/sched"
	"qoserve/internal/server"
	"qoserve/internal/sim"
	"qoserve/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qoserve-loadgen: ")

	var (
		hardware   = flag.String("hardware", "llama3-8b", "llama3-8b | qwen-7b | llama3-70b")
		policyName = flag.String("policy", "sarathi-fcfs", "qoserve | sarathi-fcfs | sarathi-edf | sarathi-srpf | vllm | medha")
		chunk      = flag.Int("chunk", 512, "fixed chunk for Sarathi policies")
		replicas   = flag.Int("replicas", 1, "independent scheduler replicas (serving loops)")
		balancer   = flag.String("balancer", "round-robin", "replica routing: round-robin | least-loaded | prefix | predicted")
		streamBuf  = flag.Int("stream-buffer", 256, "per-stream event buffer (events)")
		timescale  = flag.Float64("timescale", 200, "virtual-time acceleration factor")
		seed       = flag.Int64("seed", 1, "workload seed; same seed replays the identical request list")
		mode       = flag.String("mode", "closed", "arrival discipline: closed | open")
		rate       = flag.Float64("rate", 100, "open-loop arrival rate (req/s of wall time)")
		workers    = flag.Int("workers", 16, "closed-loop concurrent streams")
		n          = flag.Int("n", 200, "total requests")
		mix        = flag.String("mix", "Q1:0.5,Q2:0.3,Q3:0.2", "class mix as name:weight pairs")
		promptP50  = flag.Float64("prompt-p50", 512, "prompt token median")
		promptP90  = flag.Float64("prompt-p90", 1024, "prompt token 90th percentile")
		decodeP50  = flag.Float64("decode-p50", 16, "decode token median")
		decodeP90  = flag.Float64("decode-p90", 64, "decode token 90th percentile")
		turns      = flag.Int("session-turns", 0, "turns per conversation; > 0 enables session mode (shared-prefix multi-turn load)")
		followP50  = flag.Float64("follow-p50", 64, "session-mode follow-up user tokens median")
		followP90  = flag.Float64("follow-p90", 128, "session-mode follow-up user tokens 90th percentile")
		prefixMin  = flag.Int("prefix-min-match", cluster.DefaultMinMatchTokens, "smallest cached-prefix match (tokens) the prefix balancer chases")
		kvDRAM     = flag.Int("kv-dram-tokens", 0, "DRAM spill tier per replica (tokens); 0 evicts demoted prefix blocks outright")
		prefixIdx  = flag.Bool("prefix-global", true, "publish prefix-cache membership into a lock-free global index for routing probes")
		kvXferGbps = flag.Float64("kv-transfer-gbps", 0, "cross-replica KV migration interconnect (GB/s); 0 recomputes missed prefixes instead")
		jsonOut    = flag.Bool("json", false, "emit the report as JSON on stdout")
		allowDrops = flag.Bool("allow-drops", false, "do not fail on dropped stream events")
	)
	flag.Parse()

	var mc model.Config
	switch *hardware {
	case "llama3-8b":
		mc = model.Llama3_8B_A100_TP1()
	case "qwen-7b":
		mc = model.Qwen_7B_A100_TP2()
	case "llama3-70b":
		mc = model.Llama3_70B_H100_TP4()
	default:
		log.Fatalf("unknown hardware %q", *hardware)
	}

	// Memoized: the qoserve/medha policies and the predicted balancer all
	// share one read-only forest.
	var trained *predictor.Forest
	trainPredictor := func() *predictor.Forest {
		if trained != nil {
			return trained
		}
		log.Printf("profiling %s and training the latency predictor ...", mc.Name())
		samples, err := profile.Collect(mc, profile.Config{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		trained, err = predictor.Train(samples, predictor.ForestConfig{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		return trained
	}

	var factory func() sched.Scheduler
	switch *policyName {
	case "qoserve":
		forest := trainPredictor()
		factory = func() sched.Scheduler { return core.New(forest, core.DefaultOptions()) }
	case "sarathi-fcfs":
		factory = func() sched.Scheduler { return sched.NewSarathi(sched.FCFS, *chunk) }
	case "sarathi-edf":
		factory = func() sched.Scheduler { return sched.NewSarathi(sched.EDF, *chunk) }
	case "sarathi-srpf":
		factory = func() sched.Scheduler { return sched.NewSarathi(sched.SRPF, *chunk) }
	case "vllm":
		factory = func() sched.Scheduler { return sched.NewVLLM(0) }
	case "medha":
		forest := trainPredictor()
		factory = func() sched.Scheduler { return sched.NewMedha(forest, 50*sim.Millisecond, 0) }
	default:
		log.Fatalf("unknown policy %q", *policyName)
	}

	var lb cluster.GatewayBalancer
	switch *balancer {
	case "round-robin":
		lb = &cluster.AtomicRoundRobin{}
	case "least-loaded":
		lb = cluster.LeastLoaded{}
	case "prefix":
		lb = &cluster.PrefixAffinity{MinMatchTokens: *prefixMin}
	case "predicted":
		pl := &cluster.PredictedLatency{Predictor: trainPredictor()}
		if *kvXferGbps > 0 {
			pl.Transfer = &cluster.TransferModel{
				BytesPerToken: mc.Model.KVBytesPerToken(),
				BandwidthBps:  *kvXferGbps * 1e9,
				MinTokens:     *prefixMin,
			}
		}
		lb = pl
	default:
		log.Fatalf("unknown balancer %q", *balancer)
	}

	classes, err := parseMix(*mix,
		workload.TokenDist{P50: *promptP50, P90: *promptP90, Max: 8192},
		workload.TokenDist{P50: *decodeP50, P90: *decodeP90, Max: 4096})
	if err != nil {
		log.Fatal(err)
	}

	srv, err := server.New(server.Config{
		Model:               mc,
		SchedulerFactory:    factory,
		Replicas:            *replicas,
		Balancer:            lb,
		KV:                  kvcache.Config{DRAMTokens: *kvDRAM},
		GlobalPrefixIndex:   *prefixIdx,
		KVTransferBandwidth: *kvXferGbps * 1e9,
		StreamBuffer:        *streamBuf,
		Classes:             qos.Table3(),
		Timescale:           *timescale,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	spec := loadgen.Spec{
		Seed:         *seed,
		Mode:         loadgen.Mode(*mode),
		Requests:     *n,
		Workers:      *workers,
		Rate:         *rate,
		Classes:      classes,
		SessionTurns: *turns,
		FollowUp:     workload.TokenDist{P50: *followP50, P90: *followP90, Max: 4096},
	}
	log.Printf("driving %s/%s: %d replicas, %s loop, %d requests, seed %d, %gx time",
		mc.Name(), *policyName, *replicas, *mode, *n, *seed, *timescale)
	rep, err := loadgen.Run(context.Background(), srv, spec)
	if err != nil {
		log.Fatal(err)
	}
	dropped := srv.DroppedEvents()
	kvStats := srv.KVStats()

	if *jsonOut {
		out := struct {
			loadgen.Report
			DroppedEvents uint64 `json:"dropped_events"`
			Replicas      int    `json:"replicas"`
			Policy        string `json:"policy"`
			Balancer      string `json:"balancer"`
			Seed          int64  `json:"seed"`
			ReloadTokens  uint64 `json:"prefix_reload_tokens"`
		}{rep, dropped, *replicas, *policyName, *balancer, *seed, kvStats.ReloadTokens}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Printf("completed  %d/%d (%d errors)\n", rep.Completed, rep.Requests, rep.Errors)
		fmt.Printf("throughput %.1f req/s, %.0f tokens/s over %.2fs\n", rep.ReqPerSec, rep.TokensPerSec, rep.WallSeconds)
		fmt.Printf("TTFT       p50 %.1fms  p99 %.1fms (virtual)\n", rep.TTFTP50MS, rep.TTFTP99MS)
		fmt.Printf("max TBT    p50 %.1fms  p99 %.1fms (virtual)\n", rep.TBTP50MS, rep.TBTP99MS)
		fmt.Printf("violated   %d  relegated %d  dropped events %d\n", rep.Violated, rep.Relegated, dropped)
		if *turns > 0 {
			fmt.Printf("prefix     %d tokens hit, %d reloaded from DRAM, %d recomputed\n",
				kvStats.PrefixHitTokens, kvStats.ReloadTokens, rep.PrefixRecomputeTokens)
			if *kvXferGbps > 0 {
				fmt.Printf("transfer   %d tokens imported cross-replica, %d fallbacks\n",
					kvStats.PrefixTransferTokens, kvStats.TransferFallbacks)
			}
		}
		for _, pc := range rep.PerClass {
			fmt.Printf("  %-4s completed %-5d violated %d\n", pc.Name, pc.Completed, pc.Violated)
		}
	}

	if rep.Completed != rep.Requests || rep.Errors != 0 {
		log.Fatalf("FAIL: %d of %d requests completed (%d errors)", rep.Completed, rep.Requests, rep.Errors)
	}
	if dropped != 0 && !*allowDrops {
		log.Fatalf("FAIL: %d stream events dropped (use -allow-drops to tolerate)", dropped)
	}
}

// parseMix parses "Q1:0.5,Q2:0.3" into loadgen classes sharing the given
// token distributions. Q3 maps to low priority, matching Table 3's batch
// tier.
func parseMix(mix string, prompt, decode workload.TokenDist) ([]loadgen.Class, error) {
	var classes []loadgen.Class
	for _, part := range strings.Split(mix, ",") {
		name, weight, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q (want name:weight)", part)
		}
		w, err := strconv.ParseFloat(weight, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad mix weight %q", weight)
		}
		prio := qos.High
		if name == "Q3" {
			prio = qos.Low
		}
		classes = append(classes, loadgen.Class{
			Name: name, Weight: w, Priority: prio, Prompt: prompt, Decode: decode,
		})
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("empty class mix")
	}
	return classes, nil
}
