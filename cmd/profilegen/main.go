// Command profilegen runs the offline profiling pass and trains the
// batch-latency random forest for one model/hardware configuration — the
// artifact the paper ships per (model, hardware, parallelism) deployment
// (§3.6.1).
//
//	profilegen -hardware llama3-8b -out llama3-8b.forest.json
//	profilegen -verify llama3-8b.forest.json -hardware llama3-8b
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"

	"qoserve/internal/model"
	"qoserve/internal/predictor"
	"qoserve/internal/profile"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("profilegen: ")

	var (
		hardware = flag.String("hardware", "llama3-8b", "llama3-8b | qwen-7b | llama3-70b")
		out      = flag.String("out", "", "path to save the trained forest (JSON)")
		verify   = flag.String("verify", "", "path of a saved forest to validate instead of training")
		seed     = flag.Int64("seed", 1, "profiling/training seed")
		trees    = flag.Int("trees", 0, "forest size (default 20)")
	)
	flag.Parse()

	var mc model.Config
	switch *hardware {
	case "llama3-8b":
		mc = model.Llama3_8B_A100_TP1()
	case "qwen-7b":
		mc = model.Qwen_7B_A100_TP2()
	case "llama3-70b":
		mc = model.Llama3_70B_H100_TP4()
	default:
		log.Fatalf("unknown hardware %q", *hardware)
	}

	if *verify != "" {
		f, err := os.Open(*verify)
		if err != nil {
			log.Fatal(err)
		}
		forest, err := predictor.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded forest: %d trees\n", forest.Trees())
		report(mc, forest)
		return
	}

	log.Printf("profiling %s ...", mc.Name())
	samples, err := profile.Collect(mc, profile.Config{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("collected %d samples; training ...", len(samples))
	forest, err := predictor.Train(samples, predictor.ForestConfig{Seed: *seed, Trees: *trees})
	if err != nil {
		log.Fatal(err)
	}
	report(mc, forest)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := forest.Save(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("saved forest to %s", *out)
	}
}

// report prints held-out accuracy against the analytic model, mirroring the
// paper's "<10% error margin" check.
func report(mc model.Config, forest *predictor.Forest) {
	rng := rand.New(rand.NewSource(1234))
	var sumErr, worst float64
	const trials = 500
	for i := 0; i < trials; i++ {
		shape := model.BatchShape{}
		if rng.Intn(4) > 0 {
			shape.Prefill = []model.ChunkShape{{
				Tokens: 32 + rng.Intn(4000), CtxStart: rng.Intn(8000),
			}}
		}
		for d := rng.Intn(48); d > 0; d-- {
			shape.DecodeCtx = append(shape.DecodeCtx, rng.Intn(8000))
		}
		if shape.TotalNewTokens() == 0 {
			continue
		}
		truth := mc.BatchTime(shape).Seconds()
		rel := math.Abs(forest.Predict(shape).Seconds()-truth) / truth
		sumErr += rel
		if rel > worst {
			worst = rel
		}
	}
	fmt.Printf("%s: mean relative error %.2f%%, worst %.2f%% over %d random batches\n",
		mc.Name(), 100*sumErr/trials, 100*worst, trials)
}
