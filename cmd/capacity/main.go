// Command capacity runs the two capacity searches behind the paper's
// cluster-provisioning results:
//
//	capacity goodput  — maximum per-replica QPS within the violation target
//	                    for each scheduler (Fig. 7's metric)
//	capacity replicas — minimum shared-cluster size for a fixed load
//	                    (Table 4's metric)
//
// Examples:
//
//	capacity -dataset Azure-Code goodput
//	capacity -dataset Azure-Code -qps 35 -max-replicas 16 replicas
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"qoserve/internal/cluster"
	"qoserve/internal/core"
	"qoserve/internal/experiments"
	"qoserve/internal/model"
	"qoserve/internal/predictor"
	"qoserve/internal/profile"
	"qoserve/internal/qos"
	"qoserve/internal/request"
	"qoserve/internal/sched"
	"qoserve/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("capacity: ")

	var (
		datasetName = flag.String("dataset", "Azure-Code", "ShareGPT, Azure-Conv, or Azure-Code")
		duration    = flag.Duration("duration", 10*time.Minute, "probe trace duration")
		seed        = flag.Int64("seed", 1, "workload seed")
		maxViol     = flag.Float64("max-violations", 0.01, "admissible violation fraction")
		qps         = flag.Float64("qps", 35, "fixed load for the 'replicas' search")
		maxReplicas = flag.Int("max-replicas", 32, "upper bound for the 'replicas' search")
	)
	flag.Parse()

	mode := flag.Arg(0)
	if mode != "goodput" && mode != "replicas" {
		log.Fatalf("usage: capacity [flags] goodput|replicas")
	}

	ds, err := workload.DatasetByName(*datasetName)
	if err != nil {
		log.Fatal(err)
	}
	mc := model.Llama3_8B_A100_TP1()
	tiers := workload.EqualTiers(qos.Table3())

	samples, err := profile.Collect(mc, profile.Config{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	forest, err := predictor.Train(samples, predictor.ForestConfig{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}

	gen := func(rate float64) ([]*request.Request, error) {
		n := int(rate * duration.Seconds())
		if n < 50 {
			n = 50
		}
		return workload.Generate(workload.Spec{
			Dataset: ds, Tiers: tiers,
			Arrivals: workload.Poisson{QPS: rate},
			Requests: n, Seed: *seed,
		})
	}
	opts := cluster.SearchOptions{
		MaxViolations: *maxViol,
		Tolerance:     0.05,
		HorizonFor:    experiments.Horizon,
	}
	factories := []struct {
		name string
		f    cluster.SchedulerFactory
	}{
		{"Sarathi-FCFS", func() sched.Scheduler { return sched.NewSarathi(sched.FCFS, 256) }},
		{"Sarathi-EDF", func() sched.Scheduler { return sched.NewSarathi(sched.EDF, 256) }},
		{"QoServe", func() sched.Scheduler { return core.New(forest, core.DefaultOptions()) }},
	}

	switch mode {
	case "goodput":
		fmt.Printf("%-14s%16s\n", "Scheduler", "Goodput (QPS)")
		for _, fc := range factories {
			rate, _, err := cluster.MaxGoodput(mc, fc.f, gen, opts)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-14s%16.2f\n", fc.name, rate)
		}
	case "replicas":
		fmt.Printf("Load %.1f QPS on %s, target <=%.1f%% violations\n",
			*qps, ds.Name, 100**maxViol)
		fmt.Printf("%-14s%12s\n", "Scheduler", "Replicas")
		for _, fc := range factories {
			n, _, err := cluster.MinReplicas(mc, fc.f, func() ([]*request.Request, error) {
				return gen(*qps)
			}, *maxReplicas, opts)
			if err != nil {
				fmt.Printf("%-14s%12s (%v)\n", fc.name, "-", err)
				continue
			}
			fmt.Printf("%-14s%12d\n", fc.name, n)
		}
	}
}
