// Command qoserved runs the real-time QoServe serving daemon: an HTTP
// service that schedules declared-shape requests with the QoServe (or a
// baseline) scheduler and streams token events as they are "generated" by
// the calibrated cost model. It is a QoS-policy load-testing harness — the
// serving-system shape of the paper without GPUs.
//
//	qoserved -addr :8080 -policy qoserve -timescale 10
//
// With -mode disagg the replicas split into a prefill tier and a decode
// tier joined by a modeled KV-transfer interconnect; -balancer predicted
// routes each request to the replica with the lowest forest-predicted
// completion latency:
//
//	qoserved -mode disagg -replicas 4 -prefill-replicas 2 -balancer predicted
//
// With -kv-transfer-gbps set, a replica that misses a prefix cached on
// another replica imports the KV blocks over a modeled interconnect
// instead of recomputing them; -prefix-global (default on) backs routing
// probes with a lock-free global prefix index instead of per-replica
// cache locks:
//
//	qoserved -replicas 4 -balancer predicted -kv-transfer-gbps 64
//
//	curl -s localhost:8080/v1/classes
//	curl -s -X POST localhost:8080/v1/generate \
//	     -d '{"class":"Q1","prompt_tokens":1500,"decode_tokens":20}'
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/metrics
//	curl -s localhost:8080/debug/trace?n=20
//	curl -s localhost:8080/debug/queues
//
// See docs/OPERATIONS.md for the full endpoint and metric reference.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"qoserve/internal/cluster"
	"qoserve/internal/core"
	"qoserve/internal/kvcache"
	"qoserve/internal/model"
	"qoserve/internal/predictor"
	"qoserve/internal/profile"
	"qoserve/internal/qos"
	"qoserve/internal/sched"
	"qoserve/internal/server"
	"qoserve/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qoserved: ")

	var (
		addr       = flag.String("addr", ":8080", "listen address")
		hardware   = flag.String("hardware", "llama3-8b", "llama3-8b | qwen-7b | llama3-70b")
		policyName = flag.String("policy", "qoserve", "qoserve | sarathi-fcfs | sarathi-edf | sarathi-srpf | vllm | medha")
		timescale  = flag.Float64("timescale", 1, "virtual-time acceleration factor")
		chunk      = flag.Int("chunk", 256, "fixed chunk for Sarathi policies")
		traceDepth = flag.Int("trace", 1024, "iterations retained for /debug/trace (0 disables tracing)")
		window     = flag.Duration("metrics-window", time.Minute, "virtual-time window for rolling per-class /metrics gauges")
		replicas   = flag.Int("replicas", 1, "independent scheduler replicas (serving loops)")
		mode       = flag.String("mode", "colocated", "colocated | disagg (split replicas into prefill and decode tiers)")
		prefillN   = flag.Int("prefill-replicas", 0, "disagg prefill-tier size; 0 means (replicas+1)/2")
		decodeCap  = flag.Int("decode-batch", 0, "disagg decode-tier batch cap; 0 derives it from the strictest TBT SLO")
		xferGbps   = flag.Float64("transfer-gbps", 0, "disagg prefill->decode KV interconnect (GB/s); 0 means 64 (NVLink-class)")
		balancer   = flag.String("balancer", "round-robin", "replica routing: round-robin | least-loaded | prefix | predicted")
		streamBuf  = flag.Int("stream-buffer", 256, "per-stream event buffer (events); slow consumers drop overflow")
		eventFrame = flag.Int("event-frame", 16, "coalesce each iteration's tokens into pooled frames of up to this many events; 0 reverts to per-token channel delivery")
		prefixMin  = flag.Int("prefix-min-match", cluster.DefaultMinMatchTokens, "smallest cached-prefix match (tokens) the prefix balancer chases")
		kvDRAM     = flag.Int("kv-dram-tokens", 0, "DRAM spill tier per replica (tokens); 0 evicts demoted prefix blocks outright")
		prefixIdx  = flag.Bool("prefix-global", true, "publish prefix-cache membership into a lock-free global index for routing probes")
		kvXferGbps = flag.Float64("kv-transfer-gbps", 0, "cross-replica KV migration interconnect (GB/s); 0 recomputes missed prefixes instead")
	)
	flag.Parse()

	var mc model.Config
	switch *hardware {
	case "llama3-8b":
		mc = model.Llama3_8B_A100_TP1()
	case "qwen-7b":
		mc = model.Qwen_7B_A100_TP2()
	case "llama3-70b":
		mc = model.Llama3_70B_H100_TP4()
	default:
		log.Fatalf("unknown hardware %q", *hardware)
	}

	// Memoized: the qoserve/medha policies and the predicted balancer all
	// want the same read-only forest, and profiling + training is the
	// expensive part of startup.
	var trained *predictor.Forest
	trainPredictor := func() *predictor.Forest {
		if trained != nil {
			return trained
		}
		log.Printf("profiling %s and training the latency predictor ...", mc.Name())
		samples, err := profile.Collect(mc, profile.Config{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		trained, err = predictor.Train(samples, predictor.ForestConfig{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		return trained
	}

	// Each replica needs its own scheduler (policy state must not be
	// shared), but the trained forest is read-only at predict time, so the
	// expensive profiling + training happens once and all replicas share
	// the predictor.
	var factory func() sched.Scheduler
	switch *policyName {
	case "qoserve":
		forest := trainPredictor()
		factory = func() sched.Scheduler { return core.New(forest, core.DefaultOptions()) }
	case "sarathi-fcfs":
		factory = func() sched.Scheduler { return sched.NewSarathi(sched.FCFS, *chunk) }
	case "sarathi-edf":
		factory = func() sched.Scheduler { return sched.NewSarathi(sched.EDF, *chunk) }
	case "sarathi-srpf":
		factory = func() sched.Scheduler { return sched.NewSarathi(sched.SRPF, *chunk) }
	case "vllm":
		factory = func() sched.Scheduler { return sched.NewVLLM(0) }
	case "medha":
		forest := trainPredictor()
		factory = func() sched.Scheduler { return sched.NewMedha(forest, 50*sim.Millisecond, 0) }
	default:
		log.Fatalf("unknown policy %q", *policyName)
	}

	var lb cluster.GatewayBalancer
	switch *balancer {
	case "round-robin":
		lb = &cluster.AtomicRoundRobin{}
	case "least-loaded":
		lb = cluster.LeastLoaded{}
	case "prefix":
		lb = &cluster.PrefixAffinity{MinMatchTokens: *prefixMin}
	case "predicted":
		pl := &cluster.PredictedLatency{Predictor: trainPredictor()}
		if *kvXferGbps > 0 {
			pl.Transfer = &cluster.TransferModel{
				BytesPerToken: mc.Model.KVBytesPerToken(),
				BandwidthBps:  *kvXferGbps * 1e9,
				MinTokens:     *prefixMin,
			}
		}
		lb = pl
	default:
		log.Fatalf("unknown balancer %q", *balancer)
	}

	cfg := server.Config{
		Model:               mc,
		SchedulerFactory:    factory,
		Replicas:            *replicas,
		Balancer:            lb,
		KV:                  kvcache.Config{DRAMTokens: *kvDRAM},
		GlobalPrefixIndex:   *prefixIdx,
		KVTransferBandwidth: *kvXferGbps * 1e9,
		StreamBuffer:        *streamBuf,
		EventFrame:          *eventFrame,
		Classes:             qos.Table3(),
		Timescale:           *timescale,
		TraceDepth:          *traceDepth,
		MetricsWindow:       *window,
		Mode:                *mode,
	}
	if *mode == "disagg" {
		cfg.PrefillReplicas = *prefillN
		cfg.MaxDecodeBatch = *decodeCap
		cfg.TransferBandwidth = *xferGbps * 1e9
	}
	srv, err := server.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	tiers := ""
	if *mode == "disagg" {
		tiers = fmt.Sprintf(" (disagg: %d prefill + %d decode)", srv.PrefillReplicas(), *replicas-srv.PrefillReplicas())
	}
	log.Printf("serving %s with %s x%d replicas%s at %gx time on %s", mc.Name(), *policyName, *replicas, tiers, *timescale, *addr)
	if err := httpSrv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}
