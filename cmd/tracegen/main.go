// Command tracegen synthesizes workload traces as JSON lines, for replay by
// cmd/qoserve-sim or external tooling.
//
//	tracegen -dataset Azure-Code -qps 3 -duration 10m -out trace.jsonl
package main

import (
	"flag"
	"log"
	"os"
	"time"

	"qoserve/internal/qos"
	"qoserve/internal/sim"
	"qoserve/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")

	var (
		datasetName = flag.String("dataset", "Azure-Code", "ShareGPT, Azure-Conv, or Azure-Code")
		qps         = flag.Float64("qps", 3, "mean arrival rate")
		burstQPS    = flag.Float64("burst-qps", 0, "peak rate for bursty traces (0 = steady)")
		burstPeriod = flag.Duration("burst-period", 15*time.Minute, "half-period of the burst wave")
		duration    = flag.Duration("duration", 10*time.Minute, "trace duration")
		lowPrio     = flag.Float64("low-priority", 0, "fraction of requests tagged free-tier")
		seed        = flag.Int64("seed", 1, "PRNG seed")
		out         = flag.String("out", "-", "output path ('-' = stdout)")
	)
	flag.Parse()

	ds, err := workload.DatasetByName(*datasetName)
	if err != nil {
		log.Fatal(err)
	}
	tiers := workload.EqualTiers(qos.Table3())
	if *lowPrio > 0 {
		tiers = workload.WithLowPriority(tiers, *lowPrio)
	}
	var arrivals workload.ArrivalProcess = workload.Poisson{QPS: *qps}
	avg := *qps
	if *burstQPS > 0 {
		arrivals = workload.Diurnal{LowQPS: *qps, HighQPS: *burstQPS,
			HalfPeriod: sim.FromDuration(*burstPeriod)}
		avg = (*qps + *burstQPS) / 2
	}
	n := int(avg * duration.Seconds())
	if n < 1 {
		log.Fatalf("duration %v at %v QPS yields no requests", *duration, *qps)
	}

	trace, err := workload.Generate(workload.Spec{
		Dataset: ds, Tiers: tiers, Arrivals: arrivals, Requests: n, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	if err := workload.WriteTrace(w, trace); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d requests", len(trace))
}
