// Command qoserve-bench drives load against a running qoserved instance:
// concurrent closed-loop HTTP clients issuing declared-shape requests, with
// a summary of virtual TTFT percentiles and SLO outcomes.
//
//	qoserved -addr :8080 -timescale 50 &
//	qoserve-bench -url http://localhost:8080 -workers 8 -requests 200 \
//	              -class Q1 -prompt 1500 -decode 20
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"qoserve/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qoserve-bench: ")

	var (
		url      = flag.String("url", "http://localhost:8080", "qoserved base URL")
		workers  = flag.Int("workers", 8, "concurrent closed-loop clients")
		requests = flag.Int("requests", 100, "total requests to issue")
		class    = flag.String("class", "Q1", "QoS class for the requests")
		prompt   = flag.Int("prompt", 1500, "prompt tokens per request")
		decode   = flag.Int("decode", 20, "decode tokens per request")
		mix      = flag.Bool("mix", false, "issue a Q1/Q2/Q3 mix instead of a single class")
		timeout  = flag.Duration("timeout", 10*time.Minute, "overall deadline")
	)
	flag.Parse()

	client := server.NewClient(*url, nil)
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	classes, err := client.FetchClasses(ctx)
	if err != nil {
		log.Fatalf("cannot reach %s: %v", *url, err)
	}
	log.Printf("server exposes %d QoS classes", len(classes))

	var reqs []server.GenerateRequest
	if *mix {
		for _, cl := range classes {
			reqs = append(reqs, server.GenerateRequest{
				Class: cl.Name, PromptTokens: *prompt, DecodeTokens: *decode,
			})
		}
	} else {
		reqs = []server.GenerateRequest{{
			Class: *class, PromptTokens: *prompt, DecodeTokens: *decode,
		}}
	}

	rep, err := client.DriveLoad(ctx, reqs, *workers, *requests)
	if err != nil {
		log.Fatal(err)
	}

	sort.Slice(rep.TTFTs, func(i, j int) bool { return rep.TTFTs[i] < rep.TTFTs[j] })
	pct := func(q float64) time.Duration {
		idx := int(q * float64(len(rep.TTFTs)-1))
		return rep.TTFTs[idx].Round(time.Millisecond)
	}
	fmt.Printf("requests=%d workers=%d wall=%v\n",
		rep.Requests, *workers, rep.Wall.Round(time.Millisecond))
	fmt.Printf("violated=%d (%.1f%%) relegated=%d\n",
		rep.Violated, 100*float64(rep.Violated)/float64(rep.Requests), rep.Relegated)
	fmt.Printf("virtual TTFT p50=%v p90=%v p99=%v\n", pct(0.5), pct(0.9), pct(0.99))

	stats, err := client.FetchStats(ctx)
	if err == nil {
		fmt.Printf("server: %d iterations, %d tokens, %.2f%% lifetime violations\n",
			stats.Iterations, stats.Tokens, 100*stats.ViolationRate)
	}
}
