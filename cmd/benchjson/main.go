// Command benchjson converts `go test -bench` output into a tracked JSON
// benchmark baseline (BENCH_PR3.json). The file is committed so future
// changes can diff ns/op, allocs/op, and per-experiment wall-clock against a
// known-good snapshot, and CI can archive it as an artifact.
//
// Usage:
//
//	go test -bench . -benchmem ./... | benchjson -o BENCH_PR3.json
//	benchjson -o BENCH_PR3.json -meta note="after flattening trees" bench.out
//
// Input files (or stdin when none are given) are standard Go benchmark
// logs; non-benchmark lines are ignored. Repeated -meta key=value flags
// attach free-form context (machine, scale, wall-clock measurements).
//
// The parser and document schema live in internal/benchfmt, shared with
// cmd/benchgate which diffs a fresh run against a committed baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"qoserve/internal/benchfmt"
)

// metaFlags collects repeated -meta key=value pairs.
type metaFlags map[string]string

func (m metaFlags) String() string { return "" }

func (m metaFlags) Set(v string) error {
	key, val, ok := strings.Cut(v, "=")
	if !ok || key == "" {
		return fmt.Errorf("expected key=value, got %q", v)
	}
	m[key] = val
	return nil
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	meta := metaFlags{}
	flag.Var(meta, "meta", "attach key=value metadata (repeatable)")
	flag.Parse()

	var results []benchfmt.Result
	if flag.NArg() == 0 {
		var err error
		results, err = benchfmt.Parse(os.Stdin)
		if err != nil {
			fatal(err)
		}
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		rs, err := benchfmt.Parse(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		results = append(results, rs...)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })

	doc := benchfmt.Baseline{
		GoVersion:  runtime.Version(),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Meta:       meta,
		Benchmarks: results,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
