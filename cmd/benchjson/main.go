// Command benchjson converts `go test -bench` output into a tracked JSON
// benchmark baseline (BENCH_PR3.json). The file is committed so future
// changes can diff ns/op, allocs/op, and per-experiment wall-clock against a
// known-good snapshot, and CI can archive it as an artifact.
//
// Usage:
//
//	go test -bench . -benchmem ./... | benchjson -o BENCH_PR3.json
//	benchjson -o BENCH_PR3.json -meta note="after flattening trees" bench.out
//
// Input files (or stdin when none are given) are standard Go benchmark
// logs; non-benchmark lines are ignored. Repeated -meta key=value flags
// attach free-form context (machine, scale, wall-clock measurements).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units (e.g. "req/s").
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Baseline is the emitted document.
type Baseline struct {
	GoVersion  string            `json:"go_version"`
	GoOS       string            `json:"goos"`
	GoArch     string            `json:"goarch"`
	GoMaxProcs int               `json:"gomaxprocs"`
	Meta       map[string]string `json:"meta,omitempty"`
	Benchmarks []Result          `json:"benchmarks"`
}

// metaFlags collects repeated -meta key=value pairs.
type metaFlags map[string]string

func (m metaFlags) String() string { return "" }

func (m metaFlags) Set(v string) error {
	key, val, ok := strings.Cut(v, "=")
	if !ok || key == "" {
		return fmt.Errorf("expected key=value, got %q", v)
	}
	m[key] = val
	return nil
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	meta := metaFlags{}
	flag.Var(meta, "meta", "attach key=value metadata (repeatable)")
	flag.Parse()

	var results []Result
	if flag.NArg() == 0 {
		var err error
		results, err = parse(os.Stdin)
		if err != nil {
			fatal(err)
		}
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		rs, err := parse(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		results = append(results, rs...)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })

	doc := Baseline{
		GoVersion:  runtime.Version(),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Meta:       meta,
		Benchmarks: results,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
}

// parse extracts benchmark result lines from a Go benchmark log.
func parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Minimum: Name Iterations Value "ns/op".
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: trimProcs(fields[0]), Iterations: iters}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
				ok = true
			case "B/op":
				b := int64(v)
				res.BytesPerOp = &b
			case "allocs/op":
				a := int64(v)
				res.AllocsPerOp = &a
			default:
				if res.Extra == nil {
					res.Extra = map[string]float64{}
				}
				res.Extra[fields[i+1]] = v
			}
		}
		if ok {
			out = append(out, res)
		}
	}
	return out, sc.Err()
}

// trimProcs drops the -N GOMAXPROCS suffix Go appends to benchmark names.
func trimProcs(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
