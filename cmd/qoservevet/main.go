// Command qoservevet runs the repo's custom static-analysis suite
// (internal/analysis): detdrift, hotpathalloc, tracehook, guardedfield,
// atomicfield, frozen, nosilentdrop, and metricwire. It is the
// project-specific half of `make lint`, alongside the stock
// staticcheck/govulncheck passes.
//
// Usage:
//
//	qoservevet [-list] [-json] [-o file] [-suppressions] [-budget n] [packages]
//
// Packages default to ./... relative to the working directory. Exit status
// is 1 when any finding survives (suppressions via //lint:ignore with a
// justification are honoured), 2 on operational errors.
//
// With -json the findings are emitted as one machine-readable report
// (schema below) instead of the line-per-finding text form, so CI can
// archive the report as an artifact and dashboards can diff runs:
//
//	{
//	  "version": 1,
//	  "findings":     [{"file","line","col","analyzer","message"}, ...],
//	  "suppressions": [{"file","line","analyzers","justification",
//	                    "fileWide","used"}, ...],
//	  "stats": {"packages","analyzers","facts","findings",
//	            "suppressions","staleSuppressions"}
//	}
//
// -o writes the report to a file (and, for -json, still prints findings to
// stdout as text so humans see them in CI logs).
//
// -suppressions switches to audit mode: every justified //lint:ignore in
// the analyzed packages is listed with its use status. A suppression that
// suppressed nothing this run is stale — the code it excused has been
// fixed or deleted — and is an error: delete the directive. With
// -budget n, the audit also fails when more than n live suppressions
// exist, so the escape hatch cannot silently grow; the committed budget
// lives in the Makefile (LINT_SUPPRESSION_BUDGET).
//
// The driver loads and type-checks packages from source via the go tool
// (no prebuilt export data), so it needs no toolchain support beyond `go
// list`. It intentionally does not speak the `go vet -vettool` unitchecker
// protocol, which would require golang.org/x/tools; the analyzer layer is
// shaped like go/analysis so that wiring is mechanical if that dependency
// ever lands.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"qoserve/internal/analysis"
)

// report is the -json document. The schema is versioned so downstream
// tooling can detect incompatible changes.
type report struct {
	Version      int               `json:"version"`
	Findings     []jsonFinding     `json:"findings"`
	Suppressions []jsonSuppression `json:"suppressions"`
	Stats        stats             `json:"stats"`
}

type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

type jsonSuppression struct {
	File          string `json:"file"`
	Line          int    `json:"line"`
	Analyzers     string `json:"analyzers"`
	Justification string `json:"justification"`
	FileWide      bool   `json:"fileWide"`
	Used          bool   `json:"used"`
}

type stats struct {
	Packages          int `json:"packages"`
	Analyzers         int `json:"analyzers"`
	Facts             int `json:"facts"`
	Findings          int `json:"findings"`
	Suppressions      int `json:"suppressions"`
	StaleSuppressions int `json:"staleSuppressions"`
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report")
	outPath := flag.String("o", "", "write the report to this file instead of stdout")
	audit := flag.Bool("suppressions", false, "audit //lint:ignore directives instead of reporting findings")
	budget := flag.Int("budget", -1, "with -suppressions: fail if live suppressions exceed this count")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: qoservevet [-list] [-json] [-o file] [-suppressions] [-budget n] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fatal(err)
	}
	findings, suppressions, facts, err := analysis.RunWithAudit(pkgs, analyzers)
	if err != nil {
		fatal(err)
	}

	rep := report{Version: 1}
	for _, d := range findings {
		rep.Findings = append(rep.Findings, jsonFinding{
			File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}
	stale := 0
	for _, s := range suppressions {
		if !s.Used {
			stale++
		}
		rep.Suppressions = append(rep.Suppressions, jsonSuppression{
			File: s.Pos.Filename, Line: s.Pos.Line,
			Analyzers: s.Analyzers, Justification: s.Justification,
			FileWide: s.FileWide, Used: s.Used,
		})
	}
	rep.Stats = stats{
		Packages:          len(pkgs),
		Analyzers:         len(analyzers),
		Facts:             facts.Len(),
		Findings:          len(findings),
		Suppressions:      len(suppressions),
		StaleSuppressions: stale,
	}

	if *jsonOut || *outPath != "" {
		if err := writeReport(rep, *outPath); err != nil {
			fatal(err)
		}
	}

	if *audit {
		os.Exit(runAudit(rep, *budget))
	}

	// Text findings always reach stdout (JSON mode included, unless the
	// report itself is going to stdout) so CI logs stay human-readable.
	if !*jsonOut || *outPath != "" {
		for _, d := range findings {
			fmt.Println(d)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "qoservevet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// writeReport emits the JSON document to path, or stdout when path is "".
func writeReport(rep report, path string) error {
	var w io.Writer = os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// runAudit prints the suppression table and returns the exit status: 1 if
// any suppression is stale or the live count exceeds the budget.
func runAudit(rep report, budget int) int {
	for _, s := range rep.Suppressions {
		status := "live"
		if !s.Used {
			status = "STALE"
		}
		form := "ignore"
		if s.FileWide {
			form = "file-ignore"
		}
		fmt.Printf("%s:%d: [%s] %s %s — %s\n", s.File, s.Line, status, form, s.Analyzers, s.Justification)
	}
	live := rep.Stats.Suppressions - rep.Stats.StaleSuppressions
	fmt.Printf("qoservevet: %d suppression(s): %d live, %d stale", rep.Stats.Suppressions, live, rep.Stats.StaleSuppressions)
	if budget >= 0 {
		fmt.Printf(" (budget %d)", budget)
	}
	fmt.Println()
	code := 0
	if rep.Stats.StaleSuppressions > 0 {
		fmt.Fprintln(os.Stderr, "qoservevet: stale suppressions excuse nothing — delete them")
		code = 1
	}
	if budget >= 0 && live > budget {
		fmt.Fprintf(os.Stderr, "qoservevet: %d live suppressions exceed the budget of %d — fix the code instead of widening the escape hatch\n", live, budget)
		code = 1
	}
	return code
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qoservevet:", err)
	os.Exit(2)
}
