// Command qoservevet runs the repo's custom static-analysis suite
// (internal/analysis): detdrift, hotpathalloc, tracehook, and guardedfield.
// It is the project-specific half of `make lint`, alongside the stock
// staticcheck/govulncheck passes.
//
// Usage:
//
//	qoservevet [-list] [packages]
//
// Packages default to ./... relative to the working directory. Exit status
// is 1 when any finding survives (suppressions via //lint:ignore with a
// justification are honoured), 2 on operational errors.
//
// The driver loads and type-checks packages from source via the go tool
// (no prebuilt export data), so it needs no toolchain support beyond `go
// list`. It intentionally does not speak the `go vet -vettool` unitchecker
// protocol, which would require golang.org/x/tools; the analyzer layer is
// shaped like go/analysis so that wiring is mechanical if that dependency
// ever lands.
package main

import (
	"flag"
	"fmt"
	"os"

	"qoserve/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: qoservevet [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fatal(err)
	}
	findings, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fatal(err)
	}
	for _, d := range findings {
		fmt.Println(d)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "qoservevet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qoservevet:", err)
	os.Exit(2)
}
