package qoserve

import (
	"fmt"
	"math"
	"time"

	"qoserve/internal/qos"
	"qoserve/internal/sim"
	"qoserve/internal/workload"
)

// Dataset selects a workload shape, fit to the published percentiles of the
// paper's evaluation traces (Table 2).
type Dataset int

// Evaluation datasets.
const (
	// DatasetShareGPT: long prompts, long decodes (p50 1730/415).
	DatasetShareGPT Dataset = iota
	// DatasetAzureConv: conversation production trace (p50 928/41).
	DatasetAzureConv
	// DatasetAzureCode: code production trace — long prompts, tiny
	// decodes (p50 1930/8).
	DatasetAzureCode
)

func (d Dataset) internal() workload.Dataset {
	switch d {
	case DatasetShareGPT:
		return workload.ShareGPT
	case DatasetAzureConv:
		return workload.AzureConv
	default:
		return workload.AzureCode
	}
}

// String implements fmt.Stringer.
func (d Dataset) String() string { return d.internal().Name }

// WorkloadSpec describes a synthetic trace.
type WorkloadSpec struct {
	// Dataset picks the token-count distributions.
	Dataset Dataset
	// Classes are assigned round-robin by Weights; default DefaultClasses
	// with equal weights.
	Classes []Class
	// Weights gives each class's share of requests; default equal.
	Weights []float64
	// LowPriorityFraction tags this share of each class's requests as
	// free-tier (relegated first under overload).
	LowPriorityFraction float64
	// QPS is the mean arrival rate (requests/second).
	QPS float64
	// BurstinessCV is the coefficient of variation of inter-arrival
	// times: 0 or 1 gives Poisson arrivals; >1 gives burstier traffic
	// (gamma renewal process), <1 smoother. Ignored when BurstQPS is set.
	BurstinessCV float64
	// BurstQPS, when > 0, alternates the arrival rate between QPS and
	// BurstQPS every BurstPeriod (the paper's diurnal overload pattern).
	BurstQPS    float64
	BurstPeriod time.Duration
	// Duration is the trace length; the request count is QPS-derived.
	Duration time.Duration
	// Seed makes generation deterministic.
	Seed int64
}

// MaxTraceRequests bounds the request count a single GenerateWorkload call
// may synthesize. The count is QPS x duration, both caller-supplied floats;
// without a cap an absurd combination (or an overflowing float-to-int
// conversion) could attempt a multi-gigabyte allocation.
const MaxTraceRequests = 2_000_000

// MaxTraceDuration bounds a synthetic trace's length. Virtual time is
// nanosecond-resolution int64; a year-long trace keeps even generous
// exponential inter-arrival tails far from overflow.
const MaxTraceDuration = 365 * 24 * time.Hour

// GenerateWorkload synthesizes a request trace from the specification.
func GenerateWorkload(spec WorkloadSpec) ([]Request, error) {
	classes := spec.Classes
	if len(classes) == 0 {
		classes = DefaultClasses()
	}
	internalClasses := make([]qos.Class, len(classes))
	for i, c := range classes {
		ic, err := c.toInternal()
		if err != nil {
			return nil, err
		}
		internalClasses[i] = ic
	}
	var tiers []workload.Tier
	if len(spec.Weights) > 0 {
		var err error
		tiers, err = workload.WeightedTiers(internalClasses, spec.Weights)
		if err != nil {
			return nil, err
		}
	} else {
		tiers = workload.EqualTiers(internalClasses)
	}
	if spec.LowPriorityFraction > 0 {
		tiers = workload.WithLowPriority(tiers, spec.LowPriorityFraction)
	}

	// Rate checks are phrased to also reject NaN (every ordered comparison
	// on NaN is false) and infinities, which would otherwise slip through
	// and poison arrival times or the request-count computation.
	if !(spec.QPS > 0) || math.IsInf(spec.QPS, 0) {
		return nil, fmt.Errorf("qoserve: QPS must be positive and finite, got %v", spec.QPS)
	}
	if spec.Duration <= 0 {
		return nil, fmt.Errorf("qoserve: duration must be positive")
	}
	if spec.Duration > MaxTraceDuration {
		return nil, fmt.Errorf("qoserve: duration %v above the %v cap", spec.Duration, MaxTraceDuration)
	}
	if cv := spec.BurstinessCV; cv != 0 && (!(cv > 0) || math.IsInf(cv, 0)) {
		return nil, fmt.Errorf("qoserve: burstiness CV must be positive and finite, got %v", cv)
	}
	if f := spec.LowPriorityFraction; !(f >= 0 && f <= 1) {
		return nil, fmt.Errorf("qoserve: low-priority fraction must be in [0,1], got %v", f)
	}
	var arrivals workload.ArrivalProcess = workload.Poisson{QPS: spec.QPS}
	if cv := spec.BurstinessCV; cv > 0 && cv != 1 {
		arrivals = workload.Gamma{QPS: spec.QPS, CV: cv}
	}
	avgQPS := spec.QPS
	if spec.BurstQPS != 0 {
		if !(spec.BurstQPS > 0) || math.IsInf(spec.BurstQPS, 0) {
			return nil, fmt.Errorf("qoserve: burst QPS must be positive and finite, got %v", spec.BurstQPS)
		}
		if spec.BurstPeriod <= 0 {
			return nil, fmt.Errorf("qoserve: burst period must be positive")
		}
		arrivals = workload.Diurnal{
			LowQPS:     spec.QPS,
			HighQPS:    spec.BurstQPS,
			HalfPeriod: sim.FromDuration(spec.BurstPeriod),
		}
		avgQPS = (spec.QPS + spec.BurstQPS) / 2
	}
	nf := avgQPS * spec.Duration.Seconds()
	if nf > MaxTraceRequests {
		return nil, fmt.Errorf("qoserve: %v QPS over %v yields %.0f requests, above the %d cap",
			avgQPS, spec.Duration, nf, MaxTraceRequests)
	}
	n := int(nf)
	if n < 1 {
		return nil, fmt.Errorf("qoserve: duration %v at %v QPS yields no requests", spec.Duration, spec.QPS)
	}

	trace, err := workload.Generate(workload.Spec{
		Dataset:  spec.Dataset.internal(),
		Tiers:    tiers,
		Arrivals: arrivals,
		Requests: n,
		Seed:     spec.Seed,
	})
	if err != nil {
		return nil, err
	}

	out := make([]Request, len(trace))
	for i, r := range trace {
		prio := High
		if r.Priority == qos.Low {
			prio = Low
		}
		out[i] = Request{
			ID:           r.ID,
			App:          r.App,
			Class:        r.Class.Name,
			Priority:     prio,
			Arrival:      r.Arrival.Duration(),
			PromptTokens: r.PromptTokens,
			DecodeTokens: r.DecodeTokens,
		}
	}
	return out, nil
}
