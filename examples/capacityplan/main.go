// Capacityplan: answer the two provisioning questions the paper's
// evaluation revolves around, through the public capacity-search API:
//
//  1. How much load can one replica sustain within the SLO target under
//     each scheduling policy? (Figure 7's goodput metric.)
//  2. How many replicas does a target aggregate load need? (Table 4's
//     question, and the source of the headline GPU savings.)
package main

import (
	"fmt"
	"log"
	"time"

	"qoserve"
)

func main() {
	spec := qoserve.WorkloadSpec{
		Dataset: qoserve.DatasetAzureCode,
		Seed:    1,
	}
	opts := qoserve.CapacityOptions{
		MaxViolations: 0.01, // the paper's 1% criterion
		ProbeDuration: 5 * time.Minute,
		Seed:          1,
	}

	fmt.Println("Per-replica goodput (max QPS within 1% violations):")
	goodputs := map[qoserve.Policy]float64{}
	for _, policy := range []qoserve.Policy{
		qoserve.PolicySarathiFCFS,
		qoserve.PolicySarathiEDF,
		qoserve.PolicyQoServe,
	} {
		qps, err := qoserve.FindMaxGoodput(qoserve.Options{
			Hardware: qoserve.Llama3_8B_A100,
			Policy:   policy,
		}, spec, opts)
		if err != nil {
			log.Fatal(err)
		}
		goodputs[policy] = qps
		fmt.Printf("  %-14s %6.2f QPS\n", policy, qps)
	}
	fmt.Printf("QoServe sustains %.1fx the FCFS load and %.0f%% more than EDF.\n\n",
		goodputs[qoserve.PolicyQoServe]/goodputs[qoserve.PolicySarathiFCFS],
		100*(goodputs[qoserve.PolicyQoServe]/goodputs[qoserve.PolicySarathiEDF]-1))

	const targetQPS = 20
	fmt.Printf("Replicas needed for %d QPS aggregate:\n", targetQPS)
	loadSpec := spec
	loadSpec.QPS = targetQPS
	for _, policy := range []qoserve.Policy{qoserve.PolicySarathiEDF, qoserve.PolicyQoServe} {
		n, err := qoserve.FindMinReplicas(qoserve.Options{
			Hardware: qoserve.Llama3_8B_A100,
			Policy:   policy,
		}, loadSpec, 32, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s %d GPU(s)\n", policy, n)
	}
}
