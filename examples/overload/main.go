// Overload: graceful degradation during a traffic spike (the paper's §4.3).
//
// Load alternates between a calm 2 QPS and a 5 QPS burst every two minutes;
// 20% of requests are free-tier. FCFS melts down for everyone; QoServe
// eagerly relegates a small set of (preferentially free-tier) requests and
// keeps the paid tier intact.
package main

import (
	"fmt"
	"log"
	"time"

	"qoserve"
)

func main() {
	reqs, err := qoserve.GenerateWorkload(qoserve.WorkloadSpec{
		Dataset:             qoserve.DatasetAzureCode,
		QPS:                 2,
		BurstQPS:            5,
		BurstPeriod:         2 * time.Minute,
		Duration:            16 * time.Minute,
		LowPriorityFraction: 0.2,
		Seed:                3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Policy          Violations   Paid-tier viol.   Relegated")
	for _, policy := range []qoserve.Policy{
		qoserve.PolicySarathiFCFS,
		qoserve.PolicySarathiEDF,
		qoserve.PolicyQoServe,
	} {
		report, err := qoserve.Serve(qoserve.Options{
			Hardware: qoserve.Llama3_8B_A100,
			Policy:   policy,
		}, reqs)
		if err != nil {
			log.Fatal(err)
		}
		var paidTotal, paidViolated int
		for _, o := range report.Outcomes {
			if o.Priority != qoserve.High {
				continue
			}
			paidTotal++
			if o.Violated {
				paidViolated++
			}
		}
		fmt.Printf("%-18s%8.2f%%%15.2f%%%11.2f%%\n",
			policy,
			100*report.ViolationRate,
			100*float64(paidViolated)/float64(paidTotal),
			100*report.RelegationRate)
	}
}
