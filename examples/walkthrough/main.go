// Walkthrough: the paper's Figure 6 illustration, traced request by
// request. Five requests across three QoS buckets arrive nearly together;
// the program runs them under fixed-chunk FCFS (SOTA) and under QoServe,
// printing each request's first-token time against its deadline so the
// dynamic-chunking speedup and prioritization are visible.
package main

import (
	"fmt"
	"log"
	"time"

	"qoserve"
)

func main() {
	classes := []qoserve.Class{
		{Name: "QoS1", Kind: qoserve.Interactive, TTFT: 2 * time.Second, TBT: 50 * time.Millisecond},
		{Name: "QoS2", Kind: qoserve.Batch, TTLT: 30 * time.Second},
		{Name: "QoS3", Kind: qoserve.Batch, TTLT: 120 * time.Second},
	}

	// A is interactive; B-E are batch jobs of the two relaxed buckets,
	// mirroring the figure's five requests.
	reqs := []qoserve.Request{
		{ID: 1, App: "A", Class: "QoS1", Arrival: 50 * time.Millisecond, PromptTokens: 1200, DecodeTokens: 40},
		{ID: 2, App: "B", Class: "QoS2", Arrival: 0, PromptTokens: 4000, DecodeTokens: 30},
		{ID: 3, App: "C", Class: "QoS2", Arrival: 20 * time.Millisecond, PromptTokens: 3000, DecodeTokens: 30},
		{ID: 4, App: "D", Class: "QoS3", Arrival: 30 * time.Millisecond, PromptTokens: 6000, DecodeTokens: 30},
		{ID: 5, App: "E", Class: "QoS3", Arrival: 60 * time.Millisecond, PromptTokens: 5000, DecodeTokens: 30},
	}
	deadlines := map[uint64]time.Duration{}
	for _, r := range reqs {
		for _, c := range classes {
			if c.Name == r.Class {
				if c.Kind == qoserve.Interactive {
					deadlines[r.ID] = r.Arrival + c.TTFT
				} else {
					deadlines[r.ID] = r.Arrival + c.TTLT
				}
			}
		}
	}

	run := func(title string, policy qoserve.Policy) time.Duration {
		report, err := qoserve.Serve(qoserve.Options{
			Hardware: qoserve.Llama3_8B_A100,
			Policy:   policy,
			Classes:  classes,
		}, reqs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n", title)
		fmt.Println("req  class  first-token    finish     deadline   verdict")
		var makespan time.Duration
		for _, o := range report.Outcomes {
			verdict := "met"
			if o.Violated {
				verdict = "MISSED"
			}
			var arrival time.Duration
			for _, r := range reqs {
				if r.ID == o.ID {
					arrival = r.Arrival
				}
			}
			finish := arrival + o.TTLT
			if finish > makespan {
				makespan = finish
			}
			fmt.Printf("%-5d%-7s%+11v%+11v%+11v   %s\n",
				o.ID, o.Class,
				(arrival + o.TTFT).Round(time.Millisecond),
				finish.Round(time.Millisecond),
				deadlines[o.ID].Round(time.Millisecond),
				verdict)
		}
		fmt.Printf("makespan: %v\n", makespan.Round(time.Millisecond))
		return makespan
	}

	sota := run("SOTA: fixed 256-token chunks, FCFS order", qoserve.PolicySarathiFCFS)
	qsv := run("QoServe: hybrid prioritization + dynamic chunking", qoserve.PolicyQoServe)
	fmt.Printf("\nSpeedup from exploiting deadline slack: %.2fx\n",
		float64(sota)/float64(qsv))
}
