// Quickstart: serve a mixed three-tier workload on one simulated A100
// replica with the QoServe scheduler and print the headline metrics.
package main

import (
	"fmt"
	"log"
	"time"

	"qoserve"
)

func main() {
	// Three QoS tiers (the paper's Table 3): interactive chat, relaxed
	// user-facing summaries, and overnight batch processing.
	classes := qoserve.DefaultClasses()

	// Synthesize ten minutes of the Azure-Code production workload at
	// 3 requests/second, split equally across the tiers.
	reqs, err := qoserve.GenerateWorkload(qoserve.WorkloadSpec{
		Dataset:  qoserve.DatasetAzureCode,
		Classes:  classes,
		QPS:      3,
		Duration: 10 * time.Minute,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Serve everything on one shared replica with QoServe.
	report, err := qoserve.Serve(qoserve.Options{
		Hardware: qoserve.Llama3_8B_A100,
		Policy:   qoserve.PolicyQoServe,
		Replicas: 1,
		Classes:  classes,
	}, reqs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Served %d requests over %v on %d GPU(s)\n",
		len(report.Outcomes), report.Duration.Round(time.Second), report.GPUs)
	fmt.Printf("SLO violations: %.2f%%   relegated: %.2f%%   goodput: %.2f req/s/replica\n",
		100*report.ViolationRate, 100*report.RelegationRate, report.Goodput)
	for _, c := range classes {
		fmt.Printf("  %s: violations %.2f%%, median TTFT %v, p99 TTFT %v\n",
			c.Name,
			100*report.ViolationRateOf(c.Name),
			report.TTFTPercentile(c.Name, 0.5).Round(time.Millisecond),
			report.TTFTPercentile(c.Name, 0.99).Round(time.Millisecond))
	}
}
