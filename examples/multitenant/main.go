// Multitenant: compare the cost of siloed per-tier clusters against one
// QoServe shared cluster serving the same workload — the paper's headline
// consolidation result (Fig. 1 / Table 4) at laptop scale.
//
// Three applications share the infrastructure: a chat assistant with strict
// interactive SLOs, a video-summary service with a minutes-scale target, and
// an email-insights batch pipeline with an hours-scale target.
package main

import (
	"fmt"
	"log"
	"time"

	"qoserve"
)

func main() {
	classes := []qoserve.Class{
		{Name: "chat", Kind: qoserve.Interactive, TTFT: 6 * time.Second, TBT: 50 * time.Millisecond},
		{Name: "video-summary", Kind: qoserve.Batch, TTLT: 600 * time.Second},
		{Name: "email-insights", Kind: qoserve.Batch, TTLT: 1800 * time.Second},
	}

	reqs, err := qoserve.GenerateWorkload(qoserve.WorkloadSpec{
		Dataset:  qoserve.DatasetAzureConv,
		Classes:  classes,
		QPS:      9,
		Duration: 8 * time.Minute,
		Seed:     2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Siloed: a dedicated Sarathi cluster per application, provisioned
	// 3/2/2 — seven GPUs total.
	siloed, err := qoserve.Serve(qoserve.Options{
		Hardware: qoserve.Llama3_8B_A100,
		Classes:  classes,
		Silos:    map[string]int{"chat": 3, "video-summary": 2, "email-insights": 2},
	}, reqs)
	if err != nil {
		log.Fatal(err)
	}

	// Shared: the same load co-scheduled by QoServe on fewer replicas.
	shared, err := qoserve.Serve(qoserve.Options{
		Hardware: qoserve.Llama3_8B_A100,
		Classes:  classes,
		Policy:   qoserve.PolicyQoServe,
		Replicas: 4,
	}, reqs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Deployment            GPUs   Violations   chat p99 TTFT")
	for _, row := range []struct {
		name   string
		report *qoserve.Report
	}{
		{"Siloed Sarathi 3/2/2", siloed},
		{"QoServe shared x4", shared},
	} {
		fmt.Printf("%-22s%5d%12.2f%%%15v\n",
			row.name, row.report.GPUs,
			100*row.report.ViolationRate,
			row.report.TTFTPercentile("chat", 0.99).Round(10*time.Millisecond))
	}
	saving := 1 - float64(shared.GPUs)/float64(siloed.GPUs)
	fmt.Printf("\nQoServe serves the same load with %.0f%% fewer GPUs.\n", 100*saving)
}
