// Loadtest: drive the real-time serving engine (the same one behind
// cmd/qoserved) with concurrent clients at 200x accelerated time and watch
// QoS differentiation live: interactive requests stream first tokens in
// sub-second virtual time while batch jobs absorb the remaining capacity.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"qoserve/internal/core"
	"qoserve/internal/model"
	"qoserve/internal/predictor"
	"qoserve/internal/qos"
	"qoserve/internal/server"
)

func main() {
	mc := model.Llama3_8B_A100_TP1()
	srv, err := server.New(server.Config{
		Model:     mc,
		Scheduler: core.New(predictor.Oracle{Config: mc}, core.DefaultOptions()),
		Classes:   qos.Table3(),
		Timescale: 200, // 1 wall millisecond = 200 virtual milliseconds
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	type result struct {
		class    string
		ttft     time.Duration
		ttlt     time.Duration
		violated bool
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		results []result
	)
	rng := rand.New(rand.NewSource(7))

	// 60 clients: a third interactive chat, two thirds batch jobs.
	for i := 0; i < 60; i++ {
		class := []string{"Q1", "Q2", "Q3"}[i%3]
		prompt := 500 + rng.Intn(3000)
		decode := 3 + rng.Intn(12)
		wg.Add(1)
		go func() {
			defer wg.Done()
			stream, err := srv.Submit(server.Submission{
				Class: class, PromptTokens: prompt, DecodeTokens: decode,
			})
			if err != nil {
				log.Fatal(err)
			}
			for { // consume the token stream (works in both delivery modes)
				if _, ok := stream.Recv(); !ok {
					break
				}
			}
			res := stream.Result()
			mu.Lock()
			results = append(results, result{class, res.TTFT, res.TTLT, res.Violated})
			mu.Unlock()
		}()
		time.Sleep(time.Millisecond) // ~5 virtual requests/second
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Fatal(err)
	}

	agg := map[string]struct {
		n, violated int
		worstTTFT   time.Duration
	}{}
	for _, r := range results {
		a := agg[r.class]
		a.n++
		if r.violated {
			a.violated++
		}
		if r.ttft > a.worstTTFT {
			a.worstTTFT = r.ttft
		}
		agg[r.class] = a
	}
	fmt.Println("class  requests  violated  worst TTFT (virtual)")
	for _, class := range []string{"Q1", "Q2", "Q3"} {
		a := agg[class]
		fmt.Printf("%-7s%9d%10d%22v\n", class, a.n, a.violated, a.worstTTFT.Round(time.Millisecond))
	}
	stats := srv.Stats()
	fmt.Printf("\nserver: %d iterations, %d tokens, %.2f%% violations over %v virtual time\n",
		stats.Iterations, stats.Tokens, 100*stats.ViolationRate,
		stats.VirtualNow.Round(time.Second))
}
