// Hybrid prioritization (Section 3.4, Eqs. 4-5): the alpha interpolation
// between EDF and SRPF, load-adaptive alpha switching, and the selective-
// preemption boost for at-risk partially-prefilled requests.
package core

import (
	"qoserve/internal/qos"
	"qoserve/internal/request"
	"qoserve/internal/sched"
	"qoserve/internal/sim"
)

// alpha returns the effective interpolation factor.
//
//qoserve:hotpath
func (s *Scheduler) alpha() sim.Time {
	if !s.opts.HybridPriority {
		return 0
	}
	if s.opts.AdaptiveAlpha && !s.highAlpha {
		return s.opts.AlphaLow
	}
	return s.opts.Alpha
}

// priorityKey implements Eqs. 4-5 in seconds: arrival + SLO + alpha*work.
//
//qoserve:hotpath
func (s *Scheduler) priorityKey(r *request.Request) float64 {
	a := s.alpha().Seconds()
	switch r.Class.Kind {
	case qos.Interactive:
		return (r.Arrival + r.Class.SLO.TTFT).Seconds() + a*float64(r.RemainingPrefill())
	default:
		work := float64(r.RemainingPrefill() + r.EstDecodeTokens)
		return (r.Arrival + r.Class.SLO.TTLT).Seconds() + a*work
	}
}

// atRiskPartial finds the highest-priority partially-prefilled main-queue
// request that would miss its first-token deadline if it sat out one more
// iteration. Candidates come from the partials side set (maintained at
// every main-queue insert/remove) rather than a full queue walk; the
// minimum (key, ID) member is by construction the first match a priority-
// order scan would return, so selection order is unchanged.
//
//qoserve:hotpath
func (s *Scheduler) atRiskPartial(now sim.Time) *request.Request {
	var best *request.Request
	var bestKey float64
	for _, r := range s.partials {
		if r.PrefilledTokens == 0 {
			continue
		}
		finishIfDeferred := now + sim.FromSeconds(s.iterTime) + s.bestPrefillTime(r.RemainingPrefill())
		if finishIfDeferred > r.FirstTokenDeadline() &&
			now+s.bestPrefillTime(r.RemainingPrefill()) <= r.FirstTokenDeadline() {
			key, ok := s.mainQ.Key(r)
			if !ok {
				continue
			}
			if best == nil || key < bestKey || (key == bestKey && r.ID < best.ID) {
				best, bestKey = r, key
			}
		}
	}
	return best
}

// partialAdd records r as a partially-prefilled main-queue member.
//
//qoserve:hotpath
func (s *Scheduler) partialAdd(r *request.Request) {
	if r.PrefilledTokens > 0 {
		s.partials = append(s.partials, r)
	}
}

// partialRemove forgets r when it leaves the main queue (no-op when r was
// never partially prefilled). Order within the set is irrelevant —
// atRiskPartial selects by (key, ID) — so removal swaps with the tail.
//
//qoserve:hotpath
func (s *Scheduler) partialRemove(r *request.Request) {
	for i, p := range s.partials {
		if p == r {
			last := len(s.partials) - 1
			s.partials[i] = s.partials[last]
			s.partials[last] = nil
			s.partials = s.partials[:last]
			return
		}
	}
}

// updateAlphaRegime switches between low and high alpha and re-keys the
// queues when the regime changes. With eager relegation active, the signal
// is deadline pressure from the queue projection; otherwise it falls back
// to raw backlog exceeding AlphaSwitchBacklog.
//
//qoserve:hotpath
func (s *Scheduler) updateAlphaRegime(now sim.Time) {
	if !s.opts.AdaptiveAlpha || !s.opts.HybridPriority {
		return
	}
	var high bool
	if s.opts.EagerRelegation {
		high = s.deadlinePressure
	} else {
		work := 0
		for _, r := range s.mainQ.Items() {
			work += r.RemainingPrefill()
		}
		backlog := sim.FromSeconds(float64(work) / s.prefillRate)
		high = backlog > s.opts.AlphaSwitchBacklog
	}
	if high == s.highAlpha {
		return
	}
	s.highAlpha = high
	//lint:ignore hotpathalloc alpha-regime flips are rare (hysteresis-gated) and re-keying necessarily rebuilds the queue; steady-state plans never reach this line.
	s.rekey(&s.mainQ)
	//lint:ignore hotpathalloc see above: regime flips are rare and rebuild by design.
	s.rekey(&s.relQ)
}

// rekey rebuilds a queue with fresh priority keys.
func (s *Scheduler) rekey(q *sched.Queue) {
	items := append([]*request.Request(nil), q.Items()...)
	for _, r := range items {
		q.Remove(r)
	}
	for _, r := range items {
		q.Insert(r, s.priorityKey(r))
	}
}
