// Package core implements the paper's contribution: the QoServe scheduler.
//
// QoServe co-schedules requests of multiple QoS classes on one replica using
// three techniques (Section 3):
//
//   - Dynamic chunking: each iteration's prefill token budget is the largest
//     chunk whose predicted latency fits the minimum deadline slack of the
//     in-flight decodes, so relaxed tiers' slack buys prefill throughput.
//   - Hybrid prioritization: prefill order follows
//     P = arrival + SLO + alpha * (remaining work), interpolating EDF
//     (alpha=0) and SRPF (alpha->inf) — Equations 4 and 5.
//   - Eager relegation: requests that have violated, or are projected to
//     violate, their TTFT/TTLT deadline move to a relegated queue served
//     only with spare budget; low-priority (free-tier) requests are
//     relegated first to protect important traffic (Section 3.4).
//
// Selective preemption falls out of the queue discipline: only prefill-phase
// requests can be displaced by higher-priority arrivals, never decodes, and
// a partially-prefilled request at risk of missing its deadline is boosted
// rather than displaced.
package core

import (
	"qoserve/internal/estimate"
	"qoserve/internal/model"
	"qoserve/internal/predictor"
	"qoserve/internal/profile"
	"qoserve/internal/request"
	"qoserve/internal/sched"
	"qoserve/internal/sim"
	"qoserve/internal/trace"
)

// Options configures the QoServe scheduler. The zero value is not useful;
// start from DefaultOptions.
type Options struct {
	// Alpha is the hybrid-prioritization interpolation factor, expressed
	// as time per remaining token (Eqs. 4-5). The paper's offline sweep
	// found 8 ms/token best for fixed-QPS runs.
	Alpha sim.Time
	// AlphaLow is used instead of Alpha while the system is underloaded
	// when AdaptiveAlpha is set (the paper uses 1 ms/token at low load to
	// protect tail latency).
	AlphaLow sim.Time
	// AdaptiveAlpha enables load-adaptive switching between AlphaLow and
	// Alpha based on the projected prefill backlog.
	AdaptiveAlpha bool
	// AlphaSwitchBacklog is the backlog (projected queue drain time) above
	// which adaptive mode switches to the high Alpha. Default 10 s.
	AlphaSwitchBacklog sim.Time

	// MaxChunk caps the dynamic chunk size; the paper uses 2500, where
	// Figure 4's throughput curve saturates.
	MaxChunk int
	// MinChunk guarantees forward progress when slack is exhausted.
	MinChunk int
	// FallbackChunk is the fixed token budget used when DynamicChunking
	// is disabled (ablations), mirroring the Sarathi baseline.
	FallbackChunk int
	// LatePacing is the iteration budget used when every decode is
	// already past its next-token deadline and no TBT target applies;
	// it bounds how far a late batch may be stretched further.
	LatePacing sim.Time

	// Feature flags for the Table 5 ablation.
	DynamicChunking bool
	EagerRelegation bool
	HybridPriority  bool // false forces alpha = 0, i.e. pure EDF ordering
	// SelectivePreemption boosts an in-flight prefill that would miss its
	// deadline if displaced by higher-priority arrivals.
	SelectivePreemption bool

	// RelegationInterval throttles the queue-wide relegation projection.
	RelegationInterval sim.Time

	// SlackSafety is the fraction of measured decode slack the dynamic
	// chunk may consume (default 0.9). The predictor's margin covers its
	// average error; this shaves the tail where an outlier prediction
	// would let a slack-stretched iteration land a token past its Eq. 2
	// deadline.
	SlackSafety float64

	// TTFTRush is the iteration budget used instead of the TBT floor
	// when the highest-priority queued interactive request is projected
	// to miss its first-token deadline at the currently achieved prefill
	// rate. A TTFT miss is a hard request-level violation while a
	// bounded spell of slower token pacing is soft drift, so the
	// scheduler briefly trades the latter for the former. Default 200 ms.
	TTFTRush sim.Time
}

// DefaultOptions returns the paper's deployment configuration.
func DefaultOptions() Options {
	return Options{
		Alpha:               8 * sim.Millisecond,
		AlphaLow:            1 * sim.Millisecond,
		AdaptiveAlpha:       true,
		AlphaSwitchBacklog:  10 * sim.Second,
		MaxChunk:            2500,
		MinChunk:            32,
		FallbackChunk:       sched.DefaultChunk,
		LatePacing:          100 * sim.Millisecond,
		DynamicChunking:     true,
		EagerRelegation:     true,
		HybridPriority:      true,
		SelectivePreemption: true,
		RelegationInterval:  500 * sim.Millisecond,
		SlackSafety:         0.9,
		TTFTRush:            200 * sim.Millisecond,
	}
}

// Scheduler is the QoServe scheduler. It implements sched.Scheduler.
type Scheduler struct {
	opts Options
	pred predictor.SafePredictor
	// rawPred drops the safety margin; used in the TBT-floor regime,
	// where the budget is a pacing target rather than a deadline and
	// conservatism only wastes throughput.
	rawPred  predictor.SafePredictor
	planPred predictor.SafePredictor // predictor used for the current plan
	est      *estimate.Tracker

	mainQ   sched.Queue // non-relegated prefill-phase requests
	relQ    sched.Queue // relegated prefill-phase requests
	decodes []*request.Request

	pending int

	// Self-calibrating execution estimates, updated from observed
	// iterations (the scheduler never reads the ground-truth cost model).
	prefillRate float64 // sustained prefill tokens/s (EWMA, queue-wide)
	// bestRate is the prefill rate a single request would enjoy with the
	// replica to itself at max chunk, given the current decode load;
	// recomputed each plan. Doom checks use it so that only genuinely
	// unsalvageable requests are relegated.
	bestRate     float64
	iterTime     float64 // seconds per iteration (EWMA)
	lastPlanAt   sim.Time
	planOutstand bool

	lastRelegationPass sim.Time
	highAlpha          bool
	// deadlinePressure is set when the latest queue projection found
	// requests that will miss deadlines given the backlog — the
	// load-adaptive alpha signal (raw backlog seconds are a poor proxy:
	// a deep queue of relaxed-deadline work is not overload).
	deadlinePressure bool

	// Plan-scoped scratch state. The Scheduler contract guarantees at
	// most one outstanding batch, so these are safely reused across
	// PlanBatch calls instead of being allocated per iteration.
	//
	// decodeFeats caches the decode side of the predictor feature vector,
	// which is fixed across every predictor probe of one plan (budget
	// inversion, best-rate refresh, batch trim) — it is recomputed once
	// per PlanBatch from the decode set.
	decodeFeats [profile.FeatureCount]float64
	// prefill backs the planned batch's Prefill slice.
	prefill []sched.PrefillAlloc
	// ctxScratch backs decodeCtxs for predictors without a feature path.
	ctxScratch []int
	// shape is the batch-shape scratch for shape-based predictors.
	shape model.BatchShape
	// doomedScratch backs the doomed set gathered by scanQueue.
	doomedScratch []*request.Request
	// partials tracks the (few) partially-prefilled main-queue requests so
	// the selective-preemption check avoids a full queue walk per plan.
	// Invariant: exactly the main-queue members with PrefilledTokens > 0.
	partials []*request.Request

	// Stats observable by experiments.
	relegations      int
	chunkLog         []ChunkRecord
	logChunks        bool
	chunkLogged      bool // a record for the outstanding plan was retained
	relegationPasses int
	// Running chunk statistics covering every iteration, including those
	// past the chunkLog retention cap.
	chunkIters, chunkSum, chunkAtMax int

	// Live iteration tracing (sched.Traceable); disabled by default.
	sched.TraceState
}

// ChunkRecord captures one iteration's dynamic-chunking decision (Fig. 9).
type ChunkRecord struct {
	At       sim.Time
	Chunk    int
	Decodes  int
	Budget   sim.Time
	ExecTime sim.Time // filled at completion
}

var _ sched.Scheduler = (*Scheduler)(nil)

// New returns a QoServe scheduler using the given latency predictor.
func New(pred predictor.SafePredictor, opts Options) *Scheduler {
	s := &Scheduler{
		opts:    opts,
		pred:    pred,
		rawPred: predictor.NoMargin(pred),
		est:     estimate.NewTracker(),
	}
	s.planPred = s.pred
	if s.opts.MaxChunk <= 0 {
		s.opts.MaxChunk = 2500
	}
	if s.opts.MinChunk <= 0 {
		s.opts.MinChunk = 32
	}
	if s.opts.FallbackChunk <= 0 {
		s.opts.FallbackChunk = sched.DefaultChunk
	}
	if s.opts.LatePacing <= 0 {
		s.opts.LatePacing = 100 * sim.Millisecond
	}
	if s.opts.RelegationInterval <= 0 {
		s.opts.RelegationInterval = 500 * sim.Millisecond
	}
	if s.opts.SlackSafety <= 0 || s.opts.SlackSafety > 1 {
		s.opts.SlackSafety = 0.9
	}
	// Seed the rate estimates from the predictor: a lone max-size chunk.
	t := pred.PredictSafe(model.BatchShape{
		Prefill: []model.ChunkShape{{Tokens: s.opts.MaxChunk}},
	}).Seconds()
	if t > 0 {
		s.prefillRate = float64(s.opts.MaxChunk) / t
	} else {
		s.prefillRate = 1
	}
	s.bestRate = s.prefillRate
	s.iterTime = 0.05
	return s
}

// Name identifies the scheduler in experiment output.
func (s *Scheduler) Name() string { return "QoServe" }

// maxChunkLog bounds the chunk-decision log: recording stops after this
// many iterations so a paper-duration (-scale 1) run cannot grow memory
// without bound, while the running aggregates (ChunkStats) keep covering
// every iteration. 1<<16 records (~2.6 MB) is more than an order of
// magnitude beyond what Figure 9's mid-run window needs.
const maxChunkLog = 1 << 16

// EnableChunkLog records per-iteration chunk decisions for Figure 9. Only
// the first maxChunkLog iterations are retained; ChunkStats aggregates are
// unaffected by the cap.
func (s *Scheduler) EnableChunkLog() { s.logChunks = true }

// ChunkLog returns the recorded chunk decisions (at most maxChunkLog).
func (s *Scheduler) ChunkLog() []ChunkRecord { return s.chunkLog }

// ChunkStats reports aggregate dynamic-chunking behaviour across every
// iteration since EnableChunkLog: iterations that scheduled prefill work,
// their total prefill tokens, and how many hit the MaxChunk cap. Unlike
// ChunkLog it is exact even past the retention cap.
func (s *Scheduler) ChunkStats() (iters, tokenSum, atMax int) {
	return s.chunkIters, s.chunkSum, s.chunkAtMax
}

// Relegations is the count of relegation events so far.
func (s *Scheduler) Relegations() int { return s.relegations }

// RelegationPasses is the count of queue-wide relegation projections run.
func (s *Scheduler) RelegationPasses() int { return s.relegationPasses }

// Add enqueues a new arrival. A pre-set EstDecodeTokens is respected
// (oracle-estimate ablations); otherwise the per-app history supplies the
// mean+2-sigma estimate.
func (s *Scheduler) Add(r *request.Request, now sim.Time) {
	if r.EstDecodeTokens == 0 {
		r.EstDecodeTokens = s.est.Estimate(r.App)
	}
	s.pending++
	s.mainQ.Insert(r, s.priorityKey(r))
	s.partialAdd(r) // resubmitted orphans may arrive mid-prefill
	s.TraceAdmission(r.ID, r.Class.Name, now)
}

// Pending is the number of unfinished requests.
func (s *Scheduler) Pending() int { return s.pending }

// QueueLen reports (main, relegated, decode) queue sizes.
func (s *Scheduler) QueueLen() (main, relegated, decode int) {
	return s.mainQ.Len(), s.relQ.Len(), len(s.decodes)
}

// PlanBatch builds the next iteration (Algorithm 1's CREATE_BATCH).
//
//qoserve:hotpath
func (s *Scheduler) PlanBatch(now sim.Time) sched.Batch {
	s.lastPlanAt = now
	s.planOutstand = true
	s.refreshDecodeFeats()
	s.updateBestRate()
	s.updateAlphaRegime(now)
	if s.opts.EagerRelegation {
		s.relegationPass(now)
	}

	b := sched.Batch{Decodes: s.decodes, Prefill: s.prefill[:0]}
	frontCtx := 0
	if f := s.mainQ.Front(); f != nil {
		frontCtx = f.PrefilledTokens
	}
	budgetTokens, budgetTime := s.prefillBudget(now, frontCtx)
	if s.mainQ.Len() == 0 && s.relQ.Len() == 0 {
		budgetTokens = 0 // decode-only batch
	}

	spare := s.fillFrom(&s.mainQ, &b, budgetTokens, now, true)
	// Spare budget serves relegated requests opportunistically.
	s.fillFrom(&s.relQ, &b, spare, now, false)

	if s.opts.DynamicChunking && budgetTime > 0 {
		s.trimToBudget(&b, budgetTime)
	}
	s.prefill = b.Prefill[:0]

	if s.logChunks {
		s.recordChunk(&b, now, budgetTime)
	}
	if s.Tracing() {
		//lint:ignore hotpathalloc record assembly (Name, Shape, extra predictor probe) runs only when a tracer is attached; the untraced hot path pays a single branch (TestPlanBatchSteadyStateAllocFree covers it).
		s.TracePlan(s.Name(), b, now, s.planPred.PredictSafe(b.Shape()), s.mainQ.Len(), s.relQ.Len())
	}
	return b
}

// refreshDecodeFeats recomputes the decode-side feature cache. Decode
// membership only changes in OnBatchComplete, so one refresh per plan keeps
// the cache valid for every probe of the plan.
//
//qoserve:hotpath
func (s *Scheduler) refreshDecodeFeats() {
	var x [profile.FeatureCount]float64
	x[profile.FeatNumDecodes] = float64(len(s.decodes))
	for _, r := range s.decodes {
		c := float64(r.ContextLen())
		x[profile.FeatSumDecodeCtx] += c
		if c > x[profile.FeatMaxDecodeCtx] {
			x[profile.FeatMaxDecodeCtx] = c
		}
	}
	s.decodeFeats = x
}

// batchFeats extends the cached decode features with the batch's prefill
// side, matching profile.Features(b.Shape()) without materializing a shape.
//
//qoserve:hotpath
func (s *Scheduler) batchFeats(b *sched.Batch) [profile.FeatureCount]float64 {
	x := s.decodeFeats
	for _, p := range b.Prefill {
		x[profile.FeatChunkTokens] += float64(p.Tokens)
		if c := float64(p.Req.PrefilledTokens); c > x[profile.FeatPrefillCtx] {
			x[profile.FeatPrefillCtx] = c
		}
	}
	return x
}

// planCost prices the assembled batch with the plan predictor, using the
// allocation-free feature path when available.
//
//qoserve:hotpath
func (s *Scheduler) planCost(b *sched.Batch) sim.Time {
	if fp, ok := s.planPred.(predictor.FeaturePredictor); ok {
		return fp.PredictSafeFeats(s.batchFeats(b))
	}
	b.ShapeInto(&s.shape)
	return s.planPred.PredictSafe(s.shape)
}

// recordChunk logs one iteration's chunk decision (bounded) and updates the
// exact running aggregates.
//
//qoserve:hotpath
func (s *Scheduler) recordChunk(b *sched.Batch, now sim.Time, budgetTime sim.Time) {
	chunk := b.PrefillTokens()
	if chunk > 0 {
		s.chunkIters++
		s.chunkSum += chunk
		if chunk >= s.opts.MaxChunk {
			s.chunkAtMax++
		}
	}
	s.chunkLogged = len(s.chunkLog) < maxChunkLog
	if s.chunkLogged {
		s.chunkLog = append(s.chunkLog, ChunkRecord{
			At:      now,
			Chunk:   chunk,
			Decodes: len(b.Decodes),
			Budget:  budgetTime,
		})
	}
}

// fillFrom packs prefill chunks from q into b, in priority order, applying
// the per-pop violation check (Algorithm 1 lines 12-15) when checkViolation
// is set. It returns the unused budget.
//
//qoserve:hotpath
func (s *Scheduler) fillFrom(q *sched.Queue, b *sched.Batch, budget int, now sim.Time, checkViolation bool) int {
	if budget <= 0 {
		return budget
	}
	// Selective preemption: an in-flight (partially prefilled) request
	// that would miss its deadline if displaced this iteration is served
	// first regardless of queue order.
	var boosted *request.Request
	if checkViolation && s.opts.SelectivePreemption {
		boosted = s.atRiskPartial(now)
	}

	var relegate []*request.Request
	take := func(r *request.Request) {
		n := r.RemainingPrefill()
		if n > budget {
			n = budget
		}
		if n <= 0 {
			return
		}
		b.Prefill = append(b.Prefill, sched.PrefillAlloc{Req: r, Tokens: n})
		budget -= n
	}

	if boosted != nil {
		s.TraceEvent(trace.Event{At: now, Kind: trace.Boost, Req: boosted.ID,
			Class: boosted.Class.Name, Reason: "in-flight prefill would miss deadline if displaced"})
		take(boosted)
	}
	for i := 0; i < q.Len() && budget > 0; i++ {
		r := q.At(i)
		if r == boosted {
			continue
		}
		if checkViolation && s.opts.EagerRelegation && s.willViolateAlone(r, now) {
			relegate = append(relegate, r)
			continue
		}
		take(r)
	}
	for _, r := range relegate {
		s.relegate(r, now, "will miss deadline even at dedicated rate")
	}
	return budget
}

// OnBatchComplete performs queue bookkeeping after the replica has
// accounted the iteration, and updates the self-calibrating rate estimates.
func (s *Scheduler) OnBatchComplete(b sched.Batch, now sim.Time) {
	s.TraceComplete(now)
	if s.planOutstand {
		dur := (now - s.lastPlanAt).Seconds()
		if dur > 0 {
			const w = 0.1
			s.iterTime = (1-w)*s.iterTime + w*dur
			if pt := b.PrefillTokens(); pt > 0 {
				rate := float64(pt) / dur
				s.prefillRate = (1-w)*s.prefillRate + w*rate
			}
		}
		s.planOutstand = false
		if s.chunkLogged {
			s.chunkLog[len(s.chunkLog)-1].ExecTime = now - s.lastPlanAt
			s.chunkLogged = false
		}
	}

	for _, p := range b.Prefill {
		q := &s.mainQ
		if p.Req.Relegated {
			q = &s.relQ
		}
		q.Remove(p.Req)
		if q == &s.mainQ {
			s.partialRemove(p.Req)
		}
		switch p.Req.Phase() {
		case request.Queued, request.Prefill:
			q.Insert(p.Req, s.priorityKey(p.Req))
			if q == &s.mainQ {
				s.partialAdd(p.Req)
			}
		case request.Decode:
			s.decodes = append(s.decodes, p.Req)
		case request.Done:
			s.finish(p.Req)
		}
	}
	live := s.decodes[:0]
	for _, r := range s.decodes {
		if r.Phase() == request.Done {
			s.finish(r)
		} else {
			live = append(live, r)
		}
	}
	s.decodes = live
}

func (s *Scheduler) finish(r *request.Request) {
	s.est.Observe(r.App, r.DecodeTokens)
	s.pending--
}
