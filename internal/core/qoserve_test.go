package core

import (
	"math/rand"
	"testing"

	"qoserve/internal/model"
	"qoserve/internal/predictor"
	"qoserve/internal/qos"
	"qoserve/internal/request"
	"qoserve/internal/sched"
	"qoserve/internal/sim"
)

func q1() qos.Class {
	return qos.Class{Name: "Q1", Kind: qos.Interactive,
		SLO: qos.SLO{TTFT: 6 * sim.Second, TBT: 50 * sim.Millisecond}}
}

func q2() qos.Class {
	return qos.Class{Name: "Q2", Kind: qos.NonInteractive,
		SLO: qos.SLO{TTLT: 600 * sim.Second}}
}

func q3() qos.Class {
	return qos.Class{Name: "Q3", Kind: qos.NonInteractive,
		SLO: qos.SLO{TTLT: 1800 * sim.Second}}
}

func req(id uint64, arrival sim.Time, prompt, decode int, class qos.Class) *request.Request {
	return &request.Request{ID: id, App: class.Name, Class: class,
		Arrival: arrival, PromptTokens: prompt, DecodeTokens: decode}
}

func oracle() predictor.Oracle {
	return predictor.Oracle{Config: model.Llama3_8B_A100_TP1()}
}

func newSched(opts Options) *Scheduler { return New(oracle(), opts) }

// run executes iterations against the real cost model until pred returns
// true or maxIters elapse, returning the final time.
func run(t *testing.T, s *Scheduler, mc model.Config, now sim.Time, maxIters int, done func() bool) sim.Time {
	t.Helper()
	for i := 0; i < maxIters; i++ {
		if done() {
			return now
		}
		b := s.PlanBatch(now)
		if b.Empty() {
			return now
		}
		now += mc.BatchTime(b.Shape())
		for _, p := range b.Prefill {
			p.Req.RecordPrefill(p.Tokens, now)
		}
		for _, d := range b.Decodes {
			d.RecordDecodeToken(now)
		}
		s.OnBatchComplete(b, now)
	}
	t.Fatal("run did not converge")
	return now
}

func TestHybridPriorityInterpolatesEDFandSRPF(t *testing.T) {
	// Two interactive requests: A arrived earlier (earlier deadline) but
	// has a huge prompt; B arrived slightly later with a tiny prompt.
	a := req(1, 0, 10000, 2, q1())
	b := req(2, 2*sim.Second, 100, 2, q1())

	// alpha = 0 (EDF): A first.
	edf := newSched(Options{HybridPriority: false, DynamicChunking: true, MaxChunk: 2500})
	if edf.priorityKey(a) >= edf.priorityKey(b) {
		t.Error("EDF: earlier deadline should sort first")
	}

	// Large alpha: B's tiny remaining work wins despite later deadline.
	srpfish := newSched(Options{HybridPriority: true, Alpha: 8 * sim.Millisecond,
		DynamicChunking: true, MaxChunk: 2500})
	if srpfish.priorityKey(b) >= srpfish.priorityKey(a) {
		t.Errorf("hybrid: short job should sort first (a=%v b=%v)",
			srpfish.priorityKey(a), srpfish.priorityKey(b))
	}
}

func TestNonInteractivePriorityIncludesDecodeEstimate(t *testing.T) {
	s := newSched(Options{HybridPriority: true, Alpha: 8 * sim.Millisecond})
	a := req(1, 0, 100, 2, q2())
	b := req(2, 0, 100, 2, q2())
	a.EstDecodeTokens = 1000
	b.EstDecodeTokens = 10
	if s.priorityKey(b) >= s.priorityKey(a) {
		t.Error("larger decode estimate should lower priority (Eq. 5)")
	}
}

func TestDynamicChunkGrowsWithSlack(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	s := New(predictor.Oracle{Config: mc}, DefaultOptions())

	// A non-interactive decode with an enormous TTLT deadline: slack is
	// huge, so the budget should allow the max chunk.
	d := req(1, 0, 64, 50, q3())
	s.Add(d, 0)
	b := s.PlanBatch(0)
	now := mc.BatchTime(b.Shape())
	d.RecordPrefill(64, now)
	s.OnBatchComplete(b, now)
	if d.Phase() != request.Decode {
		t.Fatalf("phase = %v", d.Phase())
	}

	// Queue a big prefill; the chunk should hit MaxChunk thanks to slack.
	p := req(2, now, 10000, 2, q3())
	s.Add(p, now)
	b = s.PlanBatch(now)
	if len(b.Prefill) != 1 || b.Prefill[0].Tokens != s.opts.MaxChunk {
		t.Fatalf("chunk = %+v, want max %d", b.Prefill, s.opts.MaxChunk)
	}
}

func TestDynamicChunkShrinksUnderTightSlack(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	s := New(predictor.Oracle{Config: mc}, DefaultOptions())

	// An interactive decode paced exactly at its TBT: slack ~= 50ms.
	d := req(1, 0, 64, 500, q1())
	s.Add(d, 0)
	b := s.PlanBatch(0)
	now := mc.BatchTime(b.Shape())
	d.RecordPrefill(64, now)
	s.OnBatchComplete(b, now)

	// Burn the TTFT slack: deadline of token n is arrival+6s+(n-1)*50ms.
	// Advance time to exactly the next token's deadline so slack = 0 and
	// the 50ms TBT floor applies.
	now = d.NextTokenDeadline()
	p := req(2, now, 10000, 2, q3())
	s.Add(p, now)
	b = s.PlanBatch(now)
	if len(b.Prefill) != 1 {
		t.Fatalf("no prefill planned")
	}
	chunk := b.Prefill[0].Tokens
	if chunk >= s.opts.MaxChunk/2 {
		t.Errorf("chunk %d too large for 50ms budget", chunk)
	}
	if chunk < s.opts.MinChunk {
		t.Errorf("chunk %d below floor", chunk)
	}
	// The planned batch must fit the 50ms budget per the oracle.
	if got := mc.BatchTime(b.Shape()); got > 55*sim.Millisecond {
		t.Errorf("planned batch takes %v, budget 50ms", got)
	}
}

func TestFallbackChunkWhenDCDisabled(t *testing.T) {
	opts := DefaultOptions()
	opts.DynamicChunking = false
	opts.FallbackChunk = 256
	s := newSched(opts)
	p := req(1, 0, 10000, 2, q3())
	s.Add(p, 0)
	b := s.PlanBatch(0)
	if len(b.Prefill) != 1 || b.Prefill[0].Tokens != 256 {
		t.Fatalf("fallback chunk = %+v, want 256", b.Prefill)
	}
}

func TestEagerRelegationOfDoomedRequest(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	s := New(predictor.Oracle{Config: mc}, DefaultOptions())

	// An interactive request whose deadline has already passed can never
	// meet TTFT: it must be relegated, not served from the main queue.
	doomed := req(1, 0, 5000, 2, q1())
	now := 10 * sim.Second // past the 6s TTFT deadline
	s.Add(doomed, now)
	healthy := req(2, now, 500, 2, q1())
	s.Add(healthy, now)

	b := s.PlanBatch(now)
	if !doomed.Relegated {
		t.Fatal("doomed request not relegated")
	}
	main, rel, _ := s.QueueLen()
	if main != 1 || rel != 1 {
		t.Fatalf("queues = (%d,%d), want (1,1)", main, rel)
	}
	// The healthy request is served first; spare budget may still reach
	// the relegated one.
	if len(b.Prefill) == 0 || b.Prefill[0].Req != healthy {
		t.Fatalf("healthy request not served first: %+v", b.Prefill)
	}
	if s.Relegations() != 1 {
		t.Fatalf("relegations = %d", s.Relegations())
	}
}

func TestRelegatedServedOpportunistically(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	s := New(predictor.Oracle{Config: mc}, DefaultOptions())
	doomed := req(1, 0, 500, 2, q1())
	now := 10 * sim.Second
	s.Add(doomed, now)
	// Main queue empty after relegation; the relegated request should be
	// served with the spare budget ("eventual completion, no rejection").
	end := run(t, s, mc, now, 10000, func() bool { return doomed.Phase() == request.Done })
	if doomed.Phase() != request.Done {
		t.Fatal("relegated request never completed")
	}
	if end <= now {
		t.Fatal("time did not advance")
	}
}

func TestPriorityProtectionRelegatesLowFirst(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	opts := DefaultOptions()
	opts.RelegationInterval = sim.Nanosecond
	s := New(predictor.Oracle{Config: mc}, opts)

	now := sim.Second
	// Fill the queue with enough low-priority work that a high-priority
	// interactive request behind it would miss its 6s TTFT.
	var lows []*request.Request
	for i := 0; i < 16; i++ {
		r := req(uint64(i+1), now, 10000, 2, q1())
		r.Priority = qos.Low
		lows = append(lows, r)
		s.Add(r, now)
	}
	hi := req(100, now, 10000, 2, q1())
	hi.Priority = qos.High
	s.Add(hi, now)

	s.PlanBatch(now)
	relLow := 0
	for _, r := range lows {
		if r.Relegated {
			relLow++
		}
	}
	if relLow == 0 {
		t.Fatal("no low-priority request relegated to protect important traffic")
	}
	if hi.Relegated {
		t.Fatal("high-priority request relegated while low-priority remained")
	}
}

func TestSelectivePreemptionBoostsAtRiskPartial(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	opts := DefaultOptions()
	opts.AdaptiveAlpha = false
	opts.Alpha = 0 // pure EDF so the newcomer would normally win
	s := New(predictor.Oracle{Config: mc}, opts)

	// Partially prefill an interactive request close to its deadline.
	now := sim.Time(0)
	inflight := req(1, 0, 3000, 2, q1())
	s.Add(inflight, now)
	b := s.PlanBatch(now)
	now += mc.BatchTime(b.Shape())
	inflight.RecordPrefill(b.Prefill[0].Tokens, now)
	s.OnBatchComplete(b, now)
	if inflight.Phase() != request.Prefill {
		t.Fatalf("phase = %v, want prefill", inflight.Phase())
	}

	// Jump so close to the in-flight request's deadline that sitting out
	// one iteration would blow it, then add a newcomer whose stricter
	// TTFT class gives it an earlier deadline (so plain EDF would
	// displace the in-flight request).
	strict := qos.Class{Name: "Q0", Kind: qos.Interactive,
		SLO: qos.SLO{TTFT: 50 * sim.Millisecond, TBT: 50 * sim.Millisecond}}
	now = inflight.FirstTokenDeadline() - 100*sim.Millisecond
	newcomer := req(2, now, 200, 2, strict)
	s.Add(newcomer, now)

	b = s.PlanBatch(now)
	if len(b.Prefill) == 0 {
		t.Fatal("no prefill planned")
	}
	// The at-risk in-flight request must be served this iteration (first
	// allocation), not displaced by the newcomer.
	if b.Prefill[0].Req != inflight {
		t.Fatalf("at-risk partial displaced; first alloc = request %d", b.Prefill[0].Req.ID)
	}
}

func TestSelectivePreemptionDisabled(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	opts := DefaultOptions()
	opts.AdaptiveAlpha = false
	opts.Alpha = 0
	opts.SelectivePreemption = false
	opts.EagerRelegation = false
	s := New(predictor.Oracle{Config: mc}, opts)

	now := sim.Time(0)
	inflight := req(1, 0, 3000, 2, q1())
	s.Add(inflight, now)
	b := s.PlanBatch(now)
	now += mc.BatchTime(b.Shape())
	inflight.RecordPrefill(b.Prefill[0].Tokens, now)
	s.OnBatchComplete(b, now)

	strict := qos.Class{Name: "Q0", Kind: qos.Interactive,
		SLO: qos.SLO{TTFT: 50 * sim.Millisecond, TBT: 50 * sim.Millisecond}}
	now = inflight.FirstTokenDeadline() - 100*sim.Millisecond
	newcomer := req(2, now, 200, 2, strict)
	s.Add(newcomer, now)
	b = s.PlanBatch(now)
	if b.Prefill[0].Req != newcomer {
		t.Fatal("without selective preemption, EDF order should put the newcomer first")
	}
}

func TestAdaptiveAlphaBacklogFallback(t *testing.T) {
	// Without eager relegation, the adaptive signal is raw backlog.
	opts := DefaultOptions()
	opts.EagerRelegation = false
	opts.AlphaSwitchBacklog = sim.Second
	s := newSched(opts)
	if s.alpha() != opts.AlphaLow {
		t.Fatalf("initial alpha = %v, want low", s.alpha())
	}
	// Enqueue far more work than a second of prefill.
	now := sim.Time(0)
	for i := 0; i < 50; i++ {
		s.Add(req(uint64(i+1), now, 10000, 2, q3()), now)
	}
	s.PlanBatch(now)
	if s.alpha() != opts.Alpha {
		t.Fatalf("alpha under backlog = %v, want high %v", s.alpha(), opts.Alpha)
	}
}

func TestAdaptiveAlphaDeadlinePressure(t *testing.T) {
	// With eager relegation, alpha rises only under projected deadline
	// pressure: a deep queue of relaxed-deadline work must NOT trigger it.
	opts := DefaultOptions()
	opts.RelegationInterval = sim.Nanosecond
	s := newSched(opts)
	now := sim.Time(0)
	for i := 0; i < 50; i++ {
		s.Add(req(uint64(i+1), now, 10000, 2, q3()), now) // 1800s TTLT: no pressure
	}
	s.PlanBatch(now)
	s.PlanBatch(now + sim.Second) // regime reads the previous pass's signal
	if s.alpha() != opts.AlphaLow {
		t.Fatalf("alpha = %v under relaxed backlog, want low", s.alpha())
	}
	// Now enqueue strict-TTFT work deep enough to project violations.
	for i := 0; i < 40; i++ {
		s.Add(req(uint64(100+i), now+sim.Second, 10000, 2, q1()), now+sim.Second)
	}
	s.PlanBatch(now + 2*sim.Second)
	s.PlanBatch(now + 3*sim.Second)
	if s.alpha() != opts.Alpha {
		t.Fatalf("alpha = %v under deadline pressure, want high %v", s.alpha(), opts.Alpha)
	}
}

func TestEndToEndDrain(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	s := New(predictor.Oracle{Config: mc}, DefaultOptions())
	var reqs []*request.Request
	classes := []qos.Class{q1(), q2(), q3()}
	for i := 0; i < 30; i++ {
		r := req(uint64(i+1), sim.Time(i)*100*sim.Millisecond,
			200+37*i, 1+i%7, classes[i%3])
		reqs = append(reqs, r)
	}
	now := sim.Time(0)
	idx := 0
	for iter := 0; s.Pending() > 0 || idx < len(reqs); iter++ {
		if iter > 200000 {
			t.Fatal("did not drain")
		}
		for idx < len(reqs) && reqs[idx].Arrival <= now {
			s.Add(reqs[idx], now)
			idx++
		}
		b := s.PlanBatch(now)
		if b.Empty() {
			if idx < len(reqs) {
				now = reqs[idx].Arrival
				continue
			}
			break
		}
		now += mc.BatchTime(b.Shape())
		for _, p := range b.Prefill {
			p.Req.RecordPrefill(p.Tokens, now)
		}
		for _, d := range b.Decodes {
			d.RecordDecodeToken(now)
		}
		s.OnBatchComplete(b, now)
	}
	for _, r := range reqs {
		if r.Phase() != request.Done {
			t.Errorf("request %d stuck in %v", r.ID, r.Phase())
		}
	}
	main, rel, dec := s.QueueLen()
	if main+rel+dec != 0 {
		t.Errorf("queues not empty: %d/%d/%d", main, rel, dec)
	}
}

func TestChunkLog(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	s := New(predictor.Oracle{Config: mc}, DefaultOptions())
	s.EnableChunkLog()
	r := req(1, 0, 5000, 3, q3())
	s.Add(r, 0)
	run(t, s, mc, 0, 10000, func() bool { return r.Phase() == request.Done })
	log := s.ChunkLog()
	if len(log) < 2 {
		t.Fatalf("chunk log has %d entries", len(log))
	}
	for i, rec := range log {
		if rec.ExecTime <= 0 {
			t.Errorf("entry %d missing exec time", i)
		}
	}
}

func TestSchedulerImplementsInterface(t *testing.T) {
	var _ sched.Scheduler = newSched(DefaultOptions())
	if got := newSched(DefaultOptions()).Name(); got != "QoServe" {
		t.Errorf("Name() = %q", got)
	}
}

func TestDefaultsAppliedForZeroOptions(t *testing.T) {
	s := newSched(Options{})
	if s.opts.MaxChunk != 2500 || s.opts.MinChunk != 32 ||
		s.opts.FallbackChunk != sched.DefaultChunk ||
		s.opts.LatePacing <= 0 || s.opts.RelegationInterval <= 0 {
		t.Errorf("zero options not defaulted: %+v", s.opts)
	}
}

// TestRandomizedContractDrain subjects QoServe to the same randomized
// contract discipline as the baselines: random workloads must drain fully,
// every batch must reference only live requests with valid allocations, and
// relegated requests must still complete (no permanent rejection).
func TestRandomizedContractDrain(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 5; trial++ {
		s := New(predictor.Oracle{Config: mc}, DefaultOptions())
		classes := []qos.Class{q1(), q2(), q3()}
		n := 10 + rng.Intn(40)
		reqs := make([]*request.Request, n)
		for i := range reqs {
			prio := qos.High
			if rng.Intn(4) == 0 {
				prio = qos.Low
			}
			reqs[i] = &request.Request{
				ID:           uint64(i + 1),
				App:          "app",
				Class:        classes[rng.Intn(3)],
				Priority:     prio,
				Arrival:      sim.Time(rng.Intn(5000)) * sim.Millisecond,
				PromptTokens: 1 + rng.Intn(6000),
				DecodeTokens: 1 + rng.Intn(50),
			}
		}
		live := map[uint64]bool{}
		now := sim.Time(0)
		idx := 0
		for iter := 0; ; iter++ {
			if iter > 300000 {
				t.Fatalf("trial %d: no drain (pending %d)", trial, s.Pending())
			}
			for idx < n && reqs[idx].Arrival <= now {
				s.Add(reqs[idx], now)
				live[reqs[idx].ID] = true
				idx++
			}
			if len(live) == 0 && idx >= n {
				break
			}
			b := s.PlanBatch(now)
			if b.Empty() {
				if idx < n {
					now = reqs[idx].Arrival
					continue
				}
				t.Fatalf("trial %d: empty batch with %d live requests", trial, len(live))
			}
			seen := map[uint64]bool{}
			for _, p := range b.Prefill {
				if !live[p.Req.ID] || seen[p.Req.ID] {
					t.Fatalf("trial %d: invalid prefill for %d", trial, p.Req.ID)
				}
				seen[p.Req.ID] = true
				if p.Tokens <= 0 || p.Tokens > p.Req.RemainingPrefill() {
					t.Fatalf("trial %d: bad alloc %d/%d", trial, p.Tokens, p.Req.RemainingPrefill())
				}
			}
			for _, d := range b.Decodes {
				if !live[d.ID] || seen[d.ID] || d.Phase() != request.Decode {
					t.Fatalf("trial %d: invalid decode entry %d", trial, d.ID)
				}
				seen[d.ID] = true
			}
			now += mc.BatchTime(b.Shape())
			for _, p := range b.Prefill {
				p.Req.RecordPrefill(p.Tokens, now)
			}
			for _, d := range b.Decodes {
				d.RecordDecodeToken(now)
			}
			s.OnBatchComplete(b, now)
			for _, r := range reqs[:idx] {
				if live[r.ID] && r.Phase() == request.Done {
					delete(live, r.ID)
				}
			}
		}
		if s.Pending() != 0 {
			t.Fatalf("trial %d: pending %d after drain", trial, s.Pending())
		}
		main, rel, dec := s.QueueLen()
		if main+rel+dec != 0 {
			t.Fatalf("trial %d: queues not empty: %d/%d/%d", trial, main, rel, dec)
		}
	}
}

// TestPlannedBatchRespectsBudgetProperty: with an oracle predictor, for any
// randomized mix of in-flight decodes and queued prefills, every planned
// batch with a prefill chunk must execute within the iteration budget
// implied by the decodes' slack (floored per-decode at its TBT/late
// pacing), up to the MinChunk progress floor.
func TestPlannedBatchRespectsBudgetProperty(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	rng := rand.New(rand.NewSource(77))
	classes := []qos.Class{q1(), q2(), q3()}
	for trial := 0; trial < 40; trial++ {
		opts := DefaultOptions()
		opts.TTFTRush = 0 // isolate the slack budget from the rush escape
		s := New(predictor.Oracle{Config: mc}, opts)
		now := sim.Time(rng.Intn(10000)) * sim.Millisecond

		// Random decodes at various progress points.
		nDec := 1 + rng.Intn(20)
		for i := 0; i < nDec; i++ {
			r := req(uint64(i+1), sim.Time(rng.Intn(int(now)+1)), 16+rng.Intn(2000), 2+rng.Intn(40), classes[rng.Intn(3)])
			r.RecordPrefill(r.PromptTokens, r.Arrival+sim.Millisecond)
			for d := rng.Intn(r.DecodeTokens - 1); d > 0; d-- {
				r.RecordDecodeToken(r.Arrival + 2*sim.Millisecond)
			}
			s.decodes = append(s.decodes, r)
		}
		// Random queued prefills.
		for i := 0; i < 1+rng.Intn(5); i++ {
			s.Add(req(uint64(100+i), now, 64+rng.Intn(8000), 1+rng.Intn(10), classes[rng.Intn(3)]), now)
		}

		budget, _ := s.iterationBudget(now)
		b := s.PlanBatch(now)
		if b.PrefillTokens() <= opts.MinChunk {
			continue // the progress floor may legitimately exceed budget
		}
		exec := mc.BatchTime(b.Shape())
		// Allow the predictor-vs-true hairline (oracle: none) plus 1%.
		if float64(exec) > float64(budget)*1.01 {
			t.Fatalf("trial %d: batch %v runs %v, budget %v", trial, b, exec, budget)
		}
	}
}

// TestIterationBudgetPerDecodeProperty: the budget never exceeds any
// decode's max(safety*slack, floor), and never goes below the smallest
// floor.
func TestIterationBudgetPerDecodeProperty(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	rng := rand.New(rand.NewSource(88))
	classes := []qos.Class{q1(), q2(), q3()}
	for trial := 0; trial < 60; trial++ {
		s := New(predictor.Oracle{Config: mc}, DefaultOptions())
		now := 20 * sim.Second
		n := 1 + rng.Intn(15)
		minCap := sim.Forever
		for i := 0; i < n; i++ {
			r := req(uint64(i+1), sim.Time(rng.Intn(20000))*sim.Millisecond,
				16+rng.Intn(500), 2+rng.Intn(20), classes[rng.Intn(3)])
			r.RecordPrefill(r.PromptTokens, r.Arrival+sim.Millisecond)
			s.decodes = append(s.decodes, r)

			slack := r.NextTokenDeadline() - now
			if slack > 0 {
				slack = sim.Time(float64(slack) * s.opts.SlackSafety)
			}
			floor := r.Class.SLO.TBT
			if floor == 0 {
				floor = s.opts.LatePacing
			}
			cap := slack
			if cap < floor {
				cap = floor
			}
			if cap < minCap {
				minCap = cap
			}
		}
		budget, _ := s.iterationBudget(now)
		if budget != minCap {
			t.Fatalf("trial %d: budget %v != expected min %v", trial, budget, minCap)
		}
	}
}

func TestRelegationPassThrottled(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	opts := DefaultOptions()
	opts.RelegationInterval = sim.Second
	s := New(predictor.Oracle{Config: mc}, opts)
	s.Add(req(1, 0, 100, 2, q3()), 0)
	// Plans inside the first interval run no queue-wide pass (the
	// throttle clock starts at zero).
	s.PlanBatch(0)
	s.PlanBatch(100 * sim.Millisecond)
	s.PlanBatch(900 * sim.Millisecond)
	if got := s.RelegationPasses(); got != 0 {
		t.Fatalf("passes = %d, want 0 (throttled)", got)
	}
	s.PlanBatch(1100 * sim.Millisecond)
	s.PlanBatch(1200 * sim.Millisecond)
	if got := s.RelegationPasses(); got != 1 {
		t.Fatalf("passes = %d, want 1", got)
	}
	s.PlanBatch(2200 * sim.Millisecond)
	if got := s.RelegationPasses(); got != 2 {
		t.Fatalf("passes = %d, want 2", got)
	}
}

func TestRelegatedRequestCompletionBookkeeping(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	s := New(predictor.Oracle{Config: mc}, DefaultOptions())
	// Relegate by arriving past the deadline, then run to completion; the
	// relegated queue must drain and history must record the decode.
	doomed := req(1, 0, 200, 3, q1())
	now := 10 * sim.Second
	s.Add(doomed, now)
	run(t, s, mc, now, 10000, func() bool { return doomed.Phase() == request.Done })
	_, rel, dec := s.QueueLen()
	if rel != 0 || dec != 0 {
		t.Fatalf("queues after relegated completion: rel=%d dec=%d", rel, dec)
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d", s.Pending())
	}
	if !doomed.Relegated {
		t.Fatal("relegation flag lost")
	}
}
