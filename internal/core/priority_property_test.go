package core

import (
	"math/rand"
	"testing"

	"qoserve/internal/model"
	"qoserve/internal/predictor"
	"qoserve/internal/qos"
	"qoserve/internal/request"
	"qoserve/internal/sim"
)

// Property tests for the hybrid priority key (Section 3.4, Eqs. 4-5):
// the key must induce a transitive order over arbitrary requests, reduce
// to pure EDF at alpha = 0, and approach remaining-work (SRPF-like)
// ordering as alpha grows without bound.

// propScheduler builds a scheduler with a pinned alpha (no adaptive
// switching, so the key is a pure function of the request).
func propScheduler(alpha sim.Time) *Scheduler {
	opts := DefaultOptions()
	opts.Alpha = alpha
	opts.AdaptiveAlpha = false
	return New(predictor.Oracle{Config: model.Llama3_8B_A100_TP1()}, opts)
}

// randomRequest draws a request with random class, arrival, prompt
// progress, and decode estimate from the given source.
func randomRequest(rng *rand.Rand, id uint64) *request.Request {
	classes := qos.Table3()
	r := &request.Request{
		ID:              id,
		Class:           classes[rng.Intn(len(classes))],
		Arrival:         sim.Time(rng.Int63n(int64(10 * sim.Minute))),
		PromptTokens:    1 + rng.Intn(4000),
		DecodeTokens:    1 + rng.Intn(1000),
		EstDecodeTokens: 1 + rng.Intn(1000),
	}
	r.PrefilledTokens = rng.Intn(r.PromptTokens + 1) // partial progress allowed
	return r
}

// deadline is the EDF key the paper's Eq. 4 reduces to at alpha = 0.
func deadline(r *request.Request) sim.Time {
	if r.Class.Kind == qos.Interactive {
		return r.Arrival + r.Class.SLO.TTFT
	}
	return r.Arrival + r.Class.SLO.TTLT
}

// remainingWork mirrors the work term of Eq. 5.
func remainingWork(r *request.Request) int {
	if r.Class.Kind == qos.Interactive {
		return r.RemainingPrefill()
	}
	return r.RemainingPrefill() + r.EstDecodeTokens
}

// TestPriorityKeyTransitive checks the key induces a consistent total
// order: for random triples under the paper-default alpha, a <= b and
// b <= c imply a <= c, and the comparison is antisymmetric.
func TestPriorityKeyTransitive(t *testing.T) {
	s := propScheduler(8 * sim.Millisecond)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		a := randomRequest(rng, 1)
		b := randomRequest(rng, 2)
		c := randomRequest(rng, 3)
		ka, kb, kc := s.priorityKey(a), s.priorityKey(b), s.priorityKey(c)
		if ka <= kb && kb <= kc && ka > kc {
			t.Fatalf("transitivity violated: key(a)=%v <= key(b)=%v <= key(c)=%v but key(a) > key(c)", ka, kb, kc)
		}
		// Purity: the same request keys identically on repeated evaluation.
		if s.priorityKey(a) != ka {
			t.Fatal("priority key not a pure function of the request")
		}
	}
}

// TestPriorityKeyAlphaZeroIsEDF checks Eq. 4 at alpha = 0: the order is
// exactly earliest-deadline-first, regardless of remaining work.
func TestPriorityKeyAlphaZeroIsEDF(t *testing.T) {
	s := propScheduler(0)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 2000; trial++ {
		a := randomRequest(rng, 1)
		b := randomRequest(rng, 2)
		ka, kb := s.priorityKey(a), s.priorityKey(b)
		da, db := deadline(a), deadline(b)
		if da < db && ka >= kb {
			t.Fatalf("alpha=0: deadline(a)=%v < deadline(b)=%v but key(a)=%v >= key(b)=%v", da, db, ka, kb)
		}
		if da == db && ka != kb {
			t.Fatalf("alpha=0: equal deadlines %v keyed differently: %v vs %v", da, ka, kb)
		}
	}
}

// TestPriorityKeyLargeAlphaIsSRPF checks the alpha -> infinity limit of
// Eq. 5: with the work term dominating any deadline difference, the order
// is shortest-remaining-work-first.
func TestPriorityKeyLargeAlphaIsSRPF(t *testing.T) {
	// 1000 hours per token: one token of work difference outweighs any
	// deadline spread this test can generate (minutes).
	s := propScheduler(1000 * sim.Hour)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		a := randomRequest(rng, 1)
		b := randomRequest(rng, 2)
		wa, wb := remainingWork(a), remainingWork(b)
		ka, kb := s.priorityKey(a), s.priorityKey(b)
		if wa < wb && ka >= kb {
			t.Fatalf("large alpha: work(a)=%d < work(b)=%d but key(a)=%v >= key(b)=%v", wa, wb, ka, kb)
		}
		if wa == wb {
			// Ties fall back to the deadline term.
			da, db := deadline(a), deadline(b)
			if da < db && ka >= kb {
				t.Fatalf("large alpha tie: deadline(a)=%v < deadline(b)=%v but key(a)=%v >= key(b)=%v", da, db, ka, kb)
			}
		}
	}
}

// TestPriorityKeyPrefillProgressRaisesPriority checks the mechanism the
// selective-preemption boost relies on: as a request's prefill advances,
// its remaining work shrinks, so at positive alpha its key can only
// improve (decrease) while the deadline term stays fixed.
func TestPriorityKeyPrefillProgressRaisesPriority(t *testing.T) {
	s := propScheduler(8 * sim.Millisecond)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 500; trial++ {
		r := randomRequest(rng, 1)
		r.PrefilledTokens = 0
		before := s.priorityKey(r)
		r.PrefilledTokens = r.PromptTokens / 2
		mid := s.priorityKey(r)
		r.PrefilledTokens = r.PromptTokens
		after := s.priorityKey(r)
		if mid > before || after > mid {
			t.Fatalf("key rose as prefill advanced: %v -> %v -> %v", before, mid, after)
		}
	}
}
