// Eager relegation (Section 3.4): self-calibrating service-rate estimates,
// deadline projections, the WILL_VIOLATE check of Algorithm 1, and the
// queue-wide protection pass that relegates free-tier requests first.
package core

import (
	"qoserve/internal/model"
	"qoserve/internal/predictor"
	"qoserve/internal/profile"
	"qoserve/internal/qos"
	"qoserve/internal/request"
	"qoserve/internal/sim"
	"qoserve/internal/trace"
)

// updateBestRate refreshes the dedicated-service prefill rate under the
// current decode load. Relies on decodeFeats being refreshed by PlanBatch.
//
//qoserve:hotpath
func (s *Scheduler) updateBestRate() {
	var t float64
	if fp, ok := s.pred.(predictor.FeaturePredictor); ok {
		x := s.decodeFeats
		x[profile.FeatChunkTokens] = float64(s.opts.MaxChunk)
		t = fp.PredictSafeFeats(x).Seconds()
	} else {
		shape := model.BatchShape{
			//lint:ignore hotpathalloc shape fallback for predictors without a feature path (the Oracle ablation); the production Forest always takes the allocation-free branch above.
			Prefill:   []model.ChunkShape{{Tokens: s.opts.MaxChunk}},
			DecodeCtx: s.decodeCtxs(),
		}
		t = s.pred.PredictSafe(shape).Seconds()
	}
	if t > 0 {
		s.bestRate = float64(s.opts.MaxChunk) / t
	}
}

// prefillTime estimates the time to process n prompt tokens at the
// sustained queue-wide rate.
//
//qoserve:hotpath
func (s *Scheduler) prefillTime(n int) sim.Time {
	return sim.FromSeconds(float64(n) / s.prefillRate)
}

// bestPrefillTime estimates the time to process n prompt tokens with the
// replica dedicated to the request.
//
//qoserve:hotpath
func (s *Scheduler) bestPrefillTime(n int) sim.Time {
	return sim.FromSeconds(float64(n) / s.bestRate)
}

// projectedFinish estimates when r would deliver its first token (and, for
// non-interactive requests, complete) if its prefill started at t.
//
//qoserve:hotpath
func (s *Scheduler) projectedFinish(r *request.Request, t sim.Time) (firstToken, completion sim.Time) {
	firstToken = t + s.prefillTime(r.RemainingPrefill())
	decodeIters := r.EstDecodeTokens - 1
	if decodeIters < 0 {
		decodeIters = 0
	}
	completion = firstToken + sim.FromSeconds(float64(decodeIters)*s.iterTime)
	return firstToken, completion
}

// willViolateAlone is WILL_VIOLATE from Algorithm 1: even starting right
// now with the replica to itself (best-case dedicated rate), the request
// cannot meet its deadline. Using the best-case rate keeps long-but-savable
// requests out of the relegated queue — backlog-induced risk is handled
// separately by the protection pass.
//
//qoserve:hotpath
func (s *Scheduler) willViolateAlone(r *request.Request, now sim.Time) bool {
	first := now + s.bestPrefillTime(r.RemainingPrefill())
	if r.Class.Kind == qos.Interactive {
		return first > r.FirstTokenDeadline()
	}
	decodeIters := r.EstDecodeTokens - 1
	if decodeIters < 0 {
		decodeIters = 0
	}
	completion := first + sim.FromSeconds(float64(decodeIters)*s.iterTime)
	return completion > r.Arrival+r.Class.SLO.TTLT
}

// relegate moves r from the main queue to the relegated queue, logging the
// decision (with the policy's reason) to an attached tracer.
//
//qoserve:hotpath
func (s *Scheduler) relegate(r *request.Request, now sim.Time, reason string) {
	if r.Relegated {
		return
	}
	s.mainQ.Remove(r)
	s.partialRemove(r)
	r.Relegated = true
	s.relegations++
	s.relQ.Insert(r, s.priorityKey(r))
	s.TraceEvent(trace.Event{At: now, Kind: trace.Relegation, Req: r.ID, Class: r.Class.Name, Reason: reason})
}

// relegationPass is the queue-wide projection (throttled): walk the main
// queue in priority order, accumulate backlog, and find requests that will
// miss deadlines given the traffic ahead of them. Low-priority requests are
// relegated first to protect important traffic; high-priority requests are
// relegated only when doomed even in isolation (Section 3.4).
//
//qoserve:hotpath
func (s *Scheduler) relegationPass(now sim.Time) {
	if now-s.lastRelegationPass < s.opts.RelegationInterval {
		return
	}
	s.lastRelegationPass = now
	s.relegationPasses++

	// Greedily relegate the largest low-priority request ahead of a
	// violating high-priority one until the projection clears. Each round
	// is one fused walk (scanQueue); the final, victim-free round also
	// yields the doomed set and violator count the separate walks of the
	// three-pass formulation would have produced, since the queue is
	// untouched between a victim-free walk and those passes.
	var doomed []*request.Request
	violators := 0
	for iter := 0; iter < s.mainQ.Len()+1; iter++ {
		victim, d, v := s.scanQueue(now)
		if victim == nil {
			doomed, violators = d, v
			break
		}
		s.relegate(victim, now, "protects high-priority backlog")
	}

	// Relegate requests that cannot make their deadline even alone.
	for _, r := range doomed {
		s.relegate(r, now, "doomed even at dedicated rate")
	}

	// Refresh the load signal for adaptive alpha, with hysteresis: a
	// single transiently-late request at light load must not flip the
	// system into SRPF-flavoured ordering (with alpha = 8 ms/token a
	// 14K-token prompt is penalized by ~2 minutes of queue priority — a
	// self-fulfilling starvation if triggered spuriously). High alpha
	// engages only when several requests, and a meaningful share of the
	// queue, are projected to miss; it releases when the projection is
	// clean. Relegating doomed requests changes the cumulative drain
	// projection, so the count is only reusable from a walk of the final
	// queue state.
	if len(doomed) > 0 {
		violators = s.countProjectedViolators(now)
		clear(doomed)
	}
	switch {
	case violators >= 2 && violators*20 >= s.mainQ.Len():
		s.deadlinePressure = true
	case violators == 0:
		s.deadlinePressure = false
	}
}

// countProjectedViolators walks the main queue in priority order at the
// sustained rate and counts requests projected to miss their deadline.
//
//qoserve:hotpath
func (s *Scheduler) countProjectedViolators(now sim.Time) int {
	t := now
	n := 0
	for _, r := range s.mainQ.Items() {
		first, completion := s.projectedFinish(r, t)
		if r.Class.Kind == qos.Interactive {
			if first > r.FirstTokenDeadline() {
				n++
			}
		} else if completion > r.Arrival+r.Class.SLO.TTLT {
			n++
		}
		t = first
	}
	return n
}

// scanQueue simulates queue drain in priority order — one fused walk doing
// the work of the former findProtectionVictim / willViolateAlone /
// countProjectedViolators passes. If a high-priority request is projected to
// violate because of backlog, it returns the largest low-priority request
// queued ahead of it immediately (doomed and violators are then meaningless
// and zero, exactly as the dedicated victim walk would have early-exited).
// When the projection produces no victim, the queue is untouched, so the
// doomed set and violator count gathered along the way equal what separate
// walks would compute. doomed aliases a scheduler-owned scratch buffer valid
// until the next scanQueue call.
//
//qoserve:hotpath
func (s *Scheduler) scanQueue(now sim.Time) (victim *request.Request, doomed []*request.Request, violators int) {
	t := now
	var biggestLow *request.Request
	biggestLowRem := 0
	doomed = s.doomedScratch[:0]
	for _, r := range s.mainQ.Items() {
		// Each request's fields are loaded once and shared between the
		// cumulative projection and the dedicated-rate (willViolateAlone)
		// check — the arithmetic is the same expressions the standalone
		// helpers evaluate, so results are bit-identical.
		rem := r.RemainingPrefill()
		first := t + s.prefillTime(rem)
		decodeIters := r.EstDecodeTokens - 1
		if decodeIters < 0 {
			decodeIters = 0
		}
		decodeTime := sim.FromSeconds(float64(decodeIters) * s.iterTime)
		interactive := r.Class.Kind == qos.Interactive
		var deadline sim.Time
		if interactive {
			deadline = r.FirstTokenDeadline()
		} else {
			deadline = r.Arrival + r.Class.SLO.TTLT
		}
		violates := false
		if interactive {
			violates = first > deadline
		} else {
			violates = first+decodeTime > deadline
		}
		if violates && r.Priority == qos.High && biggestLow != nil {
			return biggestLow, nil, 0
		}
		if r.Priority == qos.Low {
			if biggestLow == nil || rem > biggestLowRem {
				biggestLow, biggestLowRem = r, rem
			}
		}
		if violates {
			violators++
		}
		aloneFirst := now + s.bestPrefillTime(rem)
		if interactive {
			if aloneFirst > deadline {
				doomed = append(doomed, r)
			}
		} else if aloneFirst+decodeTime > deadline {
			doomed = append(doomed, r)
		}
		t = first // prefill service is serialized; decode piggybacks
	}
	s.doomedScratch = doomed
	return nil, doomed, violators
}
