package core

import (
	"sync"
	"testing"

	"qoserve/internal/model"
	"qoserve/internal/predictor"
	"qoserve/internal/profile"
	"qoserve/internal/sim"
)

// trainedForest returns a forest trained on the real profiling sweep, shared
// across the allocation tests (training is deterministic, read-only at
// predict time).
var trainedForest = sync.OnceValue(func() *predictor.Forest {
	mc := model.Llama3_8B_A100_TP1()
	samples, err := profile.Collect(mc, profile.Config{Seed: 7})
	if err != nil {
		panic(err)
	}
	f, err := predictor.Train(samples, predictor.ForestConfig{Seed: 7})
	if err != nil {
		panic(err)
	}
	return f
})

// steadyStateScheduler builds a QoServe scheduler in its steady state: a
// handful of long decodes plus one long in-flight prefill, all far from
// finishing, so plan/complete cycles repeat without requests entering or
// leaving — the regime the alloc-free plan path is designed for.
func steadyStateScheduler(tb testing.TB) (*Scheduler, func()) {
	tb.Helper()
	s := New(trainedForest(), DefaultOptions())
	now := sim.Time(0)
	for i := uint64(1); i <= 8; i++ {
		r := req(i, 0, 64, 1<<20, q3())
		r.EstDecodeTokens = 1 << 20
		s.Add(r, now)
	}
	big := req(100, 0, 1<<20, 1<<20, q3())
	big.EstDecodeTokens = 1 << 20
	s.Add(big, now)

	cycle := func() {
		b := s.PlanBatch(now)
		now += 50 * sim.Millisecond
		for _, p := range b.Prefill {
			p.Req.RecordPrefill(p.Tokens, now)
		}
		for _, d := range b.Decodes {
			d.RecordDecodeToken(now)
		}
		s.OnBatchComplete(b, now)
	}
	// Drain the short prompts into decode phase and warm every scratch
	// buffer, map bucket, and slice capacity.
	for i := 0; i < 50; i++ {
		cycle()
	}
	main, _, decodes := s.QueueLen()
	if decodes != 8 || main+s.relQ.Len() != 1 {
		tb.Fatalf("steady state not reached: main=%d rel=%d decodes=%d", main, s.relQ.Len(), decodes)
	}
	return s, cycle
}

// TestPlanBatchSteadyStateAllocFree pins the full plan/complete cycle —
// PlanBatch (budget inversion, batch assembly, trim) plus OnBatchComplete
// bookkeeping — at zero steady-state allocations. A regression here fails CI.
func TestPlanBatchSteadyStateAllocFree(t *testing.T) {
	_, cycle := steadyStateScheduler(t)
	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Fatalf("plan/complete cycle allocates %.2f objects/run, want 0", avg)
	}
}

// BenchmarkPlanBatchCycle measures the steady-state plan/complete cycle;
// run with -benchmem to confirm 0 allocs/op.
func BenchmarkPlanBatchCycle(b *testing.B) {
	_, cycle := steadyStateScheduler(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
}
