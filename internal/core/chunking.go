// Dynamic chunking (Section 3.3 / Algorithm 1's GET_PREFILL_BUDGET): the
// per-iteration latency budget derived from decode slack, its inversion to
// a prefill token budget via the latency predictor, the TTFT-rush escape,
// and the post-assembly batch trim.
package core

import (
	"qoserve/internal/predictor"
	"qoserve/internal/qos"
	"qoserve/internal/sched"
	"qoserve/internal/sim"
)

// decodeCtxs lists the context length of each in-flight decode, reusing the
// plan-scoped scratch buffer (valid until the next PlanBatch).
//
//qoserve:hotpath
func (s *Scheduler) decodeCtxs() []int {
	ctx := s.ctxScratch[:0]
	for _, r := range s.decodes {
		ctx = append(ctx, r.ContextLen())
	}
	s.ctxScratch = ctx
	return ctx
}

// iterationBudget computes the latency budget for the next iteration
// (GET_MIN_SLACK feeding GET_PREFILL_BUDGET in Algorithm 1). Each in-flight
// decode contributes max(SlackSafety * slack_i, TBT_i): a decode ahead of
// its Eq. 2 schedule donates its slack, while one that has fallen behind is
// paced at its own TBT rather than starving prefill forever (non-interactive
// decodes, which have no TBT, floor at LatePacing). The batch budget is the
// minimum over decodes; with no decodes the budget is unbounded and the
// chunk cap applies.
//
//qoserve:hotpath
func (s *Scheduler) iterationBudget(now sim.Time) (budget sim.Time, floorBound bool) {
	budget = sim.Forever
	for _, r := range s.decodes {
		slack := r.NextTokenDeadline() - now
		if slack > 0 {
			slack = sim.Time(float64(slack) * s.opts.SlackSafety)
		}
		floor := r.Class.SLO.TBT
		if floor == 0 {
			floor = s.opts.LatePacing
		}
		bound := slack < floor
		if bound {
			slack = floor
		}
		if slack < budget {
			budget, floorBound = slack, bound
		}
	}
	return budget, floorBound
}

// prefillBudget is GET_PREFILL_BUDGET: the dynamic chunk size C. It also
// selects the predictor used to verify the plan: the margined predictor
// when the budget is genuine deadline slack, the raw one when the budget is
// merely a TBT pacing floor (the affected tokens are late either way, and
// conservatism there only starves prefill).
//
//qoserve:hotpath
func (s *Scheduler) prefillBudget(now sim.Time, frontCtx int) (int, sim.Time) {
	s.planPred = s.pred
	if !s.opts.DynamicChunking {
		c := s.opts.FallbackChunk - len(s.decodes)
		if c < 0 {
			c = 0
		}
		return c, 0
	}
	budget, floorBound := s.iterationBudget(now)
	if floorBound {
		s.planPred = s.rawPred
		if boost := s.ttftRushBudget(now); boost > budget {
			budget = boost
		}
	}
	var c int
	if fp, ok := s.planPred.(predictor.FeaturePredictor); ok {
		// Feature fast path: the decode-side vector was cached at the top of
		// PlanBatch, so the whole budget inversion runs allocation-free.
		c = predictor.ChunkBudgetFeats(fp, s.decodeFeats, frontCtx, budget, s.opts.MaxChunk)
	} else {
		c = predictor.ChunkBudget(s.planPred, s.decodeCtxs(), frontCtx, budget, s.opts.MaxChunk)
	}
	if c < s.opts.MinChunk {
		c = s.opts.MinChunk
	}
	return c, budget
}

// ttftRushBudget returns the boosted iteration budget when the front
// main-queue interactive request would miss its TTFT at the achieved
// prefill rate, and zero otherwise.
//
//qoserve:hotpath
func (s *Scheduler) ttftRushBudget(now sim.Time) sim.Time {
	if s.opts.TTFTRush <= 0 {
		return 0
	}
	f := s.mainQ.Front()
	if f == nil || f.Class.Kind != qos.Interactive {
		return 0
	}
	projected := now + s.prefillTime(f.RemainingPrefill()) + sim.FromSeconds(s.iterTime)
	if projected > f.FirstTokenDeadline() {
		return s.opts.TTFTRush
	}
	return 0
}

// trimToBudget verifies the assembled batch against the latency budget and
// shrinks prefill allocations from the back until it fits. The token budget
// C was priced assuming the front request's context; a packed
// partially-prefilled request with a deeper context can make the true batch
// costlier, and without this check a slack-stretched iteration could land
// decode tokens past their deadlines. A one-token floor on the first
// allocation guarantees forward progress.
//
//qoserve:hotpath
func (s *Scheduler) trimToBudget(b *sched.Batch, budget sim.Time) {
	for len(b.Prefill) > 0 {
		if s.planCost(b) <= budget {
			return
		}
		last := len(b.Prefill) - 1
		alloc := &b.Prefill[last]
		// Binary-search the largest size of the last allocation that fits.
		lo, hi := 0, alloc.Tokens // lo fits or is zero; hi doesn't
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			alloc.Tokens = mid
			if s.planCost(b) <= budget {
				lo = mid
			} else {
				hi = mid
			}
		}
		if lo > 0 {
			alloc.Tokens = lo
			return
		}
		if last == 0 {
			// Even a minimal chunk exceeds budget (e.g. the decode side
			// alone is already over); keep MinChunk for progress.
			alloc.Tokens = min(s.opts.MinChunk, alloc.Req.RemainingPrefill())
			return
		}
		b.Prefill = b.Prefill[:last]
	}
}
