// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine drives every experiment in this repository: replicas, arrival
// processes, and load balancers are all expressed as events on a single
// virtual clock. Determinism is guaranteed by a total order on events
// (time, then priority, then insertion sequence), so a simulation with a
// fixed workload seed always produces byte-identical results.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point on the virtual clock, measured as a duration since the
// start of the simulation. It is a distinct type so that virtual timestamps
// cannot be confused with wall-clock values.
type Time time.Duration

// Common simulated-time constants, mirroring package time.
const (
	Nanosecond  Time = Time(time.Nanosecond)
	Microsecond Time = Time(time.Microsecond)
	Millisecond Time = Time(time.Millisecond)
	Second      Time = Time(time.Second)
	Minute      Time = Time(time.Minute)
	Hour        Time = Time(time.Hour)
)

// Forever is a sentinel timestamp later than any event a simulation will
// schedule. It is used as the horizon for unbounded runs.
const Forever Time = Time(math.MaxInt64)

// Seconds reports t as a floating-point number of simulated seconds.
//
//qoserve:hotpath
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Duration converts t to a time.Duration for formatting and arithmetic
// against SLO targets, which are expressed as durations.
//
//qoserve:hotpath
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the virtual timestamp using duration notation.
func (t Time) String() string {
	if t == Forever {
		return "forever"
	}
	return time.Duration(t).String()
}

// FromSeconds converts a floating-point second count to a virtual timestamp.
//
//qoserve:hotpath
func FromSeconds(s float64) Time { return Time(s * float64(time.Second)) }

// FromDuration converts a time.Duration to a virtual timestamp.
func FromDuration(d time.Duration) Time { return Time(d) }

// Event is a unit of scheduled work. Fire is invoked exactly once when the
// virtual clock reaches the event's scheduled time.
type Event interface {
	Fire(engine *Engine, now Time)
}

// EventFunc adapts an ordinary function to the Event interface.
type EventFunc func(engine *Engine, now Time)

// Fire calls f.
func (f EventFunc) Fire(engine *Engine, now Time) { f(engine, now) }

// scheduled is an entry in the event heap. Entries are recycled through the
// engine's freelist after they fire; gen distinguishes the current
// occupancy from stale Handles pointing at an earlier use of the same slot.
type scheduled struct {
	at    Time
	prio  int    // ties broken by ascending priority
	seq   uint64 // then by insertion order, guaranteeing determinism
	ev    Event
	index int
	dead  bool
	gen   uint64
}

// eventHeap implements container/heap ordered by (at, prio, seq).
type eventHeap []*scheduled

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	s := x.(*scheduled)
	s.index = len(*h)
	*h = append(*h, s)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	s.index = -1
	*h = old[:n-1]
	return s
}

// Handle identifies a scheduled event so that it can be cancelled before it
// fires. The zero Handle is invalid. A Handle captures the generation of
// the heap entry it refers to, so a handle kept past its event's firing can
// never cancel an unrelated event that later reuses the same entry.
type Handle struct {
	s   *scheduled
	gen uint64
}

// Valid reports whether the handle refers to a scheduled (possibly already
// fired) event.
func (h Handle) Valid() bool { return h.s != nil }

// Engine is the discrete-event simulation driver. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now     Time
	heap    eventHeap
	seq     uint64
	fired   uint64
	horizon Time
	stopped bool
	// free recycles fired heap entries: steady-state simulation schedules
	// one completion event per iteration, and without recycling every one
	// of them is a fresh allocation.
	free []*scheduled
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{horizon: Forever}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have been dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled but not yet fired.
func (e *Engine) Pending() int {
	n := 0
	for _, s := range e.heap {
		if !s.dead {
			n++
		}
	}
	return n
}

// At schedules ev to fire at the absolute virtual time at. Scheduling in the
// past (before Now) panics: it indicates a logic error in the caller, and a
// silent clamp would mask causality bugs.
func (e *Engine) At(at Time, ev Event) Handle {
	return e.AtPriority(at, 0, ev)
}

// AtPriority schedules ev at time at with an explicit tie-break priority.
// Lower priorities fire first among events at the same timestamp; this lets
// arrival events be delivered before the replica iteration that could batch
// them, for example.
func (e *Engine) AtPriority(at Time, prio int, ev Event) Handle {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	var s *scheduled
	if n := len(e.free); n > 0 {
		s = e.free[n-1]
		e.free = e.free[:n-1]
		*s = scheduled{at: at, prio: prio, seq: e.seq, ev: ev, gen: s.gen}
	} else {
		s = &scheduled{at: at, prio: prio, seq: e.seq, ev: ev}
	}
	e.seq++
	heap.Push(&e.heap, s)
	return Handle{s: s, gen: s.gen}
}

// After schedules ev to fire d after the current time.
func (e *Engine) After(d Time, ev Event) Handle {
	return e.At(e.now+d, ev)
}

// Cancel removes a not-yet-fired event. It reports whether the event was
// still pending. Cancelling an already-fired or already-cancelled event is a
// harmless no-op returning false.
func (e *Engine) Cancel(h Handle) bool {
	if h.s == nil || h.gen != h.s.gen || h.s.dead || h.s.index < 0 {
		return false
	}
	h.s.dead = true
	return true
}

// recycle returns a popped, no-longer-referenced heap entry to the
// freelist, bumping its generation so stale Handles cannot touch its next
// occupancy.
func (e *Engine) recycle(s *scheduled) {
	s.ev = nil
	s.gen++
	e.free = append(e.free, s)
}

// Stop halts the run loop after the currently firing event returns.
func (e *Engine) Stop() { e.stopped = true }

// Run dispatches events in order until the queue is empty, the horizon is
// reached, or Stop is called. It returns the final virtual time.
func (e *Engine) Run() Time {
	return e.RunUntil(e.horizon)
}

// RunUntil dispatches events with timestamps <= horizon. Events scheduled
// beyond the horizon remain pending. The clock is left at the horizon if it
// was reached, otherwise at the last fired event.
func (e *Engine) RunUntil(horizon Time) Time {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		s := e.heap[0]
		if s.dead {
			heap.Pop(&e.heap)
			e.recycle(s)
			continue
		}
		if s.at > horizon {
			e.now = horizon
			return e.now
		}
		heap.Pop(&e.heap)
		e.now = s.at
		e.fired++
		ev := s.ev
		e.recycle(s)
		ev.Fire(e, e.now)
	}
	if !e.stopped && horizon != Forever {
		e.now = horizon
	}
	return e.now
}

// Step fires exactly one pending event, returning false when none remain.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		s := heap.Pop(&e.heap).(*scheduled)
		if s.dead {
			e.recycle(s)
			continue
		}
		e.now = s.at
		e.fired++
		ev := s.ev
		e.recycle(s)
		ev.Fire(e, e.now)
		return true
	}
	return false
}
