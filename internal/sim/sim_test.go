package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	times := []Time{5 * Second, 1 * Second, 3 * Second, 2 * Second, 4 * Second}
	for _, at := range times {
		at := at
		e.At(at, EventFunc(func(_ *Engine, now Time) {
			got = append(got, now)
		}))
	}
	e.Run()
	want := append([]Time(nil), times...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEngineTieBreakByPriorityThenSeq(t *testing.T) {
	e := NewEngine()
	var order []string
	e.AtPriority(Second, 1, EventFunc(func(_ *Engine, _ Time) { order = append(order, "low") }))
	e.AtPriority(Second, 0, EventFunc(func(_ *Engine, _ Time) { order = append(order, "hi-1") }))
	e.AtPriority(Second, 0, EventFunc(func(_ *Engine, _ Time) { order = append(order, "hi-2") }))
	e.Run()
	want := []string{"hi-1", "hi-2", "low"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineSchedulingDuringRun(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.At(Second, EventFunc(func(eng *Engine, now Time) {
		fired = append(fired, now)
		eng.After(Second, EventFunc(func(_ *Engine, now2 Time) {
			fired = append(fired, now2)
		}))
	}))
	end := e.Run()
	if len(fired) != 2 || fired[0] != Second || fired[1] != 2*Second {
		t.Fatalf("fired = %v, want [1s 2s]", fired)
	}
	if end != 2*Second {
		t.Fatalf("end = %v, want 2s", end)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	h := e.At(Second, EventFunc(func(_ *Engine, _ Time) { fired = true }))
	if !e.Cancel(h) {
		t.Fatal("Cancel returned false for pending event")
	}
	if e.Cancel(h) {
		t.Fatal("second Cancel returned true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEngineCancelZeroHandle(t *testing.T) {
	e := NewEngine()
	if e.Cancel(Handle{}) {
		t.Fatal("Cancel of zero handle returned true")
	}
}

func TestEngineRunUntilHorizon(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{Second, 2 * Second, 3 * Second} {
		e.At(at, EventFunc(func(_ *Engine, now Time) { fired = append(fired, now) }))
	}
	end := e.RunUntil(2 * Second)
	if len(fired) != 2 {
		t.Fatalf("fired %d events before horizon, want 2", len(fired))
	}
	if end != 2*Second {
		t.Fatalf("end = %v, want 2s", end)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	// Resume past the horizon.
	e.RunUntil(Forever)
	if len(fired) != 3 {
		t.Fatalf("fired %d total, want 3", len(fired))
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 5; i++ {
		e.At(Time(i)*Second, EventFunc(func(eng *Engine, _ Time) {
			count++
			if count == 2 {
				eng.Stop()
			}
		}))
	}
	e.Run()
	if count != 2 {
		t.Fatalf("fired %d events, want 2 (stop after second)", count)
	}
	if e.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", e.Pending())
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(2*Second, EventFunc(func(eng *Engine, _ Time) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		eng.At(Second, EventFunc(func(_ *Engine, _ Time) {}))
	}))
	e.Run()
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	n := 0
	e.At(Second, EventFunc(func(_ *Engine, _ Time) { n++ }))
	e.At(2*Second, EventFunc(func(_ *Engine, _ Time) { n++ }))
	if !e.Step() || n != 1 {
		t.Fatalf("after first Step n=%d", n)
	}
	if !e.Step() || n != 2 {
		t.Fatalf("after second Step n=%d", n)
	}
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestTimeConversions(t *testing.T) {
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if got := (2500 * Millisecond).Seconds(); got != 2.5 {
		t.Errorf("Seconds() = %v, want 2.5", got)
	}
	if Forever.String() != "forever" {
		t.Errorf("Forever.String() = %q", Forever.String())
	}
	if (3 * Second).String() != "3s" {
		t.Errorf("(3s).String() = %q", (3 * Second).String())
	}
}

// Property: for any multiset of scheduled times, the fire order is the
// sorted order of those times.
func TestEngineOrderProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		e := NewEngine()
		var fired []Time
		for _, r := range raw {
			at := Time(r) * Microsecond
			e.At(at, EventFunc(func(_ *Engine, now Time) { fired = append(fired, now) }))
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: cancelling a random subset of events fires exactly the
// complement.
func TestEngineCancelProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		n := 1 + rng.Intn(40)
		firedCount := 0
		handles := make([]Handle, n)
		for i := 0; i < n; i++ {
			handles[i] = e.At(Time(rng.Intn(1000))*Millisecond,
				EventFunc(func(_ *Engine, _ Time) { firedCount++ }))
		}
		cancelled := 0
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				if e.Cancel(handles[i]) {
					cancelled++
				}
			}
		}
		e.Run()
		if firedCount != n-cancelled {
			t.Fatalf("trial %d: fired %d, want %d", trial, firedCount, n-cancelled)
		}
	}
}

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.At(Time(j%97)*Millisecond, EventFunc(func(_ *Engine, _ Time) {}))
		}
		e.Run()
	}
}
