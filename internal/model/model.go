// Package model provides the analytic execution-cost model that stands in
// for real GPU hardware in this reproduction.
//
// The paper evaluates QoServe on A100/H100 clusters running vLLM. Scheduling
// results depend on hardware only through one function: the time a replica
// takes to execute a mixed prefill/decode batch of a given shape. This
// package supplies that function from first principles (a roofline model:
// MLP FLOPs, attention FLOPs, KV-cache memory traffic, tensor-parallel
// communication, and a fixed per-iteration overhead), calibrated so that the
// chunk-size -> (throughput, latency) curve reproduces the shape of the
// paper's Figure 4: latency grows linearly with chunk size, crossing ~50 ms
// near chunk 330 for Llama3-8B on A100, with throughput saturating around
// chunk 2500 at roughly 2x the throughput of the default 256 chunk.
package model

import (
	"fmt"

	"qoserve/internal/sim"
)

// Attention identifies the attention variant, which determines KV-cache
// size and decode memory traffic.
type Attention string

// Attention mechanisms used by the paper's evaluation models (Table 1).
const (
	GQA Attention = "GQA" // grouped-query attention (fewer KV heads)
	MHA Attention = "MHA" // multi-head attention (KV heads == query heads)
)

// ModelSpec describes a transformer's size-relevant hyperparameters.
type ModelSpec struct {
	Name      string
	Params    float64 // total parameter count
	Layers    int
	Hidden    int // model (embedding) dimension
	QHeads    int
	KVHeads   int
	HeadDim   int
	Attention Attention
}

// Validate reports a configuration error, if any.
func (m ModelSpec) Validate() error {
	switch {
	case m.Params <= 0:
		return fmt.Errorf("model %s: non-positive param count", m.Name)
	case m.Layers <= 0 || m.Hidden <= 0 || m.QHeads <= 0 || m.KVHeads <= 0 || m.HeadDim <= 0:
		return fmt.Errorf("model %s: non-positive dimension", m.Name)
	case m.QHeads%m.KVHeads != 0:
		return fmt.Errorf("model %s: QHeads %d not divisible by KVHeads %d", m.Name, m.QHeads, m.KVHeads)
	}
	return nil
}

// KVBytesPerToken returns the KV-cache footprint of one token across all
// layers, assuming 2-byte (fp16/bf16) elements.
func (m ModelSpec) KVBytesPerToken() float64 {
	// K and V, per layer, per KV head, per head dim, 2 bytes each.
	return 2 * float64(m.Layers) * float64(m.KVHeads) * float64(m.HeadDim) * 2
}

// GPUSpec describes one accelerator.
type GPUSpec struct {
	Name         string
	FLOPS        float64 // peak dense bf16 FLOP/s
	MemBandwidth float64 // HBM bandwidth, bytes/s
	MemBytes     float64 // HBM capacity, bytes
	InterconnBW  float64 // per-direction NVLink bandwidth, bytes/s
}

// Validate reports a configuration error, if any.
func (g GPUSpec) Validate() error {
	if g.FLOPS <= 0 || g.MemBandwidth <= 0 || g.MemBytes <= 0 || g.InterconnBW <= 0 {
		return fmt.Errorf("gpu %s: non-positive capability", g.Name)
	}
	return nil
}

// Config binds a model to hardware with a tensor-parallel degree and the
// calibration constants of the cost model. Construct with NewConfig or one
// of the presets; the zero value is not usable.
type Config struct {
	Model ModelSpec
	GPU   GPUSpec
	TP    int // tensor-parallel degree (number of GPUs per replica)

	// Efficiency is the fraction of peak FLOPs achieved on large GEMMs
	// (model FLOPs utilization at saturation).
	Efficiency float64

	// IterOverhead is the fixed per-iteration cost: kernel launches,
	// scheduler bookkeeping, sampling, and the memory-bound floor of
	// reading model weights once per iteration. It is the dominant reason
	// small chunks waste throughput (Fig. 4).
	IterOverhead sim.Time

	// ActivationReserve is HBM held back for activations and fragmentation
	// when computing KV-cache capacity, bytes per replica.
	ActivationReserve float64
}

// NewConfig validates and returns a config.
func NewConfig(m ModelSpec, g GPUSpec, tp int, efficiency float64, overhead sim.Time) (Config, error) {
	c := Config{
		Model: m, GPU: g, TP: tp,
		Efficiency:        efficiency,
		IterOverhead:      overhead,
		ActivationReserve: 6e9,
	}
	return c, c.Validate()
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if err := c.GPU.Validate(); err != nil {
		return err
	}
	switch {
	case c.TP <= 0:
		return fmt.Errorf("config %s: TP must be positive, got %d", c.Name(), c.TP)
	case c.Efficiency <= 0 || c.Efficiency > 1:
		return fmt.Errorf("config %s: efficiency %v outside (0,1]", c.Name(), c.Efficiency)
	case c.IterOverhead < 0:
		return fmt.Errorf("config %s: negative iteration overhead", c.Name())
	}
	return nil
}

// Name returns a human-readable identifier like "Llama3-8B/A100-TP1".
func (c Config) Name() string {
	return fmt.Sprintf("%s/%s-TP%d", c.Model.Name, c.GPU.Name, c.TP)
}

// GPUs returns the number of GPUs one replica occupies.
func (c Config) GPUs() int { return c.TP }

// effectiveFLOPS is the usable aggregate FLOP rate across the TP group.
func (c Config) effectiveFLOPS() float64 {
	return c.GPU.FLOPS * c.Efficiency * float64(c.TP)
}

// LinearTimePerToken is the time to push one token through the model's
// linear (MLP + projection) layers, including tensor-parallel all-reduce
// traffic. Attention-over-context costs are separate.
func (c Config) LinearTimePerToken() sim.Time {
	compute := 2 * c.Model.Params / c.effectiveFLOPS() // 2 FLOPs per param per token
	comm := 0.0
	if c.TP > 1 {
		// Two all-reduces per layer, each moving ~hidden activations of
		// 2 bytes, ring cost scaled by (tp-1)/tp.
		bytes := 2 * float64(c.Model.Layers) * float64(c.Model.Hidden) * 2
		comm = bytes * float64(c.TP-1) / float64(c.TP) / c.GPU.InterconnBW
	}
	return sim.FromSeconds(compute + comm)
}

// PrefillAttnTime is the compute time for attention of a prefill chunk of
// chunkTokens tokens whose first token already has ctxStart tokens of
// context (earlier chunks of the same prompt).
func (c Config) PrefillAttnTime(chunkTokens, ctxStart int) sim.Time {
	if chunkTokens <= 0 {
		return 0
	}
	avgCtx := float64(ctxStart) + float64(chunkTokens)/2
	// QK^T and AV each cost 2*hidden FLOPs per (token, context) pair.
	flops := 4 * float64(c.Model.Layers) * float64(c.Model.Hidden) * float64(chunkTokens) * avgCtx
	return sim.FromSeconds(flops / c.effectiveFLOPS())
}

// DecodeAttnTime is the memory-bound time for one decode token attending
// over ctx tokens of KV cache.
func (c Config) DecodeAttnTime(ctx int) sim.Time {
	bytes := c.Model.KVBytesPerToken() * float64(ctx)
	bw := c.GPU.MemBandwidth * float64(c.TP)
	return sim.FromSeconds(bytes / bw)
}

// KVCapacityTokens is the number of KV-cache tokens a replica can hold:
// HBM across the TP group, minus weights and the activation reserve.
func (c Config) KVCapacityTokens() int {
	total := c.GPU.MemBytes * float64(c.TP)
	weights := 2 * c.Model.Params // bf16
	free := total - weights - c.ActivationReserve
	if free <= 0 {
		return 0
	}
	return int(free / c.Model.KVBytesPerToken())
}

// ChunkShape describes the prefill chunk of one request inside a batch.
type ChunkShape struct {
	Tokens   int // new prompt tokens processed this iteration
	CtxStart int // prompt tokens already processed in earlier chunks
}

// BatchShape is everything the cost model needs to price one iteration.
type BatchShape struct {
	Prefill []ChunkShape
	// DecodeCtx holds, for each request in decode phase, its current
	// context length (prompt + generated so far).
	DecodeCtx []int
}

// TotalNewTokens is the number of tokens produced/processed this iteration.
func (b BatchShape) TotalNewTokens() int {
	n := len(b.DecodeCtx)
	for _, p := range b.Prefill {
		n += p.Tokens
	}
	return n
}

// PrefillTokens is the number of prompt tokens in the batch.
func (b BatchShape) PrefillTokens() int {
	n := 0
	for _, p := range b.Prefill {
		n += p.Tokens
	}
	return n
}

// BatchTime predicts the execution latency of one iteration over the given
// batch. An empty batch costs nothing.
func (c Config) BatchTime(b BatchShape) sim.Time {
	newTokens := b.TotalNewTokens()
	if newTokens == 0 {
		return 0
	}
	t := c.IterOverhead
	t += sim.Time(int64(c.LinearTimePerToken()) * int64(newTokens))
	for _, p := range b.Prefill {
		t += c.PrefillAttnTime(p.Tokens, p.CtxStart)
	}
	for _, ctx := range b.DecodeCtx {
		t += c.DecodeAttnTime(ctx)
	}
	return t
}

// PrefillThroughput reports steady-state prefill tokens/s when running
// back-to-back iterations of the given chunk size at the given average
// context offset, with no decodes in the batch. This is the quantity
// plotted in the paper's Figure 4.
func (c Config) PrefillThroughput(chunk, ctxStart int) float64 {
	t := c.BatchTime(BatchShape{Prefill: []ChunkShape{{Tokens: chunk, CtxStart: ctxStart}}})
	if t <= 0 {
		return 0
	}
	return float64(chunk) / t.Seconds()
}
