package model

import "qoserve/internal/sim"

// GPU presets matching the paper's hardware (Table 1).
var (
	// A100 is the NVIDIA A100-80GB SXM: 312 TFLOP/s bf16, ~2 TB/s HBM2e.
	A100 = GPUSpec{
		Name:         "A100",
		FLOPS:        312e12,
		MemBandwidth: 2.039e12,
		MemBytes:     80e9,
		InterconnBW:  300e9,
	}
	// H100 is the NVIDIA H100-80GB SXM: 989 TFLOP/s bf16, 3.35 TB/s HBM3.
	H100 = GPUSpec{
		Name:         "H100",
		FLOPS:        989e12,
		MemBandwidth: 3.35e12,
		MemBytes:     80e9,
		InterconnBW:  450e9,
	}
)

// Model presets matching the paper's Table 1.
var (
	// Llama3_8B uses grouped-query attention (8 KV heads).
	Llama3_8B = ModelSpec{
		Name: "Llama3-8B", Params: 8.0e9,
		Layers: 32, Hidden: 4096, QHeads: 32, KVHeads: 8, HeadDim: 128,
		Attention: GQA,
	}
	// Qwen_7B uses full multi-head attention, so its KV cache is 4x the
	// size of Llama3-8B's and decode attention is proportionally more
	// expensive.
	Qwen_7B = ModelSpec{
		Name: "Qwen-7B", Params: 7.0e9,
		Layers: 32, Hidden: 4096, QHeads: 32, KVHeads: 32, HeadDim: 128,
		Attention: MHA,
	}
	// Llama3_70B uses grouped-query attention (8 KV heads).
	Llama3_70B = ModelSpec{
		Name: "Llama3-70B", Params: 70.0e9,
		Layers: 80, Hidden: 8192, QHeads: 64, KVHeads: 8, HeadDim: 128,
		Attention: GQA,
	}
)

// The calibration constants below were chosen so the Llama3-8B/A100-TP1
// chunk-size curve matches the paper's Figure 4 anchors: ~50 ms iteration
// latency at chunk 330, throughput at chunk 2500 roughly double that at
// chunk 256, and saturation near 2500. See model_test.go for the asserted
// invariants.
const (
	defaultEfficiency = 0.65
	a100TP1Overhead   = 24 * sim.Millisecond
	a100TP2Overhead   = 26 * sim.Millisecond
	h100TP4Overhead   = 30 * sim.Millisecond
)

// Llama3_8B_A100_TP1 is the paper's primary configuration.
func Llama3_8B_A100_TP1() Config {
	return mustConfig(Llama3_8B, A100, 1, defaultEfficiency, a100TP1Overhead)
}

// Qwen_7B_A100_TP2 is the MHA configuration from Table 1.
func Qwen_7B_A100_TP2() Config {
	return mustConfig(Qwen_7B, A100, 2, defaultEfficiency, a100TP2Overhead)
}

// Llama3_70B_H100_TP4 is the large-model configuration from Table 1.
func Llama3_70B_H100_TP4() Config {
	return mustConfig(Llama3_70B, H100, 4, defaultEfficiency, h100TP4Overhead)
}

// Presets returns the three evaluation configurations in Table 1 order.
func Presets() []Config {
	return []Config{Llama3_8B_A100_TP1(), Qwen_7B_A100_TP2(), Llama3_70B_H100_TP4()}
}

func mustConfig(m ModelSpec, g GPUSpec, tp int, eff float64, ovh sim.Time) Config {
	c, err := NewConfig(m, g, tp, eff, ovh)
	if err != nil {
		panic(err)
	}
	return c
}
