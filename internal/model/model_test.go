package model

import (
	"math"
	"testing"
	"testing/quick"

	"qoserve/internal/sim"
)

func TestPresetsValidate(t *testing.T) {
	for _, c := range Presets() {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	base := Llama3_8B_A100_TP1()

	bad := base
	bad.TP = 0
	if bad.Validate() == nil {
		t.Error("TP=0 accepted")
	}

	bad = base
	bad.Efficiency = 0
	if bad.Validate() == nil {
		t.Error("efficiency 0 accepted")
	}

	bad = base
	bad.Efficiency = 1.5
	if bad.Validate() == nil {
		t.Error("efficiency > 1 accepted")
	}

	bad = base
	bad.Model.Params = -1
	if bad.Validate() == nil {
		t.Error("negative params accepted")
	}

	bad = base
	bad.Model.KVHeads = 3 // 32 % 3 != 0
	if bad.Validate() == nil {
		t.Error("non-divisible KV heads accepted")
	}

	bad = base
	bad.GPU.FLOPS = 0
	if bad.Validate() == nil {
		t.Error("zero FLOPS accepted")
	}
}

func TestKVBytesPerToken(t *testing.T) {
	// Llama3-8B: 2 (K,V) * 32 layers * 8 KV heads * 128 dim * 2 bytes = 128 KiB.
	got := Llama3_8B.KVBytesPerToken()
	if got != 131072 {
		t.Errorf("Llama3-8B KV bytes/token = %v, want 131072", got)
	}
	// Qwen-7B is MHA: 4x more KV heads than Llama3-8B.
	if r := Qwen_7B.KVBytesPerToken() / got; r != 4 {
		t.Errorf("Qwen/Llama KV ratio = %v, want 4", r)
	}
}

// TestFigure4Anchors pins the calibration of the cost model to the paper's
// Figure 4: ~50ms latency at chunk size 330, and chunk 2500 delivering about
// 2x the throughput of chunk 256.
func TestFigure4Anchors(t *testing.T) {
	c := Llama3_8B_A100_TP1()

	lat330 := c.BatchTime(BatchShape{Prefill: []ChunkShape{{Tokens: 330}}})
	if lat330 < 40*sim.Millisecond || lat330 > 60*sim.Millisecond {
		t.Errorf("latency at chunk 330 = %v, want ~50ms", lat330)
	}

	ratio := c.PrefillThroughput(2500, 0) / c.PrefillThroughput(256, 0)
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("throughput(2500)/throughput(256) = %.2f, want ~2", ratio)
	}

	// Saturation: going from 2500 to 4000 should gain little (<12%).
	gain := c.PrefillThroughput(4000, 0) / c.PrefillThroughput(2500, 0)
	if gain > 1.12 {
		t.Errorf("throughput still rising steeply past 2500: gain %.3f", gain)
	}
}

func TestBatchTimeMonotonicInChunk(t *testing.T) {
	c := Llama3_8B_A100_TP1()
	prev := sim.Time(0)
	for chunk := 64; chunk <= 4096; chunk *= 2 {
		cur := c.BatchTime(BatchShape{Prefill: []ChunkShape{{Tokens: chunk}}})
		if cur <= prev {
			t.Errorf("latency not increasing at chunk %d: %v <= %v", chunk, cur, prev)
		}
		prev = cur
	}
}

func TestBatchTimeEmptyIsZero(t *testing.T) {
	c := Llama3_8B_A100_TP1()
	if got := c.BatchTime(BatchShape{}); got != 0 {
		t.Errorf("empty batch time = %v, want 0", got)
	}
}

func TestDecodeAttnGrowsWithContext(t *testing.T) {
	c := Llama3_8B_A100_TP1()
	small := c.DecodeAttnTime(512)
	big := c.DecodeAttnTime(4096)
	if big <= small {
		t.Errorf("decode attention not increasing with context: %v <= %v", big, small)
	}
	// Linear scaling: 8x context ~ 8x time.
	r := float64(big) / float64(small)
	if math.Abs(r-8) > 0.01 {
		t.Errorf("decode attention scaling = %.3f, want 8", r)
	}
}

func TestMHADecodeCostlierThanGQA(t *testing.T) {
	llama := Llama3_8B_A100_TP1()
	qwen := Qwen_7B_A100_TP2()
	// Per-GPU-normalized decode attention: Qwen (MHA, TP2) reads 4x the KV
	// bytes over 2x the bandwidth, so per-replica time should be ~2x.
	r := float64(qwen.DecodeAttnTime(2048)) / float64(llama.DecodeAttnTime(2048))
	if r < 1.8 || r > 2.2 {
		t.Errorf("Qwen/Llama decode attention ratio = %.2f, want ~2", r)
	}
}

func TestKVCapacity(t *testing.T) {
	c := Llama3_8B_A100_TP1()
	got := c.KVCapacityTokens()
	// 80GB - 16GB weights - 6GB reserve = 58GB / 128KiB/token ~ 442k tokens.
	if got < 400_000 || got > 500_000 {
		t.Errorf("KV capacity = %d tokens, want ~442k", got)
	}
	// A model too big for its hardware has zero capacity.
	big := c
	big.Model.Params = 80e9 // 160 GB of weights > 80 GB HBM
	if big.KVCapacityTokens() != 0 {
		t.Errorf("oversized model KV capacity = %d, want 0", big.KVCapacityTokens())
	}
}

func TestTPReducesPerTokenTime(t *testing.T) {
	tp1 := mustConfig(Llama3_8B, A100, 1, defaultEfficiency, a100TP1Overhead)
	tp4 := mustConfig(Llama3_8B, A100, 4, defaultEfficiency, a100TP1Overhead)
	if tp4.LinearTimePerToken() >= tp1.LinearTimePerToken() {
		t.Errorf("TP4 per-token time %v >= TP1 %v", tp4.LinearTimePerToken(), tp1.LinearTimePerToken())
	}
	// But not a full 4x: communication takes its cut.
	speedup := float64(tp1.LinearTimePerToken()) / float64(tp4.LinearTimePerToken())
	if speedup >= 4 {
		t.Errorf("TP4 speedup %.2f >= 4; communication cost missing", speedup)
	}
}

// Property: batch time is superadditive-ish — adding any request to a batch
// never reduces its execution time.
func TestBatchTimeMonotoneProperty(t *testing.T) {
	c := Llama3_8B_A100_TP1()
	f := func(chunks []uint16, decodes []uint16, extra uint16) bool {
		b := BatchShape{}
		for _, ch := range chunks {
			if ch == 0 {
				continue
			}
			b.Prefill = append(b.Prefill, ChunkShape{Tokens: int(ch % 4096), CtxStart: int(ch)})
		}
		for _, d := range decodes {
			b.DecodeCtx = append(b.DecodeCtx, int(d))
		}
		before := c.BatchTime(b)
		b.DecodeCtx = append(b.DecodeCtx, int(extra))
		after := c.BatchTime(b)
		return after >= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPrefillAttnZeroChunk(t *testing.T) {
	c := Llama3_8B_A100_TP1()
	if got := c.PrefillAttnTime(0, 1000); got != 0 {
		t.Errorf("zero-chunk attention time = %v, want 0", got)
	}
}

func TestConfigName(t *testing.T) {
	if got := Llama3_8B_A100_TP1().Name(); got != "Llama3-8B/A100-TP1" {
		t.Errorf("Name() = %q", got)
	}
}

func BenchmarkBatchTime(b *testing.B) {
	c := Llama3_8B_A100_TP1()
	shape := BatchShape{
		Prefill:   []ChunkShape{{Tokens: 512, CtxStart: 1024}},
		DecodeCtx: []int{100, 2000, 512, 4096, 900, 1500, 777, 3000},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.BatchTime(shape)
	}
}

// TestAllPresetsCurveSanity extends the Fig. 4 anchors to every Table 1
// configuration: latency must grow monotonically with chunk size and
// throughput must flatten (saturate) at large chunks.
func TestAllPresetsCurveSanity(t *testing.T) {
	for _, c := range Presets() {
		prev := sim.Time(0)
		for chunk := 128; chunk <= 4096; chunk *= 2 {
			cur := c.BatchTime(BatchShape{Prefill: []ChunkShape{{Tokens: chunk}}})
			if cur <= prev {
				t.Errorf("%s: latency not increasing at chunk %d", c.Name(), chunk)
			}
			prev = cur
		}
		gain := c.PrefillThroughput(4096, 0) / c.PrefillThroughput(2048, 0)
		if gain > 1.25 {
			t.Errorf("%s: no saturation (2048->4096 gain %.2f)", c.Name(), gain)
		}
		if c.KVCapacityTokens() < 50_000 {
			t.Errorf("%s: implausible KV capacity %d", c.Name(), c.KVCapacityTokens())
		}
	}
}

// TestLargerModelSlowerPerToken: at equal parallelism-normalized compute,
// a 70B model's per-token linear time must exceed an 8B's on the same GPU
// generation scaled by TP.
func TestLargerModelSlowerPerToken(t *testing.T) {
	small := Llama3_8B_A100_TP1()
	big := Llama3_70B_H100_TP4()
	// Per effective FLOP: 70B/TP4-H100 still costs more per token than
	// 8B/TP1-A100 because params grow faster than the FLOP budget here.
	if big.LinearTimePerToken() <= small.LinearTimePerToken()/2 {
		t.Errorf("70B per-token %v implausibly cheap vs 8B %v",
			big.LinearTimePerToken(), small.LinearTimePerToken())
	}
}
