// Package trace records what a scheduler decided, iteration by iteration,
// while a server or simulation is running.
//
// The evaluation pipeline in this repository is post-hoc: internal/metrics
// freezes request outcomes after a run ends. That is the right shape for
// reproducing the paper's tables, but it cannot answer the operational
// question "what is the scheduler doing right now?" — which chunk size
// dynamic chunking picked, what the batch looked like, how deep the main
// and relegated queues are, and which requests were just relegated and why.
// This package provides that live surface.
//
// # Model
//
// A scheduler emits two record types through the Tracer interface:
//
//   - Iteration: one record per planned batch, carrying the chosen prefill
//     chunk size, the batch composition (per-request prefill allocations
//     and the decode count), the predicted iteration latency (when the
//     policy has a latency predictor), the measured latency, and the queue
//     depths at planning time.
//   - Event: a point occurrence between or during iterations — a request
//     admission, an eager relegation (with the reason), or a selective-
//     preemption boost. Events are folded into the next Iteration record,
//     so a trace reads as a time-ordered log of decisions with their
//     triggers attached.
//
// # Implementations
//
// Two Tracer implementations exist. Nop discards everything and reports
// Enabled() == false; it is the default wired into every scheduler, and the
// contract is that a disabled tracer costs nothing: schedulers guard record
// construction behind Enabled(), so the no-op path performs zero
// allocations (enforced by TestTraceDisabledZeroAlloc in package sched).
// Ring retains the last N iterations in a fixed-size ring buffer under a
// mutex; internal/server attaches one to serve GET /debug/trace.
//
// Overhead budget: with tracing enabled, recording one iteration costs one
// mutex acquisition plus O(batch size) copying into the ring slot —
// microseconds against iteration times of tens of milliseconds. Disabled
// tracing costs one predictable branch per iteration.
package trace

import (
	"fmt"

	"qoserve/internal/sim"
)

// EventKind classifies a point occurrence in a scheduler's decision log.
type EventKind uint8

// Event kinds.
const (
	// Admission marks a request entering the scheduler's queues.
	Admission EventKind = iota
	// Relegation marks a request moved to the relegated queue (Section
	// 3.4 eager relegation); the event's Reason says which projection
	// condemned it.
	Relegation
	// Boost marks a selective-preemption boost: a partially-prefilled
	// request served out of priority order because displacing it would
	// miss its deadline.
	Boost
	// Preemption marks a request whose prefill progress was discarded so
	// its KV memory could be reclaimed.
	Preemption
	// ReplicaDown marks a replica crash (fault injection or detected
	// failure); Req carries the replica index.
	ReplicaDown
	// ReplicaUp marks a replica (re)joining service; Req carries the
	// replica index.
	ReplicaUp
	// ReplicaSlow marks a replica entering or leaving degraded (slow)
	// mode; Req carries the replica index and Reason the factor.
	ReplicaSlow
	// RequestRetry marks a request re-enqueued after losing its replica:
	// KV progress is discarded but arrival time and deadline survive.
	RequestRetry
	// RequestFailed marks a request permanently failed (retry budget
	// exhausted or no healthy replica); Reason says why.
	RequestFailed
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case Admission:
		return "admission"
	case Relegation:
		return "relegation"
	case Boost:
		return "boost"
	case Preemption:
		return "preemption"
	case ReplicaDown:
		return "replica-down"
	case ReplicaUp:
		return "replica-up"
	case ReplicaSlow:
		return "replica-slow"
	case RequestRetry:
		return "retry"
	case RequestFailed:
		return "failed"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one point occurrence: an admission, relegation, boost, or
// preemption, stamped with virtual time and the request it concerns.
type Event struct {
	At    sim.Time
	Kind  EventKind
	Req   uint64
	Class string
	// Reason is a short policy-provided explanation, e.g. "doomed even
	// alone" or "protects high-priority backlog".
	Reason string
}

// PrefillSlice is one prefill allocation inside a traced batch: Tokens
// prompt tokens of request Req, starting at prompt offset CtxStart.
type PrefillSlice struct {
	Req      uint64
	Tokens   int
	CtxStart int
}

// BatchTrace is the trace form of one iteration's batch composition.
type BatchTrace struct {
	// Prefill lists the per-request prefill allocations, in the order the
	// scheduler packed them.
	Prefill []PrefillSlice
	// PrefillTokens is the total prompt tokens in the batch — the chosen
	// chunk size for single-stream chunking policies.
	PrefillTokens int
	// Decodes is the number of decode-phase requests piggybacked on the
	// batch (each contributes one output token).
	Decodes int
}

// Iteration is one scheduler iteration's full decision record. The
// scheduler fills the planning-time fields in PlanBatch and the completion
// fields in OnBatchComplete; Seq is assigned by the tracer when the record
// is committed.
type Iteration struct {
	// Seq is the 1-based global iteration sequence number.
	Seq uint64
	// Policy is the scheduler's Name().
	Policy string
	// PlannedAt / CompletedAt are the virtual times the batch was planned
	// and observed complete.
	PlannedAt   sim.Time
	CompletedAt sim.Time

	// Batch is the planned batch composition.
	Batch BatchTrace

	// Predicted is the policy's own latency prediction for the batch
	// (zero for policies without a predictor); Actual is the measured
	// iteration latency (CompletedAt - PlannedAt).
	Predicted sim.Time
	Actual    sim.Time

	// QueueMain / QueueRelegated / QueueDecode are the queue depths at
	// planning time (relegated is zero for policies without relegation).
	QueueMain      int
	QueueRelegated int
	QueueDecode    int

	// Events are the occurrences folded into this iteration: admissions
	// since the previous iteration plus relegations/boosts decided while
	// planning this one.
	Events []Event
}

// String renders a compact one-line digest, the format the trace example
// prints.
func (it Iteration) String() string {
	return fmt.Sprintf("iter %d [%s]: chunk=%d prefill=%d decodes=%d queues=%d/%d/%d events=%d",
		it.Seq, it.Policy, it.Batch.PrefillTokens, len(it.Batch.Prefill), it.Batch.Decodes,
		it.QueueMain, it.QueueRelegated, it.QueueDecode, len(it.Events))
}

// Tracer receives a scheduler's decision log. Implementations must be safe
// for use from a single scheduler goroutine; Ring is additionally safe for
// concurrent readers.
//
// The performance contract: callers MUST guard any record construction
// behind Enabled(), so that a disabled tracer imposes no allocation and no
// more than a branch per decision.
type Tracer interface {
	// Enabled reports whether records are being retained. Callers skip
	// building records entirely when false.
	Enabled() bool
	// RecordEvent logs a point occurrence; it is folded into the next
	// committed iteration.
	RecordEvent(e Event)
	// RecordIteration commits one iteration record.
	RecordIteration(it Iteration)
}

// Nop returns the do-nothing Tracer: Enabled() is false and records are
// discarded. It is the default for every scheduler.
func Nop() Tracer { return nopTracer{} }

type nopTracer struct{}

func (nopTracer) Enabled() bool             { return false }
func (nopTracer) RecordEvent(Event)         {}
func (nopTracer) RecordIteration(Iteration) {}
