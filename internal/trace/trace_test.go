package trace

import (
	"testing"

	"qoserve/internal/sim"
)

func iter(chunk int) Iteration {
	return Iteration{Policy: "test", Batch: BatchTrace{PrefillTokens: chunk}}
}

func TestNopDisabledAndSilent(t *testing.T) {
	tr := Nop()
	if tr.Enabled() {
		t.Fatal("Nop tracer reports enabled")
	}
	// Must not panic or retain anything.
	tr.RecordEvent(Event{Kind: Admission, Req: 1})
	tr.RecordIteration(iter(1))
}

func TestRingAssignsSequencesInOrder(t *testing.T) {
	r := NewRing(8)
	if !r.Enabled() {
		t.Fatal("ring not enabled")
	}
	for i := 1; i <= 5; i++ {
		r.RecordIteration(iter(i * 100))
	}
	if r.Total() != 5 || r.Len() != 5 {
		t.Fatalf("total = %d, len = %d", r.Total(), r.Len())
	}
	got := r.Snapshot(0)
	if len(got) != 5 {
		t.Fatalf("snapshot len = %d", len(got))
	}
	for i, it := range got {
		if it.Seq != uint64(i+1) {
			t.Errorf("snapshot[%d].Seq = %d, want %d", i, it.Seq, i+1)
		}
		if it.Batch.PrefillTokens != (i+1)*100 {
			t.Errorf("snapshot[%d].PrefillTokens = %d", i, it.Batch.PrefillTokens)
		}
	}
}

func TestRingWrapsKeepingNewest(t *testing.T) {
	const capacity = 4
	r := NewRing(capacity)
	for i := 1; i <= 11; i++ {
		r.RecordIteration(iter(i))
	}
	if r.Total() != 11 {
		t.Fatalf("total = %d", r.Total())
	}
	if r.Len() != capacity {
		t.Fatalf("len = %d, want %d", r.Len(), capacity)
	}
	got := r.Snapshot(0)
	// Must be exactly iterations 8..11 in order.
	for i, it := range got {
		want := uint64(8 + i)
		if it.Seq != want {
			t.Errorf("snapshot[%d].Seq = %d, want %d", i, it.Seq, want)
		}
		if it.Batch.PrefillTokens != int(want) {
			t.Errorf("snapshot[%d].PrefillTokens = %d, want %d", i, it.Batch.PrefillTokens, want)
		}
	}
}

func TestRingSnapshotBoundsN(t *testing.T) {
	r := NewRing(4)
	for i := 1; i <= 6; i++ {
		r.RecordIteration(iter(i))
	}
	got := r.Snapshot(2)
	if len(got) != 2 || got[0].Seq != 5 || got[1].Seq != 6 {
		t.Fatalf("snapshot(2) = %+v", got)
	}
	if got := r.Snapshot(100); len(got) != 4 {
		t.Fatalf("snapshot(100) len = %d, want 4 (retained)", len(got))
	}
}

func TestRingAttachesPendingEventsToNextIteration(t *testing.T) {
	r := NewRing(4)
	r.RecordEvent(Event{At: sim.Second, Kind: Admission, Req: 7, Class: "Q1"})
	r.RecordEvent(Event{At: 2 * sim.Second, Kind: Relegation, Req: 7, Class: "Q1", Reason: "doomed"})
	r.RecordIteration(iter(1))
	r.RecordIteration(iter(2))

	got := r.Snapshot(0)
	if len(got[0].Events) != 2 {
		t.Fatalf("first iteration events = %d, want 2", len(got[0].Events))
	}
	if got[0].Events[0].Kind != Admission || got[0].Events[1].Kind != Relegation {
		t.Fatalf("event kinds = %v, %v", got[0].Events[0].Kind, got[0].Events[1].Kind)
	}
	if got[0].Events[1].Reason != "doomed" {
		t.Fatalf("reason = %q", got[0].Events[1].Reason)
	}
	if len(got[1].Events) != 0 {
		t.Fatalf("second iteration inherited %d events", len(got[1].Events))
	}
	if r.Events() != 2 {
		t.Fatalf("events counter = %d", r.Events())
	}
}

func TestEventKindStrings(t *testing.T) {
	cases := map[EventKind]string{
		Admission:    "admission",
		Relegation:   "relegation",
		Boost:        "boost",
		Preemption:   "preemption",
		EventKind(9): "EventKind(9)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestDefaultRingDepth(t *testing.T) {
	if r := NewRing(0); r.Cap() != DefaultRingDepth {
		t.Fatalf("cap = %d", r.Cap())
	}
}
