package trace_test

import (
	"fmt"

	"qoserve/internal/qos"
	"qoserve/internal/request"
	"qoserve/internal/sched"
	"qoserve/internal/sim"
	"qoserve/internal/trace"
)

// Example attaches a Ring tracer to a baseline scheduler, drives one small
// request through it by hand, and prints the per-iteration decision log.
// Iteration 1 prefills the whole 100-token prompt (emitting the first output
// token); iterations 2 and 3 piggyback the remaining decode tokens.
func Example() {
	ring := trace.NewRing(16)
	s := sched.NewSarathi(sched.FCFS, 256)
	s.SetTracer(ring)

	class := qos.Class{Name: "Q3", Kind: qos.NonInteractive,
		SLO: qos.SLO{TTLT: 1800 * sim.Second}}
	r := &request.Request{ID: 1, App: "demo", Class: class,
		PromptTokens: 100, DecodeTokens: 3}
	s.Add(r, 0)

	now := sim.Time(0)
	for s.Pending() > 0 {
		b := s.PlanBatch(now)
		now += 40 * sim.Millisecond
		for _, p := range b.Prefill {
			p.Req.RecordPrefill(p.Tokens, now)
		}
		for _, d := range b.Decodes {
			d.RecordDecodeToken(now)
		}
		s.OnBatchComplete(b, now)
	}

	for _, it := range ring.Snapshot(0) {
		fmt.Println(it)
	}
	// Output:
	// iter 1 [Sarathi-FCFS]: chunk=100 prefill=1 decodes=0 queues=1/0/0 events=1
	// iter 2 [Sarathi-FCFS]: chunk=0 prefill=0 decodes=1 queues=0/0/1 events=0
	// iter 3 [Sarathi-FCFS]: chunk=0 prefill=0 decodes=1 queues=0/0/1 events=0
}
