package trace

import "sync"

// Ring is a bounded, thread-safe iteration tracer: it retains the most
// recent capacity iterations and discards older ones, so memory stays fixed
// no matter how long the server runs. Events recorded between iterations
// accumulate in a pending list and are attached to the next committed
// iteration.
type Ring struct {
	mu      sync.Mutex
	buf     []Iteration // guarded by mu
	cap     int         // immutable after NewRing
	total   uint64      // guarded by mu; iterations ever committed; also the latest Seq
	events  uint64      // guarded by mu; events ever recorded
	pending []Event     // guarded by mu
}

// DefaultRingDepth is the ring capacity used when a caller asks for
// tracing without choosing a depth.
const DefaultRingDepth = 1024

// NewRing returns a ring retaining the last capacity iterations
// (DefaultRingDepth if capacity <= 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingDepth
	}
	return &Ring{buf: make([]Iteration, 0, capacity), cap: capacity}
}

// Enabled reports true: a Ring always retains records.
func (r *Ring) Enabled() bool { return true }

// Cap is the ring capacity.
func (r *Ring) Cap() int { return r.cap }

// RecordEvent queues e for attachment to the next committed iteration.
func (r *Ring) RecordEvent(e Event) {
	r.mu.Lock()
	r.pending = append(r.pending, e)
	r.events++
	r.mu.Unlock()
}

// RecordIteration commits it, assigning the next sequence number and
// attaching all pending events. The oldest record is evicted once the ring
// is full.
func (r *Ring) RecordIteration(it Iteration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	it.Seq = r.total
	if len(r.pending) > 0 {
		// Hand the accumulated events to the record and start a fresh
		// pending list; the record owns the slice from here.
		it.Events = append(it.Events, r.pending...)
		r.pending = r.pending[:0]
	}
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, it)
		return
	}
	r.buf[(r.total-1)%uint64(r.cap)] = it
}

// Total is the number of iterations ever committed (not just retained).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Events is the number of events ever recorded.
func (r *Ring) Events() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.events
}

// Len is the number of iterations currently retained.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Snapshot returns up to n of the most recent iterations in commit order
// (oldest first). n <= 0 or n > retained returns everything retained. The
// returned slice is a copy and safe to use while recording continues.
func (r *Ring) Snapshot(n int) []Iteration {
	r.mu.Lock()
	defer r.mu.Unlock()
	retained := len(r.buf)
	if n <= 0 || n > retained {
		n = retained
	}
	out := make([]Iteration, 0, n)
	// The ring slot of iteration with Seq s is (s-1) % cap. Walk the last
	// n sequence numbers in ascending order.
	for seq := r.total - uint64(n) + 1; seq <= r.total; seq++ {
		out = append(out, r.buf[(seq-1)%uint64(r.cap)])
	}
	return out
}
