// Package kvcache implements a paged KV-cache block manager in the style of
// vLLM's PagedAttention allocator. Each request's context occupies
// fixed-size token blocks; the manager tracks capacity so a replica can
// apply admission control (don't start a prefill whose KV won't fit) and
// model memory pressure during overload.
package kvcache

import "fmt"

// DefaultBlockTokens matches vLLM's default block size.
const DefaultBlockTokens = 16

// Manager allocates KV-cache blocks to requests. It is not safe for
// concurrent use; a replica owns exactly one manager.
type Manager struct {
	blockTokens int
	totalBlocks int
	freeBlocks  int
	held        map[uint64]int // request ID -> blocks held
	peakUsed    int
}

// NewManager returns a manager for a cache of capacityTokens tokens divided
// into blocks of blockTokens (DefaultBlockTokens if zero).
func NewManager(capacityTokens, blockTokens int) (*Manager, error) {
	if blockTokens == 0 {
		blockTokens = DefaultBlockTokens
	}
	if blockTokens < 1 {
		return nil, fmt.Errorf("kvcache: block size %d", blockTokens)
	}
	if capacityTokens < 0 {
		return nil, fmt.Errorf("kvcache: capacity %d tokens", capacityTokens)
	}
	blocks := capacityTokens / blockTokens
	return &Manager{
		blockTokens: blockTokens,
		totalBlocks: blocks,
		freeBlocks:  blocks,
		held:        make(map[uint64]int),
	}, nil
}

// blocksFor is the blocks needed to hold tokens.
func (m *Manager) blocksFor(tokens int) int {
	if tokens <= 0 {
		return 0
	}
	return (tokens + m.blockTokens - 1) / m.blockTokens
}

// CapacityTokens is the total cache size in tokens.
func (m *Manager) CapacityTokens() int { return m.totalBlocks * m.blockTokens }

// FreeTokens is the token capacity of currently free blocks.
func (m *Manager) FreeTokens() int { return m.freeBlocks * m.blockTokens }

// Utilization is the fraction of blocks in use, in [0,1].
func (m *Manager) Utilization() float64 {
	if m.totalBlocks == 0 {
		return 1
	}
	return float64(m.totalBlocks-m.freeBlocks) / float64(m.totalBlocks)
}

// PeakUtilization is the high-water fraction of blocks ever in use.
func (m *Manager) PeakUtilization() float64 {
	if m.totalBlocks == 0 {
		return 1
	}
	return float64(m.peakUsed) / float64(m.totalBlocks)
}

// CanGrow reports whether request id could extend its allocation to cover
// tokens total context without exceeding capacity.
func (m *Manager) CanGrow(id uint64, tokens int) bool {
	need := m.blocksFor(tokens) - m.held[id]
	return need <= m.freeBlocks
}

// Grow extends (or creates) request id's allocation to cover tokens total
// context. It reports whether the allocation succeeded; on failure the
// request's existing allocation is unchanged.
func (m *Manager) Grow(id uint64, tokens int) bool {
	cur := m.held[id]
	want := m.blocksFor(tokens)
	if want <= cur {
		return true // already covered; blocks are never shrunk mid-flight
	}
	need := want - cur
	if need > m.freeBlocks {
		return false
	}
	m.freeBlocks -= need
	m.held[id] = want
	if used := m.totalBlocks - m.freeBlocks; used > m.peakUsed {
		m.peakUsed = used
	}
	return true
}

// Release frees all blocks held by request id. Releasing an unknown id is a
// no-op so that callers can release unconditionally on request completion.
func (m *Manager) Release(id uint64) {
	if blocks, ok := m.held[id]; ok {
		m.freeBlocks += blocks
		delete(m.held, id)
	}
}

// HeldTokens is the token capacity allocated to request id.
func (m *Manager) HeldTokens(id uint64) int { return m.held[id] * m.blockTokens }

// Holders is the number of requests with live allocations.
func (m *Manager) Holders() int { return len(m.held) }

// checkInvariant panics if block accounting is corrupted. Exposed for tests.
func (m *Manager) checkInvariant() {
	sum := 0
	for _, b := range m.held {
		sum += b
	}
	if sum+m.freeBlocks != m.totalBlocks {
		panic(fmt.Sprintf("kvcache: held %d + free %d != total %d", sum, m.freeBlocks, m.totalBlocks))
	}
}
