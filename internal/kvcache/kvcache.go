// Package kvcache implements the paged KV-cache block manager behind every
// serving replica: a vLLM-style flat allocator for per-request (private)
// context blocks, extended with a block-hashed prefix tree that shares
// immutable prompt-prefix blocks across requests, and a two-tier
// (HBM + DRAM-spill) eviction model with reload-cost accounting.
//
// # Private allocation
//
// Each request's context occupies fixed-size token blocks. The manager
// tracks capacity so a replica can apply admission control (don't start a
// prefill whose KV won't fit) and model memory pressure during overload:
// Grow reserves blocks, Release frees them, CanGrow probes.
//
// # Prefix sharing
//
// Requests that re-send a shared prompt prefix (multi-turn conversations,
// shared system prompts) can carry a prefix hash chain: one 64-bit hash per
// full prompt block, where hash i commits to the entire prefix up to and
// including block i (see ExtendChain). Equal hashes therefore imply equal
// prefixes, which makes a flat hash->block map an implicit radix tree:
// AcquirePrefix walks the chain, reuses every block already cached
// (refcounted), and creates fresh blocks from the first divergent hash on —
// the copy-on-write point. Shared blocks are immutable by construction
// (prefill output for a fixed prefix is deterministic), so "copy" never
// moves bytes, it just stops sharing. Tokens covered by reused blocks skip
// prefill entirely; the replica and gateway credit them via
// request.ApplyPrefixHit.
//
// # Tiers, eviction, and reload
//
// Released prefix blocks stay resident (refs == 0) and form the reuse pool.
// Under HBM pressure the least-recently-used unpinned block is demoted to a
// DRAM spill tier (Config.DRAMTokens); when DRAM overflows, its LRU block
// is evicted outright. Matching a DRAM-resident block promotes it back to
// HBM and charges a transfer cost (Config.ReloadTokensPerSec) that the
// simulator adds to the admitting iteration — a warm prefix is cheaper than
// recompute but not free. Private allocations always win over cache: Grow
// reclaims unpinned cached blocks before reporting the cache full.
//
// The manager is not safe for concurrent use; a simulated replica owns
// exactly one manager, and the live gateway wraps per-replica managers in a
// small mutex (see internal/server).
package kvcache

import "fmt"

// DefaultBlockTokens matches vLLM's default block size. Prefix hash chains
// must be built with the same block size the manager uses; every manager in
// this repository uses the default.
const DefaultBlockTokens = 16

// DefaultReloadTokensPerSec is the DRAM->HBM reload bandwidth expressed in
// KV tokens per second. At ~128 KiB of KV per token (llama3-8B, GQA, fp16)
// a PCIe 4.0 x16 link moving ~25 GB/s sustains roughly 190k tokens/s; the
// default rounds down to stay conservative.
const DefaultReloadTokensPerSec = 150000

// Config sizes a tiered manager.
type Config struct {
	// CapacityTokens is the HBM-resident cache size in tokens.
	CapacityTokens int
	// BlockTokens is the block size (DefaultBlockTokens if zero).
	BlockTokens int
	// DRAMTokens is the spill-tier capacity in tokens. Zero disables the
	// DRAM tier: blocks demoted from HBM are evicted outright.
	DRAMTokens int
	// ReloadTokensPerSec is the DRAM->HBM transfer rate used to price
	// reloads (DefaultReloadTokensPerSec if zero).
	ReloadTokensPerSec float64
}

// prefixBlock is one shared prompt block in the prefix tree. Blocks with
// refs > 0 are pinned (always HBM-resident); unpinned blocks live on their
// tier's intrusive LRU list.
type prefixBlock struct {
	hash       uint64
	refs       int
	dram       bool
	prev, next *prefixBlock
}

// lruList is an intrusive doubly-linked list of unpinned prefix blocks in
// least-recently-used order (front = coldest).
type lruList struct {
	front, back *prefixBlock
	n           int
}

//qoserve:hotpath
func (l *lruList) pushBack(b *prefixBlock) {
	b.prev, b.next = l.back, nil
	if l.back != nil {
		l.back.next = b
	} else {
		l.front = b
	}
	l.back = b
	l.n++
}

//qoserve:hotpath
func (l *lruList) remove(b *prefixBlock) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		l.front = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		l.back = b.prev
	}
	b.prev, b.next = nil, nil
	l.n--
}

func (l *lruList) popFront() *prefixBlock {
	b := l.front
	if b != nil {
		l.remove(b)
	}
	return b
}

// Manager allocates KV-cache blocks to requests and caches shared prefix
// blocks across them. It is not safe for concurrent use.
type Manager struct {
	blockTokens int
	totalBlocks int            // HBM tier, in blocks
	freeBlocks  int            // HBM blocks neither allocated nor caching a prefix
	held        map[uint64]int // request ID -> private blocks held
	peakUsed    int

	dramBlocks int // spill tier capacity, in blocks
	dramUsed   int
	reloadRate float64 // tokens/s for DRAM->HBM promotion

	nodes   map[uint64]*prefixBlock   // chain hash -> block (both tiers)
	pins    map[uint64][]*prefixBlock // request ID -> pinned chain blocks
	hbmLRU  lruList                   // unpinned HBM-resident blocks
	dramLRU lruList                   // DRAM-resident blocks (never pinned)

	// version counts membership-affecting mutations (see IndexVersion);
	// it deliberately survives Reset so an index consumer never misses
	// the transition back to empty.
	version uint64

	// Statistics (lifetime; Reset clears them).
	hitTokens    uint64
	reloadTokens uint64
	demotions    uint64 // HBM -> DRAM moves
	hbmEvictions uint64 // blocks dropped straight from HBM (no DRAM tier)
	dramEvicted  uint64 // blocks dropped from the DRAM tier
}

// NewManager returns a flat (single-tier, no spill) manager for a cache of
// capacityTokens tokens divided into blocks of blockTokens
// (DefaultBlockTokens if zero). Prefix sharing still works; demoted blocks
// are simply evicted rather than spilled.
func NewManager(capacityTokens, blockTokens int) (*Manager, error) {
	return NewTiered(Config{CapacityTokens: capacityTokens, BlockTokens: blockTokens})
}

// NewTiered returns a manager with the full two-tier configuration.
func NewTiered(cfg Config) (*Manager, error) {
	if cfg.BlockTokens == 0 {
		cfg.BlockTokens = DefaultBlockTokens
	}
	if cfg.BlockTokens < 1 {
		return nil, fmt.Errorf("kvcache: block size %d", cfg.BlockTokens)
	}
	if cfg.CapacityTokens < 0 {
		return nil, fmt.Errorf("kvcache: capacity %d tokens", cfg.CapacityTokens)
	}
	if cfg.DRAMTokens < 0 {
		return nil, fmt.Errorf("kvcache: DRAM tier %d tokens", cfg.DRAMTokens)
	}
	if cfg.ReloadTokensPerSec < 0 {
		return nil, fmt.Errorf("kvcache: reload rate %v", cfg.ReloadTokensPerSec)
	}
	if cfg.ReloadTokensPerSec == 0 {
		cfg.ReloadTokensPerSec = DefaultReloadTokensPerSec
	}
	blocks := cfg.CapacityTokens / cfg.BlockTokens
	return &Manager{
		blockTokens: cfg.BlockTokens,
		totalBlocks: blocks,
		freeBlocks:  blocks,
		held:        make(map[uint64]int),
		dramBlocks:  cfg.DRAMTokens / cfg.BlockTokens,
		reloadRate:  cfg.ReloadTokensPerSec,
		nodes:       make(map[uint64]*prefixBlock),
		pins:        make(map[uint64][]*prefixBlock),
	}, nil
}

// blocksFor is the blocks needed to hold tokens.
func (m *Manager) blocksFor(tokens int) int {
	if tokens <= 0 {
		return 0
	}
	return (tokens + m.blockTokens - 1) / m.blockTokens
}

// BlockTokens is the configured block size in tokens.
func (m *Manager) BlockTokens() int { return m.blockTokens }

// CapacityTokens is the total HBM cache size in tokens.
func (m *Manager) CapacityTokens() int { return m.totalBlocks * m.blockTokens }

// FreeTokens is the token capacity of currently free HBM blocks. Unpinned
// cached prefix blocks do not count as free even though Grow can reclaim
// them; use ReclaimableTokens for the cache-inclusive headroom.
func (m *Manager) FreeTokens() int { return m.freeBlocks * m.blockTokens }

// ReclaimableTokens is FreeTokens plus the unpinned cached blocks Grow may
// demote or evict to make room.
func (m *Manager) ReclaimableTokens() int {
	return (m.freeBlocks + m.hbmLRU.n) * m.blockTokens
}

// Utilization is the fraction of HBM blocks in use (allocations plus
// resident cache), in [0,1].
func (m *Manager) Utilization() float64 {
	if m.totalBlocks == 0 {
		return 1
	}
	return float64(m.totalBlocks-m.freeBlocks) / float64(m.totalBlocks)
}

// PeakUtilization is the high-water fraction of HBM blocks ever in use.
// It accumulates for the manager's lifetime; harnesses that reuse a manager
// across repetitions must call Reset between them.
func (m *Manager) PeakUtilization() float64 {
	if m.totalBlocks == 0 {
		return 1
	}
	return float64(m.peakUsed) / float64(m.totalBlocks)
}

// notePeak refreshes the high-water mark after an allocation.
func (m *Manager) notePeak() {
	if used := m.totalBlocks - m.freeBlocks; used > m.peakUsed {
		m.peakUsed = used
	}
}

// CanGrow reports whether request id could extend its allocation to cover
// tokens total context without exceeding capacity, counting unpinned cached
// blocks as reclaimable.
func (m *Manager) CanGrow(id uint64, tokens int) bool {
	need := m.blocksFor(tokens) - len(m.pins[id]) - m.held[id]
	return need <= m.freeBlocks+m.hbmLRU.n
}

// Grow extends (or creates) request id's private allocation to cover tokens
// total context; blocks already pinned for the request's prefix count
// toward the total. Unpinned cached blocks are demoted or evicted as needed
// — the cache never blocks a real allocation. It reports whether the
// allocation succeeded; on failure the request's existing allocation is
// unchanged.
func (m *Manager) Grow(id uint64, tokens int) bool {
	cur := m.held[id]
	want := m.blocksFor(tokens) - len(m.pins[id])
	if want <= cur {
		return true // already covered; blocks are never shrunk mid-flight
	}
	need := want - cur
	if need > m.freeBlocks+m.hbmLRU.n {
		return false
	}
	if !m.makeRoom(need) {
		return false
	}
	m.freeBlocks -= need
	m.held[id] = want
	m.notePeak()
	return true
}

// makeRoom demotes or evicts unpinned cached blocks until at least n HBM
// blocks are free. It reports whether it succeeded; on failure the blocks
// already reclaimed stay free (they were the coldest anyway).
func (m *Manager) makeRoom(n int) bool {
	for m.freeBlocks < n {
		victim := m.hbmLRU.popFront()
		if victim == nil {
			return false
		}
		m.demote(victim)
	}
	return true
}

// demote moves an unpinned HBM block to the DRAM tier (evicting the DRAM
// LRU block on overflow) or evicts it outright when there is no DRAM tier,
// freeing its HBM block either way.
func (m *Manager) demote(b *prefixBlock) {
	m.version++
	m.freeBlocks++
	if m.dramBlocks == 0 {
		delete(m.nodes, b.hash)
		m.hbmEvictions++
		return
	}
	b.dram = true
	m.dramLRU.pushBack(b)
	m.dramUsed++
	m.demotions++
	if m.dramUsed > m.dramBlocks {
		cold := m.dramLRU.popFront()
		delete(m.nodes, cold.hash)
		m.dramUsed--
		m.dramEvicted++
	}
}

// Match walks the prefix chain and reports how many prompt tokens are
// covered by cached blocks (hitTokens) and how many of those currently sit
// in the DRAM tier and would need a reload (reloadTokens). It never
// mutates state, so balancers may probe replicas with it before routing.
//
//qoserve:hotpath
func (m *Manager) Match(chain []uint64) (hitTokens, reloadTokens int) {
	for _, h := range chain {
		b := m.nodes[h]
		if b == nil {
			break
		}
		hitTokens += m.blockTokens
		if b.dram {
			reloadTokens += m.blockTokens
		}
	}
	return hitTokens, reloadTokens
}

// MatchTokens is Match's hitTokens only, the balancer affinity score.
//
//qoserve:hotpath
func (m *Manager) MatchTokens(chain []uint64) int {
	hit, _ := m.Match(chain)
	return hit
}

// AcquireResult reports what AcquirePrefix did for one request.
type AcquireResult struct {
	// HitTokens is the prompt tokens covered by blocks that were already
	// cached — the tokens whose prefill can be skipped.
	HitTokens int
	// ReloadTokens is the subset of HitTokens promoted from the DRAM tier;
	// the caller charges ReloadTokens / Config.ReloadTokensPerSec of
	// transfer time to the admitting iteration.
	ReloadTokens int
	// CachedTokens is the chain tokens now pinned for this request,
	// matched and newly created alike.
	CachedTokens int
}

// AcquirePrefix walks the request's prefix chain, pinning every cached
// block it matches (promoting DRAM-resident ones back to HBM) and creating
// shareable blocks for the divergent remainder. Pinned blocks are released
// by Release. Under extreme pressure the walk stops early — the request
// then simply caches a shorter prefix; correctness is unaffected because
// uncovered tokens fall back to private allocation via Grow.
//
// Acquiring twice for the same id without an intervening Release panics:
// a request has exactly one prefix.
func (m *Manager) AcquirePrefix(id uint64, chain []uint64) AcquireResult {
	var res AcquireResult
	if len(chain) == 0 {
		return res
	}
	if len(m.pins[id]) > 0 {
		panic(fmt.Sprintf("kvcache: request %d already holds a prefix pin", id))
	}
	pins := make([]*prefixBlock, 0, len(chain))
	i := 0
	for ; i < len(chain); i++ {
		b := m.nodes[chain[i]]
		if b == nil {
			break
		}
		if b.dram {
			if !m.makeRoom(1) {
				break // cannot promote; stop matching here
			}
			m.dramLRU.remove(b)
			m.dramUsed--
			b.dram = false
			m.freeBlocks--
			m.version++
			res.ReloadTokens += m.blockTokens
		} else if b.refs == 0 {
			m.hbmLRU.remove(b)
		}
		b.refs++
		pins = append(pins, b)
		res.HitTokens += m.blockTokens
	}
	for ; i < len(chain); i++ {
		if b := m.nodes[chain[i]]; b != nil {
			// Cached but unreachable: an earlier chain block was evicted, so
			// this block's tokens sit past the hit point and the prefill will
			// recompute them anyway. Re-pin the existing block — no hit or
			// reload credit — instead of allocating a duplicate; if it sat in
			// DRAM, promote it structurally (the recompute overwrites it, so
			// no transfer is charged).
			if b.dram {
				if !m.makeRoom(1) {
					break
				}
				m.dramLRU.remove(b)
				m.dramUsed--
				b.dram = false
				m.freeBlocks--
				m.version++
			} else if b.refs == 0 {
				m.hbmLRU.remove(b)
			}
			b.refs++
			pins = append(pins, b)
			continue
		}
		if !m.makeRoom(1) {
			break // cache full of pinned blocks; rest stays uncached
		}
		b := &prefixBlock{hash: chain[i], refs: 1}
		m.nodes[chain[i]] = b
		m.freeBlocks--
		m.version++
		pins = append(pins, b)
	}
	if len(pins) > 0 {
		m.pins[id] = pins
	}
	res.CachedTokens = len(pins) * m.blockTokens
	m.hitTokens += uint64(res.HitTokens)
	m.reloadTokens += uint64(res.ReloadTokens)
	m.notePeak()
	return res
}

// Release frees all private blocks held by request id and unpins its prefix
// blocks. Unpinned prefix blocks stay cached (that is the cache) until
// pressure demotes or evicts them. Releasing an unknown id is a no-op so
// that callers can release unconditionally on request completion.
//
//qoserve:hotpath
func (m *Manager) Release(id uint64) {
	if blocks, ok := m.held[id]; ok {
		m.freeBlocks += blocks
		delete(m.held, id)
	}
	if pins, ok := m.pins[id]; ok {
		for _, b := range pins {
			b.refs--
			if b.refs == 0 {
				m.hbmLRU.pushBack(b)
			}
		}
		delete(m.pins, id)
	}
}

// Reset returns the manager to its freshly-constructed state: every
// allocation, pin, and cached block is dropped and all statistics —
// including PeakUtilization, which Release deliberately leaves accumulating
// — are zeroed. Sweep harnesses that reuse one manager across repetitions
// call this between runs so per-run peaks and hit counters do not bleed
// into each other.
func (m *Manager) Reset() {
	m.version++
	m.freeBlocks = m.totalBlocks
	m.peakUsed = 0
	m.dramUsed = 0
	clear(m.held)
	clear(m.pins)
	clear(m.nodes)
	m.hbmLRU = lruList{}
	m.dramLRU = lruList{}
	m.hitTokens = 0
	m.reloadTokens = 0
	m.demotions = 0
	m.hbmEvictions = 0
	m.dramEvicted = 0
}

// ReloadSeconds prices a DRAM->HBM transfer of tokens at the configured
// reload bandwidth.
func (m *Manager) ReloadSeconds(tokens int) float64 {
	if tokens <= 0 {
		return 0
	}
	return float64(tokens) / m.reloadRate
}

// HeldTokens is the token capacity allocated to request id, private blocks
// plus pinned prefix blocks.
func (m *Manager) HeldTokens(id uint64) int {
	return (m.held[id] + len(m.pins[id])) * m.blockTokens
}

// Holders is the number of requests with live allocations or pins.
func (m *Manager) Holders() int {
	n := len(m.held)
	for id := range m.pins {
		if _, ok := m.held[id]; !ok {
			n++
		}
	}
	return n
}

// CachedBlocks reports the prefix blocks resident in each tier (pinned
// blocks count as HBM).
func (m *Manager) CachedBlocks() (hbm, dram int) {
	return len(m.nodes) - m.dramUsed, m.dramUsed
}

// PrefixHitTokens is the lifetime count of prompt tokens served from cached
// prefix blocks.
func (m *Manager) PrefixHitTokens() uint64 { return m.hitTokens }

// PrefixReloadTokens is the lifetime count of hit tokens that had to be
// promoted from the DRAM tier.
func (m *Manager) PrefixReloadTokens() uint64 { return m.reloadTokens }

// TierEvictions reports blocks dropped from each tier: hbm counts blocks
// evicted straight out of HBM (no DRAM tier configured), dram counts
// spill-tier LRU evictions. Demotions (HBM -> DRAM moves) are reported
// separately by Demotions.
func (m *Manager) TierEvictions() (hbm, dram uint64) {
	return m.hbmEvictions, m.dramEvicted
}

// Demotions is the lifetime count of HBM -> DRAM demotions.
func (m *Manager) Demotions() uint64 { return m.demotions }

// checkInvariant panics if block accounting is corrupted. Exposed for tests.
func (m *Manager) checkInvariant() {
	sum := 0
	for _, b := range m.held {
		sum += b
	}
	residentPrefix, dram, pinned := 0, 0, 0
	for _, b := range m.nodes {
		if b.dram {
			dram++
			if b.refs != 0 {
				panic(fmt.Sprintf("kvcache: DRAM block %x pinned (%d refs)", b.hash, b.refs))
			}
		} else {
			residentPrefix++
		}
		if b.refs > 0 {
			pinned++
		}
	}
	if sum+residentPrefix+m.freeBlocks != m.totalBlocks {
		panic(fmt.Sprintf("kvcache: held %d + resident prefix %d + free %d != total %d",
			sum, residentPrefix, m.freeBlocks, m.totalBlocks))
	}
	if dram != m.dramUsed {
		panic(fmt.Sprintf("kvcache: dram nodes %d != dramUsed %d", dram, m.dramUsed))
	}
	if m.dramUsed > m.dramBlocks {
		panic(fmt.Sprintf("kvcache: dram used %d > capacity %d", m.dramUsed, m.dramBlocks))
	}
	if got := residentPrefix - pinnedDistinct(m.nodes); got != m.hbmLRU.n {
		panic(fmt.Sprintf("kvcache: unpinned HBM blocks %d != LRU list %d", got, m.hbmLRU.n))
	}
	_ = pinned
}

// pinnedDistinct counts HBM-resident blocks with live pins.
func pinnedDistinct(nodes map[uint64]*prefixBlock) int {
	n := 0
	for _, b := range nodes {
		if !b.dram && b.refs > 0 {
			n++
		}
	}
	return n
}
