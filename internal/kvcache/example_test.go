package kvcache_test

import (
	"fmt"

	"qoserve/internal/kvcache"
)

// Two turns of one conversation share a prompt prefix: the first turn pays
// full prefill and leaves its blocks cached, the second turn's AcquirePrefix
// matches them and skips that much prefill.
func Example() {
	m, err := kvcache.NewTiered(kvcache.Config{
		CapacityTokens: 4096,
		DRAMTokens:     8192,
	})
	if err != nil {
		panic(err)
	}

	// Turn 1: a 400-token prompt covers 24 full 16-token blocks (the
	// trailing partial block and the last token are never shared).
	prompt := 400
	chain := kvcache.SyntheticChain(42, 0, kvcache.ChainBlocks(prompt, m.BlockTokens()))
	res := m.AcquirePrefix(1, chain)
	fmt.Printf("turn 1: hit %d tokens, cached %d\n", res.HitTokens, res.CachedTokens)
	m.Grow(1, prompt) // private blocks for the uncovered remainder
	m.Release(1)      // blocks stay cached for the next turn

	// Turn 2: the grown conversation re-sends the same prefix. Everything
	// turn 1 cached is a hit; only the new tokens prefill.
	prompt += 200
	chain = kvcache.SyntheticChain(42, 0, kvcache.ChainBlocks(prompt, m.BlockTokens()))
	res = m.AcquirePrefix(2, chain)
	fmt.Printf("turn 2: hit %d tokens, cached %d\n", res.HitTokens, res.CachedTokens)

	// A different conversation shares nothing.
	other := kvcache.SyntheticChain(7, 0, 4)
	hit, reload := m.Match(other)
	fmt.Printf("stranger: hit %d tokens, reload %d\n", hit, reload)

	// Output:
	// turn 1: hit 0 tokens, cached 384
	// turn 2: hit 384 tokens, cached 592
	// stranger: hit 0 tokens, reload 0
}
