package kvcache

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func mustTiered(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m, err := NewTiered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAcquirePrefixSharing(t *testing.T) {
	m := mustManager(t, 1600, 16) // 100 blocks
	chain := SyntheticChain(7, 0, 8)

	// First request creates the blocks: no hits, everything cached.
	res := m.AcquirePrefix(1, chain)
	if res.HitTokens != 0 || res.CachedTokens != 8*16 {
		t.Fatalf("first acquire: %+v", res)
	}
	m.checkInvariant()

	// Second request with the same chain hits every block.
	res = m.AcquirePrefix(2, chain)
	if res.HitTokens != 8*16 || res.ReloadTokens != 0 {
		t.Fatalf("second acquire: %+v", res)
	}
	// Shared blocks are counted once: 8 blocks total, not 16.
	if hbm, _ := m.CachedBlocks(); hbm != 8 {
		t.Fatalf("cached blocks = %d, want 8", hbm)
	}
	if m.FreeTokens() != 1600-8*16 {
		t.Fatalf("free = %d", m.FreeTokens())
	}

	// Divergent chain: shares the first 5 blocks, then copy-on-write.
	div := append(append([]uint64(nil), chain[:5]...), SyntheticChain(9, 0, 3)...)
	res = m.AcquirePrefix(3, div)
	if res.HitTokens != 5*16 {
		t.Fatalf("divergent acquire hit %d tokens", res.HitTokens)
	}
	if hbm, _ := m.CachedBlocks(); hbm != 11 {
		t.Fatalf("cached blocks after divergence = %d, want 11", hbm)
	}
	m.checkInvariant()

	// Releasing all pins keeps the blocks resident for reuse.
	m.Release(1)
	m.Release(2)
	m.Release(3)
	if hbm, _ := m.CachedBlocks(); hbm != 11 {
		t.Fatalf("cached blocks after release = %d, want 11", hbm)
	}
	if hit, _ := m.Match(chain); hit != 8*16 {
		t.Fatalf("match after release = %d", hit)
	}
	m.checkInvariant()

	// Double acquire for one id is a bug in the caller.
	m.AcquirePrefix(4, chain)
	defer func() {
		if recover() == nil {
			t.Error("double acquire did not panic")
		}
	}()
	m.AcquirePrefix(4, chain)
}

func TestTierDemotionAndReload(t *testing.T) {
	// 4 HBM blocks, 2 DRAM blocks.
	m := mustTiered(t, Config{CapacityTokens: 64, DRAMTokens: 32})
	chain := SyntheticChain(1, 0, 4)
	m.AcquirePrefix(1, chain)
	m.Release(1)

	// A private allocation reclaims 3 cached blocks; the two coldest
	// (chain[0], chain[1]) demote to DRAM, the third overflows DRAM and
	// evicts chain[0].
	if !m.Grow(2, 48) {
		t.Fatal("grow over cache failed")
	}
	m.checkInvariant()
	if d := m.Demotions(); d != 3 {
		t.Errorf("demotions = %d, want 3", d)
	}
	if _, dram := m.TierEvictions(); dram != 1 {
		t.Errorf("dram evictions = %d, want 1", dram)
	}
	hit, reload := m.Match(chain)
	if hit != 0 { // chain[0] is gone, so the walk misses immediately
		t.Errorf("match after eviction = %d tokens", hit)
	}
	_ = reload

	// The survivor blocks are only reachable behind the evicted head, so
	// re-acquiring rebuilds from scratch once room frees up.
	m.Release(2)
	res := m.AcquirePrefix(3, chain)
	if res.HitTokens != 0 || res.CachedTokens != 64 {
		t.Fatalf("re-acquire: %+v", res)
	}
	m.Release(3)
	m.checkInvariant()
}

func TestDRAMReloadCharged(t *testing.T) {
	m := mustTiered(t, Config{CapacityTokens: 64, DRAMTokens: 64})
	chain := SyntheticChain(1, 0, 2)
	m.AcquirePrefix(1, chain)
	m.Release(1)
	// Force both cached blocks to DRAM.
	if !m.Grow(2, 64) {
		t.Fatal("grow failed")
	}
	if d := m.Demotions(); d != 2 {
		t.Fatalf("demotions = %d, want 2", d)
	}
	m.Release(2)

	hit, reload := m.Match(chain)
	if hit != 32 || reload != 32 {
		t.Fatalf("match = (%d, %d), want (32, 32)", hit, reload)
	}
	res := m.AcquirePrefix(3, chain)
	if res.HitTokens != 32 || res.ReloadTokens != 32 {
		t.Fatalf("acquire from DRAM: %+v", res)
	}
	// Promoted blocks are HBM again; a fresh match is reload-free.
	if _, r := m.Match(chain); r != 0 {
		t.Errorf("reload tokens after promotion = %d", r)
	}
	if m.PrefixReloadTokens() != 32 {
		t.Errorf("lifetime reload tokens = %d", m.PrefixReloadTokens())
	}
	sec := m.ReloadSeconds(32)
	if want := 32.0 / DefaultReloadTokensPerSec; sec != want {
		t.Errorf("reload seconds = %v, want %v", sec, want)
	}
	m.Release(3)
	m.checkInvariant()
}

func TestHBMEvictionWithoutDRAMTier(t *testing.T) {
	m := mustManager(t, 64, 16)
	m.AcquirePrefix(1, SyntheticChain(1, 0, 4))
	m.Release(1)
	if !m.Grow(2, 64) {
		t.Fatal("grow failed")
	}
	hbm, dram := m.TierEvictions()
	if hbm != 4 || dram != 0 {
		t.Errorf("evictions = (%d, %d), want (4, 0)", hbm, dram)
	}
	if h, d := m.CachedBlocks(); h != 0 || d != 0 {
		t.Errorf("cached blocks = (%d, %d)", h, d)
	}
	m.checkInvariant()
}

// Regression: PeakUtilization accumulates across a manager's lifetime, so a
// sweep harness reusing one manager must get a clean high-water mark (and
// clean statistics) from Reset. Before Reset existed the second repetition
// inherited the first one's peak.
func TestResetClearsPeakAndStats(t *testing.T) {
	m := mustTiered(t, Config{CapacityTokens: 160, DRAMTokens: 160})
	m.Grow(1, 160)
	m.Release(1)
	if m.PeakUtilization() != 1 {
		t.Fatalf("peak = %v, want 1", m.PeakUtilization())
	}
	m.AcquirePrefix(2, SyntheticChain(3, 0, 2))
	m.Release(2)

	m.Reset()
	if m.PeakUtilization() != 0 {
		t.Errorf("peak after Reset = %v, want 0", m.PeakUtilization())
	}
	if m.FreeTokens() != 160 || m.Holders() != 0 {
		t.Errorf("after Reset: free %d holders %d", m.FreeTokens(), m.Holders())
	}
	if h, d := m.CachedBlocks(); h != 0 || d != 0 {
		t.Errorf("cached blocks after Reset = (%d, %d)", h, d)
	}
	if m.PrefixHitTokens() != 0 || m.PrefixReloadTokens() != 0 || m.Demotions() != 0 {
		t.Error("statistics survived Reset")
	}
	m.checkInvariant()

	// The manager is fully usable after Reset.
	if res := m.AcquirePrefix(1, SyntheticChain(3, 0, 2)); res.HitTokens != 0 {
		t.Errorf("cache content survived Reset: %+v", res)
	}
	m.Grow(1, 80)
	if m.PeakUtilization() == 0 {
		t.Error("peak not tracked after Reset")
	}
}

// Property: with no shared prefixes (every chain distinct), the prefix-tree
// manager accounts for memory exactly like the flat allocator — a chain's
// pinned blocks plus Grow's private blocks equal the flat allocation, and
// unpinned leftover cache is always reclaimable, so flat free capacity
// equals prefix-tree reclaimable capacity after every operation.
func TestPrefixFlatEquivalenceProperty(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		flat, err := NewManager(10000, 16)
		if err != nil {
			return false
		}
		pref, err := NewManager(10000, 16)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		live := map[uint64]bool{}
		var chainKey uint64
		for _, op := range ops {
			id := uint64(op % 32)
			switch {
			case rng.Intn(3) == 0 && live[id]:
				flat.Release(id)
				pref.Release(id)
				delete(live, id)
			case live[id]:
				// Mid-flight extension: no new chain, plain Grow on both.
				tokens := int(op % 4000)
				if flat.Grow(id, tokens) != pref.Grow(id, tokens) {
					return false
				}
			default:
				// Admission: a distinct chain per request, then Grow to the
				// full context. The flat manager just Grows.
				tokens := int(op % 4000)
				chainKey++
				chain := SyntheticChain(chainKey, 0, ChainBlocks(tokens, 16))
				pref.AcquirePrefix(id, chain)
				okFlat := flat.Grow(id, tokens)
				okPref := pref.Grow(id, tokens)
				if okFlat != okPref {
					return false
				}
				if !okPref {
					pref.Release(id) // drop the partial pin, like a rejected admit
				} else if tokens > 0 {
					live[id] = true
				}
			}
			if pref.ReclaimableTokens() != flat.FreeTokens() {
				return false
			}
			for lid := range live {
				if flat.HeldTokens(lid) != pref.HeldTokens(lid) {
					return false
				}
			}
			flat.checkInvariant()
			pref.checkInvariant()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMatchStopsAtFirstMiss(t *testing.T) {
	m := mustManager(t, 1600, 16)
	chain := SyntheticChain(5, 0, 6)
	m.AcquirePrefix(1, chain[:3])
	// Even though blocks 0-2 are cached, a chain that diverges at 0 misses.
	other := SyntheticChain(6, 0, 6)
	if hit, _ := m.Match(other); hit != 0 {
		t.Errorf("disjoint chain matched %d tokens", hit)
	}
	if hit, _ := m.Match(chain); hit != 3*16 {
		t.Errorf("prefix match = %d, want %d", hit, 3*16)
	}
	if m.MatchTokens(chain) != 3*16 {
		t.Error("MatchTokens disagrees with Match")
	}
}

func TestSyntheticChainProperties(t *testing.T) {
	a := SyntheticChain(1, 0, 10)
	b := SyntheticChain(1, 0, 12)
	if !reflect.DeepEqual(a, b[:10]) {
		t.Error("longer chain of the same key is not an extension")
	}
	if reflect.DeepEqual(a, SyntheticChain(2, 0, 10)) {
		t.Error("distinct keys collide")
	}
	if reflect.DeepEqual(a, SyntheticChain(1, 16, 10)) {
		t.Error("slid window hashes like the unslid one")
	}
	if SyntheticChain(1, 0, 0) != nil {
		t.Error("empty chain not nil")
	}
	if ChainBlocks(0, 16) != 0 || ChainBlocks(1, 16) != 0 {
		t.Error("degenerate prompts should have no shareable blocks")
	}
	// A 33-token prompt shares two full blocks; token 33 stays for prefill.
	if got := ChainBlocks(33, 16); got != 2 {
		t.Errorf("ChainBlocks(33, 16) = %d, want 2", got)
	}
	// A prompt that is an exact block multiple keeps its last token out.
	if got := ChainBlocks(32, 16); got != 1 {
		t.Errorf("ChainBlocks(32, 16) = %d, want 1", got)
	}
}

func TestChainWireFormat(t *testing.T) {
	chain := SyntheticChain(42, 0, 5)
	got, err := ParseChain(FormatChain(chain))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, chain) {
		t.Errorf("round trip: %x != %x", got, chain)
	}
	if c, err := ParseChain(""); err != nil || c != nil {
		t.Error("empty string should parse to nil chain")
	}
	for _, bad := range []string{"-", "a-", "-a", "xyz", "0123456789abcdef0", "a--b"} {
		if _, err := ParseChain(bad); err == nil {
			t.Errorf("ParseChain(%q) accepted", bad)
		}
	}
}

func BenchmarkAcquireReleaseShared(b *testing.B) {
	m, _ := NewManager(1<<20, 16)
	chain := SyntheticChain(1, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := uint64(i%64) + 1
		m.AcquirePrefix(id, chain)
		m.Release(id)
	}
}

func BenchmarkMatch(b *testing.B) {
	m, _ := NewManager(1<<20, 16)
	chain := SyntheticChain(1, 0, 64)
	m.AcquirePrefix(1, chain)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.MatchTokens(chain)
	}
}
