// Prefix hash chains: the wire and trace representation of a request's
// shared prompt prefix.
//
// A chain has one 64-bit hash per full prompt block, and hash i commits to
// the entire prefix up to and including block i (cumulative, like a hash
// list): equal hash at position i implies the whole prefixes are equal, so
// the manager can dedup globally by hash with no per-node children. A
// 64-bit collision would alias two different prefixes onto one cache entry;
// at the scale simulated here (thousands of distinct blocks) the collision
// probability is negligible and, as in vLLM's hash-based prefix cache, is
// accepted rather than verified.

package kvcache

import (
	"fmt"
	"strconv"
	"strings"
)

// MaxChainBlocks caps a parsed chain: DefaultMaxTokens-scale contexts are
// ~1k blocks, so 4096 leaves headroom while bounding hostile input.
const MaxChainBlocks = 4096

// mix64 is the splitmix64 finalizer, a cheap full-avalanche 64-bit mixer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ExtendChain derives the hash of the next chain position from the running
// chain hash and the new block's content identity. Callers synthesizing
// workloads use any stable per-block identifier as block; real token IDs
// would be hashed the same way.
func ExtendChain(parent, block uint64) uint64 {
	return mix64(parent ^ mix64(block))
}

// SyntheticChain builds a chain for a synthetic prompt: key identifies the
// shared content (e.g. a session ID), startToken is the token offset of the
// context window's first token (so sliding-window truncation changes every
// hash — a shifted window genuinely is different content), and blocks is
// the number of full prompt blocks. Workload generators use this to give
// turns of one session a common prefix while keeping distinct sessions
// disjoint.
func SyntheticChain(key uint64, startToken, blocks int) []uint64 {
	if blocks <= 0 {
		return nil
	}
	chain := make([]uint64, blocks)
	h := mix64(key) ^ mix64(uint64(startToken))
	for i := range chain {
		h = ExtendChain(h, mix64(key)+uint64(i))
		chain[i] = h
	}
	return chain
}

// ChainBlocks is the number of full blocks a chain may cover for a prompt
// of promptTokens: partial trailing blocks are never shared (their content
// depends on tokens not yet fixed), and at least one token must remain for
// prefill so a fully-cached prompt still produces a first token the normal
// way (matching vLLM, which caps hits at prompt length minus one).
func ChainBlocks(promptTokens, blockTokens int) int {
	if blockTokens <= 0 {
		blockTokens = DefaultBlockTokens
	}
	if promptTokens <= 1 {
		return 0
	}
	return (promptTokens - 1) / blockTokens
}

// FormatChain renders a chain as lower-case hex hashes joined by "-", the
// wire format of the gateway's prefix_chain field. An empty chain renders
// as "".
func FormatChain(chain []uint64) string {
	if len(chain) == 0 {
		return ""
	}
	var b strings.Builder
	b.Grow(len(chain) * 17)
	for i, h := range chain {
		if i > 0 {
			b.WriteByte('-')
		}
		b.WriteString(strconv.FormatUint(h, 16))
	}
	return b.String()
}

// AppendChain appends the wire form of chain (FormatChain) to dst and
// returns the extended slice, allocating only when dst lacks capacity.
func AppendChain(dst []byte, chain []uint64) []byte {
	for i, h := range chain {
		if i > 0 {
			dst = append(dst, '-')
		}
		dst = strconv.AppendUint(dst, h, 16)
	}
	return dst
}

// ParseChain parses the wire format produced by FormatChain: "-"-joined
// hex hashes, up to 16 digits each, at most MaxChainBlocks long. The empty
// string parses to a nil chain (no prefix).
func ParseChain(s string) ([]uint64, error) {
	chain, err := ParseChainInto(nil, s)
	if err != nil {
		return nil, err
	}
	return chain, nil
}

// ParseChainInto parses s like ParseChain but appends the hashes to dst,
// reusing its capacity: the gateway's HTTP submit path passes a pooled
// scratch slice so a steady stream of prefix_chain fields parses without
// per-request garbage. It returns dst unchanged (possibly re-sliced) on
// error; the empty string appends nothing.
func ParseChainInto(dst []uint64, s string) ([]uint64, error) {
	if s == "" {
		return dst, nil
	}
	// The wire form has one more segment than separators; count first so a
	// hostile mega-chain is rejected before any parsing work.
	blocks := strings.Count(s, "-") + 1
	if blocks > MaxChainBlocks {
		return dst, fmt.Errorf("kvcache: chain of %d blocks exceeds %d", blocks, MaxChainBlocks)
	}
	base := len(dst)
	start, pos := 0, 0
	for {
		end := start
		var h uint64
		for end < len(s) && s[end] != '-' {
			c := s[end]
			var d uint64
			switch {
			case c >= '0' && c <= '9':
				d = uint64(c - '0')
			case c >= 'a' && c <= 'f':
				d = uint64(c-'a') + 10
			case c >= 'A' && c <= 'F':
				d = uint64(c-'A') + 10
			default:
				return dst[:base], fmt.Errorf("kvcache: chain hash %q at position %d", segment(s, start), pos)
			}
			h = h<<4 | d
			end++
		}
		if n := end - start; n == 0 || n > 16 {
			return dst[:base], fmt.Errorf("kvcache: chain hash %q at position %d", segment(s, start), pos)
		}
		dst = append(dst, h)
		pos++
		if end == len(s) {
			return dst, nil
		}
		start = end + 1 // skip the '-'
	}
}

// segment returns the hash segment of s beginning at start, for error text
// identical to the strings.Split-based parser this replaced.
func segment(s string, start int) string {
	end := start
	for end < len(s) && s[end] != '-' {
		end++
	}
	return s[start:end]
}
