package kvcache

import (
	"reflect"
	"testing"
)

// TestParseChainInto covers the scratch-reuse contract: parsing appends to
// the destination, errors leave previously appended hashes intact, and a
// warm buffer round-trips without allocating.
func TestParseChainInto(t *testing.T) {
	chain := SyntheticChain(3, 0, 6)
	wire := FormatChain(chain)

	got, err := ParseChainInto(nil, wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, chain) {
		t.Fatalf("parsed %x, want %x", got, chain)
	}

	// Appending: prior contents survive, new hashes follow.
	both, err := ParseChainInto(got, wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(both) != 2*len(chain) || !reflect.DeepEqual(both[len(chain):], chain) {
		t.Fatalf("append parse produced %x", both)
	}

	// Errors re-slice back to the caller's length.
	kept, err := ParseChainInto(both[:len(chain)], "not-hex-!")
	if err == nil {
		t.Fatal("accepted junk")
	}
	if !reflect.DeepEqual(kept, chain) {
		t.Fatalf("error clobbered the scratch prefix: %x", kept)
	}

	// Warm scratch parses with zero allocations.
	scratch := make([]uint64, 0, len(chain))
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		scratch, err = ParseChainInto(scratch[:0], wire)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm ParseChainInto allocates %.1f times, want 0", allocs)
	}
}

// TestAppendChainReuse checks AppendChain against FormatChain and its
// alloc-free warm path.
func TestAppendChainReuse(t *testing.T) {
	chain := SyntheticChain(9, 16, 5)
	want := FormatChain(chain)
	buf := make([]byte, 0, len(want))
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendChain(buf[:0], chain)
	})
	if string(buf) != want {
		t.Fatalf("AppendChain = %q, want %q", buf, want)
	}
	if allocs != 0 {
		t.Fatalf("warm AppendChain allocates %.1f times, want 0", allocs)
	}
}
