// Global prefix index: a cluster-wide, lock-free view of which prefix
// blocks each replica currently caches.
//
// Every replica owns a private Manager guarded by that replica's own lock
// (or by the simulator's single thread). Balancers, however, want to ask
// "who holds this chain?" on every routing decision — and probing N
// replica caches under N locks on the serve path is exactly the silo the
// paper argues against. The index inverts the dependency: a replica
// *publishes* an immutable snapshot of its block membership whenever that
// membership changes (creation, demotion, eviction, reset), and routing
// probes the latest snapshot through a single atomic pointer load. Reads
// never block writers, writers never block reads, and a steady-state warm
// cache — whose membership is quiescent even though pins churn — publishes
// nothing at all.
//
// Snapshots are epoch-stamped and carry a canonical wire encoding
// (DecodeIndexSnapshot / Encode) so gateways can gossip them across
// processes the same way replica.LoadSnapshot travels.
//
// Staleness is inherent and accepted: a probe may see blocks a replica
// evicted a moment ago, or miss blocks it just cached. Consumers therefore
// treat index answers as routing hints — the authoritative hit accounting
// still happens inside the owning replica's AcquirePrefix, and KV-transfer
// planning re-validates the source at admission time.
package kvcache

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// indexWireVersion prefixes the index snapshot wire encoding.
const indexWireVersion = "x1"

// maxIndexValue bounds each decoded header field, mirroring
// replica.LoadSnapshot's bound: far above anything real, small enough that
// invariant arithmetic stays inside int64.
const maxIndexValue = 1 << 40

// MaxIndexBlocks caps the block hashes one decoded snapshot may carry.
// 1<<20 blocks is 16M tokens at the default block size — an order of
// magnitude past the largest HBM+DRAM tier this repo models.
const MaxIndexBlocks = 1 << 20

// IndexSnapshot is one replica's published block membership: the set of
// chain hashes resident in either tier, plus tier occupancy counts for
// observability. Snapshots are immutable after construction; the global
// index swaps whole snapshots atomically.
//
//qoserve:frozen
type IndexSnapshot struct {
	// Epoch is the publish sequence number for the owning slot, stamped by
	// GlobalIndex.Publish (1 for a slot's first snapshot). A snapshot that
	// has not been published carries 0.
	Epoch uint64
	// BlockTokens is the block size the hashes cover.
	BlockTokens int
	// HBMBlocks / DRAMBlocks count resident blocks per tier at snapshot
	// time; they sum to the number of hashes.
	HBMBlocks  int
	DRAMBlocks int

	hashes map[uint64]struct{}
}

// NewIndexSnapshot builds a snapshot from an explicit hash set. hbm + dram
// must equal len(hashes); duplicate hashes are impossible by construction
// (the slice is folded into a set, so the caller must not pass duplicates —
// they would silently shrink the set and break the tier sum).
func NewIndexSnapshot(blockTokens, hbm, dram int, hashes []uint64) (*IndexSnapshot, error) {
	if blockTokens < 1 {
		return nil, fmt.Errorf("kvcache: index block size %d", blockTokens)
	}
	if hbm < 0 || dram < 0 {
		return nil, fmt.Errorf("kvcache: index tier counts %d hbm, %d dram", hbm, dram)
	}
	set := make(map[uint64]struct{}, len(hashes))
	for _, h := range hashes {
		set[h] = struct{}{}
	}
	if len(set) != len(hashes) {
		return nil, fmt.Errorf("kvcache: index has %d hashes but only %d distinct", len(hashes), len(set))
	}
	if hbm+dram != len(set) {
		return nil, fmt.Errorf("kvcache: index tiers %d+%d != %d hashes", hbm, dram, len(set))
	}
	return &IndexSnapshot{BlockTokens: blockTokens, HBMBlocks: hbm, DRAMBlocks: dram, hashes: set}, nil
}

// Blocks is the number of resident prefix blocks the snapshot advertises.
func (s *IndexSnapshot) Blocks() int {
	if s == nil {
		return 0
	}
	return len(s.hashes)
}

// Contains reports whether the snapshot advertises the block hash.
//
//qoserve:hotpath
func (s *IndexSnapshot) Contains(h uint64) bool {
	if s == nil {
		return false
	}
	_, ok := s.hashes[h]
	return ok
}

// MatchTokens walks the prefix chain and reports how many prompt tokens
// the advertised blocks cover — the lock-free analogue of
// Manager.MatchTokens. A nil snapshot (nothing published yet) matches
// nothing.
//
//qoserve:hotpath
func (s *IndexSnapshot) MatchTokens(chain []uint64) int {
	if s == nil {
		return 0
	}
	n := 0
	for _, h := range chain {
		if _, ok := s.hashes[h]; !ok {
			break
		}
		n++
	}
	return n * s.BlockTokens
}

// Encode renders the snapshot in its canonical wire form:
//
//	x1:<epoch>,<block_tokens>,<hbm_blocks>,<dram_blocks>:<hash>-<hash>-...
//
// Header fields are canonical decimal; hashes are canonical lower-case hex
// (no leading zeros) sorted ascending and "-"-joined, empty when nothing
// is cached. DecodeIndexSnapshot(s.Encode()) round-trips exactly.
func (s *IndexSnapshot) Encode() string {
	sorted := make([]uint64, 0, len(s.hashes))
	for h := range s.hashes {
		sorted = append(sorted, h)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "%s:%d,%d,%d,%d:", indexWireVersion,
		s.Epoch, s.BlockTokens, s.HBMBlocks, s.DRAMBlocks)
	for i, h := range sorted {
		if i > 0 {
			b.WriteByte('-')
		}
		b.WriteString(strconv.FormatUint(h, 16))
	}
	return b.String()
}

// DecodeIndexSnapshot parses the wire form produced by Encode, rejecting
// unknown versions, non-canonical spellings, out-of-order or duplicate
// hashes, tier counts that do not sum to the hash count, and values past
// the sanity bounds.
func DecodeIndexSnapshot(wire string) (*IndexSnapshot, error) {
	version, rest, ok := strings.Cut(wire, ":")
	if !ok {
		return nil, fmt.Errorf("kvcache: index snapshot %q has no version prefix", wire)
	}
	if version != indexWireVersion {
		return nil, fmt.Errorf("kvcache: unsupported index snapshot version %q", version)
	}
	header, body, ok := strings.Cut(rest, ":")
	if !ok {
		return nil, fmt.Errorf("kvcache: index snapshot has no hash section")
	}
	parts := strings.Split(header, ",")
	if len(parts) != 4 {
		return nil, fmt.Errorf("kvcache: index snapshot header has %d fields, want 4", len(parts))
	}
	var fields [4]uint64
	for i, p := range parts {
		// Reject non-canonical spellings ("+1", " 1", "01") so encode and
		// decode stay a strict round trip.
		if p == "" || (len(p) > 1 && p[0] == '0') || p[0] == '+' {
			return nil, fmt.Errorf("kvcache: index header field %d %q is not canonical decimal", i, p)
		}
		v, err := strconv.ParseUint(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("kvcache: index header field %d: %v", i, err)
		}
		if v > maxIndexValue {
			return nil, fmt.Errorf("kvcache: index header field %d value %d exceeds %d", i, v, maxIndexValue)
		}
		fields[i] = v
	}
	blockTokens, hbm, dram := int(fields[1]), int(fields[2]), int(fields[3])
	if blockTokens < 1 {
		return nil, fmt.Errorf("kvcache: index block size %d", blockTokens)
	}
	if hbm+dram > MaxIndexBlocks {
		return nil, fmt.Errorf("kvcache: index advertises %d blocks, max %d", hbm+dram, MaxIndexBlocks)
	}
	set := make(map[uint64]struct{})
	if body != "" {
		prev, first := uint64(0), true
		for _, p := range strings.Split(body, "-") {
			h, err := parseIndexHash(p)
			if err != nil {
				return nil, err
			}
			if !first && h <= prev {
				return nil, fmt.Errorf("kvcache: index hash %q out of order", p)
			}
			prev, first = h, false
			set[h] = struct{}{}
		}
	}
	if hbm+dram != len(set) {
		return nil, fmt.Errorf("kvcache: index tiers %d+%d != %d hashes", hbm, dram, len(set))
	}
	return &IndexSnapshot{
		Epoch:       fields[0],
		BlockTokens: blockTokens,
		HBMBlocks:   hbm,
		DRAMBlocks:  dram,
		hashes:      set,
	}, nil
}

// parseIndexHash parses one canonical lower-case hex hash: non-empty, at
// most 16 digits, no leading zero (except "0" itself), no uppercase.
func parseIndexHash(p string) (uint64, error) {
	if p == "" || len(p) > 16 {
		return 0, fmt.Errorf("kvcache: index hash %q is not a 64-bit hex value", p)
	}
	if len(p) > 1 && p[0] == '0' {
		return 0, fmt.Errorf("kvcache: index hash %q has a leading zero", p)
	}
	for i := 0; i < len(p); i++ {
		c := p[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return 0, fmt.Errorf("kvcache: index hash %q is not canonical lower-case hex", p)
		}
	}
	return strconv.ParseUint(p, 16, 64)
}

// GlobalIndex holds one published IndexSnapshot per replica behind an
// atomic pointer. Publishing swaps the whole snapshot; probing is a single
// pointer load plus a read-only map walk. There are no locks anywhere.
type GlobalIndex struct {
	slots []atomic.Pointer[IndexSnapshot]
}

// NewGlobalIndex returns an index with one empty slot per replica.
func NewGlobalIndex(replicas int) *GlobalIndex {
	if replicas < 1 {
		panic(fmt.Sprintf("kvcache: global index over %d replicas", replicas))
	}
	return &GlobalIndex{slots: make([]atomic.Pointer[IndexSnapshot], replicas)}
}

// Replicas is the number of slots.
func (g *GlobalIndex) Replicas() int { return len(g.slots) }

// Publish installs snap as replica i's current snapshot, stamping its
// Epoch to the slot's previous epoch plus one. The index takes ownership:
// the caller must not retain or mutate snap after publishing.
func (g *GlobalIndex) Publish(i int, snap *IndexSnapshot) {
	if snap == nil {
		panic("kvcache: publishing nil index snapshot")
	}
	snap.Epoch = g.Epoch(i) + 1
	g.slots[i].Store(snap)
}

// Snapshot returns replica i's latest published snapshot, nil when nothing
// has been published (or i is out of range — crashed sources hand out
// stale indices, so probes tolerate them).
//
//qoserve:hotpath
func (g *GlobalIndex) Snapshot(i int) *IndexSnapshot {
	if i < 0 || i >= len(g.slots) {
		return nil
	}
	return g.slots[i].Load()
}

// Epoch is replica i's current publish epoch (0 before the first publish).
func (g *GlobalIndex) Epoch(i int) uint64 {
	if s := g.Snapshot(i); s != nil {
		return s.Epoch
	}
	return 0
}

// MatchTokens probes replica i's advertised chain coverage without
// touching the replica.
//
//qoserve:hotpath
func (g *GlobalIndex) MatchTokens(i int, chain []uint64) int {
	return g.Snapshot(i).MatchTokens(chain)
}

// BestMatch scans slots [0, n) and returns the replica advertising the
// longest chain coverage and that coverage in tokens. holder is -1 when no
// slot matches anything. Ties keep the lowest index, making routing
// deterministic.
//
//qoserve:hotpath
func (g *GlobalIndex) BestMatch(n int, chain []uint64) (holder, hitTokens int) {
	if n > len(g.slots) {
		n = len(g.slots)
	}
	holder = -1
	for i := 0; i < n; i++ {
		if m := g.Snapshot(i).MatchTokens(chain); m > hitTokens {
			holder, hitTokens = i, m
		}
	}
	return holder, hitTokens
}

// IndexVersion is a counter of membership-affecting mutations (block
// creation, demotion, eviction, reset) since construction. Pin churn on a
// warm cache does not change membership and does not bump the version, so
// "version unchanged" is a cheap steady-state test for "nothing to
// republish".
func (m *Manager) IndexVersion() uint64 { return m.version }

// ExportIndex builds a publishable snapshot of the manager's current block
// membership. The snapshot is independent of the manager; publish it with
// GlobalIndex.Publish.
func (m *Manager) ExportIndex() *IndexSnapshot {
	hashes := make(map[uint64]struct{}, len(m.nodes))
	for h := range m.nodes {
		hashes[h] = struct{}{}
	}
	return &IndexSnapshot{
		BlockTokens: m.blockTokens,
		HBMBlocks:   len(m.nodes) - m.dramUsed,
		DRAMBlocks:  m.dramUsed,
		hashes:      hashes,
	}
}

// TierUtilization reports each tier's occupancy fraction: HBM counts
// allocations plus resident cache against HBM capacity, DRAM counts
// spill-tier residents against DRAM capacity (0 when the tier is
// disabled).
func (m *Manager) TierUtilization() (hbm, dram float64) {
	hbm = m.Utilization()
	if m.dramBlocks > 0 {
		dram = float64(m.dramUsed) / float64(m.dramBlocks)
	}
	return hbm, dram
}
