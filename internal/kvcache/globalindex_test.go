package kvcache

import (
	"fmt"
	"reflect"
	"testing"
)

func TestExportIndexTracksMembership(t *testing.T) {
	m := mustTiered(t, Config{CapacityTokens: 16 * 8, DRAMTokens: 16 * 4})
	idx := NewGlobalIndex(1)

	if v := m.IndexVersion(); v != 0 {
		t.Fatalf("fresh manager version %d", v)
	}
	snap := m.ExportIndex()
	if snap.Blocks() != 0 || snap.HBMBlocks != 0 || snap.DRAMBlocks != 0 {
		t.Fatalf("fresh export not empty: %+v", snap)
	}

	chain := SyntheticChain(1, 0, 4)
	m.AcquirePrefix(1, chain)
	v1 := m.IndexVersion()
	if v1 == 0 {
		t.Fatal("block creation did not bump the index version")
	}
	idx.Publish(0, m.ExportIndex())
	if got := idx.MatchTokens(0, chain); got != 4*m.BlockTokens() {
		t.Fatalf("published match %d tokens, want %d", got, 4*m.BlockTokens())
	}
	if e := idx.Epoch(0); e != 1 {
		t.Fatalf("epoch %d after first publish", e)
	}

	// Pin churn on a warm cache is membership-quiescent.
	m.Release(1)
	m.AcquirePrefix(2, chain)
	m.Release(2)
	if v := m.IndexVersion(); v != v1 {
		t.Fatalf("warm reuse bumped version %d -> %d", v1, v)
	}

	// Demotion and eviction change membership.
	if !m.Grow(9, 16*8) {
		t.Fatal("grow failed")
	}
	if v := m.IndexVersion(); v == v1 {
		t.Fatal("demotion did not bump the index version")
	}
	snap = m.ExportIndex()
	if snap.DRAMBlocks != 4 || snap.HBMBlocks != 0 {
		t.Fatalf("after demotion: %d hbm, %d dram", snap.HBMBlocks, snap.DRAMBlocks)
	}

	vr := m.IndexVersion()
	m.Reset()
	if m.IndexVersion() == vr {
		t.Fatal("reset did not bump the index version")
	}
	idx.Publish(0, m.ExportIndex())
	if got := idx.MatchTokens(0, chain); got != 0 {
		t.Fatalf("match %d tokens after reset", got)
	}
	if e := idx.Epoch(0); e != 2 {
		t.Fatalf("epoch %d after second publish", e)
	}
}

func TestGlobalIndexBestMatch(t *testing.T) {
	idx := NewGlobalIndex(3)
	chain := SyntheticChain(5, 0, 6)

	if h, m := idx.BestMatch(3, chain); h != -1 || m != 0 {
		t.Fatalf("empty index best match (%d, %d)", h, m)
	}

	short, err := NewIndexSnapshot(16, 2, 0, chain[:2])
	if err != nil {
		t.Fatal(err)
	}
	long, err := NewIndexSnapshot(16, 5, 0, chain[:5])
	if err != nil {
		t.Fatal(err)
	}
	idx.Publish(0, short)
	idx.Publish(2, long)

	h, m := idx.BestMatch(3, chain)
	if h != 2 || m != 5*16 {
		t.Fatalf("best match (%d, %d), want (2, 80)", h, m)
	}
	// A scan bounded to the first tier must not see slot 2.
	h, m = idx.BestMatch(2, chain)
	if h != 0 || m != 2*16 {
		t.Fatalf("tier-bounded best match (%d, %d), want (0, 32)", h, m)
	}
	// Out-of-range probes are tolerated (stale source indices).
	if got := idx.MatchTokens(7, chain); got != 0 {
		t.Fatalf("out-of-range match %d", got)
	}
}

func TestIndexSnapshotEncodeDecodeRoundTrip(t *testing.T) {
	m := mustTiered(t, Config{CapacityTokens: 16 * 64, DRAMTokens: 16 * 8})
	m.AcquirePrefix(1, SyntheticChain(3, 0, 7))
	m.AcquirePrefix(2, SyntheticChain(4, 0, 3))
	idx := NewGlobalIndex(1)
	idx.Publish(0, m.ExportIndex())
	snap := idx.Snapshot(0)

	wire := snap.Encode()
	back, err := DecodeIndexSnapshot(wire)
	if err != nil {
		t.Fatalf("decode %q: %v", wire, err)
	}
	if back.Epoch != snap.Epoch || back.BlockTokens != snap.BlockTokens ||
		back.HBMBlocks != snap.HBMBlocks || back.DRAMBlocks != snap.DRAMBlocks {
		t.Fatalf("header changed: %+v != %+v", back, snap)
	}
	if !reflect.DeepEqual(back.hashes, snap.hashes) {
		t.Fatal("hash set changed across round trip")
	}
	if again := back.Encode(); again != wire {
		t.Fatalf("re-encode drifted: %q != %q", again, wire)
	}

	empty, err := DecodeIndexSnapshot("x1:0,16,0,0:")
	if err != nil {
		t.Fatal(err)
	}
	if empty.Blocks() != 0 {
		t.Fatalf("empty wire decoded to %d blocks", empty.Blocks())
	}
}

func TestDecodeIndexSnapshotRejectsMalformed(t *testing.T) {
	cases := []string{
		"",                      // no version
		"v1:0,16,1,0:ab",        // wrong version
		"x1:0,16,1,0",           // no hash section
		"x1:0,16,1:ab",          // short header
		"x1:0,16,1,0,9:ab",      // long header
		"x1:00,16,1,0:ab",       // non-canonical decimal
		"x1:+1,16,1,0:ab",       // sign
		"x1:0,0,0,0:",           // zero block size
		"x1:0,16,2,0:ab",        // tier sum != hashes
		"x1:0,16,1,0:",          // tier counts but empty body
		"x1:0,16,2,0:b-a",       // out of order
		"x1:0,16,2,0:ab-ab",     // duplicate
		"x1:0,16,1,0:0ab",       // leading-zero hash
		"x1:0,16,1,0:AB",        // uppercase hash
		"x1:0,16,1,0:xyz",       // not hex
		"x1:0,16,1,0:ab-",       // trailing separator
		"x1:99999999999999999999,16,1,0:ab", // epoch overflow
		fmt.Sprintf("x1:0,16,%d,0:ab", MaxIndexBlocks+1), // block bound
	}
	for _, c := range cases {
		if _, err := DecodeIndexSnapshot(c); err == nil {
			t.Errorf("accepted malformed index snapshot %q", c)
		}
	}
}

func TestNewIndexSnapshotValidates(t *testing.T) {
	if _, err := NewIndexSnapshot(0, 0, 0, nil); err == nil {
		t.Error("accepted zero block size")
	}
	if _, err := NewIndexSnapshot(16, 1, 0, nil); err == nil {
		t.Error("accepted tier count without hashes")
	}
	if _, err := NewIndexSnapshot(16, 2, 0, []uint64{7, 7}); err == nil {
		t.Error("accepted duplicate hashes")
	}
	if _, err := NewIndexSnapshot(16, -1, 1, []uint64{7}); err == nil {
		t.Error("accepted negative tier count")
	}
}

func TestIndexMatchTokensNilSafe(t *testing.T) {
	var s *IndexSnapshot
	if s.MatchTokens(SyntheticChain(1, 0, 3)) != 0 || s.Blocks() != 0 || s.Contains(1) {
		t.Fatal("nil snapshot must match nothing")
	}
}
