package kvcache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustManager(t *testing.T, capacity, block int) *Manager {
	t.Helper()
	m, err := NewManager(capacity, block)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager(-1, 16); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := NewManager(100, -2); err == nil {
		t.Error("negative block size accepted")
	}
	m, err := NewManager(1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.blockTokens != DefaultBlockTokens {
		t.Errorf("default block size = %d", m.blockTokens)
	}
}

func TestGrowAndRelease(t *testing.T) {
	m := mustManager(t, 160, 16) // 10 blocks

	if !m.Grow(1, 40) { // 3 blocks
		t.Fatal("grow failed with free capacity")
	}
	if got := m.HeldTokens(1); got != 48 {
		t.Errorf("held tokens = %d, want 48 (3 blocks)", got)
	}
	if m.FreeTokens() != 112 {
		t.Errorf("free tokens = %d, want 112", m.FreeTokens())
	}

	// Growing to a smaller size is a no-op success.
	if !m.Grow(1, 10) {
		t.Error("shrink-grow failed")
	}
	if m.HeldTokens(1) != 48 {
		t.Error("shrink-grow changed allocation")
	}

	// Extend within capacity.
	if !m.Grow(1, 100) { // 7 blocks
		t.Fatal("extension failed")
	}
	if m.HeldTokens(1) != 112 {
		t.Errorf("held = %d, want 112", m.HeldTokens(1))
	}

	m.Release(1)
	if m.FreeTokens() != 160 || m.Holders() != 0 {
		t.Errorf("after release: free %d holders %d", m.FreeTokens(), m.Holders())
	}
	m.Release(1) // double release is harmless
	m.checkInvariant()
}

func TestGrowRejectsOverCapacity(t *testing.T) {
	m := mustManager(t, 160, 16)
	if !m.Grow(1, 150) {
		t.Fatal("initial grow failed")
	}
	if m.Grow(2, 32) {
		t.Error("over-capacity grow succeeded")
	}
	// Failed grow leaves state untouched.
	if m.HeldTokens(2) != 0 {
		t.Error("failed grow left allocation")
	}
	if m.Grow(2, 16) { // only 0 blocks free (150 tokens = 10 blocks)
		t.Error("grow succeeded with zero free blocks")
	}
	m.checkInvariant()
}

func TestCanGrow(t *testing.T) {
	m := mustManager(t, 160, 16)
	if !m.CanGrow(1, 160) {
		t.Error("CanGrow full capacity = false")
	}
	if m.CanGrow(1, 161) {
		t.Error("CanGrow beyond capacity = true")
	}
	m.Grow(1, 80)
	// Request 1 already holds 5 blocks; growing to 160 needs 5 more — fits.
	if !m.CanGrow(1, 160) {
		t.Error("CanGrow extension = false")
	}
	// A second request can't take 96 tokens (6 blocks) when only 5 remain.
	if m.CanGrow(2, 96) {
		t.Error("CanGrow over free = true")
	}
}

func TestUtilization(t *testing.T) {
	m := mustManager(t, 160, 16)
	if m.Utilization() != 0 {
		t.Errorf("empty utilization = %v", m.Utilization())
	}
	m.Grow(1, 80)
	if m.Utilization() != 0.5 {
		t.Errorf("utilization = %v, want 0.5", m.Utilization())
	}
	m.Grow(2, 80)
	if m.Utilization() != 1 {
		t.Errorf("utilization = %v, want 1", m.Utilization())
	}
	m.Release(1)
	m.Release(2)
	if m.PeakUtilization() != 1 {
		t.Errorf("peak utilization = %v, want 1", m.PeakUtilization())
	}
	// Degenerate zero-capacity manager reports full.
	z := mustManager(t, 0, 16)
	if z.Utilization() != 1 || z.PeakUtilization() != 1 {
		t.Error("zero-capacity manager should report full")
	}
}

// Property: under any interleaving of grows and releases, block accounting
// is conserved and free tokens never go negative.
func TestAccountingProperty(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		m, err := NewManager(10000, 16)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		live := map[uint64]bool{}
		for _, op := range ops {
			id := uint64(op % 32)
			if rng.Intn(3) == 0 && live[id] {
				m.Release(id)
				delete(live, id)
			} else {
				tokens := int(op % 4000)
				if m.Grow(id, tokens) && tokens > 0 {
					live[id] = true
				}
			}
			if m.FreeTokens() < 0 || m.Holders() != len(live) {
				return false
			}
			m.checkInvariant()
		}
		for id := range live {
			m.Release(id)
		}
		return m.FreeTokens() == m.CapacityTokens()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGrowRelease(b *testing.B) {
	m, _ := NewManager(1<<20, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := uint64(i % 64)
		m.Grow(id, 2048)
		if i%2 == 1 {
			m.Release(id)
		}
	}
}
