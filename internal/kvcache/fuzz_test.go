package kvcache

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// FuzzParseChain exercises the gateway's prefix_chain wire parser with
// hostile input. Accepted chains must be bounded, and formatting an accepted
// chain must parse back to the identical hashes (the format is canonical
// even though the parser tolerates leading zeros).
func FuzzParseChain(f *testing.F) {
	f.Add("")
	f.Add("0")
	f.Add("a-b-c")
	f.Add("ffffffffffffffff")
	f.Add(FormatChain(SyntheticChain(7, 0, 8)))
	f.Add("deadbeef-00ff-1")
	f.Add("-")
	f.Add("g")
	f.Add("0123456789abcdef0")
	// Fast-parser branch seeds: mixed-case hex, rejected prefixes/signs the
	// stdlib parser also refuses, dangling separators, and a near-limit chain.
	f.Add("DeadBEEF-AB")
	f.Add("0x1f")
	f.Add("+1")
	f.Add("a--b")
	f.Add("a-")
	f.Add("1_0")
	f.Add("ffff\xffff")
	f.Add(FormatChain(SyntheticChain(11, 32, MaxChainBlocks)))
	f.Fuzz(func(t *testing.T, s string) {
		chain, err := ParseChain(s)
		ref, refErr := splitParseChain(s)
		if (err == nil) != (refErr == nil) {
			t.Fatalf("parser disagreement on %q: fast err=%v, reference err=%v", s, err, refErr)
		}
		if err != nil {
			if err.Error() != refErr.Error() {
				t.Fatalf("error text drifted on %q: fast %q, reference %q", s, err, refErr)
			}
			return
		}
		if !reflect.DeepEqual(chain, ref) {
			t.Fatalf("parser disagreement on %q: fast %x, reference %x", s, chain, ref)
		}
		if len(chain) > MaxChainBlocks {
			t.Fatalf("accepted chain of %d blocks", len(chain))
		}
		if s == "" {
			if chain != nil {
				t.Fatal("empty input parsed to non-nil chain")
			}
			return
		}
		round, err := ParseChain(FormatChain(chain))
		if err != nil {
			t.Fatalf("canonical form rejected: %v", err)
		}
		if !reflect.DeepEqual(round, chain) {
			t.Fatalf("round trip changed chain: %x != %x", round, chain)
		}
		if got, want := string(AppendChain(nil, chain)), FormatChain(chain); got != want {
			t.Fatalf("AppendChain diverged from FormatChain: %q != %q", got, want)
		}
	})
}

// splitParseChain is the original strings.Split-based chain parser, kept as
// the fuzz oracle for the alloc-free fast path in ParseChainInto: both must
// accept the same inputs, produce the same hashes, and emit the same error
// text.
func splitParseChain(s string) ([]uint64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, "-")
	if len(parts) > MaxChainBlocks {
		return nil, fmt.Errorf("kvcache: chain of %d blocks exceeds %d", len(parts), MaxChainBlocks)
	}
	chain := make([]uint64, len(parts))
	for i, p := range parts {
		if p == "" || len(p) > 16 {
			return nil, fmt.Errorf("kvcache: chain hash %q at position %d", p, i)
		}
		h, err := strconv.ParseUint(p, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("kvcache: chain hash %q at position %d", p, i)
		}
		chain[i] = h
	}
	return chain, nil
}

// FuzzGlobalIndexDecode exercises the global-prefix-index snapshot wire
// parser with hostile input. Anything accepted must satisfy the snapshot
// invariants (tier counts summing to the hash count, bounded sizes) and
// re-encode to the identical wire string — the format is strictly
// canonical, so decode-encode is the identity on accepted input.
func FuzzGlobalIndexDecode(f *testing.F) {
	f.Add("")
	f.Add("x1:0,16,0,0:")
	f.Add("x1:3,16,2,1:1-ab-ffffffffffffffff")
	f.Add("x1:1,1,1,0:0")
	f.Add("v1:0,0,0,0,0,0")
	f.Add("x1:0,16,2,0:ab-ab")
	f.Add("x1:0,16,2,0:b-a")
	f.Add("x1:00,16,1,0:ab")
	f.Add("x1:0,16,1,0:0ab")
	f.Add("x1:0,16,1,0:AB")
	func() {
		m, err := NewTiered(Config{CapacityTokens: 16 * 8, DRAMTokens: 16 * 4})
		if err != nil {
			panic(err)
		}
		m.AcquirePrefix(1, SyntheticChain(9, 0, 5))
		idx := NewGlobalIndex(1)
		idx.Publish(0, m.ExportIndex())
		f.Add(idx.Snapshot(0).Encode())
	}()
	f.Fuzz(func(t *testing.T, s string) {
		snap, err := DecodeIndexSnapshot(s)
		if err != nil {
			return
		}
		if snap.HBMBlocks+snap.DRAMBlocks != snap.Blocks() {
			t.Fatalf("accepted snapshot with tiers %d+%d over %d hashes",
				snap.HBMBlocks, snap.DRAMBlocks, snap.Blocks())
		}
		if snap.Blocks() > MaxIndexBlocks {
			t.Fatalf("accepted %d blocks", snap.Blocks())
		}
		if snap.BlockTokens < 1 {
			t.Fatalf("accepted block size %d", snap.BlockTokens)
		}
		if got := snap.Encode(); got != s {
			t.Fatalf("decode-encode changed wire form: %q != %q", got, s)
		}
	})
}
