package kvcache

import (
	"reflect"
	"testing"
)

// FuzzParseChain exercises the gateway's prefix_chain wire parser with
// hostile input. Accepted chains must be bounded, and formatting an accepted
// chain must parse back to the identical hashes (the format is canonical
// even though the parser tolerates leading zeros).
func FuzzParseChain(f *testing.F) {
	f.Add("")
	f.Add("0")
	f.Add("a-b-c")
	f.Add("ffffffffffffffff")
	f.Add(FormatChain(SyntheticChain(7, 0, 8)))
	f.Add("deadbeef-00ff-1")
	f.Add("-")
	f.Add("g")
	f.Add("0123456789abcdef0")
	f.Fuzz(func(t *testing.T, s string) {
		chain, err := ParseChain(s)
		if err != nil {
			return
		}
		if len(chain) > MaxChainBlocks {
			t.Fatalf("accepted chain of %d blocks", len(chain))
		}
		if s == "" {
			if chain != nil {
				t.Fatal("empty input parsed to non-nil chain")
			}
			return
		}
		round, err := ParseChain(FormatChain(chain))
		if err != nil {
			t.Fatalf("canonical form rejected: %v", err)
		}
		if !reflect.DeepEqual(round, chain) {
			t.Fatalf("round trip changed chain: %x != %x", round, chain)
		}
	})
}
