package kvcache

import (
	"reflect"
	"testing"
)

// FuzzParseChain exercises the gateway's prefix_chain wire parser with
// hostile input. Accepted chains must be bounded, and formatting an accepted
// chain must parse back to the identical hashes (the format is canonical
// even though the parser tolerates leading zeros).
func FuzzParseChain(f *testing.F) {
	f.Add("")
	f.Add("0")
	f.Add("a-b-c")
	f.Add("ffffffffffffffff")
	f.Add(FormatChain(SyntheticChain(7, 0, 8)))
	f.Add("deadbeef-00ff-1")
	f.Add("-")
	f.Add("g")
	f.Add("0123456789abcdef0")
	f.Fuzz(func(t *testing.T, s string) {
		chain, err := ParseChain(s)
		if err != nil {
			return
		}
		if len(chain) > MaxChainBlocks {
			t.Fatalf("accepted chain of %d blocks", len(chain))
		}
		if s == "" {
			if chain != nil {
				t.Fatal("empty input parsed to non-nil chain")
			}
			return
		}
		round, err := ParseChain(FormatChain(chain))
		if err != nil {
			t.Fatalf("canonical form rejected: %v", err)
		}
		if !reflect.DeepEqual(round, chain) {
			t.Fatalf("round trip changed chain: %x != %x", round, chain)
		}
	})
}

// FuzzGlobalIndexDecode exercises the global-prefix-index snapshot wire
// parser with hostile input. Anything accepted must satisfy the snapshot
// invariants (tier counts summing to the hash count, bounded sizes) and
// re-encode to the identical wire string — the format is strictly
// canonical, so decode-encode is the identity on accepted input.
func FuzzGlobalIndexDecode(f *testing.F) {
	f.Add("")
	f.Add("x1:0,16,0,0:")
	f.Add("x1:3,16,2,1:1-ab-ffffffffffffffff")
	f.Add("x1:1,1,1,0:0")
	f.Add("v1:0,0,0,0,0,0")
	f.Add("x1:0,16,2,0:ab-ab")
	f.Add("x1:0,16,2,0:b-a")
	f.Add("x1:00,16,1,0:ab")
	f.Add("x1:0,16,1,0:0ab")
	f.Add("x1:0,16,1,0:AB")
	func() {
		m, err := NewTiered(Config{CapacityTokens: 16 * 8, DRAMTokens: 16 * 4})
		if err != nil {
			panic(err)
		}
		m.AcquirePrefix(1, SyntheticChain(9, 0, 5))
		idx := NewGlobalIndex(1)
		idx.Publish(0, m.ExportIndex())
		f.Add(idx.Snapshot(0).Encode())
	}()
	f.Fuzz(func(t *testing.T, s string) {
		snap, err := DecodeIndexSnapshot(s)
		if err != nil {
			return
		}
		if snap.HBMBlocks+snap.DRAMBlocks != snap.Blocks() {
			t.Fatalf("accepted snapshot with tiers %d+%d over %d hashes",
				snap.HBMBlocks, snap.DRAMBlocks, snap.Blocks())
		}
		if snap.Blocks() > MaxIndexBlocks {
			t.Fatalf("accepted %d blocks", snap.Blocks())
		}
		if snap.BlockTokens < 1 {
			t.Fatalf("accepted block size %d", snap.BlockTokens)
		}
		if got := snap.Encode(); got != s {
			t.Fatalf("decode-encode changed wire form: %q != %q", got, s)
		}
	})
}
