package disagg

import (
	"testing"

	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/qos"
	"qoserve/internal/sched"
	"qoserve/internal/sim"
)

func pipelineConfig(t *testing.T) PipelineConfig {
	t.Helper()
	mc := model.Llama3_8B_A100_TP1()
	return PipelineConfig{
		Model:           mc,
		PrefillReplicas: 1,
		PrefillFactory: func() sched.Scheduler {
			return sched.NewSarathi(sched.EDF, DefaultChunk)
		},
		DecodeReplicas: 2,
		StrictestTBT:   50 * sim.Millisecond,
	}
}

func TestDeriveDecodeBatch(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	b := DeriveDecodeBatch(mc, 50*sim.Millisecond, 2048)
	if b < 8 || b > 4096 {
		t.Fatalf("derived batch = %d", b)
	}
	// The derived batch fits, batch+1 does not (or the cap was hit).
	if got := mc.BatchTime(decodeShape(b, 2048)); got > 50*sim.Millisecond {
		t.Errorf("batch %d takes %v > 50ms", b, got)
	}
	if b < 4096 {
		if got := mc.BatchTime(decodeShape(b+1, 2048)); got <= 50*sim.Millisecond {
			t.Errorf("batch %d+1 still fits (%v); not maximal", b, got)
		}
	}
	// Degenerate TBT falls back to a safe default; impossible TBT gives 1.
	if DeriveDecodeBatch(mc, 0, 2048) != 64 {
		t.Error("zero TBT default not applied")
	}
	if DeriveDecodeBatch(mc, sim.Microsecond, 2048) != 1 {
		t.Error("impossible TBT should cap at batch 1")
	}
}

func TestPipelineDrainsAndPacesTBT(t *testing.T) {
	trace := gen(t, 40, 1.5)
	res, err := RunPipeline(pipelineConfig(t), trace, sim.Forever)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summary
	if got := sum.CompletionRate(metrics.All); got != 1 {
		t.Fatalf("completion rate = %v", got)
	}
	if res.MaxDecodeBatch <= 0 {
		t.Fatal("no decode batch derived")
	}
	if res.TransferTimeP50 <= 0 {
		t.Fatal("no transfer latency recorded")
	}
	// Decode pacing: every inter-token gap is produced by a batch capped
	// for 50 ms, so worst TBT should stay in that regime (allowing
	// admission waits at the decode tier).
	if worst := sum.MaxTBTQuantile(metrics.All, 0.5); worst > 0.2 {
		t.Errorf("median worst TBT %vs implausibly high", worst)
	}
	// End-to-end TTFT includes the transfer: it must exceed the pure
	// prefill-side TTFT of the same trace.
	prefOnly, err := Run(pipelineConfig(t).Model, 1, func() sched.Scheduler {
		return sched.NewSarathi(sched.EDF, DefaultChunk)
	}, gen(t, 40, 1.5), sim.Forever)
	if err != nil {
		t.Fatal(err)
	}
	if sum.TTFTQuantile(metrics.All, 0.5) <= prefOnly.TTFTQuantile(metrics.All, 0.5) {
		t.Error("end-to-end TTFT not above prefill-only TTFT (transfer missing?)")
	}
}

func TestPipelineTransferBandwidthMatters(t *testing.T) {
	fast := pipelineConfig(t)
	fast.TransferBandwidth = 200e9
	slow := pipelineConfig(t)
	slow.TransferBandwidth = 2e9

	fastRes, err := RunPipeline(fast, gen(t, 30, 1), sim.Forever)
	if err != nil {
		t.Fatal(err)
	}
	slowRes, err := RunPipeline(slow, gen(t, 30, 1), sim.Forever)
	if err != nil {
		t.Fatal(err)
	}
	if slowRes.TransferTimeP50 <= fastRes.TransferTimeP50 {
		t.Errorf("slow link transfer %v not above fast link %v",
			slowRes.TransferTimeP50, fastRes.TransferTimeP50)
	}
	slowTTFT := slowRes.Summary.TTFTQuantile(metrics.All, 0.5)
	fastTTFT := fastRes.Summary.TTFTQuantile(metrics.All, 0.5)
	if slowTTFT <= fastTTFT {
		t.Errorf("slow-link TTFT %v not above fast-link %v", slowTTFT, fastTTFT)
	}
}

func TestPipelineValidation(t *testing.T) {
	cfg := pipelineConfig(t)
	cfg.PrefillReplicas = 0
	if _, err := RunPipeline(cfg, gen(t, 5, 1), sim.Forever); err == nil {
		t.Error("zero prefill replicas accepted")
	}
	cfg = pipelineConfig(t)
	cfg.PrefillFactory = nil
	if _, err := RunPipeline(cfg, gen(t, 5, 1), sim.Forever); err == nil {
		t.Error("nil factory accepted")
	}
	cfg = pipelineConfig(t)
	cfg.Model.TP = 0
	if _, err := RunPipeline(cfg, gen(t, 5, 1), sim.Forever); err == nil {
		t.Error("bad model config accepted")
	}
}

func TestPipelineInteractiveTTFT(t *testing.T) {
	// A single interactive request should get its first token well within
	// its 6s TTFT: prefill (~0.2s at 8K chunk) + transfer (~ms).
	trace := gen(t, 1, 1)
	trace[0].Class = qos.Table3()[0]
	trace[0].PromptTokens = 2000
	trace[0].DecodeTokens = 10
	res, err := RunPipeline(pipelineConfig(t), trace, sim.Forever)
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Summary.ViolationRate(metrics.All); v != 0 {
		t.Errorf("lone request violated: %v", v)
	}
	ttft, ok := trace[0].TTFT()
	if !ok || ttft > sim.Second {
		t.Errorf("TTFT = %v ok=%v", ttft, ok)
	}
}
