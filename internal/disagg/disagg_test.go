package disagg

import (
	"testing"

	"qoserve/internal/cluster"
	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/qos"
	"qoserve/internal/request"
	"qoserve/internal/sched"
	"qoserve/internal/sim"
	"qoserve/internal/workload"
)

var testDS = workload.Dataset{Name: "tiny",
	Prompt: workload.TokenDist{P50: 600, P90: 2000},
	Decode: workload.TokenDist{P50: 40, P90: 300},
}

func gen(t testing.TB, n int, qps float64) []*request.Request {
	t.Helper()
	reqs, err := workload.Generate(workload.Spec{
		Dataset:  testDS,
		Tiers:    workload.EqualTiers(qos.Table3()),
		Arrivals: workload.Poisson{QPS: qps},
		Requests: n,
		Seed:     21,
	})
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func TestPrefillOnlyProjection(t *testing.T) {
	trace := gen(t, 50, 3)
	proj := PrefillOnly(trace)
	if len(proj) != len(trace) {
		t.Fatalf("projection length %d", len(proj))
	}
	for i, r := range proj {
		if r.DecodeTokens != 1 {
			t.Fatalf("request %d decode tokens = %d", i, r.DecodeTokens)
		}
		if r.PromptTokens != trace[i].PromptTokens || r.Arrival != trace[i].Arrival {
			t.Fatal("projection altered workload fields")
		}
		if r == trace[i] {
			t.Fatal("projection aliases original")
		}
	}
}

func TestRunCompletesAtFirstToken(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	trace := gen(t, 40, 2)
	sum, err := Run(mc, 1, func() sched.Scheduler {
		return sched.NewSarathi(sched.FCFS, DefaultChunk)
	}, trace, sim.Forever)
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.CompletionRate(metrics.All); got != 1 {
		t.Fatalf("completion rate = %v", got)
	}
	for _, o := range sum.Outcomes {
		if o.TTFT != o.TTLT {
			t.Fatalf("prefill-only request has TTFT %v != TTLT %v", o.TTFT, o.TTLT)
		}
	}
}

func TestLargeChunkBeatsSmallChunkOnPrefillNodes(t *testing.T) {
	// With no TBT pressure, the 8K chunk should deliver clearly better
	// prefill latency than a 256 chunk at the same load.
	mc := model.Llama3_8B_A100_TP1()
	big, err := Run(mc, 1, func() sched.Scheduler {
		return sched.NewSarathi(sched.FCFS, DefaultChunk)
	}, gen(t, 60, 3), sim.Forever)
	if err != nil {
		t.Fatal(err)
	}
	small, err := Run(mc, 1, func() sched.Scheduler {
		return sched.NewSarathi(sched.FCFS, 256)
	}, gen(t, 60, 3), sim.Forever)
	if err != nil {
		t.Fatal(err)
	}
	if big.TTFTQuantile(metrics.All, 0.9) >= small.TTFTQuantile(metrics.All, 0.9) {
		t.Errorf("8K chunk p90 TTFT %v not better than 256 chunk %v",
			big.TTFTQuantile(metrics.All, 0.9), small.TTFTQuantile(metrics.All, 0.9))
	}
}

func TestMaxGoodputDisagg(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	genQPS := func(qps float64) ([]*request.Request, error) {
		return workload.Generate(workload.Spec{
			Dataset:  testDS,
			Tiers:    workload.EqualTiers(qos.Table3()),
			Arrivals: workload.Poisson{QPS: qps},
			Requests: 120,
			Seed:     23,
		})
	}
	qps, sum, err := MaxGoodput(mc, func() sched.Scheduler {
		return sched.NewSarathi(sched.EDF, DefaultChunk)
	}, genQPS, cluster.SearchOptions{Tolerance: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if qps <= 0 {
		t.Fatalf("capacity = %v", qps)
	}
	if sum.ViolationRate(metrics.All) > 0.01 {
		t.Fatalf("capacity run violates: %v", sum.ViolationRate(metrics.All))
	}
}
