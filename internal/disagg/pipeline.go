package disagg

import (
	"fmt"
	"sort"

	"qoserve/internal/cluster"
	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/request"
	"qoserve/internal/sim"
)

// The paper evaluates only the prefill side of PD disaggregation and holds
// the decode tier fixed ("efficiently supporting different TBT SLOs in the
// decode nodes is left to future work"). This file builds that future-work
// substrate: an end-to-end pipeline where prompts are prefilled on a
// prefill cluster, the KV cache is shipped over an interconnect, and
// decoding proceeds on dedicated decode nodes batched under a cap chosen
// for the strictest TBT.

// PipelineConfig describes an end-to-end disaggregated deployment.
type PipelineConfig struct {
	Model model.Config

	PrefillReplicas int
	// PrefillFactory builds the scheduler for each prefill node (e.g.
	// QoServe with an 8K chunk cap, or Sarathi-EDF).
	PrefillFactory cluster.SchedulerFactory

	DecodeReplicas int
	// MaxDecodeBatch caps a decode node's batch so iteration latency
	// meets the strictest TBT. Zero derives it from the cost model and
	// StrictestTBT.
	MaxDecodeBatch int
	// StrictestTBT is used to derive MaxDecodeBatch when unset.
	StrictestTBT sim.Time

	// TransferBandwidth is the prefill->decode interconnect, bytes/s
	// (default 64 GB/s, an NVLink-class link).
	TransferBandwidth float64
}

func (c PipelineConfig) validate() error {
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if c.PrefillReplicas <= 0 || c.DecodeReplicas <= 0 {
		return fmt.Errorf("disagg: replica counts (%d,%d) must be positive",
			c.PrefillReplicas, c.DecodeReplicas)
	}
	if c.PrefillFactory == nil {
		return fmt.Errorf("disagg: nil prefill factory")
	}
	return nil
}

// DeriveDecodeBatch returns the largest decode-only batch whose iteration
// latency stays within tbt, assuming contexts of typicalCtx tokens.
func DeriveDecodeBatch(mc model.Config, tbt sim.Time, typicalCtx int) int {
	if tbt <= 0 {
		return 64
	}
	lo, hi := 1, 4096
	if mc.BatchTime(decodeShape(1, typicalCtx)) > tbt {
		return 1
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if mc.BatchTime(decodeShape(mid, typicalCtx)) <= tbt {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

func decodeShape(n, ctx int) model.BatchShape {
	s := model.BatchShape{DecodeCtx: make([]int, n)}
	for i := range s.DecodeCtx {
		s.DecodeCtx[i] = ctx
	}
	return s
}

// decodeNode runs decode-only batches capped at maxBatch, FCFS admission.
type decodeNode struct {
	cfg      model.Config
	engine   *sim.Engine
	maxBatch int
	active   []*request.Request
	waiting  []*request.Request
	busy     bool
}

func (d *decodeNode) enqueue(r *request.Request) {
	d.waiting = append(d.waiting, r)
	if !d.busy {
		d.iterate(d.engine.Now())
	}
}

// load is the node's queue pressure, used for least-loaded routing.
func (d *decodeNode) load() int { return len(d.active) + len(d.waiting) }

func (d *decodeNode) iterate(now sim.Time) {
	// Admit waiters up to the batch cap.
	for len(d.active) < d.maxBatch && len(d.waiting) > 0 {
		d.active = append(d.active, d.waiting[0])
		d.waiting = d.waiting[1:]
	}
	if len(d.active) == 0 {
		d.busy = false
		return
	}
	d.busy = true
	batch := append([]*request.Request(nil), d.active...)
	shape := model.BatchShape{DecodeCtx: make([]int, len(batch))}
	for i, r := range batch {
		shape.DecodeCtx[i] = r.ContextLen()
	}
	exec := d.cfg.BatchTime(shape)
	d.engine.At(now+exec, sim.EventFunc(func(_ *sim.Engine, end sim.Time) {
		live := d.active[:0]
		for _, r := range batch {
			r.RecordDecodeToken(end)
			if r.Phase() != request.Done {
				live = append(live, r)
			}
		}
		d.active = live
		d.iterate(end)
	}))
}

// PipelineResult carries the end-to-end summary plus tier statistics.
type PipelineResult struct {
	Summary *metrics.Summary
	// MaxDecodeBatch actually used.
	MaxDecodeBatch int
	// TransferTimeP50 is the median KV-transfer latency.
	TransferTimeP50 sim.Time
}

// RunPipeline simulates the full disaggregated pipeline over the trace:
// prefill on the prefill cluster (requests projected to prefill-only
// clones), KV transfer, then decode on the least-loaded decode node. The
// original requests carry the end-to-end timestamps: the first token is
// stamped when the transferred KV reaches a decode node, and subsequent
// tokens as the decode tier paces them.
func RunPipeline(cfg PipelineConfig, trace []*request.Request, horizon sim.Time) (*PipelineResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.TransferBandwidth <= 0 {
		cfg.TransferBandwidth = 64e9
	}
	maxBatch := cfg.MaxDecodeBatch
	if maxBatch <= 0 {
		tbt := cfg.StrictestTBT
		if tbt <= 0 {
			tbt = 50 * sim.Millisecond
		}
		maxBatch = DeriveDecodeBatch(cfg.Model, tbt, typicalContext(trace))
	}

	engine := sim.NewEngine()
	prefillTier, err := cluster.New(engine, cfg.Model, cfg.PrefillReplicas, cfg.PrefillFactory)
	if err != nil {
		return nil, err
	}
	decodeNodes := make([]*decodeNode, cfg.DecodeReplicas)
	for i := range decodeNodes {
		decodeNodes[i] = &decodeNode{cfg: cfg.Model, engine: engine, maxBatch: maxBatch}
	}

	// Each original request is paired with a prefill-only clone served by
	// the prefill tier; the clone's completion (its FinishedAt is stamped
	// the moment prefill ends, since it has DecodeTokens=1) triggers the
	// KV transfer and the decode handoff.
	clones := PrefillOnly(trace)
	var transferTimes []sim.Time
	for i := range clones {
		clone := clones[i]
		engine.AtPriority(clone.Arrival, -1, sim.EventFunc(func(_ *sim.Engine, _ sim.Time) {
			prefillTier.Submit(clone)
		}))
	}

	// A fine-grained periodic sweep translates clone completions into
	// transfer events; the 1 ms period bounds detection skew, negligible
	// at the latencies involved. The sweep tracks only in-flight clones: a
	// clone enters the pending set once its arrival passes (it cannot be
	// Done before it is submitted) and leaves on handoff, so each tick
	// costs O(in-flight) rather than O(trace). Admission relies on the
	// trace being arrival-ordered — admitted indices stay ascending, which
	// preserves the full-scan's index-order processing exactly; an
	// unsorted trace falls back to admitting everything up front.
	const sweepPeriod = sim.Millisecond
	pending := make([]int32, 0, len(trace))
	admit := 0 // first trace index not yet in the pending set
	arrivalSorted := true
	for i := 1; i < len(clones); i++ {
		if clones[i].Arrival < clones[i-1].Arrival {
			arrivalSorted = false
			break
		}
	}
	if !arrivalSorted {
		for i := range clones {
			pending = append(pending, int32(i))
		}
		admit = len(clones)
	}
	var sweep func(e *sim.Engine, now sim.Time)
	sweep = func(e *sim.Engine, now sim.Time) {
		for admit < len(clones) && clones[admit].Arrival <= now {
			pending = append(pending, int32(admit))
			admit++
		}
		kept := pending[:0]
		for _, idx := range pending {
			i := int(idx)
			if clones[i].Phase() != request.Done {
				kept = append(kept, idx)
				continue
			}
			orig, clone := trace[i], clones[i]
			// KV transfer: full prompt context across the interconnect.
			bytes := cfg.Model.Model.KVBytesPerToken() * float64(orig.PromptTokens)
			dt := sim.FromSeconds(bytes / cfg.TransferBandwidth)
			transferTimes = append(transferTimes, dt)
			arriveAt := clone.FinishedAt + dt
			if arriveAt < now {
				arriveAt = now
			}
			e.At(arriveAt, sim.EventFunc(func(_ *sim.Engine, t sim.Time) {
				// First token materializes at the decode tier.
				orig.RecordPrefill(orig.PromptTokens, t)
				if orig.Phase() == request.Done {
					return // single-token request
				}
				node := decodeNodes[0]
				for _, d := range decodeNodes[1:] {
					if d.load() < node.load() {
						node = d
					}
				}
				node.enqueue(orig)
			}))
		}
		pending = kept
		if len(pending) > 0 || admit < len(clones) {
			e.At(now+sweepPeriod, sim.EventFunc(sweep))
		}
	}
	engine.At(0, sim.EventFunc(sweep))

	end := engine.RunUntil(horizon)
	res := &PipelineResult{
		Summary:        metrics.NewSummary(trace, end, cfg.PrefillReplicas+cfg.DecodeReplicas),
		MaxDecodeBatch: maxBatch,
	}
	if len(transferTimes) > 0 {
		res.TransferTimeP50 = medianTime(transferTimes)
	}
	return res, nil
}

// typicalContext estimates the median final context of the trace.
func typicalContext(trace []*request.Request) int {
	if len(trace) == 0 {
		return 2048
	}
	vals := make([]int, len(trace))
	for i, r := range trace {
		vals[i] = r.TotalTokens()
	}
	return medianInt(vals)
}

func medianInt(v []int) int {
	cp := append([]int(nil), v...)
	sort.Ints(cp)
	return cp[len(cp)/2]
}

func medianTime(v []sim.Time) sim.Time {
	ints := make([]int, len(v))
	for i, t := range v {
		ints[i] = int(t)
	}
	return sim.Time(medianInt(ints))
}
