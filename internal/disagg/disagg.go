// Package disagg models prefill-decode disaggregated serving (§4.1.3).
//
// In PD disaggregation, prefill nodes run prompts to completion and ship the
// KV cache to a separate decode tier. The paper evaluates QoServe's hybrid
// prioritization and eager relegation on the *prefill* nodes only: the
// decode tier is identical across schemes (it runs at a batch size meeting
// the strictest TBT), so prefill goodput directly determines the number of
// prefill replicas required. Because no decodes share the prefill replica,
// there is no TBT pressure and a large default chunk (8K) is used; dynamic
// chunking has little room to help, which is why the paper's gains here are
// smaller than under colocation.
package disagg

import (
	"qoserve/internal/cluster"
	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/request"
	"qoserve/internal/sim"
	"qoserve/internal/workload"
)

// DefaultChunk is the large prefill budget used on disaggregated prefill
// nodes (no TBT constraint applies there).
const DefaultChunk = 8192

// PrefillOnly converts a trace to its prefill-node equivalent: each request
// completes at its first token (DecodeTokens=1), so TTFT/TTLT collapse to
// prompt-completion latency and the existing schedulers, cost model, and
// violation accounting apply unchanged.
func PrefillOnly(trace []*request.Request) []*request.Request {
	out := workload.Clone(trace)
	for _, r := range out {
		r.DecodeTokens = 1
	}
	return out
}

// Run simulates n prefill replicas serving the prefill-only projection of
// the trace and returns the summary over the projected requests.
func Run(cfg model.Config, n int, factory cluster.SchedulerFactory, trace []*request.Request, horizon sim.Time) (*metrics.Summary, error) {
	return cluster.RunShared(cfg, n, factory, PrefillOnly(trace), horizon)
}

// MaxGoodput finds the maximum per-prefill-replica QPS within the violation
// target, mirroring cluster.MaxGoodput for the disaggregated mode.
func MaxGoodput(cfg model.Config, factory cluster.SchedulerFactory, gen cluster.TraceGen, opts cluster.SearchOptions) (float64, *metrics.Summary, error) {
	wrapped := func(qps float64) ([]*request.Request, error) {
		trace, err := gen(qps)
		if err != nil {
			return nil, err
		}
		return PrefillOnly(trace), nil
	}
	return cluster.MaxGoodput(cfg, factory, wrapped, opts)
}
