// Package request models the lifecycle of one inference request as it moves
// through a serving replica: queued -> prefill -> decode -> done, with the
// token-level timestamps needed to evaluate TTFT / TBT / TTLT SLOs.
package request

import (
	"fmt"

	"qoserve/internal/qos"
	"qoserve/internal/sim"
)

// Phase is the position of a request in its lifecycle.
type Phase int

// Lifecycle phases.
const (
	Queued  Phase = iota // arrived, no prefill tokens processed yet
	Prefill              // some, but not all, prompt tokens processed
	Decode               // prompt done, generating output tokens
	Done                 // all output tokens generated
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case Queued:
		return "queued"
	case Prefill:
		return "prefill"
	case Decode:
		return "decode"
	case Done:
		return "done"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Request is one inference request. Fields in the first block are immutable
// workload inputs; the second block is mutable execution state owned by the
// replica that serves the request.
//
// DecodeTokens is ground truth known only to the simulator: schedulers must
// not read it directly (the paper's point is that decode length is unknown
// at scheduling time) — they use EstDecodeTokens, populated from per-app
// history.
type Request struct {
	ID           uint64
	App          string // application identifier, keys decode-length history
	Class        qos.Class
	Priority     qos.Priority
	Arrival      sim.Time
	PromptTokens int
	DecodeTokens int // ground truth output length (>= 1)

	// EstDecodeTokens is the scheduler's estimate of DecodeTokens
	// (per-app mean + 2 sigma in QoServe). Zero means no estimate.
	EstDecodeTokens int

	// PrefixHashes is the request's prefix hash chain (one cumulative
	// hash per full prompt block, see kvcache.ExtendChain), or nil when
	// the prompt shares no prefix. Like the other workload inputs it is
	// immutable; the serving layer matches it against each replica's
	// prefix cache.
	PrefixHashes []uint64

	// Relegated marks a request moved to the relegated queue by QoServe's
	// eager relegation; it is served opportunistically.
	Relegated bool

	// Execution state.
	PrefilledTokens int
	// PrefixHitTokens is the prompt tokens credited from the serving
	// replica's prefix cache at admission: PrefilledTokens starts at this
	// value (see ApplyPrefixHit), so chunk planners simply see less
	// remaining prefill. Always < PromptTokens — the final prompt token is
	// never cached, so every request runs at least one prefill iteration.
	PrefixHitTokens int
	DecodedTokens   int      // output tokens emitted (first token counts)
	FirstTokenAt    sim.Time // valid when DecodedTokens >= 1
	FinishedAt      sim.Time // valid when Phase() == Done
	LastTokenAt     sim.Time // time of most recent output token
	MaxTBT          sim.Time // largest inter-token gap observed
	// TBTViolations counts output tokens that both missed their Eq. 2
	// deadline (arrival + TTFT + (n-1)*TBT) and arrived more than one TBT
	// after the previous token. Anchoring deadlines at arrival means
	// slack from an early prefill may be spent later without penalty
	// (exactly what dynamic chunking exploits), while the gap condition
	// keeps a request that fell behind once — an already-counted TTFT
	// miss — from re-counting every correctly-paced subsequent token.
	TBTViolations int

	// Retries counts re-enqueues after replica failures. Each retry
	// discards all execution progress (the KV cache died with the
	// replica) but preserves Arrival, so deadlines and priority keys are
	// unchanged: a retried request competes exactly as if it had queued
	// since its original arrival.
	Retries int
	// FailedReason is non-empty once the serving layer has permanently
	// given up on the request (retry budget exhausted, no healthy
	// replica). A failed request never completes and is reported as an
	// SLO violation rather than silently dropped.
	FailedReason string
}

// Validate reports an input error, if any.
func (r *Request) Validate() error {
	if err := r.Class.Validate(); err != nil {
		return fmt.Errorf("request %d: %w", r.ID, err)
	}
	if r.PromptTokens <= 0 {
		return fmt.Errorf("request %d: prompt tokens %d", r.ID, r.PromptTokens)
	}
	if r.DecodeTokens <= 0 {
		return fmt.Errorf("request %d: decode tokens %d", r.ID, r.DecodeTokens)
	}
	return nil
}

// Phase returns the current lifecycle phase.
//
//qoserve:hotpath
func (r *Request) Phase() Phase {
	switch {
	case r.DecodedTokens >= r.DecodeTokens:
		return Done
	case r.PrefilledTokens >= r.PromptTokens:
		return Decode
	case r.PrefilledTokens > 0:
		return Prefill
	default:
		return Queued
	}
}

// RemainingPrefill is the number of prompt tokens not yet processed.
//
//qoserve:hotpath
func (r *Request) RemainingPrefill() int {
	if rem := r.PromptTokens - r.PrefilledTokens; rem > 0 {
		return rem
	}
	return 0
}

// ContextLen is the KV-cache context this request currently occupies:
// processed prompt tokens plus generated tokens.
//
//qoserve:hotpath
func (r *Request) ContextLen() int {
	return r.PrefilledTokens + r.DecodedTokens
}

// TotalTokens is the final context length at completion.
//
//qoserve:hotpath
func (r *Request) TotalTokens() int { return r.PromptTokens + r.DecodeTokens }

// RecordPrefill accounts for tokens prompt tokens processed in an iteration
// that completed at time now. If this finishes the prompt, the first output
// token is emitted by the same iteration (standard chunked-prefill
// behaviour), so TTFT is stamped here.
//
//qoserve:hotpath
func (r *Request) RecordPrefill(tokens int, now sim.Time) {
	if tokens <= 0 {
		return
	}
	r.PrefilledTokens += tokens
	if r.PrefilledTokens > r.PromptTokens {
		//lint:ignore hotpathalloc panic formatting only runs on a broken scheduler contract, never in steady state
		panic(fmt.Sprintf("request %d: prefilled %d > prompt %d", r.ID, r.PrefilledTokens, r.PromptTokens))
	}
	if r.PrefilledTokens == r.PromptTokens {
		r.emitToken(now)
	}
}

// RecordDecodeToken accounts for one output token emitted at time now by a
// decode iteration.
//
//qoserve:hotpath
func (r *Request) RecordDecodeToken(now sim.Time) {
	if r.Phase() != Decode {
		//lint:ignore hotpathalloc panic formatting only runs on a broken scheduler contract, never in steady state
		panic(fmt.Sprintf("request %d: decode token in phase %v", r.ID, r.Phase()))
	}
	r.emitToken(now)
}

//qoserve:hotpath
func (r *Request) emitToken(now sim.Time) {
	n := r.DecodedTokens + 1 // 1-based index of the token being emitted
	if n == 1 {
		r.FirstTokenAt = now
	} else {
		gap := now - r.LastTokenAt
		if gap > r.MaxTBT {
			r.MaxTBT = gap
		}
		if r.Class.Kind == qos.Interactive && gap > r.Class.SLO.TBT &&
			now > r.Class.TokenDeadline(r.Arrival, n) {
			r.TBTViolations++
		}
	}
	r.LastTokenAt = now
	r.DecodedTokens = n
	if r.DecodedTokens == r.DecodeTokens {
		r.FinishedAt = now
	}
}

// ApplyPrefixHit credits hit prompt tokens as already prefilled, from a
// prefix-cache match at admission. The credit is capped at PromptTokens-1
// so the request still performs at least one prefill token (producing the
// first output token the normal way) and enters the scheduler in a
// pre-decode phase, as the scheduler contract requires. It must be called
// before any real prefill progress and is idempotent per admission; a
// replica re-admitting after retry calls it again with its own match.
func (r *Request) ApplyPrefixHit(hit int) {
	if r.PrefilledTokens != r.PrefixHitTokens {
		panic(fmt.Sprintf("request %d: prefix hit applied after prefill started", r.ID))
	}
	if max := r.PromptTokens - 1; hit > max {
		hit = max
	}
	if hit < 0 {
		hit = 0
	}
	r.PrefixHitTokens = hit
	r.PrefilledTokens = hit
}

// ResetPrefill discards all prefill progress (the prefix-cache credit
// included), returning the request to the Queued phase. Replicas use this
// for recompute-style preemption when the KV cache must be reclaimed. It
// panics once decoding has started, because decodes are never preempted
// (Section 3.4, selective preemption).
func (r *Request) ResetPrefill() {
	if r.DecodedTokens > 0 {
		panic(fmt.Sprintf("request %d: ResetPrefill after decoding started", r.ID))
	}
	r.PrefilledTokens = 0
	r.PrefixHitTokens = 0
}

// ResetForRetry discards all execution progress — prefill, decode, token
// timestamps, TBT accounting — returning the request to the Queued phase so
// it can be replayed from scratch on another replica after a crash. The
// immutable workload inputs (Arrival, Class, Priority, token counts) are
// untouched: deadlines stay anchored at the original arrival. It increments
// Retries and returns the number of context tokens of progress lost.
func (r *Request) ResetForRetry() int {
	lost := r.ContextLen()
	r.PrefilledTokens = 0
	r.PrefixHitTokens = 0
	r.DecodedTokens = 0
	r.FirstTokenAt = 0
	r.FinishedAt = 0
	r.LastTokenAt = 0
	r.MaxTBT = 0
	r.TBTViolations = 0
	r.Retries++
	return lost
}

// Failed reports whether the serving layer permanently gave up on the
// request.
func (r *Request) Failed() bool { return r.FailedReason != "" }

// TTFT returns the observed time to first token; ok is false if the first
// token has not been produced.
func (r *Request) TTFT() (sim.Time, bool) {
	if r.DecodedTokens < 1 {
		return 0, false
	}
	return r.FirstTokenAt - r.Arrival, true
}

// TTLT returns the observed completion latency; ok is false while running.
func (r *Request) TTLT() (sim.Time, bool) {
	if r.Phase() != Done {
		return 0, false
	}
	return r.FinishedAt - r.Arrival, true
}

// FirstTokenDeadline is Eq. 1 (interactive) / Eq. 3 (non-interactive).
//
//qoserve:hotpath
func (r *Request) FirstTokenDeadline() sim.Time {
	return r.Class.FirstTokenDeadline(r.Arrival)
}

// NextTokenDeadline is the deadline (Eq. 2 / Eq. 3) of the *next* output
// token this request is due to produce. For a request still in prefill this
// is the first-token deadline.
//
//qoserve:hotpath
func (r *Request) NextTokenDeadline() sim.Time {
	return r.Class.TokenDeadline(r.Arrival, r.DecodedTokens+1)
}

// CompletionDeadline is the latest acceptable finish time, using the
// scheduler-visible decode length (estimate if present, else what has been
// generated so far plus one).
//
//qoserve:hotpath
func (r *Request) CompletionDeadline() sim.Time {
	n := r.EstDecodeTokens
	if n < r.DecodedTokens+1 {
		n = r.DecodedTokens + 1
	}
	return r.Class.CompletionDeadline(r.Arrival, n)
}

// ViolatedSLO reports whether the request has irrecoverably missed its SLO
// by time now: TTFT missed for interactive, TTLT missed (or unfinished past
// deadline) for non-interactive. This is the paper's headline "deadline
// violation" metric; TBT misses are tracked separately (the paper reports
// they stay <0.1% under all schemes).
func (r *Request) ViolatedSLO(now sim.Time) bool {
	if r.Failed() {
		// Permanently failed requests can never meet any SLO; counting
		// them as violations keeps them out of the "truncated, not yet
		// judged" bucket so they are never silently dropped from metrics.
		return true
	}
	switch r.Class.Kind {
	case qos.Interactive:
		if r.DecodedTokens >= 1 {
			return r.FirstTokenAt > r.FirstTokenDeadline()
		}
		return now > r.FirstTokenDeadline()
	default:
		deadline := r.Arrival + r.Class.SLO.TTLT
		if r.Phase() == Done {
			return r.FinishedAt > deadline
		}
		return now > deadline
	}
}
