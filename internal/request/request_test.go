package request

import (
	"testing"
	"testing/quick"

	"qoserve/internal/qos"
	"qoserve/internal/sim"
)

func interactive() qos.Class {
	return qos.Class{Name: "Q1", Kind: qos.Interactive,
		SLO: qos.SLO{TTFT: 6 * sim.Second, TBT: 50 * sim.Millisecond}}
}

func batch() qos.Class {
	return qos.Class{Name: "Q2", Kind: qos.NonInteractive,
		SLO: qos.SLO{TTLT: 600 * sim.Second}}
}

func newReq(prompt, decode int, class qos.Class) *Request {
	return &Request{ID: 1, App: "test", Class: class,
		Arrival: sim.Second, PromptTokens: prompt, DecodeTokens: decode}
}

func TestLifecyclePhases(t *testing.T) {
	r := newReq(100, 3, interactive())
	if r.Phase() != Queued {
		t.Fatalf("initial phase = %v", r.Phase())
	}
	r.RecordPrefill(60, 2*sim.Second)
	if r.Phase() != Prefill {
		t.Fatalf("after partial prefill phase = %v", r.Phase())
	}
	if r.RemainingPrefill() != 40 {
		t.Fatalf("remaining prefill = %d", r.RemainingPrefill())
	}
	r.RecordPrefill(40, 3*sim.Second)
	if r.Phase() != Decode {
		t.Fatalf("after full prefill phase = %v", r.Phase())
	}
	// Completing prefill emits the first token.
	if ttft, ok := r.TTFT(); !ok || ttft != 2*sim.Second {
		t.Fatalf("TTFT = %v ok=%v, want 2s", ttft, ok)
	}
	r.RecordDecodeToken(3*sim.Second + 40*sim.Millisecond)
	r.RecordDecodeToken(3*sim.Second + 80*sim.Millisecond)
	if r.Phase() != Done {
		t.Fatalf("after all decodes phase = %v", r.Phase())
	}
	if ttlt, ok := r.TTLT(); !ok || ttlt != 2*sim.Second+80*sim.Millisecond {
		t.Fatalf("TTLT = %v ok=%v", ttlt, ok)
	}
	if r.MaxTBT != 40*sim.Millisecond {
		t.Fatalf("MaxTBT = %v", r.MaxTBT)
	}
	if r.TBTViolations != 0 {
		t.Fatalf("TBT violations = %d", r.TBTViolations)
	}
}

func TestSingleTokenRequestFinishesAtPrefill(t *testing.T) {
	r := newReq(50, 1, batch())
	r.RecordPrefill(50, 4*sim.Second)
	if r.Phase() != Done {
		t.Fatalf("phase = %v, want done", r.Phase())
	}
	if ttlt, ok := r.TTLT(); !ok || ttlt != 3*sim.Second {
		t.Fatalf("TTLT = %v ok=%v", ttlt, ok)
	}
}

func TestTBTViolationCounting(t *testing.T) {
	// Arrival 1s, TTFT SLO 6s: token-2 deadline 7.05s, token-3 7.10s (Eq 2).
	r := newReq(10, 3, interactive())
	r.RecordPrefill(10, 2*sim.Second)
	r.RecordDecodeToken(7*sim.Second + 80*sim.Millisecond) // past 7.05s deadline
	r.RecordDecodeToken(7*sim.Second + 90*sim.Millisecond) // before 7.10s deadline
	if r.TBTViolations != 1 {
		t.Fatalf("TBT violations = %d, want 1", r.TBTViolations)
	}
	if r.MaxTBT != 5*sim.Second+80*sim.Millisecond {
		t.Fatalf("MaxTBT = %v", r.MaxTBT)
	}
}

// TestTBTSlackSpending verifies the Eq. 2 anchoring: a request that finished
// prefill early may emit tokens with gaps far larger than the TBT SLO
// without violating, as long as each token beats its absolute deadline.
func TestTBTSlackSpending(t *testing.T) {
	r := newReq(10, 3, interactive())   // arrival 1s, deadlines 7s/7.05s/7.1s
	r.RecordPrefill(10, 2*sim.Second)   // 5s of slack accumulated
	r.RecordDecodeToken(4 * sim.Second) // 2s gap >> 50ms SLO, but before 7.05s
	r.RecordDecodeToken(6 * sim.Second) // before 7.10s
	if r.TBTViolations != 0 {
		t.Fatalf("TBT violations = %d, want 0 (slack spent legally)", r.TBTViolations)
	}
	if r.MaxTBT != 2*sim.Second {
		t.Fatalf("MaxTBT = %v", r.MaxTBT)
	}
}

func TestResetPrefill(t *testing.T) {
	r := newReq(10, 2, batch())
	r.RecordPrefill(6, 2*sim.Second)
	r.ResetPrefill()
	if r.Phase() != Queued || r.PrefilledTokens != 0 {
		t.Fatalf("after reset: phase %v prefilled %d", r.Phase(), r.PrefilledTokens)
	}
	// Reset after decode start panics.
	r.RecordPrefill(10, 3*sim.Second)
	defer func() {
		if recover() == nil {
			t.Error("ResetPrefill after decode did not panic")
		}
	}()
	r.ResetPrefill()
}

func TestApplyPrefixHit(t *testing.T) {
	r := newReq(100, 4, batch())
	r.ApplyPrefixHit(64)
	if r.PrefilledTokens != 64 || r.PrefixHitTokens != 64 {
		t.Fatalf("after hit: prefilled %d hit %d", r.PrefilledTokens, r.PrefixHitTokens)
	}
	// At least one token always prefills, even on a full-prompt hit.
	full := newReq(100, 4, batch())
	full.ApplyPrefixHit(500)
	if full.PrefilledTokens != 99 {
		t.Fatalf("over-full hit prefilled %d, want 99", full.PrefilledTokens)
	}
	neg := newReq(100, 4, batch())
	neg.ApplyPrefixHit(-5)
	if neg.PrefilledTokens != 0 {
		t.Fatalf("negative hit prefilled %d", neg.PrefilledTokens)
	}
	// The retry path clears the credit with the rest of prefill state.
	r.ResetForRetry()
	if r.PrefilledTokens != 0 || r.PrefixHitTokens != 0 {
		t.Fatalf("after retry: prefilled %d hit %d", r.PrefilledTokens, r.PrefixHitTokens)
	}
	// Applying a hit after prefill progressed is a caller bug.
	r.ApplyPrefixHit(32)
	r.RecordPrefill(50, 3*sim.Second)
	defer func() {
		if recover() == nil {
			t.Error("late ApplyPrefixHit did not panic")
		}
	}()
	r.ApplyPrefixHit(32)
}

func TestBatchClassCountsNoTBTViolations(t *testing.T) {
	r := newReq(10, 3, batch())
	r.RecordPrefill(10, 2*sim.Second)
	r.RecordDecodeToken(10 * sim.Second)
	r.RecordDecodeToken(20 * sim.Second)
	if r.TBTViolations != 0 {
		t.Fatalf("non-interactive TBT violations = %d, want 0", r.TBTViolations)
	}
}

func TestViolatedSLOInteractive(t *testing.T) {
	r := newReq(10, 2, interactive())
	// Deadline is arrival(1s) + 6s = 7s.
	if r.ViolatedSLO(6 * sim.Second) {
		t.Error("violated before deadline")
	}
	if !r.ViolatedSLO(8 * sim.Second) {
		t.Error("not violated after deadline with no first token")
	}
	// First token just in time: never violated afterwards.
	r.RecordPrefill(10, 7*sim.Second)
	if r.ViolatedSLO(100 * sim.Second) {
		t.Error("violated despite on-time first token")
	}
	// A late first token is a permanent violation.
	r2 := newReq(10, 2, interactive())
	r2.RecordPrefill(10, 8*sim.Second)
	if !r2.ViolatedSLO(8 * sim.Second) {
		t.Error("late first token not violated")
	}
}

func TestViolatedSLONonInteractive(t *testing.T) {
	r := newReq(10, 2, batch())
	// Deadline = 1s + 600s = 601s.
	if r.ViolatedSLO(600 * sim.Second) {
		t.Error("violated before TTLT deadline")
	}
	if !r.ViolatedSLO(602 * sim.Second) {
		t.Error("unfinished request past deadline not violated")
	}
	r.RecordPrefill(10, 100*sim.Second)
	r.RecordDecodeToken(101 * sim.Second)
	if r.ViolatedSLO(9999 * sim.Second) {
		t.Error("finished-in-time request violated")
	}
}

func TestDeadlines(t *testing.T) {
	r := newReq(10, 5, interactive())
	if got := r.FirstTokenDeadline(); got != 7*sim.Second {
		t.Errorf("first-token deadline = %v", got)
	}
	if got := r.NextTokenDeadline(); got != 7*sim.Second {
		t.Errorf("next-token deadline before any tokens = %v", got)
	}
	r.RecordPrefill(10, 2*sim.Second) // token 1 out
	// Next token is #2: 7s + 50ms.
	if got := r.NextTokenDeadline(); got != 7*sim.Second+50*sim.Millisecond {
		t.Errorf("next-token deadline = %v", got)
	}
}

func TestCompletionDeadlineUsesEstimate(t *testing.T) {
	r := newReq(10, 100, interactive())
	r.EstDecodeTokens = 21
	want := 7*sim.Second + 20*50*sim.Millisecond
	if got := r.CompletionDeadline(); got != want {
		t.Errorf("completion deadline = %v, want %v", got, want)
	}
	// Estimate below observed progress is clamped up.
	r.EstDecodeTokens = 1
	r.RecordPrefill(10, 2*sim.Second)
	for i := 0; i < 4; i++ {
		r.RecordDecodeToken(3 * sim.Second)
	}
	// 5 tokens emitted; deadline must be for token >= 6.
	min := 7*sim.Second + 5*50*sim.Millisecond
	if got := r.CompletionDeadline(); got != min {
		t.Errorf("clamped completion deadline = %v, want %v", got, min)
	}
}

func TestOverPrefillPanics(t *testing.T) {
	r := newReq(10, 2, batch())
	defer func() {
		if recover() == nil {
			t.Error("over-prefill did not panic")
		}
	}()
	r.RecordPrefill(11, sim.Second)
}

func TestDecodeBeforePrefillPanics(t *testing.T) {
	r := newReq(10, 2, batch())
	defer func() {
		if recover() == nil {
			t.Error("decode before prefill did not panic")
		}
	}()
	r.RecordDecodeToken(sim.Second)
}

func TestValidate(t *testing.T) {
	good := newReq(10, 2, interactive())
	if err := good.Validate(); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
	for _, bad := range []*Request{
		newReq(0, 2, interactive()),
		newReq(10, 0, interactive()),
		newReq(10, 2, qos.Class{Name: "broken", Kind: qos.Interactive}),
	} {
		if bad.Validate() == nil {
			t.Errorf("invalid request %+v accepted", bad)
		}
	}
}

// Property: for any prefill chunking and decode pacing, token accounting
// conserves totals and context length equals prompt+decoded.
func TestAccountingConservationProperty(t *testing.T) {
	f := func(chunks []uint8, decode uint8) bool {
		prompt := 0
		for _, c := range chunks {
			prompt += int(c)
		}
		if prompt == 0 || decode == 0 {
			return true // skip degenerate inputs
		}
		r := newReq(prompt, int(decode), batch())
		now := 2 * sim.Second
		for _, c := range chunks {
			if c == 0 {
				continue
			}
			now += sim.Millisecond
			r.RecordPrefill(int(c), now)
		}
		for r.Phase() == Decode {
			now += sim.Millisecond
			r.RecordDecodeToken(now)
		}
		return r.Phase() == Done &&
			r.PrefilledTokens == prompt &&
			r.DecodedTokens == int(decode) &&
			r.ContextLen() == r.TotalTokens()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPhaseString(t *testing.T) {
	for p, want := range map[Phase]string{
		Queued: "queued", Prefill: "prefill", Decode: "decode", Done: "done",
		Phase(9): "Phase(9)",
	} {
		if p.String() != want {
			t.Errorf("Phase(%d).String() = %q, want %q", int(p), p.String(), want)
		}
	}
}

// Property: TBT violations are counted exactly for tokens that are both
// late against Eq. 2 and slower-paced than the TBT SLO, for arbitrary
// emission schedules.
func TestTBTCountingProperty(t *testing.T) {
	f := func(gapsMS []uint16) bool {
		if len(gapsMS) == 0 || len(gapsMS) > 50 {
			return true
		}
		r := newReq(10, len(gapsMS)+1, interactive())
		now := 2 * sim.Second
		r.RecordPrefill(10, now) // token 1
		want := 0
		prev := now
		for i, g := range gapsMS {
			gap := sim.Time(g%400) * sim.Millisecond
			now = prev + gap
			n := i + 2 // 1-based token index being emitted
			deadline := r.Class.TokenDeadline(r.Arrival, n)
			if gap > r.Class.SLO.TBT && now > deadline {
				want++
			}
			r.RecordDecodeToken(now)
			prev = now
		}
		return r.TBTViolations == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
