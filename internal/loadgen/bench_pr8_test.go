package loadgen

import (
	"context"
	"testing"

	"qoserve/internal/cluster"
	"qoserve/internal/model"
	"qoserve/internal/qos"
	"qoserve/internal/sched"
	"qoserve/internal/server"
	"qoserve/internal/workload"
)

// sessionTransferSpec is the workload behind BENCH_PR8: long-prompt
// multi-turn sessions whose accumulated context makes every recomputed
// prefix expensive. Pure prefix affinity pins each session to the replica
// that served turn 1, so hot replicas stack long prefills while others
// idle; transfer-enabled predicted routing can move a turn to a quieter
// replica and import the cached prefix over the interconnect instead of
// recomputing it.
func sessionTransferSpec() Spec {
	return Spec{
		Seed:         29,
		Mode:         Closed,
		Requests:     320,
		Workers:      16,
		SessionTurns: 8,
		FollowUp:     workload.TokenDist{P50: 64, P90: 128, Max: 256},
		Classes: []Class{
			{Name: "Q1", Weight: 0.5, Priority: qos.High,
				Prompt: workload.TokenDist{P50: 1024, P90: 3072, Max: 8192},
				Decode: workload.TokenDist{P50: 8, P90: 16, Max: 32}},
			{Name: "Q2", Weight: 0.3, Priority: qos.High,
				Prompt: workload.TokenDist{P50: 512, P90: 2048, Max: 8192},
				Decode: workload.TokenDist{P50: 8, P90: 16, Max: 32}},
			{Name: "Q3", Weight: 0.2, Priority: qos.Low,
				Prompt: workload.TokenDist{P50: 2048, P90: 4096, Max: 8192},
				Decode: workload.TokenDist{P50: 8, P90: 16, Max: 32}},
		},
	}
}

// benchSessionTransfer drives the session workload against a 4-replica
// colocated gateway. A fresh gateway per iteration keeps cache state from
// leaking between runs; transfer wires the global prefix index plus a
// 64 GB/s KV interconnect into the config.
func benchSessionTransfer(b *testing.B, transfer bool, newLB func() cluster.GatewayBalancer) {
	spec := sessionTransferSpec()
	var reqs, ttft50, ttft90, ttft99, hit, moved float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := server.Config{
			Model:            model.Llama3_8B_A100_TP1(),
			SchedulerFactory: func() sched.Scheduler { return sched.NewSarathi(sched.FCFS, 512) },
			Replicas:         4,
			Balancer:         newLB(),
			Classes:          qos.Table3(),
			Timescale:        1000,
		}
		if transfer {
			cfg.GlobalPrefixIndex = true
			cfg.KVTransferBandwidth = 64e9
		}
		srv, err := server.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := Run(context.Background(), srv, spec)
		srv.Close()
		if err != nil {
			b.Fatal(err)
		}
		if rep.Completed != spec.Requests {
			b.Fatalf("completed %d of %d", rep.Completed, spec.Requests)
		}
		reqs += rep.ReqPerSec
		ttft50 += rep.TTFTP50MS
		ttft90 += rep.TTFTP90MS
		ttft99 += rep.TTFTP99MS
		hit += float64(rep.PrefixHitTokens)
		moved += float64(rep.PrefixTransferTokens)
	}
	b.StopTimer()
	n := float64(b.N)
	b.ReportMetric(reqs/n, "req/s")
	b.ReportMetric(ttft50/n, "ttft_p50_ms")
	b.ReportMetric(ttft90/n, "ttft_p90_ms")
	b.ReportMetric(ttft99/n, "ttft_p99_ms")
	b.ReportMetric(hit/n, "prefix_hit_tokens")
	b.ReportMetric(moved/n, "prefix_transfer_tokens")
}

// BenchmarkSessionPrefixAffinityRecompute is the PR 6 baseline: prefix
// affinity with per-replica cache probes and no cross-replica transfer —
// a turn routed off its holder recomputes the whole prefix.
func BenchmarkSessionPrefixAffinityRecompute(b *testing.B) {
	benchSessionTransfer(b, false, func() cluster.GatewayBalancer { return &cluster.PrefixAffinity{} })
}

// BenchmarkSessionPrefixPredictedTransfer scores every replica's predicted
// completion with the cached-anywhere prefix importable over the modeled
// interconnect, so load balance and cache reuse stop trading off.
func BenchmarkSessionPrefixPredictedTransfer(b *testing.B) {
	forest := benchPredictor(b)
	benchSessionTransfer(b, true, func() cluster.GatewayBalancer {
		return &cluster.PredictedLatency{
			Predictor: forest,
			Transfer: &cluster.TransferModel{
				BytesPerToken: model.Llama3_8B_A100_TP1().Model.KVBytesPerToken(),
				BandwidthBps:  64e9,
			},
		}
	})
}
