package loadgen

import (
	"context"
	"sync"
	"testing"

	"qoserve/internal/cluster"
	"qoserve/internal/model"
	"qoserve/internal/predictor"
	"qoserve/internal/profile"
	"qoserve/internal/qos"
	"qoserve/internal/sched"
	"qoserve/internal/server"
	"qoserve/internal/workload"
)

// longPrefillSpec is the workload behind BENCH_PR7: single-shot requests
// with a heavy prompt tail (p50 512, p90 4096, max 16K) and short outputs.
// Under occupancy balancing a queue holding one 16K prompt counts the same
// as a queue holding one 128-token prompt, so unlucky requests land behind
// monster prefills and the TTFT tail blows out; the predicted-latency
// balancer sees the token backlog in the snapshot and routes around it.
func longPrefillSpec() Spec {
	return Spec{
		Seed:     23,
		Mode:     Closed,
		Requests: 300,
		Workers:  24,
		Classes: []Class{
			{Name: "Q1", Weight: 0.5, Priority: qos.High,
				Prompt: workload.TokenDist{P50: 512, P90: 4096, Max: 16384},
				Decode: workload.TokenDist{P50: 8, P90: 16, Max: 32}},
			{Name: "Q2", Weight: 0.3, Priority: qos.High,
				Prompt: workload.TokenDist{P50: 512, P90: 4096, Max: 16384},
				Decode: workload.TokenDist{P50: 8, P90: 16, Max: 32}},
			{Name: "Q3", Weight: 0.2, Priority: qos.Low,
				Prompt: workload.TokenDist{P50: 512, P90: 4096, Max: 16384},
				Decode: workload.TokenDist{P50: 8, P90: 16, Max: 32}},
		},
	}
}

// The scoring forest is read-only at predict time, so the expensive
// profiling + training happens once for the whole benchmark binary.
var (
	benchForestOnce sync.Once
	benchForest     *predictor.Forest
	benchForestErr  error
)

func benchPredictor(b *testing.B) *predictor.Forest {
	b.Helper()
	benchForestOnce.Do(func() {
		samples, err := profile.Collect(model.Llama3_8B_A100_TP1(), profile.Config{Seed: 1})
		if err != nil {
			benchForestErr = err
			return
		}
		benchForest, benchForestErr = predictor.Train(samples, predictor.ForestConfig{Seed: 1})
	})
	if benchForestErr != nil {
		b.Fatal(benchForestErr)
	}
	return benchForest
}

// benchLongPrefill drives the long-prefill workload end to end against a
// 4-replica gateway — colocated, or disaggregated into 2 prefill + 2
// decode replicas — under the given balancer. One full workload per
// iteration with a fresh gateway each time so no queue or cache state
// leaks between iterations.
func benchLongPrefill(b *testing.B, mode string, newLB func() cluster.GatewayBalancer) {
	spec := longPrefillSpec()
	var reqs, ttft50, ttft90, ttft99 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := server.Config{
			Model:            model.Llama3_8B_A100_TP1(),
			SchedulerFactory: func() sched.Scheduler { return sched.NewSarathi(sched.FCFS, 512) },
			Replicas:         4,
			Balancer:         newLB(),
			Classes:          qos.Table3(),
			Timescale:        1000,
		}
		if mode == "disagg" {
			cfg.Mode = "disagg"
			cfg.PrefillReplicas = 2
		}
		srv, err := server.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := Run(context.Background(), srv, spec)
		srv.Close()
		if err != nil {
			b.Fatal(err)
		}
		if rep.Completed != spec.Requests {
			b.Fatalf("completed %d of %d", rep.Completed, spec.Requests)
		}
		reqs += rep.ReqPerSec
		ttft50 += rep.TTFTP50MS
		ttft90 += rep.TTFTP90MS
		ttft99 += rep.TTFTP99MS
	}
	b.StopTimer()
	n := float64(b.N)
	b.ReportMetric(reqs/n, "req/s")
	b.ReportMetric(ttft50/n, "ttft_p50_ms")
	b.ReportMetric(ttft90/n, "ttft_p90_ms")
	b.ReportMetric(ttft99/n, "ttft_p99_ms")
}

func BenchmarkLongPrefillColocatedLeastLoaded(b *testing.B) {
	benchLongPrefill(b, "colocated", func() cluster.GatewayBalancer { return cluster.LeastLoaded{} })
}

func BenchmarkLongPrefillColocatedPrefix(b *testing.B) {
	benchLongPrefill(b, "colocated", func() cluster.GatewayBalancer { return &cluster.PrefixAffinity{} })
}

func BenchmarkLongPrefillColocatedPredicted(b *testing.B) {
	forest := benchPredictor(b)
	benchLongPrefill(b, "colocated", func() cluster.GatewayBalancer {
		return &cluster.PredictedLatency{Predictor: forest}
	})
}

func BenchmarkLongPrefillDisaggLeastLoaded(b *testing.B) {
	benchLongPrefill(b, "disagg", func() cluster.GatewayBalancer { return cluster.LeastLoaded{} })
}

func BenchmarkLongPrefillDisaggPredicted(b *testing.B) {
	forest := benchPredictor(b)
	benchLongPrefill(b, "disagg", func() cluster.GatewayBalancer {
		return &cluster.PredictedLatency{Predictor: forest}
	})
}
