package loadgen

import (
	"context"
	"testing"

	"qoserve/internal/cluster"
	"qoserve/internal/model"
	"qoserve/internal/qos"
	"qoserve/internal/sched"
	"qoserve/internal/server"
	"qoserve/internal/workload"
)

// sessionSpec is the session-heavy workload behind BENCH_PR6: multi-turn
// conversations whose prompts are long relative to their outputs, so
// prefill dominates and a routed-away turn pays the full re-prefill that
// prefix-affinity routing avoids.
func sessionSpec() Spec {
	return Spec{
		Seed:         11,
		Mode:         Closed,
		Requests:     400,
		Workers:      16,
		SessionTurns: 8,
		FollowUp:     workload.TokenDist{P50: 64, P90: 128, Max: 512},
		Classes: []Class{
			{Name: "Q1", Weight: 0.5, Priority: qos.High,
				Prompt: workload.TokenDist{P50: 1024, P90: 2048, Max: 4096},
				Decode: workload.TokenDist{P50: 12, P90: 32, Max: 64}},
			{Name: "Q2", Weight: 0.3, Priority: qos.High,
				Prompt: workload.TokenDist{P50: 1024, P90: 2048, Max: 4096},
				Decode: workload.TokenDist{P50: 12, P90: 32, Max: 64}},
			{Name: "Q3", Weight: 0.2, Priority: qos.Low,
				Prompt: workload.TokenDist{P50: 1024, P90: 2048, Max: 4096},
				Decode: workload.TokenDist{P50: 12, P90: 32, Max: 64}},
		},
	}
}

// benchSessionBalancer drives the session-heavy workload end to end against
// a 4-replica gateway under the given balancer and reports throughput,
// TTFT quantiles, and prefix-cache hit volume. One full workload per
// iteration; a fresh gateway (and balancer) each time so no cache state
// leaks between iterations.
func benchSessionBalancer(b *testing.B, newLB func() cluster.GatewayBalancer) {
	spec := sessionSpec()
	var reqs, ttft50, ttft99, hits float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv, err := server.New(server.Config{
			Model:            model.Llama3_8B_A100_TP1(),
			SchedulerFactory: func() sched.Scheduler { return sched.NewSarathi(sched.FCFS, 512) },
			Replicas:         4,
			Balancer:         newLB(),
			Classes:          qos.Table3(),
			Timescale:        1000,
		})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := Run(context.Background(), srv, spec)
		kv := srv.KVStats()
		srv.Close()
		if err != nil {
			b.Fatal(err)
		}
		if rep.Completed != spec.Requests {
			b.Fatalf("completed %d of %d", rep.Completed, spec.Requests)
		}
		reqs += rep.ReqPerSec
		ttft50 += rep.TTFTP50MS
		ttft99 += rep.TTFTP99MS
		hits += float64(kv.PrefixHitTokens)
	}
	b.StopTimer()
	n := float64(b.N)
	b.ReportMetric(reqs/n, "req/s")
	b.ReportMetric(ttft50/n, "ttft_p50_ms")
	b.ReportMetric(ttft99/n, "ttft_p99_ms")
	b.ReportMetric(hits/n, "hit_tok")
}

func BenchmarkSessionBalancerRoundRobin(b *testing.B) {
	benchSessionBalancer(b, func() cluster.GatewayBalancer { return &cluster.AtomicRoundRobin{} })
}

func BenchmarkSessionBalancerLeastLoaded(b *testing.B) {
	benchSessionBalancer(b, func() cluster.GatewayBalancer { return cluster.LeastLoaded{} })
}

func BenchmarkSessionBalancerPrefix(b *testing.B) {
	benchSessionBalancer(b, func() cluster.GatewayBalancer { return &cluster.PrefixAffinity{} })
}
