// Package loadgen generates deterministic open- and closed-loop load
// against the live serving gateway (internal/server) and reports sustained
// throughput and latency quantiles.
//
// The generator materializes the full request list up front from a seeded
// RNG — class mix, prompt/decode token counts, and (open-loop) arrival
// gaps — so a replayed run with the same Spec submits byte-identical work.
// Wall-clock throughput varies run to run, but completion counts, QoS
// violation tallies, and per-class breakdowns are deterministic at modest
// timescales, which is what the CI smoke job asserts.
//
// Closed-loop mode keeps Workers streams in flight: each worker owns every
// Workers'th request, submits it, drains the token stream, and moves on —
// classic concurrency-controlled load that measures sustained capacity.
// Open-loop mode submits on a Poisson process at Rate requests/second of
// wall time regardless of completions, the arrival model that exposes
// queueing collapse (see PAPERS.md on open vs closed loop pitfalls).
package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"qoserve/internal/kvcache"
	"qoserve/internal/qos"
	"qoserve/internal/server"
	"qoserve/internal/workload"
)

// Mode selects the arrival discipline.
type Mode string

// Arrival disciplines.
const (
	// Closed keeps a fixed number of in-flight streams (Spec.Workers).
	Closed Mode = "closed"
	// Open submits on a Poisson process at Spec.Rate regardless of
	// completions.
	Open Mode = "open"
)

// Class is one traffic class in the generated mix.
type Class struct {
	// Name must match a QoS class configured on the target server.
	Name string
	// Weight is the relative share of requests (any positive scale).
	Weight float64
	// Priority of submitted requests.
	Priority qos.Priority
	// Prompt and Decode are the token-count distributions.
	Prompt workload.TokenDist
	Decode workload.TokenDist
}

// Spec configures one load-generation run.
type Spec struct {
	// Seed makes the generated request list deterministic.
	Seed int64
	// Mode is Closed (default) or Open.
	Mode Mode
	// Requests is the total number of requests to submit.
	Requests int
	// Workers is the closed-loop concurrency (default 8).
	Workers int
	// Rate is the open-loop arrival rate in requests per wall second.
	// In session mode it paces session starts, not individual turns.
	Rate float64
	// Classes is the traffic mix; at least one is required. Session mode
	// picks one class per session.
	Classes []Class

	// SessionTurns > 0 enables session mode: the Requests are grouped
	// into multi-turn conversations of that many turns. Each turn's
	// prompt is the accumulated context (previous prompt + previous
	// output + FollowUp new user tokens, front-anchored and clipped at
	// workload.DefaultMaxTokens), and every turn carries the session's
	// prefix hash chain, so a replica that served the previous turn
	// answers the next one mostly from its prefix cache. Turns of one
	// session always run sequentially — turn t+1 submits only after turn
	// t completed — while distinct sessions follow the arrival
	// discipline: closed mode keeps Workers sessions in flight, open
	// mode starts sessions on the Poisson process.
	SessionTurns int
	// FollowUp is the new-user-tokens distribution added per follow-up
	// turn; required in session mode.
	FollowUp workload.TokenDist
}

// Target is the submission surface the generator drives; *server.Server
// implements it.
type Target interface {
	Submit(server.Submission) (*server.Stream, error)
}

// ClassReport is the per-class slice of a Report.
type ClassReport struct {
	Name      string `json:"name"`
	Completed int    `json:"completed"`
	Violated  int    `json:"violated"`
}

// Report is the outcome of a run. Completed, Violated, Relegated, and
// PerClass are deterministic for a fixed Spec (same seed → same tallies);
// the wall-clock and throughput fields are not.
type Report struct {
	Requests  int `json:"requests"`
	Completed int `json:"completed"`
	// Errors counts submissions the server rejected.
	Errors    int           `json:"errors"`
	Violated  int           `json:"violated"`
	Relegated int           `json:"relegated"`
	PerClass  []ClassReport `json:"per_class"`
	// Tokens counts prompt+decode tokens of completed requests. (Overflow
	// event drops are a server-side counter — see Server.DroppedEvents —
	// not tracked here.)
	Tokens       int     `json:"tokens"`
	WallSeconds  float64 `json:"wall_seconds"`
	ReqPerSec    float64 `json:"req_per_sec"`
	TokensPerSec float64 `json:"tokens_per_sec"`
	// Latency quantiles are in virtual milliseconds.
	TTFTP50MS float64 `json:"ttft_p50_ms"`
	TTFTP90MS float64 `json:"ttft_p90_ms"`
	TTFTP99MS float64 `json:"ttft_p99_ms"`
	TBTP50MS  float64 `json:"tbt_p50_ms"`
	TBTP99MS  float64 `json:"tbt_p99_ms"`
	// Prefix accounting over this run (the delta of the target's KV
	// counters when it exposes them; see server.KVStats). Of the chain
	// tokens completed requests carried, PrefixHitTokens were served from
	// cache — PrefixTransferTokens of those by cross-replica KV import —
	// and PrefixRecomputeTokens were prefilled from scratch.
	PrefixHitTokens       uint64 `json:"prefix_hit_tokens"`
	PrefixTransferTokens  uint64 `json:"prefix_transfer_tokens"`
	PrefixRecomputeTokens uint64 `json:"prefix_recompute_tokens"`
}

// genReq is one pre-generated request.
type genReq struct {
	class    int // index into Spec.Classes
	prompt   int
	decode   int
	gap      time.Duration // open-loop inter-arrival gap before this request
	priority qos.Priority
	chain    []uint64 // session-mode prefix hash chain; nil otherwise
	session  int      // session index (session mode; 0 otherwise)
}

// outcome is one completed request's result.
type outcome struct {
	class    int
	tokens   int
	ttft     time.Duration
	maxTBT   time.Duration
	violated bool
	releg    bool
	ok       bool
}

// generate materializes the deterministic request list.
func generate(spec Spec) ([]genReq, error) {
	if spec.Requests <= 0 {
		return nil, fmt.Errorf("loadgen: requests must be positive, got %d", spec.Requests)
	}
	if len(spec.Classes) == 0 {
		return nil, fmt.Errorf("loadgen: no classes configured")
	}
	var totalW float64
	for _, c := range spec.Classes {
		if c.Weight <= 0 {
			return nil, fmt.Errorf("loadgen: class %s: weight must be positive, got %v", c.Name, c.Weight)
		}
		if err := c.Prompt.Validate(); err != nil {
			return nil, fmt.Errorf("loadgen: class %s prompt: %w", c.Name, err)
		}
		if err := c.Decode.Validate(); err != nil {
			return nil, fmt.Errorf("loadgen: class %s decode: %w", c.Name, err)
		}
		totalW += c.Weight
	}
	if spec.Mode == Open && spec.Rate <= 0 {
		return nil, fmt.Errorf("loadgen: open-loop mode needs a positive rate, got %v", spec.Rate)
	}
	if spec.SessionTurns < 0 {
		return nil, fmt.Errorf("loadgen: negative session turns %d", spec.SessionTurns)
	}
	if spec.SessionTurns > 0 {
		if err := spec.FollowUp.Validate(); err != nil {
			return nil, fmt.Errorf("loadgen: session follow-up: %w", err)
		}
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	pickClass := func() int {
		pick := rng.Float64() * totalW
		ci := 0
		for ; ci < len(spec.Classes)-1; ci++ {
			pick -= spec.Classes[ci].Weight
			if pick < 0 {
				break
			}
		}
		return ci
	}
	reqs := make([]genReq, spec.Requests)
	if spec.SessionTurns > 0 {
		// Session mode: consecutive reqs entries form one conversation.
		// The chain key is drawn per session, so all its turns share a
		// prefix and distinct sessions are disjoint; the per-turn chain
		// covers the shareable blocks of that turn's accumulated prompt.
		for i, sess := 0, 0; i < len(reqs); sess++ {
			ci := pickClass()
			c := spec.Classes[ci]
			key := rng.Uint64()
			prompt := c.Prompt.Sample(rng)
			var gap time.Duration
			if spec.Mode == Open {
				gap = time.Duration(rng.ExpFloat64() / spec.Rate * float64(time.Second))
			}
			for t := 0; t < spec.SessionTurns && i < len(reqs); t++ {
				if prompt > workload.DefaultMaxTokens {
					prompt = workload.DefaultMaxTokens
				}
				decode := c.Decode.Sample(rng)
				reqs[i] = genReq{
					class:    ci,
					prompt:   prompt,
					decode:   decode,
					priority: c.Priority,
					chain:    kvcache.SyntheticChain(key, 0, kvcache.ChainBlocks(prompt, kvcache.DefaultBlockTokens)),
					session:  sess,
				}
				if t == 0 {
					reqs[i].gap = gap
				}
				prompt += decode + spec.FollowUp.Sample(rng)
				i++
			}
		}
		return reqs, nil
	}
	for i := range reqs {
		ci := pickClass()
		c := spec.Classes[ci]
		reqs[i] = genReq{
			class:    ci,
			prompt:   c.Prompt.Sample(rng),
			decode:   c.Decode.Sample(rng),
			priority: c.Priority,
		}
		if spec.Mode == Open {
			reqs[i].gap = time.Duration(rng.ExpFloat64() / spec.Rate * float64(time.Second))
		}
	}
	return reqs, nil
}

// groupSessions partitions the request indices into units the arrival
// discipline schedules: one group per session in session mode (turns stay
// in order inside their group), one singleton per request otherwise.
func groupSessions(spec Spec, reqs []genReq) [][]int {
	if spec.SessionTurns <= 0 {
		groups := make([][]int, len(reqs))
		for i := range reqs {
			groups[i] = []int{i}
		}
		return groups
	}
	var groups [][]int
	for i := 0; i < len(reqs); {
		j := i + 1
		for j < len(reqs) && reqs[j].session == reqs[i].session {
			j++
		}
		idx := make([]int, 0, j-i)
		for k := i; k < j; k++ {
			idx = append(idx, k)
		}
		groups = append(groups, idx)
		i = j
	}
	return groups
}

// Run drives the target with the spec's load and blocks until every
// request has finished (or the context is cancelled, which abandons
// requests not yet submitted but still drains in-flight streams).
func Run(ctx context.Context, target Target, spec Spec) (Report, error) {
	reqs, err := generate(spec)
	if err != nil {
		return Report{}, err
	}
	if spec.Mode == "" {
		spec.Mode = Closed
	}
	outcomes := make([]outcome, len(reqs))
	groups := groupSessions(spec, reqs)
	kvTarget, _ := target.(interface{ KVStats() server.KVStats })
	var kvBefore server.KVStats
	if kvTarget != nil {
		kvBefore = kvTarget.KVStats()
	}
	start := time.Now()
	switch spec.Mode {
	case Closed:
		workers := spec.Workers
		if workers <= 0 {
			workers = 8
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for g := w; g < len(groups); g += workers {
					for _, i := range groups[g] {
						if ctx.Err() != nil {
							return
						}
						outcomes[i] = execute(target, spec, reqs[i])
					}
				}
			}(w)
		}
		wg.Wait()
	case Open:
		var wg sync.WaitGroup
		next := start
	pace:
		for _, g := range groups {
			next = next.Add(reqs[g[0]].gap)
			if d := time.Until(next); d > 0 {
				select {
				case <-ctx.Done():
					break pace
				case <-time.After(d):
				}
			}
			if ctx.Err() != nil {
				break
			}
			wg.Add(1)
			go func(g []int) {
				defer wg.Done()
				for _, i := range g {
					if ctx.Err() != nil {
						return
					}
					outcomes[i] = execute(target, spec, reqs[i])
				}
			}(g)
		}
		wg.Wait()
	default:
		return Report{}, fmt.Errorf("loadgen: unknown mode %q", spec.Mode)
	}
	rep := report(spec, outcomes, time.Since(start))
	if kvTarget != nil {
		after := kvTarget.KVStats()
		rep.PrefixHitTokens = after.PrefixHitTokens - kvBefore.PrefixHitTokens
		rep.PrefixTransferTokens = after.PrefixTransferTokens - kvBefore.PrefixTransferTokens
	}
	// Chain tokens the completed requests carried but the cache did not
	// cover were prefilled from scratch.
	var potential uint64
	for i, o := range outcomes {
		if o.ok {
			potential += uint64(len(reqs[i].chain) * kvcache.DefaultBlockTokens)
		}
	}
	if potential > rep.PrefixHitTokens {
		rep.PrefixRecomputeTokens = potential - rep.PrefixHitTokens
	}
	return rep, nil
}

// execute submits one request and drains its stream to completion.
func execute(target Target, spec Spec, g genReq) outcome {
	c := spec.Classes[g.class]
	stream, err := target.Submit(server.Submission{
		App:          c.Name,
		Class:        c.Name,
		Priority:     g.priority,
		PromptTokens: g.prompt,
		DecodeTokens: g.decode,
		PrefixHashes: g.chain,
	})
	if err != nil {
		return outcome{class: g.class}
	}
	// Drain to completion via Recv, which works in both the per-token and
	// the batched-frame delivery modes; overflow drops mean fewer events
	// here, never a stall.
	for {
		if _, ok := stream.Recv(); !ok {
			break
		}
	}
	res := stream.Result()
	return outcome{
		class:    g.class,
		tokens:   g.prompt + g.decode,
		ttft:     res.TTFT,
		maxTBT:   res.MaxTBT,
		violated: res.Violated,
		releg:    res.Releg,
		ok:       true,
	}
}

// report aggregates outcomes.
func report(spec Spec, outcomes []outcome, wall time.Duration) Report {
	rep := Report{Requests: len(outcomes), PerClass: make([]ClassReport, len(spec.Classes))}
	for i, c := range spec.Classes {
		rep.PerClass[i].Name = c.Name
	}
	var ttfts, tbts []float64
	for _, o := range outcomes {
		if !o.ok {
			rep.Errors++
			continue
		}
		rep.Completed++
		rep.Tokens += o.tokens
		pc := &rep.PerClass[o.class]
		pc.Completed++
		if o.violated {
			rep.Violated++
			pc.Violated++
		}
		if o.releg {
			rep.Relegated++
		}
		ttfts = append(ttfts, float64(o.ttft)/float64(time.Millisecond))
		if o.maxTBT > 0 {
			tbts = append(tbts, float64(o.maxTBT)/float64(time.Millisecond))
		}
	}
	rep.WallSeconds = wall.Seconds()
	if rep.WallSeconds > 0 {
		rep.ReqPerSec = float64(rep.Completed) / rep.WallSeconds
		rep.TokensPerSec = float64(rep.Tokens) / rep.WallSeconds
	}
	rep.TTFTP50MS = quantile(ttfts, 0.5)
	rep.TTFTP90MS = quantile(ttfts, 0.9)
	rep.TTFTP99MS = quantile(ttfts, 0.99)
	rep.TBTP50MS = quantile(tbts, 0.5)
	rep.TBTP99MS = quantile(tbts, 0.99)
	return rep
}

// quantile is the nearest-rank q-quantile of vs; zero when vs is empty.
func quantile(vs []float64, q float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
