package loadgen

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"qoserve/internal/model"
	"qoserve/internal/qos"
	"qoserve/internal/sched"
	"qoserve/internal/server"
	"qoserve/internal/workload"
)

func testSpec(mode Mode) Spec {
	return Spec{
		Seed:     42,
		Mode:     mode,
		Requests: 60,
		Workers:  6,
		Rate:     400,
		Classes: []Class{
			{Name: "Q1", Weight: 0.5, Priority: qos.High,
				Prompt: workload.TokenDist{P50: 256, P90: 512, Max: 1024},
				Decode: workload.TokenDist{P50: 8, P90: 16, Max: 32}},
			{Name: "Q2", Weight: 0.3, Priority: qos.High,
				Prompt: workload.TokenDist{P50: 512, P90: 1024, Max: 2048},
				Decode: workload.TokenDist{P50: 16, P90: 32, Max: 64}},
			{Name: "Q3", Weight: 0.2, Priority: qos.Low,
				Prompt: workload.TokenDist{P50: 512, P90: 1024, Max: 2048},
				Decode: workload.TokenDist{P50: 16, P90: 32, Max: 64}},
		},
	}
}

func newGateway(t *testing.T, replicas int) *server.Server {
	t.Helper()
	srv, err := server.New(server.Config{
		Model:            model.Llama3_8B_A100_TP1(),
		SchedulerFactory: func() sched.Scheduler { return sched.NewSarathi(sched.FCFS, 512) },
		Replicas: replicas,
		Classes:  qos.Table3(),
		// Modest acceleration: Q1's 6s TTFT budget is 30ms of wall time,
		// orders of magnitude above the queueing delay this load causes, so
		// wall-clock jitter cannot flip violation tallies between replays.
		Timescale: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// TestGenerateDeterministic pins the core replayability contract: the same
// spec materializes the identical request list.
func TestGenerateDeterministic(t *testing.T) {
	a, err := generate(testSpec(Open))
	if err != nil {
		t.Fatal(err)
	}
	b, err := generate(testSpec(Open))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two generations from the same spec differ")
	}
	classes := make(map[int]int)
	for _, r := range a {
		classes[r.class]++
		if r.prompt < 1 || r.decode < 1 {
			t.Fatalf("non-positive token counts: %+v", r)
		}
		if r.gap < 0 {
			t.Fatalf("negative arrival gap: %+v", r)
		}
	}
	if len(classes) != 3 {
		t.Fatalf("expected all 3 classes in the mix, got %v", classes)
	}
}

func TestGenerateRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{Requests: 0, Classes: testSpec(Closed).Classes},
		{Requests: 5},
		{Requests: 5, Classes: []Class{{Name: "Q1", Weight: 0}}},
		{Requests: 5, Mode: Open, Rate: 0, Classes: testSpec(Closed).Classes},
	}
	for i, spec := range bad {
		if _, err := generate(spec); err == nil {
			t.Errorf("spec %d: expected error", i)
		}
	}
}

// TestClosedLoopReplayIsDeterministic is the acceptance criterion: two runs
// with the same seed produce identical completion counts and violation
// tallies.
func TestClosedLoopReplayIsDeterministic(t *testing.T) {
	spec := testSpec(Closed)
	run := func() Report {
		srv := newGateway(t, 2)
		rep, err := Run(context.Background(), srv, spec)
		if err != nil {
			t.Fatal(err)
		}
		if dropped := srv.DroppedEvents(); dropped != 0 {
			t.Fatalf("%d events dropped; buffers should cover these decode lengths", dropped)
		}
		return rep
	}
	a, b := run(), run()
	if a.Completed != spec.Requests || a.Errors != 0 {
		t.Fatalf("run A: completed %d of %d, %d errors", a.Completed, spec.Requests, a.Errors)
	}
	if a.Completed != b.Completed || a.Violated != b.Violated || a.Relegated != b.Relegated {
		t.Fatalf("replay diverged: A completed=%d violated=%d relegated=%d, B completed=%d violated=%d relegated=%d",
			a.Completed, a.Violated, a.Relegated, b.Completed, b.Violated, b.Relegated)
	}
	if !reflect.DeepEqual(a.PerClass, b.PerClass) {
		t.Fatalf("per-class tallies diverged: %+v vs %+v", a.PerClass, b.PerClass)
	}
	if a.Tokens != b.Tokens {
		t.Fatalf("token tallies diverged: %d vs %d", a.Tokens, b.Tokens)
	}
}

// TestFrameDeliveryEquivalence replays the same seeded workload against an
// unbatched gateway (per-token channels) and a batched-frame gateway
// (server.Config.EventFrame) and requires the deterministic tallies to be
// identical: frame coalescing changes how events travel, never which
// requests complete, violate, or relegate.
func TestFrameDeliveryEquivalence(t *testing.T) {
	spec := testSpec(Closed)
	run := func(eventFrame int) Report {
		srv, err := server.New(server.Config{
			Model:            model.Llama3_8B_A100_TP1(),
			SchedulerFactory: func() sched.Scheduler { return sched.NewSarathi(sched.FCFS, 512) },
			Replicas:         2,
			Classes:          qos.Table3(),
			Timescale:        200,
			EventFrame:       eventFrame,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		rep, err := Run(context.Background(), srv, spec)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	plain, framed := run(0), run(4)
	if plain.Completed != spec.Requests || plain.Errors != 0 {
		t.Fatalf("unbatched run: completed %d of %d, %d errors", plain.Completed, spec.Requests, plain.Errors)
	}
	if framed.Completed != plain.Completed || framed.Violated != plain.Violated ||
		framed.Relegated != plain.Relegated || framed.Tokens != plain.Tokens {
		t.Fatalf("delivery modes diverged: unbatched completed=%d violated=%d relegated=%d tokens=%d, batched completed=%d violated=%d relegated=%d tokens=%d",
			plain.Completed, plain.Violated, plain.Relegated, plain.Tokens,
			framed.Completed, framed.Violated, framed.Relegated, framed.Tokens)
	}
	if !reflect.DeepEqual(plain.PerClass, framed.PerClass) {
		t.Fatalf("per-class tallies diverged: unbatched %+v, batched %+v", plain.PerClass, framed.PerClass)
	}
}

// TestOpenLoopCompletesAll exercises the Poisson pacer end to end.
func TestOpenLoopCompletesAll(t *testing.T) {
	spec := testSpec(Open)
	spec.Requests = 30
	srv := newGateway(t, 2)
	rep, err := Run(context.Background(), srv, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != spec.Requests || rep.Errors != 0 {
		t.Fatalf("completed %d of %d, %d errors", rep.Completed, spec.Requests, rep.Errors)
	}
	if rep.TTFTP99MS < rep.TTFTP50MS {
		t.Fatalf("quantiles out of order: p50 %v > p99 %v", rep.TTFTP50MS, rep.TTFTP99MS)
	}
}

func TestQuantileNearestRank(t *testing.T) {
	vs := []float64{5, 1, 3, 2, 4}
	if q := quantile(vs, 0.5); q != 3 {
		t.Fatalf("p50 = %v, want 3", q)
	}
	if q := quantile(vs, 0.99); q != 4 {
		t.Fatalf("p99 of 5 samples = %v, want 4 (nearest rank below max)", q)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
	// The input slice must not be reordered.
	if vs[0] != 5 || vs[4] != 4 {
		t.Fatal("quantile mutated its input")
	}
}

func TestTokenDistSampleWithinClamp(t *testing.T) {
	d := workload.TokenDist{P50: 256, P90: 512, Max: 1024}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if n := d.Sample(rng); n < 1 || n > 1024 {
			t.Fatalf("sample %d outside [1,1024]", n)
		}
	}
}
