package loadgen

import (
	"context"
	"io"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"qoserve/internal/model"
	"qoserve/internal/qos"
	"qoserve/internal/sched"
	"qoserve/internal/server"
)

// deterministicCounters are the /metrics families fully determined by the
// workload — sums over completed requests, independent of how scheduling
// interleaved them — so two replays of the same seed must reproduce them
// bit-for-bit. Gauges and latency-derived metrics are deliberately
// excluded: wall-clock jitter moves those without breaking the replay
// contract. Trailing space pins the sample line, not the # HELP/# TYPE
// headers or longer metric names sharing the prefix.
var deterministicCounters = []string{
	"qoserve_requests_total ",
	"qoserve_tokens_total ",
	"qoserve_prefill_tokens_total ",
	"qoserve_decode_tokens_total ",
	"qoserve_disagg_handoffs_total ",
	"qoserve_disagg_transfer_tokens_total ",
	"qoserve_gateway_retries_total ",
	"qoserve_gateway_lost_tokens_total ",
	"qoserve_gateway_failed_requests_total ",
}

func counterLines(t *testing.T, srv *server.Server) []string {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, line := range strings.Split(string(body), "\n") {
		for _, prefix := range deterministicCounters {
			if strings.HasPrefix(line, prefix) {
				out = append(out, line)
			}
		}
	}
	if len(out) != len(deterministicCounters) {
		t.Fatalf("expected %d deterministic counter lines, got %d:\n%s",
			len(deterministicCounters), len(out), strings.Join(out, "\n"))
	}
	return out
}

// TestDisaggReplayIsDeterministic extends the replay contract to the
// two-tier gateway: the same seeded closed-loop workload against a fresh
// disaggregated gateway (2 prefill + 2 decode replicas) must reproduce
// identical completion/violation tallies and identical workload-determined
// /metrics counters, even though KV-transfer timers make the decode-tier
// admission order nondeterministic.
func TestDisaggReplayIsDeterministic(t *testing.T) {
	spec := testSpec(Closed)
	run := func() (Report, []string) {
		srv, err := server.New(server.Config{
			Model:            model.Llama3_8B_A100_TP1(),
			SchedulerFactory: func() sched.Scheduler { return sched.NewSarathi(sched.EDF, 512) },
			Mode:             "disagg",
			Replicas:         4,
			PrefillReplicas:  2,
			Classes:          qos.Table3(),
			// Same headroom argument as newGateway: at 200x the SLO budgets
			// are orders of magnitude above the queueing + transfer delay
			// this load causes, so wall-clock jitter cannot flip violation
			// tallies between replays.
			Timescale: 200,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		rep, err := Run(context.Background(), srv, spec)
		if err != nil {
			t.Fatal(err)
		}
		if dropped := srv.DroppedEvents(); dropped != 0 {
			t.Fatalf("%d events dropped; buffers should cover these decode lengths", dropped)
		}
		return rep, counterLines(t, srv)
	}
	a, am := run()
	b, bm := run()
	if a.Completed != spec.Requests || a.Errors != 0 {
		t.Fatalf("run A: completed %d of %d, %d errors", a.Completed, spec.Requests, a.Errors)
	}
	if a.Completed != b.Completed || a.Violated != b.Violated || a.Relegated != b.Relegated {
		t.Fatalf("replay diverged: A completed=%d violated=%d relegated=%d, B completed=%d violated=%d relegated=%d",
			a.Completed, a.Violated, a.Relegated, b.Completed, b.Violated, b.Relegated)
	}
	if !reflect.DeepEqual(a.PerClass, b.PerClass) {
		t.Fatalf("per-class tallies diverged: %+v vs %+v", a.PerClass, b.PerClass)
	}
	if a.Tokens != b.Tokens {
		t.Fatalf("token tallies diverged: %d vs %d", a.Tokens, b.Tokens)
	}
	if !reflect.DeepEqual(am, bm) {
		t.Fatalf("deterministic /metrics counters diverged:\nA:\n%s\nB:\n%s",
			strings.Join(am, "\n"), strings.Join(bm, "\n"))
	}
	// A crash-free run must not exercise the fault path at all.
	for _, line := range am {
		for _, zero := range []string{
			"qoserve_gateway_retries_total ",
			"qoserve_gateway_lost_tokens_total ",
			"qoserve_gateway_failed_requests_total ",
		} {
			if strings.HasPrefix(line, zero) && !strings.HasSuffix(line, " 0") {
				t.Errorf("fault-path counter nonzero on a healthy run: %s", line)
			}
		}
	}
}
