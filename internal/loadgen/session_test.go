package loadgen

import (
	"context"
	"reflect"
	"testing"

	"qoserve/internal/cluster"
	"qoserve/internal/model"
	"qoserve/internal/qos"
	"qoserve/internal/sched"
	"qoserve/internal/server"
	"qoserve/internal/workload"
)

func sessionTestSpec(mode Mode) Spec {
	spec := testSpec(mode)
	spec.SessionTurns = 4
	spec.FollowUp = workload.TokenDist{P50: 32, P90: 64, Max: 256}
	return spec
}

func TestGenerateSessionsDeterministic(t *testing.T) {
	spec := sessionTestSpec(Open)
	a, err := generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two session generations from the same spec differ")
	}

	groups := groupSessions(spec, a)
	for _, g := range groups {
		if len(g) > spec.SessionTurns {
			t.Fatalf("session of %d turns exceeds %d", len(g), spec.SessionTurns)
		}
		first := a[g[0]]
		for k, i := range g {
			r := a[i]
			if r.class != first.class {
				t.Fatal("session spans classes")
			}
			if k > 0 {
				prev := a[g[k-1]]
				if r.gap != 0 {
					t.Fatal("follow-up turn carries an arrival gap")
				}
				if r.prompt <= prev.prompt && prev.prompt < workload.DefaultMaxTokens {
					t.Fatalf("context did not grow: turn %d prompt %d after %d", k, r.prompt, prev.prompt)
				}
				// The previous turn's chain must be a prefix of this one's:
				// that is what makes the follow-up a cache hit.
				if len(prev.chain) > len(r.chain) || !reflect.DeepEqual(prev.chain, r.chain[:len(prev.chain)]) {
					t.Fatalf("turn %d chain does not extend turn %d's", k, k-1)
				}
			}
		}
	}
	// Distinct sessions must not share chains.
	heads := map[uint64]bool{}
	for _, g := range groups {
		if c := a[g[0]].chain; len(c) > 0 {
			if heads[c[0]] {
				t.Fatal("two sessions share a chain head")
			}
			heads[c[0]] = true
		}
	}
}

func TestGenerateSessionRejectsBadSpecs(t *testing.T) {
	neg := testSpec(Closed)
	neg.SessionTurns = -1
	if _, err := generate(neg); err == nil {
		t.Error("negative session turns accepted")
	}
	noFollow := testSpec(Closed)
	noFollow.SessionTurns = 3
	noFollow.FollowUp = workload.TokenDist{P50: 64, P90: 32, Max: 256} // p90 < p50
	if _, err := generate(noFollow); err == nil {
		t.Error("invalid follow-up distribution accepted")
	}
}

// Session-mode replay must stay deterministic with prefix routing in the
// loop, and the shared prefixes must actually hit the cache.
func TestSessionReplayIsDeterministic(t *testing.T) {
	spec := sessionTestSpec(Closed)
	run := func() (Report, server.KVStats) {
		srv, err := server.New(server.Config{
			Model:            model.Llama3_8B_A100_TP1(),
			SchedulerFactory: func() sched.Scheduler { return sched.NewSarathi(sched.FCFS, 512) },
			Replicas:         2,
			Balancer:         &cluster.PrefixAffinity{},
			Classes:          qos.Table3(),
			Timescale:        200,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		rep, err := Run(context.Background(), srv, spec)
		if err != nil {
			t.Fatal(err)
		}
		return rep, srv.KVStats()
	}
	a, akv := run()
	b, _ := run()
	if a.Completed != spec.Requests || a.Errors != 0 {
		t.Fatalf("run A: completed %d of %d, %d errors", a.Completed, spec.Requests, a.Errors)
	}
	if a.Completed != b.Completed || a.Violated != b.Violated || a.Relegated != b.Relegated {
		t.Fatalf("replay diverged: A completed=%d violated=%d relegated=%d, B completed=%d violated=%d relegated=%d",
			a.Completed, a.Violated, a.Relegated, b.Completed, b.Violated, b.Relegated)
	}
	if !reflect.DeepEqual(a.PerClass, b.PerClass) {
		t.Fatalf("per-class tallies diverged: %+v vs %+v", a.PerClass, b.PerClass)
	}
	if a.Tokens != b.Tokens {
		t.Fatalf("token tallies diverged: %d vs %d", a.Tokens, b.Tokens)
	}
	if akv.PrefixHitTokens == 0 {
		t.Fatal("session workload produced no prefix hits")
	}
}
