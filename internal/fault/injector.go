package fault

import (
	"fmt"

	"qoserve/internal/sim"
)

// Target is the surface an injector drives. internal/cluster.Cluster
// implements it; tests can substitute fakes.
type Target interface {
	// Size is the number of replicas (bounds injection indices).
	Size() int
	// Crash kills replica i at the current virtual time.
	Crash(i int)
	// Restart returns crashed replica i to service.
	Restart(i int)
	// SetSlow sets replica i's execution-time multiplier (<= 1 restores
	// nominal speed).
	SetSlow(i int, factor float64)
}

// injectPriority orders fault events before arrival events (priority -1)
// at the same timestamp: a replica that crashes at t must not receive the
// arrival at t, and a replica that restarts at t must be routable for it.
const injectPriority = -2

// Arm validates the schedule against the target's size and schedules every
// injection on the engine. The schedule is applied by value; mutating it
// after Arm has no effect.
func Arm(engine *sim.Engine, target Target, s Schedule) error {
	if err := s.Validate(target.Size()); err != nil {
		return err
	}
	for _, in := range s {
		in := in
		if in.At < engine.Now() {
			return fmt.Errorf("fault: injection %v is in the past (now %v)", in, engine.Now())
		}
		engine.AtPriority(in.At, injectPriority, sim.EventFunc(func(_ *sim.Engine, _ sim.Time) {
			switch in.Kind {
			case Crash:
				target.Crash(in.Replica)
			case Restart:
				target.Restart(in.Replica)
			case Slow:
				target.SetSlow(in.Replica, in.Factor)
			}
		}))
	}
	return nil
}
