package fault

import (
	"reflect"
	"testing"

	"qoserve/internal/sim"
)

func TestParseScheduleRoundTrip(t *testing.T) {
	spec := "crash@30s:1,restart@1m30s:1,slow@10s:2x3.5,slow@2m:2x1"
	s, err := ParseSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 4 {
		t.Fatalf("parsed %d injections, want 4", len(s))
	}
	// Sorted by time.
	want := Schedule{
		{At: 10 * sim.Second, Replica: 2, Kind: Slow, Factor: 3.5},
		{At: 30 * sim.Second, Replica: 1, Kind: Crash},
		{At: 90 * sim.Second, Replica: 1, Kind: Restart},
		{At: 2 * sim.Minute, Replica: 2, Kind: Slow, Factor: 1},
	}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("parsed %v, want %v", s, want)
	}
	// String() re-parses to the same schedule.
	back, err := ParseSchedule(s.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", s.String(), err)
	}
	if !reflect.DeepEqual(back, s) {
		t.Fatalf("round trip %v != %v", back, s)
	}
}

func TestParseScheduleEmpty(t *testing.T) {
	for _, spec := range []string{"", "   ", ",", " , "} {
		s, err := ParseSchedule(spec)
		if err != nil || len(s) != 0 {
			t.Errorf("ParseSchedule(%q) = %v, %v; want empty, nil", spec, s, err)
		}
	}
}

func TestParseScheduleErrors(t *testing.T) {
	for _, spec := range []string{
		"explode@30s:1",  // unknown kind
		"crash@30s",      // missing replica
		"crash:1",        // missing time
		"crash@eleven:1", // bad duration
		"crash@30s:x",    // bad index
		"crash@30s:-1",   // negative index
		"crash@-5s:1",    // negative time
		"slow@30s:1",     // slow without factor
		"slow@30s:1x-2",  // negative factor
		"slow@30s:1xq",   // unparseable factor
	} {
		if _, err := ParseSchedule(spec); err == nil {
			t.Errorf("ParseSchedule(%q) accepted", spec)
		}
	}
}

func TestScheduleValidateBounds(t *testing.T) {
	s := Schedule{{At: sim.Second, Replica: 3, Kind: Crash}}
	if err := s.Validate(3); err == nil {
		t.Error("out-of-range replica accepted")
	}
	if err := s.Validate(4); err != nil {
		t.Errorf("in-range replica rejected: %v", err)
	}
	if err := s.Validate(0); err != nil {
		t.Errorf("unbounded validation rejected: %v", err)
	}
}

func TestRandomDeterministic(t *testing.T) {
	cfg := RandomConfig{Seed: 7, Replicas: 4, Horizon: sim.Hour, MTBF: 5 * sim.Minute, MTTR: sim.Minute}
	a, err := Random(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a) == 0 {
		t.Fatal("hour-long horizon with 5m MTBF produced no injections")
	}
	cfg.Seed = 8
	c, err := Random(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	// Per-replica alternation: first event for each replica is a crash,
	// and crashes/restarts alternate.
	state := map[int]Kind{}
	for _, in := range a {
		if in.At >= cfg.Horizon {
			t.Fatalf("injection %v beyond horizon", in)
		}
		prev, seen := state[in.Replica]
		if !seen && in.Kind != Crash {
			t.Fatalf("replica %d starts with %v, want crash", in.Replica, in.Kind)
		}
		if seen && in.Kind == prev {
			t.Fatalf("replica %d has consecutive %v injections", in.Replica, in.Kind)
		}
		state[in.Replica] = in.Kind
	}
}

func TestRandomNoRepair(t *testing.T) {
	s, err := Random(RandomConfig{Seed: 1, Replicas: 3, Horizon: sim.Hour, MTBF: sim.Minute})
	if err != nil {
		t.Fatal(err)
	}
	perReplica := map[int]int{}
	for _, in := range s {
		if in.Kind != Crash {
			t.Fatalf("MTTR=0 produced %v", in)
		}
		perReplica[in.Replica]++
	}
	for rep, n := range perReplica {
		if n != 1 {
			t.Fatalf("replica %d crashed %d times without repair", rep, n)
		}
	}
}

func TestRandomValidation(t *testing.T) {
	bad := []RandomConfig{
		{Seed: 1, Replicas: 0, Horizon: sim.Hour, MTBF: sim.Minute},
		{Seed: 1, Replicas: 2, Horizon: 0, MTBF: sim.Minute},
		{Seed: 1, Replicas: 2, Horizon: sim.Hour, MTBF: 0},
		{Seed: 1, Replicas: 2, Horizon: sim.Hour, MTBF: sim.Minute, MTTR: -sim.Second},
	}
	for _, cfg := range bad {
		if _, err := Random(cfg); err == nil {
			t.Errorf("Random(%+v) accepted", cfg)
		}
	}
}

// fakeTarget records applied injections in order.
type fakeTarget struct {
	size int
	log  []string
	eng  *sim.Engine
}

func (f *fakeTarget) Size() int { return f.size }
func (f *fakeTarget) Crash(i int) {
	f.log = append(f.log, Injection{At: f.eng.Now(), Replica: i, Kind: Crash}.String())
}
func (f *fakeTarget) Restart(i int) {
	f.log = append(f.log, Injection{At: f.eng.Now(), Replica: i, Kind: Restart}.String())
}
func (f *fakeTarget) SetSlow(i int, factor float64) {
	f.log = append(f.log, Injection{At: f.eng.Now(), Replica: i, Kind: Slow, Factor: factor}.String())
}

func TestArmAppliesInOrder(t *testing.T) {
	engine := sim.NewEngine()
	target := &fakeTarget{size: 3, eng: engine}
	s, err := ParseSchedule("restart@20s:0,crash@10s:0,slow@15s:1x2")
	if err != nil {
		t.Fatal(err)
	}
	if err := Arm(engine, target, s); err != nil {
		t.Fatal(err)
	}
	engine.Run()
	want := []string{"crash@10s:0", "slow@15s:1x2", "restart@20s:0"}
	if !reflect.DeepEqual(target.log, want) {
		t.Fatalf("applied %v, want %v", target.log, want)
	}
}

func TestArmRejectsOutOfRange(t *testing.T) {
	engine := sim.NewEngine()
	target := &fakeTarget{size: 2, eng: engine}
	s := Schedule{{At: sim.Second, Replica: 5, Kind: Crash}}
	if err := Arm(engine, target, s); err == nil {
		t.Fatal("out-of-range injection armed")
	}
}

// orderTarget appends every applied injection to a shared ordered log.
type orderTarget struct{ order *[]string }

func (o orderTarget) Size() int            { return 1 }
func (o orderTarget) Crash(int)            { *o.order = append(*o.order, "crash") }
func (o orderTarget) Restart(int)          { *o.order = append(*o.order, "restart") }
func (o orderTarget) SetSlow(int, float64) { *o.order = append(*o.order, "slow") }

func TestInjectionsFireBeforeArrivals(t *testing.T) {
	// A fault and an arrival at the same timestamp: the fault must win,
	// otherwise a crash at t could race the arrival it should orphan.
	engine := sim.NewEngine()
	var order []string
	engine.AtPriority(sim.Second, -1, sim.EventFunc(func(_ *sim.Engine, _ sim.Time) {
		order = append(order, "arrival")
	}))
	if err := Arm(engine, orderTarget{&order}, Schedule{{At: sim.Second, Replica: 0, Kind: Crash}}); err != nil {
		t.Fatal(err)
	}
	engine.Run()
	want := []string{"crash", "arrival"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}
