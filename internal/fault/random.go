package fault

import (
	"fmt"
	"math/rand"

	"qoserve/internal/sim"
)

// RandomConfig parameterizes seeded random schedule generation.
type RandomConfig struct {
	// Seed makes generation deterministic: equal seeds yield equal
	// schedules.
	Seed int64
	// Replicas is the cluster size; every replica gets an independent
	// up/down alternation.
	Replicas int
	// Horizon bounds injection times; no injection is generated at or
	// beyond it.
	Horizon sim.Time
	// MTBF is the mean time between failures (mean healthy interval
	// before a crash, exponentially distributed).
	MTBF sim.Time
	// MTTR is the mean time to recovery (mean downtime before the
	// restart, exponentially distributed). Zero disables restarts:
	// crashed replicas stay down.
	MTTR sim.Time
}

// Validate reports a configuration error, if any.
func (c RandomConfig) Validate() error {
	if c.Replicas <= 0 {
		return fmt.Errorf("fault: random schedule over %d replicas", c.Replicas)
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("fault: random schedule with horizon %v", c.Horizon)
	}
	if c.MTBF <= 0 {
		return fmt.Errorf("fault: random schedule with MTBF %v", c.MTBF)
	}
	if c.MTTR < 0 {
		return fmt.Errorf("fault: random schedule with negative MTTR %v", c.MTTR)
	}
	return nil
}

// Random generates a crash/restart schedule by alternating each replica
// between exponentially distributed healthy intervals (mean MTBF) and
// downtimes (mean MTTR), the classic renewal model of machine failure.
// Generation is per-replica in index order from a single seeded source, so
// the result is a pure function of the configuration. The returned
// schedule is sorted.
func Random(c RandomConfig) (Schedule, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	var s Schedule
	for rep := 0; rep < c.Replicas; rep++ {
		t := sim.Time(0)
		for {
			t += sim.FromSeconds(rng.ExpFloat64() * c.MTBF.Seconds())
			if t >= c.Horizon {
				break
			}
			s = append(s, Injection{At: t, Replica: rep, Kind: Crash})
			if c.MTTR <= 0 {
				break // no repair: this replica is gone for good
			}
			t += sim.FromSeconds(rng.ExpFloat64() * c.MTTR.Seconds())
			if t >= c.Horizon {
				break
			}
			s = append(s, Injection{At: t, Replica: rep, Kind: Restart})
		}
	}
	s.Sort()
	return s, nil
}
