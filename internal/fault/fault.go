// Package fault provides deterministic fault injection for the cluster
// layer: scripted or seeded-random schedules of replica crashes, restarts,
// and slow-replica (straggler) degradations, armed onto the discrete-event
// simulation engine.
//
// Everything here is deterministic by construction. A Schedule is a plain
// sorted list of timed injections; Random generates one from a seed using
// exponential up/down alternation (MTBF/MTTR), and Arm turns a schedule
// into simulation events. Two runs with the same workload seed and the
// same fault schedule produce byte-identical metrics, which is what makes
// chaos testing assertable: the test replays a schedule and checks that
// no request is ever silently dropped.
//
// The package deliberately knows nothing about clusters or replicas beyond
// the three-verb Target interface, so it sits below internal/cluster in
// the dependency order and can drive any component that exposes indexed
// crash/restart/degrade operations.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"qoserve/internal/sim"
)

// Kind classifies one injected fault.
type Kind uint8

// Fault kinds.
const (
	// Crash kills a replica: in-flight work is orphaned, KV state lost.
	Crash Kind = iota
	// Restart returns a crashed replica to service (fresh scheduler,
	// empty KV cache).
	Restart
	// Slow multiplies a replica's iteration time by Factor (a straggler
	// GPU); Factor <= 1 restores nominal speed.
	Slow
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Restart:
		return "restart"
	case Slow:
		return "slow"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Injection is one timed fault: at virtual time At, apply Kind to replica
// index Replica. Factor is the latency multiplier for Slow injections and
// ignored otherwise.
type Injection struct {
	At      sim.Time
	Replica int
	Kind    Kind
	Factor  float64
}

// Validate reports an input error, if any. replicas bounds the replica
// index; pass 0 to skip the bound check (index unknown yet).
func (in Injection) Validate(replicas int) error {
	if in.At < 0 {
		return fmt.Errorf("fault: injection at negative time %v", in.At)
	}
	if in.Replica < 0 {
		return fmt.Errorf("fault: negative replica index %d", in.Replica)
	}
	if replicas > 0 && in.Replica >= replicas {
		return fmt.Errorf("fault: replica index %d out of range [0,%d)", in.Replica, replicas)
	}
	if in.Kind == Slow && (in.Factor != in.Factor || in.Factor < 0) { // NaN or negative
		return fmt.Errorf("fault: slow injection with factor %v", in.Factor)
	}
	if in.Kind > Slow {
		return fmt.Errorf("fault: unknown kind %d", in.Kind)
	}
	return nil
}

// String renders the injection in the spec syntax ParseSchedule accepts:
// kind@duration:replica for crash/restart, kind@duration:replicaxfactor
// for slow.
func (in Injection) String() string {
	s := fmt.Sprintf("%s@%s:%d", in.Kind, in.At, in.Replica)
	if in.Kind == Slow {
		s += "x" + strconv.FormatFloat(in.Factor, 'g', -1, 64)
	}
	return s
}

// Schedule is a time-ordered list of injections.
type Schedule []Injection

// Validate checks every injection; replicas bounds the indices (0 skips).
func (s Schedule) Validate(replicas int) error {
	for i, in := range s {
		if err := in.Validate(replicas); err != nil {
			return fmt.Errorf("injection %d: %w", i, err)
		}
	}
	return nil
}

// Sort orders the schedule by (time, replica, kind) so that arming it is
// deterministic regardless of construction order. Restart sorts after
// Crash at equal timestamps, preserving crash-then-recover semantics.
func (s Schedule) Sort() {
	sort.SliceStable(s, func(i, j int) bool {
		if s[i].At != s[j].At {
			return s[i].At < s[j].At
		}
		if s[i].Replica != s[j].Replica {
			return s[i].Replica < s[j].Replica
		}
		return s[i].Kind < s[j].Kind
	})
}

// String renders the schedule as a spec string ParseSchedule round-trips.
func (s Schedule) String() string {
	parts := make([]string, len(s))
	for i, in := range s {
		parts[i] = in.String()
	}
	return strings.Join(parts, ",")
}

// ParseSchedule parses a comma-separated injection spec:
//
//	crash@30s:1           crash replica 1 at t=30s
//	restart@1m:1          restart replica 1 at t=1m
//	slow@10s:2x3.5        slow replica 2 by 3.5x from t=10s
//	slow@90s:2x1          restore replica 2 at t=90s
//
// Durations use Go syntax. The result is sorted and validated (indices
// unbounded; pass the cluster size to Schedule.Validate for a bound check).
func ParseSchedule(spec string) (Schedule, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var s Schedule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		in, err := parseInjection(part)
		if err != nil {
			return nil, err
		}
		s = append(s, in)
	}
	s.Sort()
	if err := s.Validate(0); err != nil {
		return nil, err
	}
	return s, nil
}

func parseInjection(part string) (Injection, error) {
	kindStr, rest, ok := strings.Cut(part, "@")
	if !ok {
		return Injection{}, fmt.Errorf("fault: %q: want kind@time:replica", part)
	}
	var in Injection
	switch kindStr {
	case "crash":
		in.Kind = Crash
	case "restart":
		in.Kind = Restart
	case "slow":
		in.Kind = Slow
	default:
		return Injection{}, fmt.Errorf("fault: %q: unknown kind %q (want crash, restart, or slow)", part, kindStr)
	}
	atStr, repStr, ok := strings.Cut(rest, ":")
	if !ok {
		return Injection{}, fmt.Errorf("fault: %q: missing replica index", part)
	}
	d, err := time.ParseDuration(atStr)
	if err != nil {
		return Injection{}, fmt.Errorf("fault: %q: bad time %q: %v", part, atStr, err)
	}
	in.At = sim.FromDuration(d)
	if in.Kind == Slow {
		idxStr, facStr, ok := strings.Cut(repStr, "x")
		if !ok {
			return Injection{}, fmt.Errorf("fault: %q: slow wants replicaxfactor (e.g. 2x3.5)", part)
		}
		f, err := strconv.ParseFloat(facStr, 64)
		if err != nil {
			return Injection{}, fmt.Errorf("fault: %q: bad factor %q: %v", part, facStr, err)
		}
		in.Factor = f
		repStr = idxStr
	}
	idx, err := strconv.Atoi(repStr)
	if err != nil {
		return Injection{}, fmt.Errorf("fault: %q: bad replica index %q: %v", part, repStr, err)
	}
	in.Replica = idx
	if err := in.Validate(0); err != nil {
		return Injection{}, err
	}
	return in, nil
}
