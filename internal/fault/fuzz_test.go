package fault

import (
	"reflect"
	"testing"
)

// FuzzParseSchedule feeds arbitrary specification strings to the fault
// schedule parser: it must never panic, and any schedule it accepts must
// survive a String/Parse round trip unchanged (the property the CLI's
// -fail flag relies on).
func FuzzParseSchedule(f *testing.F) {
	f.Add("crash@30s:1,restart@1m30s:1,slow@10s:2x3.5")
	f.Add("crash@0s:0")
	f.Add("slow@1h:3x0.5")
	f.Add("")
	f.Add("crash@-5s:1")
	f.Add("slow@30s:1x")
	f.Add("explode@1s:2,,crash@@:x")

	f.Fuzz(func(t *testing.T, spec string) {
		s, err := ParseSchedule(spec)
		if err != nil {
			return
		}
		if err := s.Validate(0); err != nil {
			t.Fatalf("accepted schedule fails validation: %v", err)
		}
		back, err := ParseSchedule(s.String())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", s.String(), err)
		}
		if !reflect.DeepEqual(back, s) {
			t.Fatalf("round trip changed the schedule: %v != %v", back, s)
		}
	})
}
