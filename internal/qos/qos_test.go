package qos

import (
	"testing"
	"testing/quick"

	"qoserve/internal/sim"
)

func TestTable3Valid(t *testing.T) {
	classes := Table3()
	if len(classes) != 3 {
		t.Fatalf("Table3 has %d classes, want 3", len(classes))
	}
	for _, c := range classes {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
	if classes[0].Kind != Interactive || classes[1].Kind != NonInteractive {
		t.Error("Table3 kinds wrong")
	}
	if classes[0].SLO.TTFT != 6*sim.Second || classes[0].SLO.TBT != 50*sim.Millisecond {
		t.Errorf("Q1 SLO = %+v", classes[0].SLO)
	}
	if classes[1].SLO.TTLT != 600*sim.Second || classes[2].SLO.TTLT != 1800*sim.Second {
		t.Error("Q2/Q3 TTLT wrong")
	}
}

func TestVariantsValid(t *testing.T) {
	for _, set := range [][]Class{StrictVariant(), PolyServeTiers()} {
		for _, c := range set {
			if err := c.Validate(); err != nil {
				t.Errorf("%s: %v", c.Name, err)
			}
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []Class{
		{Name: "no-ttft", Kind: Interactive, SLO: SLO{TBT: sim.Millisecond}},
		{Name: "no-tbt", Kind: Interactive, SLO: SLO{TTFT: sim.Second}},
		{Name: "no-ttlt", Kind: NonInteractive},
		{Name: "bad-kind", Kind: Kind(9), SLO: SLO{TTFT: 1, TBT: 1, TTLT: 1}},
	}
	for _, c := range cases {
		if c.Validate() == nil {
			t.Errorf("class %q accepted", c.Name)
		}
	}
}

func TestInteractiveDeadlines(t *testing.T) {
	c := Class{Name: "Q1", Kind: Interactive,
		SLO: SLO{TTFT: 6 * sim.Second, TBT: 50 * sim.Millisecond}}
	arrival := 10 * sim.Second

	// Eq. 1: D_first = arrival + SLO_TTFT.
	if got := c.FirstTokenDeadline(arrival); got != 16*sim.Second {
		t.Errorf("first-token deadline = %v, want 16s", got)
	}
	// Eq. 2: D_n = arrival + SLO_TTFT + (n-1)*SLO_TBT.
	if got := c.TokenDeadline(arrival, 1); got != 16*sim.Second {
		t.Errorf("token-1 deadline = %v, want 16s", got)
	}
	if got := c.TokenDeadline(arrival, 21); got != 17*sim.Second {
		t.Errorf("token-21 deadline = %v, want 17s", got)
	}
	// n < 1 clamps to the first token.
	if got := c.TokenDeadline(arrival, 0); got != 16*sim.Second {
		t.Errorf("token-0 deadline = %v, want 16s", got)
	}
	// Completion deadline is the last token's deadline.
	if got := c.CompletionDeadline(arrival, 21); got != 17*sim.Second {
		t.Errorf("completion deadline = %v, want 17s", got)
	}
}

func TestNonInteractiveDeadlines(t *testing.T) {
	c := Class{Name: "Q2", Kind: NonInteractive, SLO: SLO{TTLT: 600 * sim.Second}}
	arrival := 5 * sim.Second

	// Eq. 3: one deadline for everything.
	want := 605 * sim.Second
	if got := c.FirstTokenDeadline(arrival); got != want {
		t.Errorf("first-token deadline = %v, want %v", got, want)
	}
	if got := c.TokenDeadline(arrival, 100); got != want {
		t.Errorf("token deadline = %v, want %v", got, want)
	}
	if got := c.CompletionDeadline(arrival, 100); got != want {
		t.Errorf("completion deadline = %v, want %v", got, want)
	}
}

// Property: token deadlines are non-decreasing in n for any class.
func TestTokenDeadlineMonotoneProperty(t *testing.T) {
	classes := append(Table3(), StrictVariant()...)
	f := func(arrivalMS uint32, n uint8) bool {
		arrival := sim.Time(arrivalMS) * sim.Millisecond
		for _, c := range classes {
			if c.TokenDeadline(arrival, int(n)+1) > c.TokenDeadline(arrival, int(n)+2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringers(t *testing.T) {
	if Interactive.String() != "interactive" || NonInteractive.String() != "non-interactive" {
		t.Error("Kind.String wrong")
	}
	if Kind(7).String() != "Kind(7)" {
		t.Errorf("unknown kind string = %q", Kind(7).String())
	}
	if High.String() != "high" || Low.String() != "low" {
		t.Error("Priority.String wrong")
	}
	if Priority(3).String() != "Priority(3)" {
		t.Errorf("unknown priority string = %q", Priority(3).String())
	}
}
