// Package qos defines Quality-of-Service classes, SLO targets, the deadline
// arithmetic of the paper's Section 3.2 (Equations 1-3), and request
// priority tiers used for eager relegation.
package qos

import (
	"fmt"

	"qoserve/internal/sim"
)

// Kind distinguishes the two QoS classes of Section 3.2.
type Kind int

// QoS class kinds.
const (
	// Interactive requests carry TTFT and TBT SLOs (chat, coding
	// assistants).
	Interactive Kind = iota
	// NonInteractive requests carry a single TTLT SLO (summarization,
	// batch analytics).
	NonInteractive
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Interactive:
		return "interactive"
	case NonInteractive:
		return "non-interactive"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Priority is the application-provided importance hint (Section 3.4): under
// overload, low-priority (free-tier) requests are relegated before
// high-priority (paid-tier) ones.
type Priority int

// Priority tiers.
const (
	High Priority = iota // paid tier / important
	Low                  // free tier
)

// String implements fmt.Stringer.
func (p Priority) String() string {
	switch p {
	case High:
		return "high"
	case Low:
		return "low"
	default:
		return fmt.Sprintf("Priority(%d)", int(p))
	}
}

// SLO holds the latency targets of one QoS class. Interactive classes set
// TTFT and TBT; non-interactive classes set TTLT. Unset targets are zero.
type SLO struct {
	TTFT sim.Time // time to first token
	TBT  sim.Time // time between tokens
	TTLT sim.Time // time to last token
}

// Class is a named QoS bucket an application subscribes its requests to.
type Class struct {
	Name string
	Kind Kind
	SLO  SLO
}

// Validate reports a configuration error, if any.
func (c Class) Validate() error {
	switch c.Kind {
	case Interactive:
		if c.SLO.TTFT <= 0 || c.SLO.TBT <= 0 {
			return fmt.Errorf("qos class %q: interactive requires positive TTFT and TBT", c.Name)
		}
	case NonInteractive:
		if c.SLO.TTLT <= 0 {
			return fmt.Errorf("qos class %q: non-interactive requires positive TTLT", c.Name)
		}
	default:
		return fmt.Errorf("qos class %q: unknown kind %d", c.Name, int(c.Kind))
	}
	return nil
}

// FirstTokenDeadline implements Eq. 1 for interactive and Eq. 3 for
// non-interactive classes: the latest acceptable time for the first output
// token (interactive) or for full completion (non-interactive). For
// non-interactive requests the first-token deadline equals the total
// deadline, since only completion is promised.
//
//qoserve:hotpath
func (c Class) FirstTokenDeadline(arrival sim.Time) sim.Time {
	if c.Kind == Interactive {
		return arrival + c.SLO.TTFT
	}
	return arrival + c.SLO.TTLT
}

// TokenDeadline implements Eq. 2: the deadline of the n-th output token
// (1-based). For non-interactive classes, every token shares the TTLT
// deadline (Eq. 3) because only completion matters.
//
//qoserve:hotpath
func (c Class) TokenDeadline(arrival sim.Time, n int) sim.Time {
	if n < 1 {
		n = 1
	}
	if c.Kind == Interactive {
		return arrival + c.SLO.TTFT + sim.Time(int64(n-1))*c.SLO.TBT
	}
	return arrival + c.SLO.TTLT
}

// CompletionDeadline is the latest acceptable finish time: Eq. 3 for
// non-interactive classes; for interactive classes the deadline of the last
// token given the expected decode length.
//
//qoserve:hotpath
func (c Class) CompletionDeadline(arrival sim.Time, decodeTokens int) sim.Time {
	if c.Kind == Interactive {
		return c.TokenDeadline(arrival, decodeTokens)
	}
	return arrival + c.SLO.TTLT
}

// Table3 returns the paper's default three-tier configuration: Q1
// interactive (TTFT 6 s, TBT 50 ms), Q2 non-interactive (TTLT 600 s), Q3
// non-interactive (TTLT 1800 s).
func Table3() []Class {
	return []Class{
		{Name: "Q1", Kind: Interactive, SLO: SLO{TTFT: 6 * sim.Second, TBT: 50 * sim.Millisecond}},
		{Name: "Q2", Kind: NonInteractive, SLO: SLO{TTLT: 600 * sim.Second}},
		{Name: "Q3", Kind: NonInteractive, SLO: SLO{TTLT: 1800 * sim.Second}},
	}
}

// StrictVariant returns the Section 4.4.2 "varying SLO" configuration:
// Q1 (3 s, 50 ms), Q2 (6 s, 50 ms) both interactive, Q3 TTLT 1000 s.
func StrictVariant() []Class {
	return []Class{
		{Name: "Q1", Kind: Interactive, SLO: SLO{TTFT: 3 * sim.Second, TBT: 50 * sim.Millisecond}},
		{Name: "Q2", Kind: Interactive, SLO: SLO{TTFT: 6 * sim.Second, TBT: 50 * sim.Millisecond}},
		{Name: "Q3", Kind: NonInteractive, SLO: SLO{TTLT: 1000 * sim.Second}},
	}
}

// PolyServeTiers returns the Section 4.5.2 two-tier interactive setup:
// Q1 50 ms TBT and Q2 100 ms TBT, both with 6 s TTFT.
func PolyServeTiers() []Class {
	return []Class{
		{Name: "Q1", Kind: Interactive, SLO: SLO{TTFT: 6 * sim.Second, TBT: 50 * sim.Millisecond}},
		{Name: "Q2", Kind: Interactive, SLO: SLO{TTFT: 6 * sim.Second, TBT: 100 * sim.Millisecond}},
	}
}
