package analysis

import (
	"bytes"
	"testing"
)

// TestFactSetRoundTrip checks the JSON wire form: facts survive
// Encode/Import, the canonical encoding is deterministic, and lookups see
// imported facts exactly as local ones.
func TestFactSetRoundTrip(t *testing.T) {
	src := NewFactSet()
	src.Add(Fact{Analyzer: "frozen", Object: "pkg.Snap", Kind: "frozen", Detail: "Snap", File: "a.go", Line: 3, Col: 6})
	src.Add(Fact{Analyzer: "atomicfield", Object: "n@a.go:9:2", Kind: "atomic", Detail: "n", File: "a.go", Line: 9, Col: 2})
	src.Add(Fact{Analyzer: "frozen", Object: "(*pkg.Snap).Bump", Kind: "mutator", Detail: "pkg.Snap", File: "a.go", Line: 12, Col: 1})

	wire, err := src.Encode()
	if err != nil {
		t.Fatal(err)
	}
	wire2, err := src.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wire, wire2) {
		t.Error("Encode is not deterministic")
	}

	dst := NewFactSet()
	if err := dst.Import(wire); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != src.Len() {
		t.Fatalf("imported %d facts, want %d", dst.Len(), src.Len())
	}
	if !dst.Has("frozen", "pkg.Snap", "frozen") {
		t.Error("frozen fact lost in the wire format")
	}
	if !dst.Has("atomicfield", "n@a.go:9:2", "atomic") {
		t.Error("atomic fact lost in the wire format")
	}
	if got := dst.Get("frozen", "(*pkg.Snap).Bump"); len(got) != 1 || got[0].Detail != "pkg.Snap" {
		t.Errorf("mutator fact corrupted: %+v", got)
	}
	if got := dst.Kind("frozen", "mutator"); len(got) != 1 {
		t.Errorf("Kind(frozen, mutator) = %d facts, want 1", len(got))
	}
}

// TestFactSetImportRejectsIncomplete checks the importer validates the
// wire form instead of admitting half-formed facts.
func TestFactSetImportRejectsIncomplete(t *testing.T) {
	dst := NewFactSet()
	if err := dst.Import([]byte(`[{"analyzer":"frozen","object":"","kind":"frozen"}]`)); err == nil {
		t.Error("importing a fact with no object should fail")
	}
	if err := dst.Import([]byte(`{"not":"a list"}`)); err == nil {
		t.Error("importing malformed JSON should fail")
	}
}
