package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Frozen enforces the epoch-snapshot discipline behind the repo's
// lock-free reads: a value is immutable from the moment it is published.
// Two publication events are recognized:
//
//   - storing a pointer into a sync/atomic.Pointer (kvcache.GlobalIndex's
//     snapshot slots): any later field write through the stored variable
//     in the same function is flagged, and
//   - the //qoserve:frozen annotation on a type declaration: instances are
//     treated as published the moment they leave their constructor, in
//     every package that can see the type.
//
// Writes to a frozen-typed value are allowed only while it is provably
// pre-publication: the value is a local built in this very function from a
// composite literal, new(T), or zero-value declaration (and never
// reassigned from anywhere else), or the function later hands that exact
// variable to an atomic Store (the stamp-then-publish idiom of
// GlobalIndex.Publish), or the function is annotated //qoserve:ctor T,
// declaring itself part of T's construction path. Everything else —
// mutating a parameter, a field, a map lookup, or anything obtained from a
// call — is a report. Calls to mutator methods (methods of a frozen type
// that write their receiver, exported as cross-package facts by the
// declaring package) are policed under the same rules.
const frozenName = "frozen"

var Frozen = &Analyzer{
	Name:    frozenName,
	Doc:     "forbid mutation of //qoserve:frozen values and of pointers already published via atomic.Pointer.Store",
	FactGen: frozenFacts,
	Run:     runFrozen,
}

// FrozenDirective marks a type whose instances are immutable after
// construction.
const FrozenDirective = "//qoserve:frozen"

// CtorDirectivePrefix marks a function as part of a frozen type's
// construction path, e.g. //qoserve:ctor IndexSnapshot.
const CtorDirectivePrefix = "//qoserve:ctor"

const (
	frozenFactKind  = "frozen"
	mutatorFactKind = "mutator"
)

// frozenTypeKey is the stable cross-package name of a defined type.
func frozenTypeKey(obj *types.TypeName) string {
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// frozenFacts exports "frozen" facts for annotated type declarations and
// "mutator" facts for their methods that write receiver state.
func frozenFacts(pass *Pass) error {
	frozenTypes := map[types.Object]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				if !hasDirective(doc, FrozenDirective) {
					continue
				}
				if obj, ok := pass.Info.Defs[ts.Name].(*types.TypeName); ok {
					frozenTypes[obj] = true
					pass.ExportFact(frozenTypeKey(obj), frozenFactKind, obj.Name(), ts.Name.Pos())
				}
			}
		}
	}
	if len(frozenTypes) == 0 {
		return nil
	}
	// Methods of a frozen type that write receiver fields are mutators:
	// calling one on a published value is as bad as a direct field write.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) != 1 {
				continue
			}
			recvType := derefNamed(pass.Info.TypeOf(fd.Recv.List[0].Type))
			if recvType == nil || !frozenTypes[recvType.Obj()] {
				continue
			}
			var recvObj types.Object
			if names := fd.Recv.List[0].Names; len(names) == 1 {
				recvObj = pass.Info.Defs[names[0]]
			}
			if recvObj == nil {
				continue
			}
			if methodWritesReceiver(pass, fd, recvObj) {
				if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					pass.ExportFact(fn.FullName(), mutatorFactKind, frozenTypeKey(recvType.Obj()), fd.Name.Pos())
				}
			}
		}
	}
	return nil
}

// methodWritesReceiver reports whether the method body assigns through its
// receiver.
func methodWritesReceiver(pass *Pass, fd *ast.FuncDecl, recv types.Object) bool {
	writes := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var lhs []ast.Expr
		switch n := n.(type) {
		case *ast.AssignStmt:
			lhs = n.Lhs
		case *ast.IncDecStmt:
			lhs = []ast.Expr{n.X}
		default:
			return true
		}
		for _, e := range lhs {
			if base := writeBase(e); base != nil {
				if id, ok := base.(*ast.Ident); ok && pass.Info.Uses[id] == recv {
					writes = true
				}
			}
		}
		return !writes
	})
	return writes
}

// writeBase peels an assignment target down to the expression it mutates
// through: s.F -> s, s.M[k] -> s, (*p).F -> p, plain idents -> nil (a
// variable rebind is not a mutation of the pointee).
func writeBase(e ast.Expr) ast.Expr {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			return ast.Unparen(x.X)
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			return ast.Unparen(x.X)
		default:
			return nil
		}
	}
}

func runFrozen(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFrozenFunc(pass, fd)
		}
	}
	return nil
}

// ctorTypes returns the type names a //qoserve:ctor directive blesses the
// function to construct.
func ctorTypes(fd *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	if arg := directiveArg(fd.Doc, CtorDirectivePrefix); arg != "" {
		for _, name := range strings.Fields(arg) {
			out[name] = true
		}
	}
	return out
}

func checkFrozenFunc(pass *Pass, fd *ast.FuncDecl) {
	ctors := ctorTypes(fd)

	// publishedAt maps variables handed to an atomic Pointer Store (or the
	// new-value slot of CompareAndSwap) to the position of that call.
	publishedAt := map[types.Object]token.Pos{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(pass.Info, call)
		if fn == nil {
			return true
		}
		if origin := fn.Origin(); origin != nil {
			fn = origin
		}
		name := fn.FullName()
		var stored ast.Expr
		switch {
		case strings.HasPrefix(name, "(*sync/atomic.Pointer[") && fn.Name() == "Store" && len(call.Args) == 1:
			stored = call.Args[0]
		case strings.HasPrefix(name, "(*sync/atomic.Pointer[") && fn.Name() == "CompareAndSwap" && len(call.Args) == 2:
			stored = call.Args[1]
		default:
			return true
		}
		if id, ok := ast.Unparen(stored).(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil {
				if _, seen := publishedAt[obj]; !seen {
					publishedAt[obj] = call.Pos()
				}
			}
		}
		return true
	})

	fresh := freshLocals(pass, fd)

	allowed := func(base ast.Expr, at token.Pos, typeName, typeKey string) bool {
		if ctors[typeName] || ctors[typeKey] {
			return true
		}
		id, ok := ast.Unparen(base).(*ast.Ident)
		if !ok {
			return false
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return false
		}
		if pub, ok := publishedAt[obj]; ok {
			return at < pub // stamp-then-publish: writes before the Store
		}
		return fresh[obj]
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkFrozenWrite(pass, lhs, n.Pos(), publishedAt, allowed)
			}
		case *ast.IncDecStmt:
			checkFrozenWrite(pass, n.X, n.Pos(), publishedAt, allowed)
		case *ast.CallExpr:
			checkMutatorCall(pass, n, allowed)
		}
		return true
	})
}

// freshLocals returns the local variables that provably hold storage born
// in this function: every assignment to them is a composite literal,
// new(T), or zero-value declaration. A variable also assigned from a call,
// parameter, field, or any other expression is not fresh — it may alias a
// published value.
func freshLocals(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	tainted := map[types.Object]bool{}
	note := func(id *ast.Ident, rhs ast.Expr) {
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		if rhs == nil || isFreshExpr(rhs) {
			fresh[obj] = true
		} else {
			tainted[obj] = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok {
						note(id, n.Rhs[i])
					}
				}
			} else {
				for _, lhs := range n.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						note(id, n.Rhs[0]) // multi-value: calls only, tainted
					}
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				if len(n.Values) == 0 {
					note(id, nil) // var x T: zero value, fresh storage
				} else if i < len(n.Values) {
					note(id, n.Values[i])
				} else {
					note(id, n.Values[0])
				}
			}
		}
		return true
	})
	for obj := range tainted {
		delete(fresh, obj)
	}
	return fresh
}

// isFreshExpr reports whether the expression denotes newly-born storage.
func isFreshExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// checkFrozenWrite reports a write whose base is a frozen-typed value or a
// variable already published through an atomic pointer.
func checkFrozenWrite(pass *Pass, lhs ast.Expr, at token.Pos,
	publishedAt map[types.Object]token.Pos, allowed func(ast.Expr, token.Pos, string, string) bool) {
	base := writeBase(lhs)
	if base == nil {
		return // plain ident rebind: the pointee is untouched
	}
	named := derefNamed(pass.Info.TypeOf(base))
	if named != nil {
		key := frozenTypeKey(named.Obj())
		if pass.Facts.Has(frozenName, key, frozenFactKind) {
			if !allowed(base, at, named.Obj().Name(), key) {
				pass.Reportf(at,
					"write to field of %s, which is %s: instances are immutable once published; build a new value instead",
					key, FrozenDirective)
			}
			return
		}
	}
	// Not a frozen type: still flag writes through a variable that was
	// already handed to an atomic Pointer Store earlier in this function.
	if id, ok := ast.Unparen(base).(*ast.Ident); ok {
		if obj := pass.Info.Uses[id]; obj != nil {
			if pub, ok := publishedAt[obj]; ok && at > pub {
				pass.Reportf(at,
					"%s was published via atomic Pointer.Store above; mutating it now races every lock-free reader",
					id.Name)
			}
		}
	}
}

// checkMutatorCall reports calls to fact-known mutator methods of frozen
// types on values that are not provably pre-publication.
func checkMutatorCall(pass *Pass, call *ast.CallExpr, allowed func(ast.Expr, token.Pos, string, string) bool) {
	fn := calleeOf(pass.Info, call)
	if fn == nil {
		return
	}
	facts := pass.Facts.Get(frozenName, fn.FullName())
	var typeKey string
	for _, f := range facts {
		if f.Kind == mutatorFactKind {
			typeKey = f.Detail
			break
		}
	}
	if typeKey == "" {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	shortName := typeKey
	if i := strings.LastIndex(typeKey, "."); i >= 0 {
		shortName = typeKey[i+1:]
	}
	if !allowed(ast.Unparen(sel.X), call.Pos(), shortName, typeKey) {
		pass.Reportf(call.Pos(),
			"call to %s mutates %s, which is %s: instances are immutable once published",
			fn.Name(), typeKey, FrozenDirective)
	}
}

// derefNamed resolves t (through pointers) to its defined type, or nil.
func derefNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
