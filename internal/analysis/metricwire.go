package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Metricwire keeps the /metrics surface honest end to end. The server's
// Prometheus exposition is hand-rolled (promWriter in internal/server):
// a family exists because a header() call declares it and sample lines
// follow from value()/intValue() calls, so nothing stops a family from
// being declared and never emitted (a dark metric), emitted and never
// declared (a phantom sample without HELP/TYPE), or wired to a counter
// field that nothing ever increments (a dashboard flatline that looks
// like healthy silence). Metricwire collects facts from every package —
// family declarations, sample emissions, the atomic fields a sample
// reads, and the atomic fields the module actually updates — and checks
// the joined graph once, module-wide:
//
//   - every declared family is emitted, and every emission is declared;
//   - family names are well-formed, counters end in _total and gauges do
//     not;
//   - a family is declared exactly once; and
//   - every atomic field a sample loads is Add/Store'd somewhere in the
//     module.
const metricwireName = "metricwire"

var Metricwire = &Analyzer{
	Name:    metricwireName,
	Doc:     "require every metric family to be declared, emitted, and backed by a live counter",
	FactGen: metricwireFacts,
	Run:     func(*Pass) error { return nil },
	Finish:  finishMetricwire,
}

const (
	familyFactKind  = "family"  // object = family name, detail = prom type
	sampleFactKind  = "sample"  // object = family name
	sourceFactKind  = "source"  // object = family name, detail = field key
	updatedFactKind = "updated" // object = field key
)

// promWriterMethods map the exposition helpers to their roles.
var promWriterMethods = map[string]string{
	"header":          familyFactKind,
	"value":           sampleFactKind,
	"intValue":        sampleFactKind,
	"histogramMetric": "histogram", // declares and emits in one call
}

// metricFamilyRe is the accepted family-name shape.
var metricFamilyRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// metricwireFacts exports the per-package half of the wiring graph.
func metricwireFacts(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// Field updates: x.f.Add(...) / .Store(...) on atomic wrapper
			// fields, recorded module-wide so Finish can prove liveness.
			if f, ok := atomicFieldMethodCall(pass, call, "Add", "Store", "Swap", "CompareAndSwap", "Or", "And"); ok {
				pass.ExportFact(pass.fieldKeyOf(f), updatedFactKind, f.Name(), call.Pos())
			}
			role, family := promCall(pass, call)
			if role == "" {
				return true
			}
			switch role {
			case familyFactKind:
				typ := ""
				if len(call.Args) >= 3 {
					typ, _ = stringConstant(pass, call.Args[2])
				}
				pass.ExportFact(family, familyFactKind, typ, call.Pos())
			case "histogram":
				pass.ExportFact(family, familyFactKind, "histogram", call.Pos())
				pass.ExportFact(family, sampleFactKind, "", call.Pos())
			case sampleFactKind:
				pass.ExportFact(family, sampleFactKind, "", call.Pos())
				for _, arg := range call.Args[1:] {
					for _, f := range loadedAtomicFields(pass, arg) {
						pass.ExportFact(family, sourceFactKind, pass.fieldKeyOf(f), call.Pos())
					}
				}
			}
			return true
		})
	}
	return nil
}

// promCall matches p.header("family", ...) and friends on a promWriter
// receiver, returning the helper's role and the constant family name.
func promCall(pass *Pass, call *ast.CallExpr) (role, family string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) < 1 {
		return "", ""
	}
	role, ok = promWriterMethods[sel.Sel.Name]
	if !ok {
		return "", ""
	}
	recv := derefNamed(pass.Info.TypeOf(sel.X))
	if recv == nil || recv.Obj().Name() != "promWriter" {
		return "", ""
	}
	family, ok = stringConstant(pass, call.Args[0])
	if !ok {
		return "", ""
	}
	return role, family
}

// stringConstant evaluates e as a compile-time string.
func stringConstant(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind().String() != "String" {
		return "", false
	}
	s := tv.Value.ExactString()
	if len(s) >= 2 && s[0] == '"' {
		return s[1 : len(s)-1], true
	}
	return s, true
}

// atomicFieldMethodCall matches x.f.Method(...) where f is a struct field
// of a sync/atomic wrapper type and Method is one of names.
func atomicFieldMethodCall(pass *Pass, call *ast.CallExpr, names ...string) (types.Object, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	match := false
	for _, n := range names {
		if sel.Sel.Name == n {
			match = true
			break
		}
	}
	if !match {
		return nil, false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	s, ok := pass.Info.Selections[inner]
	if !ok || s.Kind() != types.FieldVal || !isAtomicWrapperType(s.Obj().Type()) {
		return nil, false
	}
	return s.Obj(), true
}

// loadedAtomicFields collects the atomic wrapper fields whose Load feeds
// the expression (possibly through conversions and arithmetic).
func loadedAtomicFields(pass *Pass, e ast.Expr) []types.Object {
	var out []types.Object
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if f, ok := atomicFieldMethodCall(pass, call, "Load"); ok {
			out = append(out, f)
		}
		return true
	})
	return out
}

func finishMetricwire(fs *FactSet, report func(pos token.Position, format string, args ...any)) {
	families := fs.Kind(metricwireName, familyFactKind)
	samples := fs.Kind(metricwireName, sampleFactKind)
	sampled := map[string]bool{}
	for _, s := range samples {
		sampled[s.Object] = true
	}
	declared := map[string]Fact{}
	for _, f := range families {
		if prev, ok := declared[f.Object]; ok && prev.Position() != f.Position() {
			report(f.Position(), "metric family %s is declared more than once (first at %s)", f.Object, prev.Position())
			continue
		}
		declared[f.Object] = f

		if !metricFamilyRe.MatchString(f.Object) {
			report(f.Position(), "metric family %s is not a valid Prometheus name", f.Object)
		}
		switch f.Detail {
		case "counter":
			if !strings.HasSuffix(f.Object, "_total") {
				report(f.Position(), "counter family %s must end in _total (Prometheus naming convention)", f.Object)
			}
		case "gauge":
			if strings.HasSuffix(f.Object, "_total") {
				report(f.Position(), "gauge family %s must not end in _total — _total implies a counter", f.Object)
			}
		}
		if !sampled[f.Object] {
			report(f.Position(), "metric family %s is declared but never emitted: a dark metric scrapers will never see", f.Object)
		}
	}
	reportedPhantom := map[string]bool{}
	for _, s := range samples {
		if _, ok := declared[s.Object]; !ok && !reportedPhantom[s.Object] {
			reportedPhantom[s.Object] = true
			report(s.Position(), "metric family %s is emitted but never declared with header(): a phantom sample without HELP/TYPE", s.Object)
		}
	}

	// Liveness: a family whose every sample reads atomic fields that are
	// never updated anywhere is dead telemetry.
	updated := map[string]bool{}
	for _, u := range fs.Kind(metricwireName, updatedFactKind) {
		updated[u.Object] = true
	}
	reportedDead := map[string]bool{}
	for _, src := range fs.Kind(metricwireName, sourceFactKind) {
		if !updated[src.Detail] && !reportedDead[src.Object+src.Detail] {
			reportedDead[src.Object+src.Detail] = true
			name := src.Detail
			if i := strings.Index(name, "@"); i >= 0 {
				name = name[:i]
			}
			report(src.Position(), "metric family %s reads atomic field %s, which is never Add/Store'd anywhere in the module: the series can only flatline", src.Object, name)
		}
	}
}
