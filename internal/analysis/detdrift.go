package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// determinismCritical lists the packages whose behaviour must be a pure
// function of (inputs, seeds): the simulation clock, the schedulers, the
// experiment harness, the cluster/fault layers, and workload synthesis.
// PR 2's bit-identical chaos replays and PR 3's byte-identical parallel
// sweeps both rest on these packages never consulting ambient state.
var determinismCritical = []string{
	"qoserve/internal/sim",
	"qoserve/internal/sched",
	"qoserve/internal/core",
	"qoserve/internal/experiments",
	"qoserve/internal/cluster",
	"qoserve/internal/fault",
	"qoserve/internal/workload",
}

// isDeterminismCritical reports whether a package path is inside the
// determinism boundary (including hypothetical subpackages).
func isDeterminismCritical(path string) bool {
	for _, p := range determinismCritical {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// Detdrift flags constructs that make determinism-critical packages depend
// on ambient state: wall-clock reads, the global math/rand PRNG,
// order-sensitive iteration over maps, and multi-way selects (whose ready
// case is chosen uniformly at random by the runtime).
var Detdrift = &Analyzer{
	Name: "detdrift",
	Doc: "forbid wall clocks, global PRNGs, order-sensitive map iteration, " +
		"and racy selects in determinism-critical packages",
	Run: runDetdrift,
}

// wallClockFuncs are the time package functions that read the real clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// seededRandConstructors are the math/rand entry points that build an
// explicitly seeded generator; everything else at package level draws from
// the shared global source.
var seededRandConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runDetdrift(pass *Pass) error {
	if !isDeterminismCritical(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDetCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, file, n)
			case *ast.SelectStmt:
				checkSelect(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkDetCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeOf(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	pkgLevel := sig != nil && sig.Recv() == nil
	switch fn.Pkg().Path() {
	case "time":
		if pkgLevel && wallClockFuncs[fn.Name()] {
			pass.Reportf(call.Pos(),
				"wall-clock read time.%s in determinism-critical package %s; derive time from sim.Time",
				fn.Name(), pass.Pkg.Path())
		}
	case "math/rand", "math/rand/v2":
		if pkgLevel && !seededRandConstructors[fn.Name()] {
			pass.Reportf(call.Pos(),
				"global PRNG call rand.%s draws from a shared unseeded source; use rand.New(rand.NewSource(seed))",
				fn.Name())
		}
	}
}

// checkMapRange flags `for ... := range m` over a map when the iteration
// order can leak into observable output. The body is order-sensitive when
// it returns, prints/writes, sends on a channel, or appends to a slice —
// unless every such slice is passed to a sort call later in the enclosing
// function (the collect-then-sort idiom). Pure aggregation (sums, map
// writes, min/max) is order-independent and never flagged.
func checkMapRange(pass *Pass, file *ast.File, rng *ast.RangeStmt) {
	t := pass.Info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}

	var sensitive []string // reasons
	appended := map[types.Object]token.Pos{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a nested closure's returns are not the loop's
		case *ast.ReturnStmt:
			sensitive = append(sensitive, "returns inside the loop")
		case *ast.SendStmt:
			sensitive = append(sensitive, "sends on a channel")
		case *ast.CallExpr:
			if isOutputCall(pass, n) {
				sensitive = append(sensitive, "writes output inside the loop")
			}
			if obj := appendTarget(pass, n); obj != nil {
				appended[obj] = n.Pos()
			}
		}
		return true
	})

	// Collect-then-sort: an append target sorted after the loop (in the
	// same function) makes the iteration order unobservable.
	if len(appended) > 0 {
		fn := enclosingFunc(file, rng.Pos())
		for obj, pos := range appended {
			if fn != nil && sortedAfter(pass, fn, obj, rng.End()) {
				continue
			}
			pass.Reportf(pos,
				"slice %s is appended to in map-iteration order and never sorted; map order is randomized per run",
				obj.Name())
		}
	}
	for _, reason := range sensitive {
		pass.Reportf(rng.Pos(), "map iteration order reaches output (%s); iterate a sorted key slice instead", reason)
	}
}

// isOutputCall reports whether the call plausibly emits observable bytes:
// fmt printing, or a Write/WriteString/Print*-named method.
func isOutputCall(pass *Pass, call *ast.CallExpr) bool {
	if fn := calleeOf(pass.Info, call); fn != nil {
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Print") {
			return true
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") {
			return true
		}
		name := fn.Name()
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if name == "Write" || name == "WriteString" || strings.HasPrefix(name, "Print") {
				return true
			}
		}
	}
	return false
}

// appendTarget returns the object a self-append grows (`x = append(x, ...)`
// patterns are resolved by the enclosing AssignStmt during Inspect; here we
// only need the first argument's base object).
func appendTarget(pass *Pass, call *ast.CallExpr) types.Object {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil
	}
	if _, ok := pass.Info.Uses[id].(*types.Builtin); !ok {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	base := ast.Unparen(call.Args[0])
	for {
		if s, ok := base.(*ast.SliceExpr); ok {
			base = ast.Unparen(s.X)
			continue
		}
		break
	}
	if id, ok := base.(*ast.Ident); ok {
		return pass.Info.Uses[id]
	}
	return nil
}

// sortedAfter reports whether obj is handed to a sort/slices sorting call
// positioned after pos within fn.
func sortedAfter(pass *Pass, fn *ast.FuncDecl, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found {
			return !found
		}
		callee := calleeOf(pass.Info, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if p := callee.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			used := false
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
					used = true
				}
				return !used
			})
			if used {
				found = true
			}
		}
		return true
	})
	return found
}

// checkSelect flags selects with two or more communication cases: when
// several are ready the runtime picks uniformly at random, so results that
// depend on the chosen case are nondeterministic.
func checkSelect(pass *Pass, sel *ast.SelectStmt) {
	comms := 0
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
			comms++
		}
	}
	if comms >= 2 {
		pass.Reportf(sel.Pos(),
			"select with %d communication cases resolves ready channels pseudo-randomly; restructure for a deterministic result path", comms)
	}
}

// enclosingFunc returns the function declaration containing pos.
func enclosingFunc(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil && fd.Pos() <= pos && pos < fd.End() {
			return fd
		}
	}
	return nil
}
