// Package fixture exercises the hotpathalloc analyzer: each construct that
// defeats the alloc-free contract inside a //qoserve:hotpath function, plus
// the blessed forms the scheduler's real hot path uses.
package fixture

import (
	"fmt"
	"math"
	"sort"
)

type item struct{ key float64 }

type state struct {
	scratch []int
	keys    []float64
	name    string
	hook    func()
	sink    any
}

// helper is annotated, so hot-path callers may use it.
//
//qoserve:hotpath
func helper(x int) int { return x + 1 }

// notHot is deliberately unannotated.
func notHot(x int) int { return x * 2 }

// Flagged collects one of every forbidden construct.
//
//qoserve:hotpath
func Flagged(s *state, bs []byte) {
	_ = fmt.Sprintf("x") // want `fmt\.Sprintf allocates on the hot path`
	m := make([]int, 4)  // want `make allocates on the hot path`
	_ = m
	p := new(item) // want `new allocates on the hot path`
	_ = p
	var other []int
	other = append(s.scratch, 1) // want `append result is not reassigned to its own first argument`
	_ = other
	s.name = s.name + "!" // want `string concatenation allocates on the hot path`
	s.name += "!"         // want `string \+= allocates on the hot path`
	_ = &item{}           // want `&composite literal heap-allocates on the hot path`
	_ = []int{1, 2}       // want `slice/map composite literal allocates on the hot path`
	s.hook = func() {}    // want `escaping function literal allocates its closure on the hot path`
	v := len(bs)
	s.sink = v     // want `boxes the value and allocates`
	_ = notHot(1)  // want `call to qoserve/fixture/hotpath\.notHot, which is not annotated //qoserve:hotpath`
	_ = string(bs) // want `conversion to string allocates on the hot path`
}

// Clean uses only the blessed forms.
//
//qoserve:hotpath
func Clean(s *state, xs []int) int {
	s.scratch = s.scratch[:0]
	for _, x := range xs {
		s.scratch = append(s.scratch, x) // self-append into a scratch buffer
	}
	s.keys = append(s.keys[:0], 1.5) // prefix self-append
	i := sort.Search(len(s.keys), func(j int) bool { return s.keys[j] >= 1 })
	cmp := func(a, b int) bool { return a < b } // local, non-escaping literal
	if cmp(i, 2) {
		i++
	}
	total := helper(i)                        // annotated callee
	total += int(math.Sqrt(float64(len(xs)))) // allowlisted stdlib
	return total
}

// Suppressed documents a deliberate allocation with a justification.
//
//qoserve:hotpath
func Suppressed() []int {
	//lint:ignore hotpathalloc fixture exercises the suppression path.
	return make([]int, 8)
}
