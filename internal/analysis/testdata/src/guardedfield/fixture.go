// Package fixture exercises the guardedfield analyzer: locked and unlocked
// accesses to a "guarded by mu" field, the //qoserve:locked caller-holds
// convention, and a guard comment naming a missing mutex.
package fixture

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
	// bad names a mutex the struct does not have.
	bad int // guarded by lock // want `field bad is documented "guarded by lock" but the struct has no mutex field`
}

// Inc locks before touching n.
func (c *counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Peek reads n without the lock.
func (c *counter) Peek() int {
	return c.n // want `n is documented as guarded by mu, but method Peek neither locks it nor is annotated`
}

// incLocked relies on the caller holding mu.
//
//qoserve:locked mu
func (c *counter) incLocked() { c.n++ }

// IncTwice demonstrates the locked-helper pairing.
func (c *counter) IncTwice() {
	c.mu.Lock()
	c.incLocked()
	c.incLocked()
	c.mu.Unlock()
}

// Suppressed reads racily on purpose, with a justification.
func (c *counter) Suppressed() int {
	//lint:ignore guardedfield fixture exercises the suppression path.
	return c.n
}

// gauge checks the RWMutex read-lock path.
type gauge struct {
	mu  sync.RWMutex
	val float64 // guarded by mu
}

// Load read-locks before reading.
func (g *gauge) Load() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.val
}

// Store writes without any lock.
func (g *gauge) Store(v float64) {
	g.val = v // want `val is documented as guarded by mu, but method Store neither locks it`
}
