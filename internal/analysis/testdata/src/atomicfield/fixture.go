// Package fixture seeds atomicfield violations: a plain field accessed
// through sync/atomic in one place and plainly in another, and value
// copies of sync/atomic wrapper types. The blessed forms — the atomic
// calls themselves, wrapper method calls, taking a wrapper's address, and
// fields that are plain everywhere — must stay silent.
package fixture

import "sync/atomic"

type counters struct {
	hits     uint64       // old-style atomic: address reaches atomic.AddUint64
	misses   uint64       // plain everywhere: never atomic, free to use
	inflight atomic.Int64 // wrapper: methods and address only
}

func (c *counters) record() {
	atomic.AddUint64(&c.hits, 1) // ok: the atomic access itself
	c.misses++                   // ok: never atomic anywhere
	c.inflight.Add(1)            // ok: wrapper method call
}

func (c *counters) snapshot() (uint64, int64) {
	h := c.hits // want `atomicfield: field hits is accessed with sync/atomic elsewhere`
	return h, c.inflight.Load()
}

func (c *counters) reset() {
	c.hits = 0 // want `atomicfield: field hits is accessed with sync/atomic elsewhere`
}

func observe(c *counters) *atomic.Int64 {
	return &c.inflight // ok: address-of, the pointee stays atomic
}

func fork(c *counters) int64 {
	v := c.inflight // want `atomicfield: field inflight has type sync/atomic\.Int64; using it as a value copies the atomic`
	return v.Load()
}
