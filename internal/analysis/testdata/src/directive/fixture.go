// Package fixture holds a bare //lint:ignore directive: the runner must
// report it as malformed instead of silently honouring it.
package fixture

// Malformed carries a directive with no justification.
func Malformed() int {
	//lint:ignore detdrift
	return 0
}
