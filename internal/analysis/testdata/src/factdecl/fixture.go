// Package factdecl is the declaring half of the cross-package fact
// fixtures: it marks a type //qoserve:frozen (exporting frozen and
// mutator facts) and takes a field's address in a sync/atomic call
// (exporting an atomic fact). The sibling factuse fixture imports this
// package and misuses both; every finding there exists only because the
// facts exported here survive the JSON wire format and the package
// boundary.
package factdecl

import "sync/atomic"

// Snap is a published scheduling snapshot.
//
//qoserve:frozen
type Snap struct {
	Epoch int
	Load  int
}

// Bump advances the epoch in place; construction paths only.
//
//qoserve:ctor Snap
func (s *Snap) Bump() { s.Epoch++ }

// Gauges is a lock-free counter block shared with importers.
type Gauges struct {
	Inflight int64
}

// Incr is the blessed write path for Inflight.
func Incr(g *Gauges) {
	atomic.AddInt64(&g.Inflight, 1)
}
