// Package factuse imports factdecl and violates its exported contracts
// from across the package boundary: writing a frozen value after it was
// published, calling a mutator method on a loaded snapshot, and reading
// an atomic field plainly. The pre-publication writes — stamping a fresh
// snapshot before the Store — must stay silent: that is the
// stamp-then-publish idiom the frozen analyzer is built around.
package factuse

import (
	"sync/atomic"

	"qoserve/fixture/factdecl"
)

type table struct {
	cur atomic.Pointer[factdecl.Snap]
}

func (t *table) publish(load int) {
	s := &factdecl.Snap{}
	s.Load = load // ok: fresh local, still pre-publication
	t.cur.Store(s)
	s.Epoch = 1 // want `frozen: write to field of qoserve/fixture/factdecl\.Snap, which is //qoserve:frozen`
}

func (t *table) rebump() {
	s := t.cur.Load()
	s.Bump() // want `frozen: call to Bump mutates qoserve/fixture/factdecl\.Snap`
}

type box struct{ n int }

type holder struct {
	cur atomic.Pointer[box]
}

func (h *holder) swap(b *box) {
	b.n = 1 // ok: not yet published
	h.cur.Store(b)
	b.n = 2 // want `frozen: b was published via atomic Pointer\.Store above`
}

func peek(g *factdecl.Gauges) int64 {
	return g.Inflight // want `atomicfield: field Inflight is accessed with sync/atomic elsewhere`
}

func bump(g *factdecl.Gauges) {
	factdecl.Incr(g) // ok: the blessed write path
}
