// Package fixture seeds nosilentdrop violations: retirement operations —
// deletes from request-tracking maps, slice-removal over request queues,
// nil-ing a tracked queue field — in functions that neither carry a
// //qoserve:outcome annotation nor call an annotated recorder. The same
// operations inside or downstream of an outcome recorder must stay
// silent. The analyzer only speaks when the fixture is checked under a
// request-handling import path (internal/server, replica, cluster).
package fixture

import "qoserve/internal/request"

type waiter struct {
	events chan int
}

type gateway struct {
	streams map[uint64]waiter
	queue   []*request.Request
}

func (g *gateway) drop(id uint64) {
	delete(g.streams, id) // want `nosilentdrop: delete from a request-tracking map retires requests`
}

func (g *gateway) evict(i int) {
	g.queue = append(g.queue[:i], g.queue[i+1:]...) // want `nosilentdrop: removal from a request slice retires requests`
}

func (g *gateway) clear() {
	g.queue = nil // want `nosilentdrop: dropping a tracked request slice retires requests`
}

// fail records the outcome before forgetting the stream.
//
//qoserve:outcome fail
func (g *gateway) fail(id uint64) {
	delete(g.streams, id) // ok: this function is the outcome recorder
}

func (g *gateway) failVia(id uint64) {
	g.fail(id)
	delete(g.streams, id) // ok: outcome recorded through fail above
}

// badKind carries a typo'd outcome kind, which must be rejected rather
// than silently treated as a recorder.
//
//qoserve:outcome finished
func (g *gateway) badKind(id uint64) { // want `nosilentdrop: //qoserve:outcome "finished": kind must be one of complete, fail, requeue, handoff`
	delete(g.streams, id)
}

func (g *gateway) untracked(m map[uint64]int, id uint64) {
	delete(m, id) // ok: plain values carry no request
}
