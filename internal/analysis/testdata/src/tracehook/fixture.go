// Package fixture exercises the tracehook analyzer against the real
// qoserve/internal/sched interface: a compliant policy, a hook-less policy,
// a policy that cannot accept a tracer, and a delegating wrapper.
package fixture

import (
	"qoserve/internal/request"
	"qoserve/internal/sched"
	"qoserve/internal/sim"
)

// Good embeds TraceState and drives every hook.
type Good struct {
	sched.TraceState
	pending int
}

// Name identifies the policy.
func (g *Good) Name() string { return "good" }

// Add admits a request.
func (g *Good) Add(r *request.Request, now sim.Time) {
	g.pending++
	g.TraceAdmission(r.ID, r.Class.Name, now)
}

// PlanBatch builds an (empty) batch.
func (g *Good) PlanBatch(now sim.Time) sched.Batch {
	var b sched.Batch
	g.TracePlan(g.Name(), b, now, 0, 0, 0)
	return b
}

// OnBatchComplete commits the trace record.
func (g *Good) OnBatchComplete(b sched.Batch, now sim.Time) { g.TraceComplete(now) }

// Pending counts unfinished requests.
func (g *Good) Pending() int { return g.pending }

// Bad embeds TraceState but never invokes the hooks: attached tracers see
// nothing.
type Bad struct {
	sched.TraceState
}

// Name identifies the policy.
func (b *Bad) Name() string { return "bad" }

// Add skips TraceAdmission.
func (b *Bad) Add(r *request.Request, now sim.Time) {} // want `Bad\.Add neither calls TraceAdmission nor delegates`

// PlanBatch skips TracePlan.
func (b *Bad) PlanBatch(now sim.Time) sched.Batch { // want `Bad\.PlanBatch neither calls TracePlan nor delegates`
	return sched.Batch{}
}

// OnBatchComplete skips TraceComplete.
func (b *Bad) OnBatchComplete(bt sched.Batch, now sim.Time) {} // want `Bad\.OnBatchComplete neither calls TraceComplete nor delegates`

// Pending counts unfinished requests.
func (b *Bad) Pending() int { return 0 }

// hookBag mimics the hook names without being a TraceState, isolating the
// embedding requirement from the per-method ones.
type hookBag struct{}

func (hookBag) TracePlan()      {}
func (hookBag) TraceComplete()  {}
func (hookBag) TraceAdmission() {}

// NoState drives hook-named methods but embeds no TraceState and wraps no
// scheduler, so a server can never attach a tracer to it.
type NoState struct { // want `NoState implements sched\.Scheduler but neither embeds sched\.TraceState nor wraps a scheduler`
	hooks hookBag
}

// Name identifies the policy.
func (n *NoState) Name() string { return "nostate" }

// Add mimics an admission hook.
func (n *NoState) Add(r *request.Request, now sim.Time) { n.hooks.TraceAdmission() }

// PlanBatch mimics a plan hook.
func (n *NoState) PlanBatch(now sim.Time) sched.Batch {
	n.hooks.TracePlan()
	return sched.Batch{}
}

// OnBatchComplete mimics a completion hook.
func (n *NoState) OnBatchComplete(b sched.Batch, now sim.Time) { n.hooks.TraceComplete() }

// Pending counts unfinished requests.
func (n *NoState) Pending() int { return 0 }

// Wrapper forwards every call to an inner scheduler whose hooks fire on its
// behalf — the RateLimited / chunkRecorder shape; exempt by delegation.
type Wrapper struct {
	inner sched.Scheduler
}

// Name identifies the wrapped policy.
func (w *Wrapper) Name() string { return w.inner.Name() }

// Add forwards the admission.
func (w *Wrapper) Add(r *request.Request, now sim.Time) { w.inner.Add(r, now) }

// PlanBatch forwards planning.
func (w *Wrapper) PlanBatch(now sim.Time) sched.Batch { return w.inner.PlanBatch(now) }

// OnBatchComplete forwards completion.
func (w *Wrapper) OnBatchComplete(b sched.Batch, now sim.Time) { w.inner.OnBatchComplete(b, now) }

// Pending forwards the count.
func (w *Wrapper) Pending() int { return w.inner.Pending() }
