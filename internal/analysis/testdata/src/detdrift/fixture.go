// Package fixture exercises the detdrift analyzer: every construct flagged
// inside the determinism boundary, next to its blessed counterpart. The test
// checks this package twice — once under a determinism-critical import path
// (expecting the want findings) and once under a neutral path (expecting
// silence).
package fixture

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Wall reads the real clock.
func Wall() time.Time {
	return time.Now() // want `wall-clock read time\.Now`
}

// Elapsed reads the real clock through Since.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `wall-clock read time\.Since`
}

// GlobalRand draws from the shared unseeded source.
func GlobalRand() int {
	return rand.Intn(10) // want `global PRNG call rand\.Intn`
}

// SeededRand is the blessed form: an explicitly seeded generator.
func SeededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// FirstKey leaks map order through a return value.
func FirstKey(m map[string]int) string {
	for k := range m { // want `map iteration order reaches output \(returns inside the loop\)`
		return k
	}
	return ""
}

// PrintAll leaks map order through printed output.
func PrintAll(m map[string]int) {
	for k, v := range m { // want `map iteration order reaches output \(writes output inside the loop\)`
		fmt.Println(k, v)
	}
}

// Keys collects keys in map order and never sorts them.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `slice out is appended to in map-iteration order and never sorted`
	}
	return out
}

// SortedKeys is the blessed collect-then-sort idiom.
func SortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Sum aggregates order-independently; never flagged.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Race resolves two ready channels pseudo-randomly.
func Race(a, b chan int) int {
	select { // want `select with 2 communication cases`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// SingleRecv has one communication case: deterministic.
func SingleRecv(c chan int, fallback int) int {
	select {
	case v := <-c:
		return v
	default:
		return fallback
	}
}

// Suppressed documents a deliberate wall-clock read; the justified
// directive keeps it out of the findings.
func Suppressed() time.Time {
	//lint:ignore detdrift fixture exercises the suppression path.
	return time.Now()
}
