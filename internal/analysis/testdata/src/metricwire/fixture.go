// Package fixture seeds metricwire violations around a local promWriter
// mirroring the server's exposition helper: a dark family (declared,
// never emitted), a phantom sample (emitted, never declared), a counter
// without the _total suffix, a gauge with it, an invalid family name, a
// duplicate declaration, and a family wired to an atomic field nothing
// ever updates. The healthy families — declared once, emitted, correctly
// named, backed by a field that is actually incremented — must stay
// silent.
package fixture

import (
	"fmt"
	"io"
	"sync/atomic"
)

type promWriter struct{ w io.Writer }

func (p promWriter) header(name, help, typ string) {
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p promWriter) value(name, labels string, v float64) {
	fmt.Fprintf(p.w, "%s%s %g\n", name, labels, v)
}

func (p promWriter) intValue(name, labels string, v uint64) {
	fmt.Fprintf(p.w, "%s%s %d\n", name, labels, v)
}

func (p promWriter) histogramMetric(name, help string, cum []uint64, sum float64, total uint64) {
	fmt.Fprintf(p.w, "# TYPE %s histogram\n", name)
}

type stats struct {
	served  atomic.Uint64
	stalled atomic.Uint64 // loaded by a sample below but never updated
}

func (s *stats) hit() { s.served.Add(1) }

func render(w io.Writer, s *stats) {
	p := promWriter{w: w}

	p.header("fixture_served_total", "Requests served.", "counter")
	p.intValue("fixture_served_total", "", s.served.Load())
	p.histogramMetric("fixture_latency_seconds", "Request latency.", nil, 0, 0)

	p.header("fixture_dark_total", "Declared but never emitted.", "counter") // want `metricwire: metric family fixture_dark_total is declared but never emitted`

	p.intValue("fixture_phantom_total", "", 1) // want `metricwire: metric family fixture_phantom_total is emitted but never declared`

	p.header("fixture_requests", "Counter missing its suffix.", "counter") // want `metricwire: counter family fixture_requests must end in _total`
	p.intValue("fixture_requests", "", 1)

	p.header("fixture_queue_total", "Gauge posing as a counter.", "gauge") // want `metricwire: gauge family fixture_queue_total must not end in _total`
	p.intValue("fixture_queue_total", "", 0)

	p.header("fixture_Bad", "Invalid family name.", "gauge") // want `metricwire: metric family fixture_Bad is not a valid Prometheus name`
	p.value("fixture_Bad", "", 1)

	p.header("fixture_served_total", "Duplicate declaration.", "counter") // want `metricwire: metric family fixture_served_total is declared more than once`

	p.header("fixture_stalled", "Requests stalled.", "gauge")
	p.intValue("fixture_stalled", "", s.stalled.Load()) // want `metricwire: metric family fixture_stalled reads atomic field stalled, which is never Add/Store'd`
}
