package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// Atomicfield enforces all-or-nothing atomicity on struct fields:
//
//   - a plain-typed field whose address is ever passed to a sync/atomic
//     package-level function (the pre-Go-1.19 style: atomic.AddUint64(&s.n,
//     1)) must be accessed through sync/atomic everywhere — one plain read
//     of such a field is a data race the race detector only catches if a
//     test happens to interleave it, and
//   - a field declared with one of the sync/atomic wrapper types
//     (atomic.Uint64, atomic.Pointer[T], ...) must only be used through its
//     methods or by address: copying the wrapper value (s2.n = s1.n,
//     n := s.n) silently forks the counter and defeats the type's whole
//     point.
//
// The first rule is cross-package: the "this field is atomic" fact is
// exported from the package that declares the atomic access and honoured
// everywhere the field is visible. The gateway's lock-free gauges
// (internal/server's load/snap* fields, internal/cluster's cursor,
// internal/replica's published snapshots) are exactly the fields this
// protects.
const atomicfieldName = "atomicfield"

var Atomicfield = &Analyzer{
	Name:    atomicfieldName,
	Doc:     "forbid mixed atomic/plain access to struct fields used with sync/atomic",
	FactGen: atomicfieldFacts,
	Run:     runAtomicfield,
}

// atomicFactKind marks a field as accessed through old-style sync/atomic
// calls somewhere in the module.
const atomicFactKind = "atomic"

// fieldKeyOf renders the cross-package identity of a struct field: its
// name plus its declaration position. Declaration positions are stable
// across independent type-checks of the same source tree (every load
// parses the same files), which is what lets a fact exported while
// visiting the declaring package be matched at a use site in another
// package, even through field promotion.
func (p *Pass) fieldKeyOf(obj types.Object) string {
	pos := p.Fset.Position(obj.Pos())
	return fmt.Sprintf("%s@%s:%d:%d", obj.Name(), pos.Filename, pos.Line, pos.Column)
}

// atomicfieldFacts exports an "atomic" fact for every struct field whose
// address reaches a sync/atomic package-level call in this package.
func atomicfieldFacts(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSyncAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				if f := addressedField(pass, arg); f != nil {
					pass.ExportFact(pass.fieldKeyOf(f), atomicFactKind, f.Name(), f.Pos())
				}
			}
			return true
		})
	}
	return nil
}

// isSyncAtomicCall reports whether the call statically resolves to a
// sync/atomic package-level function (AddUint64, LoadPointer, ...).
func isSyncAtomicCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeOf(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// addressedField resolves &x.f arguments to the field object f, or nil.
func addressedField(pass *Pass, arg ast.Expr) types.Object {
	ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || ue.Op.String() != "&" {
		return nil
	}
	sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		return s.Obj()
	}
	return nil
}

func runAtomicfield(pass *Pass) error {
	for _, file := range pass.Files {
		// blessed selectors appear as &x.f arguments of sync/atomic calls
		// (legal for old-style atomic fields) or under & generally (taking
		// the address of a wrapper-typed field to pass it along is fine —
		// the pointee is still only touched through methods).
		blessedAtomicArg := map[*ast.SelectorExpr]bool{}
		addressed := map[*ast.SelectorExpr]bool{}
		methodBase := map[*ast.SelectorExpr]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isSyncAtomicCall(pass, n) {
					for _, arg := range n.Args {
						if ue, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && ue.Op.String() == "&" {
							if sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr); ok {
								blessedAtomicArg[sel] = true
							}
						}
					}
				}
			case *ast.UnaryExpr:
				if n.Op.String() == "&" {
					if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
						addressed[sel] = true
					}
				}
			case *ast.SelectorExpr:
				// x.f.Load(): the inner selector x.f is the base of a
				// method (or promoted-field) selection, not a value use.
				if inner, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
					methodBase[inner] = true
				}
			}
			return true
		})

		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := pass.Info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			f := s.Obj()
			if pass.Facts.Has(atomicfieldName, pass.fieldKeyOf(f), atomicFactKind) {
				if !blessedAtomicArg[sel] {
					pass.Reportf(sel.Sel.Pos(),
						"field %s is accessed with sync/atomic elsewhere; this plain access is a data race — use the matching atomic call",
						f.Name())
				}
				return true
			}
			if isAtomicWrapperType(f.Type()) && !addressed[sel] && !methodBase[sel] {
				pass.Reportf(sel.Sel.Pos(),
					"field %s has type %s; using it as a value copies the atomic and forks its state — call its methods or take its address",
					f.Name(), f.Type())
			}
			return true
		})
	}
	return nil
}

// isAtomicWrapperType reports whether t is one of the sync/atomic wrapper
// types (Bool, Int32/64, Uint32/64, Uintptr, Pointer[T], Value).
func isAtomicWrapperType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	return !strings.Contains(obj.Name(), "noCopy")
}
