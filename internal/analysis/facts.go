package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"sort"
)

// Fact is one exported, JSON-serializable statement an analyzer makes about
// a program object while visiting its defining package, for consumption
// when visiting any other package. Object is a stable cross-run name — a
// types.Func/types.TypeName full name, or an analyzer-chosen key such as a
// metric family — and Kind/Detail carry the claim ("frozen", "outcome
// fail", "atomic"). The position fields record where the fact was
// established so module-level diagnostics can point somewhere useful.
//
// Facts mirror the golang.org/x/tools go/analysis fact mechanism in spirit
// but travel as plain JSON: every run encodes each package's facts to the
// wire form and merges them back through Import, so the serialized path is
// exercised continuously and a future split into per-package cache files
// (or cross-process fact shipping) is a driver change, not a framework one.
type Fact struct {
	Analyzer string `json:"analyzer"`
	Object   string `json:"object"`
	Kind     string `json:"kind"`
	Detail   string `json:"detail,omitempty"`
	File     string `json:"file,omitempty"`
	Line     int    `json:"line,omitempty"`
	Col      int    `json:"col,omitempty"`
}

// Position renders the fact's source position in token.Position form.
func (f Fact) Position() token.Position {
	return token.Position{Filename: f.File, Line: f.Line, Column: f.Col}
}

// FactSet is an ordered, queryable collection of facts. A set is built
// per package during the fact phase, exported to JSON, and merged into the
// module-wide base the check and finish phases read.
type FactSet struct {
	facts []Fact
	index map[string]map[string][]int // analyzer -> object -> fact indices
}

// NewFactSet returns an empty set.
func NewFactSet() *FactSet {
	return &FactSet{index: map[string]map[string][]int{}}
}

// Add records one fact.
func (fs *FactSet) Add(f Fact) {
	byObj := fs.index[f.Analyzer]
	if byObj == nil {
		byObj = map[string][]int{}
		fs.index[f.Analyzer] = byObj
	}
	byObj[f.Object] = append(byObj[f.Object], len(fs.facts))
	fs.facts = append(fs.facts, f)
}

// Get returns every fact the analyzer exported about object.
func (fs *FactSet) Get(analyzer, object string) []Fact {
	var out []Fact
	for _, i := range fs.index[analyzer][object] {
		out = append(out, fs.facts[i])
	}
	return out
}

// Has reports whether the analyzer exported a fact of this kind about
// object.
func (fs *FactSet) Has(analyzer, object, kind string) bool {
	for _, i := range fs.index[analyzer][object] {
		if fs.facts[i].Kind == kind {
			return true
		}
	}
	return false
}

// Kind returns every fact of the given kind the analyzer exported,
// sorted by object then position for deterministic iteration.
func (fs *FactSet) Kind(analyzer, kind string) []Fact {
	var out []Fact
	for _, f := range fs.facts {
		if f.Analyzer == analyzer && f.Kind == kind {
			out = append(out, f)
		}
	}
	sortFacts(out)
	return out
}

// Len is the number of facts in the set.
func (fs *FactSet) Len() int { return len(fs.facts) }

func sortFacts(facts []Fact) {
	sort.Slice(facts, func(i, j int) bool {
		a, b := facts[i], facts[j]
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Kind < b.Kind
	})
}

// Encode renders the set in its canonical wire form: a JSON array sorted
// by (analyzer, object, kind, position). Import(Encode()) round-trips.
func (fs *FactSet) Encode() ([]byte, error) {
	sorted := make([]Fact, len(fs.facts))
	copy(sorted, fs.facts)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	return json.MarshalIndent(sorted, "", "  ")
}

// Import decodes a wire-form fact list and merges it into the set. This is
// how per-package fact exports reach the module-wide base: the runner
// encodes each package's facts and imports them here, so a corrupt wire
// form can never silently vanish.
func (fs *FactSet) Import(data []byte) error {
	var facts []Fact
	if err := json.Unmarshal(data, &facts); err != nil {
		return fmt.Errorf("analysis: decoding fact export: %w", err)
	}
	for _, f := range facts {
		if f.Analyzer == "" || f.Object == "" || f.Kind == "" {
			return fmt.Errorf("analysis: imported fact %+v is missing analyzer, object, or kind", f)
		}
		fs.Add(f)
	}
	return nil
}

// ExportFact records a fact about object from the current analyzer at pos.
// Analyzers call this from their FactGen phase; the runner serializes each
// package's facts and merges them into the base every check phase reads.
func (p *Pass) ExportFact(object, kind, detail string, pos token.Pos) {
	position := p.Fset.Position(pos)
	p.Facts.Add(Fact{
		Analyzer: p.Analyzer.Name,
		Object:   object,
		Kind:     kind,
		Detail:   detail,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
	})
}
