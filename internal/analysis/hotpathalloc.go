package analysis

import (
	"go/ast"
	"go/types"
)

// Hotpathalloc enforces the alloc-free contract on functions annotated
// //qoserve:hotpath (the scheduler plan path, forest prediction, queue
// operations, the relegation scan). It flags the constructs that defeat the
// runtime zero-alloc guards (TestPlanBatchSteadyStateAllocFree,
// TestForestPredictAllocFree) one code review too late:
//
//   - any fmt call (Sprintf/Errorf always allocate; even Fprintf boxes
//     its variadic arguments),
//   - make/new and &CompositeLit (direct heap allocation), slice or map
//     composite literals,
//   - string concatenation (+ / += on strings),
//   - append that grows a different slice than it reassigns — only the
//     self-append forms `x = append(x, ...)` and `x = append(x[:k], ...)`
//     amortize into a reusable scratch buffer,
//   - function literals that escape (stored in fields/slices/maps,
//     returned, or passed to calls other than the non-escaping sort
//     helpers),
//   - implicit boxing of a concrete non-pointer value into an interface,
//   - calls to statically-resolvable functions that are not themselves
//     //qoserve:hotpath (or on the small no-alloc allowlist): the callee's
//     allocations are invisible here, so the annotation must travel with
//     the call graph.
//
// Dynamically dispatched calls (interface methods, function values) cannot
// be checked statically and are deliberately exempt; the runtime guards
// remain the backstop for those.
var Hotpathalloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid allocation-inducing constructs in //qoserve:hotpath functions",
	Run:  runHotpathalloc,
}

// hotpathStdlibAllowed are statically-resolvable non-module callees known
// not to allocate.
var hotpathStdlibAllowed = map[string]bool{
	"sort.Search": true,
	"math.Abs":    true, "math.Ceil": true, "math.Floor": true, "math.Inf": true,
	"math.IsInf": true, "math.IsNaN": true, "math.Max": true, "math.Min": true,
	"math.Mod": true, "math.NaN": true, "math.Pow": true, "math.Sqrt": true,
	"math.Exp": true, "math.Log": true, "math.Log2": true, "math.Trunc": true,
	"math.Round": true, "math.MaxInt": true,
	"math.Float64bits": true, "math.Float64frombits": true,
	"(time.Duration).Seconds": true,
	// sync/atomic ops: lock-free counters are the approved way to account
	// work on the live serving hot path.
	"(*sync/atomic.Uint64).Add": true, "(*sync/atomic.Uint64).Load": true,
	"(*sync/atomic.Uint64).Store": true,
	"(*sync/atomic.Int64).Add":   true, "(*sync/atomic.Int64).Load": true,
	"(*sync/atomic.Int64).Store": true,
	"(*sync/atomic.Bool).Load": true,
	// Load on an atomic pointer reads a word; it never allocates. (Store
	// is deliberately absent: publishing implies the caller built the
	// pointee, which is the allocation to keep off the hot path.)
	"(*sync/atomic.Pointer[T]).Load": true,
}

func runHotpathalloc(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, HotpathDirective) {
				continue
			}
			checkHotpathFunc(pass, fd)
		}
	}
	return nil
}

func checkHotpathFunc(pass *Pass, fd *ast.FuncDecl) {
	// selfAppends records append calls blessed by their enclosing
	// assignment (x = append(x, ...)); gathered first so the general call
	// walk can skip them.
	selfAppends := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltin(pass, call, "append") || len(call.Args) == 0 {
				continue
			}
			if sameBase(pass, as.Lhs[i], call.Args[0]) {
				selfAppends[call] = true
			}
		}
		return true
	})

	// allowedFuncLits are literals that cannot escape: bound to a local
	// variable, invoked immediately, or handed to a non-escaping sort
	// helper.
	allowedLits := map[*ast.FuncLit]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if lit, ok := ast.Unparen(rhs).(*ast.FuncLit); ok && i < len(n.Lhs) {
					if _, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok {
						allowedLits[lit] = true
					}
				}
			}
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				allowedLits[lit] = true // immediately invoked
			}
			if fn := calleeOf(pass.Info, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sort" {
				for _, arg := range n.Args {
					if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						allowedLits[lit] = true
					}
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotpathCall(pass, n, selfAppends)
		case *ast.BinaryExpr:
			if n.Op.String() == "+" && isString(pass.Info.TypeOf(n)) {
				pass.Reportf(n.Pos(), "string concatenation allocates on the hot path; use a preallocated buffer or cache the string")
			}
		case *ast.AssignStmt:
			if n.Tok.String() == "+=" && len(n.Lhs) == 1 && isString(pass.Info.TypeOf(n.Lhs[0])) {
				pass.Reportf(n.Pos(), "string += allocates on the hot path")
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal heap-allocates on the hot path")
				}
			}
		case *ast.CompositeLit:
			switch pass.Info.TypeOf(n).Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(n.Pos(), "slice/map composite literal allocates on the hot path; reuse a scratch buffer")
			}
		case *ast.FuncLit:
			if !allowedLits[n] {
				pass.Reportf(n.Pos(), "escaping function literal allocates its closure on the hot path")
			}
			return false // the literal's body runs in its own context
		}
		checkBoxing(pass, n)
		return true
	})
}

func checkHotpathCall(pass *Pass, call *ast.CallExpr, selfAppends map[*ast.CallExpr]bool) {
	// Builtins: make/new allocate; append must be a blessed self-append;
	// the rest (len, cap, copy, delete, clear, min, max) are free.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := pass.Info.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "make", "new":
				pass.Reportf(call.Pos(), "%s allocates on the hot path; hoist into a reused scratch buffer", id.Name)
			case "append":
				if !selfAppends[call] {
					pass.Reportf(call.Pos(),
						"append result is not reassigned to its own first argument; growth escapes the scratch buffer and allocates")
				}
			}
			return
		}
	}
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: allocation-relevant only when converting to an
		// interface (handled by checkBoxing) or string<->[]byte.
		if isString(tv.Type) {
			pass.Reportf(call.Pos(), "conversion to string allocates on the hot path")
		}
		return
	}

	fn := calleeOf(pass.Info, call)
	if fn == nil || isInterfaceMethod(fn) {
		return // dynamic dispatch: statically unknowable, runtime guards cover it
	}
	if fn.Pkg() == nil {
		return
	}
	if fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s allocates on the hot path", fn.Name())
		return
	}
	full := fn.FullName()
	if pass.Hotpath[full] || hotpathStdlibAllowed[full] {
		return
	}
	// Instantiated generic methods carry their type arguments in FullName
	// (e.g. "(*sync/atomic.Pointer[...]).Load"); the fact base and the
	// allowlist are keyed by the uninstantiated origin.
	if origin := fn.Origin(); origin != fn {
		full = origin.FullName()
		if pass.Hotpath[full] || hotpathStdlibAllowed[full] {
			return
		}
	}
	pass.Reportf(call.Pos(),
		"call to %s, which is not annotated %s: its allocations are invisible to this check",
		full, HotpathDirective)
}

// checkBoxing flags implicit conversions of concrete non-pointer values to
// interface types at call arguments, assignments, and returns — the boxing
// allocation the compiler inserts silently.
func checkBoxing(pass *Pass, n ast.Node) {
	report := func(e ast.Expr, to types.Type) {
		from := pass.Info.TypeOf(e)
		if from == nil || to == nil || !types.IsInterface(to) || types.IsInterface(from) {
			return
		}
		if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
			return // untyped constant: may be boxed from a static value
		}
		if isUntypedNil(from) {
			return
		}
		switch from.Underlying().(type) {
		case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
			return // pointer-shaped: boxing stores the pointer, no allocation
		}
		pass.Reportf(e.Pos(), "implicit conversion of %s to interface %s boxes the value and allocates", from, to)
	}
	switch n := n.(type) {
	case *ast.CallExpr:
		if tv, ok := pass.Info.Types[n.Fun]; ok && tv.IsType() {
			report(n.Args[0], tv.Type)
			return
		}
		fn := calleeOf(pass.Info, n)
		if fn == nil {
			return
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return
		}
		for i, arg := range n.Args {
			var pt types.Type
			if sig.Variadic() && i >= sig.Params().Len()-1 {
				last := sig.Params().At(sig.Params().Len() - 1).Type()
				if s, ok := last.(*types.Slice); ok {
					pt = s.Elem()
				}
			} else if i < sig.Params().Len() {
				pt = sig.Params().At(i).Type()
			}
			if pt != nil {
				report(arg, pt)
			}
		}
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			for i := range n.Lhs {
				report(n.Rhs[i], pass.Info.TypeOf(n.Lhs[i]))
			}
		}
	}
}

func isBuiltin(pass *Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.Info.Uses[id].(*types.Builtin)
	return ok
}

// sameBase reports whether two expressions denote the same storage
// location for append-growth purposes: identical identifier/selector
// chains, with slicing on the source side ignored (x = append(x[:k], ...)).
func sameBase(pass *Pass, lhs, arg ast.Expr) bool {
	a := ast.Unparen(arg)
	for {
		if s, ok := a.(*ast.SliceExpr); ok {
			a = ast.Unparen(s.X)
			continue
		}
		break
	}
	return sameRef(pass, ast.Unparen(lhs), a)
}

func sameRef(pass *Pass, a, b ast.Expr) bool {
	switch a := a.(type) {
	case *ast.Ident:
		b, ok := b.(*ast.Ident)
		return ok && objOf(pass, a) != nil && objOf(pass, a) == objOf(pass, b)
	case *ast.SelectorExpr:
		b, ok := b.(*ast.SelectorExpr)
		return ok && objOf(pass, a.Sel) == objOf(pass, b.Sel) &&
			objOf(pass, a.Sel) != nil && sameRef(pass, ast.Unparen(a.X), ast.Unparen(b.X))
	}
	return false
}

func objOf(pass *Pass, id *ast.Ident) types.Object {
	if o := pass.Info.Uses[id]; o != nil {
		return o
	}
	return pass.Info.Defs[id]
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
