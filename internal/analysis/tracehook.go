package analysis

import (
	"go/ast"
	"go/types"
)

// Tracehook enforces the live-observability contract from PR 1: every
// sched.Scheduler implementation must drive the sched.TraceState hooks so
// an attached tracer sees each policy's decisions. Concretely, for each
// named type in the package whose pointer implements sched.Scheduler:
//
//   - PlanBatch must call TracePlan (the per-iteration record),
//   - OnBatchComplete must call TraceComplete (commits the record),
//   - Add must call TraceAdmission (arrival events),
//
// and the type must embed sched.TraceState (which provides the Traceable
// implementation servers use to attach a tracer). A new policy that skips
// any hook compiles fine and silently produces empty /debug/trace output;
// this check turns that into a build failure.
var Tracehook = &Analyzer{
	Name: "tracehook",
	Doc:  "require sched.Scheduler implementations to invoke the TraceState hooks",
	Run:  runTracehook,
}

const schedPkgPath = "qoserve/internal/sched"

// tracehookRequired maps scheduler interface methods to the TraceState hook
// each must invoke.
var tracehookRequired = map[string]string{
	"PlanBatch":       "TracePlan",
	"OnBatchComplete": "TraceComplete",
	"Add":             "TraceAdmission",
}

func runTracehook(pass *Pass) error {
	schedPkg := findImport(pass.Pkg, schedPkgPath)
	if schedPkg == nil {
		return nil // cannot implement sched.Scheduler without importing sched
	}
	schedObj := schedPkg.Scope().Lookup("Scheduler")
	stateObj := schedPkg.Scope().Lookup("TraceState")
	if schedObj == nil || stateObj == nil {
		return nil
	}
	iface, ok := schedObj.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}

	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok || !types.Implements(types.NewPointer(named), iface) {
			continue
		}
		// Delegating wrappers (RateLimited, the experiment recorders) hold
		// an inner scheduler whose hooks fire on their behalf: a wrapper
		// satisfies each requirement by forwarding the same-named method,
		// and satisfies the embedding requirement by holding anything that
		// itself implements the Scheduler interface.
		if !embedsType(st, stateObj.Type()) && !hasSchedulerField(st, iface) {
			pass.Reportf(tn.Pos(),
				"%s implements sched.Scheduler but neither embeds sched.TraceState nor wraps a scheduler; tracing cannot be attached", name)
		}
		for _, fd := range methodDecls(pass, named) {
			hook, required := tracehookRequired[fd.Name.Name]
			if !required || fd.Body == nil {
				continue
			}
			if !callsMethodNamed(fd.Body, hook) && !callsMethodNamed(fd.Body, fd.Name.Name) {
				pass.Reportf(fd.Name.Pos(),
					"%s.%s neither calls %s nor delegates to a wrapped scheduler; attached tracers will miss this policy's %s records",
					name, fd.Name.Name, hook, fd.Name.Name)
			}
		}
	}
	return nil
}

// findImport locates a directly- or transitively-imported package by path
// (pass.Pkg itself included, so the check also runs inside package sched).
func findImport(pkg *types.Package, path string) *types.Package {
	if pkg.Path() == path {
		return pkg
	}
	seen := map[*types.Package]bool{}
	var walk func(p *types.Package) *types.Package
	walk = func(p *types.Package) *types.Package {
		if seen[p] {
			return nil
		}
		seen[p] = true
		for _, imp := range p.Imports() {
			if imp.Path() == path {
				return imp
			}
			if found := walk(imp); found != nil {
				return found
			}
		}
		return nil
	}
	return walk(pkg)
}

// hasSchedulerField reports whether any field's type (or pointer target)
// implements the scheduler interface — the delegating-wrapper shape.
func hasSchedulerField(st *types.Struct, iface *types.Interface) bool {
	for i := 0; i < st.NumFields(); i++ {
		t := st.Field(i).Type()
		if types.Implements(t, iface) {
			return true
		}
		if _, ok := t.Underlying().(*types.Pointer); !ok {
			if types.Implements(types.NewPointer(t), iface) {
				return true
			}
		}
	}
	return false
}

// embedsType reports whether the struct embeds t (directly).
func embedsType(st *types.Struct, t types.Type) bool {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Embedded() && types.Identical(f.Type(), t) {
			return true
		}
	}
	return false
}

// methodDecls collects the FuncDecls in this package whose receiver is
// named (or a pointer to it).
func methodDecls(pass *Pass, named *types.Named) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			rt := pass.Info.TypeOf(fd.Recv.List[0].Type)
			if p, ok := rt.(*types.Pointer); ok {
				rt = p.Elem()
			}
			if types.Identical(rt, named) {
				out = append(out, fd)
			}
		}
	}
	return out
}

// callsMethodNamed reports whether the body contains a call x.<name>(...).
func callsMethodNamed(body *ast.BlockStmt, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == name {
			found = true
		}
		return !found
	})
	return found
}
