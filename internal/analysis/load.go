package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load enumerates patterns with the go tool, then parses and type-checks
// every matched package from source. Dependencies — standard library
// included — are type-checked from source too, through one shared
// recursive importer, so no prebuilt export data is required. Test files
// are not loaded: the enforced contracts apply to shipped code, and tests
// legitimately use wall clocks and ad-hoc randomness.
//
// The go tool runs with CGO_ENABLED=0 so every dependency resolves to its
// pure-Go variant (net, os/user); cgo-augmented packages cannot be
// type-checked from their Go files alone.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-deps", "-json=ImportPath,Dir,GoFiles,Standard,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	ld := &loader{
		fset:  token.NewFileSet(),
		metas: map[string]*listedPkg{},
		pkgs:  map[string]*types.Package{},
		done:  map[string]*Package{},
	}
	var targets []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		pp := p
		ld.metas[p.ImportPath] = &pp
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p.ImportPath)
		}
	}
	sort.Strings(targets)

	var res []*Package
	for _, path := range targets {
		if _, err := ld.load(path); err != nil {
			return nil, err
		}
		res = append(res, ld.done[path])
	}
	return res, nil
}

// loader type-checks packages from source on demand, caching results so the
// module's shared dependencies are checked once.
type loader struct {
	fset  *token.FileSet
	metas map[string]*listedPkg
	pkgs  map[string]*types.Package
	done  map[string]*Package // targets only: syntax + type info retained
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) { return l.load(path) }

func (l *loader) load(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.pkgs[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("analysis: import cycle through %s", path)
		}
		return pkg, nil
	}
	meta, ok := l.metas[path]
	if !ok {
		// The standard library vendors golang.org/x dependencies: source
		// files import the bare path while go list reports vendor/<path>.
		if vendored, vok := l.metas["vendor/"+path]; vok {
			meta = vendored
		} else {
			return nil, fmt.Errorf("analysis: package %s not in the go list dependency graph", path)
		}
	}
	l.pkgs[path] = nil // cycle marker

	files := make([]*ast.File, 0, len(meta.GoFiles))
	for _, name := range meta.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(meta.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", path, err)
		}
		files = append(files, f)
	}

	var info *types.Info
	target := !meta.DepOnly && !meta.Standard
	if target {
		info = newInfo()
	}
	conf := types.Config{
		Importer: l,
		Error:    func(error) {}, // collect the first hard error below
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	l.pkgs[path] = pkg
	if target {
		l.done[path] = &Package{
			Path:  path,
			Dir:   meta.Dir,
			Fset:  l.fset,
			Files: files,
			Types: pkg,
			Info:  info,
		}
	}
	return pkg, nil
}

// newInfo allocates a fully-populated types.Info for analyzer passes.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// CheckDir parses and type-checks a single directory of Go files as the
// package importPath, resolving imports through the module rooted at
// moduleDir. It is the fixture loader behind the analysistest harness:
// fixture packages live under testdata (invisible to the go tool) yet may
// import real module packages, and the chosen importPath controls
// path-sensitive analyzers such as detdrift's determinism-critical list.
func CheckDir(moduleDir, fixtureDir, importPath string) (*Package, error) {
	pkgs, err := CheckDirs(moduleDir, []FixtureDir{{Dir: fixtureDir, ImportPath: importPath}})
	if err != nil {
		return nil, err
	}
	return pkgs[0], nil
}

// FixtureDir names one fixture directory and the import path to check it
// under.
type FixtureDir struct {
	Dir        string
	ImportPath string
}

// CheckDirs is CheckDir for a group of fixture packages that may import
// one another (by their declared import paths), which is what fact-based
// cross-package analyzers need: a fixture that declares an annotated type
// in one package and misuses it from another. Fixtures are type-checked
// in slice order; each result is registered with the shared importer
// before the next begins, so list dependencies before dependents. Every
// package shares one token.FileSet, letting the caller analyze them as a
// unit.
func CheckDirs(moduleDir string, fixtures []FixtureDir) ([]*Package, error) {
	fset := token.NewFileSet()
	fixturePath := map[string]bool{}
	for _, fx := range fixtures {
		fixturePath[fx.ImportPath] = true
	}

	parsed := make([][]*ast.File, len(fixtures))
	imports := map[string]bool{}
	for i, fx := range fixtures {
		entries, err := os.ReadDir(fx.Dir)
		if err != nil {
			return nil, err
		}
		var names []string
		for _, e := range entries {
			if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
				names = append(names, e.Name())
			}
		}
		sort.Strings(names)
		if len(names) == 0 {
			return nil, fmt.Errorf("analysis: no Go files in %s", fx.Dir)
		}
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(fx.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			parsed[i] = append(parsed[i], f)
			for _, imp := range f.Imports {
				imports[imp.Path.Value[1:len(imp.Path.Value)-1]] = true
			}
		}
	}

	// Resolve the fixtures' external imports (and their deps) through the
	// module; sibling-fixture imports resolve via the importer's cache.
	patterns := make([]string, 0, len(imports))
	for imp := range imports {
		if !fixturePath[imp] {
			patterns = append(patterns, imp)
		}
	}
	sort.Strings(patterns)
	ld := &loader{
		fset:  fset,
		metas: map[string]*listedPkg{},
		pkgs:  map[string]*types.Package{},
		done:  map[string]*Package{},
	}
	if len(patterns) > 0 {
		args := append([]string{"list", "-e", "-deps", "-json=ImportPath,Dir,GoFiles,Standard,DepOnly,Error"}, patterns...)
		cmd := exec.Command("go", args...)
		cmd.Dir = moduleDir
		cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p listedPkg
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			pp := p
			pp.DepOnly = true // never retain info for fixture deps
			ld.metas[p.ImportPath] = &pp
		}
	}

	out := make([]*Package, 0, len(fixtures))
	for i, fx := range fixtures {
		info := newInfo()
		conf := types.Config{Importer: ld, Error: func(error) {}}
		pkg, err := conf.Check(fx.ImportPath, fset, parsed[i], info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking fixture %s: %w", fx.Dir, err)
		}
		ld.pkgs[fx.ImportPath] = pkg // visible to later fixtures
		out = append(out, &Package{Path: fx.ImportPath, Dir: fx.Dir, Fset: fset, Files: parsed[i], Types: pkg, Info: info})
	}
	return out, nil
}
