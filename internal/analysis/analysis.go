// Package analysis is the repo's compile-time contract checker: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// shape (Analyzer / Pass / Diagnostic) plus the four project-specific
// analyzers cmd/qoservevet drives:
//
//   - detdrift: no wall-clock reads, global PRNG use, order-sensitive map
//     iteration, or multi-way selects in determinism-critical packages.
//   - hotpathalloc: functions annotated //qoserve:hotpath must avoid
//     allocation-inducing constructs (fmt, make/new, string concat,
//     escaping closures, interface boxing, non-self append growth) and may
//     only call other hotpath-annotated functions.
//   - tracehook: every sched.Scheduler implementation must invoke the
//     sched.TraceState hooks (TracePlan / TraceComplete / TraceAdmission)
//     so observability never silently regresses when a policy lands.
//   - guardedfield: struct fields documented "guarded by <mu>" must only
//     be touched by functions that lock that mutex (or are documented
//     //qoserve:locked <mu>, meaning the caller holds it).
//
// The x/tools framework is deliberately not imported: the build environment
// pins the module graph to the standard library, so the loader
// (go list -deps -json + go/parser + go/types with a recursive source
// importer) and the fixture harness (// want comments, see the
// analysistest subpackage) are reimplemented here on stdlib only. The
// analyzer API mirrors go/analysis closely enough that porting to the real
// multichecker/vettool protocol is mechanical if x/tools becomes available.
//
// False-positive suppression follows staticcheck's convention: a comment
//
//	//lint:ignore detdrift <justification>
//
// on the flagged line or the line above suppresses that analyzer there; a
// //lint:file-ignore form suppresses for the whole file. A justification is
// mandatory — a bare directive is inert and reported as malformed.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check, mirroring go/analysis.Analyzer.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one package's syntax and type information to an analyzer,
// mirroring go/analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Hotpath is the module-wide annotation fact base: the
	// types.Func.FullName of every function whose doc comment carries the
	// //qoserve:hotpath directive, across every analyzed package. It lets
	// hotpathalloc validate cross-package calls without whole-program
	// escape analysis.
	Hotpath map[string]bool

	report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreDirective is one parsed //lint:ignore or //lint:file-ignore.
type ignoreDirective struct {
	analyzers []string // names, or ["*"] for all
	fileWide  bool
	hasReason bool
	line      int
}

func (d ignoreDirective) matches(name string) bool {
	for _, a := range d.analyzers {
		if a == "*" || a == name {
			return true
		}
	}
	return false
}

var lintDirectiveRe = regexp.MustCompile(`^//lint:(ignore|file-ignore)\s+(\S+)(?:\s+(.*))?$`)

// parseIgnores extracts suppression directives from a file. Malformed
// directives (no justification) are returned separately so the runner can
// surface them as findings instead of silently honouring them.
func parseIgnores(fset *token.FileSet, f *ast.File) (byLine map[int][]ignoreDirective, fileWide []ignoreDirective, malformed []token.Pos) {
	byLine = map[int][]ignoreDirective{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := lintDirectiveRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			d := ignoreDirective{
				analyzers: strings.Split(m[2], ","),
				fileWide:  m[1] == "file-ignore",
				hasReason: strings.TrimSpace(m[3]) != "",
				line:      fset.Position(c.Pos()).Line,
			}
			if !d.hasReason {
				malformed = append(malformed, c.Pos())
				continue
			}
			if d.fileWide {
				fileWide = append(fileWide, d)
			} else {
				byLine[d.line] = append(byLine[d.line], d)
			}
		}
	}
	return byLine, fileWide, malformed
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by position. Suppressed findings are dropped; bare
// //lint:ignore directives without a justification are themselves reported.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	hot := HotpathFuncs(pkgs)
	var out []Diagnostic
	for _, pkg := range pkgs {
		type fileIgnores struct {
			byLine   map[int][]ignoreDirective
			fileWide []ignoreDirective
		}
		ignores := map[string]fileIgnores{}
		for _, f := range pkg.Files {
			byLine, fileWide, malformed := parseIgnores(pkg.Fset, f)
			name := pkg.Fset.Position(f.Pos()).Filename
			ignores[name] = fileIgnores{byLine, fileWide}
			for _, pos := range malformed {
				out = append(out, Diagnostic{
					Pos:      pkg.Fset.Position(pos),
					Analyzer: "directive",
					Message:  "//lint:ignore directive is missing a justification",
				})
			}
		}
		suppressed := func(d Diagnostic) bool {
			ig := ignores[d.Pos.Filename]
			for _, dir := range ig.fileWide {
				if dir.matches(d.Analyzer) {
					return true
				}
			}
			for _, dir := range ig.byLine[d.Pos.Line] {
				if dir.matches(d.Analyzer) {
					return true
				}
			}
			for _, dir := range ig.byLine[d.Pos.Line-1] {
				if dir.matches(d.Analyzer) {
					return true
				}
			}
			return false
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Hotpath:  hot,
			}
			pass.report = func(d Diagnostic) {
				if !suppressed(d) {
					out = append(out, d)
				}
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// All returns the full qoservevet suite.
func All() []*Analyzer {
	return []*Analyzer{Detdrift, Hotpathalloc, Tracehook, Guardedfield}
}

// HotpathDirective is the annotation marking a function as part of the
// scheduler's alloc-free hot path.
const HotpathDirective = "//qoserve:hotpath"

// LockedDirectivePrefix marks a function whose caller is documented to hold
// the named mutex, e.g. //qoserve:locked mu.
const LockedDirectivePrefix = "//qoserve:locked"

// hasDirective reports whether a comment group contains the exact directive
// comment (directives are single-line, no leading space after //).
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// directiveArg returns the argument of a single-argument directive
// ("//qoserve:locked mu" -> "mu"), or "" if absent.
func directiveArg(doc *ast.CommentGroup, prefix string) string {
	if doc == nil {
		return ""
	}
	for _, c := range doc.List {
		if rest, ok := strings.CutPrefix(c.Text, prefix+" "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// HotpathFuncs scans every package for //qoserve:hotpath-annotated
// functions and returns their types.Func.FullName set. Full names are
// stable across independent type-check runs of the same source, which is
// what lets a pass over package core validate calls into package sched.
func HotpathFuncs(pkgs []*Package) map[string]bool {
	out := map[string]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !hasDirective(fd.Doc, HotpathDirective) {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					out[obj.FullName()] = true
				}
			}
		}
	}
	return out
}

// calleeOf resolves the static callee of a call expression: a *types.Func
// for ordinary function and method calls, nil for calls of function values,
// builtins, and type conversions.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified call
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isInterfaceMethod reports whether fn is declared on an interface (so the
// call is dynamically dispatched and its body is unknowable statically).
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}
