// Package analysis is the repo's compile-time contract checker: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// shape (Analyzer / Pass / Diagnostic, plus a JSON fact layer for
// cross-package claims) and the eight project-specific analyzers
// cmd/qoservevet drives:
//
//   - detdrift: no wall-clock reads, global PRNG use, order-sensitive map
//     iteration, or multi-way selects in determinism-critical packages.
//   - hotpathalloc: functions annotated //qoserve:hotpath must avoid
//     allocation-inducing constructs (fmt, make/new, string concat,
//     escaping closures, interface boxing, non-self append growth) and may
//     only call other hotpath-annotated functions.
//   - tracehook: every sched.Scheduler implementation must invoke the
//     sched.TraceState hooks (TracePlan / TraceComplete / TraceAdmission)
//     so observability never silently regresses when a policy lands.
//   - guardedfield: struct fields documented "guarded by <mu>" must only
//     be touched by functions that lock that mutex (or are documented
//     //qoserve:locked <mu>, meaning the caller holds it).
//   - atomicfield: a field ever accessed through sync/atomic is accessed
//     through sync/atomic everywhere; atomic wrapper values are never
//     copied.
//   - frozen: values published via atomic.Pointer.Store, and instances of
//     //qoserve:frozen types, are immutable after publication.
//   - nosilentdrop: every request-retiring function in the serving
//     packages records an outcome (//qoserve:outcome complete / fail /
//     requeue / handoff) directly or through an annotated helper.
//   - metricwire: every Prometheus family is declared exactly once,
//     emitted, conventionally named, and backed by a counter something
//     actually updates.
//
// Analyzers that need to see across package boundaries export facts —
// JSON-serializable claims about named program objects — while visiting
// the declaring package; the runner serializes each package's facts and
// merges them into a module-wide base that every check pass and the
// module-level Finish phase read (see facts.go).
//
// The x/tools framework is deliberately not imported: the build environment
// pins the module graph to the standard library, so the loader
// (go list -deps -json + go/parser + go/types with a recursive source
// importer) and the fixture harness (// want comments, see the
// analysistest subpackage) are reimplemented here on stdlib only. The
// analyzer API mirrors go/analysis closely enough that porting to the real
// multichecker/vettool protocol is mechanical if x/tools becomes available.
//
// False-positive suppression follows staticcheck's convention: a comment
//
//	//lint:ignore detdrift <justification>
//
// on the flagged line or the line above suppresses that analyzer there; a
// //lint:file-ignore form suppresses for the whole file. A justification is
// mandatory — a bare directive is inert and reported as malformed.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check, mirroring go/analysis.Analyzer with an
// explicit two-phase shape: FactGen (optional) visits every package first
// and exports facts about its objects; Run then checks each package against
// the complete, module-wide fact base; Finish (optional) runs once at the
// end for whole-module invariants that no single package can decide (e.g.
// "every metric family declared somewhere is emitted somewhere").
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error

	// FactGen, when non-nil, runs over every package before any Run call.
	// Its Pass carries a package-local FactSet; the runner serializes each
	// package's facts to the JSON wire form and imports them into the
	// module-wide base, so cross-package claims always travel through the
	// same encode/decode path a persisted fact cache would use.
	FactGen func(*Pass) error

	// Finish, when non-nil, runs once after every package's Run with the
	// merged fact base. Diagnostics are positioned by the facts themselves.
	Finish func(fs *FactSet, report func(pos token.Position, format string, args ...any))
}

// Pass carries one package's syntax and type information to an analyzer,
// mirroring go/analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Hotpath is the module-wide annotation fact base: the
	// types.Func.FullName of every function whose doc comment carries the
	// //qoserve:hotpath directive, across every analyzed package. It lets
	// hotpathalloc validate cross-package calls without whole-program
	// escape analysis.
	Hotpath map[string]bool

	// Facts is the fact base for this phase: a package-local set being
	// built during FactGen, the merged module-wide set during Run.
	Facts *FactSet

	report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreDirective is one parsed //lint:ignore or //lint:file-ignore.
type ignoreDirective struct {
	analyzers []string // names, or ["*"] for all
	spec      string   // the analyzer list as written
	reason    string   // the mandatory justification
	fileWide  bool
	hasReason bool
	pos       token.Position
	used      bool // suppressed at least one finding this run
}

func (d ignoreDirective) matches(name string) bool {
	for _, a := range d.analyzers {
		if a == "*" || a == name {
			return true
		}
	}
	return false
}

var lintDirectiveRe = regexp.MustCompile(`^//lint:(ignore|file-ignore)\s+(\S+)(?:\s+(.*))?$`)

// parseIgnores extracts suppression directives from a file. Malformed
// directives (no justification) are returned separately so the runner can
// surface them as findings instead of silently honouring them.
func parseIgnores(fset *token.FileSet, f *ast.File) (dirs []*ignoreDirective, malformed []token.Pos) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := lintDirectiveRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			d := &ignoreDirective{
				analyzers: strings.Split(m[2], ","),
				spec:      m[2],
				reason:    strings.TrimSpace(m[3]),
				fileWide:  m[1] == "file-ignore",
				pos:       fset.Position(c.Pos()),
			}
			d.hasReason = d.reason != ""
			if !d.hasReason {
				malformed = append(malformed, c.Pos())
				continue
			}
			dirs = append(dirs, d)
		}
	}
	return dirs, malformed
}

// Suppression is one justified //lint:ignore directive observed during a
// run, for the driver's suppression-audit mode. Used reports whether the
// directive actually suppressed a finding this run; a directive that
// suppresses nothing is stale and should be deleted.
type Suppression struct {
	Pos           token.Position
	Analyzers     string // the analyzer list as written
	Justification string
	FileWide      bool
	Used          bool
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by position. Suppressed findings are dropped; bare
// //lint:ignore directives without a justification are themselves reported.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, _, err := run(pkgs, analyzers)
	return diags, err
}

// RunWithAudit is Run plus the audit trail: every justified suppression
// with its use status, and the merged module-wide fact base.
func RunWithAudit(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []Suppression, *FactSet, error) {
	return run(pkgs, analyzers)
}

func run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []Suppression, *FactSet, error) {
	// Suppression index over every file of every package, so module-level
	// (Finish) diagnostics honour //lint:ignore exactly like package ones.
	type fileIgnores struct {
		byLine   map[int][]*ignoreDirective
		fileWide []*ignoreDirective
	}
	ignores := map[string]*fileIgnores{}
	var directives []*ignoreDirective
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			dirs, malformed := parseIgnores(pkg.Fset, f)
			name := pkg.Fset.Position(f.Pos()).Filename
			fi := &fileIgnores{byLine: map[int][]*ignoreDirective{}}
			for _, d := range dirs {
				directives = append(directives, d)
				if d.fileWide {
					fi.fileWide = append(fi.fileWide, d)
				} else {
					fi.byLine[d.pos.Line] = append(fi.byLine[d.pos.Line], d)
				}
			}
			ignores[name] = fi
			for _, pos := range malformed {
				out = append(out, Diagnostic{
					Pos:      pkg.Fset.Position(pos),
					Analyzer: "directive",
					Message:  "//lint:ignore directive is missing a justification",
				})
			}
		}
	}
	suppressed := func(d Diagnostic) bool {
		fi := ignores[d.Pos.Filename]
		if fi == nil {
			return false
		}
		for _, dir := range fi.fileWide {
			if dir.matches(d.Analyzer) {
				dir.used = true
				return true
			}
		}
		for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
			for _, dir := range fi.byLine[line] {
				if dir.matches(d.Analyzer) {
					dir.used = true
					return true
				}
			}
		}
		return false
	}
	report := func(d Diagnostic) {
		if !suppressed(d) {
			out = append(out, d)
		}
	}

	// Fact phase: every FactGen visits every package, each package's facts
	// are encoded to the JSON wire form and imported into the module base.
	facts := NewFactSet()
	for _, pkg := range pkgs {
		pkgFacts := NewFactSet()
		for _, a := range analyzers {
			if a.FactGen == nil {
				continue
			}
			pass := newPass(a, pkg, nil, pkgFacts, report)
			if err := a.FactGen(pass); err != nil {
				return nil, nil, nil, fmt.Errorf("%s: %s facts: %w", pkg.Path, a.Name, err)
			}
		}
		wire, err := pkgFacts.Encode()
		if err != nil {
			return nil, nil, nil, fmt.Errorf("%s: encoding facts: %w", pkg.Path, err)
		}
		if err := facts.Import(wire); err != nil {
			return nil, nil, nil, fmt.Errorf("%s: %w", pkg.Path, err)
		}
	}

	// Check phase, against the complete fact base.
	hot := HotpathFuncs(pkgs)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := newPass(a, pkg, hot, facts, report)
			if err := a.Run(pass); err != nil {
				return nil, nil, nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
			}
		}
	}

	// Finish phase: module-wide invariants over the merged facts.
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		name := a.Name
		a.Finish(facts, func(pos token.Position, format string, args ...any) {
			report(Diagnostic{Pos: pos, Analyzer: name, Message: fmt.Sprintf(format, args...)})
		})
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	audit := make([]Suppression, 0, len(directives))
	for _, d := range directives {
		audit = append(audit, Suppression{
			Pos:           d.pos,
			Analyzers:     d.spec,
			Justification: d.reason,
			FileWide:      d.fileWide,
			Used:          d.used,
		})
	}
	sort.Slice(audit, func(i, j int) bool {
		a, b := audit[i], audit[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out, audit, facts, nil
}

func newPass(a *Analyzer, pkg *Package, hot map[string]bool, facts *FactSet, report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		Hotpath:  hot,
		Facts:    facts,
		report:   report,
	}
}

// All returns the full qoservevet suite.
func All() []*Analyzer {
	return []*Analyzer{
		Detdrift, Hotpathalloc, Tracehook, Guardedfield,
		Atomicfield, Frozen, Nosilentdrop, Metricwire,
	}
}

// HotpathDirective is the annotation marking a function as part of the
// scheduler's alloc-free hot path.
const HotpathDirective = "//qoserve:hotpath"

// LockedDirectivePrefix marks a function whose caller is documented to hold
// the named mutex, e.g. //qoserve:locked mu.
const LockedDirectivePrefix = "//qoserve:locked"

// hasDirective reports whether a comment group contains the exact directive
// comment (directives are single-line, no leading space after //).
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// directiveArg returns the argument of a single-argument directive
// ("//qoserve:locked mu" -> "mu"), or "" if absent.
func directiveArg(doc *ast.CommentGroup, prefix string) string {
	if doc == nil {
		return ""
	}
	for _, c := range doc.List {
		if rest, ok := strings.CutPrefix(c.Text, prefix+" "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// HotpathFuncs scans every package for //qoserve:hotpath-annotated
// functions and returns their types.Func.FullName set. Full names are
// stable across independent type-check runs of the same source, which is
// what lets a pass over package core validate calls into package sched.
func HotpathFuncs(pkgs []*Package) map[string]bool {
	out := map[string]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !hasDirective(fd.Doc, HotpathDirective) {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					out[obj.FullName()] = true
				}
			}
		}
	}
	return out
}

// calleeOf resolves the static callee of a call expression: a *types.Func
// for ordinary function and method calls, nil for calls of function values,
// builtins, and type conversions.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified call
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isInterfaceMethod reports whether fn is declared on an interface (so the
// call is dynamically dispatched and its body is unknowable statically).
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}
