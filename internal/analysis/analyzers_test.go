package analysis_test

import (
	"os/exec"
	"path/filepath"
	"testing"

	"qoserve/internal/analysis"
	"qoserve/internal/analysis/analysistest"
)

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

// TestDetdriftFixture checks the determinism fixture under a critical import
// path: every seeded violation must fire, every blessed idiom stay silent.
func TestDetdriftFixture(t *testing.T) {
	analysistest.Run(t, fixture("detdrift"), "qoserve/internal/sim/detfixture", analysis.Detdrift)
}

// TestDetdriftOutsideCriticalPackages re-checks the same fixture under a
// neutral import path: wall clocks and global PRNGs are legitimate outside
// the determinism boundary, so the analyzer must go completely quiet.
func TestDetdriftOutsideCriticalPackages(t *testing.T) {
	diags := analysistest.Findings(t, fixture("detdrift"), "qoserve/internal/reporting", analysis.Detdrift)
	for _, d := range diags {
		t.Errorf("finding outside the determinism boundary: %s", d)
	}
}

// TestHotpathallocFixture seeds one of every forbidden construct inside
// //qoserve:hotpath functions, next to the blessed scratch-buffer forms.
func TestHotpathallocFixture(t *testing.T) {
	analysistest.Run(t, fixture("hotpathalloc"), "qoserve/fixture/hotpath", analysis.Hotpathalloc)
}

// TestTracehookFixture checks hook enforcement against the real
// sched.Scheduler interface, including the delegating-wrapper exemption.
func TestTracehookFixture(t *testing.T) {
	analysistest.Run(t, fixture("tracehook"), "qoserve/fixture/tracehook", analysis.Tracehook)
}

// TestGuardedfieldFixture checks mutex-comment enforcement: locked access,
// unlocked access, the //qoserve:locked convention, and a bad guard comment.
func TestGuardedfieldFixture(t *testing.T) {
	analysistest.Run(t, fixture("guardedfield"), "qoserve/fixture/guardedfield", analysis.Guardedfield)
}

// TestBareDirectiveReported verifies a //lint:ignore with no justification
// is surfaced as a finding rather than silently honoured.
func TestBareDirectiveReported(t *testing.T) {
	diags := analysistest.Findings(t, fixture("directive"), "qoserve/fixture/directive", analysis.Detdrift)
	if len(diags) != 1 || diags[0].Analyzer != "directive" {
		t.Fatalf("want exactly one malformed-directive finding, got %v", diags)
	}
}

// TestQoservevetRepoClean runs the real driver over the whole repository:
// head must pass the suite clean, exactly as the make lint gate requires.
func TestQoservevetRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a go run subprocess over the whole module")
	}
	root := analysistest.ModuleRoot(t)
	cmd := exec.Command("go", "run", "./cmd/qoservevet", "./...")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("qoservevet is not clean at head: %v\n%s", err, out)
	}
}
