package analysis_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"qoserve/internal/analysis"
	"qoserve/internal/analysis/analysistest"
)

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

// TestDetdriftFixture checks the determinism fixture under a critical import
// path: every seeded violation must fire, every blessed idiom stay silent.
func TestDetdriftFixture(t *testing.T) {
	analysistest.Run(t, fixture("detdrift"), "qoserve/internal/sim/detfixture", analysis.Detdrift)
}

// TestDetdriftOutsideCriticalPackages re-checks the same fixture under a
// neutral import path: wall clocks and global PRNGs are legitimate outside
// the determinism boundary, so the analyzer must go completely quiet.
func TestDetdriftOutsideCriticalPackages(t *testing.T) {
	diags := analysistest.Findings(t, fixture("detdrift"), "qoserve/internal/reporting", analysis.Detdrift)
	for _, d := range diags {
		t.Errorf("finding outside the determinism boundary: %s", d)
	}
}

// TestHotpathallocFixture seeds one of every forbidden construct inside
// //qoserve:hotpath functions, next to the blessed scratch-buffer forms.
func TestHotpathallocFixture(t *testing.T) {
	analysistest.Run(t, fixture("hotpathalloc"), "qoserve/fixture/hotpath", analysis.Hotpathalloc)
}

// TestTracehookFixture checks hook enforcement against the real
// sched.Scheduler interface, including the delegating-wrapper exemption.
func TestTracehookFixture(t *testing.T) {
	analysistest.Run(t, fixture("tracehook"), "qoserve/fixture/tracehook", analysis.Tracehook)
}

// TestGuardedfieldFixture checks mutex-comment enforcement: locked access,
// unlocked access, the //qoserve:locked convention, and a bad guard comment.
func TestGuardedfieldFixture(t *testing.T) {
	analysistest.Run(t, fixture("guardedfield"), "qoserve/fixture/guardedfield", analysis.Guardedfield)
}

// TestBareDirectiveReported verifies a //lint:ignore with no justification
// is surfaced as a finding rather than silently honoured.
func TestBareDirectiveReported(t *testing.T) {
	diags := analysistest.Findings(t, fixture("directive"), "qoserve/fixture/directive", analysis.Detdrift)
	if len(diags) != 1 || diags[0].Analyzer != "directive" {
		t.Fatalf("want exactly one malformed-directive finding, got %v", diags)
	}
}

// TestAtomicfieldFixture seeds mixed atomic/plain access and wrapper-value
// copies next to every blessed form (the atomic calls themselves, wrapper
// methods, address-of, plain-everywhere fields).
func TestAtomicfieldFixture(t *testing.T) {
	analysistest.Run(t, fixture("atomicfield"), "qoserve/fixture/atomicfield", analysis.Atomicfield)
}

// TestNosilentdropFixture checks retirement-operation enforcement under a
// request-handling import path: unrecorded drops fire, recorder-annotated
// and recorder-calling functions stay silent, bad kinds are rejected.
func TestNosilentdropFixture(t *testing.T) {
	analysistest.Run(t, fixture("nosilentdrop"), "qoserve/internal/server/dropfixture", analysis.Nosilentdrop)
}

// TestNosilentdropOutsideCriticalPackages re-checks the same fixture under
// a neutral import path: retirement operations are fine elsewhere, so only
// the annotation-validation finding (a bad //qoserve:outcome kind, wrong
// in any package) may remain.
func TestNosilentdropOutsideCriticalPackages(t *testing.T) {
	diags := analysistest.Findings(t, fixture("nosilentdrop"), "qoserve/fixture/drop", analysis.Nosilentdrop)
	for _, d := range diags {
		if !strings.Contains(d.Message, "kind must be one of") {
			t.Errorf("finding outside the request-handling packages: %s", d)
		}
	}
	if len(diags) != 1 {
		t.Errorf("want exactly the bad-kind finding, got %d: %v", len(diags), diags)
	}
}

// TestMetricwireFixture seeds one of every wiring defect — dark family,
// phantom sample, suffix violations, invalid name, duplicate declaration,
// flatlined source field — around a local promWriter clone.
func TestMetricwireFixture(t *testing.T) {
	analysistest.Run(t, fixture("metricwire"), "qoserve/fixture/metricwire", analysis.Metricwire)
}

// TestCrossPackageFacts is the cross-package fact fixture: factdecl
// exports frozen, mutator, and atomic facts; factuse imports it and
// violates each contract from the other side of the package boundary.
// Every finding in factuse depends on facts surviving the JSON wire
// format between packages.
func TestCrossPackageFacts(t *testing.T) {
	analysistest.RunMulti(t, []analysistest.Fixture{
		{Dir: fixture("factdecl"), ImportPath: "qoserve/fixture/factdecl"},
		{Dir: fixture("factuse"), ImportPath: "qoserve/fixture/factuse"},
	}, analysis.Atomicfield, analysis.Frozen)
}

// TestQoservevetRepoClean runs the real driver over the whole repository:
// head must pass the suite clean, exactly as the make lint gate requires.
// The run uses -json -o so the machine-readable report CI archives is
// exercised end to end: written to a file, parsed back, and checked.
func TestQoservevetRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a go run subprocess over the whole module")
	}
	root := analysistest.ModuleRoot(t)
	reportPath := filepath.Join(t.TempDir(), "qoservevet.json")
	cmd := exec.Command("go", "run", "./cmd/qoservevet", "-json", "-o", reportPath, "./...")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("qoservevet is not clean at head: %v\n%s", err, out)
	}

	var rep struct {
		Version  int `json:"version"`
		Findings []struct {
			Analyzer string `json:"analyzer"`
		} `json:"findings"`
		Suppressions []struct {
			Used bool `json:"used"`
		} `json:"suppressions"`
		Stats struct {
			Packages          int `json:"packages"`
			Analyzers         int `json:"analyzers"`
			Facts             int `json:"facts"`
			Findings          int `json:"findings"`
			Suppressions      int `json:"suppressions"`
			StaleSuppressions int `json:"staleSuppressions"`
		} `json:"stats"`
	}
	raw, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatalf("reading the JSON report: %v", err)
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("parsing the JSON report: %v", err)
	}
	if rep.Version != 1 {
		t.Errorf("report version = %d, want 1", rep.Version)
	}
	if rep.Stats.Findings != 0 || len(rep.Findings) != 0 {
		t.Errorf("clean run reported findings: %+v", rep.Findings)
	}
	if rep.Stats.Analyzers != len(analysis.All()) {
		t.Errorf("report ran %d analyzers, want %d", rep.Stats.Analyzers, len(analysis.All()))
	}
	if rep.Stats.Facts == 0 {
		t.Error("no facts exported: the cross-package fact layer is not running")
	}
	if rep.Stats.StaleSuppressions != 0 {
		t.Errorf("%d stale suppressions at head — delete them", rep.Stats.StaleSuppressions)
	}
	if rep.Stats.Suppressions != len(rep.Suppressions) {
		t.Errorf("stats.suppressions = %d but %d listed", rep.Stats.Suppressions, len(rep.Suppressions))
	}
}

// TestQoservevetList checks -list names every analyzer in the suite.
func TestQoservevetList(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a go run subprocess")
	}
	root := analysistest.ModuleRoot(t)
	cmd := exec.Command("go", "run", "./cmd/qoservevet", "-list")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("qoservevet -list: %v\n%s", err, out)
	}
	for _, a := range analysis.All() {
		if !strings.Contains(string(out), a.Name) {
			t.Errorf("-list output is missing %s:\n%s", a.Name, out)
		}
	}
}
