// Package analysistest verifies the qoservevet analyzers against fixture
// packages whose expected findings are declared inline, mirroring the
// golang.org/x/tools/go/analysis/analysistest convention:
//
//	time.Now() // want `wall-clock read time\.Now`
//
// A want comment holds one or more quoted or backquoted regular
// expressions; each must match a distinct finding reported on that line (the
// pattern is matched against "analyzer: message"), and every finding must be
// claimed by a want. Fixture directories live under testdata so the go tool
// never builds them; they are type-checked by analysis.CheckDir under a
// caller-chosen import path, which is what lets one fixture be verified both
// inside and outside detdrift's determinism-critical package list.
package analysistest

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"qoserve/internal/analysis"
)

// ModuleRoot locates the enclosing go.mod starting from the test's working
// directory (the package directory under go test).
func ModuleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("analysistest: no go.mod above the working directory")
		}
		dir = parent
	}
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// wantArgsRe captures the expectation list after the marker; wantPatternRe
// splits it into individual quoted or backquoted patterns.
var (
	wantArgsRe    = regexp.MustCompile("// want (.+)$")
	wantPatternRe = regexp.MustCompile("`[^`]*`" + `|"(?:[^"\\]|\\.)*"`)
)

// Run type-checks fixtureDir as importPath, applies the analyzers, and
// diffs the findings against the fixture's want comments.
func Run(t *testing.T, fixtureDir, importPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	diags, wants := analyze(t, fixtureDir, importPath, analyzers)
	diff(t, diags, wants)
}

// Fixture pairs a fixture directory with the import path to check it
// under, for RunMulti.
type Fixture struct {
	Dir        string
	ImportPath string
}

// RunMulti type-checks several fixture packages together — later fixtures
// may import earlier ones by their declared import paths — analyzes them
// as one unit, and diffs the combined findings against every fixture's
// want comments. This is the harness for cross-package fact flows: a
// directive in the declaring fixture must change what the analyzers say
// about its importers.
func RunMulti(t *testing.T, fixtures []Fixture, analyzers ...*analysis.Analyzer) {
	t.Helper()
	dirs := make([]analysis.FixtureDir, len(fixtures))
	for i, fx := range fixtures {
		dirs[i] = analysis.FixtureDir{Dir: fx.Dir, ImportPath: fx.ImportPath}
	}
	pkgs, err := analysis.CheckDirs(ModuleRoot(t), dirs)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("analyzing fixtures: %v", err)
	}
	var wants []want
	for _, pkg := range pkgs {
		wants = append(wants, parseWants(t, pkg)...)
	}
	diff(t, diags, wants)
}

// diff matches findings against expectations one-to-one and reports both
// unexpected findings and unmet wants.
func diff(t *testing.T, diags []analysis.Diagnostic, wants []want) {
	t.Helper()
	for _, d := range diags {
		matched := false
		for i := range wants {
			w := &wants[i]
			if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Analyzer + ": " + d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding at %s: %s: %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected a finding matching %s, got none", w.file, w.line, w.raw)
		}
	}
}

// Findings returns the raw findings for fixtureDir checked as importPath,
// ignoring want comments. Tests use it to assert path-sensitive analyzers go
// quiet outside their target packages.
func Findings(t *testing.T, fixtureDir, importPath string, analyzers ...*analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	diags, _ := analyze(t, fixtureDir, importPath, analyzers)
	return diags
}

func analyze(t *testing.T, fixtureDir, importPath string, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, []want) {
	t.Helper()
	pkg, err := analysis.CheckDir(ModuleRoot(t), fixtureDir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixtureDir, err)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("analyzing fixture %s: %v", fixtureDir, err)
	}
	return diags, parseWants(t, pkg)
}

// parseWants extracts every want expectation from the fixture's comments.
func parseWants(t *testing.T, pkg *analysis.Package) []want {
	t.Helper()
	var out []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantArgsRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns := wantPatternRe.FindAllString(m[1], -1)
				if len(patterns) == 0 {
					t.Fatalf("%s:%d: want comment with no quoted pattern", pos.Filename, pos.Line)
				}
				for _, p := range patterns {
					out = append(out, want{
						file: pos.Filename,
						line: pos.Line,
						re:   compileWant(t, pos, p),
						raw:  p,
					})
				}
			}
		}
	}
	return out
}

func compileWant(t *testing.T, pos token.Position, pattern string) *regexp.Regexp {
	t.Helper()
	var text string
	if strings.HasPrefix(pattern, "`") {
		text = strings.Trim(pattern, "`")
	} else {
		var err error
		text, err = strconv.Unquote(pattern)
		if err != nil {
			t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, pattern, err)
		}
	}
	re, err := regexp.Compile(text)
	if err != nil {
		t.Fatalf("%s:%d: bad want regexp %s: %v", pos.Filename, pos.Line, pattern, err)
	}
	return re
}
