package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// dropCritical lists the packages bound by the no-silent-drop contract:
// every request that enters them must leave with a recorded outcome
// (PR 2's contract, previously guarded only by chaos tests and loadgen's
// exit status).
var dropCritical = []string{
	"qoserve/internal/server",
	"qoserve/internal/replica",
	"qoserve/internal/cluster",
}

func isDropCritical(path string) bool {
	for _, p := range dropCritical {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// Nosilentdrop makes "no request fails silently" a compile gate. Inside
// the request-handling packages it finds retirement operations — the
// statements that make a request stop being tracked:
//
//   - delete on a map whose values carry a request or a stream channel
//     (the gateway's stream and pending-handoff tables),
//   - the slice-removal idiom x = append(x[:i], x[j:]...) on a
//     []*request.Request (the cluster's parked queue), and
//   - assigning nil to a struct field of type []*request.Request
//     (dropping a whole tracked queue at once, as replica.Fail does).
//
// A function containing a retirement operation must record an outcome: be
// annotated //qoserve:outcome <kind>, or call — anywhere in its body,
// closures included — a function so annotated. Kinds: complete (the
// request finished and its final event is delivered), fail (permanently
// failed with a recorded reason), requeue (re-entered the system), handoff
// (returned to the caller, which assumes the obligation). Outcome
// annotations are exported as facts, so a server function may discharge
// its obligation through a cluster helper and vice versa.
const nosilentdropName = "nosilentdrop"

var Nosilentdrop = &Analyzer{
	Name:    nosilentdropName,
	Doc:     "require every request-retiring function in server/replica/cluster to record an outcome",
	FactGen: nosilentdropFacts,
	Run:     runNosilentdrop,
}

// OutcomeDirectivePrefix marks a function that records a request outcome,
// e.g. //qoserve:outcome fail.
const OutcomeDirectivePrefix = "//qoserve:outcome"

const outcomeFactKind = "outcome"

// outcomeKinds are the recognized outcome classes.
var outcomeKinds = map[string]bool{
	"complete": true, "fail": true, "requeue": true, "handoff": true,
}

// nosilentdropFacts exports an "outcome" fact for every annotated
// function, validating the kind.
func nosilentdropFacts(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if !hasDirective(fd.Doc, OutcomeDirectivePrefix) {
				continue
			}
			kind := directiveArg(fd.Doc, OutcomeDirectivePrefix)
			if !outcomeKinds[kind] {
				pass.Reportf(fd.Name.Pos(),
					"%s %q: kind must be one of complete, fail, requeue, handoff",
					OutcomeDirectivePrefix, kind)
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				pass.ExportFact(fn.FullName(), outcomeFactKind, kind, fd.Name.Pos())
			}
		}
	}
	return nil
}

func runNosilentdrop(pass *Pass) error {
	if !isDropCritical(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDropFunc(pass, fd)
		}
	}
	return nil
}

func checkDropFunc(pass *Pass, fd *ast.FuncDecl) {
	if hasDirective(fd.Doc, OutcomeDirectivePrefix) {
		return // the function is itself an outcome recorder
	}
	type retirement struct {
		pos  ast.Node
		what string
	}
	var retirements []retirement
	recordsOutcome := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltin(pass, n, "delete") && len(n.Args) == 2 {
				if mt, ok := pass.Info.TypeOf(n.Args[0]).Underlying().(*types.Map); ok && carriesRequest(mt.Elem()) {
					retirements = append(retirements, retirement{n, "delete from a request-tracking map"})
				}
			}
			if fn := calleeOf(pass.Info, n); fn != nil {
				full := fn.FullName()
				if origin := fn.Origin(); origin != nil {
					full = origin.FullName()
				}
				if pass.Facts.Has(nosilentdropName, full, outcomeFactKind) {
					recordsOutcome = true
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				rhs := ast.Unparen(n.Rhs[i])
				if isRequestSliceRemoval(pass, lhs, rhs) {
					retirements = append(retirements, retirement{n, "removal from a request slice"})
				}
				if isNilledRequestField(pass, lhs, rhs) {
					retirements = append(retirements, retirement{n, "dropping a tracked request slice"})
				}
			}
		}
		return true
	})
	if len(retirements) == 0 || recordsOutcome {
		return
	}
	for _, r := range retirements {
		pass.Reportf(r.pos.Pos(),
			"%s retires requests, but %s neither carries %s nor calls an outcome recorder — record complete/fail/requeue or hand off explicitly",
			r.what, funcLabel(fd), OutcomeDirectivePrefix)
	}
}

// carriesRequest reports whether retiring a value of this type loses track
// of a request: the module request type itself, a channel (stream tables),
// or a struct holding either one level down.
func carriesRequest(t types.Type) bool {
	if isRequestType(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Chan:
		return true
	case *types.Pointer:
		return carriesRequest(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			ft := u.Field(i).Type()
			if isRequestType(ft) {
				return true
			}
			if _, ok := ft.Underlying().(*types.Chan); ok {
				return true
			}
		}
	}
	return false
}

// isRequestType matches qoserve/internal/request.Request, by pointer or
// value.
func isRequestType(t types.Type) bool {
	named := derefNamed(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "qoserve/internal/request" && obj.Name() == "Request"
}

// isRequestSlice matches []*request.Request (and []request.Request).
func isRequestSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	return ok && isRequestType(s.Elem())
}

// isRequestSliceRemoval matches x = append(x[:i], x[j:]...) over a request
// slice — the in-place removal idiom.
func isRequestSliceRemoval(pass *Pass, lhs ast.Expr, rhs ast.Expr) bool {
	call, ok := rhs.(*ast.CallExpr)
	if !ok || !isBuiltin(pass, call, "append") || len(call.Args) != 2 || !call.Ellipsis.IsValid() {
		return false
	}
	if !isRequestSlice(pass.Info.TypeOf(lhs)) {
		return false
	}
	first, ok1 := ast.Unparen(call.Args[0]).(*ast.SliceExpr)
	second, ok2 := ast.Unparen(call.Args[1]).(*ast.SliceExpr)
	if !ok1 || !ok2 {
		return false
	}
	return sameRef(pass, ast.Unparen(lhs), ast.Unparen(first.X)) &&
		sameRef(pass, ast.Unparen(lhs), ast.Unparen(second.X))
}

// isNilledRequestField matches s.field = nil where field is a request
// slice: the whole tracked queue is dropped at once.
func isNilledRequestField(pass *Pass, lhs ast.Expr, rhs ast.Expr) bool {
	id, ok := rhs.(*ast.Ident)
	if !ok || id.Name != "nil" {
		return false
	}
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if s, ok := pass.Info.Selections[sel]; !ok || s.Kind() != types.FieldVal {
		return false
	}
	return isRequestSlice(pass.Info.TypeOf(lhs))
}
