package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// Guardedfield enforces the repo's mutex-documentation convention: a struct
// field whose doc or line comment says "guarded by <mu>" (where <mu> is a
// sibling sync.Mutex/RWMutex field) may only be read or written inside
// functions that lock that mutex, or functions annotated
//
//	//qoserve:locked <mu>
//
// declaring that their caller holds it (the *Locked-helper convention in
// internal/server). The check is function-granular — it does not prove the
// access happens between Lock and Unlock — which is exactly the granularity
// the PR 3 Env-cache race occupied: a cache touched from sweep workers by a
// method that never locked at all.
var Guardedfield = &Analyzer{
	Name: "guardedfield",
	Doc:  `require fields documented "guarded by mu" to be accessed under that mutex`,
	Run:  runGuardedfield,
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// guardedField links a protected field to its mutex field.
type guardedField struct {
	field types.Object // the guarded *types.Var
	mu    types.Object // the sync.Mutex / sync.RWMutex *types.Var
	muuN  string       // mutex field name, for //qoserve:locked matching
}

func runGuardedfield(pass *Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	byField := map[types.Object]*guardedField{}
	for i := range guards {
		byField[guards[i].field] = &guards[i]
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			heldNames := lockedDirectiveNames(fd)
			locked := lockedMutexes(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				s, ok := pass.Info.Selections[sel]
				if !ok || s.Kind() != types.FieldVal {
					return true
				}
				g, ok := byField[s.Obj()]
				if !ok {
					return true
				}
				if locked[g.mu] || heldNames[g.muuN] {
					return true
				}
				pass.Reportf(sel.Sel.Pos(),
					"%s is documented as guarded by %s, but %s neither locks it nor is annotated %s %s",
					s.Obj().Name(), g.muuN, funcLabel(fd), LockedDirectivePrefix, g.muuN)
				return true
			})
		}
	}
	return nil
}

// collectGuards finds "guarded by <mu>" field comments and resolves both
// sides to type objects.
func collectGuards(pass *Pass) []guardedField {
	var out []guardedField
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			// First resolve candidate mutex fields by name.
			mutexes := map[string]types.Object{}
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					if obj := pass.Info.Defs[name]; obj != nil && isMutexType(obj.Type()) {
						mutexes[name.Name] = obj
					}
				}
			}
			for _, f := range st.Fields.List {
				muName := guardComment(f)
				if muName == "" {
					continue
				}
				mu, ok := mutexes[muName]
				if !ok {
					for _, name := range f.Names {
						pass.Reportf(name.Pos(),
							`field %s is documented "guarded by %s" but the struct has no mutex field of that name`,
							name.Name, muName)
					}
					continue
				}
				for _, name := range f.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						out = append(out, guardedField{field: obj, mu: mu, muuN: muName})
					}
				}
			}
			return true
		})
	}
	return out
}

// guardComment extracts the mutex name from a field's doc or trailing
// comment.
func guardComment(f *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// lockedMutexes returns the mutex field objects on which the body calls
// Lock or RLock.
func lockedMutexes(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s, ok := pass.Info.Selections[inner]; ok && s.Kind() == types.FieldVal {
			out[s.Obj()] = true
		}
		return true
	})
	return out
}

// lockedDirectiveNames returns the mutex names the function declares its
// caller to hold via //qoserve:locked.
func lockedDirectiveNames(fd *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	if arg := directiveArg(fd.Doc, LockedDirectivePrefix); arg != "" {
		for _, name := range strings.Fields(arg) {
			out[name] = true
		}
	}
	return out
}

func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

func funcLabel(fd *ast.FuncDecl) string {
	if fd.Recv != nil {
		return "method " + fd.Name.Name
	}
	return "function " + fd.Name.Name
}
