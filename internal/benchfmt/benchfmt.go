// Package benchfmt parses `go test -bench` output and defines the JSON
// baseline document committed as BENCH_PR*.json. It is shared by
// cmd/benchjson (which writes baselines) and cmd/benchgate (which diffs a
// fresh run against a committed baseline to catch performance regressions).
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units (e.g. "req/s").
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Baseline is the emitted document.
type Baseline struct {
	GoVersion  string            `json:"go_version"`
	GoOS       string            `json:"goos"`
	GoArch     string            `json:"goarch"`
	GoMaxProcs int               `json:"gomaxprocs"`
	Meta       map[string]string `json:"meta,omitempty"`
	Benchmarks []Result          `json:"benchmarks"`
}

// Load reads a baseline document from a JSON file written by cmd/benchjson.
func Load(path string) (Baseline, error) {
	var doc Baseline
	buf, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// Parse extracts benchmark result lines from a Go benchmark log.
// Non-benchmark lines are ignored.
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Minimum: Name Iterations Value "ns/op".
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: TrimProcs(fields[0]), Iterations: iters}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
				ok = true
			case "B/op":
				b := int64(v)
				res.BytesPerOp = &b
			case "allocs/op":
				a := int64(v)
				res.AllocsPerOp = &a
			default:
				if res.Extra == nil {
					res.Extra = map[string]float64{}
				}
				res.Extra[fields[i+1]] = v
			}
		}
		if ok {
			out = append(out, res)
		}
	}
	return out, sc.Err()
}

// TrimProcs drops the -N GOMAXPROCS suffix Go appends to benchmark names.
func TrimProcs(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}
