package experiments

import (
	"qoserve/internal/cluster"
	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/sim"
	"qoserve/internal/workload"
)

func init() {
	register("lb", "Extra ablation — round-robin vs least-loaded balancing across QoServe replicas", runLB)
}

// runLB compares the paper's round-robin load balancing against
// least-pending routing on a 4-replica QoServe cluster near saturation,
// where round-robin's blindness to skew (one replica stuck behind several
// huge prompts) shows up in tail TTFT.
func runLB(e *Env) error {
	mc := model.Llama3_8B_A100_TP1()
	const replicas = 4
	ref, err := e.refCapacity("lb-ref", mc, e.QoServe(mc), workload.AzureCode, standardTiers(), e.Seed+20)
	if err != nil {
		return err
	}
	e.printf("Per-replica reference capacity (QoServe): %.2f QPS; cluster of %d replicas\n", ref, replicas)

	e.printf("%-16s%16s%18s%16s\n", "Balancer", "Violations(%)", "Q1 p99 TTFT(s)", "Q1 p50 TTFT(s)")
	for _, b := range []struct {
		name string
		mk   func() cluster.Balancer
	}{
		{"round-robin", func() cluster.Balancer { return &cluster.RoundRobin{} }},
		{"least-pending", func() cluster.Balancer { return cluster.LeastPending{} }},
	} {
		trace, err := e.Trace(workload.AzureCode, standardTiers(), ref*replicas*0.95, e.Seed+20)
		if err != nil {
			return err
		}
		engine := sim.NewEngine()
		c, err := cluster.New(engine, mc, replicas, e.QoServe(mc))
		if err != nil {
			return err
		}
		c.SetBalancer(b.mk())
		for _, r := range trace {
			r := r
			engine.AtPriority(r.Arrival, -1, sim.EventFunc(func(_ *sim.Engine, _ sim.Time) {
				c.Submit(r)
			}))
		}
		end := engine.RunUntil(Horizon(trace))
		sum := metrics.NewSummary(trace, end, replicas)
		e.printf("%-16s%16.2f%18.2f%16.2f\n", b.name,
			100*sum.ViolationRate(metrics.All),
			sum.TTFTQuantile(metrics.ByClass("Q1"), 0.99),
			sum.TTFTQuantile(metrics.ByClass("Q1"), 0.5))
	}
	return nil
}
