package experiments

import (
	"io"
	"testing"

	"qoserve/internal/cluster"
	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/qos"
	"qoserve/internal/sched"
	"qoserve/internal/workload"
)

// TestGoodputOrderingProbe is the repository's headline shape check, run at
// reduced scale with sustained load: on a shared cluster, QoServe must
// sustain materially more load within the 1% violation target than
// Sarathi-FCFS and Sarathi-EDF (paper Fig. 7: 1.5-2.4x over FCFS, 20-40%
// over EDF).
func TestGoodputOrderingProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("capacity search is slow")
	}
	e := NewEnv(0.04, io.Discard) // ~9.6 simulated minutes per probe
	mc := model.Llama3_8B_A100_TP1()
	tiers := workload.EqualTiers(qos.Table3())
	gen := e.TraceGen(workload.AzureCode, tiers, 31)

	capacity := func(factory cluster.SchedulerFactory) float64 {
		qps, _, err := cluster.MaxGoodput(mc, factory, gen, e.searchOpts())
		if err != nil {
			t.Fatal(err)
		}
		return qps
	}

	fcfs := capacity(e.Sarathi(sched.FCFS, 256))
	edf := capacity(e.Sarathi(sched.EDF, 256))
	qsv := capacity(e.QoServe(mc))
	t.Logf("goodput: FCFS=%.2f EDF=%.2f QoServe=%.2f (QoServe/FCFS=%.2fx, QoServe/EDF=%.2fx)",
		fcfs, edf, qsv, qsv/fcfs, qsv/edf)

	if qsv <= fcfs {
		t.Errorf("QoServe capacity %.2f <= FCFS %.2f", qsv, fcfs)
	}
	if qsv <= edf*1.1 {
		t.Errorf("QoServe capacity %.2f not >10%% above EDF %.2f", qsv, edf)
	}
	if ratio := qsv / fcfs; ratio < 1.3 {
		t.Errorf("QoServe/FCFS ratio %.2f below expectation", ratio)
	}
}

// TestOverloadViolationOrderingProbe: well past every scheduler's capacity
// under sustained load, QoServe's violations must be far below the
// baselines' (paper Fig. 11: order-of-magnitude gap under overload).
func TestOverloadViolationOrderingProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("overload run is slow")
	}
	e := NewEnv(0.08, io.Discard) // ~19 simulated minutes
	mc := model.Llama3_8B_A100_TP1()
	tiers := workload.EqualTiers(qos.Table3())

	viol := func(factory cluster.SchedulerFactory) float64 {
		trace, err := e.Trace(workload.AzureCode, tiers, 6, 33)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := RunJudged(mc, 1, factory, trace)
		if err != nil {
			t.Fatal(err)
		}
		return sum.ViolationRate(metrics.All)
	}
	fcfs := viol(e.Sarathi(sched.FCFS, 256))
	edf := viol(e.Sarathi(sched.EDF, 256))
	srpf := viol(e.Sarathi(sched.SRPF, 256))
	qsv := viol(e.QoServe(mc))
	t.Logf("overload violations: FCFS=%.1f%% EDF=%.1f%% SRPF=%.1f%% QoServe=%.1f%%",
		100*fcfs, 100*edf, 100*srpf, 100*qsv)
	if qsv >= fcfs {
		t.Errorf("QoServe violations %.3f not below FCFS %.3f", qsv, fcfs)
	}
	if qsv >= edf {
		t.Errorf("QoServe violations %.3f not below EDF %.3f", qsv, edf)
	}
	if qsv >= srpf {
		t.Errorf("QoServe violations %.3f not below SRPF %.3f", qsv, srpf)
	}
}

// TestAblationLadderProbe guards Table 5's monotone ladder: each QoServe
// technique must add capacity on top of the previous configuration.
func TestAblationLadderProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("capacity search is slow")
	}
	e := NewEnv(0.03, io.Discard)
	mc := model.Llama3_8B_A100_TP1()
	gen := e.TraceGen(workload.AzureCode, standardTiers(), 55)

	capacity := func(f cluster.SchedulerFactory) float64 {
		qps, _, err := cluster.MaxGoodput(mc, f, gen, e.searchOpts())
		if err != nil {
			t.Fatal(err)
		}
		return qps
	}
	cfgs := table5Configs(e, mc)
	edf := capacity(cfgs[0].factory)
	dc := capacity(cfgs[1].factory)
	dcER := capacity(cfgs[2].factory)
	t.Logf("ladder: EDF=%.2f DC=%.2f DC+ER=%.2f", edf, dc, dcER)
	if dc <= edf {
		t.Errorf("dynamic chunking added no capacity: %.2f <= %.2f", dc, edf)
	}
	if dcER < dc*0.95 {
		t.Errorf("eager relegation lost capacity: %.2f < %.2f", dcER, dc)
	}
}

// TestDiurnalPriorityProtectionProbe guards Fig. 12's key property: under
// the diurnal overload with 20% free-tier traffic, QoServe's high-priority
// violation rate stays well below the baselines' and below a few percent.
func TestDiurnalPriorityProtectionProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("diurnal run is slow")
	}
	e := NewEnv(0.03, io.Discard)
	mc := model.Llama3_8B_A100_TP1()
	trace, err := e.diurnalTrace(e.Seed + 6)
	if err != nil {
		t.Fatal(err)
	}
	qsv, err := RunJudged(mc, 1, e.QoServe(mc), trace)
	if err != nil {
		t.Fatal(err)
	}
	edfTrace, err := e.diurnalTrace(e.Seed + 6)
	if err != nil {
		t.Fatal(err)
	}
	edf, err := RunJudged(mc, 1, e.Sarathi(sched.EDF, 256), edfTrace)
	if err != nil {
		t.Fatal(err)
	}
	qsvHi := qsv.ViolationRate(metrics.And(metrics.All, metrics.ByPriority(qos.High)))
	edfHi := edf.ViolationRate(metrics.ByPriority(qos.High))
	t.Logf("high-priority violations: QoServe %.2f%%, EDF %.2f%%", 100*qsvHi, 100*edfHi)
	if qsvHi > 0.05 {
		t.Errorf("QoServe high-priority violations %.3f above 5%%", qsvHi)
	}
	if edfHi < qsvHi*5 {
		t.Errorf("EDF high-priority violations %.3f not far above QoServe %.3f", edfHi, qsvHi)
	}
}
