package experiments

import (
	"qoserve/internal/cluster"
	"qoserve/internal/core"
	"qoserve/internal/disagg"
	"qoserve/internal/model"
	"qoserve/internal/sched"
	"qoserve/internal/workload"
)

func init() {
	register("fig8", "Figure 8 — prefill goodput under PD disaggregation (Azure-Conv)", runFig8)
}

// runFig8 evaluates the schedulers on disaggregated prefill nodes: a large
// 8K default chunk (no TBT pressure), hybrid prioritization and eager
// relegation still apply, but dynamic chunking has little headroom — the
// paper's gains here are smaller than under PD colocation.
func runFig8(e *Env) error {
	ds := workload.AzureConv
	e.printf("%-24s%14s%14s%16s\n", "Config", "Disagg-FCFS", "Disagg-EDF", "Disagg-QoServe")
	for _, mc := range model.Presets() {
		gen := e.TraceGen(ds, standardTiers(), e.Seed+3)
		capacity := func(f cluster.SchedulerFactory) (float64, error) {
			qps, _, err := disagg.MaxGoodput(mc, f, gen, e.searchOpts())
			return qps, err
		}
		opts := core.DefaultOptions()
		opts.MaxChunk = disagg.DefaultChunk
		fcfs, err := capacity(e.Sarathi(sched.FCFS, disagg.DefaultChunk))
		if err != nil {
			return err
		}
		edf, err := capacity(e.Sarathi(sched.EDF, disagg.DefaultChunk))
		if err != nil {
			return err
		}
		qsv, err := capacity(e.QoServeOpts(mc, opts))
		if err != nil {
			return err
		}
		e.printf("%-24s%14.2f%14.2f%16.2f\n", mc.Name(), fcfs, edf, qsv)
	}
	return nil
}
