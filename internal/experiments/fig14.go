package experiments

import (
	"fmt"

	"qoserve/internal/core"
	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/sim"
	"qoserve/internal/workload"
)

func init() {
	register("fig14", "Figure 14 — hybrid prioritization alpha sweep (Azure-Code, Llama3-8B)", runFig14)
}

// runFig14 varies the interpolation factor alpha (0, 2, 4 ms/token, fixed —
// no load-adaptive switching) and reports median latency and long-request
// violations across load: larger alpha deprioritizes long requests, cutting
// median latency at the cost of long-job fairness.
// alphaOpts fixes the hybrid factor to alphaMS ms/token with adaptivity off.
func alphaOpts(alphaMS int) core.Options {
	opts := core.DefaultOptions()
	opts.AdaptiveAlpha = false
	opts.Alpha = sim.Time(alphaMS) * sim.Millisecond
	opts.HybridPriority = alphaMS > 0
	return opts
}

func runFig14(e *Env) error {
	mc := model.Llama3_8B_A100_TP1()
	ds := workload.AzureCode
	ref, err := e.refCapacity("fig14-edf", mc, e.QoServeOpts(mc, alphaOpts(0)), ds, standardTiers(), e.Seed+7)
	if err != nil {
		return err
	}
	e.printf("Reference capacity (alpha=0): %.2f QPS\n", ref)
	loads := scaleLoads(ref, []float64{0.7, 1.0, 1.4, 1.8, 2.2})
	var scheds []namedFactory
	for _, alphaMS := range []int{0, 2, 4} {
		scheds = append(scheds, namedFactory{
			label:   fmt.Sprintf("alpha=%d", alphaMS),
			factory: e.QoServeOpts(mc, alphaOpts(alphaMS)),
		})
	}
	results, err := e.loadSweep(mc, ds, standardTiers(), loads, scheds, e.Seed+7)
	if err != nil {
		return err
	}
	long := workload.LongThreshold(ds)
	e.printSweepTable("Median request latency (s)", results, scheds, loads,
		func(s *metrics.Summary) float64 { return s.LatencyQuantile(metrics.All, 0.5) })
	e.printSweepTable("Long-request deadline violations (%)", results, scheds, loads,
		func(s *metrics.Summary) float64 { return 100 * s.ViolationRate(metrics.LongerThan(long)) })
	e.printSweepTable("Overall deadline violations (%)", results, scheds, loads,
		func(s *metrics.Summary) float64 { return 100 * s.ViolationRate(metrics.All) })
	return nil
}
