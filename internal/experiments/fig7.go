package experiments

import (
	"qoserve/internal/cluster"
	"qoserve/internal/model"
	"qoserve/internal/sched"
	"qoserve/internal/workload"
)

func init() {
	register("fig7", "Figure 7 — max goodput per replica, shared cluster (3 models x 3 datasets)", runFig7)
}

// runFig7 measures the maximum per-replica load (QPS) each scheduler
// sustains with <=1% deadline violations across the Table 1 model/hardware
// configurations and Table 2 datasets. The paper reports QoServe at
// 1.5-2.4x Sarathi-FCFS and 20-40% above Sarathi-EDF.
func runFig7(e *Env) error {
	for _, mc := range model.Presets() {
		e.printf("\n%s\n", mc.Name())
		e.printf("%-12s%14s%14s%14s%12s%12s\n",
			"Dataset", "Sarathi-FCFS", "Sarathi-EDF", "QoServe", "vs FCFS", "vs EDF")
		for _, ds := range workload.Datasets() {
			gen := e.TraceGen(ds, standardTiers(), e.Seed+2)
			capacity := func(f cluster.SchedulerFactory) (float64, error) {
				qps, _, err := cluster.MaxGoodput(mc, f, gen, e.searchOpts())
				return qps, err
			}
			fcfs, err := capacity(e.Sarathi(sched.FCFS, 256))
			if err != nil {
				return err
			}
			edf, err := capacity(e.Sarathi(sched.EDF, 256))
			if err != nil {
				return err
			}
			qsv, err := capacity(e.QoServe(mc))
			if err != nil {
				return err
			}
			e.printf("%-12s%14.2f%14.2f%14.2f%11.2fx%11.2fx\n",
				ds.Name, fcfs, edf, qsv, ratio(qsv, fcfs), ratio(qsv, edf))
		}
	}
	return nil
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
