package experiments

import (
	"qoserve/internal/cluster"
	"qoserve/internal/model"
	"qoserve/internal/sched"
	"qoserve/internal/workload"
)

func init() {
	register("fig7", "Figure 7 — max goodput per replica, shared cluster (3 models x 3 datasets)", runFig7)
}

// runFig7 measures the maximum per-replica load (QPS) each scheduler
// sustains with <=1% deadline violations across the Table 1 model/hardware
// configurations and Table 2 datasets. The paper reports QoServe at
// 1.5-2.4x Sarathi-FCFS and 20-40% above Sarathi-EDF.
func runFig7(e *Env) error {
	// Every (model, dataset, scheduler) capacity search is independent;
	// fan the full grid out and print rows in the original order.
	models := model.Presets()
	datasets := workload.Datasets()
	type job struct {
		mc      model.Config
		ds      workload.Dataset
		factory cluster.SchedulerFactory
	}
	var jobs []job
	for _, mc := range models {
		// Build the QoServe factory (which trains the predictor) before
		// fanning out, so workers share one trained forest per model.
		qsv := e.QoServe(mc)
		for _, ds := range datasets {
			jobs = append(jobs,
				job{mc, ds, e.Sarathi(sched.FCFS, 256)},
				job{mc, ds, e.Sarathi(sched.EDF, 256)},
				job{mc, ds, qsv})
		}
	}
	caps, err := parallelMap(e, len(jobs), func(i int) (float64, error) {
		j := jobs[i]
		gen := e.TraceGen(j.ds, standardTiers(), e.Seed+2)
		qps, _, err := cluster.MaxGoodput(j.mc, j.factory, gen, e.searchOpts())
		return qps, err
	})
	if err != nil {
		return err
	}
	i := 0
	for _, mc := range models {
		e.printf("\n%s\n", mc.Name())
		e.printf("%-12s%14s%14s%14s%12s%12s\n",
			"Dataset", "Sarathi-FCFS", "Sarathi-EDF", "QoServe", "vs FCFS", "vs EDF")
		for _, ds := range datasets {
			fcfs, edf, qsv := caps[i], caps[i+1], caps[i+2]
			i += 3
			e.printf("%-12s%14.2f%14.2f%14.2f%11.2fx%11.2fx\n",
				ds.Name, fcfs, edf, qsv, ratio(qsv, fcfs), ratio(qsv, edf))
		}
	}
	return nil
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
