package experiments

import (
	"qoserve/internal/core"
	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/qos"
	"qoserve/internal/sched"
	"qoserve/internal/session"
	"qoserve/internal/sim"
	"qoserve/internal/workload"
)

func init() {
	register("sessions", "Extension — closed-loop multi-turn conversations vs open-loop trace replay", runSessions)
}

// runSessions contrasts the paper's open-loop trace replay against a
// closed-loop conversational workload with matching average token demand:
// in the closed loop, follow-up turns wait for responses (self-throttling)
// and prompts accumulate the conversation, so tails behave differently —
// the serving-system effect flattened by open-loop evaluation.
func runSessions(e *Env) error {
	mc := model.Llama3_8B_A100_TP1()
	prof := session.Profile{
		Class: qos.Class{Name: "Q1", Kind: qos.Interactive,
			SLO: qos.SLO{TTFT: 6 * sim.Second, TBT: 50 * sim.Millisecond}},
		FirstPrompt: workload.TokenDist{P50: 900, P90: 3000},
		FollowUp:    workload.TokenDist{P50: 80, P90: 300},
		Decode:      workload.TokenDist{P50: 40, P90: 300},
		MeanTurns:   4,
		ThinkTime:   5 * sim.Second,
	}

	sessions := int(0.6 * e.Duration().Seconds()) // 0.6 sessions/s
	if sessions < 40 {
		sessions = 40
	}

	e.printf("%-14s%10s%12s%14s%14s%14s\n",
		"Scheduler", "Turns", "Viol(%)", "TTFT p50(s)", "TTFT p99(s)", "CtxP50(tok)")
	type row struct {
		label string
		mk    func() sched.Scheduler
	}
	rows := []row{
		{"Sarathi-EDF", func() sched.Scheduler { return sched.NewSarathi(sched.EDF, 256) }},
		{"QoServe", func() sched.Scheduler { return core.New(e.Predictor(mc), core.DefaultOptions()) }},
	}
	var closedTurnRate float64
	for _, r := range rows {
		res, err := session.Run(mc, r.mk(), session.Spec{
			Profile:    prof,
			SessionQPS: 0.6,
			Sessions:   sessions,
			Seed:       e.Seed + 25,
		}, sim.Forever)
		if err != nil {
			return err
		}
		sum := res.Summary
		e.printf("%-14s%10d%12.2f%14.2f%14.2f%14d\n", r.label,
			res.Turns, 100*sum.ViolationRate(metrics.All),
			sum.TTFTQuantile(metrics.All, 0.5),
			sum.TTFTQuantile(metrics.All, 0.99),
			res.FinalContextP50)
		closedTurnRate = float64(res.Turns) / sum.End.Seconds()
	}

	// Matched open-loop replay: same turn rate, prompts drawn from a
	// single (flattened) distribution around the closed loop's median
	// context.
	e.printf("\nOpen-loop replay at the closed loop's turn rate (%.2f turns/s):\n", closedTurnRate)
	tiers := workload.EqualTiers([]qos.Class{prof.Class})
	ds := workload.Dataset{Name: "flattened",
		Prompt: workload.TokenDist{P50: 1300, P90: 3600},
		Decode: prof.Decode,
	}
	for _, r := range rows {
		trace, err := workload.Generate(workload.Spec{
			Dataset:  ds,
			Tiers:    tiers,
			Arrivals: workload.Poisson{QPS: closedTurnRate},
			Requests: int(closedTurnRate * e.Duration().Seconds()),
			Seed:     e.Seed + 25,
		})
		if err != nil {
			return err
		}
		factory := r.mk
		sum, err := RunJudged(mc, 1, func() sched.Scheduler { return factory() }, trace)
		if err != nil {
			return err
		}
		e.printf("%-14s%10d%12.2f%14.2f%14.2f%14s\n", r.label,
			len(trace), 100*sum.ViolationRate(metrics.All),
			sum.TTFTQuantile(metrics.All, 0.5),
			sum.TTFTQuantile(metrics.All, 0.99), "-")
	}
	e.printf("\n(The closed loop is the harder workload at the same turn rate: follow-up\nturns arrive in correlated clumps and carry the accumulated conversation, so\ndeadline-only scheduling degrades while QoServe's slack exploitation absorbs\nit — another behaviour open-loop replay flattens.)\n")
	return nil
}
