package experiments

import (
	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/sched"
	"qoserve/internal/workload"
)

func init() {
	register("fig10", "Figure 10 — per-tier TTFT (p50/p95) vs load (Azure-Code, Llama3-8B)", runFig10)
	register("fig11", "Figure 11 — deadline violations by tier and length vs load (Azure-Code, Llama3-8B)", runFig11)
}

// overloadScheds are the four schedulers of the overload study (§4.2).
func overloadScheds(e *Env, mc model.Config) []namedFactory {
	return []namedFactory{
		{"Sarathi-FCFS", e.Sarathi(sched.FCFS, 256)},
		{"Sarathi-SRPF", e.Sarathi(sched.SRPF, 256)},
		{"Sarathi-EDF", e.Sarathi(sched.EDF, 256)},
		{"QoServe", e.QoServe(mc)},
	}
}

// overloadLoads derives the §4.2 sweep from the EDF baseline's capacity
// (the paper's 2-6 QPS spans ~0.7x-2.2x of Sarathi-EDF's 2.75 QPS).
func (e *Env) overloadLoads(mc model.Config) ([]float64, error) {
	ref, err := e.refCapacity("fig10-edf", mc, e.Sarathi(sched.EDF, 256),
		workload.AzureCode, standardTiers(), e.Seed+5)
	if err != nil {
		return nil, err
	}
	e.printf("Reference capacity (Sarathi-EDF): %.2f QPS\n", ref)
	return scaleLoads(ref, []float64{0.7, 1.0, 1.4, 1.8, 2.2}), nil
}

// runFig10 reproduces the six latency panels: p50 and p95 TTFT per QoS
// bucket as load rises past saturation. TBT plots are omitted as in the
// paper (violations stay <0.1% everywhere by construction of the chunk
// budget); the TBT violation rate is printed for verification.
func runFig10(e *Env) error {
	mc := model.Llama3_8B_A100_TP1()
	scheds := overloadScheds(e, mc)
	loads, err := e.overloadLoads(mc)
	if err != nil {
		return err
	}
	results, err := e.loadSweep(mc, workload.AzureCode, standardTiers(), loads, scheds, e.Seed+5)
	if err != nil {
		return err
	}
	for _, tier := range []string{"Q1", "Q2", "Q3"} {
		f := metrics.ByClass(tier)
		e.printSweepTable("p50 TTFT "+tier+" (s)", results, scheds, loads,
			func(s *metrics.Summary) float64 { return s.TTFTQuantile(f, 0.5) })
		e.printSweepTable("p95 TTFT "+tier+" (s)", results, scheds, loads,
			func(s *metrics.Summary) float64 { return s.TTFTQuantile(f, 0.95) })
	}
	e.printSweepTable("TBT deadline violations, all interactive tokens (%)", results, scheds, loads,
		func(s *metrics.Summary) float64 { return 100 * s.TBTViolationRate(metrics.All) })
	return nil
}

// runFig11 reproduces the violation panels: overall, split by request
// length (long = prompt >= dataset p90), and split by QoS bucket.
func runFig11(e *Env) error {
	mc := model.Llama3_8B_A100_TP1()
	ds := workload.AzureCode
	scheds := overloadScheds(e, mc)
	loads, err := e.overloadLoads(mc)
	if err != nil {
		return err
	}
	results, err := e.loadSweep(mc, ds, standardTiers(), loads, scheds, e.Seed+5)
	if err != nil {
		return err
	}
	long := workload.LongThreshold(ds)
	panels := []struct {
		title  string
		filter metrics.Filter
	}{
		{"(a) Overall violations (%)", metrics.All},
		{"(b) Short-request violations (%)", metrics.ShorterThan(long)},
		{"(c) Long-request violations (%)", metrics.LongerThan(long)},
		{"(d) Q1 violations (%)", metrics.ByClass("Q1")},
		{"(e) Q2 violations (%)", metrics.ByClass("Q2")},
		{"(f) Q3 violations (%)", metrics.ByClass("Q3")},
	}
	for _, p := range panels {
		f := p.filter
		e.printSweepTable(p.title, results, scheds, loads,
			func(s *metrics.Summary) float64 { return 100 * s.ViolationRate(f) })
	}
	// Fairness of attainment across tiers (Jain's index; 1.0 = all tiers
	// meet SLOs at the same rate). SRPF's length bias and FCFS's
	// strict-tier-first cascade both show up as index drops.
	tierGroups := []metrics.Filter{
		metrics.ByClass("Q1"), metrics.ByClass("Q2"), metrics.ByClass("Q3"),
	}
	e.printSweepTable("(g) Jain fairness of SLO attainment across tiers", results, scheds, loads,
		func(s *metrics.Summary) float64 { return s.JainFairness(tierGroups) })
	return nil
}
