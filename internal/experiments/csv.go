package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// writeCSV dumps a sweep table to <CSVDir>/<experiment>_<slug>.csv with a
// "qps" column followed by one column per scheduler. Failures are reported
// on the experiment output but do not abort the run.
func (e *Env) writeCSV(title string, scheds []namedFactory, loads []float64, values map[string]map[float64]float64) {
	if e.CSVDir == "" {
		return
	}
	name := fmt.Sprintf("%s_%s.csv", e.current, slugify(title))
	path := filepath.Join(e.CSVDir, name)
	f, err := os.Create(path)
	if err != nil {
		e.printf("(csv: %v)\n", err)
		return
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := []string{"qps"}
	for _, s := range scheds {
		header = append(header, s.label)
	}
	if err := w.Write(header); err != nil {
		e.printf("(csv: %v)\n", err)
		return
	}
	for _, qps := range loads {
		row := []string{strconv.FormatFloat(qps, 'f', -1, 64)}
		for _, s := range scheds {
			row = append(row, strconv.FormatFloat(values[s.label][qps], 'g', -1, 64))
		}
		if err := w.Write(row); err != nil {
			e.printf("(csv: %v)\n", err)
			return
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		e.printf("(csv: %v)\n", err)
	}
}

// slugify turns a table title into a filename fragment.
func slugify(title string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(title) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-' || r == '_' || r == '/':
			b.WriteByte('-')
		}
	}
	out := strings.Trim(b.String(), "-")
	for strings.Contains(out, "--") {
		out = strings.ReplaceAll(out, "--", "-")
	}
	if len(out) > 60 {
		out = out[:60]
	}
	return out
}
