package experiments

import (
	"time"

	"qoserve/internal/core"
	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/request"
	"qoserve/internal/sched"
	"qoserve/internal/sim"
	"qoserve/internal/workload"
)

func init() {
	register("slosserve", "Section 4.5.3 — SLOs-Serve DP scheduling overhead vs QoServe (complexity argument)", runSLOsServe)
	register("vllm", "Extra baseline — vanilla (non-chunked) vLLM vs Sarathi vs QoServe", runVLLM)
}

// runSLOsServe reproduces the §4.5.3 qualitative comparison with
// measurements: SLOs-Serve's periodic dynamic program costs
// O(N_new x M) per round (N_new queued requests, M KV blocks) while
// QoServe plans with O(log N_new) queue operations plus a throttled O(N)
// projection. Part 1 measures one planning round at growing queue depths;
// part 2 runs both end to end and reports quality plus total planning time.
func runSLOsServe(e *Env) error {
	mc := model.Llama3_8B_A100_TP1()
	kvTokens := mc.KVCapacityTokens()

	e.printf("Planning cost for one admission round (M = %d KV blocks):\n", kvTokens/16)
	e.printf("%-10s%18s%16s%18s\n", "Queue N", "SLOs-Serve ops", "SLOs-Serve", "QoServe plan")
	for _, n := range []int{50, 100, 200, 400} {
		trace, err := e.Trace(workload.AzureCode, standardTiers(), 4, int64(1000+n))
		if err != nil {
			return err
		}
		if len(trace) < n {
			n = len(trace)
		}

		ss := sched.NewSLOsServe(256, kvTokens, 5000, sim.Millisecond)
		for _, r := range trace[:n] {
			ss.Add(r, 0)
		}
		//lint:ignore detdrift this experiment's product IS the real planning wall time (SLOs-Serve DP vs QoServe, §4.5.3); the timed columns are expected to vary run to run.
		ssStart := time.Now()
		ss.PlanBatch(sim.Millisecond)
		//lint:ignore detdrift see above: wall time is the measured quantity.
		ssWall := time.Since(ssStart)
		_, ops, _ := ss.PlanningCost()

		qs := core.New(e.Predictor(mc), core.DefaultOptions())
		for _, r := range workload.Clone(trace)[:n] {
			qs.Add(r, 0)
		}
		//lint:ignore detdrift see above: wall time is the measured quantity.
		qsStart := time.Now()
		qs.PlanBatch(sim.Millisecond)
		//lint:ignore detdrift see above: wall time is the measured quantity.
		qsWall := time.Since(qsStart)

		e.printf("%-10d%18d%16v%18v\n", n, ops, ssWall.Round(time.Microsecond), qsWall.Round(time.Microsecond))
	}

	// End-to-end quality and overhead at a moderate load.
	trace, err := e.Trace(workload.AzureCode, standardTiers(), 3, e.Seed+18)
	if err != nil {
		return err
	}
	ss := sched.NewSLOsServe(256, kvTokens, 5000, 250*sim.Millisecond)
	ssSum, err := runSingle(mc, ss, workload.Clone(trace))
	if err != nil {
		return err
	}
	rounds, ops, wall := ss.PlanningCost()
	qsSum, err := runSingle(mc, core.New(e.Predictor(mc), core.DefaultOptions()), workload.Clone(trace))
	if err != nil {
		return err
	}
	e.printf("\nEnd-to-end at 3 QPS (Azure-Code): SLOs-Serve violations %.2f%%, QoServe %.2f%%\n",
		100*ssSum.ViolationRate(metrics.All), 100*qsSum.ViolationRate(metrics.All))
	e.printf("SLOs-Serve planning: %d rounds, %d DP cell ops, %v total\n", rounds, ops, wall.Round(time.Millisecond))
	return nil
}

// runSingle simulates one replica with the given scheduler.
func runSingle(mc model.Config, s sched.Scheduler, trace []*request.Request) (*metrics.Summary, error) {
	sum, _, err := replicaRun(mc, s, trace)
	return sum, err
}

// runVLLM demonstrates why the paper omits the non-chunked vLLM baseline:
// Sarathi's chunked prefill strictly dominates it on TBT (vLLM stalls all
// decodes for the length of each prefill batch), and QoServe dominates
// both.
func runVLLM(e *Env) error {
	mc := model.Llama3_8B_A100_TP1()
	ds := workload.AzureConv // decode-heavy enough for TBT to matter
	ref, err := e.refCapacity("vllm-edf", mc, e.Sarathi(sched.EDF, 256), ds, standardTiers(), e.Seed+19)
	if err != nil {
		return err
	}
	loads := scaleLoads(ref, []float64{0.5, 0.8, 1.1})
	scheds := []namedFactory{
		{"vLLM", func() sched.Scheduler { return sched.NewVLLM(0) }},
		{"Sarathi-EDF", e.Sarathi(sched.EDF, 256)},
		{"QoServe", e.QoServe(mc)},
	}
	results, err := e.loadSweep(mc, ds, standardTiers(), loads, scheds, e.Seed+19)
	if err != nil {
		return err
	}
	e.printSweepTable("p99 worst inter-token gap, interactive requests (s)", results, scheds, loads,
		func(s *metrics.Summary) float64 { return s.MaxTBTQuantile(metrics.ByClass("Q1"), 0.99) })
	e.printSweepTable("TBT deadline violations (%)", results, scheds, loads,
		func(s *metrics.Summary) float64 { return 100 * s.TBTViolationRate(metrics.All) })
	e.printSweepTable("Overall deadline violations (%)", results, scheds, loads,
		func(s *metrics.Summary) float64 { return 100 * s.ViolationRate(metrics.All) })
	return nil
}
