// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 4). Each experiment is a function that runs the
// relevant simulations and prints the same rows/series the paper reports;
// the registry in registry.go maps paper artifact names ("fig7", "table5",
// ...) to these functions for the cmd/experiments binary and the root
// benchmark suite.
//
// Scale: the paper's runs span 4 hours and up to 360K requests. Experiments
// here accept a scale factor that shrinks trace durations proportionally
// (default 0.05 => ~12-minute traces) while preserving arrival rates, tier
// mixes, and therefore the qualitative shapes. Pass -scale=1 to
// cmd/experiments for paper-duration runs.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"qoserve/internal/cluster"
	"qoserve/internal/core"
	"qoserve/internal/htmlreport"
	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/predictor"
	"qoserve/internal/profile"
	"qoserve/internal/qos"
	"qoserve/internal/request"
	"qoserve/internal/sched"
	"qoserve/internal/sim"
	"qoserve/internal/workload"
)

// Env carries shared experiment state: the hardware configuration, trained
// latency predictors (one per model config), output sink, and scale.
type Env struct {
	Scale float64 // duration multiplier relative to the paper's runs
	Seed  int64
	Out   io.Writer
	// Plot renders sweep tables as terminal line charts too.
	Plot bool
	// CSVDir, when set, additionally writes each sweep table as a CSV
	// file named <experiment>_<table-slug>.csv for external plotting.
	CSVDir string
	// HTML, when non-nil, collects every sweep table as an SVG chart for
	// a single report document (cmd/experiments -html).
	HTML *htmlreport.Builder
	// Workers bounds the sweep-point worker pool (see pool.go); 0 means
	// GOMAXPROCS, 1 forces serial execution.
	Workers int

	current string // experiment currently running (for CSV naming)

	// mu guards the lazily-populated caches below, which sweep workers may
	// touch concurrently. The expensive computations run outside the lock;
	// a racing duplicate recomputes the same seeded, deterministic value,
	// so last-writer-wins is harmless.
	mu       sync.Mutex
	preds    map[string]predictor.SafePredictor // guarded by mu
	capCache map[string]float64                 // guarded by mu
}

// NewEnv builds an environment. scale <= 0 defaults to 0.05 (about 12
// simulated minutes per run).
func NewEnv(scale float64, out io.Writer) *Env {
	if scale <= 0 {
		scale = 0.05
	}
	return &Env{Scale: scale, Seed: 42, Out: out, preds: map[string]predictor.SafePredictor{}}
}

// Predictor returns the trained random-forest predictor for a model
// configuration, training it on first use (Section 3.6.1: one profile per
// model/hardware/parallelism configuration).
func (e *Env) Predictor(mc model.Config) predictor.SafePredictor {
	e.mu.Lock()
	p, ok := e.preds[mc.Name()]
	e.mu.Unlock()
	if ok {
		return p
	}
	samples, err := profile.Collect(mc, profile.Config{Seed: e.Seed})
	if err != nil {
		panic(fmt.Sprintf("experiments: profiling %s: %v", mc.Name(), err))
	}
	f, err := predictor.Train(samples, predictor.ForestConfig{Seed: e.Seed})
	if err != nil {
		panic(fmt.Sprintf("experiments: training predictor for %s: %v", mc.Name(), err))
	}
	e.mu.Lock()
	if prev, ok := e.preds[mc.Name()]; ok {
		f0 := prev // another worker trained it first; share theirs
		e.mu.Unlock()
		return f0
	}
	e.preds[mc.Name()] = f
	e.mu.Unlock()
	return f
}

// QoServe returns a scheduler factory with the paper's default options.
func (e *Env) QoServe(mc model.Config) cluster.SchedulerFactory {
	return e.QoServeOpts(mc, core.DefaultOptions())
}

// QoServeOpts returns a QoServe factory with explicit options (ablations).
func (e *Env) QoServeOpts(mc model.Config, opts core.Options) cluster.SchedulerFactory {
	pred := e.Predictor(mc)
	return func() sched.Scheduler { return core.New(pred, opts) }
}

// Sarathi returns a fixed-chunk baseline factory.
func (e *Env) Sarathi(policy sched.Policy, chunk int) cluster.SchedulerFactory {
	return func() sched.Scheduler { return sched.NewSarathi(policy, chunk) }
}

// Medha returns the adaptive-chunking comparison factory (§4.5.1).
func (e *Env) Medha(mc model.Config, tbt sim.Time) cluster.SchedulerFactory {
	pred := e.Predictor(mc)
	return func() sched.Scheduler { return sched.NewMedha(pred, tbt, 4096) }
}

// PaperDuration is the paper's standard experiment length (§4.1.2: 4-hour
// serving period).
const PaperDuration = 4 * sim.Hour

// Duration returns the scaled run length, floored at 2 simulated minutes so
// tiny scales still produce meaningful statistics.
func (e *Env) Duration() sim.Time {
	d := sim.Time(float64(PaperDuration) * e.Scale)
	if d < 2*sim.Minute {
		d = 2 * sim.Minute
	}
	return d
}

// Trace synthesizes a Poisson trace of the scaled duration at the given
// rate.
func (e *Env) Trace(ds workload.Dataset, tiers []workload.Tier, qps float64, seed int64) ([]*request.Request, error) {
	n := int(qps * e.Duration().Seconds())
	if n < 50 {
		n = 50
	}
	return workload.Generate(workload.Spec{
		Dataset:  ds,
		Tiers:    tiers,
		Arrivals: workload.Poisson{QPS: qps},
		Requests: n,
		Seed:     seed,
	})
}

// TraceGen adapts Trace to the capacity-search interface.
func (e *Env) TraceGen(ds workload.Dataset, tiers []workload.Tier, seed int64) cluster.TraceGen {
	return func(qps float64) ([]*request.Request, error) {
		return e.Trace(ds, tiers, qps, seed)
	}
}

// Horizon returns the cutoff for judging a trace: every request has either
// completed or irrevocably missed its deadline by lastArrival + the largest
// TTLT/TTFT target + a small margin. Running longer cannot change any
// verdict; unfinished requests past their deadline count as violations.
func Horizon(trace []*request.Request) sim.Time {
	var last, maxSLO sim.Time
	for _, r := range trace {
		if r.Arrival > last {
			last = r.Arrival
		}
		slo := r.Class.SLO.TTLT
		if r.Class.Kind == qos.Interactive {
			slo = r.Class.SLO.TTFT
		}
		if slo > maxSLO {
			maxSLO = slo
		}
	}
	return last + maxSLO + sim.Minute
}

// searchOpts are the default capacity-search options used throughout.
func (e *Env) searchOpts() cluster.SearchOptions {
	return cluster.SearchOptions{
		MaxViolations: 0.01,
		Tolerance:     0.1,
		MaxQPS:        64,
		HorizonFor:    Horizon,
	}
}

// RunJudged simulates a shared cluster until the trace's horizon.
func RunJudged(mc model.Config, n int, factory cluster.SchedulerFactory, trace []*request.Request) (*metrics.Summary, error) {
	return cluster.RunShared(mc, n, factory, trace, Horizon(trace))
}

// printf writes a formatted line to the experiment output.
func (e *Env) printf(format string, args ...any) {
	fmt.Fprintf(e.Out, format, args...)
}

// header prints a section banner.
func (e *Env) header(title string) {
	e.printf("\n%s\n%s\n", title, strings.Repeat("-", len(title)))
}
