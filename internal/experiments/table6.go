package experiments

import (
	"qoserve/internal/cluster"
	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/qos"
	"qoserve/internal/sched"
	"qoserve/internal/workload"
)

func init() {
	register("table6", "Table 6 — skewed workload compositions at 4.5 QPS (Azure-Code, Llama3-8B)", runTable6)
	register("slovar", "Section 4.4.2 — stricter SLO targets: QoServe vs Sarathi-EDF capacity (Azure-Conv)", runSLOVar)
}

// runTable6 evaluates the 70-15-15 (interactive-dominant) and 15-15-70
// (batch-dominant) mixes at 4.5 QPS: median latency per tier plus overall
// violations, for Sarathi-FCFS, Sarathi-EDF, and QoServe.
func runTable6(e *Env) error {
	mc := model.Llama3_8B_A100_TP1()
	// The paper's 4.5 QPS is ~1.6x Sarathi-EDF's capacity on the default
	// mix; keep that relative operating point across scales.
	ref, err := e.refCapacity("table6-edf", mc, e.Sarathi(sched.EDF, 256),
		workload.AzureCode, standardTiers(), e.Seed+13)
	if err != nil {
		return err
	}
	load := scaleLoads(ref, []float64{1.6})[0]
	e.printf("Reference capacity (Sarathi-EDF): %.2f QPS; operating load = %.2f QPS\n", ref, load)
	mixes := []struct {
		name  string
		split []float64
	}{
		{"70-15-15", []float64{0.70, 0.15, 0.15}},
		{"15-15-70", []float64{0.15, 0.15, 0.70}},
	}
	scheds := []namedFactory{
		{"Sarathi-FCFS", e.Sarathi(sched.FCFS, 256)},
		{"Sarathi-EDF", e.Sarathi(sched.EDF, 256)},
		{"QoServe", e.QoServe(mc)},
	}
	// All (mix, scheduler) cells are independent; fan out the 6 runs and
	// print the two composition tables in order afterwards.
	type cell struct {
		mixIdx int
		s      namedFactory
	}
	var cells []cell
	for mi := range mixes {
		for _, s := range scheds {
			cells = append(cells, cell{mi, s})
		}
	}
	sums, err := parallelMap(e, len(cells), func(i int) (*metrics.Summary, error) {
		c := cells[i]
		tiers, err := workload.WeightedTiers(qos.Table3(), mixes[c.mixIdx].split)
		if err != nil {
			return nil, err
		}
		trace, err := e.Trace(workload.AzureCode, tiers, load, e.Seed+13)
		if err != nil {
			return nil, err
		}
		return RunJudged(mc, 1, c.s.factory, trace)
	})
	if err != nil {
		return err
	}
	i := 0
	for _, mix := range mixes {
		e.printf("\nComposition: %s\n", mix.name)
		e.printf("%-14s%14s%14s%14s%16s%14s\n",
			"Scheme", "Q1 p50(s)", "Q2 p50(s)", "Q3 p50(s)", "Violations%", "Relegated%")
		for _, s := range scheds {
			sum := sums[i]
			i++
			e.printf("%-14s%14.2f%14.2f%14.2f%16.2f%14.2f\n", s.label,
				sum.LatencyQuantile(metrics.ByClass("Q1"), 0.5),
				sum.LatencyQuantile(metrics.ByClass("Q2"), 0.5),
				sum.LatencyQuantile(metrics.ByClass("Q3"), 0.5),
				100*sum.ViolationRate(metrics.All),
				100*sum.RelegationRate(metrics.All))
		}
	}
	return nil
}

// runSLOVar evaluates the stricter SLO configuration of §4.4.2 — Q1
// (3s, 50ms) and Q2 (6s, 50ms) interactive, Q3 TTLT 1000s, equal split —
// on Azure-Conv, comparing sustainable load. The paper: QoServe 5 QPS vs
// Sarathi-EDF 3.7 QPS (~26% gap).
func runSLOVar(e *Env) error {
	mc := model.Llama3_8B_A100_TP1()
	tiers := workload.EqualTiers(qos.StrictVariant())
	gen := e.TraceGen(workload.AzureConv, tiers, e.Seed+14)

	results := map[string]float64{}
	for _, s := range []namedFactory{
		{"Sarathi-EDF", e.Sarathi(sched.EDF, 256)},
		{"QoServe", e.QoServe(mc)},
	} {
		qps, _, err := cluster.MaxGoodput(mc, s.factory, gen, e.searchOpts())
		if err != nil {
			return err
		}
		results[s.label] = qps
		e.printf("%-14s goodput %.2f QPS\n", s.label, qps)
	}
	if edf := results["Sarathi-EDF"]; edf > 0 {
		e.printf("QoServe advantage: %.0f%% (paper: ~26%%)\n",
			100*(results["QoServe"]/edf-1))
	}
	return nil
}
