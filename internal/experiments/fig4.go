package experiments

import (
	"qoserve/internal/model"
	"qoserve/internal/sim"
)

func init() {
	register("fig4", "Figure 4 — throughput/latency vs chunk size (Llama3-8B, A100-TP1)", runFig4)
}

// runFig4 sweeps the prefill chunk size on the cost model, reproducing the
// throughput-latency trade-off that motivates dynamic chunking: latency
// grows linearly with chunk size (crossing ~50 ms near chunk 330) while
// throughput saturates around chunk 2500 at roughly double the throughput
// of the TBT-mandated 256 chunk.
func runFig4(e *Env) error {
	mc := model.Llama3_8B_A100_TP1()
	e.printf("%-10s%16s%14s\n", "Chunk", "Tokens/s", "Latency(ms)")
	chunks := []int{64, 128, 256, 330, 512, 768, 1024, 1536, 2000, 2500, 3000, 4000}
	for _, c := range chunks {
		lat := mc.BatchTime(model.BatchShape{Prefill: []model.ChunkShape{{Tokens: c}}})
		e.printf("%-10d%16.0f%14.1f\n", c, mc.PrefillThroughput(c, 0),
			float64(lat)/float64(sim.Millisecond))
	}
	r256 := mc.PrefillThroughput(256, 0)
	r2500 := mc.PrefillThroughput(2500, 0)
	e.printf("\nThroughput(2500)/Throughput(256) = %.2fx (paper: ~2x)\n", r2500/r256)
	e.printf("Latency at chunk 330 = %.1f ms (paper: ~50 ms at the 50 ms SLO line)\n",
		mc.BatchTime(model.BatchShape{Prefill: []model.ChunkShape{{Tokens: 330}}}).Seconds()*1000)
	return nil
}
