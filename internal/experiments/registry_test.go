package experiments

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"

	"qoserve/internal/model"
)

func TestLookupAndAll(t *testing.T) {
	all := All()
	if len(all) < 18 {
		t.Fatalf("only %d experiments registered", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Name <= all[i-1].Name {
			t.Fatal("All() not sorted")
		}
	}
	for _, want := range []string{
		"fig2", "fig4", "fig5", "fig7", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15a", "fig15b",
		"table4", "table5", "table6", "slovar",
		"preempt", "predablate", "estimator",
	} {
		exp, err := Lookup(want)
		if err != nil {
			t.Errorf("missing experiment %q", want)
			continue
		}
		if exp.Title == "" || exp.Run == nil {
			t.Errorf("experiment %q incomplete", want)
		}
	}
	if _, err := Lookup("nonsense"); err == nil {
		t.Error("unknown name accepted")
	}
}

// TestAllExperimentsRun executes every registered experiment at a very
// small scale, verifying the whole harness end to end (each produces
// non-empty output and no error).
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness run is slow")
	}
	for _, exp := range All() {
		exp := exp
		t.Run(exp.Name, func(t *testing.T) {
			var buf bytes.Buffer
			env := NewEnv(0.015, &buf)
			if err := RunByName(exp.Name, env); err != nil {
				t.Fatalf("%s: %v", exp.Name, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", exp.Name)
			}
			if !strings.Contains(buf.String(), exp.Title) {
				t.Errorf("%s output missing its banner", exp.Name)
			}
		})
	}
}

func TestEnvDefaults(t *testing.T) {
	e := NewEnv(0, io.Discard)
	if e.Scale != 0.05 {
		t.Errorf("default scale = %v", e.Scale)
	}
	if e.Duration() <= 0 {
		t.Error("non-positive duration")
	}
	// Tiny scales floor at two minutes.
	e2 := NewEnv(1e-9, io.Discard)
	if e2.Duration().Seconds() < 119 {
		t.Errorf("duration floor broken: %v", e2.Duration())
	}
}

func TestPredictorCachedPerConfig(t *testing.T) {
	e := NewEnv(0.02, io.Discard)
	mc := modelPreset()
	p1 := e.Predictor(mc)
	p2 := e.Predictor(mc)
	if p1 != p2 {
		t.Error("predictor not cached")
	}
}

func TestScaleLoads(t *testing.T) {
	loads := scaleLoads(4.0, []float64{0.5, 1.0, 2.0})
	want := []float64{2, 4, 8}
	for i := range want {
		if loads[i] != want[i] {
			t.Errorf("loads = %v, want %v", loads, want)
		}
	}
	// Zero reference still yields positive loads.
	for _, l := range scaleLoads(0, []float64{1}) {
		if l <= 0 {
			t.Error("non-positive load")
		}
	}
}

// modelPreset gives tests a standard configuration.
func modelPreset() model.Config { return model.Llama3_8B_A100_TP1() }

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	e := NewEnv(0.02, io.Discard)
	e.CSVDir = dir
	if err := RunByName("fig4", e); err != nil { // fig4 has no sweep tables; use fig5-like path via slugify test below
		t.Fatal(err)
	}
	// Exercise writeCSV directly for determinism.
	e.current = "unit"
	scheds := []namedFactory{{label: "A"}, {label: "B"}}
	loads := []float64{1, 2}
	values := map[string]map[float64]float64{
		"A": {1: 0.5, 2: 1.5},
		"B": {1: 0.25, 2: 0.75},
	}
	e.writeCSV("Test Table (s)", scheds, loads, values)
	data, err := os.ReadFile(dir + "/unit_test-table-s.csv")
	if err != nil {
		t.Fatal(err)
	}
	want := "qps,A,B\n1,0.5,0.25\n2,1.5,0.75\n"
	if string(data) != want {
		t.Fatalf("csv = %q, want %q", data, want)
	}
}

func TestSlugify(t *testing.T) {
	for in, want := range map[string]string{
		"(a) Overall violations (%)": "a-overall-violations",
		"p50 TTFT Q1 (s)":            "p50-ttft-q1-s",
		"Median request latency (s)": "median-request-latency-s",
		"weird***{}chars":            "weirdchars",
	} {
		if got := slugify(in); got != want {
			t.Errorf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}
