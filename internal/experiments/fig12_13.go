package experiments

import (
	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/qos"
	"qoserve/internal/request"
	"qoserve/internal/sched"
	"qoserve/internal/sim"
	"qoserve/internal/workload"
)

func init() {
	register("fig12", "Figure 12 — transient overload: diurnal 2<->5 QPS, violation split by priority and tier", runFig12)
	register("fig13", "Figure 13 — rolling p99 latency of high-priority requests during the diurnal run", runFig13)
}

// diurnalTrace builds the §4.3 workload: load alternating between trough
// and peak every 15 minutes (scaled), 20% of each tier marked low-priority.
// The paper's 2<->5 QPS straddles Sarathi-EDF's ~2.75 QPS capacity
// (trough ~0.73x, peak ~1.8x, 2.5x peak-to-trough ratio); the same relative
// operating points are used at every scale.
func (e *Env) diurnalTrace(seed int64) ([]*request.Request, error) {
	mc := model.Llama3_8B_A100_TP1()
	ref, err := e.refCapacity("diurnal-edf", mc, e.Sarathi(sched.EDF, 256),
		workload.AzureCode, standardTiers(), seed)
	if err != nil {
		return nil, err
	}
	low, high := 0.73*ref, 1.82*ref
	duration := e.Duration()
	// The paper alternates every 15 minutes over 4 hours = 8 full cycles;
	// keep 8 cycles at any scale: half-period = duration / 16.
	half := duration / 16
	avgQPS := (low + high) / 2
	n := int(avgQPS * duration.Seconds())
	return workload.Generate(workload.Spec{
		Dataset:  workload.AzureCode,
		Tiers:    workload.WithLowPriority(standardTiers(), 0.2),
		Arrivals: workload.Diurnal{LowQPS: low, HighQPS: high, HalfPeriod: half},
		Requests: n,
		Seed:     seed,
	})
}

// diurnalTraceScaled builds a diurnal trace with explicit trough/peak rates
// (8 cycles at any scale), 20% free tier.
func (e *Env) diurnalTraceScaled(seed int64, low, high float64) ([]*request.Request, error) {
	duration := e.Duration()
	avgQPS := (low + high) / 2
	n := int(avgQPS * duration.Seconds())
	return workload.Generate(workload.Spec{
		Dataset:  workload.AzureCode,
		Tiers:    workload.WithLowPriority(standardTiers(), 0.2),
		Arrivals: workload.Diurnal{LowQPS: low, HighQPS: high, HalfPeriod: duration / 16},
		Requests: n,
		Seed:     seed,
	})
}

// diurnalScheds are the §4.3 comparison set.
func diurnalScheds(e *Env, mc model.Config) []namedFactory {
	return []namedFactory{
		{"Sarathi-FCFS", e.Sarathi(sched.FCFS, 256)},
		{"Sarathi-EDF", e.Sarathi(sched.EDF, 256)},
		{"QoServe", e.QoServe(mc)},
	}
}

// runFig12 prints the violation table of the transient-overload study:
// overall, important (high-priority), and per tier. The paper's headline:
// baselines collapse (~80%+), QoServe misses no important requests and
// <10% overall.
func runFig12(e *Env) error {
	mc := model.Llama3_8B_A100_TP1()
	e.printf("%-14s%10s%12s%8s%8s%8s%14s%14s\n",
		"Scheme", "Overall%", "Important%", "Q1%", "Q2%", "Q3%", "Relegated%", "MaxLat(s)")
	for _, s := range diurnalScheds(e, mc) {
		trace, err := e.diurnalTrace(e.Seed + 6)
		if err != nil {
			return err
		}
		sum, err := RunJudged(mc, 1, s.factory, trace)
		if err != nil {
			return err
		}
		e.printf("%-14s%10.2f%12.2f%8.2f%8.2f%8.2f%14.2f%14.1f\n",
			s.label,
			100*sum.ViolationRate(metrics.All),
			100*sum.ViolationRate(metrics.ByPriority(qos.High)),
			100*sum.ViolationRate(metrics.ByClass("Q1")),
			100*sum.ViolationRate(metrics.ByClass("Q2")),
			100*sum.ViolationRate(metrics.ByClass("Q3")),
			100*sum.RelegationRate(metrics.All),
			sum.MaxLatency(metrics.All).Seconds())
	}
	return nil
}

// runFig13 prints the rolling p99 latency (60 s windows, scaled) of
// high-priority requests per tier over the diurnal run.
func runFig13(e *Env) error {
	mc := model.Llama3_8B_A100_TP1()
	window := e.Duration() / 240 // the paper's 60s windows over 4h
	if window < 10*sim.Second {
		window = 10 * sim.Second
	}
	type series struct {
		label string
		pts   map[string][]metrics.SeriesPoint
	}
	var all []series
	for _, s := range diurnalScheds(e, mc) {
		trace, err := e.diurnalTrace(e.Seed + 6)
		if err != nil {
			return err
		}
		sum, err := RunJudged(mc, 1, s.factory, trace)
		if err != nil {
			return err
		}
		pts := map[string][]metrics.SeriesPoint{}
		for _, tier := range []string{"Q1", "Q2", "Q3"} {
			f := metrics.And(metrics.ByClass(tier), metrics.ByPriority(qos.High))
			pts[tier] = sum.RollingQuantile(f, 0.99, window, window)
		}
		all = append(all, series{label: s.label, pts: pts})
	}

	for _, tier := range []string{"Q1", "Q2", "Q3"} {
		e.printf("\nRolling p99 latency, %s high-priority (s); window %v\n", tier, window)
		e.printf("%-12s", "t(s)")
		for _, s := range all {
			e.printf("%14s", s.label)
		}
		e.printf("\n")
		n := 0
		for _, s := range all {
			if len(s.pts[tier]) > n {
				n = len(s.pts[tier])
			}
		}
		step := n/24 + 1 // subsample to ~24 rows
		for i := 0; i < n; i += step {
			var at sim.Time
			for _, s := range all {
				if i < len(s.pts[tier]) {
					at = s.pts[tier][i].At
				}
			}
			e.printf("%-12.0f", at.Seconds())
			for _, s := range all {
				if i < len(s.pts[tier]) {
					e.printf("%14.2f", s.pts[tier][i].Value)
				} else {
					e.printf("%14s", "-")
				}
			}
			e.printf("\n")
		}
	}
	return nil
}
