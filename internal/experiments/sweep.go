package experiments

import (
	"qoserve/internal/asciiplot"
	"qoserve/internal/cluster"
	"qoserve/internal/htmlreport"
	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/qos"
	"qoserve/internal/workload"
)

// namedFactory pairs a display label with a scheduler factory.
type namedFactory struct {
	label   string
	factory cluster.SchedulerFactory
}

// sweepResult holds one (scheduler, load) run.
type sweepResult struct {
	label string
	qps   float64
	sum   *metrics.Summary
}

// loadSweep runs every scheduler at every load on a fresh copy of the same
// seeded workload and returns all summaries in (load, scheduler) order. The
// grid points fan out over the worker pool; each worker regenerates its
// trace from the seed (identical to cloning the shared one) so points share
// no mutable state.
func (e *Env) loadSweep(mc model.Config, ds workload.Dataset, tiers []workload.Tier, loads []float64, scheds []namedFactory, seed int64) ([]sweepResult, error) {
	type point struct {
		qps float64
		s   namedFactory
	}
	grid := make([]point, 0, len(loads)*len(scheds))
	for _, qps := range loads {
		for _, s := range scheds {
			grid = append(grid, point{qps, s})
		}
	}
	return parallelMap(e, len(grid), func(i int) (sweepResult, error) {
		p := grid[i]
		trace, err := e.Trace(ds, tiers, p.qps, seed)
		if err != nil {
			return sweepResult{}, err
		}
		sum, err := RunJudged(mc, 1, p.s.factory, trace)
		if err != nil {
			return sweepResult{}, err
		}
		return sweepResult{label: p.s.label, qps: p.qps, sum: sum}, nil
	})
}

// printSweepTable prints one metric across the sweep: rows are loads,
// columns are schedulers. With Env.Plot set, it also renders the sweep as
// a terminal line chart — the closest thing to the paper's figures.
func (e *Env) printSweepTable(title string, results []sweepResult, scheds []namedFactory, loads []float64, metric func(*metrics.Summary) float64) {
	e.printf("\n%s\n", title)
	e.printf("%-8s", "QPS")
	for _, s := range scheds {
		e.printf("%14s", s.label)
	}
	e.printf("\n")
	series := make([]asciiplot.Series, len(scheds))
	for i, s := range scheds {
		series[i].Name = s.label
	}
	values := make(map[string]map[float64]float64, len(scheds))
	for _, s := range scheds {
		values[s.label] = map[float64]float64{}
	}
	for _, qps := range loads {
		e.printf("%-8.2f", qps)
		for i, s := range scheds {
			for _, r := range results {
				if r.label == s.label && r.qps == qps {
					v := metric(r.sum)
					e.printf("%14.3f", v)
					series[i].X = append(series[i].X, qps)
					series[i].Y = append(series[i].Y, v)
					values[s.label][qps] = v
				}
			}
		}
		e.printf("\n")
	}
	e.writeCSV(title, scheds, loads, values)
	if e.HTML != nil {
		hs := make([]htmlreport.Series, len(series))
		for i, sr := range series {
			hs[i] = htmlreport.Series{Name: sr.Name, X: sr.X, Y: sr.Y}
		}
		e.HTML.Add(htmlreport.Chart{
			Experiment: e.current,
			Title:      title,
			XLabel:     "load (QPS)",
			Series:     hs,
		})
	}
	if e.Plot {
		e.printf("\n%s", asciiplot.Render(series, asciiplot.Options{
			XLabel: "load (QPS)", YLabel: title,
		}))
	}
}

// standardTiers is the Table 3 default workload mix.
func standardTiers() []workload.Tier {
	return workload.EqualTiers(qos.Table3())
}

// refCapacity measures (and caches) the max-goodput capacity of a reference
// scheduler on a workload. Load sweeps are expressed as multiples of this
// reference so that experiment shapes are scale-invariant: at small scales
// absolute capacities inflate (deadline slack can be borrowed against the
// end of a short run), but the *relative* operating points — below, at, and
// beyond saturation — are what the paper's figures turn on.
func (e *Env) refCapacity(key string, mc model.Config, factory cluster.SchedulerFactory, ds workload.Dataset, tiers []workload.Tier, seed int64) (float64, error) {
	e.mu.Lock()
	if e.capCache == nil {
		e.capCache = map[string]float64{}
	}
	v, ok := e.capCache[key]
	e.mu.Unlock()
	if ok {
		return v, nil
	}
	qps, _, err := cluster.MaxGoodput(mc, factory, e.TraceGen(ds, tiers, seed), e.searchOpts())
	if err != nil {
		return 0, err
	}
	e.mu.Lock()
	e.capCache[key] = qps
	e.mu.Unlock()
	return qps, nil
}

// scaleLoads multiplies a reference capacity by each factor, rounding to
// 0.05 QPS for readable tables.
func scaleLoads(ref float64, mults []float64) []float64 {
	out := make([]float64, len(mults))
	for i, m := range mults {
		v := ref * m
		out[i] = float64(int(v*20+0.5)) / 20
		if out[i] <= 0 {
			out[i] = 0.05
		}
	}
	return out
}
