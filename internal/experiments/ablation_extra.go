package experiments

import (
	"qoserve/internal/cluster"
	"qoserve/internal/core"
	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/predictor"
	"qoserve/internal/profile"
	"qoserve/internal/request"
	"qoserve/internal/sched"
	"qoserve/internal/sim"
	"qoserve/internal/workload"
)

func init() {
	register("preempt", "Extra ablation — selective preemption on/off (Azure-Code, Llama3-8B)", runPreemptAblation)
	register("predablate", "Extra ablation — latency predictor: oracle vs forest vs forest-without-margin", runPredictorAblation)
	register("estimator", "Extra ablation — decode-length estimator: oracle vs per-app mean+2sigma (Section 4.4.1 claim)", runEstimatorAblation)
}

// runPreemptAblation isolates selective preemption: it mostly protects
// partially-prefilled interactive requests from being displaced right
// before their deadlines, so its effect shows up in the strict tier's
// violations near saturation.
func runPreemptAblation(e *Env) error {
	mc := model.Llama3_8B_A100_TP1()
	off := core.DefaultOptions()
	off.SelectivePreemption = false
	ref, err := e.refCapacity("preempt-ref", mc, e.QoServe(mc), workload.AzureCode, standardTiers(), e.Seed+15)
	if err != nil {
		return err
	}
	e.printf("Reference capacity (QoServe): %.2f QPS\n", ref)
	loads := scaleLoads(ref, []float64{0.9, 1.0, 1.1})
	scheds := []namedFactory{
		{"NoPreempt", e.QoServeOpts(mc, off)},
		{"Preempt", e.QoServe(mc)},
	}
	results, err := e.loadSweep(mc, workload.AzureCode, standardTiers(), loads, scheds, e.Seed+15)
	if err != nil {
		return err
	}
	e.printSweepTable("Q1 deadline violations (%)", results, scheds, loads,
		func(s *metrics.Summary) float64 { return 100 * s.ViolationRate(metrics.ByClass("Q1")) })
	e.printSweepTable("Overall deadline violations (%)", results, scheds, loads,
		func(s *metrics.Summary) float64 { return 100 * s.ViolationRate(metrics.All) })
	return nil
}

// runPredictorAblation separates scheduling policy from prediction quality:
// QoServe's capacity with (a) the analytic oracle, (b) the trained forest
// with its 10% under-prediction margin, and (c) the forest with no margin.
// The margin trades a sliver of throughput for TBT safety (Section 3.6.1).
func runPredictorAblation(e *Env) error {
	mc := model.Llama3_8B_A100_TP1()
	gen := e.TraceGen(workload.AzureCode, standardTiers(), e.Seed+16)

	samples, err := profile.Collect(mc, profile.Config{Seed: e.Seed})
	if err != nil {
		return err
	}
	forest, err := predictor.Train(samples, predictor.ForestConfig{Seed: e.Seed})
	if err != nil {
		return err
	}
	noMargin, err := predictor.Train(samples, predictor.ForestConfig{Seed: e.Seed, SafetyMargin: 1e-9})
	if err != nil {
		return err
	}

	preds := []struct {
		label string
		pred  predictor.SafePredictor
	}{
		{"Oracle", predictor.Oracle{Config: mc}},
		{"Forest+margin", forest},
		{"Forest-no-margin", noMargin},
	}
	e.printf("%-20s%14s%20s\n", "Predictor", "Capacity", "TBTviol@cap(%)")
	for _, p := range preds {
		pred := p.pred
		factory := func() sched.Scheduler { return core.New(pred, core.DefaultOptions()) }
		qps, sum, err := cluster.MaxGoodput(mc, factory, gen, e.searchOpts())
		if err != nil {
			return err
		}
		e.printf("%-20s%14.2f%20.3f\n", p.label, qps, 100*sum.TBTViolationRate(metrics.All))
	}
	return nil
}

// runEstimatorAblation checks the §4.4.1 claim that the per-application
// mean+2sigma decode-length estimate "sufficiently captures the priority of
// non-interactive jobs": capacity with history-based estimates should be
// close to capacity with oracle decode lengths.
func runEstimatorAblation(e *Env) error {
	mc := model.Llama3_8B_A100_TP1()
	gen := e.TraceGen(workload.AzureCode, standardTiers(), e.Seed+17)

	// History-based (the production path).
	hist, _, err := cluster.MaxGoodput(mc, e.QoServe(mc), gen, e.searchOpts())
	if err != nil {
		return err
	}
	// Oracle decode lengths: a wrapper stamps the ground truth into
	// EstDecodeTokens before handing requests to QoServe, whose Add only
	// fills the estimate when it is unset.
	oracleFactory := func() sched.Scheduler {
		return &oracleEstimateScheduler{Scheduler: core.New(e.Predictor(mc), core.DefaultOptions())}
	}
	orc, _, err := cluster.MaxGoodput(mc, oracleFactory, gen, e.searchOpts())
	if err != nil {
		return err
	}
	e.printf("Capacity with mean+2sigma history estimates: %.2f QPS\n", hist)
	e.printf("Capacity with oracle decode lengths:         %.2f QPS\n", orc)
	if orc > 0 {
		e.printf("History/oracle ratio: %.2f (close to 1.0 supports the paper's claim)\n", hist/orc)
	}
	return nil
}

// oracleEstimateScheduler stamps ground-truth decode lengths into requests
// before delegating to QoServe.
type oracleEstimateScheduler struct {
	*core.Scheduler
}

func (o *oracleEstimateScheduler) Add(r *request.Request, now sim.Time) {
	r.EstDecodeTokens = r.DecodeTokens
	o.Scheduler.Add(r, now)
}
