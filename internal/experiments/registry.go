package experiments

import (
	"fmt"
	"sort"
)

// Experiment is a named, runnable reproduction of one paper artifact.
type Experiment struct {
	Name  string
	Title string
	Run   func(e *Env) error
}

var registry = map[string]Experiment{}

func register(name, title string, run func(e *Env) error) {
	registry[name] = Experiment{Name: name, Title: title, Run: run}
}

// Lookup finds an experiment by name ("fig7", "table5", ...).
func Lookup(name string) (Experiment, error) {
	exp, ok := registry[name]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (try 'list')", name)
	}
	return exp, nil
}

// All returns every experiment sorted by name.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RunByName runs one experiment against the environment.
func RunByName(name string, e *Env) error {
	exp, err := Lookup(name)
	if err != nil {
		return err
	}
	e.current = name
	defer func() { e.current = "" }()
	e.header(exp.Title)
	return exp.Run(e)
}
