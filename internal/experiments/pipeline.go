package experiments

import (
	"qoserve/internal/core"
	"qoserve/internal/disagg"
	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/sim"
	"qoserve/internal/workload"
)

func init() {
	register("pipeline", "Extension — end-to-end PD disaggregation (prefill tier + KV transfer + decode tier) vs colocation", runPipelineExperiment)
}

// runPipelineExperiment builds the decode-tier substrate the paper leaves
// to future work and compares, at a fixed moderate load: colocated QoServe
// on N replicas versus a disaggregated pipeline using the same N GPUs split
// between prefill and decode nodes, across interconnect speeds.
func runPipelineExperiment(e *Env) error {
	mc := model.Llama3_8B_A100_TP1()
	ref, err := e.refCapacity("pipe-ref", mc, e.QoServe(mc), workload.AzureConv, standardTiers(), e.Seed+22)
	if err != nil {
		return err
	}
	const totalGPUs = 4
	load := scaleLoads(ref*totalGPUs, []float64{0.5})[0] // comfortable shared load
	e.printf("Per-replica QoServe capacity %.2f QPS; running %d GPUs at %.2f QPS total\n\n",
		ref, totalGPUs, load)

	e.printf("%-34s%12s%14s%14s%16s\n",
		"Deployment", "Viol(%)", "TTFT p50(s)", "TTFT p99(s)", "p99 gap Q1(ms)")

	// Colocated baseline.
	trace, err := e.Trace(workload.AzureConv, standardTiers(), load, e.Seed+22)
	if err != nil {
		return err
	}
	col, err := RunJudged(mc, totalGPUs, e.QoServe(mc), trace)
	if err != nil {
		return err
	}
	printPipelineRow(e, "Colocated QoServe x4", col)

	// Disaggregated: 2 prefill + 2 decode nodes, QoServe on the prefill
	// tier with the 8K disagg chunk, across link speeds.
	opts := core.DefaultOptions()
	opts.MaxChunk = disagg.DefaultChunk
	for _, link := range []struct {
		name string
		bw   float64
	}{
		{"Disagg 2P+2D, NVLink 64GB/s", 64e9},
		{"Disagg 2P+2D, IB 12.5GB/s", 12.5e9},
		{"Disagg 2P+2D, Ethernet 1.25GB/s", 1.25e9},
	} {
		trace, err := e.Trace(workload.AzureConv, standardTiers(), load, e.Seed+22)
		if err != nil {
			return err
		}
		res, err := disagg.RunPipeline(disagg.PipelineConfig{
			Model:             mc,
			PrefillReplicas:   2,
			PrefillFactory:    e.QoServeOpts(mc, opts),
			DecodeReplicas:    2,
			StrictestTBT:      50 * sim.Millisecond,
			TransferBandwidth: link.bw,
		}, trace, Horizon(trace))
		if err != nil {
			return err
		}
		printPipelineRow(e, link.name, res.Summary)
		e.printf("%36s decode batch cap %d, median KV transfer %v\n",
			"", res.MaxDecodeBatch, res.TransferTimeP50)
	}
	e.printf("\n(Disaggregation isolates decode pacing from prefill interference — note the\nQ1 worst-gap column — and dedicates prefill capacity, at the price of the KV\ntransfer, which only bites on slow interconnects.)\n")
	return nil
}

func printPipelineRow(e *Env, label string, sum *metrics.Summary) {
	e.printf("%-34s%12.2f%14.2f%14.2f%16.1f\n", label,
		100*sum.ViolationRate(metrics.All),
		sum.TTFTQuantile(metrics.All, 0.5),
		sum.TTFTQuantile(metrics.All, 0.99),
		1000*sum.MaxTBTQuantile(metrics.ByClass("Q1"), 0.99))
}
