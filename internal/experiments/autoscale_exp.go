package experiments

import (
	"qoserve/internal/autoscale"
	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/sim"
	"qoserve/internal/workload"
)

func init() {
	register("autoscale", "Extension — fixed fleet vs reactive autoscaling under the diurnal workload", runAutoscale)
}

// runAutoscale runs the §4.3 diurnal workload against three deployments:
// a fixed fleet sized for the peak, a fixed fleet sized for the mean, and
// a reactive autoscaler bounded by the same extremes. It reports the
// GPU-hours each consumed against the violations each incurred — the
// provisioning trade QoServe's co-scheduling shrinks but does not remove.
func runAutoscale(e *Env) error {
	mc := model.Llama3_8B_A100_TP1()
	ref, err := e.refCapacity("auto-ref", mc, e.QoServe(mc), workload.AzureCode, standardTiers(), e.Seed+24)
	if err != nil {
		return err
	}
	// Fleet sizes: peak load / per-replica capacity, and mean load.
	peakQPS, meanQPS := 1.82*ref*3, (0.73+1.82)/2*ref*3 // 3-replica scale diurnal
	peakN := int(peakQPS/ref) + 1
	meanN := int(meanQPS/ref) + 1
	if meanN >= peakN {
		meanN = peakN - 1
	}
	if meanN < 1 {
		meanN = 1
	}

	trace, err := e.diurnalTraceScaled(e.Seed+24, 0.73*ref*3, 1.82*ref*3)
	if err != nil {
		return err
	}
	horizon := Horizon(trace)
	runSpan := horizon.Seconds()

	e.printf("Per-replica QoServe capacity %.2f QPS; diurnal %.2f<->%.2f QPS\n\n",
		ref, 0.73*ref*3, 1.82*ref*3)
	e.printf("%-28s%14s%14s%16s\n", "Deployment", "Viol(%)", "GPU-hours", "Scale events")

	// Fixed fleets.
	for _, fixed := range []struct {
		label string
		n     int
	}{
		{"Fixed @ peak", peakN},
		{"Fixed @ mean", meanN},
	} {
		tr := workload.Clone(trace)
		sum, err := RunJudged(mc, fixed.n, e.QoServe(mc), tr)
		if err != nil {
			return err
		}
		gpuHours := float64(fixed.n*mc.GPUs()) * runSpan / 3600
		e.printf("%-28s%14.2f%14.1f%16s\n", fixed.label,
			100*sum.ViolationRate(metrics.All), gpuHours, "-")
	}

	// Autoscaled fleet.
	tr := workload.Clone(trace)
	engine := sim.NewEngine()
	fleet, err := autoscale.NewFleet(engine, autoscale.Config{
		Model:       mc,
		Factory:     e.QoServe(mc),
		MinReplicas: meanN,
		MaxReplicas: peakN,
		Interval:    e.Duration() / 48, // several decisions per diurnal phase
	})
	if err != nil {
		return err
	}
	for _, r := range tr {
		r := r
		engine.AtPriority(r.Arrival, -1, sim.EventFunc(func(_ *sim.Engine, _ sim.Time) {
			fleet.Submit(r)
		}))
	}
	last := tr[len(tr)-1].Arrival
	engine.At(last+sim.Second, sim.EventFunc(func(_ *sim.Engine, _ sim.Time) { fleet.Stop() }))
	end := engine.RunUntil(horizon)
	sum := metrics.NewSummary(tr, end, 1)
	ups, downs := fleet.ScaleEvents()
	e.printf("%-28s%14.2f%14.1f%13d+%d\n", "Autoscaled",
		100*sum.ViolationRate(metrics.All), fleet.GPUSeconds()/3600, ups, downs)
	return nil
}
