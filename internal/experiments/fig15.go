package experiments

import (
	"math"

	"qoserve/internal/cluster"
	"qoserve/internal/core"
	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/predictor"
	"qoserve/internal/qos"
	"qoserve/internal/replica"
	"qoserve/internal/request"
	"qoserve/internal/sched"
	"qoserve/internal/sim"
	"qoserve/internal/workload"
)

func init() {
	register("fig15a", "Figure 15a — Medha adaptive chunking vs QoServe dynamic chunking (synthetic 10K/500)", runFig15a)
	register("fig15b", "Figure 15b — PolyServe partitioned deployments vs QoServe colocation (A100 GPUs at 50 QPS)", runFig15b)
}

// syntheticDataset is the §4.5.1 trace: 10K prefill and 500 decode tokens
// per request (degenerate distributions).
var syntheticDataset = workload.Dataset{
	Name:   "synthetic-10K-500",
	Prompt: workload.TokenDist{P50: 10000, P90: 10000},
	Decode: workload.TokenDist{P50: 500, P90: 500},
}

// dcOnlyOptions is QoServe stripped to dynamic chunking under FCFS-like
// ordering (hybrid priority and eager relegation disabled), the isolated
// setup of §4.5.1.
func dcOnlyOptions() core.Options {
	opts := core.DefaultOptions()
	opts.HybridPriority = false // same class + arrival order => FCFS
	opts.EagerRelegation = false
	opts.AdaptiveAlpha = false
	return opts
}

// runFig15a compares per-batch chunk sizes and goodput between Medha's
// TBT-pinned adaptive chunking and QoServe's slack-aware dynamic chunking,
// both under FCFS, on the synthetic long-prompt trace.
func runFig15a(e *Env) error {
	mc := model.Llama3_8B_A100_TP1()
	// 10K-token prompts take seconds to prefill, so a 6 s TTFT makes even
	// trivial Poisson load infeasible at 1% violations; the paper does
	// not pin the synthetic tier's TTFT, so a relaxed 30 s is used — the
	// comparison is about chunking under the 50 ms TBT target.
	tiers := workload.EqualTiers([]qos.Class{{
		Name: "Q1", Kind: qos.Interactive,
		SLO: qos.SLO{TTFT: 30 * sim.Second, TBT: 50 * sim.Millisecond},
	}})

	// Chunk trajectories at a sustainable load.
	const traceQPS = 0.25
	mkTrace := func(seed int64) ([]*request.Request, error) {
		return e.Trace(syntheticDataset, tiers, traceQPS, seed)
	}

	// The two chunk-trace runs and the two goodput searches below are all
	// independent; overlap the trace runs here.
	pred := e.Predictor(mc)
	var qsvLog []core.ChunkRecord
	var medhaChunks []int
	if err := e.parallelDo(
		func() error {
			trace, err := mkTrace(e.Seed + 8)
			if err != nil {
				return err
			}
			qsv := core.New(pred, dcOnlyOptions())
			qsv.EnableChunkLog()
			if _, _, err := replica.Run(mc, qsv, trace, Horizon(trace)); err != nil {
				return err
			}
			qsvLog = qsv.ChunkLog()
			return nil
		},
		func() error {
			trace2, err := mkTrace(e.Seed + 8)
			if err != nil {
				return err
			}
			medhaChunks, err = medhaChunkTrace(e, mc, trace2)
			return err
		},
	); err != nil {
		return err
	}

	e.printf("%-10s%14s%14s\n", "Batch", "Medha", "QoServe-DC")
	n := len(qsvLog)
	if len(medhaChunks) < n {
		n = len(medhaChunks)
	}
	if n > 1000 {
		n = 1000
	}
	step := n/25 + 1
	for i := 0; i < n; i += step {
		e.printf("%-10d%14d%14d\n", i, medhaChunks[i], qsvLog[i].Chunk)
	}
	e.printf("\nMean chunk: Medha %d, QoServe-DC %d\n",
		meanChunk(medhaChunks), meanChunkRecords(qsvLog))

	// Goodput comparison (paper: 0.32 vs 0.26 QPS, +23% from chunking
	// strategy alone).
	gen := e.TraceGen(syntheticDataset, tiers, e.Seed+9)
	opts := e.searchOpts()
	opts.Tolerance = 0.02
	var medhaQPS, dcQPS float64
	var medhaSum, dcSum *metrics.Summary
	if err := e.parallelDo(
		func() (err error) {
			medhaQPS, medhaSum, err = cluster.MaxGoodput(mc, e.Medha(mc, 50*sim.Millisecond), gen, opts)
			return err
		},
		func() (err error) {
			dcQPS, dcSum, err = cluster.MaxGoodput(mc, e.QoServeOpts(mc, dcOnlyOptions()), gen, opts)
			return err
		},
	); err != nil {
		return err
	}
	e.printf("Goodput: Medha %.2f QPS, QoServe-DC %.2f QPS (%.0f%% improvement; paper: 23%%)\n",
		medhaQPS, dcQPS, 100*(dcQPS/medhaQPS-1))
	e.printf("TBT-deadline violations at capacity: Medha %.3f%%, QoServe-DC %.3f%%\n",
		100*medhaSum.TBTViolationRate(metrics.All), 100*dcSum.TBTViolationRate(metrics.All))
	return nil
}

// medhaChunkTrace runs the Medha scheduler and records each batch's prefill
// tokens.
func medhaChunkTrace(e *Env, mc model.Config, trace []*request.Request) ([]int, error) {
	m := sched.NewMedha(e.Predictor(mc), 50*sim.Millisecond, 4096)
	rec := &chunkRecorder{inner: m}
	if _, _, err := replica.Run(mc, rec, trace, Horizon(trace)); err != nil {
		return nil, err
	}
	return rec.chunks, nil
}

// chunkRecorder wraps a scheduler and records per-batch prefill tokens.
type chunkRecorder struct {
	inner  sched.Scheduler
	chunks []int
}

func (c *chunkRecorder) Name() string { return c.inner.Name() }
func (c *chunkRecorder) Add(r *request.Request, now sim.Time) {
	c.inner.Add(r, now)
}
func (c *chunkRecorder) PlanBatch(now sim.Time) sched.Batch {
	b := c.inner.PlanBatch(now)
	if !b.Empty() {
		c.chunks = append(c.chunks, b.PrefillTokens())
	}
	return b
}
func (c *chunkRecorder) OnBatchComplete(b sched.Batch, now sim.Time) {
	c.inner.OnBatchComplete(b, now)
}
func (c *chunkRecorder) Pending() int { return c.inner.Pending() }

func meanChunk(chunks []int) int {
	sum, n := 0, 0
	for _, c := range chunks {
		if c > 0 {
			sum += c
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

func meanChunkRecords(recs []core.ChunkRecord) int {
	sum, n := 0, 0
	for _, r := range recs {
		if r.Chunk > 0 {
			sum += r.Chunk
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// runFig15b compares GPU requirements at 50 QPS on Azure-Conv for two
// interactive TBT classes (Q1 50 ms, Q2 100 ms, both 6 s TTFT) as the mix
// varies. PolyServe partitions the classes into separate deployments, each
// chunked for its own TBT; QoServe colocates them, exploiting cross-class
// slack. GPU counts come from per-replica goodput capacity searches.
func runFig15b(e *Env) error {
	mc := model.Llama3_8B_A100_TP1()
	classes := qos.PolyServeTiers()
	const totalQPS = 50

	// Per-class PolyServe goodput: a dedicated deployment with a fixed
	// chunk sized for the class's TBT via the predictor. The per-class
	// searches are independent; collect, then print in class order.
	polyGoodput := make(map[string]float64, len(classes))
	polyChunk := make(map[string]int, len(classes))
	pred := e.Predictor(mc)
	for _, cl := range classes {
		chunk := predictor.ChunkBudget(pred, nil, 0, cl.SLO.TBT, 4096)
		if chunk < 32 {
			chunk = 32
		}
		polyChunk[cl.Name] = chunk
	}
	goodputs, err := parallelMap(e, len(classes), func(i int) (float64, error) {
		cl := classes[i]
		tiers := workload.EqualTiers([]qos.Class{cl})
		gen := e.TraceGen(workload.AzureConv, tiers, e.Seed+10)
		qps, _, err := cluster.MaxGoodput(mc, e.Sarathi(sched.EDF, polyChunk[cl.Name]), gen, e.searchOpts())
		return qps, err
	})
	if err != nil {
		return err
	}
	for i, cl := range classes {
		polyGoodput[cl.Name] = goodputs[i]
		e.printf("PolyServe %s deployment: chunk %d, per-replica goodput %.2f QPS\n",
			cl.Name, polyChunk[cl.Name], goodputs[i])
	}

	e.printf("\n%-14s%12s%12s%16s%16s\n",
		"Q1:Q2 mix", "PolyServe", "QoServe", "Poly viol(%)", "QoServe viol(%)")
	mixes := []float64{0.9, 0.7, 0.5, 0.3, 0.1}
	qsvFactory := e.QoServe(mc)
	type mixResult struct {
		polyGPUs, qsvGPUs int
		polyViol, qsvViol float64
	}
	mixResults, err := parallelMap(e, len(mixes), func(i int) (mixResult, error) {
		q1Frac := mixes[i]
		tiers, err := workload.WeightedTiers(classes, []float64{q1Frac, 1 - q1Frac})
		if err != nil {
			return mixResult{}, err
		}
		// QoServe colocated capacity on this exact mix.
		gen := e.TraceGen(workload.AzureConv, tiers, e.Seed+10)
		qsvQPS, _, err := cluster.MaxGoodput(mc, qsvFactory, gen, e.searchOpts())
		if err != nil {
			return mixResult{}, err
		}
		qsvGPUs := int(math.Ceil(totalQPS / qsvQPS))

		// PolyServe sizing from per-class goodput, then validated by
		// actually running the partitioned deployment at the target load.
		trace, err := e.Trace(workload.AzureConv, tiers, totalQPS, e.Seed+10)
		if err != nil {
			return mixResult{}, err
		}
		sizes, err := cluster.SizePartition(trace, totalQPS, polyGoodput)
		if err != nil {
			return mixResult{}, err
		}
		polyGPUs := 0
		for _, n := range sizes {
			polyGPUs += n
		}
		polySum, err := cluster.RunPartitioned(mc, cluster.PartitionedPlan{
			Replicas: sizes,
			ChunkFor: func(class string) int { return polyChunk[class] },
			Policy:   sched.EDF,
		}, trace, Horizon(trace))
		if err != nil {
			return mixResult{}, err
		}
		qsvTrace, err := e.Trace(workload.AzureConv, tiers, totalQPS, e.Seed+10)
		if err != nil {
			return mixResult{}, err
		}
		qsvSum, err := cluster.RunShared(mc, qsvGPUs, qsvFactory, qsvTrace, Horizon(qsvTrace))
		if err != nil {
			return mixResult{}, err
		}
		return mixResult{
			polyGPUs: polyGPUs, qsvGPUs: qsvGPUs,
			polyViol: 100 * polySum.ViolationRate(metrics.All),
			qsvViol:  100 * qsvSum.ViolationRate(metrics.All),
		}, nil
	})
	if err != nil {
		return err
	}
	for i, q1Frac := range mixes {
		r := mixResults[i]
		e.printf("%3.0f%%:%-3.0f%%%12d%12d%16.2f%16.2f\n",
			100*q1Frac, 100*(1-q1Frac), r.polyGPUs, r.qsvGPUs, r.polyViol, r.qsvViol)
	}
	e.printf("\n(GPU counts for Llama3-8B TP1: replicas == GPUs. Violation columns validate\nthat both sized deployments actually hold the 1%% target at 50 QPS.)\n")
	return nil
}
