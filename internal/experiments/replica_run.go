package experiments

import (
	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/replica"
	"qoserve/internal/request"
	"qoserve/internal/sched"
)

// replicaRun simulates one replica with a concrete scheduler instance
// (rather than a factory) until the trace's judgment horizon.
func replicaRun(mc model.Config, s sched.Scheduler, trace []*request.Request) (*metrics.Summary, *replica.Replica, error) {
	return replica.Run(mc, s, trace, Horizon(trace))
}
