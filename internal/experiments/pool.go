// Parallel sweep execution. Experiment grids (load sweeps, capacity
// searches, ablation ladders) are embarrassingly parallel: every point runs
// its own sim.Engine on its own seeded trace and shares only immutable state
// (trained predictors, model configs). parallelMap fans the points out over
// a bounded worker pool while keeping output deterministic — workers only
// compute and return values; results are collected by index and the caller
// prints them in the original serial order. Env.printf therefore stays
// single-writer, and a run with Workers=1 is byte-identical to any other
// worker count.
package experiments

import (
	"runtime"
	"sync"
)

// workers resolves the pool size: Env.Workers when positive, else
// GOMAXPROCS. A value of 1 degenerates to fully serial execution in the
// calling goroutine (no goroutines spawned), which is also the -race
// reference the determinism tests compare against.
func (e *Env) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// parallelMap runs fn(0..n-1) across the environment's worker pool and
// returns the results ordered by index. The error returned is the
// lowest-index failure, so error reporting does not depend on goroutine
// interleaving. fn must not write to Env.Out — return the data and let the
// caller print it.
// parallelDo runs heterogeneous tasks concurrently; each task deposits its
// result into variables it alone captures. Error selection follows
// parallelMap (lowest index wins).
func (e *Env) parallelDo(tasks ...func() error) error {
	_, err := parallelMap(e, len(tasks), func(i int) (struct{}, error) {
		return struct{}{}, tasks[i]()
	})
	return err
}

func parallelMap[T any](e *Env, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	w := e.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	errs := make([]error, n)
	next := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
