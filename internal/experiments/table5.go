package experiments

import (
	"qoserve/internal/cluster"
	"qoserve/internal/core"
	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/sched"
	"qoserve/internal/workload"
)

func init() {
	register("table5", "Table 5 — ablation: dynamic chunking, eager relegation, hybrid prioritization", runTable5)
}

// table5Configs builds the ablation ladder starting from Sarathi-EDF.
func table5Configs(e *Env, mc model.Config) []namedFactory {
	dc := core.DefaultOptions()
	dc.EagerRelegation = false
	dc.HybridPriority = false
	dc.AdaptiveAlpha = false

	dcER := dc
	dcER.EagerRelegation = true

	dcERHP := dcER
	dcERHP.HybridPriority = true
	dcERHP.AdaptiveAlpha = true

	return []namedFactory{
		{"Sarathi-EDF", e.Sarathi(sched.EDF, 256)},
		{"QoServe(DC)", e.QoServeOpts(mc, dc)},
		{"QoServe(DC+ER)", e.QoServeOpts(mc, dcER)},
		{"QoServe(DC+ER+HP)", e.QoServeOpts(mc, dcERHP)},
	}
}

// runTable5 measures each configuration's optimal load (max QPS within 1%
// violations) and its violation rate at a fixed high load of 6 QPS,
// mirroring Table 5's two columns. The paper: DC +20% capacity, ER +9%,
// HP marginal at optimal load but large at overload (100 -> 74 -> 26 ->
// 16% violations at 6 QPS).
func runTable5(e *Env) error {
	mc := model.Llama3_8B_A100_TP1()
	ds := workload.AzureCode
	gen := e.TraceGen(ds, standardTiers(), e.Seed+12)

	// The paper's "high load" column fixes QPS=6 against Sarathi-EDF's
	// 2.75 QPS capacity, i.e. ~2.2x; keep that ratio across scales.
	ref, err := e.refCapacity("table5-edf", mc, e.Sarathi(sched.EDF, 256), ds, standardTiers(), e.Seed+12)
	if err != nil {
		return err
	}
	highLoad := scaleLoads(ref, []float64{2.2})[0]
	e.printf("Reference capacity (Sarathi-EDF): %.2f QPS; high load = %.2f QPS\n", ref, highLoad)

	e.printf("%-20s%16s%10s%18s\n", "Config", "OptimalQPS", "Gain%", "Viol@HighLoad(%)")
	// Each rung's capacity search and high-load run are independent; the
	// gain column chains rung i to rung i-1, so it is computed at print
	// time from the collected capacities.
	configs := table5Configs(e, mc)
	type rung struct {
		qps  float64
		viol float64
	}
	rungs, err := parallelMap(e, len(configs), func(i int) (rung, error) {
		cfg := configs[i]
		qps, _, err := cluster.MaxGoodput(mc, cfg.factory, gen, e.searchOpts())
		if err != nil {
			return rung{}, err
		}
		trace, err := e.Trace(ds, standardTiers(), highLoad, e.Seed+12)
		if err != nil {
			return rung{}, err
		}
		sum, err := RunJudged(mc, 1, cfg.factory, trace)
		if err != nil {
			return rung{}, err
		}
		return rung{qps: qps, viol: 100 * sum.ViolationRate(metrics.All)}, nil
	})
	if err != nil {
		return err
	}
	prev := 0.0
	for i, cfg := range configs {
		gain := 0.0
		if prev > 0 {
			gain = 100 * (rungs[i].qps/prev - 1)
		}
		e.printf("%-20s%16.2f%10.1f%18.2f\n", cfg.label, rungs[i].qps, gain, rungs[i].viol)
		prev = rungs[i].qps
	}
	return nil
}
