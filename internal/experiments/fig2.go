package experiments

import (
	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/sched"
	"qoserve/internal/workload"
)

func init() {
	register("fig2", "Figure 2 — traditional multi-SLA policies vs QoServe (Azure-Code, Llama3-8B, strictest tier)", runFig2)
}

// runFig2 reproduces the motivation study: FCFS / SJF / SRPF / EDF /
// QoServe across a load sweep, reporting median and tail latency of the
// strictest QoS class, its violation rate, and the violation rate of long
// requests (prompt >= dataset p90).
func runFig2(e *Env) error {
	mc := model.Llama3_8B_A100_TP1()
	ds := workload.AzureCode
	// Sweep relative to the EDF baseline's capacity (paper sweeps 2-6 QPS
	// around Sarathi-EDF's ~2.75 QPS capacity, i.e. ~0.7x-2.2x).
	ref, err := e.refCapacity("fig2-edf", mc, e.Sarathi(sched.EDF, 256), ds, standardTiers(), e.Seed)
	if err != nil {
		return err
	}
	e.printf("Reference capacity (Sarathi-EDF): %.2f QPS\n", ref)
	loads := scaleLoads(ref, []float64{0.7, 1.0, 1.4, 1.8, 2.2})
	scheds := []namedFactory{
		{"FCFS", e.Sarathi(sched.FCFS, 256)},
		{"SJF", e.Sarathi(sched.SJF, 256)},
		{"SRPF", e.Sarathi(sched.SRPF, 256)},
		{"EDF", e.Sarathi(sched.EDF, 256)},
		{"QoServe", e.QoServe(mc)},
	}
	results, err := e.loadSweep(mc, ds, standardTiers(), loads, scheds, e.Seed)
	if err != nil {
		return err
	}

	long := workload.LongThreshold(ds)
	q1 := metrics.ByClass("Q1")
	e.printSweepTable("(a) Median TTFT of strictest class (s)", results, scheds, loads,
		func(s *metrics.Summary) float64 { return s.TTFTQuantile(q1, 0.5) })
	e.printSweepTable("(b) p99 TTFT of strictest class (s)", results, scheds, loads,
		func(s *metrics.Summary) float64 { return s.TTFTQuantile(q1, 0.99) })
	e.printSweepTable("(c) Deadline violations, strictest class (%)", results, scheds, loads,
		func(s *metrics.Summary) float64 { return 100 * s.ViolationRate(q1) })
	e.printSweepTable("(d) Deadline violations, long requests (%)", results, scheds, loads,
		func(s *metrics.Summary) float64 { return 100 * s.ViolationRate(metrics.LongerThan(long)) })
	e.printf("\nSLO: Q1 TTFT 6s. Long threshold: %d prompt tokens (dataset p90).\n", long)
	return nil
}
