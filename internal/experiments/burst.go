package experiments

import (
	"fmt"

	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/sched"
	"qoserve/internal/workload"
)

func init() {
	register("burst", "Extension — robustness to arrival burstiness (gamma CV sweep)", runBurst)
}

// runBurst stresses the schedulers beyond Poisson arrivals: gamma renewal
// processes with growing coefficient of variation clump requests into
// bursts at the same average rate. Deadline-aware scheduling with slack
// exploitation should absorb bursts that break fixed-chunk baselines.
func runBurst(e *Env) error {
	mc := model.Llama3_8B_A100_TP1()
	ref, err := e.refCapacity("burst-edf", mc, e.Sarathi(sched.EDF, 256),
		workload.AzureCode, standardTiers(), e.Seed+23)
	if err != nil {
		return err
	}
	load := scaleLoads(ref, []float64{0.9})[0]
	e.printf("Mean load fixed at %.2f QPS (0.9x Sarathi-EDF capacity); CV varies burstiness\n\n", load)

	scheds := []namedFactory{
		{"Sarathi-EDF", e.Sarathi(sched.EDF, 256)},
		{"QoServe", e.QoServe(mc)},
	}
	e.printf("%-8s", "CV")
	for _, s := range scheds {
		e.printf("%18s", s.label+" viol%")
	}
	e.printf("%18s\n", "QoServe releg%")
	for _, cv := range []float64{0.5, 1.0, 2.0, 4.0} {
		n := int(load * e.Duration().Seconds())
		trace, err := workload.Generate(workload.Spec{
			Dataset:  workload.AzureCode,
			Tiers:    standardTiers(),
			Arrivals: workload.Gamma{QPS: load, CV: cv},
			Requests: n,
			Seed:     e.Seed + 23,
		})
		if err != nil {
			return err
		}
		e.printf("%-8.1f", cv)
		var lastReleg float64
		for _, s := range scheds {
			sum, err := RunJudged(mc, 1, s.factory, workload.Clone(trace))
			if err != nil {
				return err
			}
			e.printf("%18s", fmt.Sprintf("%.2f", 100*sum.ViolationRate(metrics.All)))
			lastReleg = sum.RelegationRate(metrics.All)
		}
		e.printf("%18s\n", fmt.Sprintf("%.2f", 100*lastReleg))
	}
	return nil
}
