package experiments

import (
	"qoserve/internal/core"
	"qoserve/internal/model"
	"qoserve/internal/replica"
	"qoserve/internal/sim"
	"qoserve/internal/workload"
)

func init() {
	register("fig9", "Figure 9 — dynamic chunk sizes across consecutive batches (Azure-Conv, Llama3-8B)", runFig9)
}

// runFig9 records QoServe's per-iteration chunk decisions: when slack
// accumulates across decodes, chunks grow toward the 2500 cap; when an
// interactive decode is paced at its TBT, chunks shrink toward the
// TBT-fitting size. It prints 200 consecutive mid-run batches like the
// paper's trace, plus aggregate statistics.
func runFig9(e *Env) error {
	mc := model.Llama3_8B_A100_TP1()
	trace, err := e.Trace(workload.AzureConv, standardTiers(), 2.5, e.Seed+4)
	if err != nil {
		return err
	}
	qsv := core.New(e.Predictor(mc), core.DefaultOptions())
	qsv.EnableChunkLog()
	if _, _, err := replica.Run(mc, qsv, trace, Horizon(trace)); err != nil {
		return err
	}
	log := qsv.ChunkLog()
	if len(log) == 0 {
		e.printf("no iterations recorded\n")
		return nil
	}

	start := len(log) / 3
	endIdx := start + 200
	if endIdx > len(log) {
		endIdx = len(log)
	}
	e.printf("%-10s%10s%10s%14s%14s\n", "Batch", "Chunk", "Decodes", "Budget(ms)", "Exec(ms)")
	for i := start; i < endIdx; i++ {
		rec := log[i]
		budget := rec.Budget.Seconds() * 1000
		if rec.Budget == sim.Forever || budget > 1e6 {
			budget = -1 // unconstrained
		}
		e.printf("%-10d%10d%10d%14.1f%14.1f\n",
			i, rec.Chunk, rec.Decodes, budget, rec.ExecTime.Seconds()*1000)
	}

	// Aggregate from the scheduler's running counters, which cover every
	// iteration even past the chunk-log retention cap.
	n, sum, atMax := qsv.ChunkStats()
	if n > 0 {
		e.printf("\nIterations with prefill: %d; mean chunk %d; %.1f%% at the 2500 cap\n",
			n, sum/n, 100*float64(atMax)/float64(n))
	}
	return nil
}
