package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"testing"
)

func TestParallelMapOrdersResults(t *testing.T) {
	e := NewEnv(0.02, io.Discard)
	for _, workers := range []int{1, 3, 16} {
		e.Workers = workers
		got, err := parallelMap(e, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestParallelMapReturnsLowestIndexError(t *testing.T) {
	e := NewEnv(0.02, io.Discard)
	e.Workers = 8
	boom := func(i int) (int, error) {
		if i == 3 || i == 7 {
			return 0, fmt.Errorf("point %d failed", i)
		}
		return i, nil
	}
	_, err := parallelMap(e, 10, boom)
	if err == nil || err.Error() != "point 3 failed" {
		t.Fatalf("err = %v, want the lowest-index failure", err)
	}
}

func TestParallelMapSerialStopsAtFirstError(t *testing.T) {
	e := NewEnv(0.02, io.Discard)
	e.Workers = 1
	var calls atomic.Int32
	_, err := parallelMap(e, 10, func(i int) (int, error) {
		calls.Add(1)
		if i == 2 {
			return 0, errors.New("stop")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("serial path ran %d points after a failure, want 3", n)
	}
}

func TestParallelMapEmpty(t *testing.T) {
	e := NewEnv(0.02, io.Discard)
	out, err := parallelMap(e, 0, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map: out=%v err=%v", out, err)
	}
}

func TestWorkersDefault(t *testing.T) {
	e := NewEnv(0.02, io.Discard)
	if e.workers() < 1 {
		t.Fatalf("workers() = %d", e.workers())
	}
	e.Workers = 5
	if e.workers() != 5 {
		t.Fatalf("workers() = %d, want 5", e.workers())
	}
}

// TestParallelSweepsDeterministic is the worker-pool determinism contract:
// a parallel run must produce byte-identical experiment output to a serial
// (Workers=1) run of the same environment. It exercises the parallelized
// sweep shapes — a load sweep (fig5), a (mix x scheduler) grid with a cached
// reference capacity (table6), and heterogeneous fan-out (fig15a) — and is
// meant to run under -race, where it also proves the pool is data-race-free.
func TestParallelSweepsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel determinism sweep is slow")
	}
	for _, name := range []string{"fig5", "table6"} {
		name := name
		t.Run(name, func(t *testing.T) {
			runAt := func(workers int) string {
				var buf bytes.Buffer
				env := NewEnv(0.015, &buf)
				env.Workers = workers
				if err := RunByName(name, env); err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return buf.String()
			}
			serial := runAt(1)
			parallel := runAt(4)
			if serial != parallel {
				t.Fatalf("parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
			}
		})
	}
}
