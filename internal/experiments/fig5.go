package experiments

import (
	"qoserve/internal/core"
	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/workload"
)

func init() {
	register("fig5", "Figure 5 — eager relegation vs none: median latency under rising load", runFig5)
}

// runFig5 shows that proactively relegating a small fraction of requests
// keeps the median request's latency stable under overload, while without
// relegation a cascade of deadline violations drives it up exponentially.
func runFig5(e *Env) error {
	mc := model.Llama3_8B_A100_TP1()
	ds := workload.AzureCode

	noRel := core.DefaultOptions()
	noRel.EagerRelegation = false
	// Sweep from just below to well past QoServe's own capacity: the
	// paper's 3.0-4.2 QPS straddles its ~3.3 QPS saturation point.
	ref, err := e.refCapacity("fig5-norel", mc, e.QoServeOpts(mc, noRel), ds, standardTiers(), e.Seed+1)
	if err != nil {
		return err
	}
	e.printf("Reference capacity (QoServe without relegation): %.2f QPS\n", ref)
	loads := scaleLoads(ref, []float64{0.9, 1.0, 1.1, 1.2, 1.3})
	scheds := []namedFactory{
		{"NoRelegation", e.QoServeOpts(mc, noRel)},
		{"EagerReleg", e.QoServe(mc)},
	}
	results, err := e.loadSweep(mc, ds, standardTiers(), loads, scheds, e.Seed+1)
	if err != nil {
		return err
	}
	e.printSweepTable("Median request latency (s)", results, scheds, loads,
		func(s *metrics.Summary) float64 { return s.LatencyQuantile(metrics.All, 0.5) })
	e.printSweepTable("Relegated requests (%)", results, scheds, loads,
		func(s *metrics.Summary) float64 { return 100 * s.RelegationRate(metrics.All) })
	e.printSweepTable("Deadline violations (%)", results, scheds, loads,
		func(s *metrics.Summary) float64 { return 100 * s.ViolationRate(metrics.All) })
	return nil
}
