package experiments

import (
	"fmt"
	"sort"

	"qoserve/internal/cluster"
	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/request"
	"qoserve/internal/sched"
	"qoserve/internal/workload"
)

func init() {
	register("table4", "Table 4 — cluster-scale: siloed Sarathi vs shared QoServe at 35 QPS (Azure-Code, Llama3-8B)", runTable4)
}

// table4QPS is the paper's fixed cluster load.
const table4QPS = 35

// runTable4 reproduces the cluster-scale study. It (1) searches the minimal
// per-tier silo allocation for the Sarathi baseline, (2) searches the
// minimal shared QoServe replica count for the same total load, (3) runs
// the silo plan reduced to QoServe's GPU count, and prints per-tier p99
// latency plus overall violations for each deployment — the paper's
// headline 23% GPU saving.
func runTable4(e *Env) error {
	mc := model.Llama3_8B_A100_TP1()
	mkTrace := func() ([]*request.Request, error) {
		return e.Trace(workload.AzureCode, standardTiers(), table4QPS, e.Seed+11)
	}

	// (1) Minimal silo allocation: each tier served by its own Sarathi
	// cluster (chunk 256 for the strict tier, 2K for the relaxed ones).
	siloChunk := map[string]int{"Q1": 256, "Q2": sched.RelaxedChunk, "Q3": sched.RelaxedChunk}
	siloAlloc := map[string]int{}
	for _, tier := range []string{"Q1", "Q2", "Q3"} {
		tier := tier
		gen := func() ([]*request.Request, error) {
			full, err := mkTrace()
			if err != nil {
				return nil, err
			}
			var only []*request.Request
			for _, r := range full {
				if r.Class.Name == tier {
					only = append(only, r)
				}
			}
			return only, nil
		}
		opts := e.searchOpts()
		n, _, err := cluster.MinReplicas(mc, e.Sarathi(sched.FCFS, siloChunk[tier]), gen, 32, opts)
		if err != nil {
			return fmt.Errorf("silo search for %s: %w", tier, err)
		}
		siloAlloc[tier] = n
	}

	// (2) Minimal shared QoServe cluster.
	opts := e.searchOpts()
	qsvN, _, err := cluster.MinReplicas(mc, e.QoServe(mc), mkTrace, 32, opts)
	if err != nil {
		return err
	}

	// (3) The silo plan squeezed to QoServe's GPU budget.
	reduced := reduceAllocation(siloAlloc, qsvN)

	siloTotal := siloAlloc["Q1"] + siloAlloc["Q2"] + siloAlloc["Q3"]
	e.printf("%-28s%8s%12s%12s%12s%14s\n",
		"Scheme", "GPUs", "Q1 p99(s)", "Q2 p99(s)", "Q3 p99(s)", "Violations%")

	printSilo := func(label string, alloc map[string]int) error {
		trace, err := mkTrace()
		if err != nil {
			return err
		}
		plan := cluster.SiloPlan{
			Replicas: alloc,
			Factory: func(class string) sched.Scheduler {
				return sched.NewSarathi(sched.FCFS, siloChunk[class])
			},
		}
		sum, err := cluster.RunSiloed(mc, plan, trace, Horizon(trace))
		if err != nil {
			return err
		}
		printTable4Row(e, label, plan.TotalReplicas(), sum)
		return nil
	}

	if err := printSilo(fmt.Sprintf("Silo-(%d,%d,%d)", siloAlloc["Q1"], siloAlloc["Q2"], siloAlloc["Q3"]), siloAlloc); err != nil {
		return err
	}
	if err := printSilo(fmt.Sprintf("Silo-(%d,%d,%d) reduced", reduced["Q1"], reduced["Q2"], reduced["Q3"]), reduced); err != nil {
		return err
	}

	trace, err := mkTrace()
	if err != nil {
		return err
	}
	sum, err := cluster.RunShared(mc, qsvN, e.QoServe(mc), trace, Horizon(trace))
	if err != nil {
		return err
	}
	printTable4Row(e, fmt.Sprintf("QoServe-(%d) shared", qsvN), qsvN, sum)

	// One replica above minimal, for tail behaviour away from the cliff
	// (the paper's QoServe-(10) ran with headroom: zero violations).
	trace, err = mkTrace()
	if err != nil {
		return err
	}
	sum, err = cluster.RunShared(mc, qsvN+1, e.QoServe(mc), trace, Horizon(trace))
	if err != nil {
		return err
	}
	printTable4Row(e, fmt.Sprintf("QoServe-(%d) shared", qsvN+1), qsvN+1, sum)

	if siloTotal > 0 {
		e.printf("\nGPU saving vs minimal silo: %.0f%% (paper: 23%%)\n",
			100*(1-float64(qsvN)/float64(siloTotal)))
	}
	return nil
}

func printTable4Row(e *Env, label string, gpus int, sum *metrics.Summary) {
	e.printf("%-28s%8d%12.2f%12.2f%12.2f%14.2f\n", label, gpus,
		sum.TTFTQuantile(metrics.ByClass("Q1"), 0.99),
		sum.TTLTQuantile(metrics.ByClass("Q2"), 0.99),
		sum.TTLTQuantile(metrics.ByClass("Q3"), 0.99),
		100*sum.ViolationRate(metrics.All))
}

// reduceAllocation trims a silo allocation to the target total by removing
// replicas from the largest silos first, never dropping a silo below one.
func reduceAllocation(alloc map[string]int, target int) map[string]int {
	out := map[string]int{}
	total := 0
	for k, v := range alloc {
		out[k] = v
		total += v
	}
	for total > target {
		// Largest silo first; ties broken by name for determinism.
		keys := make([]string, 0, len(out))
		for k := range out {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if out[keys[i]] != out[keys[j]] {
				return out[keys[i]] > out[keys[j]]
			}
			return keys[i] < keys[j]
		})
		if out[keys[0]] <= 1 {
			break
		}
		out[keys[0]]--
		total--
	}
	return out
}
