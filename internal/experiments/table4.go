package experiments

import (
	"fmt"
	"sort"

	"qoserve/internal/cluster"
	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/request"
	"qoserve/internal/sched"
	"qoserve/internal/workload"
)

func init() {
	register("table4", "Table 4 — cluster-scale: siloed Sarathi vs shared QoServe at 35 QPS (Azure-Code, Llama3-8B)", runTable4)
}

// table4QPS is the paper's fixed cluster load.
const table4QPS = 35

// runTable4 reproduces the cluster-scale study. It (1) searches the minimal
// per-tier silo allocation for the Sarathi baseline, (2) searches the
// minimal shared QoServe replica count for the same total load, (3) runs
// the silo plan reduced to QoServe's GPU count, and prints per-tier p99
// latency plus overall violations for each deployment — the paper's
// headline 23% GPU saving.
func runTable4(e *Env) error {
	mc := model.Llama3_8B_A100_TP1()
	mkTrace := func() ([]*request.Request, error) {
		return e.Trace(workload.AzureCode, standardTiers(), table4QPS, e.Seed+11)
	}

	// (1)+(2) The three per-tier silo searches and the shared QoServe
	// search are independent; run all four concurrently.
	siloChunk := map[string]int{"Q1": 256, "Q2": sched.RelaxedChunk, "Q3": sched.RelaxedChunk}
	tierNames := []string{"Q1", "Q2", "Q3"}
	qsvFactory := e.QoServe(mc)
	sizes, err := parallelMap(e, len(tierNames)+1, func(i int) (int, error) {
		opts := e.searchOpts()
		if i == len(tierNames) {
			// Minimal shared QoServe cluster.
			n, _, err := cluster.MinReplicas(mc, qsvFactory, mkTrace, 32, opts)
			return n, err
		}
		tier := tierNames[i]
		gen := func() ([]*request.Request, error) {
			full, err := mkTrace()
			if err != nil {
				return nil, err
			}
			var only []*request.Request
			for _, r := range full {
				if r.Class.Name == tier {
					only = append(only, r)
				}
			}
			return only, nil
		}
		n, _, err := cluster.MinReplicas(mc, e.Sarathi(sched.FCFS, siloChunk[tier]), gen, 32, opts)
		if err != nil {
			return 0, fmt.Errorf("silo search for %s: %w", tier, err)
		}
		return n, nil
	})
	if err != nil {
		return err
	}
	siloAlloc := map[string]int{}
	for i, tier := range tierNames {
		siloAlloc[tier] = sizes[i]
	}
	qsvN := sizes[len(tierNames)]

	// (3) The silo plan squeezed to QoServe's GPU budget.
	reduced := reduceAllocation(siloAlloc, qsvN)

	siloTotal := siloAlloc["Q1"] + siloAlloc["Q2"] + siloAlloc["Q3"]
	e.printf("%-28s%8s%12s%12s%12s%14s\n",
		"Scheme", "GPUs", "Q1 p99(s)", "Q2 p99(s)", "Q3 p99(s)", "Violations%")

	runSilo := func(alloc map[string]int) (int, *metrics.Summary, error) {
		trace, err := mkTrace()
		if err != nil {
			return 0, nil, err
		}
		plan := cluster.SiloPlan{
			Replicas: alloc,
			Factory: func(class string) sched.Scheduler {
				return sched.NewSarathi(sched.FCFS, siloChunk[class])
			},
		}
		sum, err := cluster.RunSiloed(mc, plan, trace, Horizon(trace))
		return plan.TotalReplicas(), sum, err
	}
	runShared := func(n int) (int, *metrics.Summary, error) {
		trace, err := mkTrace()
		if err != nil {
			return 0, nil, err
		}
		sum, err := cluster.RunShared(mc, n, qsvFactory, trace, Horizon(trace))
		return n, sum, err
	}

	// The four judged deployments are independent runs of the same trace.
	// The qsvN+1 row shows tail behaviour one replica above minimal (the
	// paper's QoServe-(10) ran with headroom: zero violations).
	type row struct {
		label string
		run   func() (int, *metrics.Summary, error)
	}
	rows := []row{
		{fmt.Sprintf("Silo-(%d,%d,%d)", siloAlloc["Q1"], siloAlloc["Q2"], siloAlloc["Q3"]),
			func() (int, *metrics.Summary, error) { return runSilo(siloAlloc) }},
		{fmt.Sprintf("Silo-(%d,%d,%d) reduced", reduced["Q1"], reduced["Q2"], reduced["Q3"]),
			func() (int, *metrics.Summary, error) { return runSilo(reduced) }},
		{fmt.Sprintf("QoServe-(%d) shared", qsvN),
			func() (int, *metrics.Summary, error) { return runShared(qsvN) }},
		{fmt.Sprintf("QoServe-(%d) shared", qsvN+1),
			func() (int, *metrics.Summary, error) { return runShared(qsvN + 1) }},
	}
	type rowResult struct {
		gpus int
		sum  *metrics.Summary
	}
	results, err := parallelMap(e, len(rows), func(i int) (rowResult, error) {
		gpus, sum, err := rows[i].run()
		return rowResult{gpus, sum}, err
	})
	if err != nil {
		return err
	}
	for i, r := range rows {
		printTable4Row(e, r.label, results[i].gpus, results[i].sum)
	}

	if siloTotal > 0 {
		e.printf("\nGPU saving vs minimal silo: %.0f%% (paper: 23%%)\n",
			100*(1-float64(qsvN)/float64(siloTotal)))
	}
	return nil
}

func printTable4Row(e *Env, label string, gpus int, sum *metrics.Summary) {
	e.printf("%-28s%8d%12.2f%12.2f%12.2f%14.2f\n", label, gpus,
		sum.TTFTQuantile(metrics.ByClass("Q1"), 0.99),
		sum.TTLTQuantile(metrics.ByClass("Q2"), 0.99),
		sum.TTLTQuantile(metrics.ByClass("Q3"), 0.99),
		100*sum.ViolationRate(metrics.All))
}

// reduceAllocation trims a silo allocation to the target total by removing
// replicas from the largest silos first, never dropping a silo below one.
func reduceAllocation(alloc map[string]int, target int) map[string]int {
	out := map[string]int{}
	total := 0
	for k, v := range alloc {
		out[k] = v
		total += v
	}
	for total > target {
		// Largest silo first; ties broken by name for determinism.
		keys := make([]string, 0, len(out))
		for k := range out {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if out[keys[i]] != out[keys[j]] {
				return out[keys[i]] > out[keys[j]]
			}
			return keys[i] < keys[j]
		})
		if out[keys[0]] <= 1 {
			break
		}
		out[keys[0]]--
		total--
	}
	return out
}
