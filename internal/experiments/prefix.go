package experiments

import (
	"math/rand"

	"qoserve/internal/kvcache"
)

func init() {
	register("prefix", "Extension — prefix-cache tier sizing sweep (hit rate vs HBM/DRAM split)", runPrefix)
}

// runPrefix sweeps the prefix cache's tier split over a fixed session-style
// reference stream: a population of conversations whose turns re-send a
// growing shared prefix, exactly the chain pattern the loadgen session mode
// and the gateway's PrefixAffinity balancer produce. One Manager is reused
// across all grid points — Reset returns it to a fresh state between runs,
// so per-point hit counters and the peak-utilization high-water mark do not
// bleed across the grid.
//
// The sweep answers the OPERATIONS.md tuning question directly: how much
// DRAM spill is worth configuring for a given HBM budget. Hits rise with
// either tier until the working set fits; past that, extra DRAM only adds
// reload traffic.
func runPrefix(e *Env) error {
	const (
		sessions  = 64
		turns     = 6
		blockTok  = kvcache.DefaultBlockTokens
		firstBlks = 48 // ~768-token opening context
		growBlks  = 8  // ~128 tokens of growth per turn
	)

	// Materialize the reference stream once: (session, chain) per turn,
	// interleaved round-robin across sessions the way concurrent
	// conversations interleave at a replica. A seeded shuffle of session
	// order per round keeps the interleaving honest without changing the
	// stream between grid points.
	type turn struct {
		id    uint64
		chain []uint64
	}
	var stream []turn
	rng := rand.New(rand.NewSource(e.Seed + 31))
	order := make([]int, sessions)
	for i := range order {
		order[i] = i
	}
	var nextID uint64
	for t := 0; t < turns; t++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, s := range order {
			nextID++
			blocks := firstBlks + t*growBlks
			stream = append(stream, turn{
				id:    nextID,
				chain: kvcache.SyntheticChain(uint64(s+1), 0, blocks),
			})
		}
	}
	totalBlocks := 0
	for _, tn := range stream {
		totalBlocks += len(tn.chain)
	}

	hbmSizes := []int{32768, 65536, 131072} // tokens
	dramSizes := []int{0, 65536, 262144}

	e.printf("%d sessions x %d turns, %d chain blocks total (%d tokens)\n\n",
		sessions, turns, totalBlocks, totalBlocks*blockTok)
	e.printf("%-12s%-12s%10s%12s%12s%12s%10s\n",
		"HBM(tok)", "DRAM(tok)", "Hit(%)", "Reload(tok)", "Demotions", "Evicted", "Peak")

	for _, hbm := range hbmSizes {
		for _, dram := range dramSizes {
			m, err := kvcache.NewTiered(kvcache.Config{CapacityTokens: hbm, DRAMTokens: dram})
			if err != nil {
				return err
			}
			// Two repetitions through one manager: the second must start
			// cold, with a clean peak-utilization high-water mark, which is
			// exactly what Reset guarantees. The printed numbers are the
			// final (post-Reset) repetition's.
			for rep := 0; rep < 2; rep++ {
				m.Reset()
				for _, tn := range stream {
					id := tn.id + uint64(rep)<<32
					m.AcquirePrefix(id, tn.chain)
					m.Release(id)
				}
			}
			possible := uint64(totalBlocks * blockTok)
			hbmEv, dramEv := m.TierEvictions()
			e.printf("%-12d%-12d%10.1f%12d%12d%12d%10.2f\n",
				hbm, dram,
				100*float64(m.PrefixHitTokens())/float64(possible),
				m.PrefixReloadTokens(), m.Demotions(), hbmEv+dramEv,
				m.PeakUtilization())
		}
	}
	return nil
}
