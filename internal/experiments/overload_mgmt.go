package experiments

import (
	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/qos"
	"qoserve/internal/sched"
	"qoserve/internal/workload"
)

func init() {
	register("overloadmgmt", "Section 2.2 — overload management: rate limiting vs SJF vs eager relegation", runOverloadMgmt)
}

// runOverloadMgmt contrasts the §2.2 production overload mechanisms the
// paper criticises — hard rate limiting (reject excess arrivals) and
// short-request prioritization (SJF) — against QoServe's eager relegation,
// under a sustained 50%-over-capacity load with 20% free-tier requests.
// Rate limiting rejects blindly (important requests bounce as often as
// free-tier ones); SJF starves long jobs; relegation degrades selectively
// and still finishes what it demotes.
func runOverloadMgmt(e *Env) error {
	mc := model.Llama3_8B_A100_TP1()
	ref, err := e.refCapacity("omgmt-edf", mc, e.Sarathi(sched.EDF, 256),
		workload.AzureCode, standardTiers(), e.Seed+21)
	if err != nil {
		return err
	}
	load := scaleLoads(ref, []float64{1.5})[0]
	e.printf("Reference capacity (Sarathi-EDF): %.2f QPS; sustained load %.2f QPS (1.5x)\n\n", ref, load)

	tiers := workload.WithLowPriority(standardTiers(), 0.2)
	e.printf("%-26s%12s%14s%14s%14s\n",
		"Mechanism", "Overall%", "Important%", "Completed%", "MaxLat(s)")
	scheds := []namedFactory{
		{"RateLimit(EDF)", func() sched.Scheduler {
			return sched.NewRateLimited(sched.NewSarathi(sched.EDF, 256), 48)
		}},
		{"SJF", e.Sarathi(sched.SJF, 256)},
		{"QoServe(relegation)", e.QoServe(mc)},
	}
	for _, s := range scheds {
		trace, err := e.Trace(workload.AzureCode, tiers, load, e.Seed+21)
		if err != nil {
			return err
		}
		sum, err := RunJudged(mc, 1, s.factory, trace)
		if err != nil {
			return err
		}
		e.printf("%-26s%12.2f%14.2f%14.2f%14.1f\n", s.label,
			100*sum.ViolationRate(metrics.All),
			100*sum.ViolationRate(metrics.ByPriority(qos.High)),
			100*sum.CompletionRate(metrics.All),
			sum.MaxLatency(metrics.All).Seconds())
	}
	e.printf("\n(Rate limiting counts rejected requests as violated and never completes them;\nrelegation violates fewer and completes everything.)\n")
	return nil
}
