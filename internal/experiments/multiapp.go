package experiments

import (
	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/qos"
	"qoserve/internal/sched"
	"qoserve/internal/workload"
)

func init() {
	register("multiapp", "Extension — heterogeneous applications: each tier drawn from a different production trace", runMultiApp)
}

// multiAppTiers builds the heterogeneous mix: the interactive tier is a
// chat application (Azure-Conv shapes), Q2 a summarization-style service
// (ShareGPT shapes: long prompts, long outputs), Q3 a code-batch pipeline
// (Azure-Code shapes). The paper splits a single dataset across tiers; real
// deployments colocate genuinely different applications, which stresses the
// scheduler with correlated shape/tier structure.
func multiAppTiers() []workload.Tier {
	classes := qos.Table3()
	conv, share, code := workload.AzureConv, workload.ShareGPT, workload.AzureCode
	tiers := workload.EqualTiers(classes)
	tiers[0].Dataset = &conv
	tiers[1].Dataset = &share
	tiers[2].Dataset = &code
	return tiers
}

// runMultiApp sweeps load over the heterogeneous mix for the shared-cluster
// schedulers, reporting overall and per-tier violations.
func runMultiApp(e *Env) error {
	mc := model.Llama3_8B_A100_TP1()
	tiers := multiAppTiers()
	ref, err := e.refCapacity("multiapp-edf", mc, e.Sarathi(sched.EDF, 256),
		workload.AzureConv, tiers, e.Seed+26)
	if err != nil {
		return err
	}
	e.printf("Reference capacity (Sarathi-EDF, heterogeneous mix): %.2f QPS\n", ref)
	loads := scaleLoads(ref, []float64{0.7, 1.0, 1.4, 1.8})
	scheds := []namedFactory{
		{"Sarathi-FCFS", e.Sarathi(sched.FCFS, 256)},
		{"Sarathi-EDF", e.Sarathi(sched.EDF, 256)},
		{"QoServe", e.QoServe(mc)},
	}
	results, err := e.loadSweep(mc, workload.AzureConv, tiers, loads, scheds, e.Seed+26)
	if err != nil {
		return err
	}
	e.printSweepTable("Overall violations (%)", results, scheds, loads,
		func(s *metrics.Summary) float64 { return 100 * s.ViolationRate(metrics.All) })
	for _, tier := range []string{"Q1", "Q2", "Q3"} {
		f := metrics.ByClass(tier)
		e.printSweepTable(tier+" violations (%)", results, scheds, loads,
			func(s *metrics.Summary) float64 { return 100 * s.ViolationRate(f) })
	}
	return nil
}
