// Package asciiplot renders small line charts as text, so the experiment
// harness can draw its figures directly in the terminal next to the
// numeric tables.
package asciiplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one labelled line.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Options controls rendering.
type Options struct {
	Title  string
	XLabel string
	YLabel string
	Width  int  // plot-area columns (default 56)
	Height int  // plot-area rows (default 14)
	LogY   bool // log10 y-axis for quantities spanning decades
}

// markers distinguish series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render draws the chart. Series with mismatched X/Y lengths or no finite
// points are skipped; an empty chart renders axes only.
func Render(series []Series, opts Options) string {
	width := opts.Width
	if width <= 0 {
		width = 56
	}
	height := opts.Height
	if height <= 0 {
		height = 14
	}

	// Collect finite points, transforming Y if log scale.
	type pt struct{ x, y float64 }
	pts := make([][]pt, len(series))
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for i, s := range series {
		n := len(s.X)
		if len(s.Y) < n {
			n = len(s.Y)
		}
		for j := 0; j < n; j++ {
			x, y := s.X[j], s.Y[j]
			if opts.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			pts[i] = append(pts[i], pt{x, y})
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if minX > maxX { // nothing plottable
		minX, maxX, minY, maxY = 0, 1, 0, 1
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		c := int(math.Round((x - minX) / (maxX - minX) * float64(width-1)))
		return clamp(c, 0, width-1)
	}
	row := func(y float64) int {
		r := int(math.Round((y - minY) / (maxY - minY) * float64(height-1)))
		return clamp(height-1-r, 0, height-1)
	}

	for i := range pts {
		mark := markers[i%len(markers)]
		// Connect consecutive points with linear interpolation.
		for j := range pts[i] {
			p := pts[i][j]
			grid[row(p.y)][col(p.x)] = mark
			if j == 0 {
				continue
			}
			q := pts[i][j-1]
			c0, c1 := col(q.x), col(p.x)
			for c := c0 + 1; c < c1; c++ {
				frac := float64(c-c0) / float64(c1-c0)
				y := q.y + frac*(p.y-q.y)
				r := row(y)
				if grid[r][c] == ' ' {
					grid[r][c] = '.'
				}
			}
		}
	}

	var b strings.Builder
	if opts.Title != "" {
		fmt.Fprintf(&b, "%s\n", opts.Title)
	}
	yTick := func(r int) float64 {
		frac := float64(height-1-r) / float64(height-1)
		v := minY + frac*(maxY-minY)
		if opts.LogY {
			v = math.Pow(10, v)
		}
		return v
	}
	for r := 0; r < height; r++ {
		label := " "
		if r == 0 || r == height-1 || r == height/2 {
			label = formatTick(yTick(r))
		}
		fmt.Fprintf(&b, "%10s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-*s%s\n", "", width-len(formatTick(maxX)), formatTick(minX), formatTick(maxX))
	if opts.XLabel != "" || opts.YLabel != "" {
		fmt.Fprintf(&b, "%12sx: %s   y: %s%s\n", "", opts.XLabel, opts.YLabel, logSuffix(opts.LogY))
	}
	for i, s := range series {
		fmt.Fprintf(&b, "%12s%c %s\n", "", markers[i%len(markers)], s.Name)
	}
	return b.String()
}

func logSuffix(logY bool) string {
	if logY {
		return " (log scale)"
	}
	return ""
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	case av >= 0.01 || av == 0:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.1e", v)
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
