package asciiplot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasicChart(t *testing.T) {
	out := Render([]Series{
		{Name: "linear", X: []float64{0, 1, 2, 3}, Y: []float64{0, 10, 20, 30}},
		{Name: "flat", X: []float64{0, 1, 2, 3}, Y: []float64{15, 15, 15, 15}},
	}, Options{Title: "test chart", XLabel: "load", YLabel: "latency"})

	for _, want := range []string{"test chart", "linear", "flat", "x: load", "y: latency", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 16 {
		t.Fatalf("only %d lines rendered", len(lines))
	}
}

func TestRenderMonotoneSeriesSlopesUp(t *testing.T) {
	out := Render([]Series{
		{Name: "up", X: []float64{0, 1, 2, 3, 4}, Y: []float64{0, 1, 2, 3, 4}},
	}, Options{Width: 40, Height: 10})
	// Collect marker positions; rows grow downward, so for an increasing
	// series, markers on later (lower) rows must sit at smaller columns.
	type pos struct{ row, col int }
	var positions []pos
	for r, line := range strings.Split(out, "\n") {
		for c := 0; c < len(line); c++ {
			if line[c] == '*' {
				positions = append(positions, pos{r, c})
			}
		}
	}
	if len(positions) < 3 {
		t.Fatalf("only %d markers plotted", len(positions))
	}
	for i := 1; i < len(positions); i++ {
		if positions[i].row > positions[i-1].row && positions[i].col > positions[i-1].col {
			t.Fatalf("upward series renders downward: %v", positions)
		}
	}
}

func TestRenderLogScale(t *testing.T) {
	out := Render([]Series{
		{Name: "decade", X: []float64{1, 2, 3}, Y: []float64{1, 100, 10000}},
	}, Options{LogY: true})
	if !strings.Contains(out, "(log scale)") && !strings.Contains(out, "decade") {
		t.Errorf("log chart missing annotations:\n%s", out)
	}
	// Non-positive values are skipped on log scale rather than crashing.
	out = Render([]Series{
		{Name: "withzero", X: []float64{1, 2, 3}, Y: []float64{0, 10, 100}},
	}, Options{LogY: true})
	if !strings.Contains(out, "withzero") {
		t.Error("log chart with zero value failed to render")
	}
}

func TestRenderDegenerateInputs(t *testing.T) {
	// Empty series, NaN/Inf values, single point, mismatched lengths.
	cases := [][]Series{
		nil,
		{{Name: "empty"}},
		{{Name: "nan", X: []float64{1}, Y: []float64{math.NaN()}}},
		{{Name: "inf", X: []float64{1}, Y: []float64{math.Inf(1)}}},
		{{Name: "single", X: []float64{5}, Y: []float64{5}}},
		{{Name: "mismatch", X: []float64{1, 2, 3}, Y: []float64{1}}},
	}
	for i, series := range cases {
		out := Render(series, Options{})
		if out == "" {
			t.Errorf("case %d rendered nothing", i)
		}
		if strings.Contains(out, "NaN") {
			t.Errorf("case %d leaked NaN", i)
		}
	}
}

func TestFormatTick(t *testing.T) {
	for v, want := range map[float64]string{
		12345:  "12345",
		42.5:   "42.5",
		3.14:   "3.14",
		0:      "0.00",
		0.0001: "1.0e-04",
	} {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", v, got, want)
		}
	}
}
