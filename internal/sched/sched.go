// Package sched defines the scheduling framework shared by every policy in
// this repository — the batch plan a scheduler hands to a replica, the
// Scheduler interface, a priority queue for prefill requests — and
// implements the baseline schedulers the paper compares against:
// Sarathi-style fixed-chunk serving under FCFS / SJF / SRPF / EDF ordering,
// and Medha's adaptive chunking (§4.5.1). The paper's own scheduler lives
// in package core.
package sched

import (
	"fmt"

	"qoserve/internal/model"
	"qoserve/internal/request"
	"qoserve/internal/sim"
)

// PrefillAlloc assigns part of one iteration's token budget to the prompt of
// a request.
type PrefillAlloc struct {
	Req    *request.Request
	Tokens int
}

// Batch is one iteration's work: at most one chunk per prefill request plus
// every request in decode phase (decodes are never preempted).
type Batch struct {
	Prefill []PrefillAlloc
	Decodes []*request.Request
}

// Empty reports whether the batch contains no work.
//
//qoserve:hotpath
func (b Batch) Empty() bool { return len(b.Prefill) == 0 && len(b.Decodes) == 0 }

// NewTokens is the number of tokens this batch processes.
//
//qoserve:hotpath
func (b Batch) NewTokens() int {
	n := len(b.Decodes)
	for _, p := range b.Prefill {
		n += p.Tokens
	}
	return n
}

// PrefillTokens is the prompt-token portion of the batch.
//
//qoserve:hotpath
func (b Batch) PrefillTokens() int {
	n := 0
	for _, p := range b.Prefill {
		n += p.Tokens
	}
	return n
}

// Shape converts the batch to the cost model's input.
func (b Batch) Shape() model.BatchShape {
	var s model.BatchShape
	b.ShapeInto(&s)
	return s
}

// ShapeInto fills s with the batch's shape, reusing s's backing arrays so a
// caller that prices every iteration (the replica loop, the planner's trim
// pass) does not allocate per batch.
//
//qoserve:hotpath
func (b Batch) ShapeInto(s *model.BatchShape) {
	s.Prefill = s.Prefill[:0]
	for _, p := range b.Prefill {
		s.Prefill = append(s.Prefill, model.ChunkShape{Tokens: p.Tokens, CtxStart: p.Req.PrefilledTokens})
	}
	s.DecodeCtx = s.DecodeCtx[:0]
	for _, r := range b.Decodes {
		s.DecodeCtx = append(s.DecodeCtx, r.ContextLen())
	}
}

// String summarizes the batch.
func (b Batch) String() string {
	return fmt.Sprintf("Batch{prefill: %d reqs/%d tokens, decodes: %d}",
		len(b.Prefill), b.PrefillTokens(), len(b.Decodes))
}

// Scheduler is the policy a replica consults every iteration.
//
// Contract: the replica calls Add on arrival, PlanBatch when it is ready to
// execute an iteration, and OnBatchComplete after it has performed token
// accounting (request phases observed in OnBatchComplete reflect the
// completed iteration). A scheduler must only plan prefill allocations for
// requests previously Added and not yet Done. Chunked-prefill schedulers
// (Sarathi, Medha, QoServe) include every decode-phase request in every
// batch so decodes are never stalled; schedulers are permitted to omit
// decodes from a batch (vanilla vLLM's prefill-prioritized iterations do)
// at the cost of inflated TBT.
type Scheduler interface {
	Name() string
	Add(r *request.Request, now sim.Time)
	PlanBatch(now sim.Time) Batch
	OnBatchComplete(b Batch, now sim.Time)
	// Pending is the number of requests added but not finished.
	Pending() int
}
