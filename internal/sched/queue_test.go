package sched

import (
	"math/rand"
	"sort"
	"testing"

	"qoserve/internal/request"
)

// TestQueueModelEquivalence drives the offset-backed queue through a long
// random mix of inserts, indexed removals, membership removals, and front
// pops — including bursts that trigger the dead-prefix compaction — and
// checks every observation (At, KeyAt, Front, Items, Key, Len) against a
// naive sorted-slice reference model.
func TestQueueModelEquivalence(t *testing.T) {
	type entry struct {
		key float64
		r   *request.Request
	}
	var model []entry
	insertModel := func(r *request.Request, key float64) {
		i := sort.Search(len(model), func(i int) bool {
			if model[i].key != key {
				return model[i].key > key
			}
			return model[i].r.ID > r.ID
		})
		model = append(model, entry{})
		copy(model[i+1:], model[i:])
		model[i] = entry{key, r}
	}

	rng := rand.New(rand.NewSource(11))
	var q Queue
	nextID := uint64(1)
	check := func(op string) {
		t.Helper()
		if q.Len() != len(model) {
			t.Fatalf("%s: Len = %d, want %d", op, q.Len(), len(model))
		}
		items := q.Items()
		for i, e := range model {
			if q.At(i) != e.r || items[i] != e.r {
				t.Fatalf("%s: At(%d) = %v, want ID %d", op, i, q.At(i), e.r.ID)
			}
			if q.KeyAt(i) != e.key {
				t.Fatalf("%s: KeyAt(%d) = %v, want %v", op, i, q.KeyAt(i), e.key)
			}
			if k, ok := q.Key(e.r); !ok || k != e.key {
				t.Fatalf("%s: Key(ID %d) = %v,%v, want %v", op, e.r.ID, k, ok, e.key)
			}
		}
		if len(model) == 0 {
			if q.Front() != nil {
				t.Fatalf("%s: Front on empty = %v", op, q.Front())
			}
		} else if q.Front() != model[0].r {
			t.Fatalf("%s: Front = %v, want ID %d", op, q.Front(), model[0].r.ID)
		}
	}

	for step := 0; step < 3000; step++ {
		switch op := rng.Intn(10); {
		case op < 4 || len(model) == 0: // insert, biased keys to force ties
			r := req(nextID, 0, 10, 1, batchClass())
			nextID++
			key := float64(rng.Intn(8))
			q.Insert(r, key)
			insertModel(r, key)
			check("Insert")
		case op < 6: // pop front (the hot scheduler path)
			want := model[0].r
			model = model[1:]
			if got := q.PopFront(); got != want {
				t.Fatalf("PopFront = %v, want ID %d", got, want.ID)
			}
			check("PopFront")
		case op < 8: // remove at a random position
			i := rng.Intn(len(model))
			q.RemoveAt(i)
			model = append(model[:i], model[i+1:]...)
			check("RemoveAt")
		default: // remove by membership
			i := rng.Intn(len(model))
			r := model[i].r
			if !q.Remove(r) {
				t.Fatalf("Remove(ID %d) = false", r.ID)
			}
			model = append(model[:i], model[i+1:]...)
			if q.Remove(r) {
				t.Fatalf("Remove(ID %d) twice = true", r.ID)
			}
			check("Remove")
		}
	}
}

// TestQueueFrontPopCompaction drains a deep queue from the front — the
// pattern the offset representation optimizes — and verifies the dead
// prefix is reclaimed rather than growing with history.
func TestQueueFrontPopCompaction(t *testing.T) {
	var q Queue
	const n = 1 << 12
	for i := 0; i < n; i++ {
		q.Insert(req(uint64(i+1), 0, 10, 1, batchClass()), float64(i))
	}
	for i := 0; i < n; i++ {
		r := q.PopFront()
		if r == nil || r.ID != uint64(i+1) {
			t.Fatalf("pop %d: got %v", i, r)
		}
		if q.head > len(q.items)-q.head+64 {
			t.Fatalf("pop %d: dead prefix %d never reclaimed (live %d)",
				i, q.head, len(q.items)-q.head)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after full drain", q.Len())
	}
}
