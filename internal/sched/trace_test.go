package sched

import (
	"testing"

	"qoserve/internal/request"
	"qoserve/internal/sim"
	"qoserve/internal/trace"
)

// TestTraceDisabledZeroAlloc enforces the package trace performance
// contract: with no tracer attached (the default), every trace hook must be
// a single nil check — zero allocations on the scheduling hot path.
func TestTraceDisabledZeroAlloc(t *testing.T) {
	var x TraceState
	r := req(1, 0, 500, 4, batchClass())
	b := Batch{
		Prefill: []PrefillAlloc{{Req: r, Tokens: 256}},
		Decodes: []*request.Request{req(2, 0, 10, 5, batchClass())},
	}
	ev := trace.Event{Kind: trace.Relegation, Req: 1, Class: "Q3", Reason: "test"}

	allocs := testing.AllocsPerRun(1000, func() {
		x.TraceAdmission(1, "Q3", sim.Second)
		x.TracePlan("test", b, sim.Second, 0, 1, 0)
		x.TraceEvent(ev)
		x.TraceComplete(2 * sim.Second)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocated %.1f times per iteration, want 0", allocs)
	}
	if x.Tracing() {
		t.Fatal("zero-value TraceState reports tracing enabled")
	}
}

func TestSetTracerNormalizesDisabled(t *testing.T) {
	var x TraceState
	x.SetTracer(trace.Nop())
	if x.Tracing() {
		t.Fatal("Nop tracer left tracing enabled")
	}
	x.SetTracer(trace.NewRing(4))
	if !x.Tracing() {
		t.Fatal("Ring tracer did not enable tracing")
	}
	x.SetTracer(nil)
	if x.Tracing() {
		t.Fatal("SetTracer(nil) did not disable tracing")
	}
}

// benchPlanLoop measures the plan/complete cycle with the scheduler's
// current tracer; compare BenchmarkPlanBatchUntraced against
// BenchmarkPlanBatchTraced to see the tracing overhead.
func benchPlanLoop(b *testing.B, s *Sarathi) {
	r := req(1, 0, 1<<30, 1, batchClass())
	s.Add(r, 0)
	b.ReportAllocs()
	b.ResetTimer()
	now := sim.Time(0)
	for i := 0; i < b.N; i++ {
		batch := s.PlanBatch(now)
		now += 40 * sim.Millisecond
		s.OnBatchComplete(batch, now)
	}
}

func BenchmarkPlanBatchUntraced(b *testing.B) {
	benchPlanLoop(b, NewSarathi(FCFS, 256))
}

func BenchmarkPlanBatchTraced(b *testing.B) {
	s := NewSarathi(FCFS, 256)
	s.SetTracer(trace.NewRing(1024))
	benchPlanLoop(b, s)
}

// TestSarathiTracesIterations drives a small workload and checks the ring
// captured each planned batch with the right composition and queue depths.
func TestSarathiTracesIterations(t *testing.T) {
	ring := trace.NewRing(64)
	s := NewSarathi(FCFS, 256)
	s.SetTracer(ring)

	a := req(1, 0, 156, 2, batchClass())
	b2 := req(2, 0, 100, 2, batchClass())
	s.Add(a, 0)
	s.Add(b2, 0)

	now := sim.Time(0)
	iters := 0
	for s.Pending() > 0 {
		b := s.PlanBatch(now)
		now += 40 * sim.Millisecond
		for _, p := range b.Prefill {
			p.Req.RecordPrefill(p.Tokens, now)
		}
		for _, d := range b.Decodes {
			d.RecordDecodeToken(now)
		}
		s.OnBatchComplete(b, now)
		iters++
	}

	got := ring.Snapshot(0)
	if len(got) != iters {
		t.Fatalf("traced %d iterations, ran %d", len(got), iters)
	}
	first := got[0]
	if first.Policy != "Sarathi-FCFS" {
		t.Errorf("policy = %q", first.Policy)
	}
	// First iteration: both prefills packed into the 256 budget, both
	// admissions folded in.
	if first.Batch.PrefillTokens != 256 || len(first.Batch.Prefill) != 2 {
		t.Errorf("first batch = %+v", first.Batch)
	}
	if first.QueueMain != 2 || first.QueueRelegated != 0 {
		t.Errorf("first queues = %d/%d", first.QueueMain, first.QueueRelegated)
	}
	if len(first.Events) != 2 || first.Events[0].Kind != trace.Admission {
		t.Errorf("first events = %+v", first.Events)
	}
	if first.Events[0].Req != 1 || first.Events[1].Req != 2 {
		t.Errorf("admission order = %+v", first.Events)
	}
	// Iteration latency is the virtual step we advanced by.
	if first.Actual != 40*sim.Millisecond {
		t.Errorf("actual = %v", first.Actual)
	}
	// Sequence numbers ascend from 1 and tokens are conserved across the
	// trace: total prefill tokens must equal the two prompts.
	tokens := 0
	for i, it := range got {
		if it.Seq != uint64(i+1) {
			t.Errorf("iteration %d has seq %d", i, it.Seq)
		}
		tokens += it.Batch.PrefillTokens
	}
	if want := a.PromptTokens + b2.PromptTokens; tokens != want {
		t.Errorf("traced prefill tokens = %d, want %d", tokens, want)
	}
}
