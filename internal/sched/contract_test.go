package sched

import (
	"math/rand"
	"testing"

	"qoserve/internal/model"
	"qoserve/internal/predictor"
	"qoserve/internal/qos"
	"qoserve/internal/request"
	"qoserve/internal/sim"
)

// contractFactories enumerates every baseline scheduler in this package for
// the randomized contract checker (the QoServe core scheduler runs the same
// harness from its own package via replica tests).
func contractFactories() map[string]func() Scheduler {
	mc := model.Llama3_8B_A100_TP1()
	pred := predictor.Oracle{Config: mc}
	return map[string]func() Scheduler{
		"sarathi-fcfs": func() Scheduler { return NewSarathi(FCFS, 256) },
		"sarathi-sjf":  func() Scheduler { return NewSarathi(SJF, 256) },
		"sarathi-srpf": func() Scheduler { return NewSarathi(SRPF, 256) },
		"sarathi-edf":  func() Scheduler { return NewSarathi(EDF, 256) },
		"medha":        func() Scheduler { return NewMedha(pred, 50*sim.Millisecond, 4096) },
		"vllm":         func() Scheduler { return NewVLLM(4096) },
		"slos-serve": func() Scheduler {
			return NewSLOsServe(256, mc.KVCapacityTokens(), 5000, 100*sim.Millisecond)
		},
	}
}

// TestSchedulerContract subjects every scheduler to randomized workloads
// and validates the sched.Scheduler contract each iteration:
//
//  1. prefill allocations reference only added, unfinished requests, at
//     most once per batch, never exceeding remaining prompt tokens;
//  2. decode entries are genuinely in decode phase and unique;
//  3. with pending work the scheduler eventually produces non-empty
//     batches (no livelock), and all requests drain to Done;
//  4. Pending() matches the ground truth count.
func TestSchedulerContract(t *testing.T) {
	for name, factory := range contractFactories() {
		name, factory := name, factory
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			for trial := 0; trial < 5; trial++ {
				runContractTrial(t, factory(), rng, trial)
			}
		})
	}
}

func runContractTrial(t *testing.T, s Scheduler, rng *rand.Rand, trial int) {
	t.Helper()
	classes := []qos.Class{
		{Name: "Q1", Kind: qos.Interactive,
			SLO: qos.SLO{TTFT: 6 * sim.Second, TBT: 50 * sim.Millisecond}},
		{Name: "Q2", Kind: qos.NonInteractive, SLO: qos.SLO{TTLT: 600 * sim.Second}},
	}
	n := 10 + rng.Intn(30)
	reqs := make([]*request.Request, n)
	for i := range reqs {
		reqs[i] = &request.Request{
			ID:           uint64(i + 1),
			App:          "app",
			Class:        classes[rng.Intn(len(classes))],
			Arrival:      sim.Time(rng.Intn(2000)) * sim.Millisecond,
			PromptTokens: 1 + rng.Intn(3000),
			DecodeTokens: 1 + rng.Intn(30),
		}
	}

	live := map[uint64]*request.Request{}
	now := sim.Time(0)
	idx := 0
	emptyStreak := 0
	for iter := 0; ; iter++ {
		if iter > 200000 {
			t.Fatalf("trial %d: no drain after %d iterations (pending %d)", trial, iter, s.Pending())
		}
		for idx < n && reqs[idx].Arrival <= now {
			s.Add(reqs[idx], now)
			live[reqs[idx].ID] = reqs[idx]
			idx++
		}
		if len(live) == 0 && idx >= n {
			break
		}

		b := s.PlanBatch(now)
		validateBatch(t, trial, iter, b, live)

		if b.Empty() {
			emptyStreak++
			if emptyStreak > 10 && len(live) > 0 && idx >= n {
				t.Fatalf("trial %d: scheduler idle with %d live requests", trial, len(live))
			}
			if idx < n {
				now = reqs[idx].Arrival
			} else {
				now += 10 * sim.Millisecond
			}
			continue
		}
		emptyStreak = 0

		now += sim.Time(10+rng.Intn(40)) * sim.Millisecond
		for _, p := range b.Prefill {
			p.Req.RecordPrefill(p.Tokens, now)
		}
		for _, d := range b.Decodes {
			d.RecordDecodeToken(now)
		}
		s.OnBatchComplete(b, now)
		for id, r := range live {
			if r.Phase() == request.Done {
				delete(live, id)
			}
		}
		if got := s.Pending(); got != len(live)+(n-idx)-countNotAdded(reqs[idx:]) {
			// Pending counts added-but-unfinished only.
			if got != len(live) {
				t.Fatalf("trial %d iter %d: Pending()=%d, live=%d", trial, iter, got, len(live))
			}
		}
	}
	if s.Pending() != 0 {
		t.Fatalf("trial %d: Pending()=%d after drain", trial, s.Pending())
	}
}

func countNotAdded(rest []*request.Request) int { return len(rest) }

func validateBatch(t *testing.T, trial, iter int, b Batch, live map[uint64]*request.Request) {
	t.Helper()
	seen := map[uint64]bool{}
	for _, p := range b.Prefill {
		if p.Req == nil {
			t.Fatalf("trial %d iter %d: nil prefill request", trial, iter)
		}
		if _, ok := live[p.Req.ID]; !ok {
			t.Fatalf("trial %d iter %d: prefill for unknown/finished request %d", trial, iter, p.Req.ID)
		}
		if seen[p.Req.ID] {
			t.Fatalf("trial %d iter %d: request %d appears twice", trial, iter, p.Req.ID)
		}
		seen[p.Req.ID] = true
		if p.Tokens <= 0 || p.Tokens > p.Req.RemainingPrefill() {
			t.Fatalf("trial %d iter %d: alloc %d tokens with %d remaining (req %d)",
				trial, iter, p.Tokens, p.Req.RemainingPrefill(), p.Req.ID)
		}
	}
	for _, d := range b.Decodes {
		if _, ok := live[d.ID]; !ok {
			t.Fatalf("trial %d iter %d: decode for unknown/finished request %d", trial, iter, d.ID)
		}
		if seen[d.ID] {
			t.Fatalf("trial %d iter %d: request %d in both roles", trial, iter, d.ID)
		}
		seen[d.ID] = true
		if d.Phase() != request.Decode {
			t.Fatalf("trial %d iter %d: decode entry in phase %v", trial, iter, d.Phase())
		}
	}
}

func TestVLLMStallsDecodesDuringPrefill(t *testing.T) {
	v := NewVLLM(4096)
	// One request decoding, one prompt waiting: vLLM must run the prompt
	// whole, without the decode.
	d := req(1, 0, 64, 10, batchClass())
	v.Add(d, 0)
	b := v.PlanBatch(0)
	if len(b.Prefill) != 1 || b.Prefill[0].Tokens != 64 {
		t.Fatalf("first batch = %v", b)
	}
	d.RecordPrefill(64, 40*sim.Millisecond)
	v.OnBatchComplete(b, 40*sim.Millisecond)

	p := req(2, 40*sim.Millisecond, 3000, 2, batchClass())
	v.Add(p, 40*sim.Millisecond)
	b = v.PlanBatch(40 * sim.Millisecond)
	if len(b.Decodes) != 0 {
		t.Error("vLLM included decodes in a prefill iteration")
	}
	if len(b.Prefill) != 1 || b.Prefill[0].Tokens != 3000 {
		t.Fatalf("prefill batch = %v, want whole 3000-token prompt", b)
	}
}

func TestVLLMBatchesWholePrompts(t *testing.T) {
	v := NewVLLM(1000)
	a := req(1, 0, 600, 2, batchClass())
	b2 := req(2, 0, 600, 2, batchClass())
	v.Add(a, 0)
	v.Add(b2, 0)
	b := v.PlanBatch(0)
	// 600+600 > 1000: only the first fits; prompts are never split.
	if len(b.Prefill) != 1 || b.Prefill[0].Req != a || b.Prefill[0].Tokens != 600 {
		t.Fatalf("batch = %v", b)
	}
	// An oversized prompt still runs whole, alone.
	v2 := NewVLLM(1000)
	huge := req(3, 0, 5000, 2, batchClass())
	v2.Add(huge, 0)
	b = v2.PlanBatch(0)
	if len(b.Prefill) != 1 || b.Prefill[0].Tokens != 5000 {
		t.Fatalf("oversized prompt batch = %v", b)
	}
}

func TestSLOsServeAdmissionRespectsKV(t *testing.T) {
	// Capacity for ~2 of the 3 requests (each ~1030 tokens -> 65 blocks;
	// capacity 130 blocks = 2080 tokens).
	s := NewSLOsServe(256, 2080, 5000, sim.Millisecond)
	for i := 1; i <= 3; i++ {
		s.Add(req(uint64(i), 0, 1000, 30, interactiveClass()), 0)
	}
	s.PlanBatch(sim.Millisecond)
	admitted := s.inner.Pending()
	if admitted != 2 {
		t.Fatalf("admitted %d requests into 2-request capacity", admitted)
	}
	if s.Pending() != 3 {
		t.Fatalf("Pending() = %d, want 3", s.Pending())
	}
	rounds, ops, _ := s.PlanningCost()
	if rounds != 1 || ops == 0 {
		t.Fatalf("planning cost rounds=%d ops=%d", rounds, ops)
	}
}

func TestSLOsServeValuesDeadlines(t *testing.T) {
	// Capacity for exactly one: the DP must pick the request that can
	// still meet its deadline over the doomed one.
	s := NewSLOsServe(256, 1200, 5000, sim.Millisecond)
	doomed := req(1, 0, 1000, 2, interactiveClass())
	now := 10 * sim.Second // past doomed's 6s TTFT
	feasible := req(2, now, 1000, 2, interactiveClass())
	s.Add(doomed, now)
	s.Add(feasible, now)
	s.PlanBatch(now)
	b := s.PlanBatch(now)
	if len(b.Prefill) == 0 || b.Prefill[0].Req != feasible {
		t.Fatalf("DP admitted %v first, want the feasible request", b.Prefill)
	}
}

func TestSLOsServeName(t *testing.T) {
	names := map[string]Scheduler{
		"SLOs-Serve": NewSLOsServe(0, 1000, 0, 0),
		"vLLM":       NewVLLM(0),
	}
	for want, s := range names {
		if s.Name() != want {
			t.Errorf("Name() = %q, want %q", s.Name(), want)
		}
	}
}

func TestRateLimitedRejectsAtThreshold(t *testing.T) {
	rl := NewRateLimited(NewSarathi(FCFS, 256), 2)
	a := req(1, 0, 100, 2, batchClass())
	b := req(2, 0, 100, 2, batchClass())
	c := req(3, 0, 100, 2, batchClass())
	rl.Add(a, 0)
	rl.Add(b, 0)
	rl.Add(c, 0) // over threshold: rejected
	if rl.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", rl.Pending())
	}
	if got := rl.Rejected(); len(got) != 1 || got[0] != c {
		t.Fatalf("rejected = %v", got)
	}
	if rl.Name() != "Sarathi-FCFS+RateLimit" {
		t.Errorf("name = %q", rl.Name())
	}
	// The rejected request never progresses.
	batch := rl.PlanBatch(0)
	for _, p := range batch.Prefill {
		if p.Req == c {
			t.Fatal("rejected request scheduled")
		}
	}
	// Default threshold applied for nonsense values.
	if NewRateLimited(NewSarathi(FCFS, 256), -1).MaxQueue != 64 {
		t.Error("default threshold not applied")
	}
}
