package sched

import (
	"qoserve/internal/request"
	"qoserve/internal/sim"
)

// RateLimited wraps a scheduler with the §2.2 "rate limiting" overload
// mechanism the paper criticises: when the queue of waiting-for-prefill
// requests exceeds a threshold, new arrivals are rejected outright —
// regardless of their importance or how close they are to their deadlines.
// Rejected requests never execute; they surface in metrics as violated,
// never-completed requests, which is exactly the poor user experience the
// paper contrasts with eager relegation's graceful degradation.
type RateLimited struct {
	Inner Scheduler
	// MaxQueue is the admission threshold on Inner's pending count.
	MaxQueue int

	rejected []*request.Request
}

// NewRateLimited wraps inner with a queue-threshold admission limiter.
func NewRateLimited(inner Scheduler, maxQueue int) *RateLimited {
	if maxQueue <= 0 {
		maxQueue = 64
	}
	return &RateLimited{Inner: inner, MaxQueue: maxQueue}
}

// Name identifies the scheduler.
func (r *RateLimited) Name() string { return r.Inner.Name() + "+RateLimit" }

// Add admits the request unless the system is at its queue threshold.
func (r *RateLimited) Add(req *request.Request, now sim.Time) {
	if r.Inner.Pending() >= r.MaxQueue {
		r.rejected = append(r.rejected, req)
		return
	}
	r.Inner.Add(req, now)
}

// PlanBatch delegates to the wrapped scheduler.
func (r *RateLimited) PlanBatch(now sim.Time) Batch { return r.Inner.PlanBatch(now) }

// OnBatchComplete delegates to the wrapped scheduler.
func (r *RateLimited) OnBatchComplete(b Batch, now sim.Time) { r.Inner.OnBatchComplete(b, now) }

// Pending counts only admitted, unfinished requests; rejected requests are
// gone from the system's perspective.
func (r *RateLimited) Pending() int { return r.Inner.Pending() }

// Rejected returns the requests turned away so far.
func (r *RateLimited) Rejected() []*request.Request { return r.rejected }
