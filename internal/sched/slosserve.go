package sched

import (
	"time"

	"qoserve/internal/kvcache"
	"qoserve/internal/request"
	"qoserve/internal/sim"
)

// SLOsServe is a simplified reimplementation of SLOs-Serve [8] for the
// paper's §4.5.3 comparison. SLOs-Serve periodically solves a dynamic
// program over all queued requests and the KV-block budget to pick the
// admission set that maximizes SLO attainment; admitted requests then run
// under deadline-ordered chunked prefill. The paper's criticism is not
// quality but *complexity*: the DP costs O(N_new x M) per planning round
// (N_new queued requests, M KV blocks), against QoServe's O(log N_new)
// priority-queue operations. This implementation counts DP cell updates
// and wall-clock planning time so the "slosserve" experiment can reproduce
// that scaling argument with measurements.
type SLOsServe struct {
	inner   *Sarathi // admitted requests run as deadline-ordered Sarathi
	waiting Queue    // not-yet-admitted arrivals, EDF-keyed

	blockTokens int
	totalBlocks int

	planPeriod sim.Time
	lastPlan   sim.Time
	planned    bool

	// Planning-cost accounting for the §4.5.3 comparison.
	planRounds  int
	dpCellOps   uint64
	planWall    time.Duration
	serviceRate float64 // assumed tokens/s for deadline projections

	TraceState
}

// NewSLOsServe builds the scheduler. kvCapacityTokens should match the
// replica's cache so the DP knapsack capacity is realistic; serviceRate is
// the assumed prefill service rate for deadline projections.
func NewSLOsServe(chunk, kvCapacityTokens int, serviceRate float64, planPeriod sim.Time) *SLOsServe {
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	if planPeriod <= 0 {
		planPeriod = 250 * sim.Millisecond
	}
	if serviceRate <= 0 {
		serviceRate = 5000
	}
	return &SLOsServe{
		inner:       NewSarathi(EDF, chunk),
		blockTokens: kvcache.DefaultBlockTokens,
		totalBlocks: kvCapacityTokens / kvcache.DefaultBlockTokens,
		planPeriod:  planPeriod,
		serviceRate: serviceRate,
	}
}

// Name identifies the scheduler.
func (s *SLOsServe) Name() string { return "SLOs-Serve" }

// Add holds the arrival for the next admission round.
func (s *SLOsServe) Add(r *request.Request, now sim.Time) {
	s.waiting.Insert(r, r.FirstTokenDeadline().Seconds())
	s.TraceAdmission(r.ID, r.Class.Name, now)
}

// PlanBatch runs the periodic admission DP, then delegates batch
// construction to the inner deadline scheduler.
func (s *SLOsServe) PlanBatch(now sim.Time) Batch {
	if !s.planned || now-s.lastPlan >= s.planPeriod {
		s.admissionDP(now)
		s.lastPlan = now
		s.planned = true
	}
	// Liveness: with nothing running and nothing admitted, force-admit
	// the earliest-deadline waiter so doomed requests still complete.
	if s.inner.Pending() == 0 {
		if r := s.waiting.PopFront(); r != nil {
			s.inner.Add(r, now)
		}
	}
	b := s.inner.PlanBatch(now)
	// The inner Sarathi never has a tracer attached, so records come from
	// here under this policy's name, counting not-yet-admitted waiters in
	// the main queue depth.
	s.TracePlan(s.Name(), b, now, 0, s.inner.queue.Len()+s.waiting.Len(), 0)
	return b
}

// admissionDP solves a 0/1 knapsack over (waiting requests x free KV
// blocks): each request costs its full-context block count and is worth 1
// if admitting it now projects to meet its deadline (0 otherwise, but such
// requests may still be chosen when capacity is spare, keeping them from
// starving). This is the O(N_new x M) loop the paper's complexity argument
// targets.
func (s *SLOsServe) admissionDP(now sim.Time) {
	n := s.waiting.Len()
	if n == 0 {
		return
	}
	s.planRounds++
	//lint:ignore detdrift PlanningCost deliberately measures real planning wall time for the §4.5.3 overhead comparison; it never feeds scheduling decisions or simulated time.
	start := time.Now()

	// Free blocks = total minus what admitted (running) requests hold.
	used := 0
	for _, r := range s.inner.queue.Items() {
		used += s.blocksFor(r.TotalTokens())
	}
	for _, r := range s.inner.decodes {
		used += s.blocksFor(r.TotalTokens())
	}
	capBlocks := s.totalBlocks - used
	if capBlocks <= 0 {
		return
	}

	type item struct {
		r     *request.Request
		cost  int
		value int
	}
	items := make([]item, 0, n)
	for _, r := range s.waiting.Items() {
		value := 1
		if !s.meetsDeadline(r, now) {
			value = 0
		}
		items = append(items, item{r: r, cost: s.blocksFor(r.TotalTokens()), value: value})
	}

	// dp[b] = best (value, count) using blocks <= b; keep[i][b] records
	// choices for reconstruction. To bound memory at realistic M (tens of
	// thousands of blocks), the DP stores one row and per-item bitsets.
	dp := make([]int32, capBlocks+1)
	keep := make([][]bool, len(items))
	for i, it := range items {
		keep[i] = make([]bool, capBlocks+1)
		if it.cost > capBlocks {
			continue
		}
		// Secondary objective: prefer admitting more requests, encoded by
		// a small epsilon on value.
		val := int32(it.value)*1024 + 1
		for b := capBlocks; b >= it.cost; b-- {
			s.dpCellOps++
			if dp[b-it.cost]+val > dp[b] {
				dp[b] = dp[b-it.cost] + val
				keep[i][b] = true
			}
		}
	}

	// Reconstruct the chosen set.
	b := capBlocks
	chosen := make([]bool, len(items))
	for i := len(items) - 1; i >= 0; i-- {
		if keep[i][b] {
			chosen[i] = true
			b -= items[i].cost
		}
	}
	for i, it := range items {
		if chosen[i] {
			s.waiting.Remove(it.r)
			s.inner.Add(it.r, now)
		}
	}
	//lint:ignore detdrift planWall is the §4.5.3 overhead measurement; wall time is the quantity being reported, not simulation state.
	s.planWall += time.Since(start)
}

// meetsDeadline projects whether r meets its deadline if admitted now at
// the assumed service rate.
func (s *SLOsServe) meetsDeadline(r *request.Request, now sim.Time) bool {
	first := now + sim.FromSeconds(float64(r.RemainingPrefill())/s.serviceRate)
	return first <= r.FirstTokenDeadline()
}

func (s *SLOsServe) blocksFor(tokens int) int {
	return (tokens + s.blockTokens - 1) / s.blockTokens
}

// OnBatchComplete delegates to the inner scheduler.
func (s *SLOsServe) OnBatchComplete(b Batch, now sim.Time) {
	s.TraceComplete(now)
	s.inner.OnBatchComplete(b, now)
}

// Pending counts waiting plus running requests.
func (s *SLOsServe) Pending() int { return s.waiting.Len() + s.inner.Pending() }

// QueueLen reports (main, relegated, decode) queue sizes; un-admitted
// waiters count toward the main queue.
func (s *SLOsServe) QueueLen() (main, relegated, decode int) {
	innerMain, _, decode := s.inner.QueueLen()
	return innerMain + s.waiting.Len(), 0, decode
}

// PlanningCost reports the accumulated DP cost: rounds, cell updates, and
// wall time.
func (s *SLOsServe) PlanningCost() (rounds int, cellOps uint64, wall time.Duration) {
	return s.planRounds, s.dpCellOps, s.planWall
}
