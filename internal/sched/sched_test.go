package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qoserve/internal/model"
	"qoserve/internal/predictor"
	"qoserve/internal/qos"
	"qoserve/internal/request"
	"qoserve/internal/sim"
)

func interactiveClass() qos.Class {
	return qos.Class{Name: "Q1", Kind: qos.Interactive,
		SLO: qos.SLO{TTFT: 6 * sim.Second, TBT: 50 * sim.Millisecond}}
}

func batchClass() qos.Class {
	return qos.Class{Name: "Q3", Kind: qos.NonInteractive,
		SLO: qos.SLO{TTLT: 1800 * sim.Second}}
}

func req(id uint64, arrival sim.Time, prompt, decode int, class qos.Class) *request.Request {
	return &request.Request{ID: id, App: class.Name, Class: class,
		Arrival: arrival, PromptTokens: prompt, DecodeTokens: decode}
}

func TestQueueOrdering(t *testing.T) {
	var q Queue
	a := req(1, 0, 10, 1, batchClass())
	b := req(2, 0, 10, 1, batchClass())
	c := req(3, 0, 10, 1, batchClass())
	q.Insert(b, 2)
	q.Insert(a, 1)
	q.Insert(c, 3)
	if q.Len() != 3 || q.Front() != a {
		t.Fatalf("front = %v", q.Front())
	}
	if q.PopFront() != a || q.PopFront() != b || q.PopFront() != c {
		t.Fatal("pop order wrong")
	}
	if q.PopFront() != nil || q.Front() != nil {
		t.Fatal("empty queue not nil")
	}
}

func TestQueueTieBreakByID(t *testing.T) {
	var q Queue
	b := req(2, 0, 10, 1, batchClass())
	a := req(1, 0, 10, 1, batchClass())
	q.Insert(b, 5)
	q.Insert(a, 5)
	if q.At(0) != a || q.At(1) != b {
		t.Fatal("equal keys not ordered by ID")
	}
}

func TestQueueRemove(t *testing.T) {
	var q Queue
	a := req(1, 0, 10, 1, batchClass())
	b := req(2, 0, 10, 1, batchClass())
	q.Insert(a, 1)
	q.Insert(b, 2)
	if !q.Remove(a) {
		t.Fatal("Remove existing returned false")
	}
	if q.Remove(a) {
		t.Fatal("Remove missing returned true")
	}
	if q.Len() != 1 || q.Front() != b {
		t.Fatal("queue state after remove wrong")
	}
}

// Property: any insertion sequence yields a non-decreasing key sequence.
func TestQueueSortedProperty(t *testing.T) {
	f := func(keys []float64) bool {
		var q Queue
		for i, k := range keys {
			q.Insert(req(uint64(i+1), 0, 10, 1, batchClass()), k)
		}
		for i := 1; i < q.Len(); i++ {
			if q.KeyAt(i) < q.KeyAt(i-1) {
				return false
			}
		}
		return q.Len() == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{
		FCFS: "FCFS", SJF: "SJF", SRPF: "SRPF", EDF: "EDF", Policy(8): "Policy(8)",
	} {
		if p.String() != want {
			t.Errorf("Policy(%d).String() = %q", int(p), p.String())
		}
	}
}

func TestSarathiFCFSOrder(t *testing.T) {
	s := NewSarathi(FCFS, 256)
	early := req(1, sim.Second, 1000, 2, batchClass())
	late := req(2, 2*sim.Second, 10, 2, batchClass())
	s.Add(late, 2*sim.Second)
	s.Add(early, 2*sim.Second)
	b := s.PlanBatch(2 * sim.Second)
	if len(b.Prefill) == 0 || b.Prefill[0].Req != early {
		t.Fatalf("FCFS served %v first", b.Prefill)
	}
	if b.Prefill[0].Tokens != 256 {
		t.Fatalf("chunk = %d, want 256", b.Prefill[0].Tokens)
	}
}

func TestSarathiPacksMultiplePrefills(t *testing.T) {
	s := NewSarathi(FCFS, 256)
	a := req(1, 0, 100, 2, batchClass())
	b2 := req(2, sim.Millisecond, 500, 2, batchClass())
	s.Add(a, sim.Millisecond)
	s.Add(b2, sim.Millisecond)
	b := s.PlanBatch(sim.Millisecond)
	if len(b.Prefill) != 2 {
		t.Fatalf("packed %d prefills, want 2", len(b.Prefill))
	}
	if b.Prefill[0].Tokens != 100 || b.Prefill[1].Tokens != 156 {
		t.Fatalf("allocs = %d,%d want 100,156", b.Prefill[0].Tokens, b.Prefill[1].Tokens)
	}
	if b.NewTokens() != 256 {
		t.Fatalf("batch tokens = %d", b.NewTokens())
	}
}

func TestSarathiBudgetSharedWithDecodes(t *testing.T) {
	s := NewSarathi(FCFS, 256)
	// Put one request into decode phase.
	d := req(1, 0, 64, 5, batchClass())
	s.Add(d, 0)
	b := s.PlanBatch(0)
	d.RecordPrefill(64, 40*sim.Millisecond)
	s.OnBatchComplete(b, 40*sim.Millisecond)
	if s.DecodeLen() != 1 {
		t.Fatalf("decode len = %d", s.DecodeLen())
	}
	// New prefill arrives; budget should be 256-1 decode = 255.
	p := req(2, 50*sim.Millisecond, 1000, 2, batchClass())
	s.Add(p, 50*sim.Millisecond)
	b = s.PlanBatch(50 * sim.Millisecond)
	if len(b.Decodes) != 1 {
		t.Fatalf("decodes in batch = %d", len(b.Decodes))
	}
	if len(b.Prefill) != 1 || b.Prefill[0].Tokens != 255 {
		t.Fatalf("prefill alloc = %+v, want 255 tokens", b.Prefill)
	}
}

func TestSarathiEDFOrder(t *testing.T) {
	s := NewSarathi(EDF, 256)
	// Interactive deadline = arrival+6s; batch deadline = arrival+1800s.
	urgent := req(1, 10*sim.Second, 500, 2, interactiveClass())
	relaxed := req(2, sim.Second, 500, 2, batchClass())
	s.Add(relaxed, 10*sim.Second)
	s.Add(urgent, 10*sim.Second)
	b := s.PlanBatch(10 * sim.Second)
	if b.Prefill[0].Req != urgent {
		t.Fatal("EDF did not pick the earliest deadline")
	}
}

func TestSarathiSRPFReordersOnProgress(t *testing.T) {
	s := NewSarathi(SRPF, 100)
	big := req(1, 0, 150, 2, batchClass())
	s.Add(big, 0)
	b := s.PlanBatch(0)
	if b.Prefill[0].Req != big || b.Prefill[0].Tokens != 100 {
		t.Fatalf("first alloc = %+v", b.Prefill)
	}
	big.RecordPrefill(100, 40*sim.Millisecond)
	s.OnBatchComplete(b, 40*sim.Millisecond)

	// A fresh request with 120 remaining: big now has only 50 remaining,
	// so SRPF keeps big first.
	mid := req(2, 40*sim.Millisecond, 120, 2, batchClass())
	s.Add(mid, 40*sim.Millisecond)
	b = s.PlanBatch(40 * sim.Millisecond)
	if b.Prefill[0].Req != big {
		t.Fatal("SRPF did not prefer the smaller remaining prefill")
	}
}

func TestSarathiSJFUsesEstimate(t *testing.T) {
	s := NewSarathi(SJF, 256)
	// Train history: app "short" decodes 10 tokens, app "long" 500.
	for i := 0; i < 20; i++ {
		s.est.Observe("short", 10)
		s.est.Observe("long", 500)
	}
	a := req(1, 0, 300, 10, batchClass())
	a.App = "long"
	b2 := req(2, 0, 300, 10, batchClass())
	b2.App = "short"
	s.Add(a, 0)
	s.Add(b2, 0)
	b := s.PlanBatch(0)
	if b.Prefill[0].Req != b2 {
		t.Fatal("SJF did not prefer the shorter estimated job")
	}
}

func TestSarathiLifecycleAccounting(t *testing.T) {
	s := NewSarathi(FCFS, 256)
	r := req(1, 0, 100, 3, batchClass())
	s.Add(r, 0)
	if main, _, _ := s.QueueLen(); s.Pending() != 1 || main != 1 {
		t.Fatal("add not reflected")
	}
	now := sim.Time(0)
	for s.Pending() > 0 {
		b := s.PlanBatch(now)
		if b.Empty() {
			t.Fatal("empty batch with pending work")
		}
		now += 40 * sim.Millisecond
		for _, p := range b.Prefill {
			p.Req.RecordPrefill(p.Tokens, now)
		}
		for _, d := range b.Decodes {
			d.RecordDecodeToken(now)
		}
		s.OnBatchComplete(b, now)
	}
	if r.Phase() != request.Done {
		t.Fatalf("request phase = %v", r.Phase())
	}
	if main, _, decode := s.QueueLen(); main != 0 || decode != 0 {
		t.Fatal("queues not drained")
	}
}

func TestBatchShape(t *testing.T) {
	a := req(1, 0, 100, 2, batchClass())
	a.RecordPrefill(30, sim.Millisecond)
	d := req(2, 0, 50, 5, batchClass())
	d.RecordPrefill(50, sim.Millisecond)
	d.RecordDecodeToken(2 * sim.Millisecond)
	b := Batch{
		Prefill: []PrefillAlloc{{Req: a, Tokens: 40}},
		Decodes: []*request.Request{d},
	}
	shape := b.Shape()
	want := model.BatchShape{
		Prefill:   []model.ChunkShape{{Tokens: 40, CtxStart: 30}},
		DecodeCtx: []int{52},
	}
	if len(shape.Prefill) != 1 || shape.Prefill[0] != want.Prefill[0] {
		t.Errorf("shape prefill = %+v", shape.Prefill)
	}
	if len(shape.DecodeCtx) != 1 || shape.DecodeCtx[0] != 52 {
		t.Errorf("shape decode ctx = %v", shape.DecodeCtx)
	}
	if b.Empty() {
		t.Error("non-empty batch reported empty")
	}
	if (Batch{}).Empty() == false {
		t.Error("empty batch not reported empty")
	}
	if b.String() == "" {
		t.Error("empty String()")
	}
}

func TestMedhaShrinksChunksAcrossLongPrefill(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	pred := predictor.Oracle{Config: mc}
	m := NewMedha(pred, 150*sim.Millisecond, 4096)
	// One giant prompt: as prefill progresses, attention over the
	// processed context grows, so the TBT-fitting chunk shrinks.
	r := req(1, 0, 60000, 5, batchClass())
	r.PromptTokens = 60000
	m.Add(r, 0)
	var chunks []int
	now := sim.Time(0)
	for i := 0; i < 40 && r.Phase() != request.Decode && r.Phase() != request.Done; i++ {
		b := m.PlanBatch(now)
		if len(b.Prefill) != 1 {
			t.Fatalf("iteration %d: %d prefills", i, len(b.Prefill))
		}
		chunks = append(chunks, b.Prefill[0].Tokens)
		now += mc.BatchTime(b.Shape())
		for _, p := range b.Prefill {
			p.Req.RecordPrefill(p.Tokens, now)
		}
		m.OnBatchComplete(b, now)
	}
	if len(chunks) < 5 {
		t.Fatalf("only %d chunks planned", len(chunks))
	}
	if chunks[len(chunks)-1] >= chunks[0] {
		t.Errorf("chunks did not shrink: first %d, last %d", chunks[0], chunks[len(chunks)-1])
	}
	for i, c := range chunks {
		if c <= 0 {
			t.Fatalf("chunk %d = %d", i, c)
		}
	}
}

func TestMedhaFloorsChunkForProgress(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	pred := predictor.Oracle{Config: mc}
	// TBT target below even the iteration overhead: Medha must still move.
	m := NewMedha(pred, sim.Millisecond, 4096)
	r := req(1, 0, 100, 2, batchClass())
	m.Add(r, 0)
	b := m.PlanBatch(0)
	if len(b.Prefill) != 1 || b.Prefill[0].Tokens <= 0 {
		t.Fatalf("no progress under tight TBT: %+v", b.Prefill)
	}
}

func TestSarathiRandomizedConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		s := NewSarathi(Policy(rng.Intn(4)), 128+rng.Intn(512))
		var reqs []*request.Request
		for i := 0; i < 30; i++ {
			reqs = append(reqs, req(uint64(i+1), sim.Time(rng.Intn(100))*sim.Millisecond,
				1+rng.Intn(2000), 1+rng.Intn(20), batchClass()))
		}
		for _, r := range reqs {
			s.Add(r, r.Arrival)
		}
		now := 100 * sim.Millisecond
		for iter := 0; s.Pending() > 0; iter++ {
			if iter > 100000 {
				t.Fatal("scheduler did not drain")
			}
			b := s.PlanBatch(now)
			now += 30 * sim.Millisecond
			for _, p := range b.Prefill {
				p.Req.RecordPrefill(p.Tokens, now)
			}
			for _, d := range b.Decodes {
				d.RecordDecodeToken(now)
			}
			s.OnBatchComplete(b, now)
		}
		for _, r := range reqs {
			if r.Phase() != request.Done {
				t.Fatalf("request %d not done", r.ID)
			}
		}
	}
}
