package sched

import (
	"fmt"

	"qoserve/internal/estimate"
	"qoserve/internal/request"
	"qoserve/internal/sim"
)

// Policy selects the prefill ordering of the Sarathi baseline scheduler.
type Policy int

// Baseline scheduling policies (§2.4).
const (
	// FCFS serves prefills in arrival order.
	FCFS Policy = iota
	// SJF serves the job with the shortest expected total work first
	// (prompt plus estimated decode length).
	SJF
	// SRPF serves the request with the fewest outstanding prompt tokens
	// first, re-evaluated as prefill progresses.
	SRPF
	// EDF serves the request with the earliest deadline first.
	EDF
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case FCFS:
		return "FCFS"
	case SJF:
		return "SJF"
	case SRPF:
		return "SRPF"
	case EDF:
		return "EDF"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// DefaultChunk is the fixed token budget the paper's shared-cluster
// baselines use, dictated by the strictest (50 ms) TBT tier.
const DefaultChunk = 256

// RelaxedChunk is the large budget the siloed baselines use for the
// latency-tolerant tiers.
const RelaxedChunk = 2048

// Sarathi is the Sarathi-Serve baseline: chunked prefill with a fixed
// per-iteration token budget, piggybacking all decodes on each batch, with
// a pluggable prefill-ordering policy.
type Sarathi struct {
	policy  Policy
	chunk   int
	name    string // cached: Name is called on every traced plan
	queue   Queue
	decodes []*request.Request
	est     *estimate.Tracker
	pending int
	// prefill is the reusable allocation scratch handed out as each
	// batch's Prefill slice; valid because at most one planned batch is
	// outstanding per scheduler (see the Scheduler contract).
	prefill []PrefillAlloc
	TraceState
}

// NewSarathi returns a Sarathi scheduler with the given ordering policy and
// per-iteration token budget (DefaultChunk if chunk is 0).
func NewSarathi(policy Policy, chunk int) *Sarathi {
	if chunk == 0 {
		chunk = DefaultChunk
	}
	return &Sarathi{policy: policy, chunk: chunk, name: "Sarathi-" + policy.String(), est: estimate.NewTracker()}
}

// Name identifies the scheduler in experiment output.
func (s *Sarathi) Name() string { return s.name }

// Chunk returns the fixed token budget.
func (s *Sarathi) Chunk() int { return s.chunk }

// key computes the ordering key of r under the configured policy.
func (s *Sarathi) key(r *request.Request) float64 {
	switch s.policy {
	case SJF:
		return float64(r.PromptTokens + r.EstDecodeTokens)
	case SRPF:
		return float64(r.RemainingPrefill())
	case EDF:
		return r.FirstTokenDeadline().Seconds()
	default: // FCFS
		return r.Arrival.Seconds()
	}
}

// Add enqueues a new arrival. A pre-set EstDecodeTokens is respected;
// otherwise the per-app history supplies it (SJF needs total-work
// estimates).
func (s *Sarathi) Add(r *request.Request, now sim.Time) {
	if r.EstDecodeTokens == 0 {
		r.EstDecodeTokens = s.est.Estimate(r.App)
	}
	s.pending++
	s.queue.Insert(r, s.key(r))
	s.TraceAdmission(r.ID, r.Class.Name, now)
}

// PlanBatch packs all decodes plus prefill chunks up to the fixed token
// budget, in policy order.
func (s *Sarathi) PlanBatch(now sim.Time) Batch {
	b := Batch{Decodes: s.decodes, Prefill: s.prefill[:0]}
	budget := s.chunk - len(s.decodes)
	for i := 0; i < s.queue.Len() && budget > 0; i++ {
		r := s.queue.At(i)
		take := r.RemainingPrefill()
		if take > budget {
			take = budget
		}
		b.Prefill = append(b.Prefill, PrefillAlloc{Req: r, Tokens: take})
		budget -= take
	}
	s.prefill = b.Prefill[:0]
	if s.Tracing() {
		s.TracePlan(s.Name(), b, now, 0, s.queue.Len(), 0)
	}
	return b
}

// OnBatchComplete re-files prefilled requests by their post-iteration phase.
func (s *Sarathi) OnBatchComplete(b Batch, now sim.Time) {
	s.TraceComplete(now)
	for _, p := range b.Prefill {
		s.queue.Remove(p.Req)
		switch p.Req.Phase() {
		case request.Prefill:
			s.queue.Insert(p.Req, s.key(p.Req)) // re-keys SRPF
		case request.Decode:
			s.decodes = append(s.decodes, p.Req)
		case request.Done: // single-token request finished at prefill
			s.finish(p.Req)
		}
	}
	live := s.decodes[:0]
	for _, r := range s.decodes {
		if r.Phase() == request.Done {
			s.finish(r)
		} else {
			live = append(live, r)
		}
	}
	s.decodes = live
}

func (s *Sarathi) finish(r *request.Request) {
	s.est.Observe(r.App, r.DecodeTokens)
	s.pending--
}

// Pending is the number of unfinished requests.
func (s *Sarathi) Pending() int { return s.pending }

// QueueLen reports (main, relegated, decode) queue sizes; Sarathi has no
// relegated queue.
func (s *Sarathi) QueueLen() (main, relegated, decode int) {
	return s.queue.Len(), 0, len(s.decodes)
}

// DecodeLen is the number of requests in decode phase.
func (s *Sarathi) DecodeLen() int { return len(s.decodes) }
