package sched

import (
	"qoserve/internal/request"
	"qoserve/internal/sim"
)

// VLLM is the vanilla (pre-chunked-prefill) vLLM scheduler: iterations are
// either prefill-only — every waiting prompt is processed whole, batched up
// to a token limit — or decode-only. Prefills take priority ("prefill
// prioritizing"), which maximizes admission throughput but stalls ongoing
// decodes for the entire duration of long prompts, inflating TBT. The paper
// omits this baseline because Sarathi's chunking strictly dominates it
// (§4, Baselines); implementing it lets the repository demonstrate that
// claim (see the "vllm" experiment).
type VLLM struct {
	maxBatchTokens int
	queue          Queue
	decodes        []*request.Request
	pending        int
	TraceState
}

// DefaultVLLMBatchTokens bounds a prefill-only batch, mirroring vLLM's
// max_num_batched_tokens.
const DefaultVLLMBatchTokens = 8192

// NewVLLM returns a vanilla vLLM scheduler with the given prefill batch
// token limit (DefaultVLLMBatchTokens if zero). Prefills are admitted FCFS.
func NewVLLM(maxBatchTokens int) *VLLM {
	if maxBatchTokens <= 0 {
		maxBatchTokens = DefaultVLLMBatchTokens
	}
	return &VLLM{maxBatchTokens: maxBatchTokens}
}

// Name identifies the scheduler.
func (v *VLLM) Name() string { return "vLLM" }

// Add enqueues an arrival in FCFS order.
func (v *VLLM) Add(r *request.Request, now sim.Time) {
	v.pending++
	v.queue.Insert(r, r.Arrival.Seconds())
	v.TraceAdmission(r.ID, r.Class.Name, now)
}

// PlanBatch builds either a prefill-only batch (whole prompts, FCFS, up to
// the token limit) or, when no prompts wait, a decode-only batch.
func (v *VLLM) PlanBatch(now sim.Time) Batch {
	if v.queue.Len() > 0 {
		b := Batch{}
		budget := v.maxBatchTokens
		for i := 0; i < v.queue.Len(); i++ {
			r := v.queue.At(i)
			need := r.RemainingPrefill()
			if need > budget && len(b.Prefill) > 0 {
				break // whole prompts only; next iteration takes it
			}
			if need > budget {
				// A single prompt larger than the limit still runs whole
				// (vLLM admits it alone).
				budget = need
			}
			b.Prefill = append(b.Prefill, PrefillAlloc{Req: r, Tokens: need})
			budget -= need
			if budget <= 0 {
				break
			}
		}
		v.TracePlan(v.Name(), b, now, 0, v.queue.Len(), 0)
		return b
	}
	b := Batch{Decodes: v.decodes}
	v.TracePlan(v.Name(), b, now, 0, v.queue.Len(), 0)
	return b
}

// OnBatchComplete re-files requests by phase.
func (v *VLLM) OnBatchComplete(b Batch, now sim.Time) {
	v.TraceComplete(now)
	for _, p := range b.Prefill {
		v.queue.Remove(p.Req)
		switch p.Req.Phase() {
		case request.Queued, request.Prefill:
			// KV deferral can leave the prompt unprocessed; requeue.
			v.queue.Insert(p.Req, p.Req.Arrival.Seconds())
		case request.Decode:
			v.decodes = append(v.decodes, p.Req)
		case request.Done:
			v.pending--
		}
	}
	live := v.decodes[:0]
	for _, r := range v.decodes {
		if r.Phase() == request.Done {
			v.pending--
		} else {
			live = append(live, r)
		}
	}
	v.decodes = live
}

// Pending is the number of unfinished requests.
func (v *VLLM) Pending() int { return v.pending }

// QueueLen reports (main, relegated, decode) queue sizes; vLLM has no
// relegated queue.
func (v *VLLM) QueueLen() (main, relegated, decode int) {
	return v.queue.Len(), 0, len(v.decodes)
}
