package sched

import (
	"qoserve/internal/sim"
	"qoserve/internal/trace"
)

// Traceable is implemented by every scheduler in this repository: it lets a
// server (or experiment harness) attach a trace.Tracer to watch scheduling
// decisions live. Tracing is off by default; SetTracer(nil) turns it back
// off.
type Traceable interface {
	SetTracer(t trace.Tracer)
}

// QueueReporter exposes live queue depths: prefill-phase requests waiting
// in the main queue, requests in a relegated queue (zero for policies
// without relegation), and in-flight decodes. GET /debug/queues and the
// per-iteration trace records both read it.
type QueueReporter interface {
	QueueLen() (main, relegated, decode int)
}

// TraceBatch converts a planned batch into its trace form. Callers must
// only invoke it when tracing is enabled — it allocates.
func TraceBatch(b Batch) trace.BatchTrace {
	bt := trace.BatchTrace{Decodes: len(b.Decodes)}
	if len(b.Prefill) > 0 {
		bt.Prefill = make([]trace.PrefillSlice, len(b.Prefill))
		for i, p := range b.Prefill {
			bt.Prefill[i] = trace.PrefillSlice{
				Req:      p.Req.ID,
				Tokens:   p.Tokens,
				CtxStart: p.Req.PrefilledTokens,
			}
			bt.PrefillTokens += p.Tokens
		}
	}
	return bt
}

// TraceState is the tracing state shared by the baseline schedulers. It is
// embedded in each policy struct, providing the Traceable implementation
// and the plan/complete record pairing. The zero value is a disabled
// tracer; every method is a single branch when disabled (see
// TestTraceDisabledZeroAlloc).
type TraceState struct {
	tracer  trace.Tracer
	it      trace.Iteration
	planned bool
}

// SetTracer attaches t (nil disables tracing).
func (x *TraceState) SetTracer(t trace.Tracer) {
	if t != nil && !t.Enabled() {
		t = nil
	}
	x.tracer = t
}

// Tracing reports whether records should be built; callers that do extra
// work to assemble a record (e.g. an additional predictor call) must check
// it first.
//
//qoserve:hotpath
func (x *TraceState) Tracing() bool { return x.tracer != nil }

// TraceEvent logs a point occurrence (relegation, boost, preemption).
//
//qoserve:hotpath
func (x *TraceState) TraceEvent(e trace.Event) {
	if x.tracer == nil {
		return
	}
	x.tracer.RecordEvent(e)
}

// TraceAdmission logs an arrival.
//
//qoserve:hotpath
func (x *TraceState) TraceAdmission(id uint64, class string, now sim.Time) {
	if x.tracer == nil {
		return
	}
	x.tracer.RecordEvent(trace.Event{At: now, Kind: trace.Admission, Req: id, Class: class})
}

// TracePlan snapshots one planned batch; the record is committed by
// TraceComplete.
//
//qoserve:hotpath
func (x *TraceState) TracePlan(policy string, b Batch, now, predicted sim.Time, main, relegated int) {
	if x.tracer == nil {
		return
	}
	x.it = trace.Iteration{
		Policy:    policy,
		PlannedAt: now,
		//lint:ignore hotpathalloc TraceBatch allocates by contract, and this line is only reached with a tracer attached; the disabled path returned above (TestTraceDisabledZeroAlloc).
		Batch:          TraceBatch(b),
		Predicted:      predicted,
		QueueMain:      main,
		QueueRelegated: relegated,
		QueueDecode:    len(b.Decodes),
	}
	x.planned = true
}

// TraceComplete stamps the completion time and commits the pending record.
// Schedulers call it from OnBatchComplete; a completion with no planned
// record (tracer attached mid-flight) is dropped.
//
//qoserve:hotpath
func (x *TraceState) TraceComplete(now sim.Time) {
	if x.tracer == nil || !x.planned {
		return
	}
	x.it.CompletedAt = now
	x.it.Actual = now - x.it.PlannedAt
	x.tracer.RecordIteration(x.it)
	x.it = trace.Iteration{}
	x.planned = false
}
