package sched

import (
	"sort"

	"qoserve/internal/request"
)

// Queue is a sorted prefill queue: ascending by a float64 key, ties broken
// by request ID for determinism. Keys are captured at insertion time;
// re-prioritizing a request means removing and re-inserting it. The
// sorted-slice representation keeps the whole queue traversable in priority
// order, which QoServe's relegation pass needs.
type Queue struct {
	keys  []float64
	items []*request.Request
}

// Len is the queue size.
func (q *Queue) Len() int { return len(q.items) }

// Insert adds r with the given priority key (lower = served earlier).
func (q *Queue) Insert(r *request.Request, key float64) {
	i := sort.Search(len(q.items), func(i int) bool {
		if q.keys[i] != key {
			return q.keys[i] > key
		}
		return q.items[i].ID > r.ID
	})
	q.keys = append(q.keys, 0)
	q.items = append(q.items, nil)
	copy(q.keys[i+1:], q.keys[i:])
	copy(q.items[i+1:], q.items[i:])
	q.keys[i] = key
	q.items[i] = r
}

// At returns the i-th request in priority order.
func (q *Queue) At(i int) *request.Request { return q.items[i] }

// KeyAt returns the i-th priority key.
func (q *Queue) KeyAt(i int) float64 { return q.keys[i] }

// Front returns the highest-priority request, or nil when empty.
func (q *Queue) Front() *request.Request {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

// RemoveAt deletes the i-th entry.
func (q *Queue) RemoveAt(i int) {
	q.keys = append(q.keys[:i], q.keys[i+1:]...)
	q.items = append(q.items[:i], q.items[i+1:]...)
}

// Remove deletes the given request, reporting whether it was present.
func (q *Queue) Remove(r *request.Request) bool {
	for i, it := range q.items {
		if it == r {
			q.RemoveAt(i)
			return true
		}
	}
	return false
}

// PopFront removes and returns the highest-priority request, or nil.
func (q *Queue) PopFront() *request.Request {
	if len(q.items) == 0 {
		return nil
	}
	r := q.items[0]
	q.RemoveAt(0)
	return r
}

// Items exposes the underlying priority-ordered slice; callers must not
// mutate it.
func (q *Queue) Items() []*request.Request { return q.items }
