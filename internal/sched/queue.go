package sched

import (
	"sort"

	"qoserve/internal/request"
)

// Queue is a sorted prefill queue: ascending by a float64 key, ties broken
// by request ID for determinism. Keys are captured at insertion time;
// re-prioritizing a request means removing and re-inserting it. The
// sorted-slice representation keeps the whole queue traversable in priority
// order, which QoServe's relegation pass needs. A side table records each
// member's insertion key so Remove can binary-search the exact position
// instead of scanning: OnBatchComplete removes every prefill allocation
// each iteration, and under overload the queue is thousands deep.
//
// Storage is a slice with a movable front offset (head): removals and
// insertions shift whichever side of the split is shorter, so the dominant
// pattern — serving and relegating from the high-priority front of a deep
// queue — costs O(1) moves instead of an O(n) memmove per operation.
type Queue struct {
	head  int
	keys  []float64
	items []*request.Request
	// pos maps a member to its insertion key. Together with the (key, ID)
	// total order this pins the member's exact slice index via binary
	// search, making Remove an O(log n) locate plus a shorter-side shift
	// instead of an O(n) pointer scan.
	pos map[*request.Request]float64
}

// Len is the queue size.
//
//qoserve:hotpath
func (q *Queue) Len() int { return len(q.items) - q.head }

// Insert adds r with the given priority key (lower = served earlier).
//
//qoserve:hotpath
func (q *Queue) Insert(r *request.Request, key float64) {
	i := q.head + sort.Search(q.Len(), func(j int) bool {
		j += q.head
		if q.keys[j] != key {
			return q.keys[j] > key
		}
		return q.items[j].ID > r.ID
	})
	if q.head > 0 && i-q.head <= len(q.items)-i {
		// Shift the (shorter) prefix one slot left into the spare front
		// capacity left behind by earlier front removals.
		copy(q.keys[q.head-1:], q.keys[q.head:i])
		copy(q.items[q.head-1:], q.items[q.head:i])
		q.head--
		i--
	} else {
		q.keys = append(q.keys, 0)
		q.items = append(q.items, nil)
		copy(q.keys[i+1:], q.keys[i:])
		copy(q.items[i+1:], q.items[i:])
	}
	q.keys[i] = key
	q.items[i] = r
	if q.pos == nil {
		//lint:ignore hotpathalloc one-time lazy initialization of the membership table on a queue's first insert; every later insert reuses it.
		q.pos = make(map[*request.Request]float64)
	}
	q.pos[r] = key
}

// At returns the i-th request in priority order.
//
//qoserve:hotpath
func (q *Queue) At(i int) *request.Request { return q.items[q.head+i] }

// KeyAt returns the i-th priority key.
//
//qoserve:hotpath
func (q *Queue) KeyAt(i int) float64 { return q.keys[q.head+i] }

// Front returns the highest-priority request, or nil when empty.
//
//qoserve:hotpath
func (q *Queue) Front() *request.Request {
	if q.Len() == 0 {
		return nil
	}
	return q.items[q.head]
}

// RemoveAt deletes the i-th entry (in priority order).
//
//qoserve:hotpath
func (q *Queue) RemoveAt(i int) {
	j := q.head + i
	delete(q.pos, q.items[j])
	if i <= len(q.items)-j-1 {
		// Closer to the front: shift the prefix right and advance head.
		copy(q.keys[q.head+1:], q.keys[q.head:j])
		copy(q.items[q.head+1:], q.items[q.head:j])
		q.items[q.head] = nil // release the reference
		q.head++
	} else {
		q.keys = append(q.keys[:j], q.keys[j+1:]...)
		q.items = append(q.items[:j], q.items[j+1:]...)
	}
	// Reclaim the dead prefix once it outweighs the live entries, so the
	// backing arrays stay proportional to the queue, not its history.
	if q.head > 64 && q.head > len(q.items)-q.head {
		n := copy(q.items, q.items[q.head:])
		copy(q.keys, q.keys[q.head:])
		clear(q.items[n:])
		q.items = q.items[:n]
		q.keys = q.keys[:n]
		q.head = 0
	}
}

// Remove deletes the given request, reporting whether it was present.
//
//qoserve:hotpath
func (q *Queue) Remove(r *request.Request) bool {
	key, ok := q.pos[r]
	if !ok {
		return false
	}
	i := sort.Search(q.Len(), func(j int) bool {
		j += q.head
		if q.keys[j] != key {
			return q.keys[j] >= key
		}
		return q.items[j].ID >= r.ID
	})
	if i < q.Len() && q.items[q.head+i] == r {
		q.RemoveAt(i)
		return true
	}
	// Unreachable while the (key, ID) order invariant holds (e.g. a NaN
	// key would break sort.Search); fall back to the scan so membership
	// stays correct regardless.
	for i, it := range q.items[q.head:] {
		if it == r {
			q.RemoveAt(i)
			return true
		}
	}
	return false
}

// PopFront removes and returns the highest-priority request, or nil.
//
//qoserve:hotpath
func (q *Queue) PopFront() *request.Request {
	if q.Len() == 0 {
		return nil
	}
	r := q.items[q.head]
	q.RemoveAt(0)
	return r
}

// Key returns r's insertion key and whether r is a member.
//
//qoserve:hotpath
func (q *Queue) Key(r *request.Request) (float64, bool) {
	key, ok := q.pos[r]
	return key, ok
}

// Items exposes the underlying priority-ordered slice; callers must not
// mutate it.
//
//qoserve:hotpath
func (q *Queue) Items() []*request.Request { return q.items[q.head:] }
