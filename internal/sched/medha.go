package sched

import (
	"qoserve/internal/predictor"
	"qoserve/internal/request"
	"qoserve/internal/sim"
)

// Medha implements the adaptive-chunking policy of Medha [6] as described
// in the paper's §4.5.1: serve prefills FCFS, choosing each chunk so the
// predicted iteration latency stays within a fixed TBT target. Because
// attention cost grows with the prefill's processed context, chunks start
// large and progressively shrink across a long prompt — but the policy is
// blind to slack accumulated by the current batch, which is what QoServe
// exploits.
type Medha struct {
	pred     predictor.SafePredictor
	tbt      sim.Time
	maxChunk int
	inner    Sarathi // reuse FCFS queue/decode bookkeeping with a huge budget
	// Per-plan scratch buffers (one outstanding batch per scheduler).
	ctx     []int
	prefill []PrefillAlloc
	TraceState
}

// NewMedha returns a Medha scheduler targeting the given TBT per iteration.
func NewMedha(pred predictor.SafePredictor, tbt sim.Time, maxChunk int) *Medha {
	if maxChunk <= 0 {
		maxChunk = 4096
	}
	return &Medha{pred: pred, tbt: tbt, maxChunk: maxChunk, inner: *NewSarathi(FCFS, 1)}
}

// Name identifies the scheduler.
func (m *Medha) Name() string { return "Medha" }

// Add enqueues an arrival.
func (m *Medha) Add(r *request.Request, now sim.Time) {
	m.inner.Add(r, now)
	m.TraceAdmission(r.ID, r.Class.Name, now)
}

// PlanBatch picks the FCFS-first prefill request and sizes its chunk so the
// predicted batch latency fits the fixed TBT target.
func (m *Medha) PlanBatch(now sim.Time) Batch {
	b := Batch{Decodes: m.inner.decodes}
	front := m.inner.queue.Front()
	if front == nil {
		m.TracePlan(m.Name(), b, now, 0, 0, 0)
		return b
	}
	m.ctx = m.ctx[:0]
	for _, r := range b.Decodes {
		m.ctx = append(m.ctx, r.ContextLen())
	}
	chunk := predictor.ChunkBudget(m.pred, m.ctx, front.PrefilledTokens, m.tbt, m.maxChunk)
	if rem := front.RemainingPrefill(); chunk > rem {
		chunk = rem
	}
	if chunk <= 0 {
		// Even the smallest chunk would blow the TBT target; take a
		// minimal step to guarantee progress, as Medha's floor chunk does.
		chunk = min(32, front.RemainingPrefill())
	}
	b.Prefill = append(m.prefill[:0], PrefillAlloc{Req: front, Tokens: chunk})
	m.prefill = b.Prefill[:0]
	if m.Tracing() {
		m.TracePlan(m.Name(), b, now, m.pred.PredictSafe(b.Shape()), m.inner.queue.Len(), 0)
	}
	return b
}

// OnBatchComplete delegates queue bookkeeping.
func (m *Medha) OnBatchComplete(b Batch, now sim.Time) {
	m.TraceComplete(now)
	m.inner.OnBatchComplete(b, now)
}

// Pending is the number of unfinished requests.
func (m *Medha) Pending() int { return m.inner.Pending() }

// QueueLen reports (main, relegated, decode) queue sizes; Medha has no
// relegated queue.
func (m *Medha) QueueLen() (main, relegated, decode int) {
	return m.inner.QueueLen()
}
