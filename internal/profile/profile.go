// Package profile is the offline profiling harness that generates training
// data for the dynamic-chunking latency predictor.
//
// The paper collects latency profiles of MLP and attention operations "at
// varying chunk sizes, batch sizes as well as context lengths" using a
// harness exposed by the Vidur inference simulator, one profile per (model,
// hardware, parallelism) configuration. Our equivalent samples the analytic
// cost model of package model over the same axes and perturbs each
// measurement with multiplicative Gaussian noise, mimicking real profiling
// jitter. The predictor must then learn the latency surface from noisy
// observations rather than being handed the analytic formula.
package profile

import (
	"fmt"
	"math/rand"

	"qoserve/internal/model"
	"qoserve/internal/sim"
)

// FeatureCount is the length of a sample's feature vector.
const FeatureCount = 5

// Feature indices within a sample vector. These are the batch statistics
// named in Algorithm 1 (num_decodes, batch_decode_context) plus the chunk
// and prefill context, which together determine iteration latency.
const (
	FeatChunkTokens = iota // prefill tokens in this iteration
	FeatPrefillCtx         // context already processed for the prefill request
	FeatNumDecodes         // requests in decode phase
	FeatSumDecodeCtx
	FeatMaxDecodeCtx
)

// Sample is one profiled (batch shape, latency) observation.
type Sample struct {
	Features [FeatureCount]float64
	Latency  float64 // seconds
}

// Features extracts the predictor feature vector from a batch shape.
// Multi-request prefill batches are summarized by total chunk tokens and
// the maximum context offset, which bounds attention cost.
//
//qoserve:hotpath
func Features(b model.BatchShape) [FeatureCount]float64 {
	var f [FeatureCount]float64
	for _, p := range b.Prefill {
		f[FeatChunkTokens] += float64(p.Tokens)
		if c := float64(p.CtxStart); c > f[FeatPrefillCtx] {
			f[FeatPrefillCtx] = c
		}
	}
	f[FeatNumDecodes] = float64(len(b.DecodeCtx))
	for _, c := range b.DecodeCtx {
		f[FeatSumDecodeCtx] += float64(c)
		if fc := float64(c); fc > f[FeatMaxDecodeCtx] {
			f[FeatMaxDecodeCtx] = fc
		}
	}
	return f
}

// Config controls the profiling sweep.
type Config struct {
	// ChunkSizes to sweep; defaults to a geometric ladder 32..4096.
	ChunkSizes []int
	// DecodeBatchSizes to sweep; defaults to 0..64.
	DecodeBatchSizes []int
	// ContextLengths to sweep for both prefill offset and decode context;
	// defaults to 0..8192.
	ContextLengths []int
	// NoiseStdDev is the relative standard deviation of measurement
	// noise; defaults to 3%.
	NoiseStdDev float64
	// SamplesPerPoint repeats each grid point with fresh noise; default 2.
	SamplesPerPoint int
	// Seed for the noise generator.
	Seed int64
}

func (c Config) withDefaults() Config {
	if len(c.ChunkSizes) == 0 {
		c.ChunkSizes = []int{0, 32, 64, 128, 256, 384, 512, 768, 1024, 1536, 2048, 3072, 4096}
	}
	if len(c.DecodeBatchSizes) == 0 {
		c.DecodeBatchSizes = []int{0, 1, 2, 4, 8, 16, 32, 64}
	}
	if len(c.ContextLengths) == 0 {
		c.ContextLengths = []int{0, 256, 1024, 2048, 4096, 8192}
	}
	if c.NoiseStdDev == 0 {
		c.NoiseStdDev = 0.03
	}
	if c.SamplesPerPoint == 0 {
		c.SamplesPerPoint = 2
	}
	return c
}

// Collect runs the profiling sweep against the given model/hardware
// configuration and returns noisy latency samples.
func Collect(mc model.Config, pc Config) ([]Sample, error) {
	if err := mc.Validate(); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	pc = pc.withDefaults()
	if pc.NoiseStdDev < 0 || pc.NoiseStdDev > 0.5 {
		return nil, fmt.Errorf("profile: noise stddev %v outside [0,0.5]", pc.NoiseStdDev)
	}
	rng := rand.New(rand.NewSource(pc.Seed))
	var out []Sample
	for _, chunk := range pc.ChunkSizes {
		for _, nDec := range pc.DecodeBatchSizes {
			if chunk == 0 && nDec == 0 {
				continue // empty batch
			}
			for _, ctx := range pc.ContextLengths {
				shape := model.BatchShape{}
				if chunk > 0 {
					shape.Prefill = []model.ChunkShape{{Tokens: chunk, CtxStart: ctx}}
				}
				for i := 0; i < nDec; i++ {
					shape.DecodeCtx = append(shape.DecodeCtx, ctx)
				}
				truth := mc.BatchTime(shape).Seconds()
				for s := 0; s < pc.SamplesPerPoint; s++ {
					noisy := truth * (1 + pc.NoiseStdDev*rng.NormFloat64())
					if noisy < 0 {
						noisy = 0
					}
					out = append(out, Sample{
						Features: Features(shape),
						Latency:  noisy,
					})
				}
			}
		}
	}
	return out, nil
}

// TrueLatency returns the noise-free latency for a shape, used by tests and
// the oracle predictor.
func TrueLatency(mc model.Config, b model.BatchShape) sim.Time {
	return mc.BatchTime(b)
}
