package profile

import (
	"math"
	"testing"

	"qoserve/internal/model"
)

func TestCollectProducesSamples(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	samples, err := Collect(mc, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) < 1000 {
		t.Fatalf("only %d samples collected", len(samples))
	}
	for i, s := range samples {
		if s.Latency < 0 {
			t.Fatalf("sample %d negative latency", i)
		}
		if s.Features[FeatChunkTokens] == 0 && s.Features[FeatNumDecodes] == 0 {
			t.Fatalf("sample %d is an empty batch", i)
		}
	}
}

func TestCollectDeterministic(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	a, err := Collect(mc, Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collect(mc, Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs across identical runs", i)
		}
	}
}

func TestCollectNoiseLevel(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	cfg := Config{
		ChunkSizes:       []int{512},
		DecodeBatchSizes: []int{0},
		ContextLengths:   []int{0},
		NoiseStdDev:      0.05,
		SamplesPerPoint:  4000,
		Seed:             3,
	}
	samples, err := Collect(mc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	truth := mc.BatchTime(model.BatchShape{
		Prefill: []model.ChunkShape{{Tokens: 512}},
	}).Seconds()
	var sum, sumSq float64
	for _, s := range samples {
		sum += s.Latency
		sumSq += s.Latency * s.Latency
	}
	n := float64(len(samples))
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-truth)/truth > 0.01 {
		t.Errorf("noisy mean %v vs truth %v", mean, truth)
	}
	if rel := std / truth; math.Abs(rel-0.05) > 0.01 {
		t.Errorf("relative noise %v, want ~0.05", rel)
	}
}

func TestCollectValidation(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	if _, err := Collect(mc, Config{NoiseStdDev: 0.9}); err == nil {
		t.Error("huge noise accepted")
	}
	bad := mc
	bad.TP = 0
	if _, err := Collect(bad, Config{}); err == nil {
		t.Error("invalid model config accepted")
	}
}

func TestFeatures(t *testing.T) {
	b := model.BatchShape{
		Prefill:   []model.ChunkShape{{Tokens: 100, CtxStart: 50}, {Tokens: 30, CtxStart: 200}},
		DecodeCtx: []int{10, 500, 90},
	}
	f := Features(b)
	if f[FeatChunkTokens] != 130 {
		t.Errorf("chunk tokens = %v", f[FeatChunkTokens])
	}
	if f[FeatPrefillCtx] != 200 {
		t.Errorf("prefill ctx = %v", f[FeatPrefillCtx])
	}
	if f[FeatNumDecodes] != 3 {
		t.Errorf("num decodes = %v", f[FeatNumDecodes])
	}
	if f[FeatSumDecodeCtx] != 600 {
		t.Errorf("sum decode ctx = %v", f[FeatSumDecodeCtx])
	}
	if f[FeatMaxDecodeCtx] != 500 {
		t.Errorf("max decode ctx = %v", f[FeatMaxDecodeCtx])
	}
}

func TestTrueLatencyMatchesModel(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	b := model.BatchShape{Prefill: []model.ChunkShape{{Tokens: 256}}}
	if TrueLatency(mc, b) != mc.BatchTime(b) {
		t.Error("TrueLatency deviates from model")
	}
}
