package server

import (
	"sort"
	"sync"
	"testing"
	"time"

	"qoserve/internal/model"
	"qoserve/internal/qos"
	"qoserve/internal/request"
	"qoserve/internal/sched"
	"qoserve/internal/sim"
)

// fanoutFixture builds a stopped single-replica server with a registered
// decode-phase batch, so completeLocked+flush — the steady-state per-token
// serve path — can be driven directly without the serving loop racing.
func fanoutFixture(tb testing.TB, streamBuf int) (*gatewayReplica, sched.Batch) {
	tb.Helper()
	srv, err := New(Config{
		Model:     model.Llama3_8B_A100_TP1(),
		Scheduler: &untraceable{},
		Classes:   qos.Table3(),
	})
	if err != nil {
		tb.Fatal(err)
	}
	srv.Close() // stop the loop; the replica state stays usable
	rp := srv.reps[0]
	cls := qos.Table3()[0]
	var batch sched.Batch
	for i := uint64(1); i <= 8; i++ {
		r := &request.Request{
			ID:           i,
			App:          "bench",
			Class:        cls,
			PromptTokens: 64,
			// Effectively infinite decode so the requests never reach Done
			// and the fixture stays in pure steady state.
			DecodeTokens:    1 << 30,
			PrefilledTokens: 64,
			DecodedTokens:   1,
			FirstTokenAt:    sim.Millisecond,
			LastTokenAt:     sim.Millisecond,
		}
		rp.streams[r.ID] = &streamEntry{id: r.ID, req: r, events: make(chan Event, streamBuf)}
		batch.Decodes = append(batch.Decodes, r)
	}
	return rp, batch
}

// TestServeSteadyStateAllocFree guards the live serving path the same way
// TestPlanBatchSteadyStateAllocFree guards the simulator: per-iteration
// accounting, histogram update, event staging, and stream fan-out
// (including the overflow-drop path once the 4-event buffers fill) must
// allocate nothing.
func TestServeSteadyStateAllocFree(t *testing.T) {
	rp, batch := fanoutFixture(t, 4)
	exec := 5 * sim.Millisecond
	end := sim.Second
	step := func() {
		end += exec
		rp.mu.Lock()
		rp.completeLocked(batch, exec, end)
		rp.mu.Unlock()
		rp.flush()
	}
	step() // warm the outbox and histogram before measuring
	if allocs := testing.AllocsPerRun(200, step); allocs != 0 {
		t.Fatalf("steady-state serve path allocates %.1f times per iteration, want 0", allocs)
	}
	if rp.srv.droppedEvents.Load() == 0 {
		t.Fatal("fixture never exercised the overflow-drop path")
	}
}

// BenchmarkTokenFanout measures one iteration of the per-token serve path:
// accounting + event staging under the scheduler lock, then fan-out to 8
// streams.
func BenchmarkTokenFanout(b *testing.B) {
	rp, batch := fanoutFixture(b, 4)
	exec := 5 * sim.Millisecond
	end := sim.Second
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		end += exec
		rp.mu.Lock()
		rp.completeLocked(batch, exec, end)
		rp.mu.Unlock()
		rp.flush()
	}
}

// benchGatewayContended is the headline gateway benchmark: many parallel
// submitters drive closed-loop prefill-heavy requests end to end (submit,
// stream, drain) against N serving replicas. The cost model makes each
// iteration sleep its (timescale-compressed) execution time, exactly like
// replicas of a model server, so req/s measures how much concurrent
// "GPU time" the gateway can keep in flight — the replicas=1 result is the
// old single-lock architecture's ceiling.
func benchGatewayContended(b *testing.B, replicas int) {
	srv, err := New(Config{
		Model:            model.Llama3_8B_A100_TP1(),
		SchedulerFactory: func() sched.Scheduler { return sched.NewSarathi(sched.FCFS, 512) },
		Replicas:         replicas,
		Classes:          qos.Table3(),
		Timescale:        200,
		StreamBuffer:     8,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	b.SetParallelism(32) // 32 concurrent submitters per GOMAXPROCS
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			stream, err := srv.Submit(Submission{Class: "Q2", PromptTokens: 512, DecodeTokens: 2})
			if err != nil {
				b.Error(err)
				return
			}
			for range stream.Events {
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

func BenchmarkGatewayContendedReplicas1(b *testing.B) { benchGatewayContended(b, 1) }
func BenchmarkGatewayContendedReplicas4(b *testing.B) { benchGatewayContended(b, 4) }
func BenchmarkGatewayContendedReplicas8(b *testing.B) { benchGatewayContended(b, 8) }

// benchGatewayTokenPath is the PR 10 before/after pair: the same contended
// closed-loop workload as benchGatewayContended, but submitted through the
// pooled SubmitTo entry point with per-goroutine Stream reuse, drained via
// Recv (which works in both delivery modes), and instrumented with
// allocs/op plus TTFT quantiles. eventFrame == 0 is the PR 8
// configuration (per-token channels, fresh request/entry/channel per
// submission); eventFrame > 0 exercises the batched-frame path where the
// request, stream entry, and frames all recycle through free lists.
func benchGatewayTokenPath(b *testing.B, replicas, eventFrame int) {
	srv, err := New(Config{
		Model:            model.Llama3_8B_A100_TP1(),
		SchedulerFactory: func() sched.Scheduler { return sched.NewSarathi(sched.FCFS, 512) },
		Replicas:         replicas,
		Classes:          qos.Table3(),
		Timescale:        200,
		StreamBuffer:     8,
		EventFrame:       eventFrame,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	// Pre-sized so appending TTFT samples never allocates mid-run.
	ttfts := make([]float64, 0, b.N+64)
	var mu sync.Mutex
	b.SetParallelism(32) // 32 concurrent submitters per GOMAXPROCS
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var stream Stream
		for pb.Next() {
			err := srv.SubmitTo(Submission{Class: "Q2", PromptTokens: 512, DecodeTokens: 2}, &stream)
			if err != nil {
				b.Error(err)
				return
			}
			for {
				if _, ok := stream.Recv(); !ok {
					break
				}
			}
			ttft := float64(stream.Result().TTFT) / float64(time.Millisecond)
			mu.Lock()
			ttfts = append(ttfts, ttft)
			mu.Unlock()
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	sort.Float64s(ttfts)
	b.ReportMetric(benchQuantile(ttfts, 0.50), "ttft_p50_ms")
	b.ReportMetric(benchQuantile(ttfts, 0.90), "ttft_p90_ms")
}

// benchQuantile is nearest-rank over an already-sorted sample.
func benchQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func BenchmarkGatewayUnbatchedReplicas8(b *testing.B) { benchGatewayTokenPath(b, 8, 0) }
func BenchmarkGatewayFrameReplicas8(b *testing.B)     { benchGatewayTokenPath(b, 8, 16) }
