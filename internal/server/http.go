package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"qoserve/internal/qos"
)

// HTTP request/response wire types for the qoserved API.

// GenerateRequest is the POST /v1/generate body.
type GenerateRequest struct {
	App          string `json:"app,omitempty"`
	Class        string `json:"class"`
	Priority     string `json:"priority,omitempty"` // "high" (default) or "low"
	PromptTokens int    `json:"prompt_tokens"`
	DecodeTokens int    `json:"decode_tokens"`
}

// TokenEvent is one line of the streamed generate response.
type TokenEvent struct {
	Event string  `json:"event"` // "token" or "done"
	Token int     `json:"token,omitempty"`
	AtMS  float64 `json:"at_ms"`
	// Final-event fields.
	TTFTMS   float64 `json:"ttft_ms,omitempty"`
	TTLTMS   float64 `json:"ttlt_ms,omitempty"`
	Violated bool    `json:"violated,omitempty"`
	Relegate bool    `json:"relegated,omitempty"`
}

// StatsResponse is the GET /v1/stats body.
type StatsResponse struct {
	VirtualNowMS  float64 `json:"virtual_now_ms"`
	Pending       int     `json:"pending"`
	Served        int     `json:"served"`
	Iterations    uint64  `json:"iterations"`
	Tokens        uint64  `json:"tokens"`
	ViolationRate float64 `json:"violation_rate"`
}

// Handler exposes the server over HTTP:
//
//	POST /v1/generate — submit a request; the response streams one JSON
//	                    object per token (chunked), ending with a "done"
//	                    event carrying the outcome.
//	GET  /v1/stats    — serving counters and the running violation rate.
//	GET  /v1/classes  — the configured QoS classes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/generate", s.handleGenerate)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/classes", s.handleClasses)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// handleMetrics exposes the counters in Prometheus text format so standard
// scrapers can watch a qoserved instance.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# HELP qoserve_requests_total Requests accepted since start.\n")
	fmt.Fprintf(w, "# TYPE qoserve_requests_total counter\n")
	fmt.Fprintf(w, "qoserve_requests_total %d\n", st.Served)
	fmt.Fprintf(w, "# HELP qoserve_requests_pending Requests not yet finished.\n")
	fmt.Fprintf(w, "# TYPE qoserve_requests_pending gauge\n")
	fmt.Fprintf(w, "qoserve_requests_pending %d\n", st.Pending)
	fmt.Fprintf(w, "# HELP qoserve_iterations_total Executed batches.\n")
	fmt.Fprintf(w, "# TYPE qoserve_iterations_total counter\n")
	fmt.Fprintf(w, "qoserve_iterations_total %d\n", st.Iterations)
	fmt.Fprintf(w, "# HELP qoserve_tokens_total Tokens processed.\n")
	fmt.Fprintf(w, "# TYPE qoserve_tokens_total counter\n")
	fmt.Fprintf(w, "qoserve_tokens_total %d\n", st.Tokens)
	fmt.Fprintf(w, "# HELP qoserve_violation_ratio Lifetime SLO violation fraction.\n")
	fmt.Fprintf(w, "# TYPE qoserve_violation_ratio gauge\n")
	fmt.Fprintf(w, "qoserve_violation_ratio %g\n", st.ViolationRate)
	fmt.Fprintf(w, "# HELP qoserve_virtual_seconds Virtual clock position.\n")
	fmt.Fprintf(w, "# TYPE qoserve_virtual_seconds counter\n")
	fmt.Fprintf(w, "qoserve_virtual_seconds %g\n", st.VirtualNow.Seconds())
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	var req GenerateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	prio := qos.High
	switch req.Priority {
	case "", "high":
	case "low":
		prio = qos.Low
	default:
		http.Error(w, fmt.Sprintf("unknown priority %q", req.Priority), http.StatusBadRequest)
		return
	}
	stream, err := s.Submit(Submission{
		App:          req.App,
		Class:        req.Class,
		Priority:     prio,
		PromptTokens: req.PromptTokens,
		DecodeTokens: req.DecodeTokens,
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	w.Header().Set("Content-Type", "application/jsonl")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	for {
		select {
		case ev, ok := <-stream.Events:
			if !ok {
				return
			}
			out := TokenEvent{Event: "token", Token: ev.Token, AtMS: ms(ev.At)}
			if ev.Done {
				res := stream.Result()
				out.Event = "done"
				out.TTFTMS = ms(res.TTFT)
				out.TTLTMS = ms(res.TTLT)
				out.Violated = res.Violated
				out.Relegate = res.Releg
			}
			if err := enc.Encode(out); err != nil {
				return // client went away
			}
			if flusher != nil {
				flusher.Flush()
			}
			if ev.Done {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.Stats()
	writeJSON(w, StatsResponse{
		VirtualNowMS:  ms(st.VirtualNow),
		Pending:       st.Pending,
		Served:        st.Served,
		Iterations:    st.Iterations,
		Tokens:        st.Tokens,
		ViolationRate: st.ViolationRate,
	})
}

func (s *Server) handleClasses(w http.ResponseWriter, _ *http.Request) {
	type classInfo struct {
		Name   string  `json:"name"`
		Kind   string  `json:"kind"`
		TTFTMS float64 `json:"ttft_ms,omitempty"`
		TBTMS  float64 `json:"tbt_ms,omitempty"`
		TTLTMS float64 `json:"ttlt_ms,omitempty"`
	}
	out := make([]classInfo, 0, len(s.cfg.Classes))
	for _, c := range s.cfg.Classes {
		out = append(out, classInfo{
			Name:   c.Name,
			Kind:   c.Kind.String(),
			TTFTMS: ms(c.SLO.TTFT.Duration()),
			TBTMS:  ms(c.SLO.TBT.Duration()),
			TTLTMS: ms(c.SLO.TTLT.Duration()),
		})
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
