package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"qoserve/internal/kvcache"
	"qoserve/internal/metrics"
	"qoserve/internal/qos"
	"qoserve/internal/sim"
	"qoserve/internal/trace"
)

// HTTP request/response wire types for the qoserved API.

// GenerateRequest is the POST /v1/generate body.
type GenerateRequest struct {
	App          string `json:"app,omitempty"`
	Class        string `json:"class"`
	Priority     string `json:"priority,omitempty"` // "high" (default) or "low"
	PromptTokens int    `json:"prompt_tokens"`
	DecodeTokens int    `json:"decode_tokens"`
	// PrefixChain is the prompt's prefix hash chain in wire form:
	// "-"-joined hex block hashes (kvcache.FormatChain). Empty means the
	// prompt shares no prefix.
	PrefixChain string `json:"prefix_chain,omitempty"`
}

// TokenEvent is one line of the streamed generate response.
type TokenEvent struct {
	Event string  `json:"event"` // "token" or "done"
	Token int     `json:"token,omitempty"`
	AtMS  float64 `json:"at_ms"`
	// Final-event fields.
	TTFTMS   float64 `json:"ttft_ms,omitempty"`
	TTLTMS   float64 `json:"ttlt_ms,omitempty"`
	Violated bool    `json:"violated,omitempty"`
	Relegate bool    `json:"relegated,omitempty"`
}

// StatsResponse is the GET /v1/stats body.
type StatsResponse struct {
	VirtualNowMS  float64 `json:"virtual_now_ms"`
	Pending       int     `json:"pending"`
	Served        int     `json:"served"`
	Iterations    uint64  `json:"iterations"`
	Tokens        uint64  `json:"tokens"`
	ViolationRate float64 `json:"violation_rate"`
	DroppedEvents uint64  `json:"dropped_events"`
	Replicas      int     `json:"replicas"`
}

// ErrorResponse is the JSON body of every non-2xx API response.
type ErrorResponse struct {
	// Error is a human-readable description of what was rejected.
	Error string `json:"error"`
	// Field names the offending request field (JSON naming) when the
	// error concerns one; empty otherwise.
	Field string `json:"field,omitempty"`
}

// TracedEvent is a scheduler event inside a /debug/trace iteration record.
type TracedEvent struct {
	AtMS   float64 `json:"at_ms"`
	Kind   string  `json:"kind"` // admission | relegation | boost | preemption
	Req    uint64  `json:"req"`
	Class  string  `json:"class,omitempty"`
	Reason string  `json:"reason,omitempty"`
}

// TracedPrefill is one prefill allocation inside a traced batch.
type TracedPrefill struct {
	Req      uint64 `json:"req"`
	Tokens   int    `json:"tokens"`
	CtxStart int    `json:"ctx_start"`
}

// TracedIteration is one scheduler iteration in the /debug/trace response.
type TracedIteration struct {
	Seq           uint64          `json:"seq"`
	Policy        string          `json:"policy"`
	PlannedAtMS   float64         `json:"planned_at_ms"`
	CompletedAtMS float64         `json:"completed_at_ms"`
	ChunkTokens   int             `json:"chunk_tokens"`
	Prefill       []TracedPrefill `json:"prefill,omitempty"`
	Decodes       int             `json:"decodes"`
	PredictedMS   float64         `json:"predicted_ms,omitempty"`
	ActualMS      float64         `json:"actual_ms"`
	QueueMain     int             `json:"queue_main"`
	QueueReleg    int             `json:"queue_relegated"`
	QueueDecode   int             `json:"queue_decode"`
	Events        []TracedEvent   `json:"events,omitempty"`
}

// TraceResponse is the GET /debug/trace body.
type TraceResponse struct {
	Enabled    bool              `json:"enabled"`
	Capacity   int               `json:"capacity,omitempty"`
	Total      uint64            `json:"total"`
	Iterations []TracedIteration `json:"iterations"`
}

// ReplicaLoad is one replica's live queue state in the GET /debug/load
// body.
type ReplicaLoad struct {
	Replica int `json:"replica"`
	// Role is "colocated", "prefill", or "decode".
	Role string `json:"role"`
	Up   bool   `json:"up"`
	// Load is the number of unfinished requests routed to this replica.
	Load int `json:"load"`
	// Snapshot is the wire-encoded replica.LoadSnapshot (the same string
	// a remote gateway would ship; see replica.DecodeLoadSnapshot).
	Snapshot             string `json:"snapshot"`
	QueuedRequests       int    `json:"queued_requests"`
	PendingPrefillTokens int    `json:"pending_prefill_tokens"`
	ActiveDecodes        int    `json:"active_decodes"`
	SumDecodeCtx         int    `json:"sum_decode_ctx"`
	MaxDecodeCtx         int    `json:"max_decode_ctx"`
	ChunkBudgetTokens    int    `json:"chunk_budget_tokens"`
	// CachedChainBlocks is prefix blocks resident in this replica's cache,
	// both tiers.
	CachedChainBlocks int `json:"cached_chain_blocks"`
	// HBMUtilization / DRAMUtilization are each cache tier's fill fraction.
	HBMUtilization  float64 `json:"hbm_utilization"`
	DRAMUtilization float64 `json:"dram_utilization"`
	// IndexEpoch is this replica's publication epoch in the global prefix
	// index; 0 when the index is disabled or nothing was published yet.
	IndexEpoch uint64 `json:"index_epoch"`
}

// LoadResponse is the GET /debug/load body.
type LoadResponse struct {
	Mode     string        `json:"mode"`
	Replicas []ReplicaLoad `json:"replicas"`
}

// QueuesResponse is the GET /debug/queues body.
type QueuesResponse struct {
	Policy         string  `json:"policy"`
	VirtualNowMS   float64 `json:"virtual_now_ms"`
	Pending        int     `json:"pending"`
	Served         int     `json:"served"`
	QueueMain      int     `json:"queue_main"`
	QueueRelegated int     `json:"queue_relegated"`
	QueueDecode    int     `json:"queue_decode"`
	// QueuesReported is false when the scheduler cannot report depths;
	// the queue fields are then zero.
	QueuesReported bool   `json:"queues_reported"`
	TraceEnabled   bool   `json:"trace_enabled"`
	Iterations     uint64 `json:"iterations"`
	// Replicas is the number of serving loops the depths are summed over.
	Replicas int `json:"replicas"`
}

// Handler exposes the server over HTTP:
//
//	POST /v1/generate  — submit a request; the response streams one JSON
//	                     object per token (chunked), ending with a "done"
//	                     event carrying the outcome.
//	GET  /v1/stats     — serving counters and the running violation rate.
//	GET  /v1/classes   — the configured QoS classes.
//	GET  /metrics      — Prometheus text exposition: counters, queue-depth
//	                     gauges, the iteration-latency histogram, and
//	                     rolling per-class TTFT/TTLT/TBT and violation
//	                     gauges.
//	GET  /debug/trace  — recent scheduler iterations (chunk size, batch
//	                     composition, predicted vs. measured latency,
//	                     queue depths, relegation/boost/admission events)
//	                     as JSON; requires Config.TraceDepth > 0.
//	GET  /debug/queues — live queue-depth snapshot.
//
// Non-2xx responses carry an ErrorResponse JSON body.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/generate", s.handleGenerate)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/classes", s.handleClasses)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/trace", s.handleDebugTrace)
	mux.HandleFunc("GET /debug/queues", s.handleDebugQueues)
	mux.HandleFunc("GET /debug/load", s.handleDebugLoad)
	return mux
}

// handleDebugLoad serves every replica's live load snapshot — the same
// queue state snapshot-aware balancers score — plus its tier role and
// liveness.
func (s *Server) handleDebugLoad(w http.ResponseWriter, _ *http.Request) {
	mode := "colocated"
	if s.prefillReps > 0 {
		mode = "disagg"
	}
	resp := LoadResponse{Mode: mode, Replicas: make([]ReplicaLoad, 0, len(s.reps))}
	for i, rp := range s.reps {
		snap := rp.loadSnapshot()
		rp.kvMu.Lock()
		hbmBlocks, dramBlocks := rp.kv.CachedBlocks()
		hbmUtil, dramUtil := rp.kv.TierUtilization()
		rp.kvMu.Unlock()
		var epoch uint64
		if s.prefixIdx != nil {
			epoch = s.prefixIdx.Epoch(i)
		}
		resp.Replicas = append(resp.Replicas, ReplicaLoad{
			Replica:              i,
			Role:                 s.roleOf(i),
			Up:                   !rp.down.Load(),
			Load:                 int(rp.load.Load()),
			Snapshot:             snap.Encode(),
			QueuedRequests:       snap.QueuedRequests,
			PendingPrefillTokens: snap.PendingPrefillTokens,
			ActiveDecodes:        snap.ActiveDecodes,
			SumDecodeCtx:         snap.SumDecodeCtx,
			MaxDecodeCtx:         snap.MaxDecodeCtx,
			ChunkBudgetTokens:    snap.ChunkBudgetTokens,
			CachedChainBlocks:    hbmBlocks + dramBlocks,
			HBMUtilization:       hbmUtil,
			DRAMUtilization:      dramUtil,
			IndexEpoch:           epoch,
		})
	}
	writeJSON(w, resp)
}

// handleMetrics exposes the instrumentation in Prometheus text format so
// standard scrapers can watch a qoserved instance. Per-class latency and
// violation gauges are computed over the trailing Config.MetricsWindow of
// virtual time; everything else is lifetime.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	vnow := s.vnow()
	sum := s.summary(vnow)
	served := s.accepted.Load()
	pending := int(s.inFlight.Load())
	iterations, tokens := s.iterations.Load(), s.tokens.Load()
	prefillTokens, decodeTokens := s.prefillTokens.Load(), s.decodeTokens.Load()
	dropped := s.droppedEvents.Load()
	queues := s.Queues()
	cum, hsum, htotal := s.histSnapshot()
	relegations, hasReleg := s.relegations()

	recent := sum.Recent(sim.FromDuration(s.cfg.MetricsWindow))

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	p := promWriter{w}

	p.header("qoserve_requests_total", "Requests accepted since start.", "counter")
	p.intValue("qoserve_requests_total", "", served)
	p.header("qoserve_requests_pending", "Requests not yet finished.", "gauge")
	p.intValue("qoserve_requests_pending", "", uint64(pending))
	p.header("qoserve_iterations_total", "Executed batches.", "counter")
	p.intValue("qoserve_iterations_total", "", iterations)
	p.header("qoserve_tokens_total", "Tokens processed.", "counter")
	p.intValue("qoserve_tokens_total", "", tokens)
	p.header("qoserve_prefill_tokens_total", "Prompt tokens processed.", "counter")
	p.intValue("qoserve_prefill_tokens_total", "", prefillTokens)
	p.header("qoserve_decode_tokens_total", "Output tokens generated.", "counter")
	p.intValue("qoserve_decode_tokens_total", "", decodeTokens)
	p.header("qoserve_violation_ratio", "Lifetime SLO violation fraction.", "gauge")
	p.value("qoserve_violation_ratio", "", sum.ViolationRate(metrics.All))
	p.header("qoserve_virtual_seconds", "Virtual clock position.", "gauge")
	p.value("qoserve_virtual_seconds", "", vnow.Seconds())
	p.header("qoserve_stream_dropped_events_total", "Token events discarded on full stream buffers.", "counter")
	p.intValue("qoserve_stream_dropped_events_total", "", dropped)
	p.header("qoserve_stream_table_shrinks_total", "Per-replica stream-table rebuilds after bursts.", "counter")
	p.intValue("qoserve_stream_table_shrinks_total", "", s.streamShrinks.Load())
	p.header("qoserve_gateway_replicas", "Serving loops in this gateway.", "gauge")
	p.intValue("qoserve_gateway_replicas", "", uint64(len(s.reps)))

	if s.prefillReps > 0 {
		up := 0
		for i := 0; i < s.prefillReps; i++ {
			if !s.reps[i].down.Load() {
				up++
			}
		}
		p.header("qoserve_disagg_tier_replicas", "Serving loops per disaggregation tier.", "gauge")
		p.intValue("qoserve_disagg_tier_replicas", `{tier="prefill"}`, uint64(s.prefillReps))
		p.intValue("qoserve_disagg_tier_replicas", `{tier="decode"}`, uint64(len(s.reps)-s.prefillReps))
		p.header("qoserve_disagg_prefill_replicas_up", "Healthy prefill-tier replicas.", "gauge")
		p.intValue("qoserve_disagg_prefill_replicas_up", "", uint64(up))
		p.header("qoserve_disagg_handoffs_total", "Prefill-to-decode KV handoffs launched.", "counter")
		p.intValue("qoserve_disagg_handoffs_total", "", s.handoffs.Load())
		p.header("qoserve_disagg_transfer_tokens_total", "Prompt tokens whose KV pages crossed the tier interconnect.", "counter")
		p.intValue("qoserve_disagg_transfer_tokens_total", "", s.transferTokens.Load())
		p.header("qoserve_gateway_retries_total", "Re-prefills after prefill-tier crashes.", "counter")
		p.intValue("qoserve_gateway_retries_total", "", s.retries.Load())
		p.header("qoserve_gateway_lost_tokens_total", "Tokens of progress discarded by prefill-tier crashes.", "counter")
		p.intValue("qoserve_gateway_lost_tokens_total", "", s.lostTokens.Load())
		p.header("qoserve_gateway_failed_requests_total", "Requests permanently failed with a reason.", "counter")
		p.intValue("qoserve_gateway_failed_requests_total", "", uint64(s.failedReqs.Load()))
	}

	kv := s.KVStats()
	p.header("qoserve_kvcache_prefix_hit_tokens_total", "Prompt tokens served from cached prefixes instead of prefill.", "counter")
	p.intValue("qoserve_kvcache_prefix_hit_tokens_total", "", kv.PrefixHitTokens)
	p.header("qoserve_kvcache_prefix_reload_tokens_total", "Hit tokens promoted from the DRAM spill tier.", "counter")
	p.intValue("qoserve_kvcache_prefix_reload_tokens_total", "", kv.ReloadTokens)
	p.header("qoserve_kvcache_tier_evictions_total", "Prefix blocks dropped from each cache tier.", "counter")
	p.intValue("qoserve_kvcache_tier_evictions_total", `{tier="hbm"}`, kv.HBMEvictions)
	p.intValue("qoserve_kvcache_tier_evictions_total", `{tier="dram"}`, kv.DRAMEvictions)
	p.header("qoserve_kvcache_demotions_total", "Prefix blocks demoted HBM to DRAM under pressure.", "counter")
	p.intValue("qoserve_kvcache_demotions_total", "", kv.Demotions)
	p.header("qoserve_kvcache_cached_blocks", "Prefix blocks currently resident by tier.", "gauge")
	p.intValue("qoserve_kvcache_cached_blocks", `{tier="hbm"}`, uint64(kv.CachedHBMBlocks))
	p.intValue("qoserve_kvcache_cached_blocks", `{tier="dram"}`, uint64(kv.CachedDRAMBlocks))
	p.header("qoserve_kvcache_prefix_transfer_tokens_total", "Hit tokens imported from another replica's cache over the interconnect.", "counter")
	p.intValue("qoserve_kvcache_prefix_transfer_tokens_total", "", kv.PrefixTransferTokens)
	p.header("qoserve_kvcache_transfer_fallbacks_total", "Planned KV imports abandoned at admission and recomputed.", "counter")
	p.intValue("qoserve_kvcache_transfer_fallbacks_total", "", kv.TransferFallbacks)

	if hasReleg {
		p.header("qoserve_relegations_total", "Requests eagerly relegated.", "counter")
		p.intValue("qoserve_relegations_total", "", uint64(relegations))
	}
	if queues.Reported {
		p.header("qoserve_queue_depth", "Scheduler queue depths by queue.", "gauge")
		p.intValue("qoserve_queue_depth", `{queue="main"}`, uint64(queues.Main))
		p.intValue("qoserve_queue_depth", `{queue="relegated"}`, uint64(queues.Relegated))
		p.intValue("qoserve_queue_depth", `{queue="decode"}`, uint64(queues.Decode))
	}
	if s.tracer != nil {
		p.header("qoserve_trace_iterations_total", "Iterations recorded by the tracer.", "counter")
		p.intValue("qoserve_trace_iterations_total", "", s.tracer.Total())
		p.header("qoserve_trace_events_total", "Scheduler events recorded by the tracer.", "counter")
		p.intValue("qoserve_trace_events_total", "", s.tracer.Events())
	}

	if s.cfg.FaultStatus != nil {
		fs := s.cfg.FaultStatus()
		p.header("qoserve_replica_up", "Replica liveness (1 up, 0 down).", "gauge")
		for i, r := range fs.Replicas {
			up := uint64(0)
			if r.Up {
				up = 1
			}
			p.intValue("qoserve_replica_up", fmt.Sprintf(`{replica="%d"}`, i), up)
		}
		p.header("qoserve_replica_crashes_total", "Replica crashes by replica.", "counter")
		for i, r := range fs.Replicas {
			p.intValue("qoserve_replica_crashes_total", fmt.Sprintf(`{replica="%d"}`, i), r.Crashes)
		}
		p.header("qoserve_replica_restarts_total", "Replica restarts by replica.", "counter")
		for i, r := range fs.Replicas {
			p.intValue("qoserve_replica_restarts_total", fmt.Sprintf(`{replica="%d"}`, i), r.Restarts)
		}
		p.header("qoserve_replica_slow_factor", "Execution-time multiplier (1 nominal).", "gauge")
		for i, r := range fs.Replicas {
			f := r.SlowFactor
			if f <= 0 {
				f = 1
			}
			p.value("qoserve_replica_slow_factor", fmt.Sprintf(`{replica="%d"}`, i), f)
		}
		p.header("qoserve_request_retries_total", "Requests re-enqueued after replica crashes.", "counter")
		p.intValue("qoserve_request_retries_total", "", fs.Retries)
		p.header("qoserve_lost_tokens_total", "Tokens of progress discarded by replica crashes.", "counter")
		p.intValue("qoserve_lost_tokens_total", "", fs.LostTokens)
		p.header("qoserve_requests_failed_total", "Requests permanently failed with a reason.", "counter")
		p.intValue("qoserve_requests_failed_total", "", uint64(fs.FailedRequests))
		p.header("qoserve_requests_parked", "Requests waiting for any healthy replica.", "gauge")
		p.intValue("qoserve_requests_parked", "", uint64(fs.Parked))
	}

	p.histogramMetric("qoserve_iteration_virtual_seconds",
		"Iteration (batch) execution time in virtual seconds.", cum, hsum, htotal)

	// Rolling per-class gauges over the trailing metrics window. Classes
	// with no traffic in the window report NaN quantiles, the Prometheus
	// convention for undefined summaries.
	quantiles := []struct {
		label string
		q     float64
	}{{"0.5", 0.5}, {"0.99", 0.99}}

	p.header("qoserve_class_ttft_seconds", "Rolling time-to-first-token quantiles by class.", "gauge")
	for _, c := range s.cfg.Classes {
		f := metrics.ByClass(c.Name)
		for _, qq := range quantiles {
			p.value("qoserve_class_ttft_seconds",
				fmt.Sprintf(`{class=%q,quantile=%q}`, c.Name, qq.label), recent.TTFTQuantile(f, qq.q))
		}
	}
	p.header("qoserve_class_ttlt_seconds", "Rolling completion-latency quantiles by class.", "gauge")
	for _, c := range s.cfg.Classes {
		f := metrics.ByClass(c.Name)
		for _, qq := range quantiles {
			p.value("qoserve_class_ttlt_seconds",
				fmt.Sprintf(`{class=%q,quantile=%q}`, c.Name, qq.label), recent.TTLTQuantile(f, qq.q))
		}
	}
	p.header("qoserve_class_max_tbt_seconds", "Rolling worst inter-token gap p99 by class.", "gauge")
	for _, c := range s.cfg.Classes {
		p.value("qoserve_class_max_tbt_seconds",
			fmt.Sprintf(`{class=%q,quantile="0.99"}`, c.Name),
			recent.MaxTBTQuantile(metrics.ByClass(c.Name), 0.99))
	}
	p.header("qoserve_class_violation_ratio", "Rolling SLO violation fraction by class.", "gauge")
	for _, c := range s.cfg.Classes {
		p.value("qoserve_class_violation_ratio",
			fmt.Sprintf(`{class=%q}`, c.Name), recent.ViolationRate(metrics.ByClass(c.Name)))
	}
	p.header("qoserve_class_requests_total", "Lifetime requests by class.", "counter")
	for _, c := range s.cfg.Classes {
		p.intValue("qoserve_class_requests_total",
			fmt.Sprintf(`{class=%q}`, c.Name), uint64(sum.Count(metrics.ByClass(c.Name))))
	}
}

// handleDebugTrace serves the most recent iteration records. Query
// parameter n bounds the count (default 100). With tracing disabled the
// response reports enabled=false and no records.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	n := 100
	if arg := r.URL.Query().Get("n"); arg != "" {
		v, err := strconv.Atoi(arg)
		if err != nil || v <= 0 {
			writeError(w, http.StatusBadRequest, "n", "must be a positive integer, got %q", arg)
			return
		}
		n = v
	}
	resp := TraceResponse{Iterations: []TracedIteration{}}
	if s.tracer != nil {
		resp.Enabled = true
		resp.Capacity = s.tracer.Cap()
		resp.Total = s.tracer.Total()
		for _, it := range s.tracer.Snapshot(n) {
			resp.Iterations = append(resp.Iterations, tracedIteration(it))
		}
	}
	writeJSON(w, resp)
}

func tracedIteration(it trace.Iteration) TracedIteration {
	out := TracedIteration{
		Seq:           it.Seq,
		Policy:        it.Policy,
		PlannedAtMS:   msT(it.PlannedAt),
		CompletedAtMS: msT(it.CompletedAt),
		ChunkTokens:   it.Batch.PrefillTokens,
		Decodes:       it.Batch.Decodes,
		PredictedMS:   msT(it.Predicted),
		ActualMS:      msT(it.Actual),
		QueueMain:     it.QueueMain,
		QueueReleg:    it.QueueRelegated,
		QueueDecode:   it.QueueDecode,
	}
	for _, pf := range it.Batch.Prefill {
		out.Prefill = append(out.Prefill, TracedPrefill{Req: pf.Req, Tokens: pf.Tokens, CtxStart: pf.CtxStart})
	}
	for _, ev := range it.Events {
		out.Events = append(out.Events, TracedEvent{
			AtMS: msT(ev.At), Kind: ev.Kind.String(), Req: ev.Req, Class: ev.Class, Reason: ev.Reason,
		})
	}
	return out
}

// handleDebugQueues serves a live queue snapshot, summed over replicas.
func (s *Server) handleDebugQueues(w http.ResponseWriter, _ *http.Request) {
	resp := QueuesResponse{
		Policy:       s.policyName(),
		VirtualNowMS: msT(s.vnow()),
		Pending:      int(s.inFlight.Load()),
		Served:       int(s.accepted.Load()),
		Iterations:   s.iterations.Load(),
		TraceEnabled: s.tracer != nil,
		Replicas:     len(s.reps),
	}
	q := s.Queues()
	resp.QueueMain, resp.QueueRelegated, resp.QueueDecode = q.Main, q.Relegated, q.Decode
	resp.QueuesReported = q.Reported
	writeJSON(w, resp)
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	var req GenerateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "", "malformed request body: %v", err)
		return
	}
	prio := qos.High
	switch req.Priority {
	case "", "high":
	case "low":
		prio = qos.Low
	default:
		writeError(w, http.StatusBadRequest, "priority", "unknown priority %q (want \"high\" or \"low\")", req.Priority)
		return
	}
	// Parse the prefix chain into a pooled scratch buffer: SubmitTo copies
	// the hashes it keeps, so the scratch always goes straight back to the
	// pool and a steady stream of chained submits parses garbage-free.
	sp := chainScratch.Get().(*[]uint64)
	chain, err := kvcache.ParseChainInto((*sp)[:0], req.PrefixChain)
	if err != nil {
		chainScratch.Put(sp)
		writeError(w, http.StatusBadRequest, "prefix_chain", "%v", err)
		return
	}
	var stream Stream
	err = s.SubmitTo(Submission{
		App:          req.App,
		Class:        req.Class,
		Priority:     prio,
		PromptTokens: req.PromptTokens,
		DecodeTokens: req.DecodeTokens,
		PrefixHashes: chain,
	}, &stream)
	*sp = chain[:0]
	chainScratch.Put(sp)
	if err != nil {
		var serr *SubmissionError
		switch {
		case errors.As(err, &serr):
			writeError(w, http.StatusBadRequest, serr.Field, "%s", serr.Msg)
		case errors.Is(err, ErrClosed):
			writeError(w, http.StatusServiceUnavailable, "", "server is shutting down")
		case errors.Is(err, ErrNoHealthyReplica):
			writeError(w, http.StatusServiceUnavailable, "", "no healthy prefill replica")
		default:
			writeError(w, http.StatusInternalServerError, "", "%v", err)
		}
		return
	}

	w.Header().Set("Content-Type", "application/jsonl")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	cancel := r.Context().Done()
	for {
		ev, ok := stream.next(cancel)
		if !ok {
			return // client went away or the stream ended
		}
		out := TokenEvent{Event: "token", Token: ev.Token, AtMS: ms(ev.At)}
		if ev.Done {
			res := stream.Result()
			out.Event = "done"
			out.TTFTMS = ms(res.TTFT)
			out.TTLTMS = ms(res.TTLT)
			out.Violated = res.Violated
			out.Relegate = res.Releg
		}
		if err := enc.Encode(out); err != nil {
			return // client went away
		}
		if flusher != nil {
			flusher.Flush()
		}
		if ev.Done {
			return
		}
	}
}

// chainScratch pools prefix-chain parse buffers for handleGenerate.
var chainScratch = sync.Pool{New: func() any {
	s := make([]uint64, 0, 64)
	return &s
}}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.Stats()
	writeJSON(w, StatsResponse{
		VirtualNowMS:  ms(st.VirtualNow),
		Pending:       st.Pending,
		Served:        st.Served,
		Iterations:    st.Iterations,
		Tokens:        st.Tokens,
		ViolationRate: st.ViolationRate,
		DroppedEvents: st.DroppedEvents,
		Replicas:      st.Replicas,
	})
}

func (s *Server) handleClasses(w http.ResponseWriter, _ *http.Request) {
	type classInfo struct {
		Name   string  `json:"name"`
		Kind   string  `json:"kind"`
		TTFTMS float64 `json:"ttft_ms,omitempty"`
		TBTMS  float64 `json:"tbt_ms,omitempty"`
		TTLTMS float64 `json:"ttlt_ms,omitempty"`
	}
	out := make([]classInfo, 0, len(s.cfg.Classes))
	for _, c := range s.cfg.Classes {
		out = append(out, classInfo{
			Name:   c.Name,
			Kind:   c.Kind.String(),
			TTFTMS: ms(c.SLO.TTFT.Duration()),
			TBTMS:  ms(c.SLO.TBT.Duration()),
			TTLTMS: ms(c.SLO.TTLT.Duration()),
		})
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		writeError(w, http.StatusInternalServerError, "", "%v", err)
	}
}

// writeError emits the ErrorResponse schema with the given status. field
// may be empty when the error is not attributable to one request field.
func writeError(w http.ResponseWriter, status int, field, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorResponse{Error: fmt.Sprintf(format, args...), Field: field})
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func msT(t sim.Time) float64 { return ms(t.Duration()) }
