package server

import (
	"context"
	"sync"
	"testing"
	"time"

	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/qos"
	"qoserve/internal/request"
	"qoserve/internal/sched"
	"qoserve/internal/sim"
)

// newFrameServer is newTestServer with batched event frames enabled.
func newFrameServer(t *testing.T, s sched.Scheduler, frame int) *Server {
	t.Helper()
	srv, err := New(Config{
		Model:      model.Llama3_8B_A100_TP1(),
		Scheduler:  s,
		Classes:    qos.Table3(),
		Timescale:  2000,
		EventFrame: frame,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// TestFrameStreamsTokens is TestServerStreamsTokens under batched
// delivery: a tiny frame size forces multi-frame streams, and the Recv
// contract (every token observed or dropped-with-skips, final Done always
// last, frozen Result afterwards) must hold exactly as in unbatched mode.
func TestFrameStreamsTokens(t *testing.T) {
	srv := newFrameServer(t, qoserveSched(), 2)
	var stream Stream
	if err := srv.SubmitTo(Submission{Class: "Q1", PromptTokens: 500, DecodeTokens: 5}, &stream); err != nil {
		t.Fatal(err)
	}
	if stream.Events != nil {
		t.Fatal("batched stream exposes an Events channel")
	}
	var events []Event
	for {
		ev, ok := stream.Recv()
		if !ok {
			break
		}
		events = append(events, ev)
	}
	if len(events) == 0 {
		t.Fatal("no events received")
	}
	last := events[len(events)-1]
	if !last.Done || last.Token != 5 {
		t.Fatalf("final event = %+v, want Done with token 5", last)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Token <= events[i-1].Token {
			t.Errorf("tokens not strictly increasing: %d after %d", events[i].Token, events[i-1].Token)
		}
		if events[i].At < events[i-1].At {
			t.Error("token times not monotone")
		}
	}
	res := stream.Result()
	if res.TTFT <= 0 || res.TTLT < res.TTFT {
		t.Errorf("result = %+v", res)
	}
	if res.Violated {
		t.Error("lone request violated its SLO")
	}
	// The stream is exhausted: further receives report ok=false.
	if _, ok := stream.Recv(); ok {
		t.Error("Recv after Done returned an event")
	}
}

// TestFrameConcurrentClients drives many concurrent batched streams and
// checks the ledger: every request completes, Drain returns promptly, and
// the accepted/pending counters and the metrics summary agree.
func TestFrameConcurrentClients(t *testing.T) {
	srv := newFrameServer(t, qoserveSched(), 4)
	const clients = 20
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		class := []string{"Q1", "Q2", "Q3"}[i%3]
		go func() {
			defer wg.Done()
			stream, err := srv.Submit(Submission{Class: class, PromptTokens: 300, DecodeTokens: 4})
			if err != nil {
				errs <- err
				return
			}
			last := Event{}
			for {
				ev, ok := stream.Recv()
				if !ok {
					break
				}
				last = ev
			}
			if !last.Done || last.Token != 4 {
				errs <- context.DeadlineExceeded
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Served != clients || st.Pending != 0 || st.Tokens == 0 {
		t.Fatalf("stats = %+v", st)
	}
	sum := srv.summary(srv.vnow())
	if len(sum.Outcomes) != clients {
		t.Fatalf("summary holds %d outcomes, want %d", len(sum.Outcomes), clients)
	}
	for _, o := range sum.Outcomes {
		if !o.Completed {
			t.Fatalf("outcome %d not completed: %+v", o.ID, o)
		}
	}
}

// TestFrameFinalEventIdentity submits the same workload to an unbatched
// and a batched gateway and checks that every stream's final event is
// identical in both modes (token index and Done flag; timing is
// wall-clock-dependent and excluded). This is the delivery-equivalence
// half of the seeded-replay test in internal/loadgen.
func TestFrameFinalEventIdentity(t *testing.T) {
	specs := []struct {
		class          string
		prompt, decode int
	}{
		{"Q1", 500, 5}, {"Q2", 900, 3}, {"Q3", 1400, 8},
		{"Q1", 200, 1}, {"Q2", 4000, 2}, {"Q3", 300, 6},
	}
	finals := func(batched bool) []Event {
		frame := 0
		if batched {
			frame = 3
		}
		srv, err := New(Config{
			Model:      model.Llama3_8B_A100_TP1(),
			Scheduler:  qoserveSched(),
			Classes:    qos.Table3(),
			Timescale:  2000,
			EventFrame: frame,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		out := make([]Event, len(specs))
		var wg sync.WaitGroup
		for i, sp := range specs {
			wg.Add(1)
			go func() {
				defer wg.Done()
				stream, err := srv.Submit(Submission{Class: sp.class, PromptTokens: sp.prompt, DecodeTokens: sp.decode})
				if err != nil {
					t.Error(err)
					return
				}
				for {
					ev, ok := stream.Recv()
					if !ok {
						break
					}
					out[i] = ev
				}
			}()
		}
		wg.Wait()
		return out
	}
	plain, framed := finals(false), finals(true)
	for i := range specs {
		if !plain[i].Done || !framed[i].Done {
			t.Fatalf("request %d missing Done: unbatched %+v, batched %+v", i, plain[i], framed[i])
		}
		if plain[i].Token != framed[i].Token {
			t.Errorf("request %d final token differs: unbatched %d, batched %d",
				i, plain[i].Token, framed[i].Token)
		}
		if framed[i].Token != specs[i].decode {
			t.Errorf("request %d final token = %d, want %d", i, framed[i].Token, specs[i].decode)
		}
	}
}

// TestFrameConfigValidation covers the EventFrame/FrameBuffer knobs.
func TestFrameConfigValidation(t *testing.T) {
	base := Config{Model: model.Llama3_8B_A100_TP1(), Scheduler: &untraceable{}, Classes: qos.Table3()}

	cfg := base
	cfg.EventFrame = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative EventFrame accepted")
	}
	cfg = base
	cfg.FrameBuffer = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative FrameBuffer accepted")
	}
	cfg = base
	cfg.FrameBuffer = 4
	if _, err := New(cfg); err == nil {
		t.Error("FrameBuffer without EventFrame accepted")
	}
	cfg = base
	cfg.EventFrame = 16
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.frameBuf < 2 {
		t.Errorf("derived frame buffer %d, want >= 2", srv.frameBuf)
	}
}

// TestStreamTableShrink is the regression test for stream-table growth:
// after a burst of streamShrinkMin+ concurrent streams drains, the
// replica's table must be rebuilt at the survivors' size (Go maps never
// release buckets on delete), preserving the survivors and counting the
// rebuild; small or still-occupied tables must be left alone.
func TestStreamTableShrink(t *testing.T) {
	srv, err := New(Config{
		Model:     model.Llama3_8B_A100_TP1(),
		Scheduler: &untraceable{},
		Classes:   qos.Table3(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close() // stop the loop; the replica state stays usable
	rp := srv.reps[0]

	const burst = 2 * streamShrinkMin
	for i := uint64(1); i <= burst; i++ {
		rp.streams[i] = &streamEntry{id: i}
		if len(rp.streams) > rp.streamsPeak {
			rp.streamsPeak = len(rp.streams)
		}
	}
	// Drain to just above the shrink threshold: no rebuild yet.
	for i := uint64(burst/streamShrinkFactor + 2); i <= burst; i++ {
		delete(rp.streams, i)
	}
	rp.maybeShrinkStreams()
	if got := srv.streamShrinks.Load(); got != 0 {
		t.Fatalf("table shrank at %d/%d occupancy (shrinks=%d)", len(rp.streams), rp.streamsPeak, got)
	}
	// Drain below the threshold: one rebuild, survivors intact, peak reset.
	const survivors = 16
	for i := uint64(survivors + 1); i <= burst; i++ {
		delete(rp.streams, i)
	}
	rp.maybeShrinkStreams()
	if got := srv.streamShrinks.Load(); got != 1 {
		t.Fatalf("shrinks = %d, want 1", got)
	}
	if len(rp.streams) != survivors || rp.streamsPeak != survivors {
		t.Fatalf("after shrink: len=%d peak=%d, want %d", len(rp.streams), rp.streamsPeak, survivors)
	}
	for i := uint64(1); i <= survivors; i++ {
		if e := rp.streams[i]; e == nil || e.id != i {
			t.Fatalf("survivor %d lost in rebuild", i)
		}
	}
	// Idempotent: a second pass below streamShrinkMin never rebuilds again.
	rp.maybeShrinkStreams()
	if got := srv.streamShrinks.Load(); got != 1 {
		t.Fatalf("shrinks = %d after idempotent pass, want 1", got)
	}
}

// oneShot is a minimal allocation-free test scheduler: every added request
// runs its entire remaining prompt as one prefill chunk in the next batch.
// With DecodeTokens == 1 a request finishes in the same iteration it is
// admitted, which keeps the serving loop's steady state fully exercised
// (admit, plan, complete, finalize, frame flush) with no queue growth.
type oneShot struct {
	pending []sched.PrefillAlloc
	batch   []sched.PrefillAlloc
	n       int
}

func newOneShot() *oneShot {
	return &oneShot{
		pending: make([]sched.PrefillAlloc, 0, 64),
		batch:   make([]sched.PrefillAlloc, 0, 64),
	}
}

func (o *oneShot) Name() string { return "oneshot" }
func (o *oneShot) Add(r *request.Request, _ sim.Time) {
	o.pending = append(o.pending, sched.PrefillAlloc{Req: r, Tokens: r.PromptTokens - r.PrefilledTokens})
	o.n++
}
func (o *oneShot) PlanBatch(sim.Time) sched.Batch {
	o.batch, o.pending = o.pending, o.batch[:0]
	return sched.Batch{Prefill: o.batch}
}
func (o *oneShot) OnBatchComplete(b sched.Batch, _ sim.Time) { o.n -= len(b.Prefill) }
func (o *oneShot) Pending() int                              { return o.n }

// TestFrameSubmitRecvAllocFree extends the steady-state allocation guard
// across the whole batched token path: SubmitTo with a recycled Stream,
// admission, planning, completion, outcome freezing, frame delivery, and
// Recv must together allocate nothing once the pools are warm. The serving
// loop runs concurrently and testing.AllocsPerRun counts global mallocs,
// so this covers the loop goroutine too.
func TestFrameSubmitRecvAllocFree(t *testing.T) {
	srv, err := New(Config{
		Model:      model.Llama3_8B_A100_TP1(),
		Scheduler:  newOneShot(),
		Classes:    qos.Table3(),
		Timescale:  100000,
		EventFrame: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sub := Submission{Class: "Q1", PromptTokens: 16, DecodeTokens: 1}
	var stream Stream
	step := func() {
		if err := srv.SubmitTo(sub, &stream); err != nil {
			t.Fatal(err)
		}
		for {
			ev, ok := stream.Recv()
			if !ok {
				t.Fatal("stream ended without Done")
			}
			if ev.Done {
				return
			}
		}
	}
	// Warm the pools, the live table, and the loop's scratch.
	for i := 0; i < 64; i++ {
		step()
	}
	// The finished-outcome ledger grows forever by design; pre-grow it so
	// its (amortized, cold) append is not charged to the steady state.
	srv.finMu.Lock()
	if need := len(srv.doneOut) + 512; cap(srv.doneOut) < need {
		grown := make([]metrics.Outcome, len(srv.doneOut), need)
		copy(grown, srv.doneOut)
		srv.doneOut = grown
	}
	srv.finMu.Unlock()
	if allocs := testing.AllocsPerRun(300, step); allocs != 0 {
		t.Fatalf("batched submit+recv path allocates %.1f times per request, want 0", allocs)
	}
}
