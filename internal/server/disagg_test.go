package server

import (
	"context"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"qoserve/internal/model"
	"qoserve/internal/qos"
	"qoserve/internal/sched"
)

// newDisaggServer builds a two-tier gateway. Timescale 500 keeps
// iteration sleeps above the scheduler-jitter floor while finishing fast.
func newDisaggServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Model.Model.Name == "" {
		cfg.Model = model.Llama3_8B_A100_TP1()
	}
	cfg.Mode = "disagg"
	if cfg.Classes == nil {
		cfg.Classes = qos.Table3()
	}
	if cfg.Timescale == 0 {
		cfg.Timescale = 500
	}
	if cfg.SchedulerFactory == nil {
		cfg.SchedulerFactory = func() sched.Scheduler { return sched.NewSarathi(sched.EDF, 512) }
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

func TestDisaggConfigValidation(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	factory := func() sched.Scheduler { return sched.NewSarathi(sched.FCFS, 512) }
	base := Config{Model: mc, SchedulerFactory: factory, Classes: qos.Table3()}

	bad := []func(*Config){
		func(c *Config) { c.Mode = "disagg"; c.Replicas = 1 },
		func(c *Config) { c.Mode = "disagg"; c.Replicas = 4; c.PrefillReplicas = 4 },
		func(c *Config) { c.Mode = "disagg"; c.Replicas = 4; c.PrefillReplicas = -1 },
		func(c *Config) { c.Mode = "colocated"; c.Replicas = 4; c.PrefillReplicas = 2 },
		func(c *Config) { c.Mode = "spatial"; c.Replicas = 4 },
		func(c *Config) { c.Mode = "disagg"; c.Replicas = 4; c.TransferBandwidth = -1 },
		func(c *Config) { c.Mode = "disagg"; c.Replicas = 4; c.StrictestTBT = -time.Millisecond },
	}
	for i, mutate := range bad {
		cfg := base
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: config accepted, want error", i)
		}
	}

	cfg := base
	cfg.Mode = "disagg"
	cfg.Replicas = 5
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.prefillReps != 3 {
		t.Fatalf("default prefill tier %d, want 3 of 5", srv.prefillReps)
	}
	if srv.maxDecodeBatch < 1 {
		t.Fatalf("derived decode batch %d", srv.maxDecodeBatch)
	}
}

// TestDisaggCompletesAllRequests drives a 2+2 gateway end to end: every
// request must stream its full output through the prefill -> transfer ->
// decode pipeline, and the handoff counters must account every prompt.
func TestDisaggCompletesAllRequests(t *testing.T) {
	srv := newDisaggServer(t, Config{Replicas: 4, PrefillReplicas: 2})
	const n = 12
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		class := []string{"Q1", "Q2", "Q3"}[i%3]
		go func() {
			defer wg.Done()
			stream, err := srv.Submit(Submission{Class: class, PromptTokens: 400, DecodeTokens: 6})
			if err != nil {
				errs <- err
				return
			}
			last := Event{}
			for ev := range stream.Events {
				last = ev
			}
			if !last.Done || last.Token != 6 {
				errs <- context.DeadlineExceeded
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if got := srv.handoffs.Load(); got != n {
		t.Errorf("handoffs = %d, want %d", got, n)
	}
	if got := srv.transferTokens.Load(); got != n*400 {
		t.Errorf("transfer tokens = %d, want %d", got, n*400)
	}
	// Prompt tokens are counted once, on the prefill tier; output tokens on
	// the decode tier (the first token of each request rides the prefill).
	if got := srv.prefillTokens.Load(); got != n*400 {
		t.Errorf("prefill tokens = %d, want %d", got, n*400)
	}
	if got := srv.decodeTokens.Load(); got != n*(6-1) {
		t.Errorf("decode tokens = %d, want %d", got, n*5)
	}

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body, _ := io.ReadAll(rec.Result().Body)
	for _, want := range []string{
		"qoserve_disagg_handoffs_total 12",
		"qoserve_disagg_transfer_tokens_total 4800",
		`qoserve_disagg_tier_replicas{tier="prefill"} 2`,
		`qoserve_disagg_tier_replicas{tier="decode"} 2`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestDisaggPrefillTierPreemptsLongPrompt is the decoupled-granularity
// property: because the prefill tier runs the chunked EDF scheduler, a
// tight-deadline short prompt submitted behind a huge one overtakes it
// mid-prefill and finishes its whole pipeline before the huge prompt even
// produces a first token.
func TestDisaggPrefillTierPreemptsLongPrompt(t *testing.T) {
	srv := newDisaggServer(t, Config{Replicas: 2, PrefillReplicas: 1})
	giant, err := srv.Submit(Submission{Class: "Q3", PromptTokens: 8192, DecodeTokens: 4})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond) // let the giant start prefilling
	short, err := srv.Submit(Submission{Class: "Q1", PromptTokens: 256, DecodeTokens: 4})
	if err != nil {
		t.Fatal(err)
	}
	for range short.Events {
	}
	for range giant.Events {
	}
	sres, gres := short.Result(), giant.Result()
	if sres.TTLT >= gres.TTFT {
		t.Fatalf("short request did not overtake the giant prefill: short TTLT %v, giant TTFT %v", sres.TTLT, gres.TTFT)
	}
}

// TestDebugLoadEndpoint checks /debug/load exposes per-replica roles,
// liveness, and wire-form snapshots.
func TestDebugLoadEndpoint(t *testing.T) {
	srv := newDisaggServer(t, Config{Replicas: 3, PrefillReplicas: 2})
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/load", nil))
	body, _ := io.ReadAll(rec.Result().Body)
	for _, want := range []string{`"mode":"disagg"`, `"role":"prefill"`, `"role":"decode"`, `"snapshot":"v1:`} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/debug/load missing %q in %s", want, body)
		}
	}
}
