package server

import (
	"context"
	"testing"
	"time"

	"qoserve/internal/cluster"
	"qoserve/internal/kvcache"
	"qoserve/internal/model"
	"qoserve/internal/qos"
	"qoserve/internal/sched"
)

func newPrefixServer(t *testing.T, replicas int, lb cluster.GatewayBalancer) *Server {
	t.Helper()
	srv, err := New(Config{
		Model:            model.Llama3_8B_A100_TP1(),
		SchedulerFactory: func() sched.Scheduler { return sched.NewSarathi(sched.FCFS, 512) },
		Replicas:         replicas,
		Balancer:         lb,
		Classes:          qos.Table3(),
		Timescale:        2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// drainStream consumes a stream to completion.
func drainStream(t *testing.T, srv *Server, sub Submission) {
	t.Helper()
	stream, err := srv.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	for range stream.Events {
	}
}

// A session's second turn must land on the replica that cached its first
// turn's prefix and be served from cache — with four replicas a load-blind
// balancer would usually route it elsewhere.
func TestGatewayPrefixAffinityRouting(t *testing.T) {
	srv := newPrefixServer(t, 4, &cluster.PrefixAffinity{})

	prompt := 600
	chain := kvcache.SyntheticChain(11, 0, kvcache.ChainBlocks(prompt, kvcache.DefaultBlockTokens))
	drainStream(t, srv, Submission{Class: "Q1", PromptTokens: prompt, DecodeTokens: 4, PrefixHashes: chain})

	kv := srv.KVStats()
	if kv.PrefixHitTokens != 0 {
		t.Fatalf("first turn hit %d tokens", kv.PrefixHitTokens)
	}

	// Turn 2 re-sends the grown conversation; every block turn 1 cached
	// must hit, which only happens if routing found the right replica.
	grown := 900
	chain2 := kvcache.SyntheticChain(11, 0, kvcache.ChainBlocks(grown, kvcache.DefaultBlockTokens))
	copy(chain2, chain)
	drainStream(t, srv, Submission{Class: "Q1", PromptTokens: grown, DecodeTokens: 4, PrefixHashes: chain2})

	kv = srv.KVStats()
	want := uint64(len(chain) * kvcache.DefaultBlockTokens)
	if kv.PrefixHitTokens != want {
		t.Fatalf("second turn hit %d tokens, want %d", kv.PrefixHitTokens, want)
	}
	if kv.CachedHBMBlocks == 0 {
		t.Error("no blocks left cached after completion")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// Chainless submissions must flow through a prefix balancer unchanged, and
// distinct sessions must not contaminate each other's caches.
func TestGatewayPrefixDisjointSessions(t *testing.T) {
	srv := newPrefixServer(t, 2, &cluster.PrefixAffinity{})

	drainStream(t, srv, Submission{Class: "Q1", PromptTokens: 300, DecodeTokens: 3})

	a := kvcache.SyntheticChain(1, 0, 12)
	b := kvcache.SyntheticChain(2, 0, 12)
	drainStream(t, srv, Submission{Class: "Q1", PromptTokens: 300, DecodeTokens: 3, PrefixHashes: a})
	drainStream(t, srv, Submission{Class: "Q1", PromptTokens: 300, DecodeTokens: 3, PrefixHashes: b})

	if kv := srv.KVStats(); kv.PrefixHitTokens != 0 {
		t.Fatalf("disjoint sessions hit %d tokens", kv.PrefixHitTokens)
	}

	// Replaying session A is a full hit wherever it landed.
	drainStream(t, srv, Submission{Class: "Q1", PromptTokens: 300, DecodeTokens: 3, PrefixHashes: a})
	kv := srv.KVStats()
	if want := uint64(12 * kvcache.DefaultBlockTokens); kv.PrefixHitTokens != want {
		t.Fatalf("replay hit %d tokens, want %d", kv.PrefixHitTokens, want)
	}
}

// A chain longer than the prompt's shareable blocks must be truncated at
// submission so completed requests never leave stale over-length pins.
func TestGatewayTruncatesOverlongChain(t *testing.T) {
	srv := newPrefixServer(t, 1, &cluster.PrefixAffinity{})

	// 10 blocks of chain for a 65-token prompt (4 shareable blocks).
	chain := kvcache.SyntheticChain(3, 0, 10)
	drainStream(t, srv, Submission{Class: "Q1", PromptTokens: 65, DecodeTokens: 2, PrefixHashes: chain})

	kv := srv.KVStats()
	if kv.CachedHBMBlocks != 4 {
		t.Fatalf("cached %d blocks, want 4 (chain truncated to shareable prefix)", kv.CachedHBMBlocks)
	}

	// The full-prompt replay hits exactly the truncated prefix.
	drainStream(t, srv, Submission{Class: "Q1", PromptTokens: 65, DecodeTokens: 2, PrefixHashes: chain})
	if kv := srv.KVStats(); kv.PrefixHitTokens != 64 {
		t.Fatalf("replay hit %d tokens, want 64", kv.PrefixHitTokens)
	}
}
