package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// Client talks to a qoserved instance over HTTP. It is safe for concurrent
// use; create with NewClient.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the daemon at baseURL (e.g.
// "http://localhost:8080"). A nil httpClient uses a default with no
// timeout, since generate streams can be long-lived.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{}
	}
	return &Client{base: baseURL, http: httpClient}
}

// Generate submits a request and consumes its token stream, invoking
// onToken (if non-nil) per token event, and returns the final done event.
func (c *Client) Generate(ctx context.Context, req GenerateRequest, onToken func(TokenEvent)) (TokenEvent, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return TokenEvent{}, err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/v1/generate", bytes.NewReader(body))
	if err != nil {
		return TokenEvent{}, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(httpReq)
	if err != nil {
		return TokenEvent{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return TokenEvent{}, decodeError(resp, "generate")
	}

	scanner := bufio.NewScanner(resp.Body)
	var last TokenEvent
	for scanner.Scan() {
		var ev TokenEvent
		if err := json.Unmarshal(scanner.Bytes(), &ev); err != nil {
			return TokenEvent{}, fmt.Errorf("server: bad event %q: %w", scanner.Text(), err)
		}
		if onToken != nil {
			onToken(ev)
		}
		last = ev
		if ev.Event == "done" {
			return last, nil
		}
	}
	if err := scanner.Err(); err != nil {
		return TokenEvent{}, err
	}
	return TokenEvent{}, fmt.Errorf("server: stream ended without done event")
}

// FetchStats reads /v1/stats.
func (c *Client) FetchStats(ctx context.Context) (StatsResponse, error) {
	var out StatsResponse
	return out, c.getJSON(ctx, "/v1/stats", &out)
}

// ClassInfo mirrors one /v1/classes entry.
type ClassInfo struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	TTFTMS float64 `json:"ttft_ms,omitempty"`
	TBTMS  float64 `json:"tbt_ms,omitempty"`
	TTLTMS float64 `json:"ttlt_ms,omitempty"`
}

// FetchClasses reads /v1/classes.
func (c *Client) FetchClasses(ctx context.Context) ([]ClassInfo, error) {
	var out []ClassInfo
	return out, c.getJSON(ctx, "/v1/classes", &out)
}

// FetchTrace reads /debug/trace, asking for up to n recent iterations
// (server default if n <= 0).
func (c *Client) FetchTrace(ctx context.Context, n int) (TraceResponse, error) {
	path := "/debug/trace"
	if n > 0 {
		path += fmt.Sprintf("?n=%d", n)
	}
	var out TraceResponse
	return out, c.getJSON(ctx, path, &out)
}

// FetchQueues reads /debug/queues.
func (c *Client) FetchQueues(ctx context.Context) (QueuesResponse, error) {
	var out QueuesResponse
	return out, c.getJSON(ctx, "/debug/queues", &out)
}

func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp, path)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// decodeError turns a non-2xx response carrying the ErrorResponse schema
// into a Go error; unparseable bodies fall back to the status code alone.
func decodeError(resp *http.Response, what string) error {
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err == nil && er.Error != "" {
		if er.Field != "" {
			return fmt.Errorf("server: %s status %d: %s (field %q)", what, resp.StatusCode, er.Error, er.Field)
		}
		return fmt.Errorf("server: %s status %d: %s", what, resp.StatusCode, er.Error)
	}
	return fmt.Errorf("server: %s status %d", what, resp.StatusCode)
}

// LoadReport summarizes a DriveLoad run.
type LoadReport struct {
	Requests  int
	Violated  int
	Relegated int
	Wall      time.Duration
	// TTFTs holds each request's virtual TTFT for percentile analysis.
	TTFTs []time.Duration
}

// DriveLoad runs concurrent closed-loop clients against the daemon: each of
// the workers loops issuing requests from the reqs list (round-robin) until
// total requests have completed. It is the library behind cmd/qoserve-bench.
func (c *Client) DriveLoad(ctx context.Context, reqs []GenerateRequest, workers, total int) (*LoadReport, error) {
	if len(reqs) == 0 || workers <= 0 || total <= 0 {
		return nil, fmt.Errorf("server: DriveLoad needs requests, workers, and a total")
	}
	start := time.Now()
	type outcome struct {
		ev  TokenEvent
		err error
	}
	work := make(chan GenerateRequest)
	results := make(chan outcome, total)
	for w := 0; w < workers; w++ {
		go func() {
			for req := range work {
				ev, err := c.Generate(ctx, req, nil)
				results <- outcome{ev, err}
			}
		}()
	}
	go func() {
		defer close(work)
		for i := 0; i < total; i++ {
			select {
			case work <- reqs[i%len(reqs)]:
			case <-ctx.Done():
				return
			}
		}
	}()

	rep := &LoadReport{}
	for i := 0; i < total; i++ {
		select {
		case res := <-results:
			if res.err != nil {
				return nil, res.err
			}
			rep.Requests++
			if res.ev.Violated {
				rep.Violated++
			}
			if res.ev.Relegate {
				rep.Relegated++
			}
			rep.TTFTs = append(rep.TTFTs,
				time.Duration(res.ev.TTFTMS*float64(time.Millisecond)))
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	rep.Wall = time.Since(start)
	return rep, nil
}
