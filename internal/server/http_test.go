package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"qoserve/internal/model"
	"qoserve/internal/qos"
	"qoserve/internal/request"
	"qoserve/internal/sched"
	"qoserve/internal/sim"
)

// newTracedServer is newTestServer with the iteration tracer on.
func newTracedServer(t *testing.T, s sched.Scheduler, depth int) *Server {
	t.Helper()
	srv, err := New(Config{
		Model:      model.Llama3_8B_A100_TP1(),
		Scheduler:  s,
		Classes:    qos.Table3(),
		Timescale:  2000,
		TraceDepth: depth,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// serveOne submits a request and waits for its stream to finish.
func serveOne(t *testing.T, srv *Server, sub Submission) {
	t.Helper()
	stream, err := srv.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	for range stream.Events {
	}
}

// promLine matches one Prometheus text sample: name{labels} value.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|[-+]Inf)$`)

// TestMetricsPrometheusFormat validates the whole /metrics payload line by
// line against the text exposition format: every sample parses, every metric
// family is announced by a HELP/TYPE pair before its first sample, and the
// families the operations guide documents are all present.
func TestMetricsPrometheusFormat(t *testing.T) {
	srv := newTracedServer(t, qoserveSched(), 128)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	serveOne(t, srv, Submission{Class: "Q1", PromptTokens: 300, DecodeTokens: 3})
	serveOne(t, srv, Submission{Class: "Q3", PromptTokens: 500, DecodeTokens: 2})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	announced := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			announced[strings.Fields(line)[2]] = true
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("unparseable sample line %q", line)
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		// Histogram sample suffixes belong to the base family.
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count")
		if !announced[name] && !announced[base] {
			t.Errorf("sample %q has no HELP/TYPE header", name)
		}
	}

	text := string(body)
	for _, want := range []string{
		"qoserve_requests_total 2",
		"qoserve_requests_pending 0",
		"qoserve_iterations_total",
		"qoserve_prefill_tokens_total",
		"qoserve_decode_tokens_total",
		"qoserve_relegations_total",
		`qoserve_queue_depth{queue="main"}`,
		`qoserve_queue_depth{queue="relegated"}`,
		`qoserve_queue_depth{queue="decode"}`,
		"qoserve_trace_iterations_total",
		"qoserve_trace_events_total",
		`qoserve_iteration_virtual_seconds_bucket{le="+Inf"}`,
		"qoserve_iteration_virtual_seconds_sum",
		"qoserve_iteration_virtual_seconds_count",
		`qoserve_class_ttft_seconds{class="Q1",quantile="0.5"}`,
		`qoserve_class_ttft_seconds{class="Q2",quantile="0.99"}`,
		`qoserve_class_ttlt_seconds{class="Q3",quantile="0.5"}`,
		`qoserve_class_max_tbt_seconds{class="Q1",quantile="0.99"}`,
		`qoserve_class_violation_ratio{class="Q1"}`,
		`qoserve_class_requests_total{class="Q1"} 1`,
		`qoserve_class_requests_total{class="Q2"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Q2 saw no traffic: its rolling quantiles must be NaN, not fabricated.
	if !strings.Contains(text, `qoserve_class_ttft_seconds{class="Q2",quantile="0.5"} NaN`) {
		t.Error("idle class quantile not NaN")
	}
	// No FaultStatus hook configured: the fault series must be absent.
	if strings.Contains(text, "qoserve_replica_up") {
		t.Error("fault series present without a FaultStatus hook")
	}
}

// TestMetricsFaultStatus wires a FaultStatus hook — the bridge a
// cluster-backed deployment provides from Cluster.Health()/FaultStats() —
// and checks the replica up/down gauges and retry/lost-work counters it
// feeds appear on /metrics.
func TestMetricsFaultStatus(t *testing.T) {
	srv, err := New(Config{
		Model:     model.Llama3_8B_A100_TP1(),
		Scheduler: qoserveSched(),
		Classes:   qos.Table3(),
		Timescale: 2000,
		FaultStatus: func() FaultStatus {
			return FaultStatus{
				Replicas: []ReplicaHealth{
					{Up: true, SlowFactor: 1},
					{Up: false, Crashes: 2, Restarts: 1, SlowFactor: 3.5},
				},
				Retries:        7,
				LostTokens:     1234,
				FailedRequests: 1,
				Parked:         3,
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`qoserve_replica_up{replica="0"} 1`,
		`qoserve_replica_up{replica="1"} 0`,
		`qoserve_replica_crashes_total{replica="1"} 2`,
		`qoserve_replica_restarts_total{replica="1"} 1`,
		`qoserve_replica_slow_factor{replica="1"} 3.5`,
		"qoserve_request_retries_total 7",
		"qoserve_lost_tokens_total 1234",
		"qoserve_requests_failed_total 1",
		"qoserve_requests_parked 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestDebugTraceReturnsRecentIterationsInOrder(t *testing.T) {
	srv := newTracedServer(t, qoserveSched(), 256)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	serveOne(t, srv, Submission{Class: "Q1", PromptTokens: 600, DecodeTokens: 4})

	var tr TraceResponse
	getJSONBody(t, ts.URL+"/debug/trace", &tr)
	if !tr.Enabled || tr.Capacity != 256 {
		t.Fatalf("trace meta = %+v", tr)
	}
	if tr.Total == 0 || len(tr.Iterations) == 0 {
		t.Fatal("no iterations recorded")
	}
	for i, it := range tr.Iterations {
		if i > 0 && it.Seq != tr.Iterations[i-1].Seq+1 {
			t.Fatalf("iteration seq not ascending: %d after %d", it.Seq, tr.Iterations[i-1].Seq)
		}
		if it.Policy != "QoServe" {
			t.Errorf("policy = %q", it.Policy)
		}
		if it.CompletedAtMS < it.PlannedAtMS || it.ActualMS <= 0 {
			t.Errorf("iteration %d timing: planned %v completed %v actual %v",
				it.Seq, it.PlannedAtMS, it.CompletedAtMS, it.ActualMS)
		}
	}
	last := tr.Iterations[len(tr.Iterations)-1]
	if last.Seq != tr.Total {
		t.Errorf("last seq = %d, total = %d", last.Seq, tr.Total)
	}
	// QoServe plans with its predictor: prefill iterations carry a
	// prediction, and the batch composition must account for the prompt.
	tokens, predicted := 0, false
	events := 0
	for _, it := range tr.Iterations {
		tokens += it.ChunkTokens
		if it.PredictedMS > 0 {
			predicted = true
		}
		events += len(it.Events)
	}
	if tokens != 600 {
		t.Errorf("traced prefill tokens = %d, want 600", tokens)
	}
	if !predicted {
		t.Error("no iteration carried a latency prediction")
	}
	if events == 0 {
		t.Error("admission event not traced")
	}

	// n bounds the response.
	var bounded TraceResponse
	getJSONBody(t, ts.URL+"/debug/trace?n=2", &bounded)
	if len(bounded.Iterations) != 2 {
		t.Fatalf("n=2 returned %d iterations", len(bounded.Iterations))
	}
	if bounded.Iterations[1].Seq != tr.Total {
		t.Errorf("bounded snapshot does not end at the newest iteration")
	}

	// Malformed n is a structured 400.
	resp, err := http.Get(ts.URL + "/debug/trace?n=bogus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Field != "n" || er.Error == "" {
		t.Errorf("error body = %+v", er)
	}
}

func TestDebugTraceDisabledByDefault(t *testing.T) {
	srv := newTestServer(t, qoserveSched())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var tr TraceResponse
	getJSONBody(t, ts.URL+"/debug/trace", &tr)
	if tr.Enabled || tr.Total != 0 || len(tr.Iterations) != 0 {
		t.Fatalf("default server traced: %+v", tr)
	}
}

func TestDebugQueues(t *testing.T) {
	srv := newTracedServer(t, qoserveSched(), 64)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	serveOne(t, srv, Submission{Class: "Q2", PromptTokens: 200, DecodeTokens: 2})

	var q QueuesResponse
	getJSONBody(t, ts.URL+"/debug/queues", &q)
	if q.Policy != "QoServe" || !q.QueuesReported || !q.TraceEnabled {
		t.Fatalf("queues = %+v", q)
	}
	if q.Served != 1 || q.Pending != 0 || q.Iterations == 0 {
		t.Errorf("counters = %+v", q)
	}
	if q.QueueMain != 0 || q.QueueRelegated != 0 || q.QueueDecode != 0 {
		t.Errorf("drained server reports queue depths %d/%d/%d",
			q.QueueMain, q.QueueRelegated, q.QueueDecode)
	}
}

func TestClientFetchesDebugEndpoints(t *testing.T) {
	srv := newTracedServer(t, qoserveSched(), 64)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	serveOne(t, srv, Submission{Class: "Q1", PromptTokens: 250, DecodeTokens: 2})

	c := NewClient(ts.URL, ts.Client())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	tr, err := c.FetchTrace(ctx, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Enabled || len(tr.Iterations) == 0 || len(tr.Iterations) > 5 {
		t.Fatalf("trace = %+v", tr)
	}
	q, err := c.FetchQueues(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if q.Served != 1 {
		t.Fatalf("queues = %+v", q)
	}
}

// TestGenerateErrorSchema checks every rejection path emits the documented
// {"error": ..., "field": ...} JSON with the right status code.
func TestGenerateErrorSchema(t *testing.T) {
	srv := newTestServer(t, qoserveSched())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name    string
		payload string
		status  int
		field   string
	}{
		{"malformed body", `{not json`, http.StatusBadRequest, ""},
		{"unknown class", `{"class":"nope","prompt_tokens":10,"decode_tokens":1}`, http.StatusBadRequest, "class"},
		{"bad priority", `{"class":"Q1","prompt_tokens":10,"decode_tokens":1,"priority":"vip"}`, http.StatusBadRequest, "priority"},
		{"zero prompt", `{"class":"Q1","prompt_tokens":0,"decode_tokens":1}`, http.StatusBadRequest, "prompt_tokens"},
		{"zero decode", `{"class":"Q1","prompt_tokens":10,"decode_tokens":0}`, http.StatusBadRequest, "decode_tokens"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/generate", "application/json",
				strings.NewReader(tc.payload))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.status)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("content type = %q", ct)
			}
			var er ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
				t.Fatal(err)
			}
			if er.Error == "" {
				t.Error("empty error message")
			}
			if er.Field != tc.field {
				t.Errorf("field = %q, want %q", er.Field, tc.field)
			}
		})
	}
}

func TestGenerateAfterCloseIs503(t *testing.T) {
	srv := newTestServer(t, qoserveSched())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Close()

	resp, err := http.Post(ts.URL+"/v1/generate", "application/json",
		strings.NewReader(`{"class":"Q1","prompt_tokens":10,"decode_tokens":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Error == "" {
		t.Error("empty error message")
	}
}

// untraceable is a minimal scheduler without the Traceable capability, to
// prove Config.TraceDepth on an unsupported policy is a configuration error.
type untraceable struct{ pending int }

func (u *untraceable) Name() string                          { return "untraceable" }
func (u *untraceable) Add(*request.Request, sim.Time)        { u.pending++ }
func (u *untraceable) PlanBatch(sim.Time) sched.Batch        { return sched.Batch{} }
func (u *untraceable) OnBatchComplete(sched.Batch, sim.Time) {}
func (u *untraceable) Pending() int                          { return u.pending }

func TestTraceDepthRequiresTraceableScheduler(t *testing.T) {
	_, err := New(Config{
		Model:      model.Llama3_8B_A100_TP1(),
		Scheduler:  &untraceable{},
		Classes:    qos.Table3(),
		TraceDepth: 16,
	})
	if err == nil {
		t.Fatal("untraceable scheduler accepted with TraceDepth set")
	}
	if _, err := New(Config{
		Model:      model.Llama3_8B_A100_TP1(),
		Scheduler:  qoserveSched(),
		Classes:    qos.Table3(),
		TraceDepth: -1,
	}); err == nil {
		t.Fatal("negative TraceDepth accepted")
	}
}

func getJSONBody(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
