package server

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"qoserve/internal/cluster"
	"qoserve/internal/kvcache"
	"qoserve/internal/model"
	"qoserve/internal/qos"
	"qoserve/internal/sched"
)

// TestGatewayCrossReplicaTransfer warms one replica's prefix cache, then
// forces the session's next turn onto the other replica: with KV transfer
// enabled the prefix must be imported over the interconnect — credited
// like a local hit and counted as transfer tokens — instead of recomputed.
func TestGatewayCrossReplicaTransfer(t *testing.T) {
	srv, err := New(Config{
		Model:            model.Llama3_8B_A100_TP1(),
		SchedulerFactory: func() sched.Scheduler { return sched.NewSarathi(sched.FCFS, 512) },
		Replicas:         2,
		Balancer:         &cluster.AtomicRoundRobin{}, // blind rotation: turn 2 lands on the cold replica
		Classes:          qos.Table3(),
		Timescale:        2000,

		KVTransferBandwidth: 64e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	if srv.prefixIdx == nil {
		t.Fatal("KVTransferBandwidth did not enable the global prefix index")
	}

	prompt := 512
	chain := kvcache.SyntheticChain(21, 0, kvcache.ChainBlocks(prompt, kvcache.DefaultBlockTokens))
	shareable := uint64(len(chain) * kvcache.DefaultBlockTokens)

	drainStream(t, srv, Submission{Class: "Q1", PromptTokens: prompt, DecodeTokens: 4, PrefixHashes: chain})
	kv := srv.KVStats()
	if kv.PrefixTransferTokens != 0 || kv.PrefixHitTokens != 0 {
		t.Fatalf("cold turn counted hits (%d) or transfers (%d)", kv.PrefixHitTokens, kv.PrefixTransferTokens)
	}

	drainStream(t, srv, Submission{Class: "Q1", PromptTokens: prompt, DecodeTokens: 4, PrefixHashes: chain})
	kv = srv.KVStats()
	if kv.PrefixTransferTokens != shareable {
		t.Fatalf("transferred %d tokens, want %d (full cached prefix imported)", kv.PrefixTransferTokens, shareable)
	}
	if kv.PrefixHitTokens != shareable {
		t.Fatalf("imported prefix credited %d hit tokens, want %d", kv.PrefixHitTokens, shareable)
	}
	if kv.TransferFallbacks != 0 {
		t.Fatalf("%d transfer fallbacks on a healthy gateway", kv.TransferFallbacks)
	}

	// Both replicas now hold the chain, so a third turn hits locally
	// wherever the rotation lands it — no further interconnect traffic.
	drainStream(t, srv, Submission{Class: "Q1", PromptTokens: prompt, DecodeTokens: 4, PrefixHashes: chain})
	kv = srv.KVStats()
	if kv.PrefixTransferTokens != shareable {
		t.Fatalf("third turn moved KV again (%d transfer tokens, want %d)", kv.PrefixTransferTokens, shareable)
	}
	if want := 2 * shareable; kv.PrefixHitTokens != want {
		t.Fatalf("third turn hit %d cumulative tokens, want %d", kv.PrefixHitTokens, want)
	}

	// Satellite observability: /debug/load exposes cache residency and the
	// per-replica index epoch.
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/load", nil))
	var lr LoadResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &lr); err != nil {
		t.Fatal(err)
	}
	for _, r := range lr.Replicas {
		if r.CachedChainBlocks == 0 {
			t.Errorf("replica %d reports no cached chain blocks after serving the session", r.Replica)
		}
		if r.IndexEpoch == 0 {
			t.Errorf("replica %d never published to the global index", r.Replica)
		}
		if r.HBMUtilization <= 0 || r.HBMUtilization > 1 {
			t.Errorf("replica %d HBM utilization %v outside (0,1]", r.Replica, r.HBMUtilization)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestChaosTransferSourceCrashFallsBackToRecompute crashes the replica
// holding a session's prefix between turns: the stale global index still
// advertises the dead holder, so the next turn plans an import from it —
// and admission must detect the crash, count a fallback, and recompute.
// The request completes normally; nothing is dropped or failed.
func TestChaosTransferSourceCrashFallsBackToRecompute(t *testing.T) {
	srv := newDisaggServer(t, Config{
		Replicas:        3,
		PrefillReplicas: 2,
		Balancer:        &cluster.PrefixAffinity{},

		KVTransferBandwidth: 64e9,
	})

	prompt := 512
	chain := kvcache.SyntheticChain(31, 0, kvcache.ChainBlocks(prompt, kvcache.DefaultBlockTokens))
	drainStream(t, srv, Submission{Class: "Q2", PromptTokens: prompt, DecodeTokens: 4, PrefixHashes: chain})

	holder, hit := srv.prefixIdx.BestMatch(srv.prefillReps, chain)
	if holder < 0 || hit == 0 {
		t.Fatalf("warm turn published nothing (holder %d, hit %d)", holder, hit)
	}
	if err := srv.Crash(holder); err != nil {
		t.Fatal(err)
	}

	// Turn 2: affinity routes to the dead holder, health fails it over to
	// the survivor, and the planned import from the stale index entry must
	// collapse to recompute at admission.
	st, err := srv.Submit(Submission{Class: "Q2", PromptTokens: prompt, DecodeTokens: 4, PrefixHashes: chain})
	if err != nil {
		t.Fatal(err)
	}
	last := 0
	for ev := range st.Events {
		last = ev.Token
	}
	if last != 4 {
		t.Fatalf("post-crash turn ended at token %d, want 4", last)
	}
	if st.req.FailedReason != "" {
		t.Fatalf("post-crash turn failed: %q", st.req.FailedReason)
	}

	kv := srv.KVStats()
	if kv.TransferFallbacks == 0 {
		t.Fatal("crashed transfer source recorded no fallback")
	}
	if kv.PrefixTransferTokens != 0 {
		t.Fatalf("%d tokens transferred from a dead replica", kv.PrefixTransferTokens)
	}
	if got := srv.failedReqs.Load(); got != 0 {
		t.Fatalf("%d requests failed; fallback must recompute, not drop", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}
