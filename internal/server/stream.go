// Stream delivery: per-stream gateway state, the batched event-frame path,
// and the free lists that keep the steady state allocation-free.
//
// The gateway has two delivery modes. Unbatched (Config.EventFrame == 0,
// the library default) sends each token on a per-request chan Event and
// closes it after the final event — the original contract, kept verbatim
// for existing consumers ranging over Stream.Events. Batched (EventFrame
// > 0) coalesces every token a stream produced since its last delivery
// into one []Event frame and sends that over a small chan []Event: the
// per-token channel operations, consumer wakeups, and per-request channel
// allocations collapse to one frame send per stream per iteration, and a
// consumer that falls behind loses whole stale frames instead of stalling
// the loop. Stream.Recv (and the HTTP layer) work identically in both
// modes.
//
// Pooling invariants (what makes recycling safe):
//
//   - An entry's frames channel is never closed; the Done event inside
//     the final frame is the terminal signal. The serving loop touches no
//     entry field after that frame's channel send, and the consumer owns
//     the entry once it receives it — recycling happens on the consumer
//     side (Stream.next).
//   - entry.res is frozen before the final frame's send and read after
//     its receive; the channel send is the happens-before edge.
//   - A request.Request is recycled by the serving loop only after its
//     outcome is frozen into Server.doneOut and it is deleted from the
//     live table, all under finMu — the same lock the metrics scanners
//     hold — so no reader can observe the reset.
//   - Frames travel loop -> consumer -> framePool -> loop. A pool miss
//     anywhere allocates a fresh object in a cold (non-hotpath) function
//     and the free list re-absorbs it later.
//
// Abandoned streams (a consumer that stops receiving) leak their entry to
// the garbage collector instead of the pool; the final-frame eviction loop
// still retires the request, so the serving side never blocks on them.

package server

import (
	"time"

	"qoserve/internal/metrics"
	"qoserve/internal/request"
	"qoserve/internal/sim"
)

// poolCap bounds each free list (requests, entries, frames). Beyond it,
// recycled objects fall to the garbage collector — the pools are a fast
// path, not an ownership ledger.
const poolCap = 4096

// streamShrinkMin is the stream-table high-water mark below which the
// table is never rebuilt, and streamShrinkFactor is how far occupancy must
// fall below the mark before it is: Go maps never release their buckets,
// so after a burst of streamShrinkMin+ concurrent streams drains, the loop
// swaps in a fresh map sized for the survivors.
const (
	streamShrinkMin    = 1024
	streamShrinkFactor = 8
)

// streamEntry is one live stream's gateway-side state, keyed by request ID
// in the replica's stream table. Exactly one of events (unbatched) and
// frames (batched) is non-nil. staged, queued, and final are owned by the
// serving loop (written under mu by stageEvent, consumed lock-free by the
// same goroutine in flushFrames); res is written by the loop before the
// final frame is sent and read by the consumer after it is received.
type streamEntry struct {
	id  uint64
	req *request.Request
	// events is the unbatched per-token channel, closed after the final
	// event.
	events chan Event
	// frames carries batched event frames. Never closed — pooled entries
	// keep their channel, which is empty by construction once the final
	// frame is consumed.
	frames chan []Event
	// staged accumulates this stream's events since its last delivered
	// frame; capacity is Config.EventFrame.
	staged []Event
	// queued marks the entry present in the replica's sendQ.
	queued bool
	// final marks staged as containing the Done event.
	final bool
	// res is the frozen outcome, valid once the final frame is received.
	res Result
}

// Stream delivers a request's token events; create with Submit. In
// unbatched mode Events carries one event per token — a consumer that
// falls a full buffer behind loses intermediate events (the Token index
// skips) but always receives the final Done event, after which the channel
// is closed. In batched mode Events is nil and Recv must be used; the
// drop contract is the same but applies to whole frames of stale events.
type Stream struct {
	ID uint64
	// Events is the unbatched token channel; nil when the gateway runs
	// batched event frames (Config.EventFrame > 0). Recv works in both
	// modes.
	Events <-chan Event

	srv   *Server
	entry *streamEntry // batched mode only
	frame []Event      // frame being consumed
	cur   int          // cursor into frame
	res   Result
	done  bool
	req   *request.Request // unbatched mode only
	rep   *gatewayReplica  // unbatched mode only
}

// Result summarizes a finished request. Valid once the stream has ended
// (the Done event was received).
type Result struct {
	TTFT time.Duration
	TTLT time.Duration
	// MaxTBT is the largest inter-token gap observed (virtual time).
	MaxTBT   time.Duration
	Violated bool
	Releg    bool
}

// resultOf snapshots a request's stream-facing outcome as of end.
func resultOf(r *request.Request, end sim.Time) Result {
	res := Result{
		MaxTBT:   r.MaxTBT.Duration(),
		Violated: r.ViolatedSLO(end),
		Releg:    r.Relegated,
	}
	if ttft, ok := r.TTFT(); ok {
		res.TTFT = ttft.Duration()
	}
	if ttlt, ok := r.TTLT(); ok {
		res.TTLT = ttlt.Duration()
	}
	return res
}

// Result reports the request's outcome. In unbatched mode it reads the
// live request as of now; in batched mode it returns the outcome frozen
// when the request finished, and is zero until the Done event has been
// received.
func (s *Stream) Result() Result {
	if s.req != nil {
		s.rep.mu.Lock()
		defer s.rep.mu.Unlock()
		return resultOf(s.req, s.srv.vnow())
	}
	return s.res // batched: frozen at completion, zero before Done
}

// Recv returns the stream's next token event, blocking until one is
// available; ok is false once the stream is exhausted (after the Done
// event). It works in both delivery modes. A Stream must not be received
// from concurrently.
func (s *Stream) Recv() (Event, bool) { return s.next(nil) }

// next is Recv with an optional cancel channel (the HTTP handler passes
// the request context's Done); a nil cancel never fires. Cancellation
// returns ok=false without consuming an event — the stream remains
// receivable.
func (s *Stream) next(cancel <-chan struct{}) (Event, bool) {
	if s.done {
		return Event{}, false
	}
	if s.entry == nil {
		// Unbatched: the channel close is the exhaustion signal.
		select {
		case ev, ok := <-s.Events:
			if !ok {
				s.done = true
			}
			return ev, ok
		case <-cancel:
			return Event{}, false
		}
	}
	for s.cur >= len(s.frame) {
		if s.frame != nil {
			s.srv.recycleFrame(s.frame)
			s.frame, s.cur = nil, 0
		}
		select {
		case f := <-s.entry.frames:
			s.frame, s.cur = f, 0
		case <-cancel:
			return Event{}, false
		}
	}
	ev := s.frame[s.cur]
	s.cur++
	if ev.Done {
		// The final frame's send ordered entry.res before this read; the
		// loop no longer touches the entry, so it recycles here.
		s.res = s.entry.res
		s.srv.recycleFrame(s.frame)
		s.frame, s.cur = nil, 0
		s.srv.recycleEntry(s.entry)
		s.entry = nil
		s.done = true
	}
	return ev, true
}

// Free-list pop/push helpers. The pools are nil in unbatched mode: a
// select with a nil channel always takes default, so the helpers degrade
// to plain allocation (and recycling becomes a no-op) without branching.

// newRequest pops a pooled request or allocates one.
func (s *Server) newRequest() *request.Request {
	select {
	case r := <-s.reqPool:
		return r
	default:
		return &request.Request{}
	}
}

// recycleRequest resets a finished request and returns it to the pool,
// keeping its PrefixHashes capacity as parse scratch for the next use.
// Callers must hold finMu or otherwise guarantee no reader can still
// reach r.
func (s *Server) recycleRequest(r *request.Request) {
	hashes := r.PrefixHashes[:0]
	*r = request.Request{}
	r.PrefixHashes = hashes
	select {
	case s.reqPool <- r:
	default:
	}
}

// newEntry pops a pooled stream entry (its frames channel ready for
// reuse) or allocates one.
func (s *Server) newEntry() *streamEntry {
	select {
	case e := <-s.entryPool:
		return e
	default:
		return &streamEntry{frames: make(chan []Event, s.frameBuf)}
	}
}

// recycleEntry returns a consumed entry to the pool. Its frames channel
// is empty by construction (the final frame was just received) and is
// kept for the next request.
func (s *Server) recycleEntry(e *streamEntry) {
	e.id, e.req = 0, nil
	e.staged = nil
	e.queued, e.final = false, false
	e.res = Result{}
	select {
	case s.entryPool <- e:
	default:
	}
}

// newFrame pops a pooled event frame or allocates one at the configured
// frame capacity.
func (s *Server) newFrame() []Event {
	select {
	case f := <-s.framePool:
		return f
	default:
		return make([]Event, 0, s.cfg.EventFrame)
	}
}

// recycleFrame returns a consumed frame's storage to the pool.
//
//qoserve:hotpath
func (s *Server) recycleFrame(f []Event) {
	select {
	case s.framePool <- f[:0]:
	default:
	}
}

// releaseUnused returns a request and entry that never entered a serving
// loop (admission rolled back) to their pools.
func (s *Server) releaseUnused(req *request.Request, e *streamEntry) {
	if e.frames == nil {
		return // unbatched: nothing pooled
	}
	if e.staged != nil {
		s.recycleFrame(e.staged)
		e.staged = nil
	}
	s.recycleEntry(e)
	s.recycleRequest(req)
}

// kick wakes the replica's serving loop: a non-blocking send on the
// 1-buffered notify channel. The loop re-checks its predicate under
// inboxMu after every receive, so one buffered token can never be lost —
// admission, fault recovery, handoff delivery, and Close all kick.
//
//qoserve:hotpath
func (rp *gatewayReplica) kick() {
	select {
	case rp.notify <- struct{}{}:
	default:
	}
}

// kickDrain wakes Drain waiters when the last in-flight request retires.
//
//qoserve:hotpath
func (s *Server) kickDrain() {
	select {
	case s.drainWake <- struct{}{}:
	default:
	}
}

// idleWait parks a loop that has admitted work but planned an empty batch
// (transiently possible with admission-style schedulers) until the next
// kick or a 1 ms fallback tick. The timer is armed only here, so a fully
// idle replica (parked in admit on the notify channel) schedules no
// timers and burns no CPU.
func (rp *gatewayReplica) idleWait() {
	if rp.idleTimer == nil {
		rp.idleTimer = time.NewTimer(time.Millisecond)
	} else {
		rp.idleTimer.Reset(time.Millisecond)
	}
	select {
	case <-rp.notify:
	case <-rp.idleTimer.C:
	}
	rp.idleTimer.Stop()
}

// finishIteration runs the post-mu phase of one serving iteration: batch
// the iteration's prefix releases into one kvMu section, freeze finished
// requests' outcomes (recycling their objects), and deliver staged
// events.
func (rp *gatewayReplica) finishIteration(end sim.Time) {
	rp.releaseBatch()
	rp.finalizeDone(end)
	if rp.srv.frameBuf > 0 {
		rp.ensureSpares()
		rp.flushFrames()
	} else {
		rp.flush()
	}
}

// releaseBatch unpins every prefix released this iteration in a single
// kvMu critical section and publishes the membership change once —
// previously each finished request took kvMu (and re-published) on its
// own under mu.
func (rp *gatewayReplica) releaseBatch() {
	if len(rp.releaseQ) == 0 {
		return
	}
	srv := rp.srv
	rp.kvMu.Lock()
	for _, id := range rp.releaseQ {
		rp.kv.Release(id)
	}
	if srv.prefixIdx != nil {
		rp.publishIndexLocked()
	}
	rp.kvMu.Unlock()
	rp.releaseQ = rp.releaseQ[:0]
}

// finalizeDone freezes the outcome of every request that finished this
// iteration: the stream entry's result is stamped for its consumer, the
// request leaves the live table with its Outcome appended to doneOut, and
// (in batched mode) the request object returns to the pool. All under
// finMu, which the metrics scanners also hold — after this, nothing can
// reach the recycled request.
//
//qoserve:outcome complete
func (rp *gatewayReplica) finalizeDone(end sim.Time) {
	if len(rp.finalQ) == 0 {
		return
	}
	srv := rp.srv
	srv.finMu.Lock()
	for _, e := range rp.finalQ {
		r := e.req
		e.res = resultOf(r, end)
		delete(srv.live, r.ID)
		srv.doneOut = append(srv.doneOut, metrics.OutcomeOf(r, end))
		e.req = nil
		if e.frames != nil {
			srv.recycleRequest(r)
		}
	}
	srv.finMu.Unlock()
	for i := range rp.finalQ {
		rp.finalQ[i] = nil
	}
	rp.finalQ = rp.finalQ[:0]
}

// ensureSpares tops the replica's spare-frame stack up to the worst case
// flushFrames can consume (one per queued entry), so the hot flush path
// never allocates — pool misses pay here, in a cold function.
func (rp *gatewayReplica) ensureSpares() {
	for len(rp.spares) < len(rp.sendQ) {
		rp.spares = append(rp.spares, rp.srv.newFrame())
	}
}

// popSpare takes a pre-stocked spare frame (ensureSpares guarantees one
// per queued entry).
//
//qoserve:hotpath
func (rp *gatewayReplica) popSpare() []Event {
	n := len(rp.spares) - 1
	f := rp.spares[n]
	rp.spares[n] = nil
	rp.spares = rp.spares[:n]
	return f
}

// pushSpare returns an evicted frame's storage to the spare stack.
//
//qoserve:hotpath
func (rp *gatewayReplica) pushSpare(f []Event) {
	rp.spares = append(rp.spares, f[:0])
}

// flushFrames delivers every queued entry's staged frame without holding
// any lock — the batched counterpart of flush. Non-final frames are
// best-effort: a full channel keeps the entry queued so the next
// iteration coalesces into the same frame (events drop only once the
// frame itself fills). Final frames always land via sendFinalFrame, which
// retires the stream.
//
//qoserve:hotpath
func (rp *gatewayReplica) flushFrames() {
	srv := rp.srv
	keep := rp.sendQ[:0]
	for _, e := range rp.sendQ {
		if e.final {
			id := e.id
			rp.sendFinalFrame(e)
			delete(rp.streams, id)
			rp.active--
			rp.load.Add(-1)
			if srv.inFlight.Add(-1) == 0 {
				srv.kickDrain()
			}
			continue
		}
		select {
		case e.frames <- e.staged:
			e.staged = rp.popSpare()
			e.queued = false
		default:
			keep = append(keep, e)
		}
	}
	for i := len(keep); i < len(rp.sendQ); i++ {
		rp.sendQ[i] = nil
	}
	rp.sendQ = keep
}

// sendFinalFrame delivers an entry's final frame even on a full channel
// by evicting the oldest undelivered frames (their events count as
// dropped; the storage returns to the spare stack). The loop is the only
// sender and the consumer only receives, so eviction makes room and the
// loop terminates. Delivering the final frame is what completes a request
// in batched mode — this is the gateway's outcome recorder. No entry
// field is touched after the send: the consumer may recycle the entry the
// moment it lands.
//
//qoserve:hotpath
//qoserve:outcome complete
func (rp *gatewayReplica) sendFinalFrame(e *streamEntry) {
	f := e.staged
	frames := e.frames
	e.staged = nil
	e.queued, e.final = false, false
	for {
		select {
		case frames <- f:
			return
		default:
		}
		select {
		case old := <-frames:
			rp.srv.droppedEvents.Add(uint64(len(old)))
			rp.pushSpare(old)
		default:
		}
	}
}

// maybeShrinkStreams rebuilds the stream table after a burst: a map that
// once held streamShrinkMin+ streams but is now streamShrinkFactor times
// emptier is copied into a right-sized replacement, releasing the burst's
// buckets. Runs on the loop goroutine, which owns the table.
func (rp *gatewayReplica) maybeShrinkStreams() {
	if rp.streamsPeak < streamShrinkMin || len(rp.streams)*streamShrinkFactor > rp.streamsPeak {
		return
	}
	m := make(map[uint64]*streamEntry, 2*len(rp.streams))
	for id, e := range rp.streams {
		m[id] = e
	}
	rp.streams = m
	rp.streamsPeak = len(m)
	rp.srv.streamShrinks.Add(1)
}
