package server

import (
	"fmt"
	"io"
	"math"
)

// Counter/gauge/histogram instrumentation for the serving loop, rendered in
// Prometheus text exposition format (version 0.0.4) by GET /metrics. The
// implementation is deliberately dependency-free: a fixed-bucket histogram
// and a tiny writer, updated under the server mutex the loop already holds.

// iterBuckets are the upper bounds (virtual seconds) of the iteration-
// latency histogram. Iteration times in this system run from a few
// milliseconds (decode-only batches) to a couple of seconds (relaxed-tier
// slack stretched by dynamic chunking), so the buckets span that range
// log-ish.
var iterBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}

// histogram is a fixed-bucket cumulative histogram. Not safe for concurrent
// use; the server guards it with its mutex.
type histogram struct {
	counts []uint64 // one per bucket plus +Inf
	sum    float64
	total  uint64
}

func (h *histogram) observe(v float64) {
	if h.counts == nil {
		h.counts = make([]uint64, len(iterBuckets)+1)
	}
	h.sum += v
	h.total++
	for i, ub := range iterBuckets {
		if v <= ub {
			h.counts[i]++
			return
		}
	}
	h.counts[len(iterBuckets)]++
}

// snapshot returns cumulative bucket counts (Prometheus histograms are
// cumulative), the sum, and the total count.
func (h *histogram) snapshot() (cum []uint64, sum float64, total uint64) {
	cum = make([]uint64, len(iterBuckets)+1)
	var acc uint64
	for i, c := range h.counts {
		acc += c
		cum[i] = acc
	}
	return cum, h.sum, h.total
}

// promWriter renders Prometheus text format. Write errors are ignored: the
// destination is an http.ResponseWriter and a gone client needs no
// recovery.
type promWriter struct{ w io.Writer }

func (p promWriter) header(name, help, typ string) {
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// value writes one sample line; labels is preformatted like
// `{class="Q1"}` or empty.
func (p promWriter) value(name, labels string, v float64) {
	if math.IsNaN(v) {
		fmt.Fprintf(p.w, "%s%s NaN\n", name, labels)
		return
	}
	fmt.Fprintf(p.w, "%s%s %g\n", name, labels, v)
}

func (p promWriter) intValue(name, labels string, v uint64) {
	fmt.Fprintf(p.w, "%s%s %d\n", name, labels, v)
}

// histogramMetric writes a full histogram family from a snapshot.
func (p promWriter) histogramMetric(name, help string, cum []uint64, sum float64, total uint64) {
	p.header(name, help, "histogram")
	for i, ub := range iterBuckets {
		fmt.Fprintf(p.w, "%s_bucket{le=\"%g\"} %d\n", name, ub, cum[i])
	}
	fmt.Fprintf(p.w, "%s_bucket{le=\"+Inf\"} %d\n", name, total)
	p.value(name+"_sum", "", sum)
	p.intValue(name+"_count", "", total)
}
