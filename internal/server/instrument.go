package server

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
)

// Counter/gauge/histogram instrumentation for the serving loop, rendered in
// Prometheus text exposition format (version 0.0.4) by GET /metrics. The
// implementation is deliberately dependency-free: a fixed-bucket histogram
// sharded per serving replica (each loop updates only its own shard, with
// atomic counts so /metrics merges without taking any scheduler lock) and a
// tiny writer.

// iterBuckets are the upper bounds (virtual seconds) of the iteration-
// latency histogram. Iteration times in this system run from a few
// milliseconds (decode-only batches) to a couple of seconds (relaxed-tier
// slack stretched by dynamic chunking), so the buckets span that range
// log-ish.
var iterBuckets = [...]float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}

// histShard is one replica's fixed-bucket histogram. Counts are atomics so
// the merged /metrics read never blocks a serving loop; the sum is a
// float64 stored as bits, written only by the owning loop (single writer)
// and read atomically by mergers.
type histShard struct {
	counts  [len(iterBuckets) + 1]atomic.Uint64 // one per bucket plus +Inf
	sumBits atomic.Uint64
}

// observe records one iteration latency. Only the owning serving loop calls
// this, so the read-modify-write on sumBits is race-free.
//
//qoserve:hotpath
func (h *histShard) observe(v float64) {
	i := 0
	for i < len(iterBuckets) && v > iterBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumBits.Store(math.Float64bits(math.Float64frombits(h.sumBits.Load()) + v))
}

// histSnapshot merges every replica's histogram shard into cumulative
// bucket counts (Prometheus histograms are cumulative), the sum, and the
// total count.
func (s *Server) histSnapshot() (cum []uint64, sum float64, total uint64) {
	var merged [len(iterBuckets) + 1]uint64
	for _, rp := range s.reps {
		for i := range rp.hist.counts {
			merged[i] += rp.hist.counts[i].Load()
		}
		sum += math.Float64frombits(rp.hist.sumBits.Load())
	}
	cum = make([]uint64, len(merged))
	var acc uint64
	for i, c := range merged {
		acc += c
		cum[i] = acc
	}
	return cum, sum, acc
}

// promWriter renders Prometheus text format. Write errors are ignored: the
// destination is an http.ResponseWriter and a gone client needs no
// recovery.
type promWriter struct{ w io.Writer }

func (p promWriter) header(name, help, typ string) {
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// value writes one sample line; labels is preformatted like
// `{class="Q1"}` or empty.
func (p promWriter) value(name, labels string, v float64) {
	if math.IsNaN(v) {
		fmt.Fprintf(p.w, "%s%s NaN\n", name, labels)
		return
	}
	fmt.Fprintf(p.w, "%s%s %g\n", name, labels, v)
}

func (p promWriter) intValue(name, labels string, v uint64) {
	fmt.Fprintf(p.w, "%s%s %d\n", name, labels, v)
}

// histogramMetric writes a full histogram family from a snapshot.
func (p promWriter) histogramMetric(name, help string, cum []uint64, sum float64, total uint64) {
	p.header(name, help, "histogram")
	for i, ub := range iterBuckets {
		fmt.Fprintf(p.w, "%s_bucket{le=\"%g\"} %d\n", name, ub, cum[i])
	}
	fmt.Fprintf(p.w, "%s_bucket{le=\"+Inf\"} %d\n", name, total)
	p.value(name+"_sum", "", sum)
	p.intValue(name+"_count", "", total)
}
