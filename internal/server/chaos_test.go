package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qoserve/internal/model"
	"qoserve/internal/sched"
)

// Chaos coverage for the disaggregated gateway: crash the prefill tier at
// the worst moments and assert the no-silent-drop contract — every
// accepted request either completes on the decode tier or fails with a
// reason and a final Done event. Nothing hangs, nothing vanishes.

// TestChaosPrefillCrashMidTransferNoSilentDrop crashes the only prefill
// replica while KV transfers are in flight. Requests already delivered to
// the decode tier finish; everything else — queued, mid-prefill, or
// mid-transfer — must fail with a reason (there is no healthy prefill
// replica to retry on). No stream may be left open.
func TestChaosPrefillCrashMidTransferNoSilentDrop(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	const prompt = 512
	// Stretch each KV transfer to ~200ms of wall time so the crash lands
	// while several are in flight.
	bandwidth := mc.Model.KVBytesPerToken() * prompt / 20
	srv := newDisaggServer(t, Config{
		Model:             mc,
		Replicas:          2,
		PrefillReplicas:   1,
		Timescale:         100,
		TransferBandwidth: bandwidth,
	})

	const n = 6
	type outcome struct {
		gotDone bool
		failed  string
		tokens  int
	}
	outcomes := make([]outcome, n)
	streams := make([]*Stream, n)
	for i := 0; i < n; i++ {
		st, err := srv.Submit(Submission{Class: "Q2", PromptTokens: prompt, DecodeTokens: 4})
		if err != nil {
			t.Fatal(err)
		}
		streams[i] = st
	}

	// Wait until at least two transfers have been launched, then kill the
	// replica they came from.
	deadline := time.Now().Add(5 * time.Second)
	for srv.handoffs.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("no handoffs after 5s (handoffs=%d)", srv.handoffs.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if err := srv.Crash(0); err != nil {
		t.Fatal(err)
	}
	if err := srv.Crash(0); err == nil {
		t.Fatal("double crash accepted")
	}

	var wg sync.WaitGroup
	for i, st := range streams {
		wg.Add(1)
		go func(i int, st *Stream) {
			defer wg.Done()
			for ev := range st.Events {
				outcomes[i].tokens = ev.Token
				if ev.Done {
					outcomes[i].gotDone = true
				}
			}
			outcomes[i].failed = st.req.FailedReason
		}(i, st)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("streams never terminated after crash: requests silently dropped")
	}

	completed, failed := 0, 0
	for i, o := range outcomes {
		if !o.gotDone {
			t.Fatalf("request %d: stream closed without a Done event", i)
		}
		switch {
		case o.failed != "":
			failed++
			if !streams[i].Result().Violated {
				t.Errorf("request %d failed (%q) but is not reported as an SLO violation", i, o.failed)
			}
		case o.tokens == 4:
			completed++
		default:
			t.Errorf("request %d: neither failed nor complete (tokens=%d)", i, o.tokens)
		}
	}
	if completed+failed != n {
		t.Fatalf("completed %d + failed %d != %d submitted", completed, failed, n)
	}
	if failed == 0 {
		t.Fatal("crash with transfers in flight failed nothing — crash path untested")
	}
	if got := int(srv.failedReqs.Load()); got != failed {
		t.Errorf("failed counter %d, want %d", got, failed)
	}
	if srv.retries.Load() == 0 {
		t.Error("no retries recorded for crash-orphaned requests")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("gateway never drained after crash: %v (pending %d)", err, srv.inFlight.Load())
	}

	// The tier is gone: new submissions are refused, not queued forever.
	if _, err := srv.Submit(Submission{Class: "Q2", PromptTokens: 64, DecodeTokens: 2}); !errors.Is(err, ErrNoHealthyReplica) {
		t.Fatalf("submit after total prefill loss: err = %v, want ErrNoHealthyReplica", err)
	}
}

// TestChaosCrashFailsOverToHealthyPrefillReplica crashes one of two
// prefill replicas mid-transfer: orphaned requests must be re-prefilled on
// the survivor and still complete — retried, not lost, not failed.
func TestChaosCrashFailsOverToHealthyPrefillReplica(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	const prompt = 512
	bandwidth := mc.Model.KVBytesPerToken() * prompt / 20 // ~200ms per transfer
	srv := newDisaggServer(t, Config{
		Model:             mc,
		Replicas:          3,
		PrefillReplicas:   2,
		Timescale:         100,
		TransferBandwidth: bandwidth,
		// Round-robin so both prefill replicas hold work at crash time.
	})

	const n = 8
	var wg sync.WaitGroup
	var completed, failed atomic.Int64
	for i := 0; i < n; i++ {
		st, err := srv.Submit(Submission{Class: "Q2", PromptTokens: prompt, DecodeTokens: 3})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(st *Stream) {
			defer wg.Done()
			last := Event{}
			for ev := range st.Events {
				last = ev
			}
			switch {
			case st.req.FailedReason != "":
				failed.Add(1)
			case last.Done && last.Token == 3:
				completed.Add(1)
			}
		}(st)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.handoffs.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("no handoffs after 5s")
		}
		time.Sleep(time.Millisecond)
	}
	if err := srv.Crash(0); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("streams never terminated: requests lost in failover")
	}
	if got := completed.Load() + failed.Load(); got != n {
		t.Fatalf("completed %d + failed %d != %d submitted", completed.Load(), failed.Load(), n)
	}
	// With a healthy replica to fail over to, nothing should permanently
	// fail inside the retry budget.
	if failed.Load() != 0 {
		t.Errorf("%d requests failed despite a healthy prefill replica", failed.Load())
	}
	// The survivor still serves new work.
	st, err := srv.Submit(Submission{Class: "Q1", PromptTokens: 128, DecodeTokens: 2})
	if err != nil {
		t.Fatal(err)
	}
	last := Event{}
	for ev := range st.Events {
		last = ev
	}
	if !last.Done || last.Token != 2 {
		t.Fatalf("post-crash submission did not complete: %+v", last)
	}
}

// TestChaosCrashRejectedOutsideDisagg pins the API contract: crashes are a
// disagg prefill-tier fault model only.
func TestChaosCrashRejectedOutsideDisagg(t *testing.T) {
	colo := newTestServer(t, sched.NewSarathi(sched.FCFS, 512))
	if err := colo.Crash(0); err == nil {
		t.Fatal("colocated crash accepted")
	}
	srv := newDisaggServer(t, Config{Replicas: 2, PrefillReplicas: 1})
	if err := srv.Crash(1); err == nil {
		t.Fatal("decode-tier crash accepted")
	}
	if err := srv.Crash(-1); err == nil {
		t.Fatal("negative index accepted")
	}
}
