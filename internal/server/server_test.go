package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"qoserve/internal/core"
	"qoserve/internal/model"
	"qoserve/internal/predictor"
	"qoserve/internal/qos"
	"qoserve/internal/sched"
)

// newTestServer runs at 2000x so simulated seconds pass in milliseconds.
func newTestServer(t *testing.T, s sched.Scheduler) *Server {
	t.Helper()
	mc := model.Llama3_8B_A100_TP1()
	srv, err := New(Config{
		Model:     mc,
		Scheduler: s,
		Classes:   qos.Table3(),
		Timescale: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

func qoserveSched() sched.Scheduler {
	mc := model.Llama3_8B_A100_TP1()
	return core.New(predictor.Oracle{Config: mc}, core.DefaultOptions())
}

func TestServerStreamsTokens(t *testing.T) {
	srv := newTestServer(t, qoserveSched())
	stream, err := srv.Submit(Submission{Class: "Q1", PromptTokens: 500, DecodeTokens: 5})
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	for ev := range stream.Events {
		events = append(events, ev)
	}
	if len(events) != 5 {
		t.Fatalf("got %d events, want 5", len(events))
	}
	for i, ev := range events {
		if ev.Token != i+1 {
			t.Errorf("event %d token = %d", i, ev.Token)
		}
		if i > 0 && ev.At < events[i-1].At {
			t.Error("token times not monotone")
		}
	}
	if !events[4].Done {
		t.Error("last event not marked done")
	}
	res := stream.Result()
	if res.TTFT <= 0 || res.TTLT < res.TTFT {
		t.Errorf("result = %+v", res)
	}
	if res.Violated {
		t.Error("lone request violated its SLO")
	}
}

func TestServerConcurrentClients(t *testing.T) {
	srv := newTestServer(t, qoserveSched())
	const clients = 20
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		class := []string{"Q1", "Q2", "Q3"}[i%3]
		go func() {
			defer wg.Done()
			stream, err := srv.Submit(Submission{Class: class, PromptTokens: 300, DecodeTokens: 4})
			if err != nil {
				errs <- err
				return
			}
			n := 0
			for range stream.Events {
				n++
			}
			if n != 4 {
				errs <- context.DeadlineExceeded
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Served != clients || st.Pending != 0 || st.Tokens == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestServerValidation(t *testing.T) {
	srv := newTestServer(t, qoserveSched())
	cases := []Submission{
		{Class: "nope", PromptTokens: 10, DecodeTokens: 1},
		{Class: "Q1", PromptTokens: 0, DecodeTokens: 1},
		{Class: "Q1", PromptTokens: 10, DecodeTokens: 0},
		{Class: "Q1", PromptTokens: 10, DecodeTokens: 1 << 20},
	}
	for i, sub := range cases {
		if _, err := srv.Submit(sub); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}

	mc := model.Llama3_8B_A100_TP1()
	if _, err := New(Config{Model: mc, Scheduler: nil, Classes: qos.Table3()}); err == nil {
		t.Error("nil scheduler accepted")
	}
	if _, err := New(Config{Model: mc, Scheduler: qoserveSched()}); err == nil {
		t.Error("no classes accepted")
	}
	if _, err := New(Config{Model: mc, Scheduler: qoserveSched(),
		Classes: qos.Table3(), Timescale: -1}); err == nil {
		t.Error("negative timescale accepted")
	}
}

func TestServerCloseRejectsSubmissions(t *testing.T) {
	srv := newTestServer(t, qoserveSched())
	srv.Close()
	if _, err := srv.Submit(Submission{Class: "Q1", PromptTokens: 10, DecodeTokens: 1}); err == nil {
		t.Error("submission accepted after close")
	}
	srv.Close() // double close is safe
}

func TestHTTPGenerateStream(t *testing.T) {
	srv := newTestServer(t, qoserveSched())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(GenerateRequest{
		Class: "Q1", PromptTokens: 400, DecodeTokens: 3,
	})
	resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var events []TokenEvent
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		var ev TokenEvent
		if err := json.Unmarshal(scanner.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", scanner.Text(), err)
		}
		events = append(events, ev)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	last := events[len(events)-1]
	if last.Event != "done" || last.TTLTMS <= 0 || last.TTFTMS <= 0 {
		t.Fatalf("final event = %+v", last)
	}
}

func TestHTTPStatsAndClasses(t *testing.T) {
	srv := newTestServer(t, qoserveSched())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Served != 0 || stats.Pending != 0 {
		t.Fatalf("fresh stats = %+v", stats)
	}

	resp, err = http.Get(ts.URL + "/v1/classes")
	if err != nil {
		t.Fatal(err)
	}
	var classes []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&classes); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(classes) != 3 {
		t.Fatalf("classes = %v", classes)
	}
}

func TestHTTPGenerateRejectsBadInput(t *testing.T) {
	srv := newTestServer(t, qoserveSched())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, payload := range []string{
		`{not json`,
		`{"class":"nope","prompt_tokens":10,"decode_tokens":1}`,
		`{"class":"Q1","prompt_tokens":10,"decode_tokens":1,"priority":"vip"}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/generate", "application/json",
			bytes.NewReader([]byte(payload)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("payload %q: status %d, want 400", payload, resp.StatusCode)
		}
	}
}

// TestServerQoSOrdering checks the scheduler actually shapes real-time
// traffic: with a long batch job hogging the replica, an interactive
// request's first token must still arrive promptly under QoServe.
func TestServerQoSOrdering(t *testing.T) {
	srv := newTestServer(t, qoserveSched())
	// A huge batch-tier prompt arrives first.
	batch, err := srv.Submit(Submission{Class: "Q3", PromptTokens: 12000, DecodeTokens: 4})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond) // let its prefill start
	urgent, err := srv.Submit(Submission{Class: "Q1", PromptTokens: 200, DecodeTokens: 2})
	if err != nil {
		t.Fatal(err)
	}
	for range urgent.Events {
	}
	for range batch.Events {
	}
	if res := urgent.Result(); res.Violated {
		t.Errorf("urgent request violated its TTFT behind a batch job: %+v", res)
	}
}

func TestServerWithSarathiScheduler(t *testing.T) {
	srv := newTestServer(t, sched.NewSarathi(sched.EDF, 256))
	stream, err := srv.Submit(Submission{Class: "Q2", PromptTokens: 600, DecodeTokens: 3})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for range stream.Events {
		n++
	}
	if n != 3 {
		t.Fatalf("got %d events", n)
	}
}

func TestHTTPMetricsEndpoint(t *testing.T) {
	srv := newTestServer(t, qoserveSched())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Serve one request so counters move.
	stream, err := srv.Submit(Submission{Class: "Q1", PromptTokens: 200, DecodeTokens: 2})
	if err != nil {
		t.Fatal(err)
	}
	for range stream.Events {
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"qoserve_requests_total 1",
		"qoserve_tokens_total",
		"qoserve_violation_ratio",
		"# TYPE qoserve_iterations_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}
