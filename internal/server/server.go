// Package server runs QoServe schedulers in real time: wall-clock serving
// loops that execute the same iteration cycle as the simulator — plan batch,
// "execute" for the cost-model duration, account tokens — and stream token
// events to concurrent clients.
//
// This is the serving-system face of the reproduction: the paper's artifact
// is a scheduler inside a serving engine, and this package provides that
// engine shape without GPUs. Execution time comes from the calibrated cost
// model, optionally accelerated by a timescale factor, so the server doubles
// as a QoS-policy load-testing harness: clients declare their request
// shapes (prompt/decode token counts) and observe exactly the TTFT/TBT/TTLT
// behaviour the scheduler produces under contention. cmd/qoserved exposes it
// over HTTP; cmd/qoserve-loadgen drives it at scale.
//
// # Gateway architecture
//
// The server is a sharded gateway, not a single loop behind one mutex.
// Config.Replicas independent serving loops each own a scheduler, an
// admission inbox, a stream table, and a histogram shard. Submitters are
// routed by a lock-free balancer (cluster.AtomicRoundRobin by default),
// append to the chosen replica's inbox under a small admission lock, and
// return immediately; the loop swaps the whole inbox out once per
// iteration. Per-iteration token accounting runs under the replica's
// scheduler lock, but no channel operation ever happens under any lock:
// events are staged under the lock and delivered afterwards with
// non-blocking sends — per token in the default mode, or coalesced into
// per-iteration event frames when Config.EventFrame is set (see
// stream.go). Slow consumers lose intermediate token events (counted in
// qoserve_stream_dropped_events_total) but never the final one, so the
// batch loop can never be stalled by a client. Idle loops park on a
// 1-buffered notify channel kicked by admission, fault recovery, handoff
// delivery, and Close — no polling. Lifetime counters are atomics; the
// steady-state per-token path allocates nothing, and with event frames
// enabled the request, stream-entry, and frame objects recycle through
// free lists so a warm gateway serves without allocating at all.
package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"qoserve/internal/cluster"
	"qoserve/internal/disagg"
	"qoserve/internal/kvcache"
	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/qos"
	"qoserve/internal/replica"
	"qoserve/internal/request"
	"qoserve/internal/sched"
	"qoserve/internal/sim"
	"qoserve/internal/trace"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("server: closed")

// ErrNoHealthyReplica is returned by Submit when every prefill-tier
// replica is down (disaggregated mode only).
var ErrNoHealthyReplica = errors.New("server: no healthy prefill replica")

// SubmissionError reports an invalid submission. The HTTP layer maps it to
// a 400 response whose JSON body carries both fields (see the error schema
// in docs/OPERATIONS.md).
type SubmissionError struct {
	// Field is the offending submission field, in wire (JSON) naming.
	Field string
	// Msg says what is wrong with it.
	Msg string
}

// Error implements error.
func (e *SubmissionError) Error() string {
	return fmt.Sprintf("server: invalid %s: %s", e.Field, e.Msg)
}

// Event is one streamed token notification.
type Event struct {
	// Token is the 1-based output token index.
	Token int
	// At is the virtual emission time.
	At time.Duration
	// Done marks the final token.
	Done bool
}

// Config configures a real-time server.
type Config struct {
	Model model.Config
	// Scheduler serves the requests on a single-replica server; it must
	// not be shared. Mutually exclusive with SchedulerFactory.
	Scheduler sched.Scheduler
	// SchedulerFactory builds one independent scheduler per replica; it is
	// required when Replicas > 1 (each serving loop must own its policy
	// state) and may also be used for a single replica.
	SchedulerFactory func() sched.Scheduler
	// Replicas is the number of independent serving loops (default 1).
	// Throughput scales with replicas: each loop "executes" its batches
	// concurrently, exactly like replicas of a model server sharing a
	// frontend.
	Replicas int
	// Balancer routes submissions across replicas. Nil uses a lock-free
	// round robin (cluster.AtomicRoundRobin); cluster.LeastLoaded routes
	// to the replica with the fewest unfinished requests; a
	// cluster.PrefixRouter (e.g. *cluster.PrefixAffinity) additionally
	// probes each replica's prefix cache and routes to the longest cached
	// prefix. The balancer must be safe for concurrent pickers.
	Balancer cluster.GatewayBalancer
	// KV configures each serving loop's prefix-aware KV cache (block
	// size, HBM/DRAM tier sizes, reload rate). Zero CapacityTokens derives
	// the HBM size from Model. The gateway uses the cache for prefix
	// sharing only — matched prompt tokens skip prefill and DRAM reloads
	// delay the admitting iteration — not for admission control, which the
	// cost model does not need without real GPU memory.
	KV kvcache.Config
	// GlobalPrefixIndex publishes every replica's prefix-cache membership
	// into a lock-free global index (kvcache.GlobalIndex) that routing
	// probes instead of taking per-replica cache locks. Implied by a
	// positive KVTransferBandwidth.
	GlobalPrefixIndex bool
	// KVTransferBandwidth enables cross-replica KV migration: when another
	// replica holds a longer cached prefix than the routed one, the missing
	// blocks move over an interconnect of this many bytes per second of
	// virtual time instead of being recomputed — if the modeled transfer is
	// cheaper than the prefill it saves. Zero disables migration. Valid in
	// both modes; distinct from TransferBandwidth, the disagg
	// prefill->decode handoff fabric.
	KVTransferBandwidth float64
	// StreamBuffer bounds each stream's event buffer (default 256 events,
	// additionally capped at the request's DecodeTokens+1). See Stream for
	// the overflow contract. With EventFrame set it only sizes the derived
	// FrameBuffer default.
	StreamBuffer int
	// EventFrame switches the gateway to batched event delivery: all
	// tokens a stream produced in one iteration coalesce into a single
	// pooled frame of up to this many events, delivered over a small
	// bounded channel, and the per-request Request/entry/frame objects
	// recycle through free lists. Zero (the default) keeps the original
	// per-token channel contract on Stream.Events; Stream.Recv works in
	// both modes. See stream.go for the frame lifecycle.
	EventFrame int
	// FrameBuffer is each stream's frame-channel depth in batched mode
	// (default max(2, StreamBuffer/EventFrame)). A consumer that falls
	// this many frames behind loses the oldest ones. Requires EventFrame.
	FrameBuffer int
	// Classes that submissions may reference.
	Classes []qos.Class
	// Timescale accelerates virtual time relative to wall time (e.g.
	// 100 means a 50 ms iteration sleeps 0.5 ms). Default 1.
	Timescale float64
	// MaxDecodeTokens bounds a submission's declared output length
	// (default 4096) so stream buffers stay sane.
	MaxDecodeTokens int
	// TraceDepth enables live iteration tracing with a ring buffer
	// retaining that many iterations, served by GET /debug/trace. Zero
	// (the default) disables tracing entirely: the schedulers keep their
	// no-op tracers and the hot path pays only a branch per iteration.
	// With multiple replicas all loops share one ring.
	TraceDepth int
	// MetricsWindow is the trailing window (virtual time) over which the
	// per-class TTFT/TTLT/TBT and violation-rate gauges on GET /metrics
	// are computed. Default one minute.
	MetricsWindow time.Duration
	// FaultStatus, when non-nil, supplies replica health and recovery
	// counters for GET /metrics (replica up/down gauges, retry and
	// lost-work counters). Wire it to a cluster's fault state — e.g.
	// bridge Cluster.Health() and Cluster.FaultStats() — or leave nil for
	// servers without fault injection, which then omit the fault series.
	FaultStatus func() FaultStatus

	// Mode selects the gateway topology. "" or "colocated" (the default)
	// runs every replica as a full serving loop handling both prefill and
	// decode. "disagg" splits the replicas into a prefill tier (the first
	// PrefillReplicas loops, running the configured scheduler with its
	// chunked, preemptible prefill granularity) and a decode tier (the
	// rest, running FCFS capped decode batches). Prompts prefill on the
	// prefill tier, then their KV pages transfer over a modeled
	// interconnect to a fixed decode-tier home that streams the output
	// tokens. See docs/ARCHITECTURE.md for the two-tier lifecycle.
	Mode string
	// PrefillReplicas is the prefill-tier size in disagg mode (default
	// (Replicas+1)/2). The remaining replicas form the decode tier; both
	// tiers need at least one replica.
	PrefillReplicas int
	// MaxDecodeBatch caps decode-tier batch size in disagg mode. Zero
	// derives the largest batch whose iteration time stays under
	// StrictestTBT from the cost model (disagg.DeriveDecodeBatch).
	MaxDecodeBatch int
	// StrictestTBT is the tightest inter-token SLO the decode tier must
	// sustain, used to derive MaxDecodeBatch (default 50ms). Disagg only.
	StrictestTBT time.Duration
	// TransferBandwidth is the prefill->decode KV interconnect in bytes
	// per second of virtual time (default 64 GB/s, an NVLink-class
	// fabric). Disagg only.
	TransferBandwidth float64
}

// ReplicaHealth is one replica's liveness as exposed on /metrics.
type ReplicaHealth struct {
	Up         bool
	Crashes    uint64
	Restarts   uint64
	SlowFactor float64
}

// FaultStatus carries failure and recovery state for /metrics.
type FaultStatus struct {
	// Replicas is per-replica health, indexed by replica number.
	Replicas []ReplicaHealth
	// Retries counts request re-enqueues after replica crashes.
	Retries uint64
	// LostTokens is the total tokens of progress discarded by crashes.
	LostTokens uint64
	// FailedRequests counts requests permanently failed with a reason.
	FailedRequests int
	// Parked counts requests currently waiting for any healthy replica.
	Parked int
}

// Server is the sharded real-time serving gateway. Create with New, stop
// with Close. All methods are safe for concurrent use.
type Server struct {
	cfg     Config
	classes map[string]qos.Class
	start   time.Time // immutable after New

	balancer cluster.GatewayBalancer
	loadOf   func(int) int                  // balancer load probe over reps
	snapOf   func(int) replica.LoadSnapshot // balancer queue-state probe

	// prefillReps is the prefill-tier size in disagg mode; 0 means
	// colocated. Immutable after New.
	prefillReps    int
	maxDecodeBatch int

	nextID   atomic.Uint64
	closed   atomic.Bool
	inFlight atomic.Int64 // accepted but unfinished requests

	iterations    atomic.Uint64
	tokens        atomic.Uint64
	prefillTokens atomic.Uint64
	decodeTokens  atomic.Uint64
	droppedEvents atomic.Uint64
	prefixHits    atomic.Uint64 // prompt tokens served from prefix caches
	reloadTokens  atomic.Uint64 // hit tokens promoted from the DRAM tier

	// prefixIdx is the global prefix index replicas publish their cache
	// membership into; nil unless Config.GlobalPrefixIndex or a positive
	// Config.KVTransferBandwidth enabled it. Entries can be stale (a
	// crashed replica keeps its last publication) — consumers re-validate
	// liveness before acting on a hit.
	prefixIdx *kvcache.GlobalIndex
	// xferBytesPerToken is the served model's KV footprint per token,
	// cached for transfer pricing. Immutable after New.
	xferBytesPerToken float64

	prefixTransferTokens atomic.Uint64 // hit tokens imported across replicas
	transferFallbacks    atomic.Uint64 // planned imports abandoned at admission

	// Disagg-mode lifetime counters.
	handoffs       atomic.Uint64 // prefill->decode KV handoffs launched
	transferTokens atomic.Uint64 // prompt tokens whose KV crossed tiers
	retries        atomic.Uint64 // re-prefills after prefill-tier crashes
	lostTokens     atomic.Uint64 // tokens of progress discarded by crashes
	failedReqs     atomic.Int64  // requests permanently failed with a reason

	// accepted counts submissions that entered a serving loop.
	accepted atomic.Uint64
	// streamShrinks counts post-burst stream-table rebuilds.
	streamShrinks atomic.Uint64

	// finMu guards the accepted-request ledger: live requests by ID and
	// the frozen outcomes of finished ones. Serving loops freeze and
	// recycle requests under it; the metrics scanners read under it. It is
	// a leaf lock — nothing else is acquired while holding it.
	finMu   sync.Mutex
	live    map[uint64]*request.Request // guarded by finMu
	doneOut []metrics.Outcome           // guarded by finMu

	// frameBuf is the per-stream frame-channel depth; 0 means unbatched
	// delivery. Immutable after New.
	frameBuf int
	// Free lists for batched mode (nil otherwise): recycled requests,
	// stream entries, and event frames. See stream.go.
	reqPool   chan *request.Request
	entryPool chan *streamEntry
	framePool chan []Event

	// drainWake is kicked when the last in-flight request retires, waking
	// Drain without polling.
	drainWake chan struct{}

	reps []*gatewayReplica
	wg   sync.WaitGroup

	// tracer is non-nil when Config.TraceDepth enabled tracing; it is
	// shared by every replica's scheduler (trace.Ring is thread-safe).
	tracer *trace.Ring
}

// gatewayReplica is one serving loop: its own scheduler, admission inbox,
// stream table, and histogram shard. The two mutexes split the old global
// server lock — submitters only ever touch inboxMu, metrics readers only
// mu — so admission, planning, and observability no longer contend on one
// word.
type gatewayReplica struct {
	srv *Server
	idx int

	// mu is the scheduler lock: it guards planning, token accounting, and
	// queue introspection. It is never held across a sleep or a channel
	// operation.
	mu        sync.Mutex
	scheduler sched.Scheduler // guarded by mu

	// inboxMu is the admission lock: submitters append, the serving loop
	// swaps the whole inbox out once per iteration.
	inboxMu sync.Mutex
	inbox   []admission // guarded by inboxMu
	// notify is the loop's 1-buffered wakeup channel: producers kick()
	// after appending to the inbox (and on Crash/Close), and the loop
	// re-checks its predicate under inboxMu after every receive, so a
	// wakeup can never be lost and an idle loop burns no CPU.
	notify chan struct{}

	// load counts unfinished requests routed here; the balancer probes it
	// without locks.
	load atomic.Int64

	// Queue-state gauges forming this replica's replica.LoadSnapshot,
	// probed lock-free by snapshot-aware balancers (cluster.
	// PredictedLatency) and GET /debug/load. Submitters add arriving work,
	// the serving loop retires it per iteration; the writers are not
	// mutually synchronized, so readers clamp rather than trust invariants
	// (see loadSnapshot).
	snapQueued  atomic.Int64 // requests not yet past prefill
	snapPrefill atomic.Int64 // unprefilled prompt tokens queued
	snapDecodes atomic.Int64 // requests in decode phase
	snapSumCtx  atomic.Int64 // summed context of decode-phase requests
	snapMaxCtx  atomic.Int64 // largest context among them
	snapChunk   atomic.Int64 // last planned prefill chunk (tokens)

	// down marks a crashed replica (disagg prefill tier only). The loop
	// observes it, drains its queue through retry-or-fail, and exits.
	down atomic.Bool

	// pending tracks prefill clones admitted here and not yet handed off
	// to the decode tier, keyed by clone ID. Loop-owned (crashDrain runs
	// on the loop goroutine); nil outside the disagg prefill tier.
	pending map[uint64]pendingHandoff

	// kvMu guards the prefix cache. Submitters probe it for routing
	// affinity; the serving loop pins prefixes at admission and unpins on
	// completion. Lock order: mu may be taken before kvMu, never after.
	kvMu sync.Mutex
	kv   *kvcache.Manager // guarded by kvMu

	// reloadDebt is DRAM->HBM transfer time owed by prefix promotions,
	// added to the next iteration's sleep. Loop-owned.
	reloadDebt time.Duration
	// transferDebt is cross-replica KV import time owed by admitted
	// migrations, charged exactly like reloadDebt. Loop-owned.
	transferDebt time.Duration
	// idxVersion is the kv membership version last published to the global
	// index. Guarded by kvMu.
	idxVersion uint64

	// Loop-owned state, touched only by the serving goroutine.
	drained     []admission             // inbox swap buffer
	streams     map[uint64]*streamEntry // live streams by request ID
	streamsPeak int                     // high-water mark since last shrink
	outbox      []delivery              // unbatched: events staged under mu
	sendQ       []*streamEntry          // batched: entries with staged frames
	finalQ      []*streamEntry          // streams finished this iteration
	releaseQ    []uint64                // prefix pins released this iteration
	spares      [][]Event               // pre-stocked frames for flushFrames
	idleTimer   *time.Timer             // idleWait's reusable fallback timer
	active      int                     // requests admitted here and unfinished
	shape       model.BatchShape        // batch-shape scratch for the cost model
	hist        histShard               // iteration-latency histogram shard
	handoffQ    []pendingHandoff        // clones finished this iteration, to launch
	decQ        []*request.Request      // decode-tier FCFS queue
}

// admission is one submitted request en route to its serving loop. On the
// disagg prefill tier req is a single-token prefill clone and orig/home
// carry the real request and its decode-tier destination; elsewhere orig
// is nil.
type admission struct {
	req   *request.Request
	entry *streamEntry
	orig  *request.Request
	home  int
	// xferFrom/xferTokens carry a planned cross-replica KV import: credit
	// xferTokens of the prefix by migrating the missing blocks from replica
	// xferFrom. Zero xferTokens means no import was planned; the plan is
	// re-validated at admission (see planTransfer).
	xferFrom   int
	xferTokens int
}

// pendingHandoff is one request whose prompt is prefilling on this tier as
// a single-token clone, awaiting KV transfer to its fixed decode home.
type pendingHandoff struct {
	clone *request.Request
	orig  *request.Request
	entry *streamEntry
	home  int // decode-tier replica index, fixed at submission
}

// delivery is one staged stream write, assembled under the scheduler lock
// and sent after it is released.
type delivery struct {
	events chan Event
	ev     Event
	id     uint64 // stream to retire when ev.Done
}

// New validates the configuration and starts the serving loops.
func New(cfg Config) (*Server, error) {
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 1
	}
	if cfg.Replicas < 0 {
		return nil, fmt.Errorf("server: negative replica count")
	}
	if cfg.Scheduler != nil && cfg.SchedulerFactory != nil {
		return nil, fmt.Errorf("server: both Scheduler and SchedulerFactory set")
	}
	scheds := make([]sched.Scheduler, cfg.Replicas)
	switch {
	case cfg.SchedulerFactory != nil:
		for i := range scheds {
			if scheds[i] = cfg.SchedulerFactory(); scheds[i] == nil {
				return nil, fmt.Errorf("server: SchedulerFactory returned nil")
			}
		}
	case cfg.Scheduler != nil:
		if cfg.Replicas > 1 {
			return nil, fmt.Errorf("server: %d replicas require SchedulerFactory (schedulers must not be shared)", cfg.Replicas)
		}
		scheds[0] = cfg.Scheduler
	default:
		return nil, fmt.Errorf("server: nil scheduler")
	}
	if cfg.Timescale == 0 {
		cfg.Timescale = 1
	}
	if cfg.Timescale < 0 {
		return nil, fmt.Errorf("server: negative timescale")
	}
	if cfg.MaxDecodeTokens == 0 {
		cfg.MaxDecodeTokens = 4096
	}
	if cfg.StreamBuffer == 0 {
		cfg.StreamBuffer = 256
	}
	if cfg.StreamBuffer < 0 {
		return nil, fmt.Errorf("server: negative stream buffer")
	}
	if cfg.EventFrame < 0 {
		return nil, fmt.Errorf("server: negative event frame size")
	}
	if cfg.FrameBuffer < 0 {
		return nil, fmt.Errorf("server: negative frame buffer")
	}
	if cfg.FrameBuffer > 0 && cfg.EventFrame == 0 {
		return nil, fmt.Errorf("server: FrameBuffer requires EventFrame")
	}
	if cfg.EventFrame > 0 && cfg.FrameBuffer == 0 {
		cfg.FrameBuffer = cfg.StreamBuffer / cfg.EventFrame
		if cfg.FrameBuffer < 2 {
			cfg.FrameBuffer = 2
		}
	}
	if cfg.TraceDepth < 0 {
		return nil, fmt.Errorf("server: negative trace depth")
	}
	if cfg.MetricsWindow == 0 {
		cfg.MetricsWindow = time.Minute
	}
	if len(cfg.Classes) == 0 {
		return nil, fmt.Errorf("server: no QoS classes configured")
	}
	if cfg.KVTransferBandwidth < 0 {
		return nil, fmt.Errorf("server: negative KV transfer bandwidth")
	}
	switch cfg.Mode {
	case "", "colocated":
		if cfg.PrefillReplicas != 0 {
			return nil, fmt.Errorf("server: PrefillReplicas requires Mode \"disagg\"")
		}
	case "disagg":
		if cfg.Replicas < 2 {
			return nil, fmt.Errorf("server: disagg mode needs at least 2 replicas (one per tier), got %d", cfg.Replicas)
		}
		if cfg.PrefillReplicas == 0 {
			cfg.PrefillReplicas = (cfg.Replicas + 1) / 2
		}
		if cfg.PrefillReplicas < 1 || cfg.PrefillReplicas >= cfg.Replicas {
			return nil, fmt.Errorf("server: %d prefill replicas leaves no decode tier (replicas %d)", cfg.PrefillReplicas, cfg.Replicas)
		}
		if cfg.StrictestTBT == 0 {
			cfg.StrictestTBT = 50 * time.Millisecond
		}
		if cfg.StrictestTBT < 0 {
			return nil, fmt.Errorf("server: negative strictest TBT")
		}
		if cfg.TransferBandwidth == 0 {
			cfg.TransferBandwidth = 64e9
		}
		if cfg.TransferBandwidth < 0 {
			return nil, fmt.Errorf("server: negative transfer bandwidth")
		}
		if cfg.MaxDecodeBatch == 0 {
			cfg.MaxDecodeBatch = disagg.DeriveDecodeBatch(cfg.Model, sim.FromDuration(cfg.StrictestTBT), 2048)
		}
		if cfg.MaxDecodeBatch < 1 {
			return nil, fmt.Errorf("server: decode batch cap %d", cfg.MaxDecodeBatch)
		}
	default:
		return nil, fmt.Errorf("server: unknown mode %q (want \"colocated\" or \"disagg\")", cfg.Mode)
	}
	s := &Server{
		cfg:       cfg,
		classes:   make(map[string]qos.Class, len(cfg.Classes)),
		start:     time.Now(),
		balancer:  cfg.Balancer,
		live:      make(map[uint64]*request.Request, 256),
		drainWake: make(chan struct{}, 1),
	}
	if cfg.EventFrame > 0 {
		s.frameBuf = cfg.FrameBuffer
		s.reqPool = make(chan *request.Request, poolCap)
		s.entryPool = make(chan *streamEntry, poolCap)
		s.framePool = make(chan []Event, poolCap)
	}
	if s.balancer == nil {
		s.balancer = &cluster.AtomicRoundRobin{}
	}
	if cfg.TraceDepth > 0 {
		s.tracer = trace.NewRing(cfg.TraceDepth)
		for _, sc := range scheds {
			tr, ok := sc.(sched.Traceable)
			if !ok {
				return nil, fmt.Errorf("server: scheduler %s does not support tracing", sc.Name())
			}
			tr.SetTracer(s.tracer)
		}
	}
	for _, c := range cfg.Classes {
		if err := c.Validate(); err != nil {
			return nil, err
		}
		s.classes[c.Name] = c
	}
	s.loadOf = func(i int) int { return int(s.reps[i].load.Load()) }
	s.snapOf = func(i int) replica.LoadSnapshot { return s.reps[i].loadSnapshot() }
	if cfg.GlobalPrefixIndex || cfg.KVTransferBandwidth > 0 {
		s.prefixIdx = kvcache.NewGlobalIndex(cfg.Replicas)
	}
	s.xferBytesPerToken = cfg.Model.Model.KVBytesPerToken()
	if cfg.Mode == "disagg" {
		s.prefillReps = cfg.PrefillReplicas
		s.maxDecodeBatch = cfg.MaxDecodeBatch
	}
	kvCfg := cfg.KV
	if kvCfg.CapacityTokens == 0 {
		kvCfg.CapacityTokens = cfg.Model.KVCapacityTokens()
	}
	for i, sc := range scheds {
		kv, err := kvcache.NewTiered(kvCfg)
		if err != nil {
			return nil, err
		}
		rp := &gatewayReplica{
			srv:       s,
			idx:       i,
			scheduler: sc,
			streams:   make(map[uint64]*streamEntry, 64),
			notify:    make(chan struct{}, 1),
			kv:        kv,
		}
		if s.prefillReps > 0 && i < s.prefillReps {
			rp.pending = make(map[uint64]pendingHandoff, 64)
		}
		s.reps = append(s.reps, rp)
	}
	s.wg.Add(len(s.reps))
	for i, rp := range s.reps {
		if s.prefillReps > 0 && i >= s.prefillReps {
			go rp.runDecode()
		} else {
			go rp.run()
		}
	}
	return s, nil
}

// vnow is the current virtual time. The wall-clock origin and timescale are
// immutable after New, so no lock is needed.
func (s *Server) vnow() sim.Time {
	return sim.Time(float64(time.Since(s.start)) * s.cfg.Timescale)
}

// Replicas is the number of serving loops.
func (s *Server) Replicas() int { return len(s.reps) }

// PrefillReplicas is the prefill-tier size after defaulting: zero in
// colocated mode, at least one in disagg mode.
func (s *Server) PrefillReplicas() int { return s.prefillReps }

// Submission describes one request.
type Submission struct {
	App          string
	Class        string
	Priority     qos.Priority
	PromptTokens int
	DecodeTokens int
	// PrefixHashes is the prompt's prefix hash chain (see
	// kvcache.ExtendChain); nil when the prompt shares no prefix. Chains
	// longer than the prompt's shareable blocks are truncated. The hashes
	// are copied — the caller keeps ownership of the slice.
	PrefixHashes []uint64
}

// Submit enqueues a request and returns its token stream. Validation
// failures are *SubmissionError; submitting to a closed server returns
// ErrClosed. Submit takes only the routed replica's admission lock — it
// never contends with planning, token accounting, or other replicas.
func (s *Server) Submit(sub Submission) (*Stream, error) {
	st := &Stream{}
	if err := s.SubmitTo(sub, st); err != nil {
		return nil, err
	}
	return st, nil
}

// SubmitTo is Submit into a caller-owned Stream, which is overwritten:
// submission loops that recycle their Stream (the load generator, the
// gateway benchmarks) stay allocation-free end to end in batched mode.
// The Stream must not be in use by a previous request.
func (s *Server) SubmitTo(sub Submission, st *Stream) error {
	cls, ok := s.classes[sub.Class]
	if !ok {
		return &SubmissionError{Field: "class", Msg: fmt.Sprintf("unknown class %q", sub.Class)}
	}
	if sub.PromptTokens <= 0 {
		return &SubmissionError{Field: "prompt_tokens", Msg: fmt.Sprintf("%d, must be positive", sub.PromptTokens)}
	}
	if sub.DecodeTokens <= 0 || sub.DecodeTokens > s.cfg.MaxDecodeTokens {
		return &SubmissionError{Field: "decode_tokens",
			Msg: fmt.Sprintf("%d outside [1,%d]", sub.DecodeTokens, s.cfg.MaxDecodeTokens)}
	}
	app := sub.App
	if app == "" {
		app = sub.Class
	}
	if s.closed.Load() {
		return ErrClosed
	}

	chain := sub.PrefixHashes
	if max := kvcache.ChainBlocks(sub.PromptTokens, s.reps[0].kvBlockTokens()); len(chain) > max {
		chain = chain[:max]
	}
	req := s.newRequest()
	hashes := append(req.PrefixHashes[:0], chain...)
	*req = request.Request{
		ID:           s.nextID.Add(1),
		App:          app,
		Class:        cls,
		Priority:     sub.Priority,
		Arrival:      s.vnow(),
		PromptTokens: sub.PromptTokens,
		DecodeTokens: sub.DecodeTokens,
	}
	req.PrefixHashes = hashes
	id := req.ID

	var entry *streamEntry
	if s.frameBuf > 0 {
		entry = s.newEntry()
		entry.id = id
		entry.req = req
		entry.staged = s.newFrame()
	} else {
		buf := sub.DecodeTokens + 1
		if buf > s.cfg.StreamBuffer {
			buf = s.cfg.StreamBuffer
		}
		entry = &streamEntry{id: id, req: req, events: make(chan Event, buf)}
	}

	// The request must be reachable by the metrics ledger before any
	// serving loop can finish it (finalizeDone moves it live -> doneOut).
	s.finMu.Lock()
	s.live[id] = req
	s.finMu.Unlock()

	if s.prefillReps > 0 {
		return s.submitDisagg(req, entry, st)
	}

	pi := s.pick(req)
	rp := s.reps[pi]
	src, tok := s.planTransfer(req, pi, len(s.reps))
	rp.load.Add(1)
	rp.snapQueued.Add(1)
	rp.snapPrefill.Add(int64(req.PromptTokens))
	s.inFlight.Add(1)
	rp.inboxMu.Lock()
	if s.closed.Load() {
		rp.inboxMu.Unlock()
		rp.load.Add(-1)
		rp.snapQueued.Add(-1)
		rp.snapPrefill.Add(-int64(req.PromptTokens))
		s.inFlight.Add(-1)
		s.finMu.Lock()
		delete(s.live, id)
		s.finMu.Unlock()
		s.releaseUnused(req, entry)
		return ErrClosed
	}
	rp.inbox = append(rp.inbox, admission{req: req, entry: entry, xferFrom: src, xferTokens: tok})
	rp.inboxMu.Unlock()
	rp.kick()
	s.accepted.Add(1)

	// After the kick the request may complete (and in batched mode be
	// recycled) at any moment; only the entry pointer and captured id are
	// safe to touch.
	*st = Stream{ID: id, srv: s}
	if entry.frames != nil {
		st.entry = entry
	} else {
		st.Events = entry.events
		st.req = req
		st.rep = rp
	}
	return nil
}

// pick routes a submission to a replica index. Snapshot-aware balancers
// score each replica's live queue state against the request's shape;
// prefix routers probe each replica's prefix cache; everything else sees
// only the load counts.
func (s *Server) pick(req *request.Request) int {
	i := s.pickOver(len(s.reps), req, req.DecodeTokens)
	if i >= 0 && i < len(s.reps) {
		return i
	}
	return 0
}

// pickOver runs the configured balancer over the first n replicas for a
// request expecting decodeTokens output tokens. With the global prefix
// index enabled, prefix probes read epoch-stamped membership snapshots —
// no replica cache lock is taken on this path.
func (s *Server) pickOver(n int, req *request.Request, decodeTokens int) int {
	if n == 1 {
		return 0
	}
	chain := req.PrefixHashes
	if sb, ok := s.balancer.(cluster.SnapshotBalancer); ok {
		if pb, ok := s.balancer.(cluster.PrefixSnapshotBalancer); ok && s.prefixIdx != nil && len(chain) > 0 {
			return pb.PickPrefixPredicted(n, s.loadOf, s.snapOf, s.indexMatch(chain), req.PromptTokens, decodeTokens)
		}
		return sb.PickPredicted(n, s.loadOf, s.snapOf, req.PromptTokens, decodeTokens)
	}
	if pr, ok := s.balancer.(cluster.PrefixRouter); ok && len(chain) > 0 {
		if s.prefixIdx != nil {
			return pr.PickPrefix(n, s.loadOf, s.indexMatch(chain))
		}
		return pr.PickPrefix(n, s.loadOf, func(j int) int {
			return s.reps[j].matchTokens(chain)
		})
	}
	return s.balancer.PickIndex(n, s.loadOf)
}

// indexMatch is a routing match probe over the global prefix index.
func (s *Server) indexMatch(chain []uint64) func(int) int {
	return func(j int) int { return s.prefixIdx.MatchTokens(j, chain) }
}

// transferSeconds prices moving tokens of cached KV between replicas over
// the configured interconnect, in virtual seconds.
func (s *Server) transferSeconds(tokens int) float64 {
	if tokens <= 0 || s.cfg.KVTransferBandwidth <= 0 {
		return 0
	}
	return float64(tokens) * s.xferBytesPerToken / s.cfg.KVTransferBandwidth
}

// planTransfer decides at submission whether the chosen replica should
// import the request's cached prefix from another replica instead of
// recomputing it: it returns the source and the total prefix tokens to
// credit after the import, or (-1, 0) to recompute. tierN bounds the index
// scan to the replicas that can hold the prefix (the prefill tier in
// disagg mode). The plan is advisory — the index may be stale — so admit
// re-validates the source's liveness and coverage before charging the
// interconnect, falling back to recompute.
func (s *Server) planTransfer(req *request.Request, chosen, tierN int) (src, tokens int) {
	if s.cfg.KVTransferBandwidth <= 0 || s.prefixIdx == nil || len(req.PrefixHashes) == 0 {
		return -1, 0
	}
	holder, best := s.prefixIdx.BestMatch(tierN, req.PrefixHashes)
	if holder < 0 || holder == chosen {
		return -1, 0
	}
	if best > req.PromptTokens-1 {
		best = req.PromptTokens - 1
	}
	local := s.prefixIdx.MatchTokens(chosen, req.PrefixHashes)
	moved := best - local
	if moved < cluster.DefaultMinMatchTokens {
		return -1, 0
	}
	// Migrate only when the interconnect beats recomputing the moved tokens
	// as a single prefill chunk — conservative toward recompute, since real
	// chunked prefill pays per-iteration overhead on top.
	recompute := s.cfg.Model.BatchTime(model.BatchShape{
		Prefill: []model.ChunkShape{{Tokens: moved, CtxStart: local}},
	}).Seconds()
	if s.transferSeconds(moved) >= recompute {
		return -1, 0
	}
	return holder, best
}

// transferableMatch re-validates a planned KV import source at admission:
// the chain coverage it currently advertises, or 0 when it is down or out
// of range.
func (s *Server) transferableMatch(src int, chain []uint64) int {
	if src < 0 || src >= len(s.reps) || s.reps[src].down.Load() {
		return 0
	}
	return s.prefixIdx.MatchTokens(src, chain)
}

// matchTokens probes the replica's prefix cache for routing affinity. Only
// used when the global prefix index is disabled — with it, routing probes
// the index and never takes kvMu.
func (rp *gatewayReplica) matchTokens(chain []uint64) int {
	rp.kvMu.Lock()
	defer rp.kvMu.Unlock()
	return rp.kv.MatchTokens(chain)
}

// publishIndexLocked exports this replica's cache membership into the
// global prefix index when it changed since the last publication — warm
// steady-state traffic (pure re-pins) publishes nothing. Caller holds
// kvMu and has checked srv.prefixIdx != nil.
//
//qoserve:locked kvMu
func (rp *gatewayReplica) publishIndexLocked() {
	if v := rp.kv.IndexVersion(); v != rp.idxVersion {
		rp.srv.prefixIdx.Publish(rp.idx, rp.kv.ExportIndex())
		rp.idxVersion = v
	}
}

// kvBlockTokens reads the cache block size (immutable after New).
func (rp *gatewayReplica) kvBlockTokens() int {
	rp.kvMu.Lock()
	defer rp.kvMu.Unlock()
	return rp.kv.BlockTokens()
}

// run is one replica's serving iteration cycle.
func (rp *gatewayReplica) run() {
	defer rp.srv.wg.Done()
	for {
		if rp.down.Load() {
			rp.crashDrain()
			return
		}
		if !rp.admit() {
			if rp.down.Load() {
				rp.crashDrain()
			}
			return
		}
		now := rp.srv.vnow()
		rp.mu.Lock()
		batch := rp.scheduler.PlanBatch(now)
		rp.mu.Unlock()

		if batch.Empty() {
			// Pending work but nothing runnable this instant (can happen
			// transiently with admission-style schedulers); park until a
			// kick or the coarse fallback tick instead of busy-polling.
			rp.idleWait()
			continue
		}

		batch.ShapeInto(&rp.shape)
		exec := rp.srv.cfg.Model.BatchTime(rp.shape)
		wall := exec.Duration()
		if rp.reloadDebt > 0 {
			// Warm prefixes promoted from DRAM since the last iteration
			// pay their transfer here, serializing with compute.
			wall += rp.reloadDebt
			rp.reloadDebt = 0
		}
		if rp.transferDebt > 0 {
			// Prefix KV imported from another replica pays its interconnect
			// time the same way.
			wall += rp.transferDebt
			rp.transferDebt = 0
		}
		time.Sleep(time.Duration(float64(wall) / rp.srv.cfg.Timescale))

		rp.mu.Lock()
		end := rp.srv.vnow()
		rp.completeLocked(batch, exec, end)
		rp.mu.Unlock()
		rp.finishIteration(end)
		if len(rp.handoffQ) > 0 {
			rp.launchHandoffs()
		}
		if rp.active == 0 {
			// Idle replica: retire the decode-batch gauges so balancers do
			// not score work that drained (the queued gauges net to zero by
			// their own bookkeeping).
			rp.snapDecodes.Store(0)
			rp.snapSumCtx.Store(0)
			rp.snapMaxCtx.Store(0)
			rp.maybeShrinkStreams()
		}
	}
}

// admit blocks until this replica has work (or the server closes or this
// replica crashes), then drains the inbox into the scheduler in one swap.
// It returns false when the loop should stop.
func (rp *gatewayReplica) admit() bool {
	rp.inboxMu.Lock()
	for !rp.srv.closed.Load() && !rp.down.Load() && len(rp.inbox) == 0 && rp.active == 0 {
		// Park on the wakeup channel. The predicate is re-checked under
		// inboxMu after every receive, so a kick that lands between the
		// unlock and the receive is never lost (kick's buffered send
		// sticks) and a spurious wake is harmless.
		rp.inboxMu.Unlock()
		<-rp.notify
		rp.inboxMu.Lock()
	}
	if rp.srv.closed.Load() || rp.down.Load() {
		rp.inboxMu.Unlock()
		return false
	}
	rp.inbox, rp.drained = rp.drained[:0], rp.inbox
	rp.inboxMu.Unlock()

	if len(rp.drained) == 0 {
		return true
	}
	// Pin shared prefixes before the scheduler sees the requests: matched
	// tokens are credited as already prefilled (the chunk planners just
	// see less remaining work) and DRAM promotions accrue reload debt for
	// the next iteration's sleep. Planned cross-replica imports are
	// re-validated here — the source may have crashed or evicted since
	// submission — then credited like local hits, with the interconnect
	// time accrued as transfer debt.
	srv := rp.srv
	var hitCredit, moveCredit, reloadCredit, fallbacks int64
	rp.kvMu.Lock()
	for _, ad := range rp.drained {
		if len(ad.req.PrefixHashes) == 0 {
			continue
		}
		res := rp.kv.AcquirePrefix(ad.req.ID, ad.req.PrefixHashes)
		credit := res.HitTokens
		if ad.xferTokens > credit {
			if avail := srv.transferableMatch(ad.xferFrom, ad.req.PrefixHashes); avail > credit {
				imp := ad.xferTokens
				if avail < imp {
					imp = avail
				}
				moved := imp - credit
				credit = imp
				rp.transferDebt += time.Duration(srv.transferSeconds(moved) * float64(time.Second))
				moveCredit += int64(moved)
			} else {
				// Source gone: recompute instead. Never a silent drop — the
				// request simply keeps its full prefill work.
				fallbacks++
			}
		}
		ad.req.ApplyPrefixHit(credit)
		hitCredit += int64(credit)
		if res.ReloadTokens > 0 {
			reloadCredit += int64(res.ReloadTokens)
			rp.reloadDebt += time.Duration(rp.kv.ReloadSeconds(res.ReloadTokens) * float64(time.Second))
		}
	}
	if srv.prefixIdx != nil {
		rp.publishIndexLocked()
	}
	rp.kvMu.Unlock()
	// Counter and snapshot publication is batched to one update per admit
	// cycle: the per-request Adds used to dominate the kvMu hold time on
	// bursty admission.
	if hitCredit > 0 {
		srv.prefixHits.Add(uint64(hitCredit))
		rp.snapPrefill.Add(-hitCredit)
	}
	if moveCredit > 0 {
		srv.prefixTransferTokens.Add(uint64(moveCredit))
	}
	if reloadCredit > 0 {
		srv.reloadTokens.Add(uint64(reloadCredit))
	}
	if fallbacks > 0 {
		srv.transferFallbacks.Add(uint64(fallbacks))
	}
	now := rp.srv.vnow()
	rp.mu.Lock()
	for _, ad := range rp.drained {
		if ad.orig != nil {
			// Disagg prefill clone: no stream here — its completion hands
			// the original off to the decode tier instead.
			rp.pending[ad.req.ID] = pendingHandoff{clone: ad.req, orig: ad.orig, entry: ad.entry, home: ad.home}
		} else {
			rp.streams[ad.req.ID] = ad.entry
			if len(rp.streams) > rp.streamsPeak {
				rp.streamsPeak = len(rp.streams)
			}
		}
		rp.scheduler.Add(ad.req, now)
	}
	rp.mu.Unlock()
	rp.active += len(rp.drained)
	for i := range rp.drained {
		rp.drained[i] = admission{} // release references, keep capacity
	}
	return true
}

// completeLocked performs the post-execution phase of one iteration: token
// accounting, lifetime counters, the histogram shard, and event assembly
// into the loop-owned outbox. No channel operation happens here — flush
// delivers the outbox after mu is released — and the steady state
// allocates nothing (TestServeSteadyStateAllocFree).
//
//qoserve:hotpath
//qoserve:locked mu
func (rp *gatewayReplica) completeLocked(b sched.Batch, exec, end sim.Time) {
	srv := rp.srv
	srv.iterations.Add(1)
	srv.tokens.Add(uint64(b.NewTokens()))
	srv.prefillTokens.Add(uint64(b.PrefillTokens()))
	srv.decodeTokens.Add(uint64(len(b.Decodes)))
	rp.hist.observe(exec.Seconds())
	decodes, sumCtx, maxCtx := 0, 0, 0
	var dPrefill, dQueued int64
	for _, p := range b.Prefill {
		dPrefill += int64(p.Tokens)
		before := p.Req.DecodedTokens
		p.Req.RecordPrefill(p.Tokens, end)
		if p.Req.DecodedTokens > before {
			dQueued++
			if h, ok := rp.pending[p.Req.ID]; ok {
				// Disagg prefill clone finished: hand the original off to
				// its decode home instead of streaming a token.
				rp.handoffQ = append(rp.handoffQ, h)
			} else {
				rp.stageEvent(p.Req, end)
			}
		}
		if len(p.Req.PrefixHashes) > 0 && p.Req.Phase() == request.Done {
			rp.releaseQ = append(rp.releaseQ, p.Req.ID)
		}
		if p.Req.Phase() == request.Decode {
			decodes++
			c := p.Req.ContextLen()
			sumCtx += c
			if c > maxCtx {
				maxCtx = c
			}
		}
	}
	for _, d := range b.Decodes {
		d.RecordDecodeToken(end)
		rp.stageEvent(d, end)
		if len(d.PrefixHashes) > 0 && d.Phase() == request.Done {
			rp.releaseQ = append(rp.releaseQ, d.ID)
		}
		if d.Phase() != request.Done {
			decodes++
			c := d.ContextLen()
			sumCtx += c
			if c > maxCtx {
				maxCtx = c
			}
		}
	}
	// Load-snapshot publication is batched: one Add per gauge per
	// iteration instead of one per request.
	if dPrefill != 0 {
		rp.snapPrefill.Add(-dPrefill)
	}
	if dQueued != 0 {
		rp.snapQueued.Add(-dQueued)
	}
	rp.snapDecodes.Store(int64(decodes))
	rp.snapSumCtx.Store(int64(sumCtx))
	rp.snapMaxCtx.Store(int64(maxCtx))
	if pt := b.PrefillTokens(); pt > 0 {
		rp.snapChunk.Store(int64(pt))
	}
	rp.scheduler.OnBatchComplete(b, end)
}

// stageEvent queues the request's newest token for delivery after mu is
// released. Unbatched streams get one outbox delivery per token; batched
// streams append to the entry's staged frame (evicting the oldest staged
// event when the frame is full and the final token must fit).
//
//qoserve:hotpath
//qoserve:locked mu
func (rp *gatewayReplica) stageEvent(r *request.Request, at sim.Time) {
	e := rp.streams[r.ID]
	if e == nil {
		return
	}
	done := r.Phase() == request.Done
	ev := Event{Token: r.DecodedTokens, At: at.Duration(), Done: done}
	if e.frames == nil {
		rp.outbox = append(rp.outbox, delivery{events: e.events, ev: ev, id: r.ID})
		if done {
			rp.finalQ = append(rp.finalQ, e)
		}
		return
	}
	if len(e.staged) < cap(e.staged) {
		e.staged = append(e.staged, ev)
	} else if done {
		rp.srv.droppedEvents.Add(1)
		copy(e.staged, e.staged[1:])
		e.staged[len(e.staged)-1] = ev
	} else {
		rp.srv.droppedEvents.Add(1)
	}
	if done {
		e.final = true
		rp.finalQ = append(rp.finalQ, e)
	}
	if !e.queued {
		e.queued = true
		rp.sendQ = append(rp.sendQ, e)
	}
}

// flush delivers the staged outbox without holding any lock (unbatched
// mode only; batched delivery is flushFrames). Full buffers drop
// intermediate token events (counted in droppedEvents) but never the
// final one: a finished stream always observes Done, then close.
//
//qoserve:hotpath
func (rp *gatewayReplica) flush() {
	for i := range rp.outbox {
		d := &rp.outbox[i]
		if !d.ev.Done {
			select {
			case d.events <- d.ev:
			default:
				rp.srv.droppedEvents.Add(1)
			}
			continue
		}
		rp.sendFinal(d.events, d.ev)
		close(d.events)
		delete(rp.streams, d.id)
		rp.active--
		rp.load.Add(-1)
		if rp.srv.inFlight.Add(-1) == 0 {
			rp.srv.kickDrain()
		}
	}
	for i := range rp.outbox {
		rp.outbox[i] = delivery{} // release channel references
	}
	rp.outbox = rp.outbox[:0]
}

// sendFinal delivers ev even on a full buffer by evicting the oldest
// undelivered events. The serving loop is the only sender and consumers
// only receive, so eviction makes room and the loop terminates. Delivering
// the final event is what completes a request, so this is the gateway's
// outcome recorder.
//
//qoserve:hotpath
//qoserve:outcome complete
func (rp *gatewayReplica) sendFinal(events chan Event, ev Event) {
	for {
		select {
		case events <- ev:
			return
		default:
		}
		select {
		case <-events:
			rp.srv.droppedEvents.Add(1)
		default:
		}
	}
}

// Stats is a snapshot of server health.
type Stats struct {
	VirtualNow    time.Duration
	Pending       int
	Served        int
	Iterations    uint64
	Tokens        uint64
	ViolationRate float64
	// DroppedEvents counts token events discarded on full stream buffers.
	DroppedEvents uint64
	// Replicas is the number of serving loops.
	Replicas int
}

// Stats snapshots current counters and the violation rate over all
// requests seen so far.
func (s *Server) Stats() Stats {
	vnow := s.vnow()
	sum := s.summary(vnow)
	return Stats{
		VirtualNow:    vnow.Duration(),
		Pending:       int(s.inFlight.Load()),
		Served:        int(s.accepted.Load()),
		Iterations:    s.iterations.Load(),
		Tokens:        s.tokens.Load(),
		ViolationRate: sum.ViolationRate(metrics.All),
		DroppedEvents: s.droppedEvents.Load(),
		Replicas:      len(s.reps),
	}
}

// summary builds a metrics summary over every accepted request: finished
// outcomes from the ledger plus a consistent scan of the live set. It
// takes every replica's scheduler lock (in index order) so live request
// state cannot mutate mid-scan, then finMu (a leaf lock) so no request
// retires or recycles during the read; only /metrics and /v1/stats call
// it, and they tolerate the brief stall.
func (s *Server) summary(vnow sim.Time) *metrics.Summary {
	for _, rp := range s.reps {
		rp.mu.Lock()
	}
	s.finMu.Lock()
	live := make([]*request.Request, 0, len(s.live))
	for _, r := range s.live {
		live = append(live, r)
	}
	sum := metrics.MixedSummary(s.doneOut, live, vnow, len(s.reps))
	s.finMu.Unlock()
	for i := len(s.reps) - 1; i >= 0; i-- {
		s.reps[i].mu.Unlock()
	}
	return sum
}

// DroppedEvents is the number of token events discarded on full stream
// buffers since start.
func (s *Server) DroppedEvents() uint64 { return s.droppedEvents.Load() }

// KVStats aggregates prefix-cache statistics across the serving loops.
type KVStats struct {
	// PrefixHitTokens is prompt tokens served from cached prefixes.
	PrefixHitTokens uint64
	// ReloadTokens is the subset of hits promoted from the DRAM tier.
	ReloadTokens uint64
	// Demotions counts HBM -> DRAM block moves under pressure.
	Demotions uint64
	// HBMEvictions / DRAMEvictions count blocks dropped from each tier.
	HBMEvictions  uint64
	DRAMEvictions uint64
	// CachedHBMBlocks / CachedDRAMBlocks are currently resident blocks.
	CachedHBMBlocks  int
	CachedDRAMBlocks int
	// PrefixTransferTokens is hit tokens whose KV was imported from
	// another replica's cache over the interconnect instead of recomputed.
	PrefixTransferTokens uint64
	// TransferFallbacks counts planned imports abandoned at admission
	// (source crashed or evicted its blocks) and served by recompute.
	TransferFallbacks uint64
}

// KVStats snapshots the prefix caches, probing each replica in turn.
func (s *Server) KVStats() KVStats {
	st := KVStats{
		PrefixHitTokens:      s.prefixHits.Load(),
		ReloadTokens:         s.reloadTokens.Load(),
		PrefixTransferTokens: s.prefixTransferTokens.Load(),
		TransferFallbacks:    s.transferFallbacks.Load(),
	}
	for _, rp := range s.reps {
		rp.kvMu.Lock()
		h, d := rp.kv.CachedBlocks()
		st.CachedHBMBlocks += h
		st.CachedDRAMBlocks += d
		hb, db := rp.kv.TierEvictions()
		st.HBMEvictions += hb
		st.DRAMEvictions += db
		st.Demotions += rp.kv.Demotions()
		rp.kvMu.Unlock()
	}
	return st
}

// Trace returns the live iteration trace ring, or nil when tracing is
// disabled (Config.TraceDepth == 0).
func (s *Server) Trace() *trace.Ring { return s.tracer }

// QueueDepths is a live snapshot of scheduler queues, summed over replicas.
type QueueDepths struct {
	Main      int
	Relegated int
	Decode    int
	// Reported is false when the schedulers do not implement
	// sched.QueueReporter; the depth fields are then zero.
	Reported bool
}

// Queues snapshots the schedulers' queue depths, summed across replicas.
func (s *Server) Queues() QueueDepths {
	d := QueueDepths{Reported: true}
	for _, rp := range s.reps {
		rq, ok := rp.queues()
		if !ok {
			return QueueDepths{}
		}
		d.Main += rq.Main
		d.Relegated += rq.Relegated
		d.Decode += rq.Decode
	}
	return d
}

// queues reads one replica's queue depths under its scheduler lock.
func (rp *gatewayReplica) queues() (QueueDepths, bool) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	qr, ok := rp.scheduler.(sched.QueueReporter)
	if !ok {
		return QueueDepths{}, false
	}
	d := QueueDepths{Reported: true}
	d.Main, d.Relegated, d.Decode = qr.QueueLen()
	return d, true
}

// policyName is the scheduling policy name (identical on every replica).
func (s *Server) policyName() string {
	rp := s.reps[0]
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return rp.scheduler.Name()
}

// relegations sums eager-relegation counts over replicas; reported is
// false when no scheduler exposes them.
func (s *Server) relegations() (total int, reported bool) {
	for _, rp := range s.reps {
		rp.mu.Lock()
		if rc, ok := rp.scheduler.(interface{ Relegations() int }); ok {
			total += rc.Relegations()
			reported = true
		}
		rp.mu.Unlock()
	}
	return total, reported
}

// Drain blocks until every accepted request has finished or the context is
// cancelled. Serving loops kick drainWake when inFlight reaches zero, so
// the common case wakes immediately; a coarse backstop tick covers the
// race where a request is submitted between the load and the park.
func (s *Server) Drain(ctx context.Context) error {
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.inFlight.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-s.drainWake:
		case <-tick.C:
		}
	}
}

// Close stops the serving loops. In-flight streams stop receiving events.
func (s *Server) Close() {
	if !s.closed.Swap(true) {
		for _, rp := range s.reps {
			rp.kick()
		}
	}
	s.wg.Wait()
}
