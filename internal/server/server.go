// Package server runs a QoServe scheduler in real time: a wall-clock
// serving loop that executes the same iteration cycle as the simulator —
// plan batch, "execute" for the cost-model duration, account tokens — and
// streams token events to concurrent clients.
//
// This is the serving-system face of the reproduction: the paper's artifact
// is a scheduler inside a serving engine, and this package provides that
// engine shape without GPUs. Execution time comes from the calibrated cost
// model, optionally accelerated by a timescale factor, so the server doubles
// as a QoS-policy load-testing harness: clients declare their request
// shapes (prompt/decode token counts) and observe exactly the TTFT/TBT/TTLT
// behaviour the scheduler produces under contention. cmd/qoserved exposes it
// over HTTP.
package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/qos"
	"qoserve/internal/request"
	"qoserve/internal/sched"
	"qoserve/internal/sim"
	"qoserve/internal/trace"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("server: closed")

// SubmissionError reports an invalid submission. The HTTP layer maps it to
// a 400 response whose JSON body carries both fields (see the error schema
// in docs/OPERATIONS.md).
type SubmissionError struct {
	// Field is the offending submission field, in wire (JSON) naming.
	Field string
	// Msg says what is wrong with it.
	Msg string
}

// Error implements error.
func (e *SubmissionError) Error() string {
	return fmt.Sprintf("server: invalid %s: %s", e.Field, e.Msg)
}

// Event is one streamed token notification.
type Event struct {
	// Token is the 1-based output token index.
	Token int
	// At is the virtual emission time.
	At time.Duration
	// Done marks the final token.
	Done bool
}

// Stream delivers a request's token events. The channel is buffered for the
// request's full output, so the serving loop never blocks on a slow
// consumer; it is closed after the Done event.
type Stream struct {
	ID     uint64
	Events <-chan Event
	req    *request.Request
	srv    *Server
}

// Result summarizes a finished request. Valid once the stream has closed.
type Result struct {
	TTFT     time.Duration
	TTLT     time.Duration
	Violated bool
	Releg    bool
}

// Result reports the request's outcome as of now.
func (s *Stream) Result() Result {
	s.srv.mu.Lock()
	defer s.srv.mu.Unlock()
	res := Result{Violated: s.req.ViolatedSLO(s.srv.vnowLocked()), Releg: s.req.Relegated}
	if ttft, ok := s.req.TTFT(); ok {
		res.TTFT = ttft.Duration()
	}
	if ttlt, ok := s.req.TTLT(); ok {
		res.TTLT = ttlt.Duration()
	}
	return res
}

// Config configures a real-time server.
type Config struct {
	Model model.Config
	// Scheduler serves the requests; it must not be shared.
	Scheduler sched.Scheduler
	// Classes that submissions may reference.
	Classes []qos.Class
	// Timescale accelerates virtual time relative to wall time (e.g.
	// 100 means a 50 ms iteration sleeps 0.5 ms). Default 1.
	Timescale float64
	// MaxDecodeTokens bounds a submission's declared output length
	// (default 4096) so stream buffers stay sane.
	MaxDecodeTokens int
	// TraceDepth enables live iteration tracing with a ring buffer
	// retaining that many iterations, served by GET /debug/trace. Zero
	// (the default) disables tracing entirely: the scheduler keeps its
	// no-op tracer and the hot path pays only a branch per iteration.
	TraceDepth int
	// MetricsWindow is the trailing window (virtual time) over which the
	// per-class TTFT/TTLT/TBT and violation-rate gauges on GET /metrics
	// are computed. Default one minute.
	MetricsWindow time.Duration
	// FaultStatus, when non-nil, supplies replica health and recovery
	// counters for GET /metrics (replica up/down gauges, retry and
	// lost-work counters). Wire it to a cluster's fault state — e.g.
	// bridge Cluster.Health() and Cluster.FaultStats() — or leave nil for
	// single-replica servers, which then omit the fault series.
	FaultStatus func() FaultStatus
}

// ReplicaHealth is one replica's liveness as exposed on /metrics.
type ReplicaHealth struct {
	Up         bool
	Crashes    uint64
	Restarts   uint64
	SlowFactor float64
}

// FaultStatus carries failure and recovery state for /metrics.
type FaultStatus struct {
	// Replicas is per-replica health, indexed by replica number.
	Replicas []ReplicaHealth
	// Retries counts request re-enqueues after replica crashes.
	Retries uint64
	// LostTokens is the total tokens of progress discarded by crashes.
	LostTokens uint64
	// FailedRequests counts requests permanently failed with a reason.
	FailedRequests int
	// Parked counts requests currently waiting for any healthy replica.
	Parked int
}

// Server is the real-time serving loop. Create with New, stop with Close.
type Server struct {
	cfg     Config
	classes map[string]qos.Class

	mu      sync.Mutex
	wake    *sync.Cond
	closed  bool                  // guarded by mu
	nextID  uint64                // guarded by mu
	start   time.Time             // immutable after New
	streams map[uint64]chan Event // guarded by mu
	served  []*request.Request    // guarded by mu

	iterations    uint64    // guarded by mu
	tokens        uint64    // guarded by mu
	prefillTokens uint64    // guarded by mu
	decodeTokens  uint64    // guarded by mu
	iterHist      histogram // guarded by mu

	// tracer is non-nil when Config.TraceDepth enabled tracing.
	tracer *trace.Ring

	done chan struct{}
}

// New validates the configuration and starts the serving loop.
func New(cfg Config) (*Server, error) {
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("server: nil scheduler")
	}
	if cfg.Timescale == 0 {
		cfg.Timescale = 1
	}
	if cfg.Timescale < 0 {
		return nil, fmt.Errorf("server: negative timescale")
	}
	if cfg.MaxDecodeTokens == 0 {
		cfg.MaxDecodeTokens = 4096
	}
	if cfg.TraceDepth < 0 {
		return nil, fmt.Errorf("server: negative trace depth")
	}
	if cfg.MetricsWindow == 0 {
		cfg.MetricsWindow = time.Minute
	}
	if len(cfg.Classes) == 0 {
		return nil, fmt.Errorf("server: no QoS classes configured")
	}
	s := &Server{
		cfg:     cfg,
		classes: make(map[string]qos.Class, len(cfg.Classes)),
		streams: make(map[uint64]chan Event),
		start:   time.Now(),
		done:    make(chan struct{}),
	}
	if cfg.TraceDepth > 0 {
		tr, ok := cfg.Scheduler.(sched.Traceable)
		if !ok {
			return nil, fmt.Errorf("server: scheduler %s does not support tracing", cfg.Scheduler.Name())
		}
		s.tracer = trace.NewRing(cfg.TraceDepth)
		tr.SetTracer(s.tracer)
	}
	for _, c := range cfg.Classes {
		if err := c.Validate(); err != nil {
			return nil, err
		}
		s.classes[c.Name] = c
	}
	s.wake = sync.NewCond(&s.mu)
	go s.loop()
	return s, nil
}

// vnowLocked is the current virtual time; callers hold s.mu.
func (s *Server) vnowLocked() sim.Time {
	return sim.Time(float64(time.Since(s.start)) * s.cfg.Timescale)
}

// Submission describes one request.
type Submission struct {
	App          string
	Class        string
	Priority     qos.Priority
	PromptTokens int
	DecodeTokens int
}

// Submit enqueues a request and returns its token stream. Validation
// failures are *SubmissionError; submitting to a closed server returns
// ErrClosed.
func (s *Server) Submit(sub Submission) (*Stream, error) {
	cls, ok := s.classes[sub.Class]
	if !ok {
		return nil, &SubmissionError{Field: "class", Msg: fmt.Sprintf("unknown class %q", sub.Class)}
	}
	if sub.PromptTokens <= 0 {
		return nil, &SubmissionError{Field: "prompt_tokens", Msg: fmt.Sprintf("%d, must be positive", sub.PromptTokens)}
	}
	if sub.DecodeTokens <= 0 || sub.DecodeTokens > s.cfg.MaxDecodeTokens {
		return nil, &SubmissionError{Field: "decode_tokens",
			Msg: fmt.Sprintf("%d outside [1,%d]", sub.DecodeTokens, s.cfg.MaxDecodeTokens)}
	}
	app := sub.App
	if app == "" {
		app = sub.Class
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	s.nextID++
	req := &request.Request{
		ID:           s.nextID,
		App:          app,
		Class:        cls,
		Priority:     sub.Priority,
		Arrival:      s.vnowLocked(),
		PromptTokens: sub.PromptTokens,
		DecodeTokens: sub.DecodeTokens,
	}
	events := make(chan Event, sub.DecodeTokens+1)
	s.streams[req.ID] = events
	s.served = append(s.served, req)
	s.cfg.Scheduler.Add(req, req.Arrival)
	s.wake.Signal()
	return &Stream{ID: req.ID, Events: events, req: req, srv: s}, nil
}

// loop is the serving iteration cycle.
func (s *Server) loop() {
	defer close(s.done)
	for {
		s.mu.Lock()
		for !s.closed && s.cfg.Scheduler.Pending() == 0 {
			s.wake.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		now := s.vnowLocked()
		batch := s.cfg.Scheduler.PlanBatch(now)
		s.mu.Unlock()

		if batch.Empty() {
			// Pending work but nothing runnable this instant (can happen
			// transiently with admission-style schedulers); back off.
			time.Sleep(time.Millisecond)
			continue
		}

		exec := s.cfg.Model.BatchTime(batch.Shape())
		time.Sleep(time.Duration(float64(exec.Duration()) / s.cfg.Timescale))

		s.mu.Lock()
		end := s.vnowLocked()
		s.iterations++
		s.tokens += uint64(batch.NewTokens())
		s.prefillTokens += uint64(batch.PrefillTokens())
		s.decodeTokens += uint64(len(batch.Decodes))
		s.iterHist.observe(exec.Seconds())
		for _, p := range batch.Prefill {
			before := p.Req.DecodedTokens
			p.Req.RecordPrefill(p.Tokens, end)
			if p.Req.DecodedTokens > before {
				s.emitLocked(p.Req, end)
			}
		}
		for _, d := range batch.Decodes {
			d.RecordDecodeToken(end)
			s.emitLocked(d, end)
		}
		s.cfg.Scheduler.OnBatchComplete(batch, end)
		s.mu.Unlock()
	}
}

// emitLocked streams the request's newest token; callers hold s.mu.
//
//qoserve:locked mu
func (s *Server) emitLocked(r *request.Request, at sim.Time) {
	events, ok := s.streams[r.ID]
	if !ok {
		return
	}
	done := r.Phase() == request.Done
	events <- Event{Token: r.DecodedTokens, At: at.Duration(), Done: done}
	if done {
		close(events)
		delete(s.streams, r.ID)
	}
}

// Stats is a snapshot of server health.
type Stats struct {
	VirtualNow    time.Duration
	Pending       int
	Served        int
	Iterations    uint64
	Tokens        uint64
	ViolationRate float64
}

// Stats snapshots current counters and the violation rate over all
// requests seen so far.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	sum := metrics.NewSummary(s.served, s.vnowLocked(), 1)
	return Stats{
		VirtualNow:    s.vnowLocked().Duration(),
		Pending:       s.cfg.Scheduler.Pending(),
		Served:        len(s.served),
		Iterations:    s.iterations,
		Tokens:        s.tokens,
		ViolationRate: sum.ViolationRate(metrics.All),
	}
}

// Trace returns the live iteration trace ring, or nil when tracing is
// disabled (Config.TraceDepth == 0).
func (s *Server) Trace() *trace.Ring { return s.tracer }

// QueueDepths is a live snapshot of the scheduler's queues.
type QueueDepths struct {
	Main      int
	Relegated int
	Decode    int
	// Reported is false when the scheduler does not implement
	// sched.QueueReporter; the depth fields are then zero.
	Reported bool
}

// Queues snapshots the scheduler's queue depths.
func (s *Server) Queues() QueueDepths {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queuesLocked()
}

func (s *Server) queuesLocked() QueueDepths {
	qr, ok := s.cfg.Scheduler.(sched.QueueReporter)
	if !ok {
		return QueueDepths{}
	}
	d := QueueDepths{Reported: true}
	d.Main, d.Relegated, d.Decode = qr.QueueLen()
	return d
}

// Drain blocks until every accepted request has finished or the context is
// cancelled.
func (s *Server) Drain(ctx context.Context) error {
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		s.mu.Lock()
		pending := s.cfg.Scheduler.Pending()
		s.mu.Unlock()
		if pending == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Close stops the serving loop. In-flight streams stop receiving events.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.wake.Broadcast()
	s.mu.Unlock()
	<-s.done
}
