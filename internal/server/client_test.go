package server

import (
	"context"
	"net/http/httptest"
	"sort"
	"testing"
	"time"
)

func testClient(t *testing.T) (*Client, *Server) {
	t.Helper()
	srv := newTestServer(t, qoserveSched())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return NewClient(ts.URL, nil), srv
}

func TestClientGenerate(t *testing.T) {
	c, _ := testClient(t)
	var tokens []int
	done, err := c.Generate(context.Background(), GenerateRequest{
		Class: "Q1", PromptTokens: 400, DecodeTokens: 4,
	}, func(ev TokenEvent) { tokens = append(tokens, ev.Token) })
	if err != nil {
		t.Fatal(err)
	}
	if len(tokens) != 4 {
		t.Fatalf("streamed %d tokens, want 4", len(tokens))
	}
	if done.Event != "done" || done.TTFTMS <= 0 || done.TTLTMS < done.TTFTMS {
		t.Fatalf("done event = %+v", done)
	}
	if done.Violated {
		t.Error("lone request violated")
	}
}

func TestClientGenerateErrors(t *testing.T) {
	c, _ := testClient(t)
	if _, err := c.Generate(context.Background(), GenerateRequest{
		Class: "nope", PromptTokens: 10, DecodeTokens: 1,
	}, nil); err == nil {
		t.Error("unknown class accepted")
	}
	// Cancelled context aborts the stream.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Generate(ctx, GenerateRequest{
		Class: "Q1", PromptTokens: 400, DecodeTokens: 4,
	}, nil); err == nil {
		t.Error("cancelled context produced no error")
	}
}

func TestClientStatsAndClasses(t *testing.T) {
	c, _ := testClient(t)
	classes, err := c.FetchClasses(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 3 {
		t.Fatalf("classes = %v", classes)
	}
	names := make([]string, len(classes))
	for i, cl := range classes {
		names[i] = cl.Name
	}
	sort.Strings(names)
	if names[0] != "Q1" || names[2] != "Q3" {
		t.Fatalf("class names = %v", names)
	}

	stats, err := c.FetchStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Served != 0 {
		t.Fatalf("fresh stats = %+v", stats)
	}
}

func TestClientDriveLoad(t *testing.T) {
	c, srv := testClient(t)
	reqs := []GenerateRequest{
		{Class: "Q1", PromptTokens: 300, DecodeTokens: 3},
		{Class: "Q2", PromptTokens: 600, DecodeTokens: 2},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := c.DriveLoad(ctx, reqs, 4, 12)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 12 || len(rep.TTFTs) != 12 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Wall <= 0 {
		t.Fatal("no wall time")
	}
	stats := srv.Stats()
	if stats.Served != 12 {
		t.Fatalf("server served %d", stats.Served)
	}

	if _, err := c.DriveLoad(ctx, nil, 1, 1); err == nil {
		t.Error("empty request list accepted")
	}
}
