package server

import (
	"fmt"
	"time"

	"qoserve/internal/cluster"
	"qoserve/internal/metrics"
	"qoserve/internal/replica"
	"qoserve/internal/request"
	"qoserve/internal/sim"
)

// Disaggregated serving (Config.Mode "disagg"): the gateway splits its
// replicas into a prefill tier and a decode tier, the paper's temporal
// silo broken spatially instead. Each submission is cloned into a
// single-output-token prefill request that runs under the configured
// scheduler on the prefill tier — keeping the scheduler's chunked,
// preemptible prefill granularity, so a tight-deadline prompt can still
// overtake a long one mid-prefill — while the original request is
// assigned a fixed decode-tier home. When the clone finishes, its KV
// pages "transfer" across the interconnect (a virtual-time delay sized by
// the model's KV bytes per token and Config.TransferBandwidth) and the
// original joins its home's FCFS decode loop, which runs capped batches
// sized so iteration time stays under the strictest TBT.
//
// Fault contract (no silent drops): a prefill-tier replica may be crashed
// with Server.Crash. Every request it held — queued in its inbox, admitted
// into its scheduler, or with a KV transfer in flight from it — is either
// re-prefilled on a healthy prefill replica (bounded retries, lost
// progress counted) or permanently failed with a reason, which delivers a
// final Done event and marks the request an SLO violation. A request is
// never lost.

// maxHandoffRetries bounds re-prefill attempts after prefill-tier crashes.
const maxHandoffRetries = 3

// roleOf names replica i's tier for /debug/load and /metrics.
func (s *Server) roleOf(i int) string {
	switch {
	case s.prefillReps == 0:
		return "colocated"
	case i < s.prefillReps:
		return "prefill"
	default:
		return "decode"
	}
}

// loadSnapshot materializes the lock-free queue gauges as a
// replica.LoadSnapshot for balancer scoring and GET /debug/load. The
// gauge writers are not mutually synchronized, so values are clamped
// non-negative rather than trusted to satisfy Validate.
//
//qoserve:hotpath
func (rp *gatewayReplica) loadSnapshot() replica.LoadSnapshot {
	return replica.LoadSnapshot{
		QueuedRequests:       clampSnap(rp.snapQueued.Load()),
		PendingPrefillTokens: clampSnap(rp.snapPrefill.Load()),
		ActiveDecodes:        clampSnap(rp.snapDecodes.Load()),
		SumDecodeCtx:         clampSnap(rp.snapSumCtx.Load()),
		MaxDecodeCtx:         clampSnap(rp.snapMaxCtx.Load()),
		ChunkBudgetTokens:    clampSnap(rp.snapChunk.Load()),
	}
}

//qoserve:hotpath
func clampSnap(v int64) int {
	if v < 0 {
		return 0
	}
	return int(v)
}

// prefillClone builds the single-token prefill-tier twin of orig. Arrival
// and Class carry over so the prefill scheduler sees the true deadlines.
func (s *Server) prefillClone(orig *request.Request) *request.Request {
	return &request.Request{
		ID:              s.nextID.Add(1),
		App:             orig.App,
		Class:           orig.Class,
		Priority:        orig.Priority,
		Arrival:         orig.Arrival,
		PromptTokens:    orig.PromptTokens,
		DecodeTokens:    1,
		EstDecodeTokens: 1,
		PrefixHashes:    orig.PrefixHashes,
	}
}

// submitDisagg routes one accepted submission through the two-tier
// pipeline. The decode home is fixed now so exactly one serving loop ever
// mutates the request; the prefill replica is chosen by the configured
// balancer over the prefill tier.
//
//qoserve:outcome requeue
func (s *Server) submitDisagg(req *request.Request, entry *streamEntry, st *Stream) error {
	id := req.ID
	home := s.pickDecodeHome(req)
	h := pendingHandoff{clone: s.prefillClone(req), orig: req, entry: entry, home: home}
	s.reps[home].load.Add(1)
	s.inFlight.Add(1)
	if !s.enqueuePrefill(h) {
		s.reps[home].load.Add(-1)
		s.inFlight.Add(-1)
		s.finMu.Lock()
		delete(s.live, id)
		s.finMu.Unlock()
		s.releaseUnused(req, entry)
		if s.closed.Load() {
			return ErrClosed
		}
		return ErrNoHealthyReplica
	}
	s.accepted.Add(1)
	*st = Stream{ID: id, srv: s}
	if entry.frames != nil {
		st.entry = entry
	} else {
		st.Events = entry.events
		st.req = req
		st.rep = s.reps[home]
	}
	return nil
}

// pickDecodeHome fixes a request's decode-tier home. Snapshot-aware
// balancers score each decode replica's live queue state against the
// request's shape with the predictor — the decode iterations carry the
// full prompt context, so a long-prompt request should dodge replicas
// already thick with long contexts — while everything else keeps the
// least-loaded pick.
func (s *Server) pickDecodeHome(req *request.Request) int {
	nd := len(s.reps) - s.prefillReps
	if nd > 1 {
		if sb, ok := s.balancer.(cluster.SnapshotBalancer); ok {
			i := sb.PickPredicted(nd,
				func(j int) int { return int(s.reps[s.prefillReps+j].load.Load()) },
				func(j int) replica.LoadSnapshot { return s.reps[s.prefillReps+j].loadSnapshot() },
				req.PromptTokens, req.DecodeTokens)
			if i >= 0 && i < nd {
				return s.prefillReps + i
			}
		}
	}
	home := s.prefillReps
	for i := s.prefillReps + 1; i < len(s.reps); i++ {
		if s.reps[i].load.Load() < s.reps[home].load.Load() {
			home = i
		}
	}
	return home
}

// pickPrefill chooses a healthy prefill-tier replica for the handoff's
// prompt, or -1 when the whole tier is down. Decode length is 1 for the
// balancer: only the prefill work runs on this tier.
func (s *Server) pickPrefill(req *request.Request) int {
	i := s.pickOver(s.prefillReps, req, 1)
	if i < 0 || i >= s.prefillReps || s.reps[i].down.Load() {
		return s.healthyPrefill()
	}
	return i
}

// healthyPrefill is the least-loaded healthy prefill replica, or -1.
func (s *Server) healthyPrefill() int {
	best := -1
	for i := 0; i < s.prefillReps; i++ {
		rp := s.reps[i]
		if rp.down.Load() {
			continue
		}
		if best < 0 || rp.load.Load() < s.reps[best].load.Load() {
			best = i
		}
	}
	return best
}

// enqueuePrefill places the handoff's clone on a healthy prefill replica,
// re-picking if the chosen replica crashes under it. False means no
// healthy prefill replica remains (or the server closed).
func (s *Server) enqueuePrefill(h pendingHandoff) bool {
	for attempt := 0; attempt <= s.prefillReps; attempt++ {
		i := s.pickPrefill(h.orig)
		if i < 0 {
			return false
		}
		rp := s.reps[i]
		rp.load.Add(1)
		rp.snapQueued.Add(1)
		rp.snapPrefill.Add(int64(h.orig.PromptTokens))
		rp.inboxMu.Lock()
		if s.closed.Load() || rp.down.Load() {
			down := rp.down.Load()
			rp.inboxMu.Unlock()
			rp.load.Add(-1)
			rp.snapQueued.Add(-1)
			rp.snapPrefill.Add(-int64(h.orig.PromptTokens))
			if !down {
				return false // closed
			}
			continue // crashed between pick and enqueue; re-pick
		}
		src, tok := s.planTransfer(h.clone, i, s.prefillReps)
		rp.inbox = append(rp.inbox, admission{req: h.clone, entry: h.entry, orig: h.orig, home: h.home, xferFrom: src, xferTokens: tok})
		rp.inboxMu.Unlock()
		rp.kick()
		return true
	}
	return false
}

// launchHandoffs starts the KV transfer for every clone that finished
// prefill this iteration. Runs on the prefill loop goroutine after flush;
// the transfer is a virtual-time delay (KV bytes / interconnect
// bandwidth), after which the original request arrives at its decode home.
func (rp *gatewayReplica) launchHandoffs() {
	srv := rp.srv
	for _, h := range rp.handoffQ {
		delete(rp.pending, h.clone.ID)
		rp.active--
		rp.load.Add(-1)
		srv.handoffs.Add(1)
		srv.transferTokens.Add(uint64(h.orig.PromptTokens))
		bytes := srv.cfg.Model.Model.KVBytesPerToken() * float64(h.orig.PromptTokens)
		wall := bytes / srv.cfg.TransferBandwidth * float64(time.Second) / srv.cfg.Timescale
		h := h
		src := rp
		time.AfterFunc(time.Duration(wall), func() { srv.deliverHandoff(src, h) })
	}
	for i := range rp.handoffQ {
		rp.handoffQ[i] = pendingHandoff{}
	}
	rp.handoffQ = rp.handoffQ[:0]
}

// deliverHandoff completes one KV transfer: the original request joins its
// decode home. If the source replica died mid-transfer the KV pages are
// gone and the request re-prefills elsewhere (or fails with a reason).
//
//qoserve:outcome requeue
func (s *Server) deliverHandoff(src *gatewayReplica, h pendingHandoff) {
	if s.closed.Load() {
		return
	}
	if src.down.Load() {
		s.lostTokens.Add(uint64(h.orig.PromptTokens))
		s.retryOrFail(h, "kv transfer source crashed")
		return
	}
	home := s.reps[h.home]
	home.inboxMu.Lock()
	if s.closed.Load() {
		home.inboxMu.Unlock()
		return
	}
	home.inbox = append(home.inbox, admission{req: h.orig, entry: h.entry})
	home.inboxMu.Unlock()
	home.kick()
}

// retryOrFail re-prefills a crash-orphaned request on a healthy prefill
// replica, or permanently fails it once the retry budget is exhausted or
// no healthy replica remains. The original request's state is reset under
// its decode home's lock — the home loop has never seen the request, so
// that lock only fences concurrent Stream.Result readers.
func (s *Server) retryOrFail(h pendingHandoff, cause string) {
	home := s.reps[h.home]
	home.mu.Lock()
	h.orig.ResetForRetry()
	retries := h.orig.Retries
	home.mu.Unlock()
	s.retries.Add(1)
	if retries > maxHandoffRetries {
		s.failRequest(h, fmt.Sprintf("%s; retry budget exhausted after %d attempts", cause, retries))
		return
	}
	h.clone = s.prefillClone(h.orig)
	if !s.enqueuePrefill(h) {
		s.failRequest(h, fmt.Sprintf("%s; no healthy prefill replica", cause))
	}
}

// failRequest permanently fails a request that could not be served. The
// stream still receives a final Done event (the result reports the
// failure as an SLO violation) so no consumer is left hanging and no
// request is silently dropped. The outcome is frozen into the finished
// ledger before the final event ships, exactly like sendFinalFrame; the
// request object itself is not recycled (the consumer's Stream may still
// reference it), it just leaves the live set.
//
//qoserve:outcome complete
func (s *Server) failRequest(h pendingHandoff, reason string) {
	home := s.reps[h.home]
	home.mu.Lock()
	h.orig.FailedReason = reason
	home.mu.Unlock()
	s.failedReqs.Add(1)
	end := s.vnow()
	final := Event{Token: h.orig.DecodedTokens, At: end.Duration(), Done: true}
	e := h.entry
	s.finMu.Lock()
	e.res = resultOf(h.orig, end)
	delete(s.live, h.orig.ID)
	s.doneOut = append(s.doneOut, metrics.OutcomeOf(h.orig, end))
	s.finMu.Unlock()
	e.req = nil
	if e.frames != nil {
		// No serving loop ever registered this entry, so its staged frame
		// was never queued: recycle it and ship the final event in a fresh
		// frame, evicting stale frames until it fits (this goroutine is the
		// only sender).
		if e.staged != nil {
			s.recycleFrame(e.staged)
			e.staged = nil
		}
		f := append(s.newFrame(), final)
		for {
			select {
			case e.frames <- f:
				home.load.Add(-1)
				if s.inFlight.Add(-1) == 0 {
					s.kickDrain()
				}
				return
			default:
			}
			select {
			case old := <-e.frames:
				s.droppedEvents.Add(uint64(len(old)))
				s.recycleFrame(old)
			default:
			}
		}
	}
	// Unbatched: evict stale events until the final one fits, then close.
	for {
		select {
		case e.events <- final:
			close(e.events)
			home.load.Add(-1)
			if s.inFlight.Add(-1) == 0 {
				s.kickDrain()
			}
			return
		default:
		}
		select {
		case <-e.events:
			s.droppedEvents.Add(1)
		default:
		}
	}
}

// Crash marks a prefill-tier replica as failed. Its serving loop drains
// every request it holds through retryOrFail and exits; in-flight KV
// transfers out of it are treated as lost when they land. Only disagg
// prefill replicas may crash — the decode tier owns request state that has
// nowhere else to live.
func (s *Server) Crash(i int) error {
	if s.prefillReps == 0 {
		return fmt.Errorf("server: Crash requires disagg mode")
	}
	if i < 0 || i >= s.prefillReps {
		return fmt.Errorf("server: replica %d is not in the prefill tier (size %d)", i, s.prefillReps)
	}
	rp := s.reps[i]
	if rp.down.Swap(true) {
		return fmt.Errorf("server: replica %d already down", i)
	}
	rp.kick()
	return nil
}

// crashDrain runs on a crashed prefill replica's loop goroutine: every
// request it holds — still in the inbox or admitted into the scheduler —
// is retried elsewhere or failed with a reason, progress is counted as
// lost, and the gauges are zeroed so balancers stop routing here.
func (rp *gatewayReplica) crashDrain() {
	srv := rp.srv
	rp.inboxMu.Lock()
	waiting := rp.inbox
	rp.inbox = nil
	rp.inboxMu.Unlock()
	for _, ad := range waiting {
		if ad.orig == nil {
			continue
		}
		srv.retryOrFail(pendingHandoff{clone: ad.req, orig: ad.orig, entry: ad.entry, home: ad.home}, "prefill replica crashed")
	}
	for _, h := range rp.pending {
		srv.lostTokens.Add(uint64(h.clone.ContextLen()))
		srv.retryOrFail(h, "prefill replica crashed")
	}
	clear(rp.pending)
	rp.load.Store(0)
	rp.snapQueued.Store(0)
	rp.snapPrefill.Store(0)
	rp.snapDecodes.Store(0)
	rp.snapSumCtx.Store(0)
	rp.snapMaxCtx.Store(0)
	rp.snapChunk.Store(0)
}

// runDecode is a decode-tier replica's serving loop: admit KV handoffs,
// then run FCFS decode batches capped at Config.MaxDecodeBatch so
// iteration time stays under the strictest TBT regardless of queue depth.
func (rp *gatewayReplica) runDecode() {
	defer rp.srv.wg.Done()
	for {
		if !rp.admitDecode() {
			return
		}
		if len(rp.decQ) == 0 {
			continue // every arrival finished at admission (1-token outputs)
		}
		n := len(rp.decQ)
		if n > rp.srv.maxDecodeBatch {
			n = rp.srv.maxDecodeBatch
		}
		batch := rp.decQ[:n]
		rp.shape.Prefill = rp.shape.Prefill[:0]
		rp.shape.DecodeCtx = rp.shape.DecodeCtx[:0]
		for _, r := range batch {
			rp.shape.DecodeCtx = append(rp.shape.DecodeCtx, r.ContextLen())
		}
		exec := rp.srv.cfg.Model.BatchTime(rp.shape)
		time.Sleep(time.Duration(float64(exec.Duration()) / rp.srv.cfg.Timescale))

		rp.mu.Lock()
		end := rp.srv.vnow()
		rp.completeDecodeLocked(batch, exec, end)
		rp.mu.Unlock()

		// Compact before finishIteration: it reads each request's phase,
		// and finalizeDone may recycle finished requests (batched mode).
		keep := rp.decQ[:0]
		for _, r := range rp.decQ {
			if r.Phase() != request.Done {
				keep = append(keep, r)
			}
		}
		for i := len(keep); i < len(rp.decQ); i++ {
			rp.decQ[i] = nil
		}
		rp.decQ = keep
		rp.finishIteration(end)
		rp.refreshDecodeSnap()
		if len(rp.decQ) == 0 {
			rp.maybeShrinkStreams()
		}
	}
}

// admitDecode blocks until this decode replica has work, then registers
// arriving handoffs: the original request's prompt is credited as
// prefilled (stamping TTFT — queueing, prefill, and transfer all elapsed)
// and its first token streams out.
func (rp *gatewayReplica) admitDecode() bool {
	rp.inboxMu.Lock()
	for !rp.srv.closed.Load() && len(rp.inbox) == 0 && rp.active == 0 {
		// Same lost-wakeup-free park as admit: buffered kick + re-check.
		rp.inboxMu.Unlock()
		<-rp.notify
		rp.inboxMu.Lock()
	}
	if rp.srv.closed.Load() {
		rp.inboxMu.Unlock()
		return false
	}
	rp.inbox, rp.drained = rp.drained[:0], rp.inbox
	rp.inboxMu.Unlock()
	if len(rp.drained) == 0 {
		return true
	}
	now := rp.srv.vnow()
	rp.mu.Lock()
	for _, ad := range rp.drained {
		r := ad.req
		rp.streams[r.ID] = ad.entry
		if len(rp.streams) > rp.streamsPeak {
			rp.streamsPeak = len(rp.streams)
		}
		r.RecordPrefill(r.PromptTokens, now)
		rp.stageEvent(r, now)
		if r.Phase() != request.Done {
			rp.decQ = append(rp.decQ, r)
		}
	}
	rp.mu.Unlock()
	rp.active += len(rp.drained)
	for i := range rp.drained {
		rp.drained[i] = admission{}
	}
	rp.finishIteration(now)
	rp.refreshDecodeSnap()
	return true
}

// completeDecodeLocked accounts one decode-tier iteration: every request
// in the batch emits one token. Prompt tokens were already counted by the
// prefill tier, so only decode tokens accrue here.
//
//qoserve:hotpath
//qoserve:locked mu
func (rp *gatewayReplica) completeDecodeLocked(batch []*request.Request, exec, end sim.Time) {
	srv := rp.srv
	srv.iterations.Add(1)
	srv.tokens.Add(uint64(len(batch)))
	srv.decodeTokens.Add(uint64(len(batch)))
	rp.hist.observe(exec.Seconds())
	for _, r := range batch {
		r.RecordDecodeToken(end)
		rp.stageEvent(r, end)
	}
}

// refreshDecodeSnap publishes the decode queue's shape to the gauges for
// /debug/load (decode replicas are not balancer targets, but operators
// still read their state).
func (rp *gatewayReplica) refreshDecodeSnap() {
	decodes, sum, max := 0, 0, 0
	for _, r := range rp.decQ {
		decodes++
		c := r.ContextLen()
		sum += c
		if c > max {
			max = c
		}
	}
	rp.snapDecodes.Store(int64(decodes))
	rp.snapSumCtx.Store(int64(sum))
	rp.snapMaxCtx.Store(int64(max))
}
