// Package autoscale adds reactive replica scaling on top of the cluster
// simulation — the deployment-level knob the paper's related work
// (SageServe, PolyServe) builds entire systems around, provided here as an
// extension so QoServe's co-scheduling can be compared under a fixed fleet
// and an elastic one.
//
// The controller is deliberately simple and reactive (the paper argues the
// interesting QoS work belongs in the scheduler, not the autoscaler): every
// control interval it estimates fleet pressure as pending requests per
// replica, scales up when pressure exceeds the upper threshold — after a
// provisioning delay that models model-weight loading — and scales down
// below the lower threshold. Replicas drain before retiring: a retiring
// replica accepts no new requests but finishes everything it holds.
package autoscale

import (
	"fmt"

	"qoserve/internal/cluster"
	"qoserve/internal/model"
	"qoserve/internal/replica"
	"qoserve/internal/request"
	"qoserve/internal/sim"
)

// Config tunes the controller.
type Config struct {
	Model   model.Config
	Factory cluster.SchedulerFactory

	// MinReplicas..MaxReplicas bound the fleet (defaults 1..16).
	MinReplicas int
	MaxReplicas int

	// Interval between control decisions (default 30 s).
	Interval sim.Time
	// ProvisionDelay models replica startup: weight loading, warmup
	// (default 60 s).
	ProvisionDelay sim.Time

	// ScaleUpPressure / ScaleDownPressure are pending-requests-per-replica
	// thresholds (defaults 8 and 2).
	ScaleUpPressure   float64
	ScaleDownPressure float64
}

func (c *Config) applyDefaults() error {
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if c.Factory == nil {
		return fmt.Errorf("autoscale: nil scheduler factory")
	}
	if c.MinReplicas <= 0 {
		c.MinReplicas = 1
	}
	if c.MaxReplicas <= 0 {
		c.MaxReplicas = 16
	}
	if c.MaxReplicas < c.MinReplicas {
		return fmt.Errorf("autoscale: max replicas %d < min %d", c.MaxReplicas, c.MinReplicas)
	}
	if c.Interval <= 0 {
		c.Interval = 30 * sim.Second
	}
	if c.ProvisionDelay < 0 {
		return fmt.Errorf("autoscale: negative provision delay")
	}
	if c.ProvisionDelay == 0 {
		c.ProvisionDelay = 60 * sim.Second
	}
	if c.ScaleUpPressure <= 0 {
		c.ScaleUpPressure = 8
	}
	if c.ScaleDownPressure <= 0 {
		c.ScaleDownPressure = 2
	}
	if c.ScaleDownPressure >= c.ScaleUpPressure {
		return fmt.Errorf("autoscale: scale-down pressure %v >= scale-up %v",
			c.ScaleDownPressure, c.ScaleUpPressure)
	}
	return nil
}

// Fleet is an elastically sized set of replicas behind least-pending
// routing (round-robin is meaningless when membership changes).
type Fleet struct {
	cfg    Config
	engine *sim.Engine

	active    []*replica.Replica
	retiring  []*replica.Replica
	booting   int
	scaleUps  int
	downs     int
	gpuSecAcc float64
	lastAt    sim.Time
	stopped   bool
}

// NewFleet starts a fleet at MinReplicas and arms the control loop.
func NewFleet(engine *sim.Engine, cfg Config) (*Fleet, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	f := &Fleet{cfg: cfg, engine: engine}
	for i := 0; i < cfg.MinReplicas; i++ {
		rep, err := replica.New(engine, cfg.Model, cfg.Factory())
		if err != nil {
			return nil, err
		}
		f.active = append(f.active, rep)
	}
	engine.After(cfg.Interval, sim.EventFunc(f.control))
	return f, nil
}

// Submit routes to the least-pending active replica.
func (f *Fleet) Submit(r *request.Request) {
	best := f.active[0]
	for _, rep := range f.active[1:] {
		if rep.Scheduler().Pending() < best.Scheduler().Pending() {
			best = rep
		}
	}
	best.Submit(r)
}

// Stop halts the control loop (end of workload); retiring replicas still
// drain.
func (f *Fleet) Stop() { f.stopped = true }

// Size reports (active, booting, retiring) replica counts.
func (f *Fleet) Size() (active, booting, retiring int) {
	return len(f.active), f.booting, len(f.retiring)
}

// ScaleEvents reports how many scale-ups and scale-downs occurred.
func (f *Fleet) ScaleEvents() (ups, downs int) { return f.scaleUps, f.downs }

// GPUSeconds is the integral of (active+booting+retiring) replicas x TP
// over virtual time — the cost the autoscaler is trying to save.
func (f *Fleet) GPUSeconds() float64 {
	f.accrue(f.engine.Now())
	return f.gpuSecAcc
}

func (f *Fleet) accrue(now sim.Time) {
	span := (now - f.lastAt).Seconds()
	if span > 0 {
		gpus := float64((len(f.active) + f.booting + len(f.retiring)) * f.cfg.Model.GPUs())
		f.gpuSecAcc += span * gpus
		f.lastAt = now
	}
}

// pressure is pending requests per active replica.
func (f *Fleet) pressure() float64 {
	pending := 0
	for _, rep := range f.active {
		pending += rep.Scheduler().Pending()
	}
	return float64(pending) / float64(len(f.active))
}

// control is the periodic decision.
func (f *Fleet) control(e *sim.Engine, now sim.Time) {
	f.accrue(now)

	// Release retired replicas that have drained.
	live := f.retiring[:0]
	for _, rep := range f.retiring {
		if rep.Scheduler().Pending() > 0 {
			live = append(live, rep)
		}
	}
	f.retiring = live

	if f.stopped {
		if len(f.retiring) > 0 {
			e.After(f.cfg.Interval, sim.EventFunc(f.control))
		}
		return
	}

	p := f.pressure()
	switch {
	case p > f.cfg.ScaleUpPressure && len(f.active)+f.booting < f.cfg.MaxReplicas:
		f.booting++
		f.scaleUps++
		e.After(f.cfg.ProvisionDelay, sim.EventFunc(func(_ *sim.Engine, t sim.Time) {
			f.accrue(t)
			f.booting--
			rep, err := replica.New(e, f.cfg.Model, f.cfg.Factory())
			if err != nil {
				panic(err) // config was validated at NewFleet
			}
			f.active = append(f.active, rep)
		}))
	case p < f.cfg.ScaleDownPressure && len(f.active) > f.cfg.MinReplicas && f.booting == 0:
		// Retire the least-loaded replica; it drains then disappears.
		idx := 0
		for i, rep := range f.active {
			if rep.Scheduler().Pending() < f.active[idx].Scheduler().Pending() {
				idx = i
			}
		}
		victim := f.active[idx]
		f.active = append(f.active[:idx], f.active[idx+1:]...)
		f.retiring = append(f.retiring, victim)
		f.downs++
	}
	e.After(f.cfg.Interval, sim.EventFunc(f.control))
}
