package autoscale

import (
	"testing"

	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/qos"
	"qoserve/internal/request"
	"qoserve/internal/sched"
	"qoserve/internal/sim"
	"qoserve/internal/workload"
)

func fleetConfig() Config {
	return Config{
		Model:   model.Llama3_8B_A100_TP1(),
		Factory: func() sched.Scheduler { return sched.NewSarathi(sched.EDF, 256) },
	}
}

func burstyTrace(t *testing.T, n int) []*request.Request {
	t.Helper()
	reqs, err := workload.Generate(workload.Spec{
		Dataset: workload.Dataset{Name: "tiny",
			Prompt: workload.TokenDist{P50: 800, P90: 2500},
			Decode: workload.TokenDist{P50: 10, P90: 40},
		},
		Tiers:    workload.EqualTiers(qos.Table3()),
		Arrivals: workload.Diurnal{LowQPS: 1, HighQPS: 12, HalfPeriod: 2 * sim.Minute},
		Requests: n,
		Seed:     17,
	})
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func TestDefaultsAndValidation(t *testing.T) {
	cfg := fleetConfig()
	if err := cfg.applyDefaults(); err != nil {
		t.Fatal(err)
	}
	if cfg.MinReplicas != 1 || cfg.MaxReplicas != 16 || cfg.Interval != 30*sim.Second {
		t.Errorf("defaults = %+v", cfg)
	}

	bad := fleetConfig()
	bad.Factory = nil
	if bad.applyDefaults() == nil {
		t.Error("nil factory accepted")
	}
	bad = fleetConfig()
	bad.MinReplicas, bad.MaxReplicas = 8, 4
	if bad.applyDefaults() == nil {
		t.Error("max < min accepted")
	}
	bad = fleetConfig()
	bad.ScaleUpPressure, bad.ScaleDownPressure = 2, 5
	if bad.applyDefaults() == nil {
		t.Error("inverted thresholds accepted")
	}
	bad = fleetConfig()
	bad.ProvisionDelay = -sim.Second
	if bad.applyDefaults() == nil {
		t.Error("negative provision delay accepted")
	}
}

func TestFleetScalesUpUnderBurst(t *testing.T) {
	engine := sim.NewEngine()
	cfg := fleetConfig()
	cfg.MaxReplicas = 6
	cfg.Interval = 15 * sim.Second
	cfg.ProvisionDelay = 20 * sim.Second
	fleet, err := NewFleet(engine, cfg)
	if err != nil {
		t.Fatal(err)
	}
	trace := burstyTrace(t, 800)
	for _, r := range trace {
		r := r
		engine.AtPriority(r.Arrival, -1, sim.EventFunc(func(_ *sim.Engine, _ sim.Time) {
			fleet.Submit(r)
		}))
	}
	last := trace[len(trace)-1].Arrival
	engine.At(last+sim.Second, sim.EventFunc(func(_ *sim.Engine, _ sim.Time) { fleet.Stop() }))
	end := engine.RunUntil(last + 30*sim.Minute)

	ups, _ := fleet.ScaleEvents()
	if ups == 0 {
		t.Fatal("burst provoked no scale-up")
	}
	sum := metrics.NewSummary(trace, end, 1)
	if got := sum.CompletionRate(metrics.All); got != 1 {
		t.Fatalf("completion rate = %v", got)
	}
	if fleet.GPUSeconds() <= 0 {
		t.Fatal("no GPU time accounted")
	}
}

func TestFleetScalesDownWhenIdle(t *testing.T) {
	engine := sim.NewEngine()
	cfg := fleetConfig()
	cfg.MinReplicas = 1
	cfg.MaxReplicas = 4
	cfg.Interval = 10 * sim.Second
	cfg.ProvisionDelay = 10 * sim.Second
	fleet, err := NewFleet(engine, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Force the fleet up by flooding, then stop arrivals.
	trace := burstyTrace(t, 400)
	for _, r := range trace {
		r := r
		engine.AtPriority(r.Arrival, -1, sim.EventFunc(func(_ *sim.Engine, _ sim.Time) {
			fleet.Submit(r)
		}))
	}
	last := trace[len(trace)-1].Arrival
	// Observe the fleet well after the drain; before Stop so the control
	// loop is still running scale-downs.
	engine.At(last+20*sim.Minute, sim.EventFunc(func(_ *sim.Engine, _ sim.Time) {
		active, booting, _ := fleet.Size()
		if active != cfg.MinReplicas || booting != 0 {
			t.Errorf("fleet did not shrink to min: active=%d booting=%d", active, booting)
		}
		_, downs := fleet.ScaleEvents()
		if downs == 0 {
			t.Error("no scale-down events")
		}
		fleet.Stop()
	}))
	engine.RunUntil(last + 30*sim.Minute)
	for _, r := range trace {
		if r.Phase() != request.Done {
			t.Fatalf("request %d lost during scaling (phase %v)", r.ID, r.Phase())
		}
	}
}

func TestRetiringReplicaDrains(t *testing.T) {
	engine := sim.NewEngine()
	cfg := fleetConfig()
	cfg.MinReplicas = 2
	cfg.MaxReplicas = 2
	fleet, err := NewFleet(engine, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Submit directly, then force a manual retirement by dropping Min.
	r := &request.Request{ID: 1, App: "Q3", Class: qos.Table3()[2],
		Arrival: 0, PromptTokens: 4000, DecodeTokens: 50}
	fleet.Submit(r)
	fleet.cfg.MinReplicas = 1
	// Run the engine; control loop should retire one replica and the
	// request must still complete.
	engine.At(10*sim.Minute, sim.EventFunc(func(_ *sim.Engine, _ sim.Time) { fleet.Stop() }))
	engine.RunUntil(15 * sim.Minute)
	if r.Phase() != request.Done {
		t.Fatalf("request lost: phase %v", r.Phase())
	}
	active, _, retiring := fleet.Size()
	if active != 1 || retiring != 0 {
		t.Errorf("fleet state after drain: active=%d retiring=%d", active, retiring)
	}
}
