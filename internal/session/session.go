// Package session drives closed-loop, multi-turn conversations through a
// serving replica — the workload shape behind conversational traces like
// ShareGPT, which open-loop trace replay (the paper's methodology, and the
// default here) deliberately flattens.
//
// In a closed loop, a user's next turn arrives only after the previous
// response completed plus a think time, and each turn's prompt carries the
// whole accumulated conversation (previous prompt + previous output + the
// new user message). Two serving-relevant consequences follow: prompts grow
// across turns, and the arrival process self-throttles under overload —
// queueing delay pushes subsequent turns later, which is why closed-loop
// systems degrade more gracefully than open-loop replays suggest.
package session

import (
	"fmt"
	"math/rand"
	"sort"

	"qoserve/internal/kvcache"
	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/qos"
	"qoserve/internal/replica"
	"qoserve/internal/request"
	"qoserve/internal/sched"
	"qoserve/internal/sim"
	"qoserve/internal/workload"
)

// Profile shapes one population of conversations.
type Profile struct {
	Class    qos.Class
	Priority qos.Priority

	// FirstPrompt is the opening message length; FollowUp the new user
	// tokens added per subsequent turn; Decode the response length.
	FirstPrompt workload.TokenDist
	FollowUp    workload.TokenDist
	Decode      workload.TokenDist

	// MeanTurns is the geometric mean conversation length (>= 1).
	MeanTurns float64
	// ThinkTime is the mean pause between receiving a response and
	// sending the next turn.
	ThinkTime sim.Time
	// MaxContext truncates the accumulated conversation (sliding window),
	// as production chat systems do. Zero means workload.DefaultMaxTokens.
	MaxContext int

	// SharedPrefix attaches a prefix hash chain to every turn, so a
	// replica with a prefix-aware KV cache serves follow-up turns mostly
	// from cache. Chain hashes incorporate the sliding-window start
	// offset: once MaxContext truncates the conversation, the shifted
	// window hashes differently and honestly misses the cache.
	SharedPrefix bool
}

// Validate reports a configuration error, if any.
func (p Profile) Validate() error {
	if err := p.Class.Validate(); err != nil {
		return err
	}
	for _, d := range []workload.TokenDist{p.FirstPrompt, p.FollowUp, p.Decode} {
		if err := d.Validate(); err != nil {
			return err
		}
	}
	if p.MeanTurns < 1 {
		return fmt.Errorf("session: mean turns %v < 1", p.MeanTurns)
	}
	if p.ThinkTime < 0 {
		return fmt.Errorf("session: negative think time")
	}
	return nil
}

// Spec describes a closed-loop run.
type Spec struct {
	Profile Profile
	// SessionQPS is the Poisson arrival rate of new conversations.
	SessionQPS float64
	// Sessions is the total number of conversations.
	Sessions int
	Seed     int64
}

// Result aggregates a closed-loop run.
type Result struct {
	// Summary covers every turn as an individual request.
	Summary *metrics.Summary
	// Turns is the total number of requests (turns) served.
	Turns int
	// MeanTurnsPerSession is the realized conversation length.
	MeanTurnsPerSession float64
	// FinalContextP50 is the median context length of last turns.
	FinalContextP50 int
}

// Run drives the closed-loop workload on a single replica with the given
// scheduler until every conversation finishes or the horizon passes.
func Run(mc model.Config, s sched.Scheduler, spec Spec, horizon sim.Time) (*Result, error) {
	if err := spec.Profile.Validate(); err != nil {
		return nil, err
	}
	if spec.SessionQPS <= 0 || spec.Sessions <= 0 {
		return nil, fmt.Errorf("session: need positive session rate and count")
	}
	maxCtx := spec.Profile.MaxContext
	if maxCtx == 0 {
		maxCtx = workload.DefaultMaxTokens
	}

	engine := sim.NewEngine()
	rep, err := replica.New(engine, mc, s)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	var (
		all    []*request.Request
		nextID uint64
	)

	// geometricTurns draws a conversation length with the given mean.
	geometricTurns := func() int {
		if spec.Profile.MeanTurns <= 1 {
			return 1
		}
		p := 1 / spec.Profile.MeanTurns
		n := 1
		for rng.Float64() > p {
			n++
		}
		return n
	}

	// submitTurn sends one turn and arms the follow-up when it completes.
	// sessionKey seeds the turn's prefix chain when SharedPrefix is on.
	var submitTurn func(sessionKey uint64, ctxTokens, turnsLeft int, at sim.Time)
	submitTurn = func(sessionKey uint64, ctxTokens, turnsLeft int, at sim.Time) {
		nextID++
		prompt := ctxTokens
		if prompt > maxCtx {
			prompt = maxCtx
		}
		r := &request.Request{
			ID:           nextID,
			App:          spec.Profile.Class.Name,
			Class:        spec.Profile.Class,
			Priority:     spec.Profile.Priority,
			Arrival:      at,
			PromptTokens: prompt,
			DecodeTokens: spec.Profile.Decode.Sample(rng),
		}
		if spec.Profile.SharedPrefix {
			// The window start (tokens truncated off the front) feeds the
			// hashes, so a slid window does not falsely match the cache.
			r.PrefixHashes = kvcache.SyntheticChain(sessionKey, ctxTokens-prompt,
				kvcache.ChainBlocks(prompt, kvcache.DefaultBlockTokens))
		}
		all = append(all, r)
		engine.AtPriority(at, -1, sim.EventFunc(func(_ *sim.Engine, _ sim.Time) {
			rep.Submit(r)
		}))
		// Watch for completion with a light poll (the engine has no
		// completion hooks by design; the poll is exact within its period).
		var watch func(e *sim.Engine, now sim.Time)
		watch = func(e *sim.Engine, now sim.Time) {
			if r.Phase() != request.Done {
				e.After(50*sim.Millisecond, sim.EventFunc(watch))
				return
			}
			if turnsLeft <= 1 {
				return
			}
			think := sim.Time(float64(spec.Profile.ThinkTime) * rng.ExpFloat64())
			next := r.FinishedAt + think
			if next <= now {
				next = now + sim.Nanosecond
			}
			newCtx := ctxTokens + r.DecodeTokens + spec.Profile.FollowUp.Sample(rng)
			e.At(next, sim.EventFunc(func(_ *sim.Engine, t sim.Time) {
				submitTurn(sessionKey, newCtx, turnsLeft-1, t)
			}))
		}
		engine.At(at+sim.Millisecond, sim.EventFunc(watch))
	}

	// Poisson session arrivals. The chain key is the session ordinal (not
	// an extra RNG draw), so enabling SharedPrefix perturbs nothing else.
	var t sim.Time
	for i := 0; i < spec.Sessions; i++ {
		t += sim.FromSeconds(rng.ExpFloat64() / spec.SessionQPS)
		turns := geometricTurns()
		first := spec.Profile.FirstPrompt.Sample(rng)
		at := t
		key := uint64(i + 1)
		engine.At(at, sim.EventFunc(func(_ *sim.Engine, now sim.Time) {
			submitTurn(key, first, turns, now)
		}))
	}

	end := engine.RunUntil(horizon)

	res := &Result{
		Summary: metrics.NewSummary(all, end, 1),
		Turns:   len(all),
	}
	if spec.Sessions > 0 {
		res.MeanTurnsPerSession = float64(len(all)) / float64(spec.Sessions)
	}
	var finals []int
	for _, r := range all {
		finals = append(finals, r.PromptTokens)
	}
	if len(finals) > 0 {
		res.FinalContextP50 = medianInt(finals)
	}
	return res, nil
}

func medianInt(v []int) int {
	cp := append([]int(nil), v...)
	sort.Ints(cp)
	return cp[len(cp)/2]
}
