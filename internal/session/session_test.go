package session

import (
	"testing"

	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/qos"
	"qoserve/internal/sched"
	"qoserve/internal/sim"
	"qoserve/internal/workload"
)

func chatProfile() Profile {
	return Profile{
		Class: qos.Class{Name: "Q1", Kind: qos.Interactive,
			SLO: qos.SLO{TTFT: 6 * sim.Second, TBT: 50 * sim.Millisecond}},
		FirstPrompt: workload.TokenDist{P50: 300, P90: 900},
		FollowUp:    workload.TokenDist{P50: 60, P90: 200},
		Decode:      workload.TokenDist{P50: 20, P90: 60},
		MeanTurns:   4,
		ThinkTime:   2 * sim.Second,
	}
}

func TestProfileValidation(t *testing.T) {
	good := chatProfile()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := chatProfile()
	bad.MeanTurns = 0.5
	if bad.Validate() == nil {
		t.Error("mean turns < 1 accepted")
	}
	bad = chatProfile()
	bad.ThinkTime = -sim.Second
	if bad.Validate() == nil {
		t.Error("negative think time accepted")
	}
	bad = chatProfile()
	bad.Decode = workload.TokenDist{}
	if bad.Validate() == nil {
		t.Error("invalid decode dist accepted")
	}
}

func TestClosedLoopConversations(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	res, err := Run(mc, sched.NewSarathi(sched.EDF, 256), Spec{
		Profile:    chatProfile(),
		SessionQPS: 0.5,
		Sessions:   30,
		Seed:       3,
	}, sim.Forever)
	if err != nil {
		t.Fatal(err)
	}
	if res.Turns < 30 {
		t.Fatalf("only %d turns for 30 sessions", res.Turns)
	}
	// Geometric(mean 4) conversations: realized mean in a sane band.
	if res.MeanTurnsPerSession < 2 || res.MeanTurnsPerSession > 7 {
		t.Errorf("mean turns/session = %.2f", res.MeanTurnsPerSession)
	}
	if got := res.Summary.CompletionRate(metrics.All); got != 1 {
		t.Fatalf("completion rate = %v", got)
	}
	// Context accumulates: the median prompt must exceed the opening
	// message median (later turns carry the conversation).
	if res.FinalContextP50 <= 300 {
		t.Errorf("median prompt %d does not show context growth", res.FinalContextP50)
	}
}

func TestClosedLoopSelfThrottles(t *testing.T) {
	// Closed-loop arrivals slow down under load: with a think time of
	// zero and heavy sessions, total turn arrivals stretch rather than
	// queueing unboundedly. We check the mechanism: turn t+1 of any
	// session never arrives before turn t finished.
	mc := model.Llama3_8B_A100_TP1()
	prof := chatProfile()
	prof.ThinkTime = sim.Second
	res, err := Run(mc, sched.NewSarathi(sched.FCFS, 256), Spec{
		Profile:    prof,
		SessionQPS: 2,
		Sessions:   20,
		Seed:       5,
	}, sim.Forever)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Summary.CompletionRate(metrics.All); got != 1 {
		t.Fatalf("completion rate = %v", got)
	}
}

func TestMaxContextTruncation(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	prof := chatProfile()
	prof.MaxContext = 500
	prof.MeanTurns = 6
	res, err := Run(mc, sched.NewSarathi(sched.EDF, 256), Spec{
		Profile:    prof,
		SessionQPS: 1,
		Sessions:   20,
		Seed:       7,
	}, sim.Forever)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Summary.Outcomes {
		if o.PromptTokens > 500 {
			t.Fatalf("prompt %d exceeds the context window", o.PromptTokens)
		}
	}
}

// SharedPrefix is opt-in: turning it on must not change the upfront
// arrival draws (session count, conversation lengths), and on a
// prefill-heavy profile the cached prefixes must show up as faster TTFT.
// (Dynamic per-turn draws — follow-up sizes, think times — legitimately
// differ because completions land at different times and reorder the
// shared RNG, so context growth is not compared.)
func TestSharedPrefixOptInSpeedsUpTurns(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	run := func(shared bool) *Result {
		prof := chatProfile()
		prof.FirstPrompt = workload.TokenDist{P50: 1500, P90: 3000}
		prof.Decode = workload.TokenDist{P50: 10, P90: 20}
		prof.SharedPrefix = shared
		res, err := Run(mc, sched.NewSarathi(sched.FCFS, 256), Spec{
			Profile:    prof,
			SessionQPS: 1,
			Sessions:   20,
			Seed:       9,
		}, sim.Forever)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	off, on := run(false), run(true)
	// Session count and conversation lengths are drawn before the engine
	// runs, so they cannot differ.
	if off.Turns != on.Turns {
		t.Fatalf("turn counts diverged: %d vs %d", off.Turns, on.Turns)
	}
	if got := on.Summary.CompletionRate(metrics.All); got != 1 {
		t.Fatalf("completion rate with shared prefixes = %v", got)
	}
	// Follow-up turns re-prefill ~1500+ tokens without sharing and almost
	// none with it; at these prompt sizes the saving dwarfs sample noise.
	offTTFT := off.Summary.TTFTQuantile(metrics.All, 0.5)
	onTTFT := on.Summary.TTFTQuantile(metrics.All, 0.5)
	if onTTFT >= offTTFT {
		t.Errorf("shared prefixes did not speed up TTFT p50: %v >= %v", onTTFT, offTTFT)
	}
}

func TestSpecValidation(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	if _, err := Run(mc, sched.NewSarathi(sched.EDF, 256), Spec{
		Profile: chatProfile(), SessionQPS: 0, Sessions: 5,
	}, sim.Forever); err == nil {
		t.Error("zero session rate accepted")
	}
	if _, err := Run(mc, sched.NewSarathi(sched.EDF, 256), Spec{
		Profile: chatProfile(), SessionQPS: 1, Sessions: 0,
	}, sim.Forever); err == nil {
		t.Error("zero sessions accepted")
	}
}
