package workload

import (
	"bytes"
	"testing"

	"qoserve/internal/qos"
)

// FuzzReadTrace ensures arbitrary bytes never panic the trace parser, and
// that traces surviving a parse re-serialize losslessly.
func FuzzReadTrace(f *testing.F) {
	// Seed with a valid trace line and some near-misses.
	reqs, err := Generate(Spec{
		Dataset:  AzureCode,
		Tiers:    EqualTiers(qos.Table3()),
		Arrivals: Poisson{QPS: 1},
		Requests: 3,
		Seed:     1,
	})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, reqs); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"id":1,"kind":"interactive"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteTrace(&out, parsed); err != nil {
			t.Fatalf("reserialize failed: %v", err)
		}
		back, err := ReadTrace(&out)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back) != len(parsed) {
			t.Fatalf("round trip length %d != %d", len(back), len(parsed))
		}
		for i := range back {
			if *back[i] != *parsed[i] {
				t.Fatalf("request %d differs after round trip", i)
			}
		}
	})
}
