package workload

import (
	"bytes"
	"reflect"
	"testing"

	"qoserve/internal/qos"
)

// FuzzGenerate throws arbitrary distributions, tier splits, and arrival
// burstiness at the trace synthesizer: invalid specifications must be
// rejected with an error (never a panic or a hang), and accepted ones must
// produce exactly the requested number of well-formed, ordered requests.
func FuzzGenerate(f *testing.F) {
	f.Add(1930.0, 6251.0, 8.0, 43.0, 10, int64(1), 0.5, 0.1, 1.0)
	f.Add(1730.0, 5696.0, 415.0, 834.0, 3, int64(2), 0.3, 0.0, 2.5)
	f.Add(0.0, 0.0, 0.0, 0.0, 0, int64(0), 0.0, 0.0, 0.0)
	f.Add(1.0, 1e308, 1.0, 1.0, 1, int64(-1), 1.0, 1.5, -1.0)

	f.Fuzz(func(t *testing.T, p50p, p90p, p50d, p90d float64, n int, seed int64, frac, lowPrio, cv float64) {
		if n < 0 {
			n = -n
		}
		n %= 5000 // bound per-exec work, not validity
		ds := Dataset{Name: "fuzz",
			Prompt: TokenDist{P50: p50p, P90: p90p},
			Decode: TokenDist{P50: p50d, P90: p90d},
		}
		classes := qos.Table3()
		tiers := []Tier{
			{Class: classes[0], Fraction: frac, LowPriority: lowPrio},
			{Class: classes[1], Fraction: 1 - frac},
		}
		reqs, err := Generate(Spec{
			Dataset:  ds,
			Tiers:    tiers,
			Arrivals: Gamma{QPS: 5, CV: cv},
			Requests: n,
			Seed:     seed,
		})
		if err != nil {
			return
		}
		if len(reqs) != n {
			t.Fatalf("generated %d requests, want %d", len(reqs), n)
		}
		var prev int64 = -1
		for _, r := range reqs {
			if err := r.Validate(); err != nil {
				t.Fatalf("generated invalid request: %v", err)
			}
			if r.PromptTokens > DefaultMaxTokens || r.DecodeTokens > DefaultMaxTokens {
				t.Fatalf("request %d escapes the token clamp: %d/%d", r.ID, r.PromptTokens, r.DecodeTokens)
			}
			if int64(r.Arrival) < prev {
				t.Fatalf("request %d arrival %v precedes predecessor", r.ID, r.Arrival)
			}
			prev = int64(r.Arrival)
		}
	})
}

// FuzzReadTrace ensures arbitrary bytes never panic the trace parser, and
// that traces surviving a parse re-serialize losslessly.
func FuzzReadTrace(f *testing.F) {
	// Seed with a valid trace line and some near-misses.
	reqs, err := Generate(Spec{
		Dataset:  AzureCode,
		Tiers:    EqualTiers(qos.Table3()),
		Arrivals: Poisson{QPS: 1},
		Requests: 3,
		Seed:     1,
	})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, reqs); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"id":1,"kind":"interactive"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteTrace(&out, parsed); err != nil {
			t.Fatalf("reserialize failed: %v", err)
		}
		back, err := ReadTrace(&out)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back) != len(parsed) {
			t.Fatalf("round trip length %d != %d", len(back), len(parsed))
		}
		for i := range back {
			if !reflect.DeepEqual(back[i], parsed[i]) {
				t.Fatalf("request %d differs after round trip", i)
			}
		}
	})
}
