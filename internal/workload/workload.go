// Package workload synthesizes request traces that stand in for the paper's
// evaluation datasets (ShareGPT and the Azure Conversation / Code production
// traces, Table 2).
//
// The real traces are not redistributable, but the evaluation consumes only
// four per-request quantities: arrival time, prompt tokens, decode tokens,
// and QoS tier. The paper publishes the p50/p90 of prompt and decode token
// counts for each dataset; we fit log-normal marginals to those percentiles
// (token-count distributions in LLM traces are famously heavy-tailed and
// well approximated by log-normals), which pins the prefill:decode ratio and
// tail heaviness that drive scheduling behaviour. Arrival times use the same
// processes as the paper: Poisson at fixed QPS, and a diurnal square wave
// between a low and high QPS for the transient-overload study (§4.3).
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"qoserve/internal/qos"
	"qoserve/internal/request"
	"qoserve/internal/sim"
)

// z90 is the standard normal 90th-percentile quantile, used to recover the
// log-normal sigma from published p50/p90 values.
const z90 = 1.2815515655446004

// TokenDist is a log-normal token-count distribution pinned by its median
// and 90th percentile.
type TokenDist struct {
	P50 float64
	P90 float64
	Max int // hard clamp; 0 means DefaultMaxTokens
}

// DefaultMaxTokens clamps pathological tail samples to a realistic context
// limit.
const DefaultMaxTokens = 16384

// mu and sigma of the underlying normal.
func (d TokenDist) params() (mu, sigma float64) {
	mu = math.Log(d.P50)
	sigma = math.Log(d.P90/d.P50) / z90
	return mu, sigma
}

// Validate reports a configuration error, if any. Non-finite percentiles
// are rejected explicitly: NaN slips through ordered comparisons (every
// comparison is false), so the conditions are phrased to fail it.
func (d TokenDist) Validate() error {
	if math.IsInf(d.P50, 0) || math.IsInf(d.P90, 0) || !(d.P50 >= 1 && d.P90 >= d.P50) {
		return fmt.Errorf("token dist: need 1 <= p50 <= p90, got p50=%v p90=%v", d.P50, d.P90)
	}
	return nil
}

// Sample draws a token count.
func (d TokenDist) Sample(rng *rand.Rand) int {
	mu, sigma := d.params()
	v := math.Exp(mu + sigma*rng.NormFloat64())
	n := int(math.Round(v))
	if n < 1 {
		n = 1
	}
	max := d.Max
	if max == 0 {
		max = DefaultMaxTokens
	}
	if n > max {
		n = max
	}
	return n
}

// Quantile returns the q-th quantile (0<q<1) of the unclamped distribution.
func (d TokenDist) Quantile(q float64) float64 {
	mu, sigma := d.params()
	return math.Exp(mu + sigma*normQuantile(q))
}

// Mean returns the mean of the unclamped log-normal.
func (d TokenDist) Mean() float64 {
	mu, sigma := d.params()
	return math.Exp(mu + sigma*sigma/2)
}

// normQuantile is the standard normal inverse CDF (Acklam's rational
// approximation; max relative error ~1.15e-9, ample for workload synthesis).
func normQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("workload: quantile probability %v outside (0,1)", p))
	}
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// Dataset pairs prompt and decode token distributions, mirroring one row of
// the paper's Table 2.
type Dataset struct {
	Name   string
	Prompt TokenDist
	Decode TokenDist
}

// Validate reports a configuration error, if any.
func (d Dataset) Validate() error {
	if err := d.Prompt.Validate(); err != nil {
		return fmt.Errorf("dataset %s prompt: %w", d.Name, err)
	}
	if err := d.Decode.Validate(); err != nil {
		return fmt.Errorf("dataset %s decode: %w", d.Name, err)
	}
	return nil
}

// The three evaluation datasets, fit to Table 2's published percentiles.
var (
	// ShareGPT: long prompts, long decodes.
	ShareGPT = Dataset{Name: "ShareGPT",
		Prompt: TokenDist{P50: 1730, P90: 5696},
		Decode: TokenDist{P50: 415, P90: 834},
	}
	// AzureConv: conversation production trace.
	AzureConv = Dataset{Name: "Azure-Conv",
		Prompt: TokenDist{P50: 928, P90: 3830},
		Decode: TokenDist{P50: 41, P90: 342},
	}
	// AzureCode: code production trace — long prompts, tiny decodes.
	AzureCode = Dataset{Name: "Azure-Code",
		Prompt: TokenDist{P50: 1930, P90: 6251},
		Decode: TokenDist{P50: 8, P90: 43},
	}
)

// Datasets returns the three evaluation datasets in Table 2 order.
func Datasets() []Dataset { return []Dataset{ShareGPT, AzureConv, AzureCode} }

// DatasetByName looks a dataset up case-sensitively by its Table 2 name.
func DatasetByName(name string) (Dataset, error) {
	for _, d := range Datasets() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("workload: unknown dataset %q", name)
}

// Tier binds a QoS class to its share of the workload and the fraction of
// its requests tagged low-priority (free tier).
type Tier struct {
	Class       qos.Class
	Fraction    float64
	LowPriority float64 // fraction of this tier's requests tagged qos.Low
	// Dataset, when non-zero, overrides the Spec's dataset for this tier:
	// different applications rarely share token-count shapes (a chat tier
	// and a code tier are different workloads), which the paper's
	// single-dataset split flattens.
	Dataset *Dataset
}

// EqualTiers spreads classes uniformly with no low-priority requests
// (the paper's default 33/33/33 split, Table 3).
func EqualTiers(classes []qos.Class) []Tier {
	tiers := make([]Tier, len(classes))
	for i, c := range classes {
		tiers[i] = Tier{Class: c, Fraction: 1 / float64(len(classes))}
	}
	return tiers
}

// WeightedTiers assigns explicit fractions (e.g. the 70-15-15 mix of §4.4.2).
func WeightedTiers(classes []qos.Class, fractions []float64) ([]Tier, error) {
	if len(classes) != len(fractions) {
		return nil, fmt.Errorf("workload: %d classes but %d fractions", len(classes), len(fractions))
	}
	sum := 0.0
	tiers := make([]Tier, len(classes))
	for i := range classes {
		if fractions[i] < 0 {
			return nil, fmt.Errorf("workload: negative fraction %v", fractions[i])
		}
		sum += fractions[i]
		tiers[i] = Tier{Class: classes[i], Fraction: fractions[i]}
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("workload: fractions sum to %v, want 1", sum)
	}
	return tiers, nil
}

// WithLowPriority returns a copy of tiers with the given low-priority
// fraction applied to every tier (Fig. 12 marks 20% of each tier free-tier).
func WithLowPriority(tiers []Tier, frac float64) []Tier {
	out := make([]Tier, len(tiers))
	for i, t := range tiers {
		t.LowPriority = frac
		out[i] = t
	}
	return out
}

// ArrivalProcess produces successive inter-arrival gaps.
type ArrivalProcess interface {
	// Next returns the absolute arrival time of the next request given
	// the previous arrival time.
	Next(rng *rand.Rand, prev sim.Time) sim.Time
}

// Poisson is a homogeneous Poisson arrival process at a fixed rate.
type Poisson struct {
	QPS float64
}

// Next draws an exponential inter-arrival gap.
func (p Poisson) Next(rng *rand.Rand, prev sim.Time) sim.Time {
	if !(p.QPS > 0) { // also catches NaN, which would yield NaN arrival times
		panic("workload: Poisson QPS must be positive")
	}
	gap := rng.ExpFloat64() / p.QPS
	return prev + sim.FromSeconds(gap)
}

// Gamma is a renewal arrival process with gamma-distributed inter-arrival
// times, parameterized by rate and coefficient of variation. CV = 1 is
// Poisson; CV > 1 is burstier (heavier clumping), CV < 1 is smoother —
// the knob Sarathi-style evaluations use to stress schedulers beyond
// Poisson arrivals.
type Gamma struct {
	QPS float64
	CV  float64
}

// Next draws a gamma inter-arrival gap with mean 1/QPS and the configured
// coefficient of variation.
func (g Gamma) Next(rng *rand.Rand, prev sim.Time) sim.Time {
	if !(g.QPS > 0) { // also catches NaN
		panic("workload: Gamma QPS must be positive")
	}
	cv := g.CV
	if !(cv > 0) { // non-positive or NaN: fall back to Poisson shape
		cv = 1
	}
	// Clamp to a sane band: beyond it the shape/scale split overflows —
	// k underflows to 0 (or theta to 0) and the gap becomes 0 * Inf = NaN.
	cv = math.Min(math.Max(cv, 1e-3), 1e3)
	// shape k = 1/CV^2, scale theta = mean/k.
	k := 1 / (cv * cv)
	theta := (1 / g.QPS) / k
	return prev + sim.FromSeconds(gammaSample(rng, k)*theta)
}

// gammaSample draws from Gamma(k, 1) using Marsaglia-Tsang for k >= 1 and
// the boost transform for k < 1.
func gammaSample(rng *rand.Rand, k float64) float64 {
	if k < 1 {
		// Gamma(k) = Gamma(k+1) * U^(1/k).
		return gammaSample(rng, k+1) * math.Pow(rng.Float64(), 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Diurnal is a square-wave-modulated Poisson process alternating between
// LowQPS and HighQPS every HalfPeriod, starting low. This compresses the
// weekly diurnal pattern the paper models in §4.3 (2.0 <-> 5.0 QPS every
// 15 minutes over 4 hours).
type Diurnal struct {
	LowQPS     float64
	HighQPS    float64
	HalfPeriod sim.Time
}

// RateAt returns the instantaneous arrival rate at time t.
func (d Diurnal) RateAt(t sim.Time) float64 {
	if d.HalfPeriod <= 0 {
		panic("workload: Diurnal half-period must be positive")
	}
	phase := (t / d.HalfPeriod) % 2
	if phase == 0 {
		return d.LowQPS
	}
	return d.HighQPS
}

// Next draws the next arrival using thinning against the piecewise-constant
// rate.
func (d Diurnal) Next(rng *rand.Rand, prev sim.Time) sim.Time {
	maxRate := math.Max(d.LowQPS, d.HighQPS)
	if !(maxRate > 0) { // also catches NaN, which would hang the thinning loop
		panic("workload: Diurnal rates must be positive")
	}
	t := prev
	for {
		t += sim.FromSeconds(rng.ExpFloat64() / maxRate)
		if rng.Float64() <= d.RateAt(t)/maxRate {
			return t
		}
	}
}

// Spec fully describes a synthetic trace.
type Spec struct {
	Dataset  Dataset
	Tiers    []Tier
	Arrivals ArrivalProcess
	Requests int
	Seed     int64
}

// Validate reports a configuration error, if any.
func (s Spec) Validate() error {
	if err := s.Dataset.Validate(); err != nil {
		return err
	}
	if len(s.Tiers) == 0 {
		return fmt.Errorf("workload: no tiers")
	}
	sum := 0.0
	for _, t := range s.Tiers {
		if err := t.Class.Validate(); err != nil {
			return err
		}
		// Phrased to also reject NaN, which passes every ordered check.
		if !(t.Fraction >= 0) || !(t.LowPriority >= 0 && t.LowPriority <= 1) {
			return fmt.Errorf("workload: tier %s has invalid fractions", t.Class.Name)
		}
		if t.Dataset != nil {
			if err := t.Dataset.Validate(); err != nil {
				return err
			}
		}
		sum += t.Fraction
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("workload: tier fractions sum to %v, want 1", sum)
	}
	if s.Arrivals == nil {
		return fmt.Errorf("workload: nil arrival process")
	}
	if s.Requests <= 0 {
		return fmt.Errorf("workload: request count %d", s.Requests)
	}
	return nil
}

// Generate synthesizes the trace. Requests are returned in arrival order
// with sequential IDs; the App field is the tier's class name, which keys
// the per-application decode-length history QoServe maintains.
func Generate(spec Spec) ([]*request.Request, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	reqs := make([]*request.Request, 0, spec.Requests)
	var t sim.Time
	for i := 0; i < spec.Requests; i++ {
		t = spec.Arrivals.Next(rng, t)
		tier := pickTier(spec.Tiers, rng)
		prio := qos.High
		if rng.Float64() < tier.LowPriority {
			prio = qos.Low
		}
		ds := spec.Dataset
		if tier.Dataset != nil {
			ds = *tier.Dataset
		}
		r := &request.Request{
			ID:           uint64(i + 1),
			App:          tier.Class.Name,
			Class:        tier.Class,
			Priority:     prio,
			Arrival:      t,
			PromptTokens: ds.Prompt.Sample(rng),
			DecodeTokens: ds.Decode.Sample(rng),
		}
		reqs = append(reqs, r)
	}
	return reqs, nil
}

func pickTier(tiers []Tier, rng *rand.Rand) Tier {
	u := rng.Float64()
	acc := 0.0
	for _, t := range tiers {
		acc += t.Fraction
		if u < acc {
			return t
		}
	}
	return tiers[len(tiers)-1]
}

// LongThreshold returns the 90th-percentile prompt length of the dataset,
// the paper's cut between "short" and "long" requests (Fig. 11).
func LongThreshold(d Dataset) int {
	return int(math.Round(d.Prompt.Quantile(0.9)))
}
