package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"qoserve/internal/qos"
	"qoserve/internal/request"
	"qoserve/internal/sim"
)

// traceRecord is the JSON-lines wire form of one request.
type traceRecord struct {
	ID           uint64        `json:"id"`
	App          string        `json:"app"`
	ClassName    string        `json:"class"`
	Kind         string        `json:"kind"`
	TTFT         time.Duration `json:"ttft_slo,omitempty"`
	TBT          time.Duration `json:"tbt_slo,omitempty"`
	TTLT         time.Duration `json:"ttlt_slo,omitempty"`
	Priority     string        `json:"priority"`
	ArrivalNS    int64         `json:"arrival_ns"`
	PromptTokens int           `json:"prompt_tokens"`
	DecodeTokens int           `json:"decode_tokens"`
}

// WriteTrace serializes requests as JSON lines.
func WriteTrace(w io.Writer, reqs []*request.Request) error {
	enc := json.NewEncoder(w)
	for _, r := range reqs {
		rec := traceRecord{
			ID:           r.ID,
			App:          r.App,
			ClassName:    r.Class.Name,
			Kind:         r.Class.Kind.String(),
			TTFT:         r.Class.SLO.TTFT.Duration(),
			TBT:          r.Class.SLO.TBT.Duration(),
			TTLT:         r.Class.SLO.TTLT.Duration(),
			Priority:     r.Priority.String(),
			ArrivalNS:    int64(r.Arrival),
			PromptTokens: r.PromptTokens,
			DecodeTokens: r.DecodeTokens,
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("workload: encoding request %d: %w", r.ID, err)
		}
	}
	return nil
}

// ReadTrace parses a JSON-lines trace written by WriteTrace.
func ReadTrace(r io.Reader) ([]*request.Request, error) {
	dec := json.NewDecoder(r)
	var out []*request.Request
	for dec.More() {
		var rec traceRecord
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("workload: decoding trace: %w", err)
		}
		kind := qos.Interactive
		switch rec.Kind {
		case qos.Interactive.String():
		case qos.NonInteractive.String():
			kind = qos.NonInteractive
		default:
			return nil, fmt.Errorf("workload: request %d: unknown kind %q", rec.ID, rec.Kind)
		}
		prio := qos.High
		switch rec.Priority {
		case qos.High.String():
		case qos.Low.String():
			prio = qos.Low
		default:
			return nil, fmt.Errorf("workload: request %d: unknown priority %q", rec.ID, rec.Priority)
		}
		req := &request.Request{
			ID:  rec.ID,
			App: rec.App,
			Class: qos.Class{
				Name: rec.ClassName,
				Kind: kind,
				SLO: qos.SLO{
					TTFT: sim.FromDuration(rec.TTFT),
					TBT:  sim.FromDuration(rec.TBT),
					TTLT: sim.FromDuration(rec.TTLT),
				},
			},
			Priority:     prio,
			Arrival:      sim.Time(rec.ArrivalNS),
			PromptTokens: rec.PromptTokens,
			DecodeTokens: rec.DecodeTokens,
		}
		if err := req.Validate(); err != nil {
			return nil, err
		}
		out = append(out, req)
	}
	return out, nil
}

// Clone deep-copies a trace so that independent simulations (e.g. several
// schedulers over the same workload) do not share mutable request state.
func Clone(reqs []*request.Request) []*request.Request {
	out := make([]*request.Request, len(reqs))
	for i, r := range reqs {
		cp := *r
		// Reset any execution state so a used trace can be replayed.
		cp.PrefilledTokens = 0
		cp.DecodedTokens = 0
		cp.FirstTokenAt = 0
		cp.FinishedAt = 0
		cp.LastTokenAt = 0
		cp.MaxTBT = 0
		cp.TBTViolations = 0
		cp.Relegated = false
		cp.EstDecodeTokens = 0
		out[i] = &cp
	}
	return out
}
